(* Tests for data structures in simulated memory (lib/sim_ds). *)

module Machine = Sim.Machine
module Ops = Sim.Ops
module Tcc = Sim.Tcc
module Acc = Sim_ds.Acc
module H = Sim_ds.Sim_hashmap
module A = Sim_ds.Sim_avlmap
module Q = Sim_ds.Sim_queue

(* ---------------- host-accessor model tests ---------------- *)

let test_hashmap_model () =
  let m = Machine.create ~n_cpus:1 () in
  let a = Acc.host m in
  let h = H.create a ~buckets:8 in
  let model = Hashtbl.create 16 in
  let rng = Random.State.make [| 42 |] in
  for _ = 1 to 2000 do
    let k = 1 + Random.State.int rng 64 in
    if Random.State.bool rng then begin
      let v = Random.State.int rng 10_000 in
      H.put a h k v;
      Hashtbl.replace model k v
    end
    else begin
      H.remove a h k;
      Hashtbl.remove model k
    end
  done;
  Alcotest.(check int) "size" (Hashtbl.length model) (H.size a h);
  Hashtbl.iter
    (fun k v -> Alcotest.(check (option int)) "lookup" (Some v) (H.find a h k))
    model

let test_avl_model () =
  let m = Machine.create ~n_cpus:1 () in
  let a = Acc.host m in
  let t = A.create a () in
  let model = Hashtbl.create 16 in
  let rng = Random.State.make [| 7 |] in
  for _ = 1 to 2000 do
    let k = 1 + Random.State.int rng 96 in
    if Random.State.int rng 3 < 2 then begin
      let v = Random.State.int rng 10_000 in
      A.put a t k v;
      Hashtbl.replace model k v
    end
    else begin
      A.remove a t k;
      Hashtbl.remove model k
    end
  done;
  A.check_balanced a t;
  Alcotest.(check int) "size" (Hashtbl.length model) (A.size a t);
  Hashtbl.iter
    (fun k v -> Alcotest.(check (option int)) "lookup" (Some v) (A.find a t k))
    model;
  (* In-order iteration really is sorted. *)
  let keys = ref [] in
  A.iter a t (fun k _ -> keys := k :: !keys);
  let keys = List.rev !keys in
  Alcotest.(check (list int)) "sorted" (List.sort Int.compare keys) keys

let test_avl_range () =
  let m = Machine.create ~n_cpus:1 () in
  let a = Acc.host m in
  let t = A.create a () in
  for k = 1 to 50 do
    A.put a t k (k * 10)
  done;
  let got = ref [] in
  A.iter_range a t ~lo:10 ~hi:15 (fun k _ -> got := k :: !got);
  Alcotest.(check (list int)) "range" [ 10; 11; 12; 13; 14 ] (List.rev !got);
  Alcotest.(check (option int)) "min" (Some 1) (A.min_key a t);
  Alcotest.(check (option int)) "max" (Some 50) (A.max_key a t)

let test_queue_model () =
  let m = Machine.create ~n_cpus:1 () in
  let a = Acc.host m in
  let q = Q.create a () in
  for i = 1 to 100 do
    Q.enqueue a q i
  done;
  Q.push_front a q 0;
  Alcotest.(check int) "length" 101 (Q.length a q);
  Alcotest.(check (option int)) "front" (Some 0) (Q.peek a q);
  let drained = List.init 101 (fun _ -> Option.get (Q.dequeue a q)) in
  Alcotest.(check (list int)) "fifo" (List.init 101 Fun.id) drained;
  Alcotest.(check (option int)) "empty" None (Q.dequeue a q)

(* ---------------- in-simulation behaviour ---------------- *)

let test_hashmap_size_word_causes_violations () =
  (* The paper's central observation: transactions inserting DISJOINT keys
     into a plain hash map still violate, because of the shared size word
     (and bucket collisions). *)
  let m = Machine.create ~n_cpus:4 () in
  let a = Acc.host m in
  let h = H.create a ~buckets:256 in
  let body cpu () =
    let s = Acc.sim in
    for i = 0 to 49 do
      Tcc.atomic (fun () ->
          Ops.work 50;
          H.put s h ((cpu * 1000) + i) i)
    done
  in
  let stats = Machine.run m (Array.init 4 (fun c -> body c)) in
  Alcotest.(check int) "all inserts applied" 200 (H.size a h);
  Alcotest.(check bool) "disjoint inserts still violate" true
    (stats.Machine.total_violations > 0)

let test_avl_rotations_cause_violations () =
  let m = Machine.create ~n_cpus:4 () in
  let a = Acc.host m in
  let t = A.create a () in
  (* Pre-populate so lookups traverse a real tree. *)
  for k = 0 to 127 do
    A.put a t (k * 8) k
  done;
  let body cpu () =
    let s = Acc.sim in
    for i = 0 to 39 do
      Tcc.atomic (fun () ->
          Ops.work 50;
          A.put s t ((cpu * 977) + (i * 13) + 1) i)
    done
  in
  let stats = Machine.run m (Array.init 4 (fun c -> body c)) in
  A.check_balanced a t;
  Alcotest.(check bool) "rotations violate disjoint inserts" true
    (stats.Machine.total_violations > 0)

let test_structures_correct_under_contention () =
  (* Whatever the violation count, committed state must equal the model. *)
  let m = Machine.create ~n_cpus:3 () in
  let a = Acc.host m in
  let h = H.create a ~buckets:32 in
  let body cpu () =
    let s = Acc.sim in
    for i = 0 to 29 do
      Tcc.atomic (fun () -> H.put s h ((cpu * 100) + i) (cpu + i))
    done
  in
  ignore (Machine.run m (Array.init 3 (fun c -> body c)));
  Alcotest.(check int) "size exact" 90 (H.size a h);
  for cpu = 0 to 2 do
    for i = 0 to 29 do
      Alcotest.(check (option int))
        (Printf.sprintf "key %d" ((cpu * 100) + i))
        (Some (cpu + i))
        (H.find a h ((cpu * 100) + i))
    done
  done

(* TransactionalMap over the simulated TCC machine: the same functor body
   as the host instantiation, demonstrating TM-independence. *)
module SimTxMap =
  Txcoll.Transactional_map.Make (Sim.Tcc.Tm_ops)
    (Txcoll.Underlying.Hashed_map_ops (Txcoll.Host.Int_hashed))

let test_txcoll_over_tcc () =
  let m = Machine.create ~n_cpus:4 () in
  let tm = SimTxMap.create () in
  let body cpu () =
    for i = 0 to 49 do
      Tcc.atomic (fun () ->
          Ops.work 50;
          ignore (SimTxMap.put tm ((cpu * 1000) + i) i))
    done
  in
  let stats = Machine.run m (Array.init 4 (fun c -> body c)) in
  Alcotest.(check int) "all inserts committed" 200 (SimTxMap.size tm);
  Alcotest.(check int) "no memory-level violations" 0
    stats.Machine.total_violations;
  Alcotest.(check int) "no stale locks" 0 (SimTxMap.outstanding_locks tm)

let test_txcoll_over_tcc_semantic_conflict () =
  (* Two simulated CPUs: one reads key 1 and idles, the other writes key 1
     and commits; the reader must be aborted and retried. *)
  let m = Machine.create ~n_cpus:2 () in
  let tm = SimTxMap.create () in
  let attempts = ref 0 in
  let reader () =
    Tcc.atomic (fun () ->
        incr attempts;
        ignore (SimTxMap.find tm 1);
        if !attempts = 1 then
          for _ = 1 to 100 do
            Ops.work 10
          done)
  in
  let writer () =
    Ops.work 50;
    Tcc.atomic (fun () -> ignore (SimTxMap.put tm 1 99))
  in
  ignore (Machine.run m [| writer; reader |]);
  Alcotest.(check int) "reader aborted once" 2 !attempts;
  Alcotest.(check (option int)) "write committed" (Some 99)
    (SimTxMap.find tm 1)

let suites =
  [
    ( "sim_ds.host",
      [
        Alcotest.test_case "hashmap model" `Quick test_hashmap_model;
        Alcotest.test_case "avl model" `Quick test_avl_model;
        Alcotest.test_case "avl range" `Quick test_avl_range;
        Alcotest.test_case "queue model" `Quick test_queue_model;
      ] );
    ( "sim_ds.tcc",
      [
        Alcotest.test_case "size word violations" `Quick
          test_hashmap_size_word_causes_violations;
        Alcotest.test_case "rotation violations" `Quick
          test_avl_rotations_cause_violations;
        Alcotest.test_case "correct under contention" `Quick
          test_structures_correct_under_contention;
      ] );
    ( "sim_ds.txcoll",
      [
        Alcotest.test_case "transactional map eliminates violations" `Quick
          test_txcoll_over_tcc;
        Alcotest.test_case "semantic conflict on tcc" `Quick
          test_txcoll_over_tcc_semantic_conflict;
      ] );
  ]
