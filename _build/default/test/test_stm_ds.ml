(* Tests for the tvar-based baseline data structures (lib/stm_ds). *)

module Stm = Tcc_stm.Stm
module H = Stm_ds.Stm_hashmap
module A = Stm_ds.Stm_avlmap
module Q = Stm_ds.Stm_queue
module C = Stm_ds.Stm_counter
module U = Stm_ds.Stm_uidgen

let test_hashmap_basic () =
  let h = H.create ~initial_capacity:2 () in
  for i = 0 to 99 do
    H.add h i (2 * i)
  done;
  Alcotest.(check int) "size" 100 (H.size h);
  Alcotest.(check (option int)) "find" (Some 84) (H.find h 42);
  H.remove h 42;
  Alcotest.(check (option int)) "removed" None (H.find h 42);
  Alcotest.(check int) "size after remove" 99 (H.size h)

let test_hashmap_txn_composes () =
  let h = H.create () in
  (try
     Stm.atomic (fun () ->
         H.add h "x" 1;
         H.add h "y" 2;
         Stm.self_abort ())
   with Stm.Aborted -> ());
  Alcotest.(check int) "aborted adds invisible" 0 (H.size h);
  Stm.atomic (fun () ->
      H.add h "x" 1;
      H.add h "y" 2);
  Alcotest.(check int) "committed adds visible" 2 (H.size h)

let test_hashmap_parallel_disjoint () =
  (* Disjoint keys, but the shared size tvar forces retries; the result must
     still be correct (the baseline is slow, not wrong). *)
  let h = H.create () in
  let worker base () =
    for i = 0 to 99 do
      Stm.atomic (fun () -> H.add h (base + i) i)
    done
  in
  let ds = [ Domain.spawn (worker 0); Domain.spawn (worker 1000) ] in
  List.iter Domain.join ds;
  Alcotest.(check int) "all inserts survive contention" 200 (H.size h)

let test_avl_sorted_ops () =
  let m = A.create ~compare:Int.compare () in
  List.iter (fun k -> A.add m k (k * 10)) [ 8; 3; 11; 1; 5; 9; 14 ];
  Alcotest.(check (option (pair int int))) "min" (Some (1, 10)) (A.min_binding m);
  Alcotest.(check (option (pair int int)))
    "max" (Some (14, 140)) (A.max_binding m);
  let keys = List.map fst (A.to_list m) in
  Alcotest.(check (list int)) "sorted" [ 1; 3; 5; 8; 9; 11; 14 ] keys;
  A.remove m 8;
  A.remove m 1;
  A.check_balanced m;
  Alcotest.(check int) "size" 5 (A.size m);
  let range = ref [] in
  A.iter_range (fun k _ -> range := k :: !range) m ~lo:(Some 5) ~hi:(Some 12);
  Alcotest.(check (list int)) "range" [ 5; 9; 11 ] (List.rev !range)

type op = Add of int * int | Remove of int

let arb_ops =
  QCheck.make
    ~print:(fun l ->
      String.concat ";"
        (List.map
           (function
             | Add (k, v) -> Printf.sprintf "+%d=%d" k v
             | Remove k -> Printf.sprintf "-%d" k)
           l))
    QCheck.Gen.(
      list_size (int_bound 150)
        (frequency
           [
             (3, map2 (fun k v -> Add (k mod 24, v)) small_nat small_int);
             (2, map (fun k -> Remove (k mod 24)) small_nat);
           ]))

let prop_avl_model =
  QCheck.Test.make ~name:"stm avl agrees with model, stays balanced" ~count:100
    arb_ops (fun ops ->
      let m = A.create ~compare:Int.compare () in
      let model = Hashtbl.create 16 in
      List.iter
        (function
          | Add (k, v) ->
              A.add m k v;
              Hashtbl.replace model k v
          | Remove k ->
              A.remove m k;
              Hashtbl.remove model k)
        ops;
      A.check_balanced m;
      A.size m = Hashtbl.length model
      && Hashtbl.fold (fun k v ok -> ok && A.find m k = Some v) model true)

let prop_hashmap_model =
  QCheck.Test.make ~name:"stm hashmap agrees with model" ~count:100 arb_ops
    (fun ops ->
      let m = H.create ~initial_capacity:2 () in
      let model = Hashtbl.create 16 in
      List.iter
        (function
          | Add (k, v) ->
              H.add m k v;
              Hashtbl.replace model k v
          | Remove k ->
              H.remove m k;
              Hashtbl.remove model k)
        ops;
      H.size m = Hashtbl.length model
      && Hashtbl.fold (fun k v ok -> ok && H.find m k = Some v) model true)

let test_queue_fifo () =
  let q = Q.create () in
  for i = 1 to 50 do
    Q.enqueue q i
  done;
  Alcotest.(check int) "length" 50 (Q.length q);
  Alcotest.(check (option int)) "peek" (Some 1) (Q.peek q);
  let out = List.init 50 (fun _ -> Option.get (Q.dequeue q)) in
  Alcotest.(check (list int)) "fifo" (List.init 50 (fun i -> i + 1)) out;
  Alcotest.(check (option int)) "empty" None (Q.dequeue q)

let test_queue_abort_rolls_back () =
  let q = Q.create () in
  Q.enqueue q 1;
  (try
     Stm.atomic (fun () ->
         ignore (Q.dequeue q);
         Q.enqueue q 99;
         Stm.self_abort ())
   with Stm.Aborted -> ());
  Alcotest.(check (list int)) "queue untouched" [ 1 ] (Q.to_list q)

let test_counter_open_nested_compensation () =
  let c = C.create () in
  (try
     Stm.atomic (fun () ->
         C.incr_open c;
         Stm.self_abort ())
   with Stm.Aborted -> ());
  Alcotest.(check int) "compensated on abort" 0 (C.get c);
  Stm.atomic (fun () -> C.incr_open c);
  Alcotest.(check int) "committed" 1 (C.get c)

let test_uid_unique_despite_aborts () =
  let g = U.create () in
  let ids = ref [] in
  for i = 1 to 20 do
    try
      Stm.atomic (fun () ->
          let id = U.next g in
          if i mod 3 = 0 then Stm.self_abort ();
          ids := id :: !ids)
    with Stm.Aborted -> ()
  done;
  let sorted = List.sort_uniq Int.compare !ids in
  Alcotest.(check int) "all unique" (List.length !ids) (List.length sorted);
  (* Aborted parents consumed ids: gaps exist, monotonic allocation. *)
  Alcotest.(check bool) "gaps from aborted parents" true (U.peek g > List.length !ids + 1)

let test_uid_parallel_unique () =
  let g = U.create () in
  let results = Array.make 2 [] in
  let worker slot () =
    let acc = ref [] in
    for _ = 1 to 200 do
      acc := Stm.atomic (fun () -> U.next g) :: !acc
    done;
    results.(slot) <- !acc
  in
  let ds = [ Domain.spawn (worker 0); Domain.spawn (worker 1) ] in
  List.iter Domain.join ds;
  let all = results.(0) @ results.(1) in
  Alcotest.(check int) "parallel uniqueness" 400
    (List.length (List.sort_uniq Int.compare all))

let suites =
  [
    ( "stm_ds.hashmap",
      [
        Alcotest.test_case "basic" `Quick test_hashmap_basic;
        Alcotest.test_case "transactional composition" `Quick
          test_hashmap_txn_composes;
        Alcotest.test_case "parallel disjoint keys" `Quick
          test_hashmap_parallel_disjoint;
        QCheck_alcotest.to_alcotest prop_hashmap_model;
      ] );
    ( "stm_ds.avlmap",
      [
        Alcotest.test_case "sorted ops" `Quick test_avl_sorted_ops;
        QCheck_alcotest.to_alcotest prop_avl_model;
      ] );
    ( "stm_ds.queue",
      [
        Alcotest.test_case "fifo" `Quick test_queue_fifo;
        Alcotest.test_case "abort rolls back" `Quick test_queue_abort_rolls_back;
      ] );
    ( "stm_ds.counters",
      [
        Alcotest.test_case "open-nested compensation" `Quick
          test_counter_open_nested_compensation;
        Alcotest.test_case "uid unique despite aborts" `Quick
          test_uid_unique_despite_aborts;
        Alcotest.test_case "uid parallel uniqueness" `Quick
          test_uid_parallel_unique;
      ] );
  ]
