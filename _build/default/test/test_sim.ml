(* Tests for the CMP simulator: timing model, MESI, spinlocks, TCC
   transactions, nesting, handlers, and the TM_OPS instance. *)

module Machine = Sim.Machine
module Ops = Sim.Ops
module Tcc = Sim.Tcc
module Acc = Sim_ds.Acc

let run ?cfg ~n_cpus bodies =
  let m = Machine.create ?cfg ~n_cpus () in
  let stats = Machine.run m (Array.of_list bodies) in
  (m, stats)

(* ---------------- machine basics ---------------- *)

let test_load_store_roundtrip () =
  let seen = ref 0 in
  let _, stats =
    run ~n_cpus:1
      [
        (fun () ->
          let a = Ops.alloc 4 in
          Ops.store a 42;
          Ops.store (a + 1) 7;
          seen := Ops.load a + Ops.load (a + 1));
      ]
  in
  Alcotest.(check int) "values" 49 !seen;
  Alcotest.(check bool) "time advanced" true (stats.Machine.cycles > 0)

let test_work_timing () =
  let _, stats = run ~n_cpus:1 [ (fun () -> Ops.work 1000) ] in
  Alcotest.(check int) "work cycles" 1000 stats.Machine.cycles

let test_determinism () =
  let body () =
    let a = Ops.alloc 8 in
    for i = 0 to 63 do
      Ops.store (a + (i mod 8)) i;
      ignore (Ops.load (a + (i mod 8)))
    done
  in
  let _, s1 = run ~n_cpus:2 [ body; body ] in
  let _, s2 = run ~n_cpus:2 [ body; body ] in
  Alcotest.(check int) "same cycles" s1.Machine.cycles s2.Machine.cycles

let test_cache_locality () =
  (* Repeated access to one line must be much cheaper than striding. *)
  let tight () =
    let a = Ops.alloc 1 in
    for _ = 1 to 200 do
      ignore (Ops.load a)
    done
  in
  let strided () =
    let a = Ops.alloc (200 * 64) in
    for i = 0 to 199 do
      ignore (Ops.load (a + (i * 64)))
    done
  in
  let _, hot = run ~n_cpus:1 [ tight ] in
  let _, cold = run ~n_cpus:1 [ strided ] in
  Alcotest.(check bool) "misses cost more" true
    (cold.Machine.cycles > 5 * hot.Machine.cycles)

let test_mesi_pingpong_costs () =
  (* Two CPUs writing the same line must be slower than writing private
     lines, because of invalidations and bus traffic. *)
  let shared_word = ref 0 in
  let m = Machine.create ~n_cpus:2 () in
  shared_word := Machine.alloc_words m 1;
  let pingpong () =
    for i = 1 to 200 do
      Ops.store !shared_word i
    done
  in
  let shared_stats = Machine.run m [| pingpong; pingpong |] in
  let m2 = Machine.create ~n_cpus:2 () in
  let a1 = Machine.alloc_words m2 1 and a2 = Machine.alloc_words m2 1 in
  let private_ a () =
    for i = 1 to 200 do
      Ops.store a i
    done
  in
  let private_stats = Machine.run m2 [| private_ a1; private_ a2 |] in
  Alcotest.(check bool) "ping-pong slower" true
    (shared_stats.Machine.cycles > private_stats.Machine.cycles)

(* ---------------- spinlock (Java baseline) ---------------- *)

let test_spinlock_mutual_exclusion () =
  let m = Machine.create ~n_cpus:4 () in
  let a = Acc.host m in
  let lock = Sim_ds.Spinlock.create a () in
  let counter = Machine.alloc_words m 1 in
  let body () =
    for _ = 1 to 100 do
      Sim_ds.Spinlock.with_lock lock (fun () ->
          Ops.store counter (Ops.load counter + 1))
    done
  in
  ignore (Machine.run m (Array.make 4 body));
  Alcotest.(check int) "all increments" 400 (Machine.mem_read m counter)

(* ---------------- TCC transactions ---------------- *)

let test_tcc_atomic_counter () =
  let m = Machine.create ~n_cpus:4 () in
  let counter = Machine.alloc_words m 1 in
  let body () =
    for _ = 1 to 100 do
      Tcc.atomic (fun () ->
          Ops.work 20;
          Ops.store counter (Ops.load counter + 1))
    done
  in
  let stats = Machine.run m (Array.make 4 body) in
  Alcotest.(check int) "atomic increments" 400 (Machine.mem_read m counter);
  Alcotest.(check bool) "hot counter causes violations" true
    (stats.Machine.total_violations > 0)

let test_tcc_disjoint_no_violations () =
  let m = Machine.create ~n_cpus:4 () in
  let arr = Machine.alloc_words m (4 * 64) in
  let body cpu () =
    let mine = arr + (cpu * 64) in
    for i = 1 to 100 do
      Tcc.atomic (fun () -> Ops.store mine i)
    done
  in
  let stats = Machine.run m (Array.init 4 (fun c -> body c)) in
  Alcotest.(check int) "no violations on disjoint lines" 0
    stats.Machine.total_violations;
  Alcotest.(check int) "all committed" 400 stats.Machine.total_commits

let test_tcc_rollback_semantics () =
  (* A violated transaction must not leave partial writes: two CPUs each
     atomically transfer between two shared cells; the sum is invariant. *)
  let m = Machine.create ~n_cpus:2 () in
  let a = Machine.alloc_words m 1 and b = Machine.alloc_words m 1 in
  Machine.mem_write m a 1000;
  Machine.mem_write m b 1000;
  let body () =
    for i = 1 to 150 do
      Tcc.atomic (fun () ->
          let x = Ops.load a and y = Ops.load b in
          let amt = (i mod 5) + 1 in
          Ops.store a (x - amt);
          Ops.store b (y + amt))
    done
  in
  ignore (Machine.run m [| body; body |]);
  Alcotest.(check int) "sum invariant" 2000
    (Machine.mem_read m a + Machine.mem_read m b)

let test_tcc_open_nested_survives_abort () =
  let m = Machine.create ~n_cpus:1 () in
  let shared = Machine.alloc_words m 1 in
  let body () =
    try
      Tcc.atomic (fun () ->
          Tcc.open_nested (fun () -> Ops.store shared 42);
          Tcc.self_abort ())
    with Tcc.Aborted -> ()
  in
  ignore (Machine.run m [| body |]);
  Alcotest.(check int) "open write survived parent abort" 42
    (Machine.mem_read m shared)

let test_tcc_handlers () =
  let m = Machine.create ~n_cpus:1 () in
  let commits = ref 0 and aborts = ref 0 in
  let body () =
    Tcc.atomic (fun () -> Tcc.on_commit (fun () -> incr commits));
    try
      Tcc.atomic (fun () ->
          Tcc.on_commit (fun () -> incr commits);
          Tcc.on_abort (fun () -> incr aborts);
          Tcc.self_abort ())
    with Tcc.Aborted -> ()
  in
  ignore (Machine.run m [| body |]);
  Alcotest.(check int) "commit handler ran once" 1 !commits;
  Alcotest.(check int) "abort handler ran once" 1 !aborts

let test_tcc_open_handler_migrates () =
  let m = Machine.create ~n_cpus:1 () in
  let commits = ref 0 in
  let body () =
    Tcc.atomic (fun () ->
        Tcc.open_nested (fun () -> Tcc.on_commit (fun () -> incr commits));
        Alcotest.(check int) "not yet" 0 !commits)
  in
  ignore (Machine.run m [| body |]);
  Alcotest.(check int) "ran at parent commit" 1 !commits

let test_tcc_remote_abort () =
  (* CPU 1 parks in a transaction; CPU 0 remote-aborts it through the TM_OPS
     interface; the victim retries. *)
  let m = Machine.create ~n_cpus:2 () in
  let attempts = ref 0 in
  let victim_handle = ref None in
  let victim () =
    Tcc.atomic (fun () ->
        incr attempts;
        if !attempts = 1 then begin
          victim_handle := Some (Tcc.current ());
          (* Idle long enough for cpu 0 to deliver the abort. *)
          for _ = 1 to 50 do
            Ops.work 10
          done
        end)
  in
  let aborter () =
    let rec wait n =
      if n > 10_000 then failwith "victim never registered";
      match !victim_handle with
      | None ->
          Ops.work 5;
          wait (n + 1)
      | Some h -> Alcotest.(check bool) "abort delivered" true (Tcc.remote_abort h)
    in
    wait 0
  in
  ignore (Machine.run m [| aborter; victim |]);
  Alcotest.(check int) "victim retried" 2 !attempts

(* ---------------- critical sections ---------------- *)

let test_critical_atomic_and_costed () =
  let m = Machine.create ~n_cpus:2 () in
  let hits = ref 0 in
  let region = Tcc.Tm_ops.new_region () in
  let body () =
    for _ = 1 to 100 do
      Tcc.Tm_ops.critical region (fun () -> incr hits)
    done
  in
  let stats = Machine.run m [| body; body |] in
  Alcotest.(check int) "all critical sections ran" 200 !hits;
  Alcotest.(check bool) "criticals cost cycles" true
    (stats.Machine.cycles >= 100 * Sim.Config.default.Sim.Config.critical_base)

let suites =
  [
    ( "sim.machine",
      [
        Alcotest.test_case "load/store roundtrip" `Quick test_load_store_roundtrip;
        Alcotest.test_case "work timing" `Quick test_work_timing;
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "cache locality" `Quick test_cache_locality;
        Alcotest.test_case "mesi ping-pong" `Quick test_mesi_pingpong_costs;
      ] );
    ( "sim.spinlock",
      [ Alcotest.test_case "mutual exclusion" `Quick test_spinlock_mutual_exclusion ]
    );
    ( "sim.tcc",
      [
        Alcotest.test_case "atomic counter" `Quick test_tcc_atomic_counter;
        Alcotest.test_case "disjoint no violations" `Quick
          test_tcc_disjoint_no_violations;
        Alcotest.test_case "rollback leaves no partial writes" `Quick
          test_tcc_rollback_semantics;
        Alcotest.test_case "open nested survives abort" `Quick
          test_tcc_open_nested_survives_abort;
        Alcotest.test_case "handlers" `Quick test_tcc_handlers;
        Alcotest.test_case "open handler migrates" `Quick
          test_tcc_open_handler_migrates;
        Alcotest.test_case "remote abort" `Quick test_tcc_remote_abort;
        Alcotest.test_case "critical sections" `Quick
          test_critical_atomic_and_costed;
      ] );
  ]
