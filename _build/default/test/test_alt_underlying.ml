(* The same wrapper, different internals: run one shared test suite against
   TransactionalMap over chaining and over open addressing, and against
   TransactionalSortedMap over the AVL tree and over the skip list.  This is
   the paper's central engineering claim — semantic concurrency control
   needs no knowledge of the wrapped implementation. *)

module Stm = Tcc_stm.Stm

(* ---------------- model tests for the new plain structures ---------- *)

let test_skiplist_model () =
  let s = Coll.Skiplist.create ~compare:Int.compare () in
  let model = Hashtbl.create 16 in
  let rng = Random.State.make [| 5 |] in
  for _ = 1 to 3000 do
    let k = Random.State.int rng 128 in
    if Random.State.int rng 3 < 2 then begin
      let v = Random.State.int rng 1000 in
      Coll.Skiplist.add s k v;
      Hashtbl.replace model k v
    end
    else begin
      Coll.Skiplist.remove s k;
      Hashtbl.remove model k
    end
  done;
  Coll.Skiplist.check_invariants s;
  Alcotest.(check int) "size" (Hashtbl.length model) (Coll.Skiplist.size s);
  Hashtbl.iter
    (fun k v ->
      Alcotest.(check (option int)) "find" (Some v) (Coll.Skiplist.find s k))
    model;
  let keys = List.map fst (Coll.Skiplist.to_list s) in
  Alcotest.(check (list int)) "sorted" (List.sort Int.compare keys) keys

let test_skiplist_range () =
  let s = Coll.Skiplist.create ~compare:Int.compare () in
  for k = 0 to 30 do
    Coll.Skiplist.add s k (k * 2)
  done;
  let got = ref [] in
  Coll.Skiplist.iter_range (fun k _ -> got := k :: !got) s ~lo:(Some 10)
    ~hi:(Some 15);
  Alcotest.(check (list int)) "range" [ 10; 11; 12; 13; 14 ] (List.rev !got);
  Alcotest.(check (option (pair int int)))
    "min" (Some (0, 0))
    (Coll.Skiplist.min_binding s);
  Alcotest.(check (option (pair int int)))
    "max" (Some (30, 60))
    (Coll.Skiplist.max_binding s)

let test_oa_model () =
  let h = Coll.Oa_hashmap.create ~initial_capacity:4 () in
  let model = Hashtbl.create 16 in
  let rng = Random.State.make [| 6 |] in
  for _ = 1 to 3000 do
    let k = Random.State.int rng 64 in
    if Random.State.int rng 3 < 2 then begin
      let v = Random.State.int rng 1000 in
      Coll.Oa_hashmap.add h k v;
      Hashtbl.replace model k v
    end
    else begin
      Coll.Oa_hashmap.remove h k;
      Hashtbl.remove model k
    end
  done;
  Alcotest.(check int) "size" (Hashtbl.length model) (Coll.Oa_hashmap.size h);
  Hashtbl.iter
    (fun k v ->
      Alcotest.(check (option int)) "find" (Some v) (Coll.Oa_hashmap.find h k))
    model

let test_oa_tombstone_reuse () =
  let h = Coll.Oa_hashmap.create ~initial_capacity:4 ~hash:(fun _ -> 0) () in
  (* Force one probe chain: all keys collide. *)
  Coll.Oa_hashmap.add h 1 10;
  Coll.Oa_hashmap.add h 2 20;
  Coll.Oa_hashmap.remove h 1;
  Alcotest.(check (option int)) "later key still reachable" (Some 20)
    (Coll.Oa_hashmap.find h 2);
  Coll.Oa_hashmap.add h 3 30;
  Alcotest.(check int) "size" 2 (Coll.Oa_hashmap.size h);
  Alcotest.(check (option int)) "reused slot" (Some 30) (Coll.Oa_hashmap.find h 3)

(* ---------------- shared wrapper suite ---------------- *)

module type WRAPPED_MAP = sig
  type 'v t

  val create : unit -> 'v t
  val find : 'v t -> int -> 'v option
  val put : 'v t -> int -> 'v -> 'v option
  val remove : 'v t -> int -> 'v option
  val size : 'v t -> int
  val outstanding_locks : 'v t -> int
end

let conflict_scenario ~reader ~writer =
  let phase = Atomic.make 0 in
  let signal n = if Atomic.get phase < n then Atomic.set phase n in
  let await n =
    while Atomic.get phase < n do
      Domain.cpu_relax ()
    done
  in
  let attempts = ref 0 in
  let d1 =
    Domain.spawn (fun () ->
        Stm.atomic (fun () ->
            incr attempts;
            reader ();
            signal 1;
            if !attempts = 1 then await 2))
  in
  let d2 =
    Domain.spawn (fun () ->
        await 1;
        Stm.atomic writer;
        signal 2)
  in
  Domain.join d1;
  Domain.join d2;
  !attempts

module Map_suite (Name : sig
  val name : string
end)
(M : WRAPPED_MAP) =
struct
  let test_compose () =
    let m = M.create () in
    Stm.atomic (fun () ->
        ignore (M.put m 1 "a");
        ignore (M.put m 2 "b");
        Alcotest.(check (option string)) "own write" (Some "a") (M.find m 1));
    Alcotest.(check int) "committed" 2 (M.size m);
    Alcotest.(check int) "no leaks" 0 (M.outstanding_locks m)

  let test_abort () =
    let m = M.create () in
    ignore (M.put m 1 "keep");
    (try
       Stm.atomic (fun () ->
           ignore (M.put m 1 "drop");
           ignore (M.remove m 1);
           ignore (M.put m 9 "drop");
           Stm.self_abort ())
     with Stm.Aborted -> ());
    Alcotest.(check (option string)) "unchanged" (Some "keep") (M.find m 1);
    Alcotest.(check int) "size" 1 (M.size m)

  let test_conflict () =
    let m = M.create () in
    ignore (M.put m 5 "x");
    let n =
      conflict_scenario
        ~reader:(fun () -> ignore (M.find m 5))
        ~writer:(fun () -> ignore (M.put m 5 "y"))
    in
    Alcotest.(check int) "same-key conflict" 2 n;
    let n' =
      conflict_scenario
        ~reader:(fun () -> ignore (M.find m 5))
        ~writer:(fun () -> ignore (M.put m 6 "z"))
    in
    Alcotest.(check int) "disjoint keys commute" 1 n'

  let test_parallel_model () =
    let m = M.create () in
    let worker base () =
      for i = 0 to 149 do
        Stm.atomic (fun () -> ignore (M.put m (base + i) "v"))
      done
    in
    let ds = [ Domain.spawn (worker 0); Domain.spawn (worker 1000) ] in
    List.iter Domain.join ds;
    Alcotest.(check int) "all inserts" 300 (M.size m);
    Alcotest.(check int) "no stale locks" 0 (M.outstanding_locks m)

  let suite =
    ( "wrapped-map." ^ Name.name,
      [
        Alcotest.test_case "compose" `Quick test_compose;
        Alcotest.test_case "abort" `Quick test_abort;
        Alcotest.test_case "conflicts" `Quick test_conflict;
        Alcotest.test_case "parallel" `Quick test_parallel_model;
      ] )
end

module type WRAPPED_SORTED = sig
  type 'v t

  val create : unit -> 'v t
  val find : 'v t -> int -> 'v option
  val put : 'v t -> int -> 'v -> 'v option
  val remove : 'v t -> int -> 'v option
  val size : 'v t -> int
  val first_key : 'v t -> int option
  val last_key : 'v t -> int option
  val to_list : 'v t -> (int * 'v) list

  val fold_range :
    (int -> 'v -> 'acc -> 'acc) ->
    'v t ->
    'acc ->
    lo:int option ->
    hi:int option ->
    'acc

  val outstanding_locks : 'v t -> int
end

module Sorted_suite (Name : sig
  val name : string
end)
(M : WRAPPED_SORTED) =
struct
  let seeded () =
    let m = M.create () in
    List.iter (fun k -> ignore (M.put m k k)) [ 10; 20; 30; 40 ];
    m

  let test_ordered () =
    let m = seeded () in
    Stm.atomic (fun () ->
        ignore (M.put m 25 25);
        ignore (M.remove m 40);
        Alcotest.(check (list int)) "merged order" [ 10; 20; 25; 30 ]
          (List.map fst (M.to_list m));
        Alcotest.(check (option int)) "first" (Some 10) (M.first_key m);
        Alcotest.(check (option int)) "last" (Some 30) (M.last_key m));
    Alcotest.(check int) "no leaks" 0 (M.outstanding_locks m)

  let test_range () =
    let m = seeded () in
    Stm.atomic (fun () ->
        let ks =
          List.rev
            (M.fold_range (fun k _ acc -> k :: acc) m [] ~lo:(Some 15)
               ~hi:(Some 35))
        in
        Alcotest.(check (list int)) "range" [ 20; 30 ] ks)

  let test_range_conflict () =
    let m = seeded () in
    let n =
      conflict_scenario
        ~reader:(fun () ->
          ignore (M.fold_range (fun _ _ a -> a) m () ~lo:(Some 15) ~hi:(Some 35)))
        ~writer:(fun () -> ignore (M.put m 25 25))
    in
    Alcotest.(check int) "insert in range aborts" 2 n;
    let n' =
      conflict_scenario
        ~reader:(fun () ->
          ignore (M.fold_range (fun _ _ a -> a) m () ~lo:(Some 15) ~hi:(Some 35)))
        ~writer:(fun () -> ignore (M.put m 45 45))
    in
    Alcotest.(check int) "insert outside commutes" 1 n'

  let test_endpoint_conflict () =
    let m = seeded () in
    let n =
      conflict_scenario
        ~reader:(fun () -> ignore (M.first_key m))
        ~writer:(fun () -> ignore (M.put m 1 1))
    in
    Alcotest.(check int) "new min aborts firstKey" 2 n

  let suite =
    ( "wrapped-sorted." ^ Name.name,
      [
        Alcotest.test_case "ordered merge" `Quick test_ordered;
        Alcotest.test_case "range" `Quick test_range;
        Alcotest.test_case "range conflict" `Quick test_range_conflict;
        Alcotest.test_case "endpoint conflict" `Quick test_endpoint_conflict;
      ] )
end

(* ---------------- instantiations ---------------- *)

module Chain = Txcoll.Host.Map (Txcoll.Host.Int_hashed)
module Oa = Txcoll.Host.Map_over_open_addressing (Txcoll.Host.Int_hashed)
module Avl = Txcoll.Host.Sorted_map (Txcoll.Host.Int_ordered)
module Skip = Txcoll.Host.Sorted_map_over_skiplist (Txcoll.Host.Int_ordered)

module Chain_adapter = struct
  include Chain

  let create () = Chain.create ()
end

module Oa_adapter = struct
  include Oa

  let create () = Oa.create ()
end

module Avl_adapter = struct
  include Avl

  let create () = Avl.create ()
end

module Skip_adapter = struct
  include Skip

  let create () = Skip.create ()
end

module S1 = Map_suite (struct let name = "chaining" end) (Chain_adapter)
module S2 = Map_suite (struct let name = "open-addressing" end) (Oa_adapter)
module S3 = Sorted_suite (struct let name = "avl" end) (Avl_adapter)
module S4 = Sorted_suite (struct let name = "skiplist" end) (Skip_adapter)

let suites =
  [
    ( "coll.alt",
      [
        Alcotest.test_case "skiplist model" `Quick test_skiplist_model;
        Alcotest.test_case "skiplist range" `Quick test_skiplist_range;
        Alcotest.test_case "open-addressing model" `Quick test_oa_model;
        Alcotest.test_case "tombstone reuse" `Quick test_oa_tombstone_reuse;
      ] );
    S1.suite;
    S2.suite;
    S3.suite;
    S4.suite;
  ]
