(* Tests for cursor-style iterators: the Map iterator's two size-lock
   policies and the SortedMap's incremental range-locking cursor. *)

module Stm = Tcc_stm.Stm
module IM = Txcoll.Host.Map (Txcoll.Host.Int_hashed)
module SM = Txcoll.Host.Sorted_map (Txcoll.Host.Int_ordered)

let drain_im c =
  let rec go acc =
    match IM.next c with Some kv -> go (kv :: acc) | None -> List.rev acc
  in
  go []

let drain_sm c =
  let rec go acc =
    match SM.cursor_next c with Some kv -> go (kv :: acc) | None -> List.rev acc
  in
  go []

(* Two-phase scenario: the reader runs [before] inside a transaction,
   the writer commits, the reader runs [after]; returns reader attempts. *)
let mid_iteration_scenario ~before ~writer ~after =
  let phase = Atomic.make 0 in
  let signal n = if Atomic.get phase < n then Atomic.set phase n in
  let await n =
    while Atomic.get phase < n do
      Domain.cpu_relax ()
    done
  in
  let attempts = ref 0 in
  let d1 =
    Domain.spawn (fun () ->
        Stm.atomic (fun () ->
            incr attempts;
            let st = before () in
            if !attempts = 1 then begin
              signal 1;
              await 2
            end;
            after st))
  in
  let d2 =
    Domain.spawn (fun () ->
        await 1;
        Stm.atomic writer;
        signal 2)
  in
  Domain.join d1;
  Domain.join d2;
  !attempts

(* ---------------- Map cursor ---------------- *)

let test_map_cursor_enumerates_merged_state () =
  let m = IM.create () in
  List.iter (fun k -> ignore (IM.put m k (10 * k))) [ 1; 2; 3 ];
  Stm.atomic (fun () ->
      ignore (IM.remove m 2);
      ignore (IM.put m 4 40);
      ignore (IM.put m 1 11);
      let got = List.sort compare (drain_im (IM.cursor m)) in
      Alcotest.(check (list (pair int int)))
        "buffer merged" [ (1, 11); (3, 30); (4, 40) ] got)

let test_map_cursor_outside_txn () =
  let m = IM.create () in
  ignore (IM.put m 5 50);
  Alcotest.(check (list (pair int int))) "plain snapshot" [ (5, 50) ]
    (drain_im (IM.cursor m))

let test_map_cursor_locks_returned_keys () =
  let m = IM.create () in
  ignore (IM.put m 7 70);
  Stm.atomic (fun () ->
      let c = IM.cursor ~size_lock:`At_exhaustion m in
      ignore (IM.next c);
      Alcotest.(check bool) "key locked by next" true (IM.holds_key_lock m 7);
      Alcotest.(check bool) "size not yet locked" false (IM.holds_size_lock m);
      ignore (IM.next c);
      Alcotest.(check bool) "size locked at exhaustion" true
        (IM.holds_size_lock m))

let test_map_cursor_eager_policy_aborts_on_insert () =
  let m = IM.create () in
  ignore (IM.put m 1 1);
  let n =
    mid_iteration_scenario
      ~before:(fun () ->
        let c = IM.cursor ~size_lock:`Eager m in
        ignore (IM.next c);
        c)
      ~writer:(fun () -> ignore (IM.put m 99 99))
      ~after:(fun c -> ignore (drain_im c))
  in
  Alcotest.(check int) "eager iterator aborted by insert" 2 n

let test_map_cursor_lazy_policy_admits_insert () =
  let m = IM.create () in
  ignore (IM.put m 1 1);
  let n =
    mid_iteration_scenario
      ~before:(fun () ->
        let c = IM.cursor ~size_lock:`At_exhaustion m in
        ignore (IM.next c);
        c)
      ~writer:(fun () -> ignore (IM.put m 99 99))
      ~after:(fun c -> ignore (drain_im c))
  in
  (* Paper-faithful hasNext semantics: the insert lands after the size lock
     would be taken only at exhaustion, so the iterator is not aborted. *)
  Alcotest.(check int) "lazy iterator survives" 1 n

let test_map_cursor_skips_concurrent_removal () =
  (* A key removed by an earlier-serialized committer is skipped, and the
     iterator (which never locked it) is aborted only per its own locks. *)
  let m = IM.create () in
  ignore (IM.put m 1 1);
  ignore (IM.put m 2 2);
  Stm.atomic (fun () ->
      let c = IM.cursor m in
      let all = drain_im c in
      Alcotest.(check int) "iterated both" 2 (List.length all))

(* ---------------- SortedMap cursor ---------------- *)

let test_sm_cursor_ordered_merge () =
  let m = SM.create () in
  List.iter (fun k -> ignore (SM.put m k k)) [ 10; 20; 30; 40 ];
  Stm.atomic (fun () ->
      ignore (SM.put m 25 25);
      ignore (SM.remove m 30);
      let keys = List.map fst (drain_sm (SM.cursor m)) in
      Alcotest.(check (list int)) "ordered merged" [ 10; 20; 25; 40 ] keys)

let test_sm_cursor_bounded () =
  let m = SM.create () in
  List.iter (fun k -> ignore (SM.put m k k)) [ 10; 20; 30; 40; 50 ];
  Stm.atomic (fun () ->
      let keys =
        List.map fst (drain_sm (SM.cursor ~lo:20 ~hi:45 m))
      in
      Alcotest.(check (list int)) "half-open bounds" [ 20; 30; 40 ] keys)

let test_sm_cursor_insert_ahead_commutes () =
  (* Insert ahead of the cursor position: the span is not yet locked, so the
     writer commutes with the iterator — and the iterator sees the new key
     live when it gets there. *)
  let m = SM.create () in
  List.iter (fun k -> ignore (SM.put m k k)) [ 10; 20; 30 ];
  let seen = ref [] in
  let n =
    mid_iteration_scenario
      ~before:(fun () ->
        let c = SM.cursor m in
        let first = SM.cursor_next c in
        Alcotest.(check (option (pair int int))) "first" (Some (10, 10)) first;
        c)
      ~writer:(fun () -> ignore (SM.put m 25 25))
      ~after:(fun c -> seen := List.map fst (drain_sm c))
  in
  Alcotest.(check int) "no abort for insert ahead" 1 n;
  Alcotest.(check (list int)) "new key observed live" [ 20; 25; 30 ] !seen

let test_sm_cursor_insert_behind_aborts () =
  let m = SM.create () in
  List.iter (fun k -> ignore (SM.put m k k)) [ 10; 20; 30 ];
  let n =
    mid_iteration_scenario
      ~before:(fun () ->
        let c = SM.cursor m in
        ignore (SM.cursor_next c);
        ignore (SM.cursor_next c);
        c)
      ~writer:(fun () -> ignore (SM.put m 15 15))
      ~after:(fun c -> ignore (drain_sm c))
  in
  Alcotest.(check int) "insert behind cursor aborts iterator" 2 n

let test_sm_cursor_exhaustion_locks_tail () =
  let m = SM.create () in
  ignore (SM.put m 10 10);
  let n =
    mid_iteration_scenario
      ~before:(fun () ->
        let c = SM.cursor m in
        ignore (drain_sm c);
        c)
      ~writer:(fun () -> ignore (SM.put m 99 99))
      ~after:(fun _ -> ())
  in
  (* The exhausted cursor observed "nothing above 10"; a new maximum
     invalidates that (last lock / tail range). *)
  Alcotest.(check int) "new max aborts exhausted iterator" 2 n

let test_sm_cursor_outside_txn () =
  let m = SM.create () in
  List.iter (fun k -> ignore (SM.put m k (k * 2))) [ 3; 1; 2 ];
  let keys = List.map fst (drain_sm (SM.cursor m)) in
  Alcotest.(check (list int)) "sorted walk" [ 1; 2; 3 ] keys

let suites =
  [
    ( "cursor.map",
      [
        Alcotest.test_case "merged enumeration" `Quick
          test_map_cursor_enumerates_merged_state;
        Alcotest.test_case "outside txn" `Quick test_map_cursor_outside_txn;
        Alcotest.test_case "locks returned keys" `Quick
          test_map_cursor_locks_returned_keys;
        Alcotest.test_case "eager policy aborts" `Quick
          test_map_cursor_eager_policy_aborts_on_insert;
        Alcotest.test_case "lazy policy survives" `Quick
          test_map_cursor_lazy_policy_admits_insert;
        Alcotest.test_case "skips removals" `Quick
          test_map_cursor_skips_concurrent_removal;
      ] );
    ( "cursor.sorted",
      [
        Alcotest.test_case "ordered merge" `Quick test_sm_cursor_ordered_merge;
        Alcotest.test_case "bounded" `Quick test_sm_cursor_bounded;
        Alcotest.test_case "insert ahead commutes" `Quick
          test_sm_cursor_insert_ahead_commutes;
        Alcotest.test_case "insert behind aborts" `Quick
          test_sm_cursor_insert_behind_aborts;
        Alcotest.test_case "exhaustion locks tail" `Quick
          test_sm_cursor_exhaustion_locks_tail;
        Alcotest.test_case "outside txn" `Quick test_sm_cursor_outside_txn;
      ] );
  ]
