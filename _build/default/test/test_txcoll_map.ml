(* Tests for TransactionalMap over the host STM. *)

module Stm = Tcc_stm.Stm
module IM = Txcoll.Host.Map (Txcoll.Host.Int_hashed)

(* Two-domain conflict scenario: [reader] runs inside a transaction and
   takes semantic locks, then [writer] commits in another domain; we return
   how many attempts the reader needed (1 = no semantic conflict, 2 = it was
   aborted and retried). *)
let conflict_scenario ~reader ~writer =
  let phase = Atomic.make 0 in
  let signal n = if Atomic.get phase < n then Atomic.set phase n in
  let await n =
    while Atomic.get phase < n do
      Domain.cpu_relax ()
    done
  in
  let attempts = ref 0 in
  let d1 =
    Domain.spawn (fun () ->
        Stm.atomic (fun () ->
            incr attempts;
            reader ();
            signal 1;
            if !attempts = 1 then await 2))
  in
  let d2 =
    Domain.spawn (fun () ->
        await 1;
        Stm.atomic writer;
        signal 2)
  in
  Domain.join d1;
  Domain.join d2;
  !attempts

let test_compose_and_commit () =
  let m = IM.create () in
  Stm.atomic (fun () ->
      ignore (IM.put m 1 "one");
      ignore (IM.put m 2 "two");
      Alcotest.(check (option string)) "read own write" (Some "one") (IM.find m 1);
      Alcotest.(check int) "size sees buffer" 2 (IM.size m));
  Alcotest.(check (option string)) "committed" (Some "two") (IM.find m 2);
  Alcotest.(check int) "size committed" 2 (IM.size m);
  Alcotest.(check int) "no lock leak" 0 (IM.outstanding_locks m)

let test_abort_discards_buffer () =
  let m = IM.create () in
  ignore (IM.put m 1 "committed");
  (try
     Stm.atomic (fun () ->
         ignore (IM.put m 1 "doomed");
         ignore (IM.put m 2 "also doomed");
         ignore (IM.remove m 1);
         Stm.self_abort ())
   with Stm.Aborted -> ());
  Alcotest.(check (option string)) "overwrite rolled back" (Some "committed")
    (IM.find m 1);
  Alcotest.(check (option string)) "insert rolled back" None (IM.find m 2);
  Alcotest.(check int) "size intact" 1 (IM.size m);
  Alcotest.(check int) "locks released by abort handler" 0 (IM.outstanding_locks m)

let test_remove_then_get () =
  let m = IM.create () in
  ignore (IM.put m 7 "x");
  Stm.atomic (fun () ->
      ignore (IM.remove m 7);
      Alcotest.(check (option string)) "own remove visible" None (IM.find m 7);
      Alcotest.(check int) "size reflects remove" 0 (IM.size m);
      ignore (IM.put m 7 "y");
      Alcotest.(check (option string)) "re-put visible" (Some "y") (IM.find m 7));
  Alcotest.(check (option string)) "final" (Some "y") (IM.find m 7)

let test_put_returns_old () =
  let m = IM.create () in
  ignore (IM.put m 1 "a");
  Stm.atomic (fun () ->
      Alcotest.(check (option string)) "old committed value" (Some "a")
        (IM.put m 1 "b");
      Alcotest.(check (option string)) "old buffered value" (Some "b")
        (IM.put m 1 "c");
      Alcotest.(check (option string)) "remove returns current" (Some "c")
        (IM.remove m 1);
      Alcotest.(check (option string)) "put after remove" None (IM.put m 1 "d"))

(* ---------------- Table 2 lock footprints ---------------- *)

let test_lock_footprint_get () =
  let m = IM.create () in
  Stm.atomic (fun () ->
      ignore (IM.find m 5);
      Alcotest.(check bool) "get takes key lock" true (IM.holds_key_lock m 5);
      Alcotest.(check bool) "get takes no size lock" false (IM.holds_size_lock m));
  Alcotest.(check int) "released after commit" 0 (IM.outstanding_locks m)

let test_lock_footprint_size () =
  let m = IM.create () in
  Stm.atomic (fun () ->
      ignore (IM.size m);
      Alcotest.(check bool) "size takes size lock" true (IM.holds_size_lock m))

let test_lock_footprint_put_vs_blind () =
  let m = IM.create () in
  Stm.atomic (fun () ->
      ignore (IM.put m 1 "x");
      Alcotest.(check bool) "put takes key lock" true (IM.holds_key_lock m 1);
      IM.put_blind m 2 "y";
      Alcotest.(check bool) "blind put takes no key lock" false
        (IM.holds_key_lock m 2))

let test_lock_footprint_isempty () =
  let m = IM.create () in
  Stm.atomic (fun () ->
      ignore (IM.is_empty m);
      Alcotest.(check bool) "dedicated isEmpty lock" true
        (IM.holds_isempty_lock m);
      Alcotest.(check bool) "no size lock" false (IM.holds_size_lock m));
  let m' = IM.create ~isempty_policy:IM.Via_size () in
  Stm.atomic (fun () ->
      ignore (IM.is_empty m');
      Alcotest.(check bool) "via-size policy takes size lock" true
        (IM.holds_size_lock m'))

(* ---------------- semantic conflicts (two domains) ---------------- *)

let test_conflict_get_vs_put_same_key () =
  let m = IM.create () in
  let n =
    conflict_scenario
      ~reader:(fun () -> ignore (IM.find m 1))
      ~writer:(fun () -> ignore (IM.put m 1 "w"))
  in
  Alcotest.(check int) "reader aborted once" 2 n

let test_no_conflict_disjoint_keys () =
  let m = IM.create () in
  let n =
    conflict_scenario
      ~reader:(fun () -> ignore (IM.find m 1))
      ~writer:(fun () -> ignore (IM.put m 2 "w"))
  in
  Alcotest.(check int) "no abort" 1 n

let test_conflict_size_vs_insert () =
  let m = IM.create () in
  ignore (IM.put m 50 "seed");
  let n =
    conflict_scenario
      ~reader:(fun () -> ignore (IM.size m))
      ~writer:(fun () -> ignore (IM.put m 1 "new key grows size"))
  in
  Alcotest.(check int) "size reader aborted" 2 n

let test_no_conflict_size_vs_overwrite () =
  let m = IM.create () in
  ignore (IM.put m 50 "seed");
  let n =
    conflict_scenario
      ~reader:(fun () -> ignore (IM.size m))
      ~writer:(fun () -> ignore (IM.put m 50 "overwrite, same size"))
  in
  (* The overwrite writes key 50, which the size reader never locked. *)
  Alcotest.(check int) "size reader survives overwrite" 1 n

let test_isempty_dedicated_no_transition_no_conflict () =
  (* §5.1: "if (!map.isEmpty()) map.put(key, value)" — two such transactions
     on different keys should commute with a dedicated isEmpty lock. *)
  let m = IM.create () in
  ignore (IM.put m 99 "seed");
  let n =
    conflict_scenario
      ~reader:(fun () -> ignore (IM.is_empty m))
      ~writer:(fun () -> ignore (IM.put m 1 "no emptiness transition"))
  in
  Alcotest.(check int) "isEmpty reader survives" 1 n

let test_isempty_via_size_conflicts () =
  let m = IM.create ~isempty_policy:IM.Via_size () in
  ignore (IM.put m 99 "seed");
  let n =
    conflict_scenario
      ~reader:(fun () -> ignore (IM.is_empty m))
      ~writer:(fun () -> ignore (IM.put m 1 "size change"))
  in
  Alcotest.(check int) "via-size reader aborted" 2 n

let test_isempty_transition_conflicts () =
  let m = IM.create () in
  let n =
    conflict_scenario
      ~reader:(fun () -> ignore (IM.is_empty m))
      ~writer:(fun () -> ignore (IM.put m 1 "empty -> non-empty"))
  in
  Alcotest.(check int) "transition aborts isEmpty reader" 2 n

let test_blind_puts_do_not_conflict () =
  let m = IM.create () in
  ignore (IM.put m 1 "seed");
  let n =
    conflict_scenario
      ~reader:(fun () -> IM.put_blind m 1 "mine")
      ~writer:(fun () -> IM.put_blind m 1 "theirs")
  in
  (* The "LastModified" example: two blind writers of the same existing key
     need no ordering. *)
  Alcotest.(check int) "no ordering between blind writers" 1 n

let test_regular_puts_same_key_conflict () =
  let m = IM.create () in
  ignore (IM.put m 1 "seed");
  let n =
    conflict_scenario
      ~reader:(fun () -> ignore (IM.put m 1 "mine"))
      ~writer:(fun () -> ignore (IM.put m 1 "theirs"))
  in
  Alcotest.(check int) "value-returning puts are ordered" 2 n

let test_iteration_conflicts_with_insert () =
  let m = IM.create () in
  ignore (IM.put m 10 "a");
  ignore (IM.put m 20 "b");
  let n =
    conflict_scenario
      ~reader:(fun () -> ignore (IM.to_list m))
      ~writer:(fun () -> ignore (IM.put m 30 "new"))
  in
  Alcotest.(check int) "full enumeration aborted by insert" 2 n

(* ---------------- serializability end-to-end ---------------- *)

let test_write_skew_prevented () =
  (* T1: if mem k2 then remove k1;  T2: if mem k1 then remove k2.
     Serial outcomes leave at least one key present; write skew would remove
     both. *)
  for _ = 1 to 20 do
    let m = IM.create () in
    ignore (IM.put m 1 "a");
    ignore (IM.put m 2 "b");
    let body this other () =
      Stm.atomic (fun () ->
          if IM.mem m other then ignore (IM.remove m this))
    in
    let d1 = Domain.spawn (body 1 2) and d2 = Domain.spawn (body 2 1) in
    Domain.join d1;
    Domain.join d2;
    Alcotest.(check bool) "not both removed" true (IM.mem m 1 || IM.mem m 2)
  done

let test_empty_check_then_put_race () =
  (* Two "if empty then put" transactions: exactly one insert must win. *)
  for _ = 1 to 20 do
    let m = IM.create () in
    let body k () =
      Stm.atomic (fun () -> if IM.is_empty m then ignore (IM.put m k "winner"))
    in
    let d1 = Domain.spawn (body 1) and d2 = Domain.spawn (body 2) in
    Domain.join d1;
    Domain.join d2;
    Alcotest.(check int) "exactly one winner" 1 (IM.size m)
  done

let test_parallel_disjoint_inserts_scale_correctly () =
  let m = IM.create () in
  let worker base () =
    for i = 0 to 199 do
      Stm.atomic (fun () -> ignore (IM.put m (base + i) "v"))
    done
  in
  let ds = [ Domain.spawn (worker 0); Domain.spawn (worker 10_000) ] in
  List.iter Domain.join ds;
  Alcotest.(check int) "all inserts present" 400 (IM.size m);
  Alcotest.(check int) "no stale locks" 0 (IM.outstanding_locks m)

(* ---------------- property tests ---------------- *)

type op = Put of int * int | PutBlind of int * int | Remove of int | Find of int

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (4, map2 (fun k v -> Put (k mod 16, v)) small_nat small_int);
        (2, map2 (fun k v -> PutBlind (k mod 16, v)) small_nat small_int);
        (2, map (fun k -> Remove (k mod 16)) small_nat);
        (3, map (fun k -> Find (k mod 16)) small_nat);
      ])

let arb_ops =
  QCheck.make
    ~print:(fun l ->
      String.concat ";"
        (List.map
           (function
             | Put (k, v) -> Printf.sprintf "put(%d,%d)" k v
             | PutBlind (k, v) -> Printf.sprintf "putb(%d,%d)" k v
             | Remove k -> Printf.sprintf "rm(%d)" k
             | Find k -> Printf.sprintf "get(%d)" k)
           l))
    QCheck.Gen.(list_size (int_bound 60) gen_op)

module IntMap = Map.Make (Int)

let apply_model model = function
  | Put (k, v) | PutBlind (k, v) -> IntMap.add k v model
  | Remove k -> IntMap.remove k model
  | Find _ -> model

let map_matches_model m model =
  IM.size m = IntMap.cardinal model
  && IntMap.for_all (fun k v -> IM.find m k = Some v) model

module IIM = Txcoll.Host.Map (Txcoll.Host.Int_hashed)

let prop_committed_txn_equals_model =
  QCheck.Test.make ~name:"one committed transaction applies all buffered ops"
    ~count:100 arb_ops (fun ops ->
      let m = IIM.create () in
      let model = ref IntMap.empty in
      Stm.atomic (fun () ->
          List.iter
            (fun op ->
              (match op with
              | Put (k, v) -> ignore (IIM.put m k v)
              | PutBlind (k, v) -> IIM.put_blind m k v
              | Remove k -> ignore (IIM.remove m k)
              | Find k -> ignore (IIM.find m k));
              model := apply_model !model op)
            ops);
      IIM.size m = IntMap.cardinal !model
      && IntMap.for_all (fun k v -> IIM.find m k = Some v) !model
      && IIM.outstanding_locks m = 0)

let prop_aborted_txn_is_noop =
  QCheck.Test.make ~name:"aborted transaction leaves no trace" ~count:100
    arb_ops (fun ops ->
      let m = IIM.create () in
      ignore (IIM.put m 3 111);
      ignore (IIM.put m 8 222);
      (try
         Stm.atomic (fun () ->
             List.iter
               (fun op ->
                 match op with
                 | Put (k, v) -> ignore (IIM.put m k v)
                 | PutBlind (k, v) -> IIM.put_blind m k v
                 | Remove k -> ignore (IIM.remove m k)
                 | Find k -> ignore (IIM.find m k))
               ops;
             Stm.self_abort ())
       with Stm.Aborted -> ());
      IIM.find m 3 = Some 111
      && IIM.find m 8 = Some 222
      && IIM.size m = 2
      && IIM.outstanding_locks m = 0)

let prop_reads_inside_txn_consistent =
  QCheck.Test.make ~name:"reads merge buffer over committed state" ~count:100
    arb_ops (fun ops ->
      let m = IIM.create () in
      ignore (IIM.put m 0 42);
      let model = ref (IntMap.singleton 0 42) in
      let ok = ref true in
      Stm.atomic (fun () ->
          List.iter
            (fun op ->
              (match op with
              | Put (k, v) -> ignore (IIM.put m k v)
              | PutBlind (k, v) -> IIM.put_blind m k v
              | Remove k -> ignore (IIM.remove m k)
              | Find k ->
                  if IIM.find m k <> IntMap.find_opt k !model then ok := false);
              model := apply_model !model op)
            ops;
          if IIM.size m <> IntMap.cardinal !model then ok := false);
      !ok)

let _ = map_matches_model

let suites =
  [
    ( "txmap.single",
      [
        Alcotest.test_case "compose and commit" `Quick test_compose_and_commit;
        Alcotest.test_case "abort discards buffer" `Quick
          test_abort_discards_buffer;
        Alcotest.test_case "remove then get" `Quick test_remove_then_get;
        Alcotest.test_case "put returns old" `Quick test_put_returns_old;
      ] );
    ( "txmap.locks",
      [
        Alcotest.test_case "get footprint" `Quick test_lock_footprint_get;
        Alcotest.test_case "size footprint" `Quick test_lock_footprint_size;
        Alcotest.test_case "put vs blind put" `Quick
          test_lock_footprint_put_vs_blind;
        Alcotest.test_case "isEmpty policies" `Quick test_lock_footprint_isempty;
      ] );
    ( "txmap.conflicts",
      [
        Alcotest.test_case "get vs put same key" `Quick
          test_conflict_get_vs_put_same_key;
        Alcotest.test_case "disjoint keys commute" `Quick
          test_no_conflict_disjoint_keys;
        Alcotest.test_case "size vs insert" `Quick test_conflict_size_vs_insert;
        Alcotest.test_case "size vs overwrite" `Quick
          test_no_conflict_size_vs_overwrite;
        Alcotest.test_case "isEmpty dedicated lock commutes" `Quick
          test_isempty_dedicated_no_transition_no_conflict;
        Alcotest.test_case "isEmpty via size conflicts" `Quick
          test_isempty_via_size_conflicts;
        Alcotest.test_case "isEmpty transition conflicts" `Quick
          test_isempty_transition_conflicts;
        Alcotest.test_case "blind puts commute" `Quick
          test_blind_puts_do_not_conflict;
        Alcotest.test_case "regular puts conflict" `Quick
          test_regular_puts_same_key_conflict;
        Alcotest.test_case "enumeration vs insert" `Quick
          test_iteration_conflicts_with_insert;
      ] );
    ( "txmap.serializability",
      [
        Alcotest.test_case "write skew prevented" `Quick test_write_skew_prevented;
        Alcotest.test_case "empty-check-then-put race" `Quick
          test_empty_check_then_put_race;
        Alcotest.test_case "parallel disjoint inserts" `Quick
          test_parallel_disjoint_inserts_scale_correctly;
      ] );
    ( "txmap.properties",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_committed_txn_equals_model;
          prop_aborted_txn_is_noop;
          prop_reads_inside_txn_consistent;
        ] );
  ]
