(* Deeper simulator tests: partial rollback of closed children, commit-token
   serialisation, bus contention, cache eviction, and the sorted-map/queue
   wrappers over the simulated TCC machine. *)

module Machine = Sim.Machine
module Ops = Sim.Ops
module Tcc = Sim.Tcc
module Acc = Sim_ds.Acc

(* ---------------- machine internals ---------------- *)

let test_bus_contention_costs () =
  (* With a bus-dominated configuration (cheap memory, expensive transfer),
     N CPUs all missing must queue: completion time grows with N even
     though each CPU's own work is constant. *)
  let cfg =
    { Sim.Config.default with Sim.Config.mem_latency = 5; bus_per_line = 20 }
  in
  let run n =
    let m = Machine.create ~cfg ~n_cpus:n () in
    let body cpu () =
      let base = Ops.alloc (64 * 64) in
      for i = 0 to 63 do
        ignore (Ops.load (base + (i * 64) + cpu))
      done
    in
    (Machine.run m (Array.init n (fun c -> body c))).Machine.cycles
  in
  let one = run 1 and sixteen = run 16 in
  Alcotest.(check bool) "bus queuing dominates" true (sixteen > 2 * one)

let test_cache_eviction_dirty_writeback () =
  (* Writing more lines than the cache holds forces evictions/writebacks;
     re-reading the evicted lines misses again. *)
  let cfg = { Sim.Config.default with Sim.Config.l1_sets = 4; l1_ways = 2 } in
  let m = Machine.create ~cfg ~n_cpus:1 () in
  let lines = 64 in
  let body () =
    let base = Ops.alloc (lines * cfg.Sim.Config.line_words) in
    for i = 0 to lines - 1 do
      Ops.store (base + (i * cfg.Sim.Config.line_words)) i
    done;
    for i = 0 to lines - 1 do
      ignore (Ops.load (base + (i * cfg.Sim.Config.line_words)))
    done
  in
  let stats = Machine.run m [| body |] in
  (* 8-line cache, 64 dirty lines: both passes must miss mostly. *)
  Alcotest.(check bool) "eviction traffic" true
    (stats.Machine.cycles > lines * Sim.Config.default.Sim.Config.l2_hit)

let test_token_serialises_commits () =
  (* Transactions that only commit (no conflicts) still serialise their
     commit phases on the token; with a huge commit cost this becomes
     visible as token wait. *)
  let cfg = { Sim.Config.default with Sim.Config.commit_base = 400 } in
  let m = Machine.create ~cfg ~n_cpus:8 () in
  let body cpu () =
    let mine = Ops.alloc 1 in
    ignore cpu;
    for i = 1 to 10 do
      Tcc.atomic (fun () -> Ops.store mine i)
    done
  in
  let stats = Machine.run m (Array.init 8 (fun c -> body c)) in
  Alcotest.(check int) "no violations" 0 stats.Machine.total_violations;
  Alcotest.(check bool) "commit arbitration queues" true
    (stats.Machine.total_bus_wait + stats.Machine.total_token_wait > 0)

let test_closed_nested_partial_rollback_in_sim () =
  (* CPU 1 reads a word only inside a closed child; CPU 0 overwrites it.
     The child must retry without restarting the parent (the parent's
     side-effect counter advances once). *)
  let m = Machine.create ~n_cpus:2 () in
  let hot = Machine.alloc_words m 1 in
  let out = Machine.alloc_words m 1 in
  let parent_entries = ref 0 in
  let child_entries = ref 0 in
  let reader () =
    Tcc.atomic (fun () ->
        incr parent_entries;
        Tcc.closed_nested (fun () ->
            incr child_entries;
            let v = Ops.load hot in
            if !child_entries = 1 then
              (* Idle inside the child so the writer can violate us. *)
              for _ = 1 to 60 do
                Ops.work 10
              done;
            Ops.store out v))
  in
  let writer () =
    Ops.work 150;
    Tcc.atomic (fun () -> Ops.store hot 42)
  in
  ignore (Machine.run m [| writer; reader |]);
  Alcotest.(check int) "parent ran once" 1 !parent_entries;
  Alcotest.(check int) "child retried" 2 !child_entries;
  Alcotest.(check int) "child saw committed value" 42 (Machine.mem_read m out)

let test_tcc_retry_now () =
  let m = Machine.create ~n_cpus:1 () in
  let tries = ref 0 in
  let body () =
    Tcc.atomic (fun () ->
        incr tries;
        if !tries = 1 then Tcc.retry_now () |> ignore)
  in
  ignore (Machine.run m [| body |]);
  Alcotest.(check int) "transparent retry" 2 !tries

(* ---------------- sorted map and queue wrappers over TCC -------------- *)

module SimTxSorted = Harness.Workloads.SimTxSorted

module SimTxQueue =
  Txcoll.Transactional_queue.Make (Sim.Tcc.Tm_ops) (Txcoll.Underlying.Deque_ops)

let test_sorted_wrapper_on_tcc () =
  let m = Machine.create ~n_cpus:4 () in
  let sm = SimTxSorted.create () in
  for i = 0 to 63 do
    ignore (SimTxSorted.put sm (i * 10) i)
  done;
  let range_sum = ref 0 in
  let body cpu () =
    for i = 0 to 24 do
      Tcc.atomic (fun () ->
          Ops.work 100;
          ignore (SimTxSorted.put sm (((cpu + 1) * 10_000) + i) i));
      if cpu = 0 then
        Tcc.atomic (fun () ->
            range_sum :=
              SimTxSorted.fold_range (fun _ v acc -> acc + v) sm 0 ~lo:(Some 0)
                ~hi:(Some 100))
    done
  in
  let stats = Machine.run m (Array.init 4 (fun c -> body c)) in
  Alcotest.(check int) "all inserts" (64 + 100) (SimTxSorted.size sm);
  Alcotest.(check int) "no memory-level violations" 0
    stats.Machine.total_violations;
  Alcotest.(check int) "range observed consistently" (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7 + 8 + 9)
    !range_sum

let test_sorted_wrapper_endpoint_conflict_on_tcc () =
  let m = Machine.create ~n_cpus:2 () in
  let sm = SimTxSorted.create () in
  ignore (SimTxSorted.put sm 100 1);
  let attempts = ref 0 in
  let reader () =
    Tcc.atomic (fun () ->
        incr attempts;
        ignore (SimTxSorted.first_key sm);
        if !attempts = 1 then
          for _ = 1 to 60 do
            Ops.work 10
          done)
  in
  let writer () =
    Ops.work 120;
    Tcc.atomic (fun () -> ignore (SimTxSorted.put sm 1 0))
  in
  ignore (Machine.run m [| writer; reader |]);
  Alcotest.(check int) "new minimum aborts firstKey reader" 2 !attempts

let test_queue_wrapper_on_tcc () =
  let m = Machine.create ~n_cpus:3 () in
  let q = SimTxQueue.create () in
  for i = 1 to 60 do
    SimTxQueue.put q i
  done;
  let taken = Atomic.make 0 in
  let body _cpu () =
    let continue = ref true in
    while !continue do
      match Tcc.atomic (fun () -> SimTxQueue.take q) with
      | Some _ -> Atomic.incr taken
      | None -> continue := false
    done
  in
  let stats = Machine.run m (Array.init 3 (fun c -> body c)) in
  Alcotest.(check int) "all items taken exactly once" 60 (Atomic.get taken);
  Alcotest.(check int) "takes never violate" 0 stats.Machine.total_violations

let suites =
  [
    ( "sim.deeper",
      [
        Alcotest.test_case "bus contention" `Quick test_bus_contention_costs;
        Alcotest.test_case "cache eviction" `Quick
          test_cache_eviction_dirty_writeback;
        Alcotest.test_case "token serialises commits" `Quick
          test_token_serialises_commits;
        Alcotest.test_case "closed-nested partial rollback" `Quick
          test_closed_nested_partial_rollback_in_sim;
        Alcotest.test_case "retry_now" `Quick test_tcc_retry_now;
      ] );
    ( "sim.txcoll-more",
      [
        Alcotest.test_case "sorted wrapper" `Quick test_sorted_wrapper_on_tcc;
        Alcotest.test_case "sorted endpoint conflict" `Quick
          test_sorted_wrapper_endpoint_conflict_on_tcc;
        Alcotest.test_case "queue wrapper" `Quick test_queue_wrapper_on_tcc;
      ] );
  ]
