(* Tests for the set wrappers (paper §5.1: sets as thin wrappers over the
   maps), plus dump_state and CSV-rendering smoke checks. *)

module Stm = Tcc_stm.Stm
module S = Txcoll.Host.Set (Txcoll.Host.String_hashed)
module SS = Txcoll.Host.Sorted_set (Txcoll.Host.Int_ordered)

let test_set_basics () =
  let s = S.create () in
  Alcotest.(check bool) "newly added" true (S.add s "a");
  Alcotest.(check bool) "duplicate" false (S.add s "a");
  Alcotest.(check bool) "mem" true (S.mem s "a");
  Alcotest.(check int) "size" 1 (S.size s);
  Alcotest.(check bool) "remove present" true (S.remove s "a");
  Alcotest.(check bool) "remove absent" false (S.remove s "a");
  Alcotest.(check bool) "empty" true (S.is_empty s)

let test_set_transactional () =
  let s = S.create () in
  (try
     Stm.atomic (fun () ->
         ignore (S.add s "x");
         ignore (S.add s "y");
         Stm.self_abort ())
   with Stm.Aborted -> ());
  Alcotest.(check int) "abort leaves nothing" 0 (S.size s);
  Stm.atomic (fun () ->
      ignore (S.add s "x");
      S.add_blind s "y";
      Alcotest.(check bool) "own adds visible" true (S.mem s "x" && S.mem s "y"));
  Alcotest.(check int) "committed" 2 (S.size s)

let test_set_conflicts () =
  let s = S.create () in
  ignore (S.add s "k");
  let phase = Atomic.make 0 in
  let signal n = if Atomic.get phase < n then Atomic.set phase n in
  let await n =
    while Atomic.get phase < n do
      Domain.cpu_relax ()
    done
  in
  let attempts = ref 0 in
  let d1 =
    Domain.spawn (fun () ->
        Stm.atomic (fun () ->
            incr attempts;
            ignore (S.mem s "k");
            signal 1;
            if !attempts = 1 then await 2))
  in
  let d2 =
    Domain.spawn (fun () ->
        await 1;
        Stm.atomic (fun () -> ignore (S.remove s "k"));
        signal 2)
  in
  Domain.join d1;
  Domain.join d2;
  Alcotest.(check int) "membership reader aborted by removal" 2 !attempts

let test_sorted_set () =
  let s = SS.create () in
  List.iter (fun k -> ignore (SS.add s k)) [ 5; 1; 9; 3 ];
  Alcotest.(check (option int)) "min" (Some 1) (SS.min_elt s);
  Alcotest.(check (option int)) "max" (Some 9) (SS.max_elt s);
  Alcotest.(check (list int)) "ordered" [ 1; 3; 5; 9 ] (SS.to_list s);
  let mid = SS.fold_range (fun k acc -> k :: acc) s [] ~lo:(Some 2) ~hi:(Some 8) in
  Alcotest.(check (list int)) "range" [ 5; 3 ] mid;
  Stm.atomic (fun () ->
      ignore (SS.remove s 1);
      ignore (SS.add s 0);
      Alcotest.(check (option int)) "buffered min" (Some 0) (SS.min_elt s));
  Alcotest.(check (option int)) "committed min" (Some 0) (SS.min_elt s)

let test_dump_state_shapes () =
  let module M = Txcoll.Host.Map (Txcoll.Host.Int_hashed) in
  let m = M.create () in
  ignore (M.put m 1 1);
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  (try
     Stm.atomic (fun () ->
         ignore (M.find m 1);
         ignore (M.put m 2 2);
         M.dump_state ppf m;
         Format.pp_print_flush ppf ();
         Stm.self_abort ())
   with Stm.Aborted -> ());
  let out = Buffer.contents buf in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "committed section" true (contains out "Committed state");
  Alcotest.(check bool) "shared section" true (contains out "key2lockers");
  Alcotest.(check bool) "local section" true (contains out "storeBuffer=1")

let test_csv_render () =
  let p = { Harness.Workloads.default_params with total_ops = 64 } in
  let fig = Harness.Figures.figure1 ~p ~cpus:[ 1; 2 ] () in
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Harness.Figures.render_csv ppf fig;
  Format.pp_print_flush ppf ();
  let lines =
    String.split_on_char '\n' (String.trim (Buffer.contents buf))
  in
  Alcotest.(check int) "header + one row per cpu count" 3 (List.length lines);
  let cols s = List.length (String.split_on_char ',' s) in
  List.iter
    (fun l -> Alcotest.(check int) "consistent column count" (cols (List.hd lines)) (cols l))
    lines

let suites =
  [
    ( "sets",
      [
        Alcotest.test_case "basics" `Quick test_set_basics;
        Alcotest.test_case "transactional" `Quick test_set_transactional;
        Alcotest.test_case "conflicts" `Quick test_set_conflicts;
        Alcotest.test_case "sorted set" `Quick test_sorted_set;
      ] );
    ( "rendering",
      [
        Alcotest.test_case "dump_state sections" `Quick test_dump_state_shapes;
        Alcotest.test_case "csv shape" `Quick test_csv_render;
      ] );
  ]
