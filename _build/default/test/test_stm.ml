(* Unit and property tests for the host software TM (lib/stm). *)

module Tvar = Tcc_stm.Tvar
module Stm = Tcc_stm.Stm

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Single-threaded semantics                                           *)

let test_read_write () =
  let v = Tvar.make 1 in
  let r = Stm.atomic (fun () -> Tvar.set v 2; Tvar.get v) in
  check "read own write" 2 r;
  check "committed" 2 (Tvar.get v)

let test_rollback_on_exception () =
  let v = Tvar.make 1 in
  (try Stm.atomic (fun () -> Tvar.set v 99; failwith "boom")
   with Failure _ -> ());
  check "exception rolls back" 1 (Tvar.get v)

let test_self_abort () =
  let v = Tvar.make 1 in
  (try Stm.atomic (fun () -> Tvar.set v 99; Stm.self_abort ())
   with Stm.Aborted -> ());
  check "self abort rolls back" 1 (Tvar.get v)

let test_nontx_access () =
  let v = Tvar.make 10 in
  Tvar.set v 20;
  check "non-transactional set/get" 20 (Tvar.get v)

let test_modify () =
  let v = Tvar.make 3 in
  Stm.atomic (fun () -> Tvar.modify v (fun x -> x * 7));
  check "modify" 21 (Tvar.get v)

let test_nested_commit () =
  let v = Tvar.make 0 in
  Stm.atomic (fun () ->
      Tvar.set v 1;
      Stm.closed_nested (fun () -> Tvar.set v (Tvar.get v + 10));
      Tvar.set v (Tvar.get v + 100));
  check "nested merge" 111 (Tvar.get v)

let test_nested_exception_aborts_all () =
  let v = Tvar.make 0 in
  (try
     Stm.atomic (fun () ->
         Tvar.set v 1;
         Stm.closed_nested (fun () -> Tvar.set v 2; failwith "inner"))
   with Failure _ -> ());
  check "inner exception aborts whole txn" 0 (Tvar.get v)

let test_open_nested_commits_early () =
  let shared = Tvar.make 0 in
  let local = Tvar.make 0 in
  (try
     Stm.atomic (fun () ->
         Tvar.set local 5;
         Stm.open_nested (fun () -> Tvar.set shared 42);
         Stm.self_abort ())
   with Stm.Aborted -> ());
  check "open-nested write survives parent abort" 42 (Tvar.get shared);
  check "parent write rolled back" 0 (Tvar.get local)

let test_open_nested_reads_no_dependency () =
  (* A value read only inside an open-nested transaction must not create a
     parent read dependency: mutate it concurrently-in-spirit by a
     non-transactional write between the open read and the parent commit. *)
  let probe = Tvar.make 0 in
  let out = Tvar.make 0 in
  let seen = ref (-1) in
  Stm.atomic (fun () ->
      seen := Stm.open_nested (fun () -> Tvar.get probe);
      Tvar.set probe 1 |> ignore;
      Tvar.set out 7);
  check "parent committed" 7 (Tvar.get out);
  check "open read observed initial value" 0 !seen

(* ------------------------------------------------------------------ *)
(* Handlers                                                            *)

let test_commit_handler_runs_on_commit () =
  let hit = ref 0 in
  Stm.atomic (fun () -> Stm.on_commit (fun () -> incr hit));
  check "commit handler ran once" 1 !hit

let test_commit_handler_discarded_on_abort () =
  let hit = ref 0 in
  (try Stm.atomic (fun () -> Stm.on_commit (fun () -> incr hit); Stm.self_abort ())
   with Stm.Aborted -> ());
  check "commit handler discarded" 0 !hit

let test_abort_handler_runs_on_abort () =
  let hit = ref 0 in
  (try Stm.atomic (fun () -> Stm.on_abort (fun () -> incr hit); Stm.self_abort ())
   with Stm.Aborted -> ());
  check "abort handler ran once" 1 !hit

let test_abort_handler_discarded_on_commit () =
  let hit = ref 0 in
  Stm.atomic (fun () -> Stm.on_abort (fun () -> incr hit));
  check "abort handler discarded on commit" 0 !hit

let test_handlers_in_aborted_child_discarded () =
  let commit_hits = ref 0 in
  (* A handler registered in a closed child that never commits (the child
     body raises) must be discarded even though the parent commits. *)
  Stm.atomic (fun () ->
      (try
         Stm.closed_nested (fun () ->
             Stm.on_commit (fun () -> incr commit_hits);
             failwith "child dies")
       with Failure _ -> ()));
  check "handler from dead child discarded" 0 !commit_hits

let test_handlers_in_committed_child_survive () =
  let commit_hits = ref 0 in
  Stm.atomic (fun () ->
      Stm.closed_nested (fun () -> Stm.on_commit (fun () -> incr commit_hits)));
  check "handler from committed child runs" 1 !commit_hits

let test_open_nested_handler_migrates () =
  let commit_hits = ref 0 in
  let abort_hits = ref 0 in
  Stm.atomic (fun () ->
      Stm.open_nested (fun () ->
          Stm.on_commit (fun () -> incr commit_hits);
          Stm.on_abort (fun () -> incr abort_hits)));
  check "migrated commit handler ran at parent commit" 1 !commit_hits;
  check "migrated abort handler discarded" 0 !abort_hits;
  (try
     Stm.atomic (fun () ->
         Stm.open_nested (fun () -> Stm.on_abort (fun () -> incr abort_hits));
         Stm.self_abort ())
   with Stm.Aborted -> ());
  check "migrated abort handler ran at parent abort" 1 !abort_hits

let test_abort_handlers_reverse_order () =
  let order = ref [] in
  (try
     Stm.atomic (fun () ->
         Stm.on_abort (fun () -> order := 1 :: !order);
         Stm.on_abort (fun () -> order := 2 :: !order);
         Stm.self_abort ())
   with Stm.Aborted -> ());
  Alcotest.(check (list int)) "newest compensation first" [ 1; 2 ] !order

let test_commit_handlers_registration_order () =
  let order = ref [] in
  Stm.atomic (fun () ->
      Stm.on_commit (fun () -> order := 1 :: !order);
      Stm.on_commit (fun () -> order := 2 :: !order));
  Alcotest.(check (list int)) "registration order" [ 2; 1 ] !order

let test_on_commit_outside_txn_runs_now () =
  let hit = ref 0 in
  Stm.on_commit (fun () -> incr hit);
  check "auto-commit handler" 1 !hit

(* ------------------------------------------------------------------ *)
(* Remote abort                                                        *)

let test_remote_abort_of_committed_fails () =
  let h = Stm.current () in
  check_bool "auto-commit handle cannot be aborted" false (Stm.remote_abort h)

let test_remote_abort_retries_victim () =
  (* The victim publishes its handle, then spins until aborted; the abort is
     delivered from the same thread before the victim's commit. *)
  let tries = ref 0 in
  let v = Tvar.make 0 in
  Stm.atomic (fun () ->
      incr tries;
      Tvar.set v !tries;
      if !tries = 1 then begin
        let me = Stm.current () in
        check_bool "first abort delivered" true (Stm.remote_abort me);
        (* Commit will observe the Aborted status and retry. *)
      end);
  check "victim retried once" 2 !tries;
  check "second attempt committed" 2 (Tvar.get v)

(* ------------------------------------------------------------------ *)
(* Parallel (multi-domain) atomicity                                   *)

let test_parallel_counter () =
  let n_domains = 4 and iters = 500 in
  let v = Tvar.make 0 in
  let body () =
    for _ = 1 to iters do
      Stm.atomic (fun () -> Tvar.set v (Tvar.get v + 1))
    done
  in
  let ds = List.init n_domains (fun _ -> Domain.spawn body) in
  List.iter Domain.join ds;
  check "atomic increments" (n_domains * iters) (Tvar.get v)

let test_parallel_invariant_transfer () =
  (* Transfers between two accounts preserve the total: classic atomicity
     check that fails under non-serializable interleavings. *)
  let a = Tvar.make 1000 and b = Tvar.make 1000 in
  let body () =
    for i = 1 to 300 do
      Stm.atomic (fun () ->
          let x = Tvar.get a and y = Tvar.get b in
          let amt = (i mod 7) + 1 in
          Tvar.set a (x - amt);
          Tvar.set b (y + amt))
    done
  in
  let observed_bad = Atomic.make false in
  let observer () =
    for _ = 1 to 2000 do
      let total = Stm.atomic (fun () -> Tvar.get a + Tvar.get b) in
      if total <> 2000 then Atomic.set observed_bad true
    done
  in
  let ds = [ Domain.spawn body; Domain.spawn body; Domain.spawn observer ] in
  List.iter Domain.join ds;
  check_bool "no torn snapshot" false (Atomic.get observed_bad);
  check "total preserved" 2000 (Tvar.get a + Tvar.get b)

let test_parallel_open_nested_counter () =
  (* Open-nested, abort-compensated increments: parents conflict heavily on
     [hot] and retry, re-executing the open-nested increment — but each
     aborted parent runs the migrated compensation, so the counter ends
     exactly equal to the number of committed parents. *)
  let c = Tvar.make 0 in
  let hot = Tvar.make 0 in
  let body () =
    for _ = 1 to 200 do
      Stm.atomic (fun () ->
          Stm.open_nested (fun () ->
              Tvar.set c (Tvar.get c + 1);
              Stm.on_abort (fun () ->
                  Stm.atomic (fun () -> Tvar.set c (Tvar.get c - 1))));
          Tvar.set hot (Tvar.get hot + 1))
    done
  in
  let ds = [ Domain.spawn body; Domain.spawn body ] in
  List.iter Domain.join ds;
  check "parent commits" 400 (Tvar.get hot);
  check "compensated counter exact" 400 (Tvar.get c)

(* ------------------------------------------------------------------ *)
(* Property tests                                                      *)

let prop_serial_sum =
  QCheck.Test.make ~name:"random transactional updates keep model in sync"
    ~count:50
    QCheck.(list (pair small_nat small_int))
    (fun ops ->
      let n = 8 in
      let tvars = Array.init n (fun _ -> Tvar.make 0) in
      let model = Array.make n 0 in
      List.iter
        (fun (i, delta) ->
          let i = i mod n in
          Stm.atomic (fun () -> Tvar.set tvars.(i) (Tvar.get tvars.(i) + delta));
          model.(i) <- model.(i) + delta)
        ops;
      Array.for_all2 (fun tv m -> Tvar.get tv = m) tvars model)

let prop_abort_never_leaks =
  QCheck.Test.make ~name:"aborted transactions leak no writes" ~count:50
    QCheck.(list small_int)
    (fun writes ->
      let v = Tvar.make 0 in
      List.iter
        (fun w ->
          try Stm.atomic (fun () -> Tvar.set v w; Stm.self_abort ())
          with Stm.Aborted -> ())
        writes;
      Tvar.get v = 0)

let suites =
  [
    ( "stm.basic",
      [
        Alcotest.test_case "read-write" `Quick test_read_write;
        Alcotest.test_case "rollback on exception" `Quick test_rollback_on_exception;
        Alcotest.test_case "self abort" `Quick test_self_abort;
        Alcotest.test_case "non-transactional access" `Quick test_nontx_access;
        Alcotest.test_case "modify" `Quick test_modify;
      ] );
    ( "stm.nesting",
      [
        Alcotest.test_case "closed nested commit" `Quick test_nested_commit;
        Alcotest.test_case "nested exception aborts all" `Quick
          test_nested_exception_aborts_all;
        Alcotest.test_case "open nested commits early" `Quick
          test_open_nested_commits_early;
        Alcotest.test_case "open nested reads drop dependencies" `Quick
          test_open_nested_reads_no_dependency;
      ] );
    ( "stm.handlers",
      [
        Alcotest.test_case "commit handler on commit" `Quick
          test_commit_handler_runs_on_commit;
        Alcotest.test_case "commit handler discarded on abort" `Quick
          test_commit_handler_discarded_on_abort;
        Alcotest.test_case "abort handler on abort" `Quick
          test_abort_handler_runs_on_abort;
        Alcotest.test_case "abort handler discarded on commit" `Quick
          test_abort_handler_discarded_on_commit;
        Alcotest.test_case "handlers in dead child discarded" `Quick
          test_handlers_in_aborted_child_discarded;
        Alcotest.test_case "handlers in committed child survive" `Quick
          test_handlers_in_committed_child_survive;
        Alcotest.test_case "open-nested handlers migrate" `Quick
          test_open_nested_handler_migrates;
        Alcotest.test_case "abort handlers newest-first" `Quick
          test_abort_handlers_reverse_order;
        Alcotest.test_case "commit handlers registration order" `Quick
          test_commit_handlers_registration_order;
        Alcotest.test_case "on_commit outside txn" `Quick
          test_on_commit_outside_txn_runs_now;
      ] );
    ( "stm.remote-abort",
      [
        Alcotest.test_case "cannot abort committed" `Quick
          test_remote_abort_of_committed_fails;
        Alcotest.test_case "victim retries" `Quick test_remote_abort_retries_victim;
      ] );
    ( "stm.parallel",
      [
        Alcotest.test_case "counter" `Quick test_parallel_counter;
        Alcotest.test_case "invariant transfer" `Quick
          test_parallel_invariant_transfer;
        Alcotest.test_case "open-nested counter" `Quick
          test_parallel_open_nested_counter;
      ] );
    ( "stm.properties",
      List.map QCheck_alcotest.to_alcotest [ prop_serial_sum; prop_abort_never_leaks ]
    );
  ]
