(* Tests for the experiment harness: the commutativity/lock specification
   (Tables 1/2/4/5/7/8) and the figure sweeps' qualitative shapes. *)

module CS = Harness.Commute_spec

let test_conditions_exact () =
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (v.CS.pair ^ " condition exact") true v.CS.condition_exact)
    (CS.check_all ())

let test_locks_sound () =
  List.iter
    (fun v ->
      Alcotest.(check bool) (v.CS.pair ^ " locks sound") true v.CS.locks_sound)
    (CS.check_all ())

let test_reads_commute () =
  Alcotest.(check bool) "read-only ops commute" true (CS.reads_commute ())

let test_queue_conditions () =
  List.iter
    (fun (pair, ok) -> Alcotest.(check bool) pair true ok)
    (CS.qcheck_all ())

let test_known_conflicts_nonzero () =
  (* Sanity: the sweep is not vacuous — same-key get-vs-put conflicts in
     some states, disjoint-key never. *)
  let find pair =
    List.find (fun v -> v.CS.pair = pair) (CS.check_all ())
  in
  Alcotest.(check bool) "same key conflicts exist" true
    ((find "get(0) vs put(0,10)").CS.conflicts > 0);
  Alcotest.(check int) "disjoint keys never conflict" 0
    (find "get(0) vs put(1,10)").CS.conflicts

(* ---------------- figure shapes (reduced sizes for test speed) ------- *)

let small = { Harness.Workloads.default_params with total_ops = 256 }
let cpus = [ 1; 8; 16 ]

let speedup fig label n =
  match Harness.Figures.value_at fig ~label ~cpus:n with
  | Some v -> v
  | None -> Alcotest.failf "missing point %s@%d" label n

let test_fig1_shape () =
  let fig = Harness.Figures.figure1 ~p:small ~cpus () in
  let java = speedup fig "Java HashMap" 16 in
  let naive = speedup fig "Atomos HashMap" 16 in
  let txc = speedup fig "Atomos TransactionalMap" 16 in
  Alcotest.(check bool) "java scales" true (java > 8.0);
  Alcotest.(check bool) "naive flattens below java" true (naive < 0.75 *. java);
  Alcotest.(check bool) "transactional map recovers scaling" true
    (txc > 0.85 *. java)

let test_fig2_shape () =
  let fig = Harness.Figures.figure2 ~p:small ~cpus () in
  let java = speedup fig "Java TreeMap" 16 in
  let naive = speedup fig "Atomos TreeMap" 16 in
  let txc = speedup fig "Atomos TransactionalSortedMap" 16 in
  Alcotest.(check bool) "java scales" true (java > 7.0);
  Alcotest.(check bool) "naive tree fails to scale" true (naive < 0.6 *. java);
  Alcotest.(check bool) "transactional sorted map recovers" true
    (txc > 0.85 *. java)

let test_fig3_shape () =
  let fig = Harness.Figures.figure3 ~p:small ~cpus () in
  let java = speedup fig "Java HashMap" 16 in
  let txc = speedup fig "Atomos TransactionalMap" 16 in
  Alcotest.(check bool) "coarse lock scales poorly" true (java < 4.0);
  Alcotest.(check bool) "compound transactional ops scale" true (txc > 10.0)

let test_ablation_isempty () =
  let outcomes = Harness.Ablations.isempty ~n_cpus:8 ~ops_per_cpu:16 () in
  match outcomes with
  | [ dedicated; via_size ] ->
      Alcotest.(check int) "dedicated lock aborts nobody" 0
        dedicated.Harness.Ablations.violations;
      Alcotest.(check bool) "size-lock encoding aborts" true
        (via_size.Harness.Ablations.violations > 0)
  | _ -> Alcotest.fail "expected two outcomes"

let test_ablation_blind_put () =
  let outcomes = Harness.Ablations.blind_put ~n_cpus:8 ~ops_per_cpu:16 () in
  match outcomes with
  | [ blind; standard ] ->
      Alcotest.(check int) "blind writers commute" 0
        blind.Harness.Ablations.violations;
      Alcotest.(check bool) "value-returning writers are ordered" true
        (standard.Harness.Ablations.violations > 0)
  | _ -> Alcotest.fail "expected two outcomes"

let test_locktable_traces () =
  (* The traced footprints must match Table 2's prescriptions. *)
  Alcotest.(check (list string))
    "get takes its key lock" [ "key(10)" ]
    (Harness.Locktables.probe_map (fun m ->
         ignore (Harness.Locktables.IM.find m 10)));
  Alcotest.(check (list string))
    "size takes the size lock" [ "size" ]
    (Harness.Locktables.probe_map (fun m ->
         ignore (Harness.Locktables.IM.size m)));
  Alcotest.(check (list string))
    "blind put takes nothing" []
    (Harness.Locktables.probe_map (fun m ->
         Harness.Locktables.IM.put_blind m 10 0))

let suites =
  [
    ( "spec.tables",
      [
        Alcotest.test_case "Table 1/4 conditions exact" `Quick
          test_conditions_exact;
        Alcotest.test_case "Table 2/5 locks sound" `Quick test_locks_sound;
        Alcotest.test_case "reads commute" `Quick test_reads_commute;
        Alcotest.test_case "Table 7 queue conditions" `Quick
          test_queue_conditions;
        Alcotest.test_case "sweep non-vacuous" `Quick
          test_known_conflicts_nonzero;
        Alcotest.test_case "lock-table traces" `Quick test_locktable_traces;
      ] );
    ( "figures.shape",
      [
        Alcotest.test_case "figure 1" `Slow test_fig1_shape;
        Alcotest.test_case "figure 2" `Slow test_fig2_shape;
        Alcotest.test_case "figure 3" `Slow test_fig3_shape;
        Alcotest.test_case "ablation isEmpty" `Quick test_ablation_isempty;
        Alcotest.test_case "ablation blind put" `Quick test_ablation_blind_put;
      ] );
  ]
