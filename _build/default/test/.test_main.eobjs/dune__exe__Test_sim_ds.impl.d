test/test_sim_ds.ml: Alcotest Array Fun Hashtbl Int List Option Printf Random Sim Sim_ds Txcoll
