test/test_stm_ds.ml: Alcotest Array Domain Hashtbl Int List Option Printf QCheck QCheck_alcotest Stm_ds String Tcc_stm
