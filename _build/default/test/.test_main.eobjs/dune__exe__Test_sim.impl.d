test/test_sim.ml: Alcotest Array Sim Sim_ds
