test/test_coll.ml: Alcotest Coll Hashtbl Int List Option Printf QCheck QCheck_alcotest String
