test/test_alt_underlying.ml: Alcotest Atomic Coll Domain Hashtbl Int List Random Tcc_stm Txcoll
