test/test_serializability.ml: Alcotest Domain Int List Map Mutex Printf Random Tcc_stm Txcoll
