test/test_equivalence.ml: List Printf QCheck QCheck_alcotest String Tcc_stm Txcoll
