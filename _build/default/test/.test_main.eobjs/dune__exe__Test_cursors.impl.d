test/test_cursors.ml: Alcotest Atomic Domain List Tcc_stm Txcoll
