test/test_txcoll_map.ml: Alcotest Atomic Domain Int List Map Printf QCheck QCheck_alcotest String Tcc_stm Txcoll
