test/test_sim_deeper.ml: Alcotest Array Atomic Harness Sim Sim_ds Txcoll
