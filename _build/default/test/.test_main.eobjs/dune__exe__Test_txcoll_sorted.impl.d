test/test_txcoll_sorted.ml: Alcotest Atomic Domain Int List Map Option Printf QCheck QCheck_alcotest String Tcc_stm Txcoll
