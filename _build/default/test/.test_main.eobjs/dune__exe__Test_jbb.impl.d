test/test_jbb.ml: Alcotest Harness Jbb List Option Printf Sim
