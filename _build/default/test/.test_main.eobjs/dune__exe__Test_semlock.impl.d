test/test_semlock.ml: Alcotest Array Hashtbl Int List QCheck QCheck_alcotest Tcc_stm Txcoll
