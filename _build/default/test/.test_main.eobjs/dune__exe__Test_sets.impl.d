test/test_sets.ml: Alcotest Atomic Buffer Domain Format Harness List String Tcc_stm Txcoll
