test/test_stm.ml: Alcotest Array Atomic Domain List QCheck QCheck_alcotest Tcc_stm
