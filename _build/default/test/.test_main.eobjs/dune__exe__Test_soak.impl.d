test/test_soak.ml: Alcotest Atomic Domain Hashtbl List Random Stm_ds Tcc_stm Txcoll
