test/test_key_leak.ml: Alcotest Atomic Domain Hashtbl Tcc_stm Txcoll
