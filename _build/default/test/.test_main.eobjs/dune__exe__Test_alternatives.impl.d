test/test_alternatives.ml: Alcotest Atomic Domain Hashtbl List QCheck Tcc_stm Txcoll
