test/test_stm_advanced.ml: Alcotest Array Atomic Domain Int List Random Tcc_stm Txcoll
