test/test_txcoll_queue.ml: Alcotest Atomic Domain List Option Tcc_stm Txcoll
