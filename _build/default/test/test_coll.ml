(* Model-based tests for the plain host data structures (lib/coll). *)

module H = Coll.Chain_hashmap
module O = Coll.Ordmap
module Q = Coll.Fifo_deque

(* ------------------------------------------------------------------ *)
(* Chain_hashmap                                                       *)

let test_hashmap_basic () =
  let h = H.create () in
  Alcotest.(check bool) "empty" true (H.is_empty h);
  H.add h "a" 1;
  H.add h "b" 2;
  H.add h "a" 3;
  Alcotest.(check int) "size counts keys once" 2 (H.size h);
  Alcotest.(check (option int)) "replaced" (Some 3) (H.find h "a");
  H.remove h "a";
  Alcotest.(check (option int)) "removed" None (H.find h "a");
  H.remove h "a";
  Alcotest.(check int) "idempotent remove" 1 (H.size h)

let test_hashmap_resize () =
  let h = H.create ~initial_capacity:2 () in
  for i = 0 to 999 do
    H.add h i (i * i)
  done;
  Alcotest.(check int) "size after growth" 1000 (H.size h);
  for i = 0 to 999 do
    assert (H.find h i = Some (i * i))
  done

type map_op = Add of int * int | Remove of int | Clear

let gen_map_op =
  QCheck.Gen.(
    frequency
      [
        (6, map2 (fun k v -> Add (k mod 32, v)) small_nat small_int);
        (3, map (fun k -> Remove (k mod 32)) small_nat);
        (1, return Clear);
      ])

let arb_map_ops =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Add (k, v) -> Printf.sprintf "add(%d,%d)" k v
             | Remove k -> Printf.sprintf "rm(%d)" k
             | Clear -> "clear")
           ops))
    QCheck.Gen.(list_size (int_bound 200) gen_map_op)

let model_agrees apply_sut find_sut size_sut ops =
  let model = Hashtbl.create 16 in
  List.iter
    (fun op ->
      (match op with
      | Add (k, v) -> Hashtbl.replace model k v
      | Remove k -> Hashtbl.remove model k
      | Clear -> Hashtbl.reset model);
      apply_sut op)
    ops;
  Hashtbl.fold (fun k v ok -> ok && find_sut k = Some v) model true
  && size_sut () = Hashtbl.length model

let prop_hashmap_model =
  QCheck.Test.make ~name:"hashmap agrees with model" ~count:200 arb_map_ops
    (fun ops ->
      let h = H.create ~initial_capacity:2 () in
      let apply = function
        | Add (k, v) -> H.add h k v
        | Remove k -> H.remove h k
        | Clear -> H.clear h
      in
      model_agrees apply (H.find h) (fun () -> H.size h) ops)

(* ------------------------------------------------------------------ *)
(* Ordmap                                                              *)

let test_ordmap_basic () =
  let m = O.create ~compare:Int.compare () in
  List.iter (fun k -> O.add m k (string_of_int k)) [ 5; 1; 9; 3; 7 ];
  Alcotest.(check int) "size" 5 (O.size m);
  Alcotest.(check (option (pair int string)))
    "min" (Some (1, "1")) (O.min_binding m);
  Alcotest.(check (option (pair int string)))
    "max" (Some (9, "9")) (O.max_binding m);
  Alcotest.(check (list (pair int string)))
    "sorted iteration"
    [ (1, "1"); (3, "3"); (5, "5"); (7, "7"); (9, "9") ]
    (O.to_list m);
  O.remove m 5;
  Alcotest.(check (option string)) "removed root-ish" None (O.find m 5);
  O.check_balanced m

let test_ordmap_range () =
  let m = O.create ~compare:Int.compare () in
  for i = 0 to 20 do
    O.add m i i
  done;
  let collect lo hi =
    let acc = ref [] in
    O.iter_range (fun k _ -> acc := k :: !acc) m ~lo ~hi;
    List.rev !acc
  in
  Alcotest.(check (list int)) "half-open range" [ 5; 6; 7; 8; 9 ]
    (collect (Some 5) (Some 10));
  Alcotest.(check (list int)) "head range" [ 0; 1; 2 ] (collect None (Some 3));
  Alcotest.(check (list int)) "tail range" [ 18; 19; 20 ] (collect (Some 18) None)

let test_ordmap_reverse_comparator () =
  let m = O.create ~compare:(fun a b -> Int.compare b a) () in
  List.iter (fun k -> O.add m k ()) [ 1; 2; 3 ];
  Alcotest.(check (option (pair int unit)))
    "min under reverse order" (Some (3, ())) (O.min_binding m)

let prop_ordmap_model =
  QCheck.Test.make ~name:"ordmap agrees with model and stays balanced"
    ~count:200 arb_map_ops (fun ops ->
      let m = O.create ~compare:Int.compare () in
      let apply = function
        | Add (k, v) -> O.add m k v
        | Remove k -> O.remove m k
        | Clear -> O.clear m
      in
      let ok = model_agrees apply (O.find m) (fun () -> O.size m) ops in
      O.check_balanced m;
      let sorted = O.to_list m in
      ok
      && sorted = List.sort (fun (a, _) (b, _) -> Int.compare a b) sorted)

(* ------------------------------------------------------------------ *)
(* Fifo_deque                                                          *)

let test_deque_fifo () =
  let q = Q.create ~initial_capacity:2 () in
  for i = 1 to 100 do
    Q.enqueue q i
  done;
  let out = List.init 100 (fun _ -> Option.get (Q.dequeue q)) in
  Alcotest.(check (list int)) "fifo order" (List.init 100 (fun i -> i + 1)) out;
  Alcotest.(check (option int)) "drained" None (Q.dequeue q)

let test_deque_push_front () =
  let q = Q.create () in
  Q.enqueue q 2;
  Q.enqueue q 3;
  Q.push_front q 1;
  Alcotest.(check (list int)) "front insert" [ 1; 2; 3 ] (Q.to_list q);
  Alcotest.(check (option int)) "peek" (Some 1) (Q.peek q)

let prop_deque_model =
  QCheck.Test.make ~name:"deque agrees with two-list model" ~count:200
    QCheck.(list (pair bool small_int))
    (fun ops ->
      let q = Q.create ~initial_capacity:1 () in
      let model = ref ([] : int list) in
      List.for_all
        (fun (enq, v) ->
          if enq then begin
            Q.enqueue q v;
            model := !model @ [ v ];
            true
          end
          else
            let expect =
              match !model with
              | [] -> None
              | x :: rest ->
                  model := rest;
                  Some x
            in
            Q.dequeue q = expect)
        ops
      && Q.to_list q = !model)

let suites =
  [
    ( "coll.hashmap",
      [
        Alcotest.test_case "basic" `Quick test_hashmap_basic;
        Alcotest.test_case "resize" `Quick test_hashmap_resize;
        QCheck_alcotest.to_alcotest prop_hashmap_model;
      ] );
    ( "coll.ordmap",
      [
        Alcotest.test_case "basic" `Quick test_ordmap_basic;
        Alcotest.test_case "range iteration" `Quick test_ordmap_range;
        Alcotest.test_case "reverse comparator" `Quick
          test_ordmap_reverse_comparator;
        QCheck_alcotest.to_alcotest prop_ordmap_model;
      ] );
    ( "coll.deque",
      [
        Alcotest.test_case "fifo" `Quick test_deque_fifo;
        Alcotest.test_case "push front" `Quick test_deque_push_front;
        QCheck_alcotest.to_alcotest prop_deque_model;
      ] );
  ]
