(* Tests for TransactionalSortedMap over the host STM. *)

module Stm = Tcc_stm.Stm
module SM = Txcoll.Host.Sorted_map (Txcoll.Host.Int_ordered)

let conflict_scenario ~reader ~writer =
  let phase = Atomic.make 0 in
  let signal n = if Atomic.get phase < n then Atomic.set phase n in
  let await n =
    while Atomic.get phase < n do
      Domain.cpu_relax ()
    done
  in
  let attempts = ref 0 in
  let d1 =
    Domain.spawn (fun () ->
        Stm.atomic (fun () ->
            incr attempts;
            reader ();
            signal 1;
            if !attempts = 1 then await 2))
  in
  let d2 =
    Domain.spawn (fun () ->
        await 1;
        Stm.atomic writer;
        signal 2)
  in
  Domain.join d1;
  Domain.join d2;
  !attempts

let seeded () =
  let m = SM.create () in
  List.iter (fun k -> ignore (SM.put m k (string_of_int k))) [ 10; 20; 30; 40; 50 ];
  m

(* ---------------- single-transaction semantics ---------------- *)

let test_ordered_iteration_merges_buffer () =
  let m = seeded () in
  Stm.atomic (fun () ->
      ignore (SM.put m 25 "25");
      ignore (SM.remove m 40);
      ignore (SM.put m 10 "ten");
      Alcotest.(check (list (pair int string)))
        "merged in order"
        [ (10, "ten"); (20, "20"); (25, "25"); (30, "30"); (50, "50") ]
        (SM.to_list m));
  Alcotest.(check (list (pair int string)))
    "committed in order"
    [ (10, "ten"); (20, "20"); (25, "25"); (30, "30"); (50, "50") ]
    (SM.to_list m)

let test_first_last_with_buffer () =
  let m = seeded () in
  Stm.atomic (fun () ->
      ignore (SM.put m 5 "new min");
      ignore (SM.remove m 50);
      Alcotest.(check (option int)) "buffered min" (Some 5) (SM.first_key m);
      Alcotest.(check (option int)) "max after buffered remove" (Some 40)
        (SM.last_key m));
  Alcotest.(check (option int)) "committed min" (Some 5) (SM.first_key m)

let test_range_fold () =
  let m = seeded () in
  Stm.atomic (fun () ->
      ignore (SM.put m 25 "25");
      let keys =
        List.rev
          (SM.fold_range (fun k _ acc -> k :: acc) m [] ~lo:(Some 20)
             ~hi:(Some 40))
      in
      Alcotest.(check (list int)) "half-open merged range" [ 20; 25; 30 ] keys)

let test_views () =
  let m = seeded () in
  let v = SM.sub_map m ~lo:20 ~hi:45 in
  Alcotest.(check (list int)) "subMap keys" [ 20; 30; 40 ]
    (List.map fst (SM.View.to_list v));
  Alcotest.(check (option int)) "view first" (Some 20) (SM.View.first_key v);
  Alcotest.(check (option int)) "view last" (Some 40) (SM.View.last_key v);
  Alcotest.(check int) "view size" 3 (SM.View.size v);
  Alcotest.check_raises "put outside bounds rejected"
    (Invalid_argument "TransactionalSortedMap.View.put") (fun () ->
      ignore (SM.View.put v 50 "no"));
  let h = SM.head_map m ~hi:30 in
  Alcotest.(check (list int)) "headMap" [ 10; 20 ]
    (List.map fst (SM.View.to_list h));
  let t = SM.tail_map m ~lo:30 in
  Alcotest.(check (list int)) "tailMap" [ 30; 40; 50 ]
    (List.map fst (SM.View.to_list t))

let test_empty_map_endpoints () =
  let m = SM.create () in
  Stm.atomic (fun () ->
      Alcotest.(check (option int)) "first of empty" None (SM.first_key m);
      Alcotest.(check (option int)) "last of empty" None (SM.last_key m))

let test_abort_restores () =
  let m = seeded () in
  let before = SM.to_list m in
  (try
     Stm.atomic (fun () ->
         ignore (SM.put m 1 "x");
         ignore (SM.remove m 30);
         Stm.self_abort ())
   with Stm.Aborted -> ());
  Alcotest.(check (list (pair int string))) "unchanged" before (SM.to_list m);
  Alcotest.(check int) "no stale locks" 0 (SM.outstanding_locks m)

(* ---------------- Table 5 lock footprints ---------------- *)

let test_lock_footprints () =
  let m = seeded () in
  Stm.atomic (fun () ->
      ignore (SM.first_key m);
      Alcotest.(check bool) "firstKey takes first lock" true (SM.holds_first_lock m);
      Alcotest.(check bool) "no last lock yet" false (SM.holds_last_lock m);
      ignore (SM.last_key m);
      Alcotest.(check bool) "lastKey takes last lock" true (SM.holds_last_lock m));
  Stm.atomic (fun () ->
      ignore (SM.fold_range (fun _ _ acc -> acc) m () ~lo:(Some 20) ~hi:(Some 40));
      Alcotest.(check bool) "range iteration takes range lock" true
        (SM.holds_range_lock m);
      Alcotest.(check bool) "bounded range takes no first lock" false
        (SM.holds_first_lock m));
  Stm.atomic (fun () ->
      ignore (SM.to_list m);
      Alcotest.(check bool) "full iteration takes first lock" true
        (SM.holds_first_lock m);
      Alcotest.(check bool) "full iteration takes last lock" true
        (SM.holds_last_lock m))

(* ---------------- semantic conflicts ---------------- *)

let test_range_conflict_inside () =
  let m = seeded () in
  let n =
    conflict_scenario
      ~reader:(fun () ->
        ignore (SM.fold_range (fun _ _ acc -> acc) m [] ~lo:(Some 20) ~hi:(Some 40)))
      ~writer:(fun () -> ignore (SM.put m 25 "inside iterated range"))
  in
  Alcotest.(check int) "insert inside range aborts iterator" 2 n

let test_range_no_conflict_outside () =
  let m = seeded () in
  let n =
    conflict_scenario
      ~reader:(fun () ->
        ignore (SM.fold_range (fun _ _ acc -> acc) m [] ~lo:(Some 20) ~hi:(Some 40)))
      ~writer:(fun () -> ignore (SM.put m 45 "outside range"))
  in
  Alcotest.(check int) "insert outside range commutes" 1 n

let test_first_key_conflict_new_min () =
  let m = seeded () in
  let n =
    conflict_scenario
      ~reader:(fun () -> ignore (SM.first_key m))
      ~writer:(fun () -> ignore (SM.put m 1 "new minimum"))
  in
  Alcotest.(check int) "new minimum aborts firstKey reader" 2 n

let test_first_key_no_conflict_middle_insert () =
  let m = seeded () in
  let n =
    conflict_scenario
      ~reader:(fun () -> ignore (SM.first_key m))
      ~writer:(fun () -> ignore (SM.put m 25 "middle"))
  in
  Alcotest.(check int) "middle insert commutes with firstKey" 1 n

let test_last_key_conflict_remove_max () =
  let m = seeded () in
  let n =
    conflict_scenario
      ~reader:(fun () -> ignore (SM.last_key m))
      ~writer:(fun () -> ignore (SM.remove m 50))
  in
  Alcotest.(check int) "removing max aborts lastKey reader" 2 n

let test_remove_min_conflicts_first () =
  let m = seeded () in
  let n =
    conflict_scenario
      ~reader:(fun () -> ignore (SM.first_key m))
      ~writer:(fun () -> ignore (SM.remove m 10))
  in
  Alcotest.(check int) "removing min aborts firstKey reader" 2 n

let test_view_first_conflict_prefix_insert () =
  let m = seeded () in
  let n =
    conflict_scenario
      ~reader:(fun () ->
        ignore (SM.View.first_key (SM.tail_map m ~lo:15)))
      ~writer:(fun () -> ignore (SM.put m 17 "between lo and found"))
  in
  (* tailMap(15).firstKey returned 20; inserting 17 invalidates it. *)
  Alcotest.(check int) "prefix insert aborts view firstKey" 2 n

let test_view_first_no_conflict_suffix_insert () =
  let m = seeded () in
  let n =
    conflict_scenario
      ~reader:(fun () ->
        ignore (SM.View.first_key (SM.tail_map m ~lo:15)))
      ~writer:(fun () -> ignore (SM.put m 35 "beyond found key"))
  in
  Alcotest.(check int) "suffix insert commutes with view firstKey" 1 n

(* ---------------- property tests ---------------- *)

module IntMap = Map.Make (Int)

type op = Put of int * int | Remove of int | Range of int * int

let arb_ops =
  QCheck.make
    ~print:(fun l ->
      String.concat ";"
        (List.map
           (function
             | Put (k, v) -> Printf.sprintf "put(%d,%d)" k v
             | Remove k -> Printf.sprintf "rm(%d)" k
             | Range (a, b) -> Printf.sprintf "range(%d,%d)" a b)
           l))
    QCheck.Gen.(
      list_size (int_bound 80)
        (frequency
           [
             (4, map2 (fun k v -> Put (k mod 32, v)) small_nat small_int);
             (2, map (fun k -> Remove (k mod 32)) small_nat);
             (2, map2 (fun a b -> Range (a mod 32, b mod 32)) small_nat small_nat);
           ]))

module IntSM = Txcoll.Host.Sorted_map (Txcoll.Host.Int_ordered)

let prop_sorted_matches_model =
  QCheck.Test.make
    ~name:"sorted map in-transaction views match Stdlib.Map model" ~count:100
    arb_ops (fun ops ->
      let m = IntSM.create () in
      ignore (IntSM.put m 7 70);
      ignore (IntSM.put m 19 190);
      let model = ref (IntMap.of_list [ (7, 70); (19, 190) ]) in
      let ok = ref true in
      Stm.atomic (fun () ->
          List.iter
            (fun op ->
              match op with
              | Put (k, v) ->
                  ignore (IntSM.put m k v);
                  model := IntMap.add k v !model
              | Remove k ->
                  ignore (IntSM.remove m k);
                  model := IntMap.remove k !model
              | Range (a, b) ->
                  let lo = min a b and hi = max a b in
                  let got =
                    List.rev
                      (IntSM.fold_range
                         (fun k v acc -> (k, v) :: acc)
                         m [] ~lo:(Some lo) ~hi:(Some hi))
                  in
                  let expect =
                    IntMap.bindings
                      (IntMap.filter (fun k _ -> k >= lo && k < hi) !model)
                  in
                  if got <> expect then ok := false)
            ops;
          if IntSM.to_list m <> IntMap.bindings !model then ok := false;
          if IntSM.first_key m <> Option.map fst (IntMap.min_binding_opt !model)
          then ok := false;
          if IntSM.last_key m <> Option.map fst (IntMap.max_binding_opt !model)
          then ok := false);
      (* And the committed state agrees too. *)
      !ok
      && IntSM.to_list m = IntMap.bindings !model
      && IntSM.outstanding_locks m = 0)

let suites =
  [
    ( "txsorted.single",
      [
        Alcotest.test_case "ordered merge" `Quick
          test_ordered_iteration_merges_buffer;
        Alcotest.test_case "first/last with buffer" `Quick
          test_first_last_with_buffer;
        Alcotest.test_case "range fold" `Quick test_range_fold;
        Alcotest.test_case "views" `Quick test_views;
        Alcotest.test_case "empty endpoints" `Quick test_empty_map_endpoints;
        Alcotest.test_case "abort restores" `Quick test_abort_restores;
      ] );
    ( "txsorted.locks",
      [ Alcotest.test_case "Table 5 footprints" `Quick test_lock_footprints ] );
    ( "txsorted.conflicts",
      [
        Alcotest.test_case "insert inside range" `Quick test_range_conflict_inside;
        Alcotest.test_case "insert outside range" `Quick
          test_range_no_conflict_outside;
        Alcotest.test_case "new min vs firstKey" `Quick
          test_first_key_conflict_new_min;
        Alcotest.test_case "middle insert vs firstKey" `Quick
          test_first_key_no_conflict_middle_insert;
        Alcotest.test_case "remove max vs lastKey" `Quick
          test_last_key_conflict_remove_max;
        Alcotest.test_case "remove min vs firstKey" `Quick
          test_remove_min_conflicts_first;
        Alcotest.test_case "view firstKey prefix insert" `Quick
          test_view_first_conflict_prefix_insert;
        Alcotest.test_case "view firstKey suffix insert" `Quick
          test_view_first_no_conflict_suffix_insert;
      ] );
    ( "txsorted.properties",
      [ QCheck_alcotest.to_alcotest prop_sorted_matches_model ] );
  ]

(* ---------------- pessimistic policies on the sorted map -------------- *)

let test_sorted_pessimistic_aggressive () =
  let m = SM.create ~write_policy:SM.Pessimistic_aggressive () in
  ignore (SM.put m 10 "seed");
  let n =
    conflict_scenario
      ~reader:(fun () -> ignore (SM.find m 10))
      ~writer:(fun () -> ignore (SM.put m 10 "w"))
  in
  Alcotest.(check int) "reader aborted at write time" 2 n

let test_sorted_pessimistic_range_conflict () =
  (* Aggressive writes also abort range lockers at operation time. *)
  let m = SM.create ~write_policy:SM.Pessimistic_aggressive () in
  List.iter (fun k -> ignore (SM.put m k "s")) [ 10; 20; 30 ];
  let n =
    conflict_scenario
      ~reader:(fun () ->
        ignore (SM.fold_range (fun _ _ a -> a) m () ~lo:(Some 5) ~hi:(Some 25)))
      ~writer:(fun () -> ignore (SM.put m 15 "w"))
  in
  Alcotest.(check int) "range locker aborted early" 2 n

let test_sorted_pessimistic_parallel_correct () =
  let m = SM.create ~write_policy:SM.Pessimistic_timid () in
  let worker base () =
    for i = 0 to 99 do
      Stm.atomic (fun () -> ignore (SM.put m (base + i) "v"))
    done
  in
  let ds = [ Domain.spawn (worker 0); Domain.spawn (worker 1000) ] in
  List.iter Domain.join ds;
  Alcotest.(check int) "all inserts" 200 (SM.size m);
  Alcotest.(check int) "no leaks" 0 (SM.outstanding_locks m)

let suites =
  suites
  @ [
      ( "txsorted.pessimistic",
        [
          Alcotest.test_case "aggressive key conflict" `Quick
            test_sorted_pessimistic_aggressive;
          Alcotest.test_case "aggressive range conflict" `Quick
            test_sorted_pessimistic_range_conflict;
          Alcotest.test_case "timid parallel correctness" `Quick
            test_sorted_pessimistic_parallel_correct;
        ] );
    ]
