(* End-to-end serializability check for TransactionalMap.

   Several domains run randomized transactions (each a short program of
   get/put/remove/size operations), recording every operation and its
   observed result.  Afterwards a backtracking search must find a serial
   order of the committed transactions that replays every recorded result
   from the known initial state — the definition of serializability the
   paper's semantic concurrency control promises to preserve. *)

module Stm = Tcc_stm.Stm
module IM = Txcoll.Host.Map (Txcoll.Host.Int_hashed)
module StateMap = Map.Make (Int)

type op =
  | Get of int * string option
  | Put of int * string * string option
  | Remove of int * string option
  | Size of int

let replay state log =
  let rec go state = function
    | [] -> Some state
    | Get (k, seen) :: rest ->
        if StateMap.find_opt k state = seen then go state rest else None
    | Put (k, v, old) :: rest ->
        if StateMap.find_opt k state = old then go (StateMap.add k v state) rest
        else None
    | Remove (k, old) :: rest ->
        if StateMap.find_opt k state = old then go (StateMap.remove k state) rest
        else None
    | Size n :: rest ->
        if StateMap.cardinal state = n then go state rest else None
  in
  go state log

(* Backtracking search for a serial order consistent with all logs. *)
let serializable ~initial logs =
  let rec search state remaining =
    match remaining with
    | [] -> true
    | _ ->
        List.exists
          (fun log ->
            match replay state log with
            | Some state' ->
                search state' (List.filter (fun l -> l != log) remaining)
            | None -> false)
          remaining
  in
  search initial logs

let run_round ~seed ~txns_per_domain ~n_domains =
  let m = IM.create () in
  let initial = [ (1, "i1"); (2, "i2"); (3, "i3") ] in
  List.iter (fun (k, v) -> ignore (IM.put m k v)) initial;
  let logs_mutex = Mutex.create () in
  let logs = ref [] in
  let worker d () =
    let rng = Random.State.make [| seed; d |] in
    for t = 1 to txns_per_domain do
      let log = ref [] in
      let committed =
        try
          Stm.atomic (fun () ->
              log := [];
              let n_ops = 2 + Random.State.int rng 3 in
              for o = 1 to n_ops do
                let k = 1 + Random.State.int rng 6 in
                match Random.State.int rng 10 with
                | 0 | 1 | 2 | 3 ->
                    let seen = IM.find m k in
                    log := Get (k, seen) :: !log
                | 4 | 5 | 6 ->
                    let v = Printf.sprintf "d%d-t%d-o%d" d t o in
                    let old = IM.put m k v in
                    log := Put (k, v, old) :: !log
                | 7 | 8 ->
                    let old = IM.remove m k in
                    log := Remove (k, old) :: !log
                | _ ->
                    let n = IM.size m in
                    log := Size n :: !log
              done;
              (* A fraction of transactions abort themselves: their logs
                 must NOT be needed for serializability. *)
              if Random.State.int rng 8 = 0 then Stm.self_abort ());
          true
        with Stm.Aborted -> false
      in
      if committed then begin
        Mutex.lock logs_mutex;
        logs := List.rev !log :: !logs;
        Mutex.unlock logs_mutex
      end
    done
  in
  let ds = List.init n_domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join ds;
  let initial_state =
    List.fold_left (fun s (k, v) -> StateMap.add k v s) StateMap.empty initial
  in
  (* The final committed contents must also be reachable: append a virtual
     read-everything transaction. *)
  let final_log =
    List.map (fun (k, v) -> Get (k, Some v)) (IM.to_list m)
    @ [ Size (IM.size m) ]
  in
  serializable ~initial:initial_state (!logs @ [ final_log ])

let test_concurrent_histories_serializable () =
  for seed = 1 to 12 do
    Alcotest.(check bool)
      (Printf.sprintf "round %d serializable" seed)
      true
      (run_round ~seed ~txns_per_domain:5 ~n_domains:2)
  done

let test_checker_rejects_impossible_history () =
  (* Sanity: the checker is not vacuous.  Two logs that each read the
     initial value of [1] and then overwrite it differently cannot both
     have read "i1" in any serial order together with a final read. *)
  let initial = StateMap.singleton 1 "i1" in
  let l1 = [ Get (1, Some "i1"); Put (1, "a", Some "i1") ] in
  let l2 = [ Get (1, Some "i1"); Put (1, "b", Some "i1") ] in
  let final = [ Get (1, Some "a") ] in
  Alcotest.(check bool) "write skew detected" false
    (serializable ~initial [ l1; l2; final ])

let suites =
  [
    ( "serializability",
      [
        Alcotest.test_case "concurrent histories" `Quick
          test_concurrent_histories_serializable;
        Alcotest.test_case "checker rejects write skew" `Quick
          test_checker_rejects_impossible_history;
      ] );
  ]
