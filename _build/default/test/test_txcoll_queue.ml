(* Tests for the reduced-isolation TransactionalQueue. *)

module Stm = Tcc_stm.Stm
module Q = Txcoll.Host.Queue

let conflict_scenario ~reader ~writer =
  let phase = Atomic.make 0 in
  let signal n = if Atomic.get phase < n then Atomic.set phase n in
  let await n =
    while Atomic.get phase < n do
      Domain.cpu_relax ()
    done
  in
  let attempts = ref 0 in
  let d1 =
    Domain.spawn (fun () ->
        Stm.atomic (fun () ->
            incr attempts;
            reader ();
            signal 1;
            if !attempts = 1 then await 2))
  in
  let d2 =
    Domain.spawn (fun () ->
        await 1;
        Stm.atomic writer;
        signal 2)
  in
  Domain.join d1;
  Domain.join d2;
  !attempts

let test_put_deferred_to_commit () =
  let q = Q.create () in
  Stm.atomic (fun () ->
      Q.put q 1;
      Alcotest.(check int) "not yet visible" 0 (Q.committed_length q));
  Alcotest.(check int) "visible after commit" 1 (Q.committed_length q)

let test_put_discarded_on_abort () =
  let q = Q.create () in
  (try
     Stm.atomic (fun () ->
         Q.put q 1;
         Q.put q 2;
         Stm.self_abort ())
   with Stm.Aborted -> ());
  Alcotest.(check int) "speculative work never leaks" 0 (Q.committed_length q)

let test_take_immediate_reduced_isolation () =
  let q = Q.create () in
  Q.put q 1;
  Q.put q 2;
  Stm.atomic (fun () ->
      Alcotest.(check (option int)) "took head" (Some 1) (Q.poll q);
      (* Reduced isolation: the element is already gone from the committed
         queue even though we have not committed. *)
      Alcotest.(check int) "removed immediately" 1 (Q.committed_length q));
  Alcotest.(check int) "consumed for good after commit" 1 (Q.committed_length q)

let test_abort_returns_taken_items_in_order () =
  let q = Q.create () in
  List.iter (Q.put q) [ 1; 2; 3; 4 ];
  (try
     Stm.atomic (fun () ->
         Alcotest.(check (option int)) "t1" (Some 1) (Q.poll q);
         Alcotest.(check (option int)) "t2" (Some 2) (Q.poll q);
         Stm.self_abort ())
   with Stm.Aborted -> ());
  let drained = List.init 4 (fun _ -> Option.get (Q.poll q)) in
  Alcotest.(check (list int)) "original order restored" [ 1; 2; 3; 4 ] drained

let test_poll_own_additions () =
  let q = Q.create () in
  Stm.atomic (fun () ->
      Q.put q 10;
      Q.put q 11;
      Alcotest.(check (option int)) "sees own deferred add" (Some 10) (Q.poll q);
      Alcotest.(check (option int)) "fifo within buffer" (Some 11) (Q.poll q);
      Alcotest.(check (option int)) "then empty" None (Q.poll q))

let test_peek_does_not_consume () =
  let q = Q.create () in
  Q.put q 5;
  Stm.atomic (fun () ->
      Alcotest.(check (option int)) "peek" (Some 5) (Q.peek q);
      Alcotest.(check int) "still there" 1 (Q.committed_length q);
      Alcotest.(check bool) "non-null peek takes no empty lock" false
        (Q.holds_empty_lock q))

let test_empty_observation_locks () =
  let q = Q.create () in
  Stm.atomic (fun () ->
      Alcotest.(check (option int)) "empty poll" None (Q.poll q);
      Alcotest.(check bool) "null poll takes empty lock" true
        (Q.holds_empty_lock q))

let test_conflict_empty_poll_vs_put () =
  let q = Q.create () in
  let n =
    conflict_scenario
      ~reader:(fun () -> ignore (Q.poll q))
      ~writer:(fun () -> Q.put q 1)
  in
  Alcotest.(check int) "put invalidates observed emptiness" 2 n

let test_no_conflict_take_vs_take () =
  let q = Q.create () in
  List.iter (Q.put q) [ 1; 2; 3; 4 ];
  let n =
    conflict_scenario
      ~reader:(fun () -> ignore (Q.poll q))
      ~writer:(fun () -> ignore (Q.poll q))
  in
  Alcotest.(check int) "takes never conflict (Table 7)" 1 n

let test_no_conflict_put_vs_nonempty_poll () =
  let q = Q.create () in
  List.iter (Q.put q) [ 1; 2 ];
  let n =
    conflict_scenario
      ~reader:(fun () -> ignore (Q.poll q))
      ~writer:(fun () -> Q.put q 9)
  in
  Alcotest.(check int) "successful poll commutes with put" 1 n

let test_parallel_work_conservation () =
  (* Producers and consumers with random aborts: every produced element is
     either consumed exactly once or still in the queue. *)
  let q = Q.create () in
  let produced = 200 in
  let consumed = Atomic.make 0 in
  let producer () =
    for i = 1 to produced / 2 do
      Stm.atomic (fun () -> Q.put q i)
    done
  in
  let consumer () =
    let stop = ref false in
    let attempts = ref 0 in
    while (not !stop) && !attempts < 10_000 do
      incr attempts;
      let got =
        try
          Stm.atomic (fun () ->
              match Q.poll q with
              | Some _ as v ->
                  (* Occasionally abort to exercise compensation. *)
                  if !attempts mod 7 = 0 then Stm.self_abort () else v
              | None -> None)
        with Stm.Aborted -> None
      in
      match got with
      | Some _ -> ignore (Atomic.fetch_and_add consumed 1)
      | None -> if Atomic.get consumed >= produced then stop := true
    done
  in
  let ds =
    [
      Domain.spawn producer;
      Domain.spawn producer;
      Domain.spawn consumer;
    ]
  in
  List.iter Domain.join ds;
  (* Drain the remainder single-threaded. *)
  let rec drain n = match Q.poll q with Some _ -> drain (n + 1) | None -> n in
  let leftover = drain 0 in
  Alcotest.(check int) "work conserved" produced (Atomic.get consumed + leftover)

let suites =
  [
    ( "txqueue.single",
      [
        Alcotest.test_case "put deferred" `Quick test_put_deferred_to_commit;
        Alcotest.test_case "put discarded on abort" `Quick
          test_put_discarded_on_abort;
        Alcotest.test_case "take is immediate" `Quick
          test_take_immediate_reduced_isolation;
        Alcotest.test_case "abort restores order" `Quick
          test_abort_returns_taken_items_in_order;
        Alcotest.test_case "poll own additions" `Quick test_poll_own_additions;
        Alcotest.test_case "peek" `Quick test_peek_does_not_consume;
        Alcotest.test_case "empty observation locks" `Quick
          test_empty_observation_locks;
      ] );
    ( "txqueue.conflicts",
      [
        Alcotest.test_case "empty poll vs put" `Quick
          test_conflict_empty_poll_vs_put;
        Alcotest.test_case "take vs take" `Quick test_no_conflict_take_vs_take;
        Alcotest.test_case "non-empty poll vs put" `Quick
          test_no_conflict_put_vs_nonempty_poll;
      ] );
    ( "txqueue.parallel",
      [
        Alcotest.test_case "work conservation with aborts" `Quick
          test_parallel_work_conservation;
      ] );
  ]
