(* Equivalence properties:
   - cursor drains equal fold-based enumerations within one transaction;
   - the two Map underlyings (chaining / open addressing) and the two
     SortedMap underlyings (AVL / skip list) are observationally equal under
     the wrapper, for random transactional programs. *)

module Stm = Tcc_stm.Stm
module IM = Txcoll.Host.Map (Txcoll.Host.Int_hashed)
module SM = Txcoll.Host.Sorted_map (Txcoll.Host.Int_ordered)
module OaM = Txcoll.Host.Map_over_open_addressing (Txcoll.Host.Int_hashed)
module SkipM = Txcoll.Host.Sorted_map_over_skiplist (Txcoll.Host.Int_ordered)

type op = Put of int * int | Remove of int | Abort_txn

let arb_prog =
  QCheck.make
    ~print:(fun l ->
      String.concat ";"
        (List.map
           (function
             | Put (k, v) -> Printf.sprintf "+%d=%d" k v
             | Remove k -> Printf.sprintf "-%d" k
             | Abort_txn -> "abort")
           (List.concat l)))
    QCheck.Gen.(
      list_size (int_bound 12)
        (list_size (int_bound 8)
           (frequency
              [
                (5, map2 (fun k v -> Put (k mod 20, v)) small_nat small_int);
                (3, map (fun k -> Remove (k mod 20)) small_nat);
                (1, return Abort_txn);
              ])))

let run_prog ~put ~remove prog =
  List.iter
    (fun txn_ops ->
      try
        Stm.atomic (fun () ->
            List.iter
              (function
                | Put (k, v) -> put k v
                | Remove k -> remove k
                | Abort_txn -> Stm.self_abort ())
              txn_ops)
      with Stm.Aborted -> ())
    prog

let prop_cursor_equals_fold_map =
  QCheck.Test.make ~name:"map cursor drain equals fold" ~count:80 arb_prog
    (fun prog ->
      let m = IM.create () in
      run_prog ~put:(fun k v -> ignore (IM.put m k v))
        ~remove:(fun k -> ignore (IM.remove m k))
        prog;
      Stm.atomic (fun () ->
          ignore (IM.put m 999 0);
          let by_fold =
            List.sort compare (IM.fold (fun k v acc -> (k, v) :: acc) m [])
          in
          let c = IM.cursor m in
          let rec drain acc =
            match IM.next c with Some kv -> drain (kv :: acc) | None -> acc
          in
          List.sort compare (drain []) = by_fold))

let prop_cursor_equals_fold_sorted =
  QCheck.Test.make ~name:"sorted cursor drain equals ordered fold" ~count:80
    arb_prog (fun prog ->
      let m = SM.create () in
      run_prog ~put:(fun k v -> ignore (SM.put m k v))
        ~remove:(fun k -> ignore (SM.remove m k))
        prog;
      Stm.atomic (fun () ->
          ignore (SM.put m 15 1);
          ignore (SM.remove m 3);
          let by_fold = List.rev (SM.fold (fun k v acc -> (k, v) :: acc) m []) in
          let c = SM.cursor m in
          let rec drain acc =
            match SM.cursor_next c with
            | Some kv -> drain (kv :: acc)
            | None -> List.rev acc
          in
          drain [] = by_fold))

let prop_underlyings_equivalent_map =
  QCheck.Test.make ~name:"chaining and open addressing observationally equal"
    ~count:80 arb_prog (fun prog ->
      let a = IM.create () in
      let b = OaM.create () in
      run_prog ~put:(fun k v -> ignore (IM.put a k v))
        ~remove:(fun k -> ignore (IM.remove a k))
        prog;
      run_prog ~put:(fun k v -> ignore (OaM.put b k v))
        ~remove:(fun k -> ignore (OaM.remove b k))
        prog;
      IM.size a = OaM.size b
      && List.sort compare (IM.to_list a) = List.sort compare (OaM.to_list b))

let prop_underlyings_equivalent_sorted =
  QCheck.Test.make ~name:"avl and skiplist observationally equal" ~count:80
    arb_prog (fun prog ->
      let a = SM.create () in
      let b = SkipM.create () in
      run_prog ~put:(fun k v -> ignore (SM.put a k v))
        ~remove:(fun k -> ignore (SM.remove a k))
        prog;
      run_prog ~put:(fun k v -> ignore (SkipM.put b k v))
        ~remove:(fun k -> ignore (SkipM.remove b k))
        prog;
      SM.to_list a = SkipM.to_list b
      && SM.first_key a = SkipM.first_key b
      && SM.last_key a = SkipM.last_key b
      && SM.fold_range (fun k _ acc -> k :: acc) a [] ~lo:(Some 4) ~hi:(Some 15)
         = SkipM.fold_range (fun k _ acc -> k :: acc) b [] ~lo:(Some 4)
             ~hi:(Some 15))

let suites =
  [
    ( "equivalence",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_cursor_equals_fold_map;
          prop_cursor_equals_fold_sorted;
          prop_underlyings_equivalent_map;
          prop_underlyings_equivalent_sorted;
        ] );
  ]
