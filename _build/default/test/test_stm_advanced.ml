(* Advanced host-STM tests: read-version extension, opacity (no zombie
   snapshots), deep nesting, handler interactions with remote aborts, and
   failure injection against the collection classes. *)

module Tvar = Tcc_stm.Tvar
module Stm = Tcc_stm.Stm
module IM = Txcoll.Host.Map (Txcoll.Host.Int_hashed)
module Q = Txcoll.Host.Queue

(* ------------------------------------------------------------------ *)
(* Read-version extension: a long transaction reading many tvars must
   survive concurrent commits to UNRELATED tvars without retrying. *)

let test_rv_extension_survives_unrelated_commits () =
  let mine = Array.init 64 (fun i -> Tvar.make i) in
  let theirs = Tvar.make 0 in
  let stop = Atomic.make false in
  let writer () =
    while not (Atomic.get stop) do
      Stm.atomic (fun () -> Tvar.set theirs (Tvar.get theirs + 1));
      Domain.cpu_relax ()
    done
  in
  let d = Domain.spawn writer in
  let attempts = ref 0 in
  let total =
    Stm.atomic (fun () ->
        incr attempts;
        (* Read slowly so the writer's clock advances between our reads,
           forcing read-version extensions. *)
        Array.fold_left
          (fun acc tv ->
            for _ = 1 to 100 do
              Domain.cpu_relax ()
            done;
            acc + Tvar.get tv)
          0 mine)
  in
  Atomic.set stop true;
  Domain.join d;
  Alcotest.(check int) "sum correct" (63 * 64 / 2) total;
  Alcotest.(check int) "no retries despite clock movement" 1 !attempts

(* Opacity: a transaction must never observe two tvars mid-update, even
   transiently (before its commit-time validation). *)

let test_opacity_no_torn_reads () =
  let a = Tvar.make 0 and b = Tvar.make 0 in
  let stop = Atomic.make false in
  let torn = Atomic.make false in
  let writer () =
    let i = ref 0 in
    while not (Atomic.get stop) do
      incr i;
      Stm.atomic (fun () ->
          Tvar.set a !i;
          Tvar.set b !i)
    done
  in
  let reader () =
    for _ = 1 to 3000 do
      let x, y =
        Stm.atomic (fun () ->
            let x = Tvar.get a in
            for _ = 1 to 50 do
              Domain.cpu_relax ()
            done;
            (x, Tvar.get b))
      in
      if x <> y then Atomic.set torn true
    done;
    Atomic.set stop true
  in
  let d1 = Domain.spawn writer and d2 = Domain.spawn reader in
  Domain.join d1;
  Domain.join d2;
  Alcotest.(check bool) "snapshots always consistent" false (Atomic.get torn)

(* ------------------------------------------------------------------ *)
(* Deep nesting *)

let test_deep_closed_nesting () =
  let v = Tvar.make 0 in
  let rec nest d =
    if d = 0 then Tvar.set v (Tvar.get v + 1)
    else Stm.closed_nested (fun () -> nest (d - 1))
  in
  Stm.atomic (fun () -> nest 16);
  Alcotest.(check int) "deeply nested write committed" 1 (Tvar.get v)

let test_open_within_closed_within_open () =
  let log = ref [] in
  let v = Tvar.make 0 in
  (try
     Stm.atomic (fun () ->
         Stm.closed_nested (fun () ->
             Stm.open_nested (fun () ->
                 Tvar.set v 1;
                 Stm.on_abort (fun () -> log := "compensate" :: !log)));
         Stm.self_abort ())
   with Stm.Aborted -> ());
  Alcotest.(check int) "open write survived" 1 (Tvar.get v);
  Alcotest.(check (list string))
    "compensation migrated through closed to top" [ "compensate" ] !log

(* ------------------------------------------------------------------ *)
(* Failure injection: random remote aborts against collection users.    *)

let test_random_remote_aborts_against_collections () =
  let m = IM.create () in
  let q = Q.create () in
  let victims : Stm.handle option Atomic.t = Atomic.make None in
  let stop = Atomic.make false in
  let committed = Atomic.make 0 in
  let aborter () =
    while not (Atomic.get stop) do
      (match Atomic.get victims with
      | Some h -> ignore (Stm.remote_abort h)
      | None -> ());
      Domain.cpu_relax ()
    done
  in
  let worker () =
    let rng = Random.State.make [| 0xF00 |] in
    for i = 1 to 400 do
      (try
         Stm.atomic (fun () ->
             Atomic.set victims (Some (Stm.current ()));
             let k = Random.State.int rng 32 in
             ignore (IM.put m k i);
             Q.put q i;
             ignore (IM.find m ((k + 1) mod 32));
             Atomic.set victims None)
       with Stm.Aborted -> ());
      ignore (Atomic.fetch_and_add committed 1)
    done;
    Atomic.set stop true
  in
  let d1 = Domain.spawn aborter and d2 = Domain.spawn worker in
  Domain.join d1;
  Domain.join d2;
  (* Consistency: everything the worker committed is observable and
     internally consistent; no locks leak. *)
  Alcotest.(check int) "no stale locks" 0 (IM.outstanding_locks m);
  Alcotest.(check int) "map size equals distinct committed keys"
    (List.length (IM.keys m))
    (IM.size m);
  (* Each committed transaction put exactly one queue element and one map
     binding; the queue length can therefore never exceed commits. *)
  Alcotest.(check bool) "queue contents bounded by commits" true
    (Q.committed_length q <= 400)

let test_put_if_absent_and_update () =
  let m = IM.create () in
  Stm.atomic (fun () ->
      Alcotest.(check int) "installs when absent" 7 (IM.put_if_absent m 1 7);
      Alcotest.(check int) "returns resident" 7 (IM.put_if_absent m 1 99);
      IM.update m 1 (function Some v -> Some (v * 2) | None -> Some 0);
      Alcotest.(check (option int)) "updated" (Some 14) (IM.find m 1);
      IM.update m 1 (fun _ -> None);
      Alcotest.(check (option int)) "removed via update" None (IM.find m 1))

let test_keys_values () =
  let m = IM.create () in
  List.iter (fun k -> ignore (IM.put m k (k * 10))) [ 3; 1; 2 ];
  Alcotest.(check (list int)) "keys" [ 1; 2; 3 ]
    (List.sort Int.compare (IM.keys m));
  Alcotest.(check (list int)) "values" [ 10; 20; 30 ]
    (List.sort Int.compare (IM.values m))

let suites =
  [
    ( "stm.advanced",
      [
        Alcotest.test_case "read-version extension" `Quick
          test_rv_extension_survives_unrelated_commits;
        Alcotest.test_case "opacity" `Quick test_opacity_no_torn_reads;
        Alcotest.test_case "deep closed nesting" `Quick test_deep_closed_nesting;
        Alcotest.test_case "open within closed" `Quick
          test_open_within_closed_within_open;
      ] );
    ( "failure-injection",
      [
        Alcotest.test_case "random remote aborts" `Quick
          test_random_remote_aborts_against_collections;
      ] );
    ( "txmap.api",
      [
        Alcotest.test_case "put_if_absent / update" `Quick
          test_put_if_absent_and_update;
        Alcotest.test_case "keys / values" `Quick test_keys_values;
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* Global statistics *)

let test_global_stats () =
  Stm.reset_stats ();
  let v = Tvar.make 0 in
  Stm.atomic (fun () -> Tvar.set v 1);
  (try Stm.atomic (fun () -> Stm.self_abort ()) with Stm.Aborted -> ());
  let tries = ref 0 in
  Stm.atomic (fun () ->
      incr tries;
      if !tries = 1 then Stm.retry_now () |> ignore);
  let s = Stm.global_stats () in
  Alcotest.(check int) "commits" 2 s.Stm.commits;
  Alcotest.(check int) "explicit aborts" 1 s.Stm.explicit_aborts;
  Alcotest.(check bool) "conflict aborts counted" true (s.Stm.conflict_aborts >= 1)

let suites =
  suites
  @ [
      ( "stm.stats",
        [ Alcotest.test_case "global counters" `Quick test_global_stats ] );
    ]
