(* §5.1 "Leaking uncommitted data": keys inserted into the shared semantic
   lock table are visible to other transactions; if the key object is
   mutable (or not yet committed), that is a leak — and mutation after the
   operation corrupts the hash-table placement of the lock entry.  The
   [copy_key] option stores an independent committed copy instead. *)

module Stm = Tcc_stm.Stm

(* A deliberately mutable key type, hashed by contents. *)
module Ref_key = struct
  type t = string ref

  let hash r = Hashtbl.hash !r
  let equal a b = !a = !b
end

module RM = Txcoll.Transactional_map.Make (Tcc_stm.Stm.Tm_ops)
    (Txcoll.Underlying.Hashed_map_ops (Ref_key))

let test_mutable_key_without_copy_leaks () =
  let m = RM.create () in
  let k = ref "alpha" in
  Stm.atomic (fun () ->
      ignore (RM.put m k 1);
      (* The client mutates the key object before commit: the lock-table
         entry was hashed under "alpha" and can no longer be found for
         release. *)
      k := "beta");
  Alcotest.(check bool) "lock entry stranded" true (RM.outstanding_locks m > 0)

let test_mutable_key_with_copy_is_safe () =
  let m = RM.create ~copy_key:(fun r -> ref !r) () in
  let k = ref "alpha" in
  Stm.atomic (fun () ->
      ignore (RM.put m k 1);
      k := "beta");
  Alcotest.(check int) "no stranded locks" 0 (RM.outstanding_locks m);
  (* The map binding itself is under the caller's control (the wrapped map
     stores the original key, as java.util.HashMap would); only the lock
     table is protected. *)
  Alcotest.(check (option int)) "binding reachable under mutated content"
    (Some 1)
    (RM.find m (ref "beta"))

let test_copy_key_conflicts_still_detected () =
  (* Copies must still collide with equal keys from other transactions. *)
  let m = RM.create ~copy_key:(fun r -> ref !r) () in
  ignore (RM.put m (ref "shared") 0);
  let phase = Atomic.make 0 in
  let signal n = if Atomic.get phase < n then Atomic.set phase n in
  let await n =
    while Atomic.get phase < n do
      Domain.cpu_relax ()
    done
  in
  let attempts = ref 0 in
  let d1 =
    Domain.spawn (fun () ->
        Stm.atomic (fun () ->
            incr attempts;
            ignore (RM.find m (ref "shared"));
            signal 1;
            if !attempts = 1 then await 2))
  in
  let d2 =
    Domain.spawn (fun () ->
        await 1;
        Stm.atomic (fun () -> ignore (RM.put m (ref "shared") 9));
        signal 2)
  in
  Domain.join d1;
  Domain.join d2;
  Alcotest.(check int) "conflict detected through copies" 2 !attempts

let suites =
  [
    ( "key-leak",
      [
        Alcotest.test_case "mutable key without copy leaks" `Quick
          test_mutable_key_without_copy_leaks;
        Alcotest.test_case "copy_key prevents the leak" `Quick
          test_mutable_key_with_copy_is_safe;
        Alcotest.test_case "conflicts preserved through copies" `Quick
          test_copy_key_conflicts_still_detected;
      ] );
  ]
