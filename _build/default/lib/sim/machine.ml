(* Discrete-event simulator of a chip multiprocessor in the style of the
   paper's evaluation platform (§6.1): N single-issue CPUs (CPI 1.0 outside
   the memory system), private L1 caches, a shared bus with queuing, MESI
   snoopy coherence for lock-based execution and TCC-style continuous
   transactions (lazy versioning, commit-time broadcast, violations) for
   transactional execution.

   Each simulated thread is an OCaml-effects coroutine; the scheduler
   interprets its {!Ops} effects in global time order, charging cycles from
   the cache/bus model.  Simulation is deterministic: ties are broken by CPU
   index and all randomness in workloads must come from seeded generators. *)

open Ops

(* ------------------------------------------------------------------ *)
(* Transactional state (TCC)                                           *)

type frame = {
  depth : int; (* 0 = top level *)
  kind : [ `Top | `Closed | `Open ];
  mutable reads : (int, unit) Hashtbl.t; (* line -> () *)
  mutable writes : (int, int) Hashtbl.t; (* addr -> buffered value *)
  mutable commit_handlers : (unit -> unit) list; (* newest first *)
  mutable abort_handlers : (unit -> unit) list; (* newest first *)
}

let fresh_frame depth kind =
  {
    depth;
    kind;
    reads = Hashtbl.create 16;
    writes = Hashtbl.create 16;
    commit_handlers = [];
    abort_handlers = [];
  }

type txn_state = {
  mutable frames : frame list; (* innermost first *)
  mutable epoch : int; (* globally unique id of the current top txn *)
  mutable violated : int option; (* pending rollback depth *)
  mutable retries : int;
}

(* ------------------------------------------------------------------ *)
(* CPUs and suspensions                                                *)

type _ req =
  | RLoad : int -> int req
  | RStore : (int * int) -> unit req
  | RCas : (int * int * int) -> bool req
  | RAlloc : int -> int req
  | RWork : int -> unit req
  | RMy_cpu : int req
  | RCritical : (int * int * (unit -> Obj.t)) -> Obj.t req
  | RToken_acquire : unit req
  | RToken_release : unit req
  | RCommit_broadcast : unit req
  | ROpen_broadcast : unit req

type susp = S : ('a, unit) Effect.Deep.continuation * 'a req -> susp

type cpu = {
  id : int;
  mutable time : int;
  cache : Cache.t;
  txn : txn_state;
  mutable susp : susp option;
  mutable blocked : bool; (* waiting for the commit token *)
  mutable finished : bool;
  mutable violations : int;
  mutable commits : int;
  mutable loads : int;
  mutable stores : int;
  mutable bus_wait : int;
  mutable token_wait : int;
}

type t = {
  cfg : Config.t;
  cpus : cpu array;
  mem : (int, int) Hashtbl.t;
  mutable alloc_next : int;
  mutable bus_free : int;
  mutable token_owner : int option;
  mutable token_waiters : int list; (* FIFO, oldest first *)
  mutable next_epoch : int;
  mutable running : int; (* cpu currently executing host code *)
}

type stats = {
  cycles : int;
  total_violations : int;
  total_commits : int;
  total_bus_wait : int; (* cycles spent queuing for the bus *)
  total_token_wait : int; (* cycles spent waiting for the commit token *)
  per_cpu_violations : int array;
  per_cpu_time : int array;
}

(* The machine executing right now; scheduler is single-host-threaded, so a
   plain ref is safe.  Coroutine-side helpers (Tcc, Tm_ops) use it. *)
let current : t option ref = ref None

let the_machine () =
  match !current with
  | Some m -> m
  | None -> invalid_arg "Sim.Machine: no simulation running"

let create ?(cfg = Config.default) ~n_cpus () =
  {
    cfg;
    cpus =
      Array.init n_cpus (fun id ->
          {
            id;
            time = 0;
            cache = Cache.create cfg;
            txn = { frames = []; epoch = 0; violated = None; retries = 0 };
            susp = None;
            blocked = false;
            finished = false;
            violations = 0;
            commits = 0;
            loads = 0;
            stores = 0;
            bus_wait = 0;
            token_wait = 0;
          });
    mem = Hashtbl.create 4096;
    alloc_next = 64; (* keep address 0.. free as a guard *)
    bus_free = 0;
    token_owner = None;
    token_waiters = [];
    next_epoch = 1;
    running = 0;
  }

let mem_read m a = Option.value ~default:0 (Hashtbl.find_opt m.mem a)
let mem_write m a v = Hashtbl.replace m.mem a v

let line_of m a = a / m.cfg.line_words

(* Line-aligned bump allocation of simulated memory. *)
let alloc_words m n =
  let lw = m.cfg.line_words in
  let base = (m.alloc_next + lw - 1) / lw * lw in
  m.alloc_next <- base + n;
  base

(* ------------------------------------------------------------------ *)
(* Bus and coherence timing                                            *)

(* Occupy the bus for [occ] cycles starting no earlier than [cpu.time];
   returns the completion time and charges queuing to the cpu. *)
let bus_transaction m cpu occ =
  let start = max cpu.time m.bus_free in
  cpu.bus_wait <- cpu.bus_wait + (start - cpu.time);
  m.bus_free <- start + occ;
  start + occ

let other_cpus m cpu = Array.to_seq m.cpus |> Seq.filter (fun c -> c.id <> cpu.id)

(* MESI load: returns cycles consumed (absolute completion handled by the
   caller via bus_transaction when a bus transaction is required). *)
let access m cpu a ~write =
  let cfg = m.cfg in
  let line = line_of m a in
  match Cache.find cpu.cache line with
  | Some w when (not write) || w.st = Cache.M || w.st = Cache.E ->
      Cache.touch cpu.cache w;
      if write then w.st <- Cache.M;
      cpu.time <- cpu.time + cfg.l1_hit
  | Some w ->
      (* Write hit on a Shared line: bus upgrade, invalidate other copies. *)
      let completion = bus_transaction m cpu 1 in
      cpu.time <- max (cpu.time + cfg.l1_hit + 1) completion;
      Seq.iter (fun c -> Cache.invalidate c.cache line) (other_cpus m cpu);
      Cache.touch cpu.cache w;
      w.st <- Cache.M
  | None ->
      let dirty_elsewhere =
        Seq.exists (fun c -> Cache.state c.cache line = Cache.M) (other_cpus m cpu)
      in
      let shared_elsewhere =
        Seq.exists
          (fun c -> Cache.state c.cache line <> Cache.I)
          (other_cpus m cpu)
      in
      let latency =
        if dirty_elsewhere then cfg.l2_hit + cfg.bus_per_line
        else if shared_elsewhere then cfg.l2_hit
        else cfg.mem_latency
      in
      let completion = bus_transaction m cpu cfg.bus_per_line in
      cpu.time <- max (cpu.time + latency) completion;
      if write then
        Seq.iter (fun c -> Cache.invalidate c.cache line) (other_cpus m cpu)
      else
        Seq.iter
          (fun c ->
            if Cache.state c.cache line = Cache.M then
              Cache.set_state c.cache line Cache.S)
          (other_cpus m cpu);
      let st =
        if write then Cache.M
        else if shared_elsewhere || dirty_elsewhere then Cache.S
        else Cache.E
      in
      (match Cache.insert cpu.cache line st with
      | Some (_, Cache.M) ->
          (* Writeback of the evicted dirty line. *)
          ignore (bus_transaction m cpu cfg.bus_per_line)
      | _ -> ())

(* ------------------------------------------------------------------ *)
(* Transactional loads/stores                                          *)

let rec buffered_value frames a =
  match frames with
  | [] -> None
  | f :: rest -> (
      match Hashtbl.find_opt f.writes a with
      | Some v -> Some v
      | None -> buffered_value rest a)

let txn_load m cpu a =
  cpu.loads <- cpu.loads + 1;
  match buffered_value cpu.txn.frames a with
  | Some v ->
      cpu.time <- cpu.time + m.cfg.l1_hit;
      v
  | None ->
      access m cpu a ~write:false;
      (match cpu.txn.frames with
      | f :: _ -> Hashtbl.replace f.reads (line_of m a) ()
      | [] -> assert false);
      mem_read m a

let txn_store m cpu a v =
  cpu.stores <- cpu.stores + 1;
  match cpu.txn.frames with
  | f :: _ ->
      Hashtbl.replace f.writes a v;
      cpu.time <- cpu.time + m.cfg.l1_hit
  | [] -> assert false

(* ------------------------------------------------------------------ *)
(* Violations                                                          *)

let unblock m c =
  if c.blocked then begin
    c.blocked <- false;
    m.token_waiters <- List.filter (fun id -> id <> c.id) m.token_waiters
  end

(* Mark [victim] for rollback to [depth] (keeping the outermost target if
   already marked). *)
let mark_violation m victim depth =
  if victim.txn.frames <> [] then begin
    (match victim.txn.violated with
    | Some d when d <= depth -> ()
    | _ -> victim.txn.violated <- Some depth);
    unblock m victim
  end

(* Broadcast the given write set: apply to memory, invalidate other caches,
   violate transactions whose read sets overlap. *)
let broadcast m cpu (writes : (int, int) Hashtbl.t) =
  let cfg = m.cfg in
  let lines = Hashtbl.create 8 in
  Hashtbl.iter
    (fun a v ->
      mem_write m a v;
      Hashtbl.replace lines (line_of m a) ())
    writes;
  let n_lines = Hashtbl.length lines in
  let occ = cfg.commit_base + (cfg.bus_per_line * n_lines) in
  let completion = bus_transaction m cpu occ in
  cpu.time <- max cpu.time completion;
  Hashtbl.iter
    (fun line () ->
      Seq.iter (fun c -> Cache.invalidate c.cache line) (other_cpus m cpu);
      ignore (Cache.insert cpu.cache line M))
    lines;
  Seq.iter
    (fun victim ->
      if victim.txn.frames <> [] then begin
        let conflict_depth = ref max_int in
        List.iter
          (fun f ->
            let hit =
              Hashtbl.fold (fun line () acc -> acc || Hashtbl.mem f.reads line) lines false
            in
            if hit && f.depth < !conflict_depth then conflict_depth := f.depth)
          victim.txn.frames;
        if !conflict_depth < max_int then mark_violation m victim !conflict_depth
      end)
    (other_cpus m cpu)

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)

let start_body _m cpu body =
  let open Effect.Deep in
  let handler =
    {
      retc = (fun () -> cpu.finished <- true);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          let suspend (r : a req) =
            Some
              (fun (k : (a, unit) continuation) -> cpu.susp <- Some (S (k, r)))
          in
          match eff with
          | Load a -> suspend (RLoad a)
          | Store (a, v) -> suspend (RStore (a, v))
          | Cas (a, e, r) -> suspend (RCas (a, e, r))
          | Alloc n -> suspend (RAlloc n)
          | Work n -> suspend (RWork n)
          | My_cpu -> suspend RMy_cpu
          | Critical (r, c, f) -> suspend (RCritical (r, c, f))
          | Token_acquire -> suspend RToken_acquire
          | Token_release -> suspend RToken_release
          | Commit_broadcast -> suspend RCommit_broadcast
          | Open_broadcast -> suspend ROpen_broadcast
          | _ -> None);
    }
  in
  match_with body () handler

exception Stuck of string

(* Process one suspended request of [cpu]; resumes its continuation. *)
let rec process m cpu (S (k, req)) =
  cpu.susp <- None;
  m.running <- cpu.id;
  (* Deliver a pending violation at this effect boundary (never to the
     commit-token holder: it has passed its commit point).  The target depth
     is clamped to the current innermost frame: a closed child that merged
     since the violation was flagged leaves its reads in its parent. *)
  match cpu.txn.violated with
  | Some depth when m.token_owner <> Some cpu.id && cpu.txn.frames <> [] ->
      let depth = min depth (List.length cpu.txn.frames - 1) in
      cpu.txn.violated <- None;
      cpu.violations <- cpu.violations + 1;
      Effect.Deep.discontinue k (Rollback depth)
  | Some _ when cpu.txn.frames = [] ->
      cpu.txn.violated <- None;
      process_req m cpu (S (k, req))
  | _ -> process_req m cpu (S (k, req))

and process_req m cpu (S (k, req)) =
  (
      match req with
      | RLoad a ->
          let v =
            if cpu.txn.frames <> [] then txn_load m cpu a
            else begin
              cpu.loads <- cpu.loads + 1;
              access m cpu a ~write:false;
              mem_read m a
            end
          in
          Effect.Deep.continue k v
      | RStore (a, v) ->
          if cpu.txn.frames <> [] then txn_store m cpu a v
          else begin
            cpu.stores <- cpu.stores + 1;
            access m cpu a ~write:true;
            mem_write m a v
          end;
          Effect.Deep.continue k ()
      | RCas (a, expect, repl) ->
          let ok =
            if cpu.txn.frames <> [] then begin
              let v =
                match buffered_value cpu.txn.frames a with
                | Some v ->
                    cpu.time <- cpu.time + m.cfg.l1_hit;
                    v
                | None ->
                    access m cpu a ~write:false;
                    (match cpu.txn.frames with
                    | f :: _ -> Hashtbl.replace f.reads (line_of m a) ()
                    | [] -> assert false);
                    mem_read m a
              in
              if v = expect then begin
                txn_store m cpu a repl;
                true
              end
              else false
            end
            else begin
              access m cpu a ~write:true;
              let v = mem_read m a in
              if v = expect then begin
                mem_write m a repl;
                true
              end
              else false
            end
          in
          Effect.Deep.continue k ok
      | RAlloc n ->
          cpu.time <- cpu.time + 1;
          Effect.Deep.continue k (alloc_words m n)
      | RWork n ->
          cpu.time <- cpu.time + n;
          Effect.Deep.continue k ()
      | RMy_cpu -> Effect.Deep.continue k cpu.id
      | RCritical (_region, cost, f) ->
          (* One atomic machine step: the open-nested critical section on a
             collection's metadata.  Costs the base latency plus a bus slot. *)
          let completion = bus_transaction m cpu m.cfg.bus_per_line in
          cpu.time <- max (cpu.time + m.cfg.critical_base + cost) completion;
          let result = f () in
          Effect.Deep.continue k result
      | RToken_acquire -> (
          match m.token_owner with
          | None ->
              m.token_owner <- Some cpu.id;
              Effect.Deep.continue k ()
          | Some owner when owner = cpu.id -> Effect.Deep.continue k ()
          | Some _ ->
              (* Block: re-suspend on the same request until woken. *)
              cpu.susp <- Some (S (k, req));
              cpu.blocked <- true;
              if not (List.mem cpu.id m.token_waiters) then
                m.token_waiters <- m.token_waiters @ [ cpu.id ])
      | RToken_release ->
          if m.token_owner = Some cpu.id then m.token_owner <- None;
          (match m.token_waiters with
          | [] -> ()
          | w :: rest ->
              m.token_waiters <- rest;
              let waiter = m.cpus.(w) in
              waiter.blocked <- false;
              waiter.token_wait <- waiter.token_wait + max 0 (cpu.time - waiter.time);
              waiter.time <- max waiter.time cpu.time);
          Effect.Deep.continue k ()
      | RCommit_broadcast ->
          (match cpu.txn.frames with
          | [ top ] ->
              broadcast m cpu top.writes;
              cpu.commits <- cpu.commits + 1
          | _ -> raise (Stuck "commit broadcast with nested frames"));
          Effect.Deep.continue k ()
      | ROpen_broadcast ->
          (match cpu.txn.frames with
          | f :: _ when f.kind = `Open -> broadcast m cpu f.writes
          | _ -> raise (Stuck "open broadcast without open frame"));
          Effect.Deep.continue k ())

let runnable m =
  let best = ref None in
  Array.iter
    (fun c ->
      if (not c.finished) && (not c.blocked) && c.susp <> None then
        match !best with
        | Some b when b.time <= c.time -> ()
        | _ -> best := Some c)
    m.cpus;
  !best

(* Run [bodies.(i)] on CPU i until all complete; returns statistics. *)
let run m (bodies : (unit -> unit) array) =
  if Array.length bodies <> Array.length m.cpus then
    invalid_arg "Machine.run: one body per cpu";
  let prev = !current in
  current := Some m;
  Fun.protect
    ~finally:(fun () -> current := prev)
    (fun () ->
      Array.iteri
        (fun i body ->
          m.running <- i;
          start_body m m.cpus.(i) body)
        bodies;
      let rec loop () =
        match runnable m with
        | None ->
            if
              Array.exists
                (fun c -> (not c.finished) && c.susp <> None)
                m.cpus
            then raise (Stuck "all remaining cpus blocked on the commit token")
        | Some cpu -> (
            match cpu.susp with
            | None -> raise (Stuck "runnable cpu without suspension")
            | Some s ->
                process m cpu s;
                loop ())
      in
      loop ();
      let cycles = Array.fold_left (fun acc c -> max acc c.time) 0 m.cpus in
      {
        cycles;
        total_violations =
          Array.fold_left (fun acc c -> acc + c.violations) 0 m.cpus;
        total_commits = Array.fold_left (fun acc c -> acc + c.commits) 0 m.cpus;
        total_bus_wait = Array.fold_left (fun acc c -> acc + c.bus_wait) 0 m.cpus;
        total_token_wait =
          Array.fold_left (fun acc c -> acc + c.token_wait) 0 m.cpus;
        per_cpu_violations = Array.map (fun c -> c.violations) m.cpus;
        per_cpu_time = Array.map (fun c -> c.time) m.cpus;
      })
