(* The instruction set of simulated threads.  A workload is an OCaml
   function that performs these effects; the machine's scheduler interprets
   them, charging cycles according to the cache/bus/coherence model and
   delivering transaction violations at effect boundaries. *)

type addr = int

type _ Effect.t +=
  | Load : addr -> int Effect.t
  | Store : (addr * int) -> unit Effect.t
  | Cas : (addr * int * int) -> bool Effect.t
  | Alloc : int -> addr Effect.t (* allocate n words of simulated memory *)
  | Work : int -> unit Effect.t (* n cycles of pure computation *)
  | My_cpu : int Effect.t
  | Critical : (addr * int * (unit -> Obj.t)) -> Obj.t Effect.t
      (* [Critical (region_line, cost, f)]: run host closure [f] as one
         atomic machine step — the timing/atomicity model of an open-nested
         transaction on a collection's shared metadata. *)
  | Token_acquire : unit Effect.t (* TCC commit-token arbitration *)
  | Token_release : unit Effect.t
  | Commit_broadcast : unit Effect.t (* publish top-level write set *)
  | Open_broadcast : unit Effect.t (* publish innermost (open) write set *)

exception Rollback of int
(* Raised at a suspension point when the transaction nested at the given
   depth (0 = top level) must roll back. *)

let load a = Effect.perform (Load a)
let store a v = Effect.perform (Store (a, v))
let cas a ~expect ~repl = Effect.perform (Cas (a, expect, repl))
let alloc n = Effect.perform (Alloc n)
let work n = if n > 0 then Effect.perform (Work n)
let my_cpu () = Effect.perform My_cpu

let critical region ~cost f =
  Obj.obj (Effect.perform (Critical (region, cost, fun () -> Obj.repr (f ()))))
