lib/sim/machine.ml: Array Cache Config Effect Fun Hashtbl List Obj Ops Option Seq
