lib/sim/config.ml:
