lib/sim/tcc.ml: Array Atomic Config Effect Hashtbl List Machine Ops Tm_intf
