lib/sim/ops.ml: Effect Obj
