(* Timing parameters of the simulated chip multiprocessor, patterned after
   the paper's evaluation platform (§6.1): CPI 1.0 for non-memory
   instructions, modelled L1 / shared L2 / bus with all contention and
   queuing accounted. *)

type t = {
  line_words : int; (* words per cache line *)
  l1_sets : int;
  l1_ways : int;
  l1_hit : int; (* cycles *)
  l2_hit : int;
  mem_latency : int;
  bus_per_line : int; (* bus occupancy cycles per line transferred *)
  commit_base : int; (* fixed commit arbitration cost *)
  critical_base : int; (* base cost of an open-nested critical section *)
  backoff_base : int; (* violation backoff: base * 2^min(retries, cap) *)
  backoff_cap : int;
}

let default =
  {
    line_words = 8;
    l1_sets = 128;
    l1_ways = 4;
    l1_hit = 1;
    l2_hit = 12;
    mem_latency = 80;
    bus_per_line = 4;
    commit_base = 10;
    critical_base = 20;
    backoff_base = 20;
    backoff_cap = 6;
  }
