(* Set-associative L1 cache model with MESI states and LRU replacement.
   Caches model timing and coherence only — data always lives in the
   machine's simulated memory. *)

type line_state = M | E | S | I

type way = { mutable tag : int; mutable st : line_state; mutable lru : int }

type t = { cfg : Config.t; sets : way array array; mutable tick : int }

let create (cfg : Config.t) =
  {
    cfg;
    sets =
      Array.init cfg.l1_sets (fun _ ->
          Array.init cfg.l1_ways (fun _ -> { tag = -1; st = I; lru = 0 }));
    tick = 0;
  }

let set_of t line = (line land max_int) mod t.cfg.l1_sets

let find t line =
  let ways = t.sets.(set_of t line) in
  let rec scan i =
    if i >= Array.length ways then None
    else if ways.(i).tag = line && ways.(i).st <> I then Some ways.(i)
    else scan (i + 1)
  in
  scan 0

let touch t way =
  t.tick <- t.tick + 1;
  way.lru <- t.tick

let state t line = match find t line with None -> I | Some w -> w.st

let set_state t line st =
  match find t line with
  | Some w -> if st = I then w.st <- I else w.st <- st
  | None -> ()

let invalidate t line = set_state t line I

(* Insert [line] with [st]; returns the evicted (line, state) when a valid
   way had to be displaced (the machine charges a writeback for M lines). *)
let insert t line st =
  let ways = t.sets.(set_of t line) in
  let victim = ref ways.(0) in
  (try
     Array.iter
       (fun w ->
         if w.st = I then begin
           victim := w;
           raise Exit
         end
         else if w.lru < !victim.lru then victim := w)
       ways
   with Exit -> ());
  let w = !victim in
  let evicted = if w.st = I then None else Some (w.tag, w.st) in
  w.tag <- line;
  w.st <- st;
  touch t w;
  evicted
