open Types

exception Aborted

type handle = txn

let context = context

let current () =
  match !(context ()) with
  | Some t -> t.top
  | None ->
      (* Auto-commit context: a fresh, already-committed handle so that
         semantic lock owners recorded outside transactions never block
         anyone (remote_abort on it reports "already committed"). *)
      let t = make_top () in
      Atomic.set t.top_status Committed;
      t

let in_txn () = Option.is_some !(context ())
let same_txn (a : handle) (b : handle) = a.txn_id = b.txn_id
let txn_id (t : handle) = t.txn_id

let on_commit h =
  match !(context ()) with
  | None -> h () (* auto-commit: the operation is its own transaction *)
  | Some t -> t.commit_handlers <- h :: t.commit_handlers

let on_abort h =
  match !(context ()) with
  | None -> () (* auto-commit transactions never abort *)
  | Some t -> t.abort_handlers <- h :: t.abort_handlers

(* Handler registration targeting the top-level transaction regardless of
   the current nesting depth: what the collection classes need, since lock
   ownership and compensation belong to the top-level outcome. *)
let on_top_commit h =
  match !(context ()) with
  | None -> h ()
  | Some t ->
      let top = t.top in
      top.commit_handlers <- h :: top.commit_handlers

let on_top_abort h =
  match !(context ()) with
  | None -> ()
  | Some t ->
      let top = t.top in
      top.abort_handlers <- h :: top.abort_handlers

let self_abort () =
  match !(context ()) with
  | None -> invalid_arg "Stm.self_abort: no enclosing transaction"
  | Some _ -> raise Explicit_abort_exn

(* Abort and retry the current top-level transaction transparently. *)
let retry_now () =
  match !(context ()) with
  | None -> invalid_arg "Stm.retry_now: no enclosing transaction"
  | Some _ -> raise Conflict_exn

let remote_abort (t : handle) =
  let rec go () =
    match Atomic.get t.top_status with
    | Active ->
        if Atomic.compare_and_set t.top_status Active Aborted then true
        else go ()
    | Aborted -> true
    | Committing | Committed -> false
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Commit machinery                                                    *)

let release_locks acquired = List.iter (fun (vl, old) -> Atomic.set vl old) acquired

(* Acquire write locks in tv_id order (no deadlock), spinning a bounded
   number of times on each before declaring a conflict. *)
let lock_writes top =
  let entries = Hashtbl.fold (fun _ w acc -> w :: acc) top.writes [] in
  let entries =
    List.sort (fun (W (a, _)) (W (b, _)) -> compare a.tv_id b.tv_id) entries
  in
  let rec acquire acc = function
    | [] -> acc
    | W (tv, _) :: rest ->
        let rec try_lock spins =
          let cur = Atomic.get tv.vlock in
          if locked cur then
            if spins = 0 then None
            else begin
              Domain.cpu_relax ();
              try_lock (spins - 1)
            end
          else if Atomic.compare_and_set tv.vlock cur (cur + 1) then Some cur
          else try_lock spins
        in
        (match try_lock 1024 with
        | None ->
            release_locks acc;
            raise Conflict_exn
        | Some old -> acquire ((tv.vlock, old) :: acc) rest)
  in
  acquire [] entries

let validate_reads top =
  List.for_all (fun r -> rentry_valid ~self:(Some top) r) top.reads

(* Commit a top-level transaction.  When [run_handlers] is set and the
   transaction registered handlers, the whole sequence

     lock write set -> validate reads -> flip to Committing ->
     run commit handlers -> publish memory writes -> Committed

   executes under the global semantic-commit token, making the handlers'
   semantic conflict checks and buffer application atomic with the
   memory-level commit (multi-level transaction commit).  Commit handlers
   must not access tvars: the collection classes operate on their wrapped
   structures inside [critical] regions instead. *)
let commit_top ?(run_handlers = true) top =
  let attempt () =
    let acquired = lock_writes top in
    if not (validate_reads top) then begin
      release_locks acquired;
      raise Conflict_exn
    end;
    if not (Atomic.compare_and_set top.top_status Active Committing) then begin
      release_locks acquired;
      raise Remote_aborted_exn
    end;
    if run_handlers then List.iter (fun h -> h ()) (List.rev top.commit_handlers);
    let wv = Atomic.fetch_and_add clock 2 + 2 in
    Hashtbl.iter (fun _ (W (tv, v)) -> Atomic.set tv.value v) top.writes;
    List.iter (fun (vl, _) -> Atomic.set vl wv) acquired;
    Atomic.set top.top_status Committed;
    Atomic.incr stat_commits
  in
  if run_handlers && top.commit_handlers <> [] then begin
    Mutex.lock semantic_commit_token;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock semantic_commit_token)
      attempt
  end
  else attempt ()

let run_abort_handlers t =
  (* Newest-first: compensations undo in reverse registration order. *)
  List.iter (fun h -> h ()) t.abort_handlers

let mark_aborted t = ignore (Atomic.compare_and_set t.top_status Active Aborted)

(* Run [f] as a fresh top-level transaction, retrying on conflicts and
   remote aborts with exponential backoff.  With [defer_handlers], commit
   handlers are not executed at commit; the caller (open nesting) migrates
   them to the suspended parent instead. *)
let run_top ?(defer_handlers = false) f =
  let ctx = context () in
  let rec attempt n =
    let t = make_top () in
    t.retries <- n;
    ctx := Some t;
    match
      let r = f () in
      commit_top ~run_handlers:(not defer_handlers) t;
      r
    with
    | r ->
        ctx := None;
        (r, t)
    | exception ((Conflict_exn | Child_conflict_exn | Remote_aborted_exn) as e)
      ->
        (match e with
        | Remote_aborted_exn -> Atomic.incr stat_remote_aborts
        | _ -> Atomic.incr stat_conflict_aborts);
        ctx := None;
        mark_aborted t;
        (* Handlers registered inside an aborting open-nested transaction
           are discarded without running (paper §4); only a transaction that
           owns its handlers compensates. *)
        if not defer_handlers then run_abort_handlers t;
        backoff n;
        attempt (n + 1)
    | exception Explicit_abort_exn ->
        Atomic.incr stat_explicit_aborts;
        ctx := None;
        mark_aborted t;
        if not defer_handlers then run_abort_handlers t;
        raise Aborted
    | exception e ->
        (* Any other exception aborts the transaction and propagates. *)
        ctx := None;
        mark_aborted t;
        if not defer_handlers then run_abort_handlers t;
        raise e
  in
  attempt 0

let closed_nested_in parent f =
  let ctx = context () in
  let rec attempt n =
    let child = make_child parent in
    ctx := Some child;
    match f () with
    | r ->
        parent.reads <- child.reads @ parent.reads;
        Hashtbl.iter (fun k w -> Hashtbl.replace parent.writes k w) child.writes;
        parent.commit_handlers <- child.commit_handlers @ parent.commit_handlers;
        parent.abort_handlers <- child.abort_handlers @ parent.abort_handlers;
        ctx := Some parent;
        r
    | exception Child_conflict_exn ->
        (* Partial rollback: only the child's tentative state is dropped. *)
        ctx := Some parent;
        backoff n;
        attempt (n + 1)
    | exception e ->
        ctx := Some parent;
        raise e
  in
  attempt 0

let atomic f =
  match !(context ()) with
  | None -> fst (run_top f)
  | Some parent -> closed_nested_in parent f

let closed_nested = atomic

let open_nested f =
  let ctx = context () in
  match !ctx with
  | None -> fst (run_top f)
  | Some parent ->
      ctx := None;
      (match run_top ~defer_handlers:true f with
      | r, open_txn ->
          ctx := Some parent;
          (* Handlers registered inside the open-nested transaction become
             the parent's responsibility once the open transaction commits
             (paper §4, "Commit and abort handlers"). *)
          parent.commit_handlers <-
            open_txn.commit_handlers @ parent.commit_handlers;
          parent.abort_handlers <- open_txn.abort_handlers @ parent.abort_handlers;
          r
      | exception e ->
          ctx := Some parent;
          raise e)

let retries () = match !(context ()) with None -> 0 | Some t -> t.top.retries

(* ------------------------------------------------------------------ *)
(* Global statistics                                                    *)

type stats = {
  commits : int;
  conflict_aborts : int;
  remote_aborts : int;
  explicit_aborts : int;
}

let global_stats () =
  {
    commits = Atomic.get stat_commits;
    conflict_aborts = Atomic.get stat_conflict_aborts;
    remote_aborts = Atomic.get stat_remote_aborts;
    explicit_aborts = Atomic.get stat_explicit_aborts;
  }

let reset_stats () =
  Atomic.set stat_commits 0;
  Atomic.set stat_conflict_aborts 0;
  Atomic.set stat_remote_aborts 0;
  Atomic.set stat_explicit_aborts 0

(* ------------------------------------------------------------------ *)
(* TM_OPS instance for the transactional collection classes            *)

module Tm_ops : Tm_intf.TM_OPS with type txn = handle = struct
  type txn = handle

  let current = current
  let in_txn = in_txn
  let same_txn = same_txn
  let txn_id = txn_id

  type region = Mutex.t

  let new_region () = Mutex.create ()
  let critical m f = Mutex.protect m f
  let on_commit = on_top_commit
  let on_abort = on_top_abort
  let remote_abort = remote_abort
  let self_abort () = self_abort ()
  let retry () = retry_now ()
end
