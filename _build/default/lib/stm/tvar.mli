(** Transactional variables: the unit of memory-level conflict detection in
    the host software TM.  Inside a transaction, [get] records a read
    dependency validated at commit and [set] buffers the write in a redo log;
    outside any transaction both act as linearisable single-word operations. *)

type 'a t

val make : 'a -> 'a t
val id : 'a t -> int

val get : 'a t -> 'a
(** May raise internal conflict exceptions that are handled by
    {!Stm.atomic}'s retry loop; user code never observes them. *)

val set : 'a t -> 'a -> unit
val modify : 'a t -> ('a -> 'a) -> unit
