(* Internal representation shared by Tvar and Stm.

   The design is a TL2-style software TM with a global version clock:
   - every tvar carries a versioned lock word [vlock] (even = version of the
     committed value, odd = write-locked by a committer);
   - transactions buffer writes (redo log) and validate their read set
     against the clock at commit;
   - a top-level transaction can be aborted remotely (program-directed
     abort) by CASing its status word, which is the mechanism semantic
     conflict detection uses to abort readers holding conflicting locks.

   Semantic commit phases (commits that run commit handlers) are serialised
   by a global token so that the paper's lock-based conflict check, the
   application of store buffers and the memory-level commit form one atomic
   unit with respect to other semantic commits. *)

type status = Active | Committing | Committed | Aborted

exception Conflict_exn
(* The whole top-level transaction lost a memory-level race; retry it. *)

exception Child_conflict_exn
(* Only the innermost closed-nested child is invalid; partial rollback. *)

exception Remote_aborted_exn
(* The transaction was aborted by another transaction (semantic conflict). *)

exception Explicit_abort_exn
(* The program requested its own abort. *)

type 'a tvar_repr = {
  tv_id : int;
  value : 'a Atomic.t;
  vlock : int Atomic.t;
}

type rentry = R : 'a tvar_repr * int -> rentry
type wentry = W : 'a tvar_repr * 'a -> wentry

type txn = {
  txn_id : int;
  top_status : status Atomic.t; (* physically shared with [top] *)
  mutable rv : int; (* read version; meaningful on the top level *)
  mutable reads : rentry list;
  writes : (int, wentry) Hashtbl.t;
  mutable commit_handlers : (unit -> unit) list; (* newest first *)
  mutable abort_handlers : (unit -> unit) list; (* newest first *)
  parent : txn option;
  mutable top : txn;
  mutable retries : int;
}

let clock : int Atomic.t = Atomic.make 0
let next_txn_id : int Atomic.t = Atomic.make 1
let next_tv_id : int Atomic.t = Atomic.make 1

(* Serialises commit phases that execute commit handlers (semantic
   commits), so lock-table conflict checks and buffer application are
   atomic across transactions. *)
let semantic_commit_token = Mutex.create ()

let ctx_key : txn option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let context () = Domain.DLS.get ctx_key

let make_top () =
  let rec t =
    {
      txn_id = Atomic.fetch_and_add next_txn_id 1;
      top_status = Atomic.make Active;
      rv = Atomic.get clock;
      reads = [];
      writes = Hashtbl.create 16;
      commit_handlers = [];
      abort_handlers = [];
      parent = None;
      top = t;
      retries = 0;
    }
  in
  t

let make_child parent =
  {
    txn_id = Atomic.fetch_and_add next_txn_id 1;
    top_status = parent.top_status;
    rv = parent.top.rv;
    reads = [];
    writes = Hashtbl.create 8;
    commit_handlers = [];
    abort_handlers = [];
    parent = Some parent;
    top = parent.top;
    retries = 0;
  }

let check_not_aborted txn =
  if Atomic.get txn.top_status = Aborted then raise Remote_aborted_exn

(* Walk the nesting stack, innermost first, looking for a buffered write. *)
let rec find_write txn tv_id =
  match Hashtbl.find_opt txn.writes tv_id with
  | Some _ as w -> w
  | None -> ( match txn.parent with None -> None | Some p -> find_write p tv_id)

let locked v = v land 1 = 1

(* Read a consistent (value, version) snapshot of a committed tvar. *)
let rec read_committed tv =
  let v1 = Atomic.get tv.vlock in
  if locked v1 then begin
    Domain.cpu_relax ();
    read_committed tv
  end
  else
    let v = Atomic.get tv.value in
    let v2 = Atomic.get tv.vlock in
    if v1 = v2 then (v, v1)
    else begin
      Domain.cpu_relax ();
      read_committed tv
    end

(* A read entry is still valid if its tvar is unlocked at the recorded
   version, or locked by [txn] itself (commit-time validation only). *)
let rentry_valid ?(self = None) (R (tv, ver)) =
  let cur = Atomic.get tv.vlock in
  if cur = ver then true
  else if locked cur && cur = ver + 1 then
    match self with
    | Some txn -> Hashtbl.mem txn.writes tv.tv_id
    | None -> false
  else false

(* Validate every level of the nesting stack rooted at [innermost].
   Returns [`Ok] when all reads are valid, [`Child_only] when the only
   invalid entries live in [innermost] (and it has a parent, enabling
   partial rollback), and [`Top] otherwise. *)
let validate_stack innermost =
  let rec level_ok txn = List.for_all (fun r -> rentry_valid r) txn.reads
  and check txn acc =
    let ok = level_ok txn in
    match txn.parent with
    | None -> if ok then acc else `Top
    | Some p ->
        let acc =
          if ok then acc
          else if txn == innermost && acc = `Ok then `Child_only
          else `Top
        in
        check p acc
  in
  check innermost `Ok

(* Try to extend the top-level read version to the current clock, as TL2
   does, so long transactions survive concurrent unrelated commits. *)
let extend_read_version innermost =
  let new_rv = Atomic.get clock in
  match validate_stack innermost with
  | `Ok ->
      innermost.top.rv <- new_rv;
      true
  | `Child_only -> raise Child_conflict_exn
  | `Top -> false

(* Global statistics (monotonic counters; reset via Stm.reset_stats). *)
let stat_commits = Atomic.make 0
let stat_conflict_aborts = Atomic.make 0
let stat_remote_aborts = Atomic.make 0
let stat_explicit_aborts = Atomic.make 0

let backoff n =
  let spins = 1 lsl min n 12 in
  for _ = 1 to spins do
    Domain.cpu_relax ()
  done
