lib/stm/types.ml: Atomic Domain Hashtbl List Mutex
