lib/stm/stm.mli: Tm_intf
