lib/stm/tvar.ml: Atomic Domain Hashtbl Obj Types
