lib/stm/tvar.mli:
