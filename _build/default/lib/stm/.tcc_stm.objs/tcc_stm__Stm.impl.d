lib/stm/stm.ml: Atomic Domain Fun Hashtbl List Mutex Option Tm_intf Types
