(* Semantic lock tables for one collection instance.

   Lock owners are top-level transactions (paper §3.1: "The owner of a lock
   is the top-level transaction at the time of the read operation").  All
   functions must be called inside the collection's [TM.critical] region,
   which provides the open-nested atomicity; the tables themselves therefore
   need no internal synchronisation.

   Conflict detection is optimistic (paper §5.1): writers examine these
   tables at commit time and abort conflicting readers through
   program-directed abort.  [remote_abort] returning [false] means the
   reader already passed its commit point and thereby serialised before the
   committing writer, which is not a conflict. *)

module Make (TM : Tm_intf.TM_OPS) = struct
  type 'k range = { lo : 'k option; hi : 'k option }
  (* Half-open interval [lo, hi); [None] = unbounded on that side. *)

  type key_entry = {
    mutable readers : TM.txn list;
    mutable writer : TM.txn option;
        (* Exclusive writer, used only by the pessimistic/undo-logging
           variants (§5.1); the optimistic wrapper never sets it. *)
  }

  type 'k t = {
    key_lockers : ('k, key_entry) Coll.Chain_hashmap.t;
    mutable size_lockers : TM.txn list;
    mutable isempty_lockers : TM.txn list;
    mutable first_lockers : TM.txn list;
    mutable last_lockers : TM.txn list;
    mutable range_lockers : ('k range * TM.txn) list;
  }

  let create () =
    {
      key_lockers = Coll.Chain_hashmap.create ();
      size_lockers = [];
      isempty_lockers = [];
      first_lockers = [];
      last_lockers = [];
      range_lockers = [];
    }

  let mem_txn txn txns = List.exists (TM.same_txn txn) txns
  let add_txn txn txns = if mem_txn txn txns then txns else txn :: txns
  let drop_txn txn txns = List.filter (fun t -> not (TM.same_txn txn t)) txns

  (* -------------------- acquisition (read operations) ------------------ *)

  let entry_for t k =
    match Coll.Chain_hashmap.find t.key_lockers k with
    | Some e -> e
    | None ->
        let e = { readers = []; writer = None } in
        Coll.Chain_hashmap.add t.key_lockers k e;
        e

  let lock_key t txn k =
    let e = entry_for t k in
    e.readers <- add_txn txn e.readers

  let lock_key_write t txn k =
    let e = entry_for t k in
    e.writer <- Some txn

  let key_readers t k =
    match Coll.Chain_hashmap.find t.key_lockers k with
    | None -> []
    | Some e -> e.readers

  let key_writer t k =
    match Coll.Chain_hashmap.find t.key_lockers k with
    | None -> None
    | Some e -> e.writer

  let any_other_writer t ~self =
    Coll.Chain_hashmap.fold
      (fun _ e acc ->
        acc
        || match e.writer with Some w -> not (TM.same_txn w self) | None -> false)
      t.key_lockers false

  let lock_size t txn = t.size_lockers <- add_txn txn t.size_lockers
  let lock_isempty t txn = t.isempty_lockers <- add_txn txn t.isempty_lockers
  let lock_first t txn = t.first_lockers <- add_txn txn t.first_lockers
  let lock_last t txn = t.last_lockers <- add_txn txn t.last_lockers

  let lock_range t txn range =
    t.range_lockers <- (range, txn) :: t.range_lockers

  (* -------------------- release (commit/abort handlers) ---------------- *)

  let release_key t txn k =
    match Coll.Chain_hashmap.find t.key_lockers k with
    | None -> ()
    | Some e ->
        e.readers <- drop_txn txn e.readers;
        (match e.writer with
        | Some w when TM.same_txn w txn -> e.writer <- None
        | _ -> ());
        if e.readers = [] && e.writer = None then
          Coll.Chain_hashmap.remove t.key_lockers k

  let release_all t txn ~keys =
    List.iter (release_key t txn) keys;
    t.size_lockers <- drop_txn txn t.size_lockers;
    t.isempty_lockers <- drop_txn txn t.isempty_lockers;
    t.first_lockers <- drop_txn txn t.first_lockers;
    t.last_lockers <- drop_txn txn t.last_lockers;
    t.range_lockers <-
      List.filter (fun (_, owner) -> not (TM.same_txn txn owner)) t.range_lockers

  (* -------------------- conflict detection (write commit) -------------- *)

  let abort_others ~self txns =
    List.iter
      (fun owner -> if not (TM.same_txn self owner) then ignore (TM.remote_abort owner))
      txns

  let conflict_key t ~self k =
    match Coll.Chain_hashmap.find t.key_lockers k with
    | None -> ()
    | Some e ->
        abort_others ~self e.readers;
        (match e.writer with
        | Some w when not (TM.same_txn self w) -> ignore (TM.remote_abort w)
        | _ -> ())

  let conflict_size t ~self = abort_others ~self t.size_lockers
  let conflict_isempty t ~self = abort_others ~self t.isempty_lockers
  let conflict_first t ~self = abort_others ~self t.first_lockers
  let conflict_last t ~self = abort_others ~self t.last_lockers

  let range_contains compare { lo; hi } k =
    (match lo with None -> true | Some b -> compare k b >= 0)
    && match hi with None -> true | Some b -> compare k b < 0

  let conflict_range t ~self ~compare k =
    List.iter
      (fun (range, owner) ->
        if (not (TM.same_txn self owner)) && range_contains compare range k then
          ignore (TM.remote_abort owner))
      t.range_lockers

  (* -------------------- introspection (tests, Table 2/5 traces) -------- *)

  let key_locked_by t txn k =
    match Coll.Chain_hashmap.find t.key_lockers k with
    | None -> false
    | Some e -> (
        mem_txn txn e.readers
        || match e.writer with Some w -> TM.same_txn w txn | None -> false)

  let size_locked_by t txn = mem_txn txn t.size_lockers
  let isempty_locked_by t txn = mem_txn txn t.isempty_lockers
  let first_locked_by t txn = mem_txn txn t.first_lockers
  let last_locked_by t txn = mem_txn txn t.last_lockers

  let range_locked_by t txn =
    List.exists (fun (_, owner) -> TM.same_txn txn owner) t.range_lockers

  let total_lockers t =
    Coll.Chain_hashmap.fold
      (fun _ e acc ->
        acc + List.length e.readers + match e.writer with Some _ -> 1 | None -> 0)
      t.key_lockers 0
    + List.length t.size_lockers
    + List.length t.isempty_lockers
    + List.length t.first_lockers
    + List.length t.last_lockers
    + List.length t.range_lockers
end
