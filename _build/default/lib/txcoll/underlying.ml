(* Adapters presenting the plain host data structures (lib/coll) through the
   Tm_intf operation signatures, so they can serve as the wrapped "existing
   implementations" of the transactional collection classes. *)

module type HASHED = sig
  type t

  val hash : t -> int
  val equal : t -> t -> bool
end

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Hashed_map_ops (K : HASHED) :
  Tm_intf.MAP_OPS with type key = K.t and type 'v t = (K.t, 'v) Coll.Chain_hashmap.t =
struct
  type key = K.t
  type 'v t = (K.t, 'v) Coll.Chain_hashmap.t

  let create () = Coll.Chain_hashmap.create ~hash:K.hash ~equal:K.equal ()
  let find = Coll.Chain_hashmap.find
  let mem = Coll.Chain_hashmap.mem
  let add = Coll.Chain_hashmap.add
  let remove = Coll.Chain_hashmap.remove
  let size = Coll.Chain_hashmap.size
  let iter = Coll.Chain_hashmap.iter
end

module Ordered_map_ops (K : ORDERED) :
  Tm_intf.SORTED_MAP_OPS
    with type key = K.t
     and type 'v t = (K.t, 'v) Coll.Ordmap.t = struct
  type key = K.t
  type 'v t = (K.t, 'v) Coll.Ordmap.t

  let create () = Coll.Ordmap.create ~compare:K.compare ()
  let find = Coll.Ordmap.find
  let mem = Coll.Ordmap.mem
  let add = Coll.Ordmap.add
  let remove = Coll.Ordmap.remove
  let size = Coll.Ordmap.size
  let iter = Coll.Ordmap.iter
  let compare_key = K.compare
  let min_binding = Coll.Ordmap.min_binding
  let max_binding = Coll.Ordmap.max_binding
  let iter_range = Coll.Ordmap.iter_range
end

module Oa_map_ops (K : HASHED) :
  Tm_intf.MAP_OPS with type key = K.t and type 'v t = (K.t, 'v) Coll.Oa_hashmap.t =
struct
  type key = K.t
  type 'v t = (K.t, 'v) Coll.Oa_hashmap.t

  let create () = Coll.Oa_hashmap.create ~hash:K.hash ~equal:K.equal ()
  let find = Coll.Oa_hashmap.find
  let mem = Coll.Oa_hashmap.mem
  let add = Coll.Oa_hashmap.add
  let remove = Coll.Oa_hashmap.remove
  let size = Coll.Oa_hashmap.size
  let iter = Coll.Oa_hashmap.iter
end

module Skiplist_map_ops (K : ORDERED) :
  Tm_intf.SORTED_MAP_OPS
    with type key = K.t
     and type 'v t = (K.t, 'v) Coll.Skiplist.t = struct
  type key = K.t
  type 'v t = (K.t, 'v) Coll.Skiplist.t

  let create () = Coll.Skiplist.create ~compare:K.compare ()
  let find = Coll.Skiplist.find
  let mem = Coll.Skiplist.mem
  let add = Coll.Skiplist.add
  let remove = Coll.Skiplist.remove
  let size = Coll.Skiplist.size
  let iter = Coll.Skiplist.iter
  let compare_key = K.compare
  let min_binding = Coll.Skiplist.min_binding
  let max_binding = Coll.Skiplist.max_binding
  let iter_range = Coll.Skiplist.iter_range
end

module Deque_ops : Tm_intf.QUEUE_OPS with type 'v t = 'v Coll.Fifo_deque.t =
struct
  type 'v t = 'v Coll.Fifo_deque.t

  let create () = Coll.Fifo_deque.create ()
  let enqueue = Coll.Fifo_deque.enqueue
  let dequeue = Coll.Fifo_deque.dequeue
  let peek = Coll.Fifo_deque.peek
  let is_empty = Coll.Fifo_deque.is_empty
  let length = Coll.Fifo_deque.length
  let push_front = Coll.Fifo_deque.push_front
end
