lib/txcoll/transactional_queue.ml: Coll Format Hashtbl List Semlock Tm_intf
