lib/txcoll/transactional_queue.mli: Format Tm_intf
