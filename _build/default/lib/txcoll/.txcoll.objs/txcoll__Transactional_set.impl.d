lib/txcoll/transactional_set.ml: Tm_intf Transactional_map
