lib/txcoll/transactional_sorted_map.mli: Format Tm_intf
