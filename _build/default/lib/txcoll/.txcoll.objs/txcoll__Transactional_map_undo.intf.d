lib/txcoll/transactional_map_undo.mli: Tm_intf
