lib/txcoll/transactional_map.ml: Coll Format Fun Hashtbl List Option Semlock Tm_intf
