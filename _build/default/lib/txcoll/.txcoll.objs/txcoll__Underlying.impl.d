lib/txcoll/underlying.ml: Coll Tm_intf
