lib/txcoll/transactional_map.mli: Format Tm_intf
