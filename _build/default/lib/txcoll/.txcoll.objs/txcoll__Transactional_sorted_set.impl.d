lib/txcoll/transactional_sorted_set.ml: List Tm_intf Transactional_sorted_map
