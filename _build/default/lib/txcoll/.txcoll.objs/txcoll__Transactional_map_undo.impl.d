lib/txcoll/transactional_map_undo.ml: Coll Hashtbl List Option Semlock Tm_intf
