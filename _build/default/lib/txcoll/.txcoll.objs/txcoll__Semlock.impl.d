lib/txcoll/semlock.ml: Coll List Tm_intf
