lib/txcoll/transactional_sorted_map.ml: Coll Format Fun Hashtbl List Option Semlock Tm_intf
