lib/txcoll/transactional_set.mli: Tm_intf Transactional_map
