(* The paper's micro-benchmarks (§6.2) on the simulated CMP.

   Each benchmark fixes a total operation count, splits it across CPUs and
   measures completion cycles.  Three variants reproduce the three curves of
   Figures 1-3:

   - [`Java_lock]: lock-based synchronisation under MESI.  The lock is held
     only around the data-structure operation (TestMap/TestSortedMap) or
     around the whole compound operation (TestCompound), with the
     surrounding computation outside/inside respectively, matching the
     paper's description.
   - [`Atomos_naive]: one long transaction per iteration (computation plus
     operation) against the plain structure in simulated memory — the
     "Atomos HashMap/TreeMap" curves, limited by memory-level conflicts on
     the size word and rebalancing rotations.
   - [`Atomos_txcoll]: the same long transactions against the transactional
     collection classes — the "Atomos TransactionalMap/TransactionalSortedMap"
     curves. *)

module Machine = Sim.Machine
module Ops = Sim.Ops
module Tcc = Sim.Tcc
module Acc = Sim_ds.Acc
module H = Sim_ds.Sim_hashmap
module A = Sim_ds.Sim_avlmap
module SL = Sim_ds.Spinlock

module SimTxMap =
  Txcoll.Transactional_map.Make (Sim.Tcc.Tm_ops)
    (Txcoll.Underlying.Hashed_map_ops (Txcoll.Host.Int_hashed))

module SimTxSorted =
  Txcoll.Transactional_sorted_map.Make (Sim.Tcc.Tm_ops)
    (Txcoll.Underlying.Ordered_map_ops (Int))

type variant = [ `Java_lock | `Atomos_naive | `Atomos_txcoll ]

let variant_name = function
  | `Java_lock -> "Java"
  | `Atomos_naive -> "Atomos naive"
  | `Atomos_txcoll -> "Atomos transactional"

type params = {
  total_ops : int;
  think : int; (* computation cycles surrounding each operation *)
  key_space : int;
  cfg : Sim.Config.t;
}

let default_params =
  { total_ops = 1024; think = 6000; key_space = 512; cfg = Sim.Config.default }

let per_cpu total n_cpus cpu =
  (* Distribute work as evenly as possible. *)
  (total / n_cpus) + if cpu < total mod n_cpus then 1 else 0

(* Operation mix of TestMap: 80% lookups, 10% insertions, 10% removals. *)
let pick_op rng =
  let r = Random.State.int rng 100 in
  if r < 80 then `Get else if r < 90 then `Put else `Remove

let pick_key rng p = Random.State.int rng p.key_space

(* ------------------------------------------------------------------ *)
(* TestMap (Figure 1)                                                  *)

let run_testmap ?(p = default_params) ~variant ~n_cpus () =
  let m = Machine.create ~cfg:p.cfg ~n_cpus () in
  let a = Acc.host m in
  match variant with
  | (`Java_lock | `Atomos_naive) as v ->
      let h = H.create a ~buckets:(p.key_space / 2) in
      for i = 0 to (p.key_space / 2) - 1 do
        H.put a h (i * 2) i
      done;
      let lock = SL.create a () in
      let body cpu () =
        let rng = Random.State.make [| 0xC0FFEE; cpu |] in
        let s = Acc.sim in
        for _ = 1 to per_cpu p.total_ops n_cpus cpu do
          let k = pick_key rng p in
          let op = pick_op rng in
          match v with
          | `Java_lock ->
              (* Computation outside the short critical region. *)
              Ops.work p.think;
              SL.with_lock lock (fun () ->
                  match op with
                  | `Get -> ignore (H.find s h k)
                  | `Put -> H.put s h k k
                  | `Remove -> H.remove s h k)
          | `Atomos_naive ->
              (* The operation is surrounded by computation (§6.2), so its
                 read set stays vulnerable for the rest of the transaction. *)
              Tcc.atomic (fun () ->
                  Ops.work (p.think / 2);
                  (match op with
                  | `Get -> ignore (H.find s h k)
                  | `Put -> H.put s h k k
                  | `Remove -> H.remove s h k);
                  Ops.work (p.think - (p.think / 2)))
        done
      in
      Machine.run m (Array.init n_cpus (fun c -> body c))
  | `Atomos_txcoll ->
      let tm = SimTxMap.create () in
      for i = 0 to (p.key_space / 2) - 1 do
        ignore (SimTxMap.put tm (i * 2) i)
      done;
      let body cpu () =
        let rng = Random.State.make [| 0xC0FFEE; cpu |] in
        for _ = 1 to per_cpu p.total_ops n_cpus cpu do
          let k = pick_key rng p in
          let op = pick_op rng in
          Tcc.atomic (fun () ->
              Ops.work (p.think / 2);
              (match op with
              | `Get -> ignore (SimTxMap.find tm k)
              | `Put -> ignore (SimTxMap.put tm k k)
              | `Remove -> ignore (SimTxMap.remove tm k));
              Ops.work (p.think - (p.think / 2)))
        done
      in
      Machine.run m (Array.init n_cpus (fun c -> body c))

(* ------------------------------------------------------------------ *)
(* TestSortedMap (Figure 2): lookups become subMap range scans taking
   the median of a small key range.                                    *)

let range_width = 8

let run_testsortedmap ?(p = default_params) ~variant ~n_cpus () =
  let m = Machine.create ~cfg:p.cfg ~n_cpus () in
  let a = Acc.host m in
  match variant with
  | (`Java_lock | `Atomos_naive) as v ->
      let t = A.create a () in
      for i = 0 to (p.key_space / 2) - 1 do
        A.put a t (i * 2) i
      done;
      let lock = SL.create a () in
      let median s k =
        let seen = ref [] in
        A.iter_range s t ~lo:k ~hi:(k + range_width) (fun k' _ ->
            seen := k' :: !seen);
        match !seen with
        | [] -> None
        | l -> Some (List.nth l (List.length l / 2))
      in
      let body cpu () =
        let rng = Random.State.make [| 0xBEEF; cpu |] in
        let s = Acc.sim in
        for _ = 1 to per_cpu p.total_ops n_cpus cpu do
          let k = pick_key rng p in
          let op = pick_op rng in
          match v with
          | `Java_lock ->
              Ops.work p.think;
              SL.with_lock lock (fun () ->
                  match op with
                  | `Get -> ignore (median s k)
                  | `Put -> A.put s t k k
                  | `Remove -> A.remove s t k)
          | `Atomos_naive ->
              Tcc.atomic (fun () ->
                  Ops.work (p.think / 2);
                  (match op with
                  | `Get -> ignore (median s k)
                  | `Put -> A.put s t k k
                  | `Remove -> A.remove s t k);
                  Ops.work (p.think - (p.think / 2)))
        done
      in
      Machine.run m (Array.init n_cpus (fun c -> body c))
  | `Atomos_txcoll ->
      let tm = SimTxSorted.create () in
      for i = 0 to (p.key_space / 2) - 1 do
        ignore (SimTxSorted.put tm (i * 2) i)
      done;
      let median k =
        let seen =
          List.rev
            (SimTxSorted.fold_range
               (fun k' _ acc -> k' :: acc)
               tm [] ~lo:(Some k)
               ~hi:(Some (k + range_width)))
        in
        match seen with [] -> None | l -> Some (List.nth l (List.length l / 2))
      in
      let body cpu () =
        let rng = Random.State.make [| 0xBEEF; cpu |] in
        for _ = 1 to per_cpu p.total_ops n_cpus cpu do
          let k = pick_key rng p in
          let op = pick_op rng in
          Tcc.atomic (fun () ->
              Ops.work (p.think / 2);
              (match op with
              | `Get -> ignore (median k)
              | `Put -> ignore (SimTxSorted.put tm k k)
              | `Remove -> ignore (SimTxSorted.remove tm k));
              Ops.work (p.think - (p.think / 2)))
        done
      in
      Machine.run m (Array.init n_cpus (fun c -> body c))

(* ------------------------------------------------------------------ *)
(* TestCompound (Figure 3): two operations separated by computation must
   act as one atomic compound.  Java needs a coarse lock held across the
   whole compound (including the computation between the operations);
   Atomos runs the loop body as a single transaction.                  *)

let run_testcompound ?(p = default_params) ~variant ~n_cpus () =
  let m = Machine.create ~cfg:p.cfg ~n_cpus () in
  let a = Acc.host m in
  let mid_think = p.think / 2 in
  match variant with
  | (`Java_lock | `Atomos_naive) as v ->
      let h = H.create a ~buckets:(p.key_space / 2) in
      for i = 0 to (p.key_space / 2) - 1 do
        H.put a h (i * 2) i
      done;
      let lock = SL.create a () in
      let body cpu () =
        let rng = Random.State.make [| 0xFACE; cpu |] in
        let s = Acc.sim in
        for _ = 1 to per_cpu p.total_ops n_cpus cpu do
          let k1 = pick_key rng p and k2 = pick_key rng p in
          Ops.work (p.think / 2);
          match v with
          | `Java_lock ->
              (* Coarse lock protecting the compound operation, held across
                 the computation between the two operations. *)
              SL.with_lock lock (fun () ->
                  let x = H.find s h k1 in
                  Ops.work mid_think;
                  H.put s h k2 (Option.value ~default:0 x + 1))
          | `Atomos_naive ->
              Tcc.atomic (fun () ->
                  let x = H.find s h k1 in
                  Ops.work mid_think;
                  H.put s h k2 (Option.value ~default:0 x + 1))
        done
      in
      Machine.run m (Array.init n_cpus (fun c -> body c))
  | `Atomos_txcoll ->
      let tm = SimTxMap.create () in
      for i = 0 to (p.key_space / 2) - 1 do
        ignore (SimTxMap.put tm (i * 2) i)
      done;
      let body cpu () =
        let rng = Random.State.make [| 0xFACE; cpu |] in
        for _ = 1 to per_cpu p.total_ops n_cpus cpu do
          let k1 = pick_key rng p and k2 = pick_key rng p in
          Ops.work (p.think / 2);
          Tcc.atomic (fun () ->
              let x = SimTxMap.find tm k1 in
              Ops.work mid_think;
              ignore (SimTxMap.put tm k2 (Option.value ~default:0 x + 1)))
        done
      in
      Machine.run m (Array.init n_cpus (fun c -> body c))
