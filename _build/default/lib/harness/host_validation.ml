(* Validation of the paper's central claim on the REAL host STM (not the
   simulator): long transactions over a naively transactional hash map
   retry constantly because of size-field conflicts, while the same
   workload over the TransactionalMap wrapper almost never retries.

   Speedup curves need the 32-CPU simulator; retry counts and wall-clock
   throughput on the host machine demonstrate the same mechanism with real
   parallelism. *)

module Stm = Tcc_stm.Stm
module Naive = Stm_ds.Stm_hashmap
module Wrapped = Txcoll.Host.Map (Txcoll.Host.Int_hashed)

type outcome = {
  label : string;
  elapsed_us : int;
  committed : int;
  retries : int;
}

type ops = { find : int -> unit; put : int -> unit; remove : int -> unit }

(* Busy-work making the transaction long, as in the paper's micro-benchmarks
   ("each operation is surrounded by computation"). *)
let think n =
  let x = ref 0 in
  for i = 1 to n do
    x := !x + (i land 7)
  done;
  ignore (Sys.opaque_identity !x)

let run_variant ~label ~ops ~n_domains ~ops_per_domain ~key_space ~work =
  let attempts = Atomic.make 0 in
  let t0 = Unix.gettimeofday () in
  let worker d () =
    let rng = Random.State.make [| 0x40A; d |] in
    for _ = 1 to ops_per_domain do
      let k = Random.State.int rng key_space in
      let dice = Random.State.int rng 100 in
      Stm.atomic (fun () ->
          Atomic.incr attempts;
          think (work / 2);
          if dice < 80 then ops.find k
          else if dice < 90 then ops.put k
          else ops.remove k;
          think (work / 2))
    done
  in
  let ds = List.init n_domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join ds;
  let committed = n_domains * ops_per_domain in
  {
    label;
    elapsed_us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6);
    committed;
    retries = Atomic.get attempts - committed;
  }

let run ?(n_domains = 2) ?(ops_per_domain = 4000) ?(key_space = 512)
    ?(work = 20_000) () =
  let naive = Naive.create ~initial_capacity:(key_space / 2) () in
  for i = 0 to (key_space / 2) - 1 do
    Naive.add naive (2 * i) i
  done;
  let naive_outcome =
    run_variant ~label:"naive tvar hash map" ~n_domains ~ops_per_domain
      ~key_space ~work
      ~ops:
        {
          find = (fun k -> ignore (Naive.find naive k));
          put = (fun k -> Naive.add naive k k);
          remove = (fun k -> Naive.remove naive k);
        }
  in
  let wrapped = Wrapped.create () in
  for i = 0 to (key_space / 2) - 1 do
    ignore (Wrapped.put wrapped (2 * i) i)
  done;
  let wrapped_outcome =
    run_variant ~label:"TransactionalMap wrapper" ~n_domains ~ops_per_domain
      ~key_space ~work
      ~ops:
        {
          find = (fun k -> ignore (Wrapped.find wrapped k));
          put = (fun k -> ignore (Wrapped.put wrapped k k));
          remove = (fun k -> ignore (Wrapped.remove wrapped k));
        }
  in
  [ naive_outcome; wrapped_outcome ]

let render ppf outcomes =
  Fmt.pf ppf
    "@.Host-STM validation (real domains): retries caused by the map itself@.";
  List.iter
    (fun o ->
      Fmt.pf ppf "  %-28s committed: %6d   retries: %6d   elapsed: %8d us@."
        o.label o.committed o.retries o.elapsed_us)
    outcomes
