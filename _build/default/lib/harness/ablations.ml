(* Ablation benchmarks for the design choices discussed in paper §5.1:

   - [isempty]: a dedicated isEmpty lock versus deriving isEmpty from size.
     Workload: "if (!map.isEmpty()) map.put(key, value)" on distinct keys —
     the paper's example of transactions that should commute but abort under
     the size-lock encoding.
   - [blind_put]: put variants that do not return the previous value versus
     standard put, on the paper's "LastModified" workload where every
     transaction writes the same key.
   - [backoff]: contention-manager backoff on/off for the conflict-heavy
     naive TestMap, illustrating the livelock discussion. *)

module Machine = Sim.Machine
module Ops = Sim.Ops
module Tcc = Sim.Tcc

module SimTxMap = Workloads.SimTxMap

type outcome = {
  label : string;
  cycles : int;
  violations : int;
}

let run_isempty_variant ~policy ~n_cpus ~ops_per_cpu ~think =
  let m = Machine.create ~n_cpus () in
  let tm = SimTxMap.create ~isempty_policy:policy () in
  ignore (SimTxMap.put tm 0 0);
  let body cpu () =
    for i = 1 to ops_per_cpu do
      Tcc.atomic (fun () ->
          Ops.work (think / 2);
          if not (SimTxMap.is_empty tm) then
            ignore (SimTxMap.put tm ((cpu * 100_000) + i) i);
          Ops.work (think / 2))
    done
  in
  let s = Machine.run m (Array.init n_cpus (fun c -> body c)) in
  (s.Machine.cycles, s.Machine.total_violations)

let isempty ?(n_cpus = 16) ?(ops_per_cpu = 32) ?(think = 4000) () =
  let c1, v1 =
    run_isempty_variant ~policy:SimTxMap.Dedicated ~n_cpus ~ops_per_cpu ~think
  in
  let c2, v2 =
    run_isempty_variant ~policy:SimTxMap.Via_size ~n_cpus ~ops_per_cpu ~think
  in
  [
    { label = "dedicated isEmpty lock"; cycles = c1; violations = v1 };
    { label = "isEmpty via size lock"; cycles = c2; violations = v2 };
  ]

let run_blind_variant ~blind ~n_cpus ~ops_per_cpu ~think =
  let m = Machine.create ~n_cpus () in
  let tm = SimTxMap.create () in
  ignore (SimTxMap.put tm 42 0);
  let body _cpu () =
    for i = 1 to ops_per_cpu do
      Tcc.atomic (fun () ->
          Ops.work (think / 2);
          (* Every transaction stamps the same "LastModified" key. *)
          if blind then SimTxMap.put_blind tm 42 i
          else ignore (SimTxMap.put tm 42 i);
          Ops.work (think / 2))
    done
  in
  let s = Machine.run m (Array.init n_cpus (fun c -> body c)) in
  (s.Machine.cycles, s.Machine.total_violations)

let blind_put ?(n_cpus = 16) ?(ops_per_cpu = 32) ?(think = 4000) () =
  let c1, v1 = run_blind_variant ~blind:true ~n_cpus ~ops_per_cpu ~think in
  let c2, v2 = run_blind_variant ~blind:false ~n_cpus ~ops_per_cpu ~think in
  [
    { label = "blind put (no old value)"; cycles = c1; violations = v1 };
    { label = "standard put"; cycles = c2; violations = v2 };
  ]

let backoff ?(n_cpus = 16) () =
  let base = { Workloads.default_params with total_ops = 512 } in
  let with_backoff =
    Workloads.run_testmap ~p:base ~variant:`Atomos_naive ~n_cpus ()
  in
  let without =
    let cfg = { base.Workloads.cfg with Sim.Config.backoff_base = 1 } in
    Workloads.run_testmap
      ~p:{ base with Workloads.cfg = cfg }
      ~variant:`Atomos_naive ~n_cpus ()
  in
  [
    {
      label = "exponential backoff";
      cycles = with_backoff.Machine.cycles;
      violations = with_backoff.Machine.total_violations;
    };
    {
      label = "no backoff";
      cycles = without.Machine.cycles;
      violations = without.Machine.total_violations;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Redo vs undo logging (§5.1) on the host STM: same contended workload
   (read one key, write another, small key space) against the redo-based
   TransactionalMap and the undo-logging variant.  [cycles] holds elapsed
   microseconds; [violations] holds the number of retried attempts. *)

module RedoMap = Txcoll.Host.Map (Txcoll.Host.Int_hashed)
module UndoMap = Txcoll.Host.Map_undo (Txcoll.Host.Int_hashed)

type host_map_ops = {
  find : int -> string option;
  put : int -> string -> string option;
}

let run_host_contention ~ops ~n_domains ~txns ~key_space =
  let attempts = Atomic.make 0 in
  let committed = Atomic.make 0 in
  let t0 = Unix.gettimeofday () in
  let worker d () =
    let rng = Random.State.make [| 0xAB1; d |] in
    for _ = 1 to txns do
      Tcc_stm.Stm.atomic (fun () ->
          Atomic.incr attempts;
          let k1 = Random.State.int rng key_space in
          let k2 = Random.State.int rng key_space in
          let v = Option.value ~default:"" (ops.find k1) in
          ignore (ops.put k2 (v ^ "x")));
      Atomic.incr committed
    done
  in
  let ds = List.init n_domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join ds;
  let elapsed_us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
  (elapsed_us, Atomic.get attempts - Atomic.get committed)

let redo_vs_undo ?(n_domains = 2) ?(txns = 1500) ?(key_space = 8) () =
  let redo = RedoMap.create () in
  for k = 0 to key_space - 1 do
    ignore (RedoMap.put redo k "seed")
  done;
  let c1, r1 =
    run_host_contention ~n_domains ~txns ~key_space
      ~ops:
        {
          find = (fun k -> RedoMap.find redo k);
          put = (fun k v -> RedoMap.put redo k v);
        }
  in
  let undo = UndoMap.create () in
  for k = 0 to key_space - 1 do
    ignore (UndoMap.put undo k "seed")
  done;
  let c2, r2 =
    run_host_contention ~n_domains ~txns ~key_space
      ~ops:
        {
          find = (fun k -> UndoMap.find undo k);
          put = (fun k v -> UndoMap.put undo k v);
        }
  in
  [
    { label = "redo logging (optimistic)"; cycles = c1; violations = r1 };
    { label = "undo logging (pessimistic)"; cycles = c2; violations = r2 };
  ]

let render ppf title outcomes =
  Fmt.pf ppf "@.Ablation: %s@." title;
  List.iter
    (fun o ->
      Fmt.pf ppf "  %-28s cycles: %10d   violations: %6d@." o.label o.cycles
        o.violations)
    outcomes
