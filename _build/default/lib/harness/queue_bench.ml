(* Simulated work-queue benchmark (paper §3.3 and the Delaunay motivation):
   workers repeatedly take work, process it for a while inside the same
   transaction, and put new work back.

   Variants:
   - [`Naive]: a plain linked queue in simulated memory, accessed inside
     the transaction — every take/put writes the head/tail/length words, so
     all workers conflict at the memory level;
   - [`Txcoll]: the reduced-isolation TransactionalQueue (immediate
     compensated takes, deferred puts) — takes never conflict.

   This regenerates the queue half of the paper's §3.3 argument: the
   Transactional result should scale while the naive one serialises. *)

module Machine = Sim.Machine
module Ops = Sim.Ops
module Tcc = Sim.Tcc
module Acc = Sim_ds.Acc
module NQ = Sim_ds.Sim_queue

module SimTxQueue =
  Txcoll.Transactional_queue.Make (Sim.Tcc.Tm_ops) (Txcoll.Underlying.Deque_ops)

type outcome = {
  label : string;
  cpus : int;
  cycles : int;
  violations : int;
  processed : int;
}

let think = 2500

let run_naive ~n_cpus ~items =
  let m = Machine.create ~n_cpus () in
  let a = Acc.host m in
  let q = NQ.create a () in
  for i = 1 to items do
    NQ.enqueue a q i
  done;
  let processed = Atomic.make 0 in
  let body _cpu () =
    let s = Acc.sim in
    let continue = ref true in
    while !continue do
      let got =
        Tcc.atomic (fun () ->
            match NQ.dequeue s q with
            | None -> false
            | Some v ->
                Ops.work think;
                (* Half the items spawn no further work; the benchmark
                   drains. *)
                if v mod 2 = 0 then NQ.enqueue s q (v + 100_001);
                true)
      in
      if got then Atomic.incr processed else continue := false
    done
  in
  let stats = Machine.run m (Array.init n_cpus (fun c -> body c)) in
  (stats, Atomic.get processed)

let run_txcoll ~n_cpus ~items =
  let m = Machine.create ~n_cpus () in
  let q = SimTxQueue.create () in
  for i = 1 to items do
    SimTxQueue.put q i
  done;
  let processed = Atomic.make 0 in
  let body _cpu () =
    let continue = ref true in
    while !continue do
      let got =
        Tcc.atomic (fun () ->
            match SimTxQueue.take q with
            | None -> false
            | Some v ->
                Ops.work think;
                if v mod 2 = 0 then SimTxQueue.put q (v + 100_001);
                true)
      in
      if got then Atomic.incr processed else continue := false
    done
  in
  let stats = Machine.run m (Array.init n_cpus (fun c -> body c)) in
  (stats, Atomic.get processed)

let sweep ?(cpus = [ 1; 4; 16 ]) ?(items = 256) () =
  List.concat_map
    (fun n ->
      let ns, np = run_naive ~n_cpus:n ~items in
      let ts, tp = run_txcoll ~n_cpus:n ~items in
      [
        {
          label = "naive queue in txns";
          cpus = n;
          cycles = ns.Machine.cycles;
          violations = ns.Machine.total_violations;
          processed = np;
        };
        {
          label = "TransactionalQueue";
          cpus = n;
          cycles = ts.Machine.cycles;
          violations = ts.Machine.total_violations;
          processed = tp;
        };
      ])
    cpus

let render ppf outcomes =
  Fmt.pf ppf "@.Work-queue benchmark (Delaunay-style, simulated TCC)@.";
  Fmt.pf ppf "  %-24s %5s %12s %10s %10s@." "variant" "cpus" "cycles"
    "violations" "processed";
  List.iter
    (fun o ->
      Fmt.pf ppf "  %-24s %5d %12d %10d %10d@." o.label o.cpus o.cycles
        o.violations o.processed)
    outcomes
