lib/harness/queue_bench.ml: Array Atomic Fmt List Sim Sim_ds Txcoll
