lib/harness/commute_spec.ml: Fmt Int List Map Option Printf
