lib/harness/host_validation.ml: Atomic Domain Fmt List Random Stm_ds Sys Tcc_stm Txcoll Unix
