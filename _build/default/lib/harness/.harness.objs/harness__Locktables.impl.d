lib/harness/locktables.ml: Fmt List String Tcc_stm Txcoll
