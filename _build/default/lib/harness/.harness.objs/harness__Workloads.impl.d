lib/harness/workloads.ml: Array Int List Option Random Sim Sim_ds Txcoll
