lib/harness/figures.ml: Fmt List Sim String Workloads
