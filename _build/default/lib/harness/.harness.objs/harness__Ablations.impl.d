lib/harness/ablations.ml: Array Atomic Domain Fmt List Option Random Sim Tcc_stm Txcoll Unix Workloads
