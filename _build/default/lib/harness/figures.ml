(* Speedup sweeps and rendering for the paper's figures.  Speedups are
   normalised to the single-processor lock-based ("Java") run of the same
   benchmark, as in §6 ("The single-processor Java version is used as the
   baseline for calculating speedup"). *)

type series = { label : string; points : (int * float) list }

type figure = {
  title : string;
  cpus : int list;
  series : series list;
  stats : (string * (int * Sim.Machine.stats) list) list;
}

let default_cpus = [ 1; 2; 4; 8; 16; 32 ]

(* [sweep runs]: [runs] maps variant label to (n_cpus -> stats). *)
let sweep ~title ?(cpus = default_cpus) ~baseline runs =
  let all =
    List.map (fun (label, f) -> (label, List.map (fun p -> (p, f p)) cpus)) runs
  in
  let base_cycles =
    match List.assoc_opt baseline all with
    | Some ((_, s) :: _) -> float_of_int s.Sim.Machine.cycles
    | _ -> invalid_arg "sweep: baseline series missing"
  in
  let series =
    List.map
      (fun (label, pts) ->
        {
          label;
          points =
            List.map
              (fun (p, s) -> (p, base_cycles /. float_of_int s.Sim.Machine.cycles))
              pts;
        })
      all
  in
  { title; cpus; series; stats = all }

let render ppf fig =
  Fmt.pf ppf "@.%s — speedup vs 1-CPU %s baseline@." fig.title
    (match fig.series with s :: _ -> s.label | [] -> "");
  Fmt.pf ppf "%-26s" "CPUs";
  List.iter (fun p -> Fmt.pf ppf "%8d" p) fig.cpus;
  Fmt.pf ppf "@.";
  List.iter
    (fun s ->
      Fmt.pf ppf "%-26s" s.label;
      List.iter (fun (_, v) -> Fmt.pf ppf "%8.2f" v) s.points;
      Fmt.pf ppf "@.")
    fig.series;
  (* Violation counts explain the shapes. *)
  Fmt.pf ppf "%-26s@." "violations:";
  List.iter
    (fun (label, pts) ->
      Fmt.pf ppf "%-26s" ("  " ^ label);
      List.iter
        (fun (_, s) -> Fmt.pf ppf "%8d" s.Sim.Machine.total_violations)
        pts;
      Fmt.pf ppf "@.")
    fig.stats

(* CSV rendering for external plotting: one row per CPU count, one column
   per series (speedup), then one violations column per series. *)
let render_csv ppf fig =
  Fmt.pf ppf "cpus%s%s@."
    (String.concat ""
       (List.map (fun s -> "," ^ String.map (function ',' -> ';' | c -> c) s.label) fig.series))
    (String.concat ""
       (List.map (fun (l, _) -> ",violations:" ^ l) fig.stats));
  List.iter
    (fun p ->
      Fmt.pf ppf "%d" p;
      List.iter
        (fun s ->
          match List.assoc_opt p s.points with
          | Some v -> Fmt.pf ppf ",%.4f" v
          | None -> Fmt.pf ppf ",")
        fig.series;
      List.iter
        (fun (_, pts) ->
          match List.assoc_opt p pts with
          | Some st -> Fmt.pf ppf ",%d" st.Sim.Machine.total_violations
          | None -> Fmt.pf ppf ",")
        fig.stats;
      Fmt.pf ppf "@.")
    fig.cpus

let value_at fig ~label ~cpus =
  match List.find_opt (fun s -> s.label = label) fig.series with
  | None -> None
  | Some s -> List.assoc_opt cpus s.points

(* ------------------------------------------------------------------ *)
(* The three micro-benchmark figures                                   *)

let figure1 ?(p = Workloads.default_params) ?cpus () =
  sweep ~title:"Figure 1: TestMap" ?cpus ~baseline:"Java HashMap"
    [
      ("Java HashMap", fun n -> Workloads.run_testmap ~p ~variant:`Java_lock ~n_cpus:n ());
      ( "Atomos HashMap",
        fun n -> Workloads.run_testmap ~p ~variant:`Atomos_naive ~n_cpus:n () );
      ( "Atomos TransactionalMap",
        fun n -> Workloads.run_testmap ~p ~variant:`Atomos_txcoll ~n_cpus:n () );
    ]

let figure2 ?(p = Workloads.default_params) ?cpus () =
  sweep ~title:"Figure 2: TestSortedMap" ?cpus ~baseline:"Java TreeMap"
    [
      ( "Java TreeMap",
        fun n -> Workloads.run_testsortedmap ~p ~variant:`Java_lock ~n_cpus:n () );
      ( "Atomos TreeMap",
        fun n -> Workloads.run_testsortedmap ~p ~variant:`Atomos_naive ~n_cpus:n () );
      ( "Atomos TransactionalSortedMap",
        fun n -> Workloads.run_testsortedmap ~p ~variant:`Atomos_txcoll ~n_cpus:n ()
      );
    ]

let figure3 ?(p = Workloads.default_params) ?cpus () =
  sweep ~title:"Figure 3: TestCompound" ?cpus ~baseline:"Java HashMap"
    [
      ( "Java HashMap",
        fun n -> Workloads.run_testcompound ~p ~variant:`Java_lock ~n_cpus:n () );
      ( "Atomos HashMap",
        fun n -> Workloads.run_testcompound ~p ~variant:`Atomos_naive ~n_cpus:n () );
      ( "Atomos TransactionalMap",
        fun n -> Workloads.run_testcompound ~p ~variant:`Atomos_txcoll ~n_cpus:n () );
    ]
