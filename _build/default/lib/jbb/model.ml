(* Parameters of the high-contention SPECjbb2000 variant (paper §6.3): a
   single warehouse serves all threads, so the district's order-ID
   generator, the global counters and the three shared tables
   (historyTable, orderTable, newOrderTable) are touched by every thread.

   The operation mix follows SPECjbb2000's TPC-C-style weights. *)

type op_kind = New_order | Payment | Order_status | Delivery | Stock_level

let op_mix = [ (43, New_order); (43, Payment); (4, Order_status); (5, Delivery); (5, Stock_level) ]

let pick_op rng =
  let total = List.fold_left (fun a (w, _) -> a + w) 0 op_mix in
  let r = Random.State.int rng total in
  let rec go acc = function
    | [] -> assert false
    | (w, k) :: rest -> if r < acc + w then k else go (acc + w) rest
  in
  go 0 op_mix

type params = {
  total_tasks : int;
  n_items : int;
  n_customers : int;
  base_work : int; (* computation cycles per operation *)
  item_work : int; (* extra cycles per order line *)
  cfg : Sim.Config.t;
}

let default_params =
  {
    total_tasks = 768;
    n_items = 4096;
    n_customers = 512;
    base_work = 1500;
    item_work = 120;
    cfg = Sim.Config.default;
  }

let per_cpu total n_cpus cpu =
  (total / n_cpus) + if cpu < total mod n_cpus then 1 else 0

(* Encode an order record in one word: customer id and line count. *)
let encode_order ~customer ~lines = (customer * 100) + lines
let order_lines order = order mod 100
let order_customer order = order / 100
