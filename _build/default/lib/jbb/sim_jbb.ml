(* The high-contention (single-warehouse) SPECjbb2000 variant on the
   simulated CMP — Figure 4.

   Four parallelisations (paper §6.3):
   - [`Java]: each shared field/structure protected by its own short
     lock-based critical region, as in the original benchmark;
   - [`Atomos_baseline]: each of the five TPC-C operations is one long
     transaction (the novice parallelisation), all structures plain;
   - [`Atomos_open]: global counters and the order-ID generator accessed in
     open-nested transactions, removing them as conflict sources;
   - [`Atomos_txcoll]: additionally wraps historyTable, orderTable and
     newOrderTable in transactional collection classes. *)

module Machine = Sim.Machine
module Ops = Sim.Ops
module Tcc = Sim.Tcc
module Acc = Sim_ds.Acc
module H = Sim_ds.Sim_hashmap
module A = Sim_ds.Sim_avlmap
module SL = Sim_ds.Spinlock
module SimTxMap = Harness.Workloads.SimTxMap
module SimTxSorted = Harness.Workloads.SimTxSorted
open Model

type variant = [ `Java | `Atomos_baseline | `Atomos_open | `Atomos_txcoll ]

let variant_name = function
  | `Java -> "Java"
  | `Atomos_baseline -> "Atomos Baseline"
  | `Atomos_open -> "Atomos Open"
  | `Atomos_txcoll -> "Atomos Transactional"

(* Variant-independent shared words. *)
type words = {
  items : int; (* base of read-only price array *)
  stock : int; (* base of per-item quantity array *)
  customers : int; (* base of per-customer balance array *)
  next_order_id : int;
  ytd : int;
  order_count : int;
  next_history_id : int;
}

(* The operations use this abstract interface; each variant instantiates it
   with its own synchronisation. *)
type api = {
  in_op : (unit -> unit) -> unit; (* transaction / no-op wrapper *)
  uid_next : unit -> int;
  uid_peek : unit -> int;
  hid_next : unit -> int; (* history-ID generator *)
  counter_add : int -> int -> unit; (* addr, delta *)
  stock_dec : int -> unit; (* item *)
  balance_add : int -> int -> unit; (* customer, delta *)
  balance_get : int -> int;
  order_put : int -> int -> unit;
  order_get : int -> int option;
  order_last : unit -> int option;
  order_range_count : int -> int -> int;
  neworder_put : int -> int -> unit;
  neworder_first : unit -> int option;
  neworder_remove : int -> unit;
  history_put : int -> int -> unit;
  audit : new_orders:int -> payments:int -> bool;
      (* Post-run consistency: committed table contents and counters agree
         with the number of committed operations. *)
}

(* ------------------------------------------------------------------ *)
(* The five TPC-C-style operations, written once against [api].        *)

let new_order (p : params) (w : words) (api : api) rng =
  let lines = 5 + Random.State.int rng 6 in
  let customer = Random.State.int rng p.n_customers in
  api.in_op (fun () ->
      Ops.work p.base_work;
      let uid = api.uid_next () in
      for _ = 1 to lines do
        let item = Random.State.int rng p.n_items in
        ignore (Ops.load (w.items + item));
        api.stock_dec item;
        Ops.work p.item_work
      done;
      api.order_put uid (encode_order ~customer ~lines);
      api.neworder_put uid customer;
      api.counter_add w.order_count 1)

let payment (p : params) (w : words) (api : api) rng =
  let customer = Random.State.int rng p.n_customers in
  let amount = 1 + Random.State.int rng 50 in
  api.in_op (fun () ->
      Ops.work p.base_work;
      api.counter_add w.ytd amount;
      api.balance_add customer (-amount);
      let hid = api.hid_next () in
      api.history_put hid amount)

let order_status (p : params) (_w : words) (api : api) rng =
  let customer = Random.State.int rng p.n_customers in
  api.in_op (fun () ->
      Ops.work (p.base_work / 2);
      ignore (api.balance_get customer);
      match api.order_last () with
      | None -> ()
      | Some uid -> (
          match api.order_get uid with
          | None -> ()
          | Some o -> Ops.work (10 * order_lines o)))

let delivery (p : params) (_w : words) (api : api) _rng =
  api.in_op (fun () ->
      Ops.work p.base_work;
      match api.neworder_first () with
      | None -> ()
      | Some uid -> (
          api.neworder_remove uid;
          match api.order_get uid with
          | None -> ()
          | Some o -> api.balance_add (order_customer o) 1))

let stock_level (p : params) (w : words) (api : api) rng =
  api.in_op (fun () ->
      Ops.work (p.base_work / 2);
      let hi = api.uid_peek () in
      let recent = api.order_range_count (max 1 (hi - 20)) hi in
      Ops.work (5 * recent);
      for _ = 1 to 5 do
        let item = Random.State.int rng p.n_items in
        ignore (Ops.load (w.stock + item))
      done)

let run_op p w api rng = function
  | New_order -> new_order p w api rng
  | Payment -> payment p w api rng
  | Order_status -> order_status p w api rng
  | Delivery -> delivery p w api rng
  | Stock_level -> stock_level p w api rng

(* ------------------------------------------------------------------ *)
(* Variant instantiations                                              *)

let alloc_words (p : params) m =
  let a = Acc.host m in
  let words =
    {
      items = a.Acc.al p.n_items;
      stock = a.Acc.al p.n_items;
      customers = a.Acc.al p.n_customers;
      next_order_id = a.Acc.al 1;
      ytd = a.Acc.al 1;
      order_count = a.Acc.al 1;
      next_history_id = a.Acc.al 1;
    }
  in
  for i = 0 to p.n_items - 1 do
    a.Acc.st (words.items + i) (100 + (i mod 900));
    a.Acc.st (words.stock + i) 1000
  done;
  a.Acc.st words.next_order_id 1;
  words

(* Pre-load the order tables so range scans and deliveries have work from
   the start. *)
let preload_orders (p : params) put_order put_neworder set_next =
  let rng = Random.State.make [| 99 |] in
  for uid = 1 to 64 do
    let customer = Random.State.int rng p.n_customers in
    put_order uid (encode_order ~customer ~lines:6);
    if uid mod 2 = 0 then put_neworder uid customer
  done;
  set_next 65

let striped base n addr = base + (addr mod n)

let make_java (p : params) m (w : words) =
  let a = Acc.host m in
  let order = A.create a () in
  let neworder = A.create a () in
  let history = H.create a ~buckets:1024 in
  preload_orders p (A.put a order) (A.put a neworder) (fun n ->
      a.Acc.st w.next_order_id n);
  let district_lock = SL.create a () in
  let order_lock = SL.create a () in
  let neworder_lock = SL.create a () in
  let history_lock = SL.create a () in
  let n_stripes = 16 in
  let stock_locks = Array.init n_stripes (fun _ -> SL.create a ()) in
  let cust_locks = Array.init n_stripes (fun _ -> SL.create a ()) in
  let s = Acc.sim in
  {
    in_op = (fun f -> f ());
    uid_next =
      (fun () ->
        SL.with_lock district_lock (fun () ->
            let v = Ops.load w.next_order_id in
            Ops.store w.next_order_id (v + 1);
            v));
    uid_peek =
      (fun () -> SL.with_lock district_lock (fun () -> Ops.load w.next_order_id));
    hid_next =
      (fun () ->
        SL.with_lock history_lock (fun () ->
            let v = Ops.load w.next_history_id in
            Ops.store w.next_history_id (v + 1);
            v));
    counter_add =
      (fun addr d ->
        SL.with_lock district_lock (fun () -> Ops.store addr (Ops.load addr + d)));
    stock_dec =
      (fun item ->
        SL.with_lock stock_locks.(striped 0 n_stripes item) (fun () ->
            Ops.store (w.stock + item) (Ops.load (w.stock + item) - 1)));
    balance_add =
      (fun c d ->
        SL.with_lock cust_locks.(striped 0 n_stripes c) (fun () ->
            Ops.store (w.customers + c) (Ops.load (w.customers + c) + d)));
    balance_get =
      (fun c ->
        SL.with_lock cust_locks.(striped 0 n_stripes c) (fun () ->
            Ops.load (w.customers + c)));
    order_put = (fun k v -> SL.with_lock order_lock (fun () -> A.put s order k v));
    order_get = (fun k -> SL.with_lock order_lock (fun () -> A.find s order k));
    order_last = (fun () -> SL.with_lock order_lock (fun () -> A.max_key s order));
    order_range_count =
      (fun lo hi ->
        SL.with_lock order_lock (fun () ->
            let n = ref 0 in
            A.iter_range s order ~lo ~hi (fun _ _ -> incr n);
            !n));
    neworder_put =
      (fun k v -> SL.with_lock neworder_lock (fun () -> A.put s neworder k v));
    neworder_first =
      (fun () -> SL.with_lock neworder_lock (fun () -> A.min_key s neworder));
    neworder_remove =
      (fun k -> SL.with_lock neworder_lock (fun () -> A.remove s neworder k));
    history_put =
      (fun k v -> SL.with_lock history_lock (fun () -> H.put s history k v));
    audit =
      (fun ~new_orders ~payments ->
        A.size a order = 64 + new_orders
        && H.size a history = payments
        && a.Acc.ld w.order_count = new_orders);
  }

let make_atomos (p : params) m (w : words) ~open_counters =
  let a = Acc.host m in
  let order = A.create a () in
  let neworder = A.create a () in
  let history = H.create a ~buckets:1024 in
  preload_orders p (A.put a order) (A.put a neworder) (fun n ->
      a.Acc.st w.next_order_id n);
  let s = Acc.sim in
  let wrap_word f = if open_counters then Tcc.open_nested f else f () in
  (* Open-nested counters must compensate on parent abort to preserve the
     exact count (the ID generators instead tolerate gaps: uniqueness is
     their semantics). *)
  let counter_add addr d =
    if open_counters then
      Tcc.open_nested (fun () ->
          Ops.store addr (Ops.load addr + d);
          (* The compensation must itself be atomic: it runs outside any
             transaction and races with other CPUs' open-nested updates. *)
          Tcc.on_abort (fun () ->
              Tcc.atomic (fun () -> Ops.store addr (Ops.load addr - d))))
    else Ops.store addr (Ops.load addr + d)
  in
  {
    in_op = (fun f -> Tcc.atomic f);
    uid_next =
      (fun () ->
        wrap_word (fun () ->
            let v = Ops.load w.next_order_id in
            Ops.store w.next_order_id (v + 1);
            v));
    uid_peek = (fun () -> wrap_word (fun () -> Ops.load w.next_order_id));
    hid_next =
      (fun () ->
        wrap_word (fun () ->
            let v = Ops.load w.next_history_id in
            Ops.store w.next_history_id (v + 1);
            v));
    counter_add;
    stock_dec =
      (fun item -> Ops.store (w.stock + item) (Ops.load (w.stock + item) - 1));
    balance_add =
      (fun c d -> Ops.store (w.customers + c) (Ops.load (w.customers + c) + d));
    balance_get = (fun c -> Ops.load (w.customers + c));
    order_put = (fun k v -> A.put s order k v);
    order_get = (fun k -> A.find s order k);
    order_last = (fun () -> A.max_key s order);
    order_range_count =
      (fun lo hi ->
        let n = ref 0 in
        A.iter_range s order ~lo ~hi (fun _ _ -> incr n);
        !n);
    neworder_put = (fun k v -> A.put s neworder k v);
    neworder_first = (fun () -> A.min_key s neworder);
    neworder_remove = (fun k -> A.remove s neworder k);
    history_put = (fun k v -> H.put s history k v);
    audit =
      (fun ~new_orders ~payments ->
        if Sys.getenv_opt "JBB_DEBUG" <> None then
          Printf.eprintf "DBG order=%d(want %d) hist=%d(want %d) cnt=%d\n%!"
            (A.size a order) (64 + new_orders) (H.size a history) payments
            (a.Acc.ld w.order_count);
        A.size a order = 64 + new_orders
        && H.size a history = payments
        && a.Acc.ld w.order_count = new_orders);
  }

let make_txcoll (p : params) m (w : words) =
  let a = Acc.host m in
  let order = SimTxSorted.create () in
  let neworder = SimTxSorted.create () in
  let history = SimTxMap.create () in
  preload_orders p
    (fun k v -> ignore (SimTxSorted.put order k v))
    (fun k v -> ignore (SimTxSorted.put neworder k v))
    (fun n -> a.Acc.st w.next_order_id n);
  {
    in_op = (fun f -> Tcc.atomic f);
    uid_next =
      (fun () ->
        Tcc.open_nested (fun () ->
            let v = Ops.load w.next_order_id in
            Ops.store w.next_order_id (v + 1);
            v));
    uid_peek = (fun () -> Tcc.open_nested (fun () -> Ops.load w.next_order_id));
    hid_next =
      (fun () ->
        Tcc.open_nested (fun () ->
            let v = Ops.load w.next_history_id in
            Ops.store w.next_history_id (v + 1);
            v));
    counter_add =
      (fun addr d ->
        Tcc.open_nested (fun () ->
            Ops.store addr (Ops.load addr + d);
            Tcc.on_abort (fun () ->
                Tcc.atomic (fun () -> Ops.store addr (Ops.load addr - d)))));
    stock_dec =
      (fun item -> Ops.store (w.stock + item) (Ops.load (w.stock + item) - 1));
    balance_add =
      (fun c d -> Ops.store (w.customers + c) (Ops.load (w.customers + c) + d));
    balance_get = (fun c -> Ops.load (w.customers + c));
    order_put = (fun k v -> ignore (SimTxSorted.put order k v));
    order_get = (fun k -> SimTxSorted.find order k);
    order_last = (fun () -> SimTxSorted.last_key order);
    order_range_count =
      (fun lo hi ->
        SimTxSorted.fold_range (fun _ _ n -> n + 1) order 0 ~lo:(Some lo)
          ~hi:(Some hi));
    neworder_put = (fun k v -> ignore (SimTxSorted.put neworder k v));
    neworder_first = (fun () -> SimTxSorted.first_key neworder);
    neworder_remove = (fun k -> ignore (SimTxSorted.remove neworder k));
    history_put = (fun k v -> ignore (SimTxMap.put history k v));
    audit =
      (fun ~new_orders ~payments ->
        SimTxSorted.size order = 64 + new_orders
        && SimTxMap.size history = payments
        && a.Acc.ld w.order_count = new_orders);
  }

(* ------------------------------------------------------------------ *)

(* [warehouses]: [`Single] is the paper's high-contention configuration
   (every thread shares one warehouse); [`Per_cpu] is standard SPECjbb2000,
   one warehouse per thread with a 1% chance of an inter-warehouse request —
   the configuration the paper notes is embarrassingly parallel. *)
let run_with_audit ?(p = default_params) ?(warehouses = `Single) ~variant
    ~n_cpus () =
  let m = Machine.create ~cfg:p.cfg ~n_cpus () in
  let n_wh = match warehouses with `Single -> 1 | `Per_cpu -> n_cpus in
  let make w =
    match variant with
    | `Java -> make_java p m w
    | `Atomos_baseline -> make_atomos p m w ~open_counters:false
    | `Atomos_open -> make_atomos p m w ~open_counters:true
    | `Atomos_txcoll -> make_txcoll p m w
  in
  let words = Array.init n_wh (fun _ -> alloc_words p m) in
  let apis = Array.map make words in
  let new_orders = Array.init n_wh (fun _ -> Atomic.make 0) in
  let payments = Array.init n_wh (fun _ -> Atomic.make 0) in
  let body cpu () =
    let rng = Random.State.make [| 0x7BB; cpu |] in
    for _ = 1 to per_cpu p.total_tasks n_cpus cpu do
      let wh =
        if n_wh = 1 then 0
        else if Random.State.int rng 100 = 0 then Random.State.int rng n_wh
        else cpu
      in
      let kind = pick_op rng in
      run_op p words.(wh) apis.(wh) rng kind;
      (* run_op returns once the operation's transaction has committed. *)
      match kind with
      | New_order -> Atomic.incr new_orders.(wh)
      | Payment -> Atomic.incr payments.(wh)
      | Order_status | Delivery | Stock_level -> ()
    done
  in
  let stats = Machine.run m (Array.init n_cpus (fun c -> body c)) in
  let consistent = ref true in
  Array.iteri
    (fun i api ->
      if
        not
          (api.audit
             ~new_orders:(Atomic.get new_orders.(i))
             ~payments:(Atomic.get payments.(i)))
      then consistent := false)
    apis;
  (stats, !consistent)

let run ?p ?warehouses ~variant ~n_cpus () =
  fst (run_with_audit ?p ?warehouses ~variant ~n_cpus ())

let figure4 ?(p = default_params) ?cpus () =
  Harness.Figures.sweep ~title:"Figure 4: SPECjbb2000 (single warehouse)" ?cpus
    ~baseline:"Java"
    [
      ("Java", fun n -> run ~p ~variant:`Java ~n_cpus:n ());
      ("Atomos Baseline", fun n -> run ~p ~variant:`Atomos_baseline ~n_cpus:n ());
      ("Atomos Open", fun n -> run ~p ~variant:`Atomos_open ~n_cpus:n ());
      ( "Atomos Transactional",
        fun n -> run ~p ~variant:`Atomos_txcoll ~n_cpus:n () );
    ]
