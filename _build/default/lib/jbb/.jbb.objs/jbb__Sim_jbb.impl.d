lib/jbb/sim_jbb.ml: Array Atomic Harness Model Printf Random Sim Sim_ds Sys
