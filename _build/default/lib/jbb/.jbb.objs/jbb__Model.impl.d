lib/jbb/model.ml: List Random Sim
