lib/jbb/host_jbb.ml: Array Atomic Coll Domain Fmt Int List Model Mutex Option Random Stm_ds Sys Tcc_stm Txcoll Unix
