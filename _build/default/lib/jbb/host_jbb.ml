(* Host (real OCaml domains) version of the high-contention SPECjbb2000
   variant: the same single-warehouse entity model as {!Sim_jbb}, in the
   paper's four parallelisations:

   - [`Lock]: plain structures, each protected by its own mutex — the
     lock-based Java baseline;
   - [`Baseline]: every operation one long transaction over tvar-based
     structures (fully isolated counters and tables) — conflict-heavy;
   - [`Open]: the order-ID generator and counters become open-nested;
   - [`Txcoll]: additionally, the three shared tables are transactional
     collection classes.

   [run] counts transaction retries, the host-level analogue of the
   simulator's violation counts in Figure 4. *)

module Stm = Tcc_stm.Stm
module Tvar = Tcc_stm.Tvar
module Counter = Stm_ds.Stm_counter
module Uidgen = Stm_ds.Stm_uidgen
module OrderMap = Txcoll.Host.Sorted_map (Txcoll.Host.Int_ordered)
module HistMap = Txcoll.Host.Map (Txcoll.Host.Int_hashed)
module StmSorted = Stm_ds.Stm_avlmap
module StmHash = Stm_ds.Stm_hashmap
open Model

type variant = [ `Lock | `Baseline | `Open | `Txcoll ]

let variant_name = function
  | `Lock -> "Java (locks)"
  | `Baseline -> "Atomos Baseline"
  | `Open -> "Atomos Open"
  | `Txcoll -> "Atomos Transactional"

(* Variant-independent operations interface, mirroring {!Sim_jbb.api}. *)
type api = {
  in_op : (unit -> unit) -> unit;
  uid_next : unit -> int;
  uid_peek : unit -> int;
  hid_next : unit -> int;
  ytd_add : int -> unit;
  order_count_incr : unit -> unit;
  stock_dec : int -> unit;
  balance_add : int -> int -> unit;
  balance_get : int -> int;
  order_put : int -> int -> unit;
  order_get : int -> int option;
  order_last : unit -> int option;
  order_range_count : int -> int -> int;
  neworder_put : int -> int -> unit;
  neworder_first : unit -> int option;
  neworder_remove : int -> unit;
  history_put : int -> int -> unit;
  audit : new_orders:int -> payments:int -> bool;
}

let preload put_order put_neworder = function
  | p ->
      for uid = 1 to 64 do
        put_order uid (encode_order ~customer:(uid mod p.n_customers) ~lines:6);
        if uid mod 2 = 0 then put_neworder uid (uid mod p.n_customers)
      done

(* ---------------- lock-based variant ---------------- *)

let make_lock (p : params) : api =
  let order : (int, int) Coll.Ordmap.t = Coll.Ordmap.create ~compare:Int.compare () in
  let neworder : (int, int) Coll.Ordmap.t =
    Coll.Ordmap.create ~compare:Int.compare ()
  in
  let history : (int, int) Coll.Chain_hashmap.t = Coll.Chain_hashmap.create () in
  preload (Coll.Ordmap.add order) (Coll.Ordmap.add neworder) p;
  let next_order = ref 65 and next_history = ref 1 in
  let ytd = ref 0 and order_count = ref 0 in
  let stock = Array.make p.n_items 1000 in
  let customers = Array.make p.n_customers 0 in
  let district_m = Mutex.create () in
  let order_m = Mutex.create () in
  let neworder_m = Mutex.create () in
  let history_m = Mutex.create () in
  let stock_m = Array.init 16 (fun _ -> Mutex.create ()) in
  let cust_m = Array.init 16 (fun _ -> Mutex.create ()) in
  {
    in_op = (fun f -> f ());
    uid_next =
      (fun () ->
        Mutex.protect district_m (fun () ->
            let v = !next_order in
            incr next_order;
            v));
    uid_peek = (fun () -> Mutex.protect district_m (fun () -> !next_order));
    hid_next =
      (fun () ->
        Mutex.protect history_m (fun () ->
            let v = !next_history in
            incr next_history;
            v));
    ytd_add = (fun d -> Mutex.protect district_m (fun () -> ytd := !ytd + d));
    order_count_incr =
      (fun () -> Mutex.protect district_m (fun () -> incr order_count));
    stock_dec =
      (fun i ->
        Mutex.protect stock_m.(i mod 16) (fun () -> stock.(i) <- stock.(i) - 1));
    balance_add =
      (fun c d ->
        Mutex.protect cust_m.(c mod 16) (fun () ->
            customers.(c) <- customers.(c) + d));
    balance_get =
      (fun c -> Mutex.protect cust_m.(c mod 16) (fun () -> customers.(c)));
    order_put =
      (fun k v -> Mutex.protect order_m (fun () -> Coll.Ordmap.add order k v));
    order_get =
      (fun k -> Mutex.protect order_m (fun () -> Coll.Ordmap.find order k));
    order_last =
      (fun () ->
        Mutex.protect order_m (fun () ->
            Option.map fst (Coll.Ordmap.max_binding order)));
    order_range_count =
      (fun lo hi ->
        Mutex.protect order_m (fun () ->
            let n = ref 0 in
            Coll.Ordmap.iter_range
              (fun _ _ -> incr n)
              order ~lo:(Some lo) ~hi:(Some hi);
            !n));
    neworder_put =
      (fun k v ->
        Mutex.protect neworder_m (fun () -> Coll.Ordmap.add neworder k v));
    neworder_first =
      (fun () ->
        Mutex.protect neworder_m (fun () ->
            Option.map fst (Coll.Ordmap.min_binding neworder)));
    neworder_remove =
      (fun k -> Mutex.protect neworder_m (fun () -> Coll.Ordmap.remove neworder k));
    history_put =
      (fun k v ->
        Mutex.protect history_m (fun () -> Coll.Chain_hashmap.add history k v));
    audit =
      (fun ~new_orders ~payments ->
        Coll.Ordmap.size order = 64 + new_orders
        && Coll.Chain_hashmap.size history = payments
        && !order_count = new_orders);
  }

(* ---------------- transactional variants ---------------- *)

let make_stm (p : params) ~(counters : [ `Isolated | `Open ]) : api =
  let order = StmSorted.create ~compare:Int.compare () in
  let neworder = StmSorted.create ~compare:Int.compare () in
  let history = StmHash.create () in
  preload (StmSorted.add order) (StmSorted.add neworder) p;
  let next_order = Uidgen.create ~first:65 () in
  let next_history = Uidgen.create ~first:1 () in
  let ytd = Counter.create () in
  let order_count = Counter.create () in
  let stock = Array.init p.n_items (fun _ -> Tvar.make 1000) in
  let customers = Array.init p.n_customers (fun _ -> Tvar.make 0) in
  let uid g =
    match counters with `Isolated -> Uidgen.next_isolated g | `Open -> Uidgen.next g
  in
  let incr_counter ?by c =
    match counters with
    | `Isolated -> Counter.incr ?by c
    | `Open -> Counter.incr_open ?by c
  in
  {
    in_op = (fun f -> Stm.atomic f);
    uid_next = (fun () -> uid next_order);
    uid_peek = (fun () -> Uidgen.peek next_order);
    hid_next = (fun () -> uid next_history);
    ytd_add = (fun d -> incr_counter ~by:d ytd);
    order_count_incr = (fun () -> incr_counter order_count);
    stock_dec = (fun i -> Tvar.set stock.(i) (Tvar.get stock.(i) - 1));
    balance_add = (fun c d -> Tvar.set customers.(c) (Tvar.get customers.(c) + d));
    balance_get = (fun c -> Tvar.get customers.(c));
    order_put = (fun k v -> StmSorted.add order k v);
    order_get = (fun k -> StmSorted.find order k);
    order_last = (fun () -> Option.map fst (StmSorted.max_binding order));
    order_range_count =
      (fun lo hi ->
        let n = ref 0 in
        StmSorted.iter_range (fun _ _ -> incr n) order ~lo:(Some lo) ~hi:(Some hi);
        !n);
    neworder_put = (fun k v -> StmSorted.add neworder k v);
    neworder_first = (fun () -> Option.map fst (StmSorted.min_binding neworder));
    neworder_remove = (fun k -> StmSorted.remove neworder k);
    history_put = (fun k v -> StmHash.add history k v);
    audit =
      (fun ~new_orders ~payments ->
        StmSorted.size order = 64 + new_orders
        && StmHash.size history = payments
        && Counter.get order_count = new_orders);
  }

let make_txcoll (p : params) : api =
  let order = OrderMap.create () in
  let neworder = OrderMap.create () in
  let history = HistMap.create () in
  preload
    (fun k v -> ignore (OrderMap.put order k v))
    (fun k v -> ignore (OrderMap.put neworder k v))
    p;
  let next_order = Uidgen.create ~first:65 () in
  let next_history = Uidgen.create ~first:1 () in
  let ytd = Counter.create () in
  let order_count = Counter.create () in
  let stock = Array.init p.n_items (fun _ -> Tvar.make 1000) in
  let customers = Array.init p.n_customers (fun _ -> Tvar.make 0) in
  {
    in_op = (fun f -> Stm.atomic f);
    uid_next = (fun () -> Uidgen.next next_order);
    uid_peek = (fun () -> Uidgen.peek next_order);
    hid_next = (fun () -> Uidgen.next next_history);
    ytd_add = (fun d -> Counter.incr_open ~by:d ytd);
    order_count_incr = (fun () -> Counter.incr_open order_count);
    stock_dec = (fun i -> Tvar.set stock.(i) (Tvar.get stock.(i) - 1));
    balance_add = (fun c d -> Tvar.set customers.(c) (Tvar.get customers.(c) + d));
    balance_get = (fun c -> Tvar.get customers.(c));
    order_put = (fun k v -> ignore (OrderMap.put order k v));
    order_get = (fun k -> OrderMap.find order k);
    order_last = (fun () -> OrderMap.last_key order);
    order_range_count =
      (fun lo hi ->
        OrderMap.fold_range (fun _ _ n -> n + 1) order 0 ~lo:(Some lo)
          ~hi:(Some hi));
    neworder_put = (fun k v -> ignore (OrderMap.put neworder k v));
    neworder_first = (fun () -> OrderMap.first_key neworder);
    neworder_remove = (fun k -> ignore (OrderMap.remove neworder k));
    history_put = (fun k v -> ignore (HistMap.put history k v));
    audit =
      (fun ~new_orders ~payments ->
        OrderMap.size order = 64 + new_orders
        && HistMap.size history = payments
        && Counter.get order_count = new_orders);
  }

let make (p : params) = function
  | `Lock -> make_lock p
  | `Baseline -> make_stm p ~counters:`Isolated
  | `Open -> make_stm p ~counters:`Open
  | `Txcoll -> make_txcoll p

(* ---------------- the five operations ---------------- *)

let busy n =
  let x = ref 0 in
  for i = 1 to n do
    x := !x + (i land 7)
  done;
  ignore (Sys.opaque_identity !x)

let new_order (p : params) (api : api) rng attempts =
  let lines = 5 + Random.State.int rng 6 in
  let customer = Random.State.int rng p.n_customers in
  let items = Array.init lines (fun _ -> Random.State.int rng p.n_items) in
  api.in_op (fun () ->
      incr attempts;
      busy p.base_work;
      let uid = api.uid_next () in
      Array.iter api.stock_dec items;
      api.order_put uid (encode_order ~customer ~lines);
      api.neworder_put uid customer;
      api.order_count_incr ())

let payment (p : params) (api : api) rng attempts =
  let customer = Random.State.int rng p.n_customers in
  let amount = 1 + Random.State.int rng 50 in
  api.in_op (fun () ->
      incr attempts;
      busy p.base_work;
      api.ytd_add amount;
      api.balance_add customer (-amount);
      let hid = api.hid_next () in
      api.history_put hid amount)

let order_status (p : params) (api : api) rng attempts =
  let customer = Random.State.int rng p.n_customers in
  api.in_op (fun () ->
      incr attempts;
      busy (p.base_work / 2);
      ignore (api.balance_get customer);
      match api.order_last () with
      | None -> ()
      | Some uid -> ignore (api.order_get uid))

let delivery (p : params) (api : api) _rng attempts =
  api.in_op (fun () ->
      incr attempts;
      busy p.base_work;
      match api.neworder_first () with
      | None -> ()
      | Some uid -> (
          api.neworder_remove uid;
          match api.order_get uid with
          | None -> ()
          | Some o -> api.balance_add (order_customer o) 1))

let stock_level (p : params) (api : api) _rng attempts =
  api.in_op (fun () ->
      incr attempts;
      busy (p.base_work / 2);
      let hi = api.uid_peek () in
      ignore (api.order_range_count (max 1 (hi - 20)) hi))

let run_op p api rng attempts = function
  | New_order -> new_order p api rng attempts
  | Payment -> payment p api rng attempts
  | Order_status -> order_status p api rng attempts
  | Delivery -> delivery p api rng attempts
  | Stock_level -> stock_level p api rng attempts

(* ---------------- driver ---------------- *)

type result = {
  new_orders : int;
  payments : int;
  others : int;
  retries : int;
  elapsed : float;
  consistent : bool;
}

let run_api ~(p : params) ~(api : api) ~n_domains ~tasks_per_domain =
  let new_orders = Atomic.make 0 in
  let payments = Atomic.make 0 in
  let others = Atomic.make 0 in
  let attempts_total = Atomic.make 0 in
  let t0 = Unix.gettimeofday () in
  let worker d () =
    let rng = Random.State.make [| 0x7BB; d |] in
    let attempts = ref 0 in
    for _ = 1 to tasks_per_domain do
      let kind = pick_op rng in
      run_op p api rng attempts kind;
      match kind with
      | New_order -> Atomic.incr new_orders
      | Payment -> Atomic.incr payments
      | Order_status | Delivery | Stock_level -> Atomic.incr others
    done;
    ignore (Atomic.fetch_and_add attempts_total !attempts)
  in
  let ds = List.init n_domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join ds;
  let elapsed = Unix.gettimeofday () -. t0 in
  let no = Atomic.get new_orders and pa = Atomic.get payments in
  {
    new_orders = no;
    payments = pa;
    others = Atomic.get others;
    retries = Atomic.get attempts_total - (n_domains * tasks_per_domain);
    elapsed;
    consistent = api.audit ~new_orders:no ~payments:pa;
  }

let run_variant ?(p = default_params) ~variant ~n_domains ~tasks_per_domain () =
  run_api ~p ~api:(make p variant) ~n_domains ~tasks_per_domain

let compare_variants ?(p = default_params) ?(n_domains = 2)
    ?(tasks_per_domain = 1500) () =
  List.map
    (fun v ->
      (variant_name v, run_variant ~p ~variant:v ~n_domains ~tasks_per_domain ()))
    [ `Lock; `Baseline; `Open; `Txcoll ]

let render ppf results =
  Fmt.pf ppf "@.SPECjbb2000 on real domains (host STM)@.";
  Fmt.pf ppf "  %-22s %10s %8s %12s %6s@." "variant" "ops/s" "retries"
    "elapsed(us)" "audit";
  List.iter
    (fun (name, r) ->
      let total = r.new_orders + r.payments + r.others in
      Fmt.pf ppf "  %-22s %10.0f %8d %12.0f %6b@." name
        (float_of_int total /. r.elapsed)
        r.retries (r.elapsed *. 1e6) r.consistent)
    results

(* Convenience wrapper for the example application: the transactional
   configuration with a post-run consistency audit. *)

type warehouse = { p : params; api : api }

let create ?(p = default_params) () = { p; api = make p `Txcoll }

let run w ~n_domains ~tasks_per_domain =
  let r = run_api ~p:w.p ~api:w.api ~n_domains ~tasks_per_domain in
  (r.new_orders, r.payments, r.others, r.elapsed)

let audit w ~new_orders_done ~payments_done =
  w.api.audit ~new_orders:new_orders_done ~payments:payments_done
