type 'v t = {
  mutable buf : 'v option array;
  mutable head : int; (* next dequeue slot *)
  mutable len : int;
}

let create ?(initial_capacity = 16) () =
  { buf = Array.make (max 1 initial_capacity) None; head = 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let grow t =
  let cap = Array.length t.buf in
  let buf = Array.make (2 * cap) None in
  for i = 0 to t.len - 1 do
    buf.(i) <- t.buf.((t.head + i) mod cap)
  done;
  t.buf <- buf;
  t.head <- 0

let enqueue t v =
  if t.len = Array.length t.buf then grow t;
  t.buf.((t.head + t.len) mod Array.length t.buf) <- Some v;
  t.len <- t.len + 1

let peek t = if t.len = 0 then None else t.buf.(t.head)

let dequeue t =
  if t.len = 0 then None
  else begin
    let v = t.buf.(t.head) in
    t.buf.(t.head) <- None;
    t.head <- (t.head + 1) mod Array.length t.buf;
    t.len <- t.len - 1;
    v
  end

let push_front t v =
  if t.len = Array.length t.buf then grow t;
  t.head <- (t.head - 1 + Array.length t.buf) mod Array.length t.buf;
  t.buf.(t.head) <- Some v;
  t.len <- t.len + 1

let iter f t =
  for i = 0 to t.len - 1 do
    match t.buf.((t.head + i) mod Array.length t.buf) with
    | Some v -> f v
    | None -> assert false
  done

let to_list t =
  let acc = ref [] in
  iter (fun v -> acc := v :: !acc) t;
  List.rev !acc

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.head <- 0;
  t.len <- 0
