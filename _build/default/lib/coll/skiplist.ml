(* A skip-list sorted map with a runtime comparator — a second "existing
   implementation" for the SortedMap wrapper (the paper cites JDK 6's
   ConcurrentSkipListMap as the contemporary alternative to TreeMap).
   Levels come from a deterministic per-instance PRNG, so behaviour is
   reproducible.  Not thread-safe; the transactional wrapper serialises
   access. *)

let max_level = 16

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  forward : ('k, 'v) node option array;
}

type ('k, 'v) t = {
  compare : 'k -> 'k -> int;
  head : ('k, 'v) node; (* sentinel; key is never examined *)
  mutable level : int;
  mutable size : int;
  rng : Random.State.t;
}

let create ~compare () =
  {
    compare;
    head =
      {
        key = Obj.magic 0;
        value = Obj.magic 0;
        forward = Array.make max_level None;
      };
    level = 1;
    size = 0;
    rng = Random.State.make [| 0x5C1B |];
  }

let compare_key t = t.compare
let size t = t.size
let is_empty t = t.size = 0

let random_level t =
  let rec go l =
    if l < max_level && Random.State.bool t.rng then go (l + 1) else l
  in
  go 1

(* Walk down from the top level; [update.(i)] is the rightmost node at level
   [i] whose key is < [key]. *)
let find_predecessors t key =
  let update = Array.make max_level t.head in
  let node = ref t.head in
  for i = t.level - 1 downto 0 do
    let rec advance () =
      match !node.forward.(i) with
      | Some n when t.compare n.key key < 0 ->
          node := n;
          advance ()
      | _ -> ()
    in
    advance ();
    update.(i) <- !node
  done;
  update

let find t key =
  let update = find_predecessors t key in
  match update.(0).forward.(0) with
  | Some n when t.compare n.key key = 0 -> Some n.value
  | _ -> None

let mem t key = Option.is_some (find t key)

let add t key value =
  let update = find_predecessors t key in
  match update.(0).forward.(0) with
  | Some n when t.compare n.key key = 0 -> n.value <- value
  | _ ->
      let lvl = random_level t in
      if lvl > t.level then begin
        for i = t.level to lvl - 1 do
          update.(i) <- t.head
        done;
        t.level <- lvl
      end;
      let node = { key; value; forward = Array.make lvl None } in
      for i = 0 to lvl - 1 do
        node.forward.(i) <- update.(i).forward.(i);
        update.(i).forward.(i) <- Some node
      done;
      t.size <- t.size + 1

let remove t key =
  let update = find_predecessors t key in
  match update.(0).forward.(0) with
  | Some n when t.compare n.key key = 0 ->
      for i = 0 to Array.length n.forward - 1 do
        match update.(i).forward.(i) with
        | Some n' when n' == n -> update.(i).forward.(i) <- n.forward.(i)
        | _ -> ()
      done;
      while t.level > 1 && t.head.forward.(t.level - 1) = None do
        t.level <- t.level - 1
      done;
      t.size <- t.size - 1
  | _ -> ()

let min_binding t =
  Option.map (fun n -> (n.key, n.value)) t.head.forward.(0)

let max_binding t =
  let rec go node best =
    match node.forward.(0) with
    | Some n -> go n (Some (n.key, n.value))
    | None -> best
  in
  go t.head None

let iter f t =
  let rec go = function
    | Some n ->
        f n.key n.value;
        go n.forward.(0)
    | None -> ()
  in
  go t.head.forward.(0)

let iter_range f t ~lo ~hi =
  let above k = match lo with None -> true | Some b -> t.compare k b >= 0 in
  let below k = match hi with None -> true | Some b -> t.compare k b < 0 in
  let start =
    match lo with
    | None -> t.head.forward.(0)
    | Some key -> (find_predecessors t key).(0).forward.(0)
  in
  let rec go = function
    | Some n when below n.key ->
        if above n.key then f n.key n.value;
        go n.forward.(0)
    | _ -> ()
  in
  go start

let fold f t init =
  let acc = ref init in
  iter (fun k v -> acc := f k v !acc) t;
  !acc

let to_list t = List.rev (fold (fun k v acc -> (k, v) :: acc) t [])

let clear t =
  Array.fill t.head.forward 0 max_level None;
  t.level <- 1;
  t.size <- 0

(* Structural invariants, for property tests: every level is sorted and a
   sublist of the level below; size matches level 0. *)
let check_invariants t =
  for i = 0 to t.level - 1 do
    let rec sorted = function
      | Some n -> (
          match n.forward.(i) with
          | Some n' ->
              assert (t.compare n.key n'.key < 0);
              sorted (Some n')
          | None -> ())
      | None -> ()
    in
    sorted t.head.forward.(i)
  done;
  let rec count acc = function
    | Some n -> count (acc + 1) n.forward.(0)
    | None -> acc
  in
  assert (count 0 t.head.forward.(0) = t.size)
