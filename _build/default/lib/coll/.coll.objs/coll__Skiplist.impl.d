lib/coll/skiplist.ml: Array List Obj Option Random
