lib/coll/chain_hashmap.ml: Array Hashtbl List Option
