lib/coll/chain_hashmap.mli:
