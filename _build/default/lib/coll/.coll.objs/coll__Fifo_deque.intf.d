lib/coll/fifo_deque.mli:
