lib/coll/fifo_deque.ml: Array List
