lib/coll/ordmap.mli:
