lib/coll/skiplist.mli:
