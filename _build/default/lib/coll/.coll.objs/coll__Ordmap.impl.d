lib/coll/ordmap.ml: List Option
