lib/coll/oa_hashmap.mli:
