lib/coll/oa_hashmap.ml: Array Hashtbl Option
