type ('k, 'v) t = {
  hash : 'k -> int;
  equal : 'k -> 'k -> bool;
  mutable buckets : ('k * 'v) list array;
  mutable size : int;
}

let create ?(initial_capacity = 16) ?(hash = Hashtbl.hash) ?(equal = ( = )) () =
  let cap = max 1 initial_capacity in
  { hash; equal; buckets = Array.make cap []; size = 0 }

let index t k = t.hash k land max_int mod Array.length t.buckets
let size t = t.size
let is_empty t = t.size = 0

let find t k =
  let rec scan = function
    | [] -> None
    | (k', v) :: rest -> if t.equal k k' then Some v else scan rest
  in
  scan t.buckets.(index t k)

let mem t k = Option.is_some (find t k)

let resize t =
  let old = t.buckets in
  t.buckets <- Array.make (2 * Array.length old) [];
  Array.iter
    (List.iter (fun ((k, _) as binding) ->
         let i = index t k in
         t.buckets.(i) <- binding :: t.buckets.(i)))
    old

let add t k v =
  let i = index t k in
  let rec replace = function
    | [] -> None
    | (k', _) :: rest when t.equal k k' -> Some ((k, v) :: rest)
    | b :: rest -> Option.map (fun r -> b :: r) (replace rest)
  in
  match replace t.buckets.(i) with
  | Some bucket -> t.buckets.(i) <- bucket
  | None ->
      t.buckets.(i) <- (k, v) :: t.buckets.(i);
      t.size <- t.size + 1;
      if t.size > 3 * Array.length t.buckets / 4 then resize t

let remove t k =
  let i = index t k in
  let rec drop = function
    | [] -> None
    | (k', _) :: rest when t.equal k k' -> Some rest
    | b :: rest -> Option.map (fun r -> b :: r) (drop rest)
  in
  match drop t.buckets.(i) with
  | Some bucket ->
      t.buckets.(i) <- bucket;
      t.size <- t.size - 1
  | None -> ()

let iter f t = Array.iter (List.iter (fun (k, v) -> f k v)) t.buckets

let fold f t init =
  let acc = ref init in
  iter (fun k v -> acc := f k v !acc) t;
  !acc

let to_list t = fold (fun k v acc -> (k, v) :: acc) t []

let clear t =
  Array.fill t.buckets 0 (Array.length t.buckets) [];
  t.size <- 0
