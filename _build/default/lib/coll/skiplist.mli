(** A skip-list sorted map with a runtime comparator — an alternative
    underlying implementation for the TransactionalSortedMap wrapper,
    demonstrating that semantic concurrency control needs no knowledge of
    data-structure internals (the paper's ConcurrentSkipListMap reference).
    Deterministic levels; not thread-safe. *)

type ('k, 'v) t

val create : compare:('k -> 'k -> int) -> unit -> ('k, 'v) t
val compare_key : ('k, 'v) t -> 'k -> 'k -> int
val size : ('k, 'v) t -> int
val is_empty : ('k, 'v) t -> bool
val find : ('k, 'v) t -> 'k -> 'v option
val mem : ('k, 'v) t -> 'k -> bool
val add : ('k, 'v) t -> 'k -> 'v -> unit
val remove : ('k, 'v) t -> 'k -> unit
val min_binding : ('k, 'v) t -> ('k * 'v) option
val max_binding : ('k, 'v) t -> ('k * 'v) option
val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit

val iter_range :
  ('k -> 'v -> unit) -> ('k, 'v) t -> lo:'k option -> hi:'k option -> unit

val fold : ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) t -> 'acc -> 'acc
val to_list : ('k, 'v) t -> ('k * 'v) list
val clear : ('k, 'v) t -> unit
val check_invariants : ('k, 'v) t -> unit
