(** A separate-chaining hash map with a single [size] field and power-of-two
    growth — deliberately shaped like [java.util.HashMap], whose size-field
    and bucket collisions are the paper's canonical source of unnecessary
    memory-level conflicts.  Not thread-safe: the transactional wrapper
    serialises access to it. *)

type ('k, 'v) t

val create :
  ?initial_capacity:int ->
  ?hash:('k -> int) ->
  ?equal:('k -> 'k -> bool) ->
  unit ->
  ('k, 'v) t

val size : ('k, 'v) t -> int
val is_empty : ('k, 'v) t -> bool
val find : ('k, 'v) t -> 'k -> 'v option
val mem : ('k, 'v) t -> 'k -> bool
val add : ('k, 'v) t -> 'k -> 'v -> unit
val remove : ('k, 'v) t -> 'k -> unit
val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit
val fold : ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) t -> 'acc -> 'acc
val to_list : ('k, 'v) t -> ('k * 'v) list
val clear : ('k, 'v) t -> unit
