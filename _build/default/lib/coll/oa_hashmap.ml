(* An open-addressing (linear probing, tombstone) hash map — a second
   "existing implementation" for the Map wrapper.  Its internal behaviour
   differs sharply from chaining (probe sequences, tombstones, rehashing),
   which is invisible through the transactional wrapper. *)

type ('k, 'v) slot = Empty | Tombstone | Bind of 'k * 'v

type ('k, 'v) t = {
  hash : 'k -> int;
  equal : 'k -> 'k -> bool;
  mutable slots : ('k, 'v) slot array;
  mutable size : int;
  mutable used : int; (* bindings + tombstones *)
}

let create ?(initial_capacity = 16) ?(hash = Hashtbl.hash) ?(equal = ( = )) () =
  let cap = max 4 initial_capacity in
  { hash; equal; slots = Array.make cap Empty; size = 0; used = 0 }

let size t = t.size
let is_empty t = t.size = 0

let index t k = t.hash k land max_int mod Array.length t.slots

(* Returns the slot index of [k] if bound, else the first insertable slot
   on its probe path. *)
let probe t k =
  let n = Array.length t.slots in
  let rec go i insert_at steps =
    if steps > n then (`Insert_at (Option.get insert_at) : _)
    else
      match t.slots.(i) with
      | Empty -> (
          match insert_at with
          | Some j -> `Insert_at j
          | None -> `Insert_at i)
      | Tombstone ->
          let insert_at = if insert_at = None then Some i else insert_at in
          go ((i + 1) mod n) insert_at (steps + 1)
      | Bind (k', _) ->
          if t.equal k k' then `Found i
          else go ((i + 1) mod n) insert_at (steps + 1)
  in
  go (index t k) None 0

let find t k =
  match probe t k with
  | `Found i -> ( match t.slots.(i) with Bind (_, v) -> Some v | _ -> None)
  | `Insert_at _ -> None

let mem t k = Option.is_some (find t k)

let rec add t k v =
  if 2 * (t.used + 1) > Array.length t.slots then rehash t;
  match probe t k with
  | `Found i -> t.slots.(i) <- Bind (k, v)
  | `Insert_at i ->
      (match t.slots.(i) with
      | Empty -> t.used <- t.used + 1
      | Tombstone | Bind _ -> ());
      t.slots.(i) <- Bind (k, v);
      t.size <- t.size + 1

and rehash t =
  let old = t.slots in
  t.slots <- Array.make (2 * Array.length old) Empty;
  t.size <- 0;
  t.used <- 0;
  Array.iter (function Bind (k, v) -> add t k v | Empty | Tombstone -> ()) old

let remove t k =
  match probe t k with
  | `Found i ->
      t.slots.(i) <- Tombstone;
      t.size <- t.size - 1
  | `Insert_at _ -> ()

let iter f t =
  Array.iter (function Bind (k, v) -> f k v | Empty | Tombstone -> ()) t.slots

let fold f t init =
  let acc = ref init in
  iter (fun k v -> acc := f k v !acc) t;
  !acc

let to_list t = fold (fun k v acc -> (k, v) :: acc) t []

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) Empty;
  t.size <- 0;
  t.used <- 0
