(** A mutable ordered map (AVL tree) with a runtime comparator — the host
    stand-in for [java.util.TreeMap].  Self-balancing rotations are exactly
    the implementation detail whose memory-level conflicts the
    TransactionalSortedMap wrapper hides.  Not thread-safe. *)

type ('k, 'v) t

val create : compare:('k -> 'k -> int) -> unit -> ('k, 'v) t
val compare_key : ('k, 'v) t -> 'k -> 'k -> int
val size : ('k, 'v) t -> int
val is_empty : ('k, 'v) t -> bool
val find : ('k, 'v) t -> 'k -> 'v option
val mem : ('k, 'v) t -> 'k -> bool
val add : ('k, 'v) t -> 'k -> 'v -> unit
val remove : ('k, 'v) t -> 'k -> unit
val min_binding : ('k, 'v) t -> ('k * 'v) option
val max_binding : ('k, 'v) t -> ('k * 'v) option
val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit
val fold : ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) t -> 'acc -> 'acc

val iter_range :
  ('k -> 'v -> unit) -> ('k, 'v) t -> lo:'k option -> hi:'k option -> unit
(** In-order over keys [k] with [lo <= k < hi]; a missing bound is
    unbounded. *)

val to_list : ('k, 'v) t -> ('k * 'v) list
val clear : ('k, 'v) t -> unit

val check_balanced : ('k, 'v) t -> unit
(** Asserts the AVL invariants; for tests. *)
