(** A growable ring-buffer FIFO with [push_front], used as the underlying
    queue wrapped by the transactional work queue.  [push_front] lets the
    abort compensation return dequeued-but-unprocessed work to the front, as
    the Delaunay-style work queue requires.  Not thread-safe. *)

type 'v t

val create : ?initial_capacity:int -> unit -> 'v t
val length : 'v t -> int
val is_empty : 'v t -> bool
val enqueue : 'v t -> 'v -> unit
val dequeue : 'v t -> 'v option
val peek : 'v t -> 'v option
val push_front : 'v t -> 'v -> unit
val iter : ('v -> unit) -> 'v t -> unit
val to_list : 'v t -> 'v list
val clear : 'v t -> unit
