(* AVL tree with a runtime comparator.  The functional core keeps rebalancing
   code small and obviously correct; the mutable wrapper gives the imperative
   interface the wrappers and store buffers expect. *)

type ('k, 'v) node =
  | Leaf
  | Node of { l : ('k, 'v) node; k : 'k; v : 'v; r : ('k, 'v) node; h : int }

type ('k, 'v) t = {
  compare : 'k -> 'k -> int;
  mutable root : ('k, 'v) node;
  mutable size : int;
}

let height = function Leaf -> 0 | Node { h; _ } -> h

let node l k v r =
  Node { l; k; v; r; h = 1 + max (height l) (height r) }

let balance l k v r =
  let hl = height l and hr = height r in
  if hl > hr + 1 then
    match l with
    | Node { l = ll; k = lk; v = lv; r = lr; _ } when height ll >= height lr ->
        node ll lk lv (node lr k v r)
    | Node
        {
          l = ll;
          k = lk;
          v = lv;
          r = Node { l = lrl; k = lrk; v = lrv; r = lrr; _ };
          _;
        } ->
        node (node ll lk lv lrl) lrk lrv (node lrr k v r)
    | _ -> assert false
  else if hr > hl + 1 then
    match r with
    | Node { l = rl; k = rk; v = rv; r = rr; _ } when height rr >= height rl ->
        node (node l k v rl) rk rv rr
    | Node
        {
          l = Node { l = rll; k = rlk; v = rlv; r = rlr; _ };
          k = rk;
          v = rv;
          r = rr;
          _;
        } ->
        node (node l k v rll) rlk rlv (node rlr rk rv rr)
    | _ -> assert false
  else node l k v r

let create ~compare () = { compare; root = Leaf; size = 0 }
let compare_key t = t.compare
let size t = t.size
let is_empty t = t.size = 0

let find t key =
  let rec go = function
    | Leaf -> None
    | Node { l; k; v; r; _ } ->
        let c = t.compare key k in
        if c = 0 then Some v else if c < 0 then go l else go r
  in
  go t.root

let mem t key = Option.is_some (find t key)

let add t key value =
  let added = ref false in
  let rec go = function
    | Leaf ->
        added := true;
        node Leaf key value Leaf
    | Node { l; k; v; r; _ } ->
        let c = t.compare key k in
        if c = 0 then node l key value r
        else if c < 0 then balance (go l) k v r
        else balance l k v (go r)
  in
  t.root <- go t.root;
  if !added then t.size <- t.size + 1

let rec min_node = function
  | Leaf -> None
  | Node { l = Leaf; k; v; _ } -> Some (k, v)
  | Node { l; _ } -> min_node l

let rec max_node = function
  | Leaf -> None
  | Node { r = Leaf; k; v; _ } -> Some (k, v)
  | Node { r; _ } -> max_node r

let min_binding t = min_node t.root
let max_binding t = max_node t.root

let remove t key =
  let removed = ref false in
  let rec go = function
    | Leaf -> Leaf
    | Node { l; k; v; r; _ } ->
        let c = t.compare key k in
        if c < 0 then balance (go l) k v r
        else if c > 0 then balance l k v (go r)
        else begin
          removed := true;
          match min_node r with
          | None -> l
          | Some (sk, sv) -> balance l sk sv (remove_min r)
        end
  and remove_min = function
    | Leaf -> Leaf
    | Node { l = Leaf; r; _ } -> r
    | Node { l; k; v; r; _ } -> balance (remove_min l) k v r
  in
  t.root <- go t.root;
  if !removed then t.size <- t.size - 1

let iter f t =
  let rec go = function
    | Leaf -> ()
    | Node { l; k; v; r; _ } ->
        go l;
        f k v;
        go r
  in
  go t.root

let fold f t init =
  let acc = ref init in
  iter (fun k v -> acc := f k v !acc) t;
  !acc

(* In-order iteration over [lo <= k < hi] (half-open, Java subMap style). *)
let iter_range f t ~lo ~hi =
  let above_lo k = match lo with None -> true | Some b -> t.compare k b >= 0 in
  let below_hi k = match hi with None -> true | Some b -> t.compare k b < 0 in
  let rec go = function
    | Leaf -> ()
    | Node { l; k; v; r; _ } ->
        if above_lo k then go l;
        if above_lo k && below_hi k then f k v;
        if below_hi k then go r
  in
  go t.root

let to_list t = List.rev (fold (fun k v acc -> (k, v) :: acc) t [])

let clear t =
  t.root <- Leaf;
  t.size <- 0

(* Exposed for property tests: structural balance invariant. *)
let check_balanced t =
  let rec go = function
    | Leaf -> 0
    | Node { l; r; h; _ } ->
        let hl = go l and hr = go r in
        assert (abs (hl - hr) <= 1);
        assert (h = 1 + max hl hr);
        h
  in
  ignore (go t.root)
