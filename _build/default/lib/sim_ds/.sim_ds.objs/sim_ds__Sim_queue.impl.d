lib/sim_ds/sim_queue.ml: Acc
