lib/sim_ds/acc.ml: Sim
