lib/sim_ds/sim_hashmap.ml: Acc Option
