lib/sim_ds/spinlock.ml: Acc Fun Sim
