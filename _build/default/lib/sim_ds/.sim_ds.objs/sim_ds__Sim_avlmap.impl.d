lib/sim_ds/sim_avlmap.ml: Acc Option
