(* Memory accessor: the simulated data structures are written once against
   this record, then used either from inside a simulation (effect-performing
   accessor, charged by the machine's timing model) or host-side for cheap
   pre-population and end-of-run verification. *)

type t = {
  ld : int -> int; (* load word *)
  st : int -> int -> unit; (* store word *)
  al : int -> int; (* allocate n words, line-aligned *)
}

(* Inside a simulated thread: every access is a machine instruction. *)
let sim = { ld = Sim.Ops.load; st = Sim.Ops.store; al = Sim.Ops.alloc }

(* Host-side, against a machine that is not running: zero-cost setup and
   inspection. *)
let host (m : Sim.Machine.t) =
  {
    ld = Sim.Machine.mem_read m;
    st = Sim.Machine.mem_write m;
    al = Sim.Machine.alloc_words m;
  }

(* Deterministic integer hash (Knuth multiplicative). *)
let hash_int k = k * 2654435761 land max_int
