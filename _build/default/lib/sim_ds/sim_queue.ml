(* A linked FIFO queue in simulated memory.
   Layout: header [base+0]=head [base+1]=tail [base+2]=length;
   node [n+0]=value [n+1]=next. *)

type t = { base : int }

let create (a : Acc.t) () =
  let base = a.al 3 in
  a.st (base + 0) 0;
  a.st (base + 1) 0;
  a.st (base + 2) 0;
  { base }

let length (a : Acc.t) t = a.ld (t.base + 2)
let is_empty (a : Acc.t) t = length a t = 0

let enqueue (a : Acc.t) t v =
  let n = a.al 2 in
  a.st (n + 0) v;
  a.st (n + 1) 0;
  let tail = a.ld (t.base + 1) in
  if tail = 0 then a.st (t.base + 0) n else a.st (tail + 1) n;
  a.st (t.base + 1) n;
  a.st (t.base + 2) (a.ld (t.base + 2) + 1)

let peek (a : Acc.t) t =
  let head = a.ld (t.base + 0) in
  if head = 0 then None else Some (a.ld head)

let dequeue (a : Acc.t) t =
  let head = a.ld (t.base + 0) in
  if head = 0 then None
  else begin
    let next = a.ld (head + 1) in
    a.st (t.base + 0) next;
    if next = 0 then a.st (t.base + 1) 0;
    a.st (t.base + 2) (a.ld (t.base + 2) - 1);
    Some (a.ld head)
  end

let push_front (a : Acc.t) t v =
  let n = a.al 2 in
  a.st (n + 0) v;
  a.st (n + 1) (a.ld (t.base + 0));
  a.st (t.base + 0) n;
  if a.ld (t.base + 1) = 0 then a.st (t.base + 1) n;
  a.st (t.base + 2) (a.ld (t.base + 2) + 1)
