(* Test-and-test-and-set spinlock over a simulated cache line — the "Java
   synchronized" baseline.  Contention costs come from the MESI model: the
   lock word ping-pongs between caches, and the bus serialises upgrades. *)

type t = { addr : int }

let create (a : Acc.t) () =
  let addr = a.al 1 in
  a.st addr 0;
  { addr }

let rec acquire t =
  if Sim.Ops.load t.addr = 0 && Sim.Ops.cas t.addr ~expect:0 ~repl:1 then ()
  else begin
    Sim.Ops.work 8;
    acquire t
  end

let release t = Sim.Ops.store t.addr 0

let with_lock t f =
  acquire t;
  Fun.protect ~finally:(fun () -> release t) f
