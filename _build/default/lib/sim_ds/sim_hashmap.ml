(* A chained hash map in simulated memory, shaped like java.util.HashMap:
   one shared [size] word plus bucket chains.  Keys and values are ints;
   0 is reserved as the null node pointer.

   Layout:
     header: [base+0] = size, [base+1] = bucket count, [base+2] = buckets base
     bucket i: one word holding the first node address (0 = empty)
     node:   [n+0] = key, [n+1] = value, [n+2] = next

   Used inside transactions this is the paper's "Atomos HashMap" baseline:
   every insert/remove writes the size word, so logically independent
   operations conflict at the memory level. *)

type t = { base : int }

let create (a : Acc.t) ~buckets =
  let base = a.al 3 in
  let arr = a.al buckets in
  a.st (base + 0) 0;
  a.st (base + 1) buckets;
  a.st (base + 2) arr;
  { base }

let size (a : Acc.t) t = a.ld (t.base + 0)

let bucket_addr (a : Acc.t) t k =
  let n = a.ld (t.base + 1) in
  let arr = a.ld (t.base + 2) in
  arr + (Acc.hash_int k mod n)

let find (a : Acc.t) t k =
  let rec walk node =
    if node = 0 then None
    else if a.ld node = k then Some (a.ld (node + 1))
    else walk (a.ld (node + 2))
  in
  walk (a.ld (bucket_addr a t k))

let mem (a : Acc.t) t k = Option.is_some (find a t k)

let put (a : Acc.t) t k v =
  let b = bucket_addr a t k in
  let rec walk node =
    if node = 0 then begin
      let fresh = a.al 3 in
      a.st (fresh + 0) k;
      a.st (fresh + 1) v;
      a.st (fresh + 2) (a.ld b);
      a.st b fresh;
      a.st (t.base + 0) (a.ld (t.base + 0) + 1)
    end
    else if a.ld node = k then a.st (node + 1) v
    else walk (a.ld (node + 2))
  in
  walk (a.ld b)

let remove (a : Acc.t) t k =
  let b = bucket_addr a t k in
  let rec walk prev node =
    if node = 0 then ()
    else if a.ld node = k then begin
      let next = a.ld (node + 2) in
      (match prev with None -> a.st b next | Some p -> a.st (p + 2) next);
      a.st (t.base + 0) (a.ld (t.base + 0) - 1)
    end
    else walk (Some node) (a.ld (node + 2))
  in
  walk None (a.ld b)

let iter (a : Acc.t) t f =
  let n = a.ld (t.base + 1) in
  let arr = a.ld (t.base + 2) in
  for i = 0 to n - 1 do
    let rec walk node =
      if node <> 0 then begin
        f (a.ld node) (a.ld (node + 1));
        walk (a.ld (node + 2))
      end
    in
    walk (a.ld (arr + i))
  done
