(* An AVL tree in simulated memory, shaped like java.util.TreeMap: node
   links, values and heights are shared words, so self-balancing rotations
   write nodes near the root.  Inside transactions this is the paper's
   "Atomos TreeMap" baseline of Figure 2, whose rotation-induced memory
   conflicts the TransactionalSortedMap eliminates.

   Layout:
     header: [base+0] = root node (0 = empty), [base+1] = size
     node:   [n+0]=key [n+1]=value [n+2]=left [n+3]=right [n+4]=height *)

type t = { base : int }

let create (a : Acc.t) () =
  let base = a.al 2 in
  a.st (base + 0) 0;
  a.st (base + 1) 0;
  { base }

let size (a : Acc.t) t = a.ld (t.base + 1)
let height (a : Acc.t) node = if node = 0 then 0 else a.ld (node + 4)

let update_height (a : Acc.t) n =
  a.st (n + 4) (1 + max (height a (a.ld (n + 2))) (height a (a.ld (n + 3))))

let rotate_right (a : Acc.t) n =
  let l = a.ld (n + 2) in
  a.st (n + 2) (a.ld (l + 3));
  a.st (l + 3) n;
  update_height a n;
  update_height a l;
  l

let rotate_left (a : Acc.t) n =
  let r = a.ld (n + 3) in
  a.st (n + 3) (a.ld (r + 2));
  a.st (r + 2) n;
  update_height a n;
  update_height a r;
  r

let balance (a : Acc.t) n =
  if n = 0 then 0
  else begin
    let hl = height a (a.ld (n + 2)) and hr = height a (a.ld (n + 3)) in
    if hl > hr + 1 then begin
      let l = a.ld (n + 2) in
      if height a (a.ld (l + 2)) < height a (a.ld (l + 3)) then
        a.st (n + 2) (rotate_left a l);
      rotate_right a n
    end
    else if hr > hl + 1 then begin
      let r = a.ld (n + 3) in
      if height a (a.ld (r + 3)) < height a (a.ld (r + 2)) then
        a.st (n + 3) (rotate_right a r);
      rotate_left a n
    end
    else begin
      update_height a n;
      n
    end
  end

let find (a : Acc.t) t k =
  let rec go node =
    if node = 0 then None
    else
      let nk = a.ld node in
      if k = nk then Some (a.ld (node + 1))
      else if k < nk then go (a.ld (node + 2))
      else go (a.ld (node + 3))
  in
  go (a.ld (t.base + 0))

let mem (a : Acc.t) t k = Option.is_some (find a t k)

let put (a : Acc.t) t k v =
  let added = ref false in
  let rec go node =
    if node = 0 then begin
      added := true;
      let n = a.al 5 in
      a.st (n + 0) k;
      a.st (n + 1) v;
      a.st (n + 2) 0;
      a.st (n + 3) 0;
      a.st (n + 4) 1;
      n
    end
    else
      let nk = a.ld node in
      if k = nk then begin
        a.st (node + 1) v;
        node
      end
      else if k < nk then begin
        a.st (node + 2) (go (a.ld (node + 2)));
        balance a node
      end
      else begin
        a.st (node + 3) (go (a.ld (node + 3)));
        balance a node
      end
  in
  a.st (t.base + 0) (go (a.ld (t.base + 0)));
  if !added then a.st (t.base + 1) (a.ld (t.base + 1) + 1)

(* Detach the minimum node of subtree [node]; returns (min_node, rest). *)
let rec extract_min (a : Acc.t) node =
  let l = a.ld (node + 2) in
  if l = 0 then (node, a.ld (node + 3))
  else begin
    let mn, l' = extract_min a l in
    a.st (node + 2) l';
    (mn, balance a node)
  end

let remove (a : Acc.t) t k =
  let removed = ref false in
  let rec go node =
    if node = 0 then 0
    else
      let nk = a.ld node in
      if k < nk then begin
        a.st (node + 2) (go (a.ld (node + 2)));
        balance a node
      end
      else if k > nk then begin
        a.st (node + 3) (go (a.ld (node + 3)));
        balance a node
      end
      else begin
        removed := true;
        let l = a.ld (node + 2) and r = a.ld (node + 3) in
        if l = 0 then r
        else if r = 0 then l
        else begin
          let succ, r' = extract_min a r in
          a.st (succ + 2) l;
          a.st (succ + 3) r';
          balance a succ
        end
      end
  in
  a.st (t.base + 0) (go (a.ld (t.base + 0)));
  if !removed then a.st (t.base + 1) (a.ld (t.base + 1) - 1)

let min_key (a : Acc.t) t =
  let rec go node best =
    if node = 0 then best else go (a.ld (node + 2)) (Some (a.ld node))
  in
  go (a.ld (t.base + 0)) None

let max_key (a : Acc.t) t =
  let rec go node best =
    if node = 0 then best else go (a.ld (node + 3)) (Some (a.ld node))
  in
  go (a.ld (t.base + 0)) None

(* In-order iteration over lo <= key < hi. *)
let iter_range (a : Acc.t) t ~lo ~hi f =
  let rec go node =
    if node <> 0 then begin
      let k = a.ld node in
      if k >= lo then go (a.ld (node + 2));
      if k >= lo && k < hi then f k (a.ld (node + 1));
      if k < hi then go (a.ld (node + 3))
    end
  in
  go (a.ld (t.base + 0))

let iter (a : Acc.t) t f = iter_range a t ~lo:min_int ~hi:max_int f

let check_balanced (a : Acc.t) t =
  let rec go node =
    if node = 0 then 0
    else begin
      let hl = go (a.ld (node + 2)) and hr = go (a.ld (node + 3)) in
      assert (abs (hl - hr) <= 1);
      assert (a.ld (node + 4) = 1 + max hl hr);
      1 + max hl hr
    end
  in
  ignore (go (a.ld (t.base + 0)))
