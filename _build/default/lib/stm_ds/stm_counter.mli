(** Global counters, in both fully isolated and reduced-isolation
    (open-nested) flavours.  The open-nested variants eliminate the counter
    as a source of conflicts between long transactions while a compensating
    abort handler keeps the count exact — the paper's "Atomos Open"
    treatment of SPECjbb's global counters. *)

type t

val create : ?initial:int -> unit -> t
val get : t -> int

val incr : ?by:int -> t -> unit
(** Fully isolated increment: conflicts with every concurrent increment. *)

val incr_open : ?by:int -> t -> unit
(** Open-nested increment with abort compensation: no parent dependency. *)

val get_open : t -> int
(** Open-nested read: the parent retains no read dependency on the counter,
    so the result is a non-serializable snapshot. *)
