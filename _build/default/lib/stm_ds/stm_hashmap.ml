module Tvar = Tcc_stm.Tvar
open Stm_ds_util

type ('k, 'v) t = {
  hash : 'k -> int;
  equal : 'k -> 'k -> bool;
  buckets : ('k * 'v) list Tvar.t array Tvar.t;
  size : int Tvar.t;
}

let create ?(initial_capacity = 16) ?(hash = Hashtbl.hash) ?(equal = ( = )) () =
  {
    hash;
    equal;
    buckets = Tvar.make (Array.init (max 1 initial_capacity) (fun _ -> Tvar.make []));
    size = Tvar.make 0;
  }

let bucket_for t k =
  let buckets = Tvar.get t.buckets in
  buckets.(t.hash k land max_int mod Array.length buckets)

let size t = in_atomic (fun () -> Tvar.get t.size)
let is_empty t = size t = 0

let find t k =
  in_atomic (fun () ->
      let rec scan = function
        | [] -> None
        | (k', v) :: rest -> if t.equal k k' then Some v else scan rest
      in
      scan (Tvar.get (bucket_for t k)))

let mem t k = Option.is_some (find t k)

let resize t =
  let old = Tvar.get t.buckets in
  let fresh = Array.init (2 * Array.length old) (fun _ -> Tvar.make []) in
  Array.iter
    (fun b ->
      List.iter
        (fun ((k, _) as binding) ->
          let tv = fresh.(t.hash k land max_int mod Array.length fresh) in
          Tvar.set tv (binding :: Tvar.get tv))
        (Tvar.get b))
    old;
  Tvar.set t.buckets fresh

let add t k v =
  in_atomic (fun () ->
      let b = bucket_for t k in
      let bindings = Tvar.get b in
      let rec replace = function
        | [] -> None
        | (k', _) :: rest when t.equal k k' -> Some ((k, v) :: rest)
        | x :: rest -> Option.map (fun r -> x :: r) (replace rest)
      in
      match replace bindings with
      | Some bindings -> Tvar.set b bindings
      | None ->
          Tvar.set b ((k, v) :: bindings);
          let n = Tvar.get t.size + 1 in
          Tvar.set t.size n;
          if n > 3 * Array.length (Tvar.get t.buckets) / 4 then resize t)

let remove t k =
  in_atomic (fun () ->
      let b = bucket_for t k in
      let rec drop = function
        | [] -> None
        | (k', _) :: rest when t.equal k k' -> Some rest
        | x :: rest -> Option.map (fun r -> x :: r) (drop rest)
      in
      match drop (Tvar.get b) with
      | Some bindings ->
          Tvar.set b bindings;
          Tvar.set t.size (Tvar.get t.size - 1)
      | None -> ())

let iter f t =
  in_atomic (fun () ->
      Array.iter
        (fun b -> List.iter (fun (k, v) -> f k v) (Tvar.get b))
        (Tvar.get t.buckets))

let fold f t init =
  let acc = ref init in
  iter (fun k v -> acc := f k v !acc) t;
  !acc

let to_list t = fold (fun k v acc -> (k, v) :: acc) t []
