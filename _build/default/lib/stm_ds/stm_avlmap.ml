module Tvar = Tcc_stm.Tvar
open Stm_ds_util

(* Node-granular transactional AVL tree: links, values and heights live in
   tvars, so rebalancing rotations perform the same shared writes a
   java.util.TreeMap performs inside a transaction.  Conflicts near the root
   caused by rotations are precisely the "non-semantic conflicts" of the
   paper's TestSortedMap baseline. *)

type ('k, 'v) node = Nil | N of ('k, 'v) body

and ('k, 'v) body = {
  key : 'k;
  value : 'v Tvar.t;
  l : ('k, 'v) node Tvar.t;
  r : ('k, 'v) node Tvar.t;
  h : int Tvar.t;
}

type ('k, 'v) t = {
  compare : 'k -> 'k -> int;
  root : ('k, 'v) node Tvar.t;
  size : int Tvar.t;
}

let create ~compare () = { compare; root = Tvar.make Nil; size = Tvar.make 0 }
let compare_key t = t.compare
let height = function Nil -> 0 | N b -> Tvar.get b.h

let update_height b =
  Tvar.set b.h (1 + max (height (Tvar.get b.l)) (height (Tvar.get b.r)))

let rotate_right b =
  match Tvar.get b.l with
  | Nil -> assert false
  | N lb ->
      Tvar.set b.l (Tvar.get lb.r);
      Tvar.set lb.r (N b);
      update_height b;
      update_height lb;
      N lb

let rotate_left b =
  match Tvar.get b.r with
  | Nil -> assert false
  | N rb ->
      Tvar.set b.r (Tvar.get rb.l);
      Tvar.set rb.l (N b);
      update_height b;
      update_height rb;
      N rb

let balance node =
  match node with
  | Nil -> Nil
  | N b ->
      let hl = height (Tvar.get b.l) and hr = height (Tvar.get b.r) in
      if hl > hr + 1 then begin
        (match Tvar.get b.l with
        | Nil -> assert false
        | N lb ->
            if height (Tvar.get lb.l) < height (Tvar.get lb.r) then
              Tvar.set b.l (rotate_left lb));
        rotate_right b
      end
      else if hr > hl + 1 then begin
        (match Tvar.get b.r with
        | Nil -> assert false
        | N rb ->
            if height (Tvar.get rb.r) < height (Tvar.get rb.l) then
              Tvar.set b.r (rotate_right rb));
        rotate_left b
      end
      else begin
        update_height b;
        node
      end

let size t = in_atomic (fun () -> Tvar.get t.size)
let is_empty t = size t = 0

let find t key =
  in_atomic (fun () ->
      let rec go = function
        | Nil -> None
        | N b ->
            let c = t.compare key b.key in
            if c = 0 then Some (Tvar.get b.value)
            else if c < 0 then go (Tvar.get b.l)
            else go (Tvar.get b.r)
      in
      go (Tvar.get t.root))

let mem t key = Option.is_some (find t key)

let add t key value =
  in_atomic (fun () ->
      let added = ref false in
      let rec go = function
        | Nil ->
            added := true;
            N
              {
                key;
                value = Tvar.make value;
                l = Tvar.make Nil;
                r = Tvar.make Nil;
                h = Tvar.make 1;
              }
        | N b as node ->
            let c = t.compare key b.key in
            if c = 0 then begin
              Tvar.set b.value value;
              node
            end
            else if c < 0 then begin
              Tvar.set b.l (go (Tvar.get b.l));
              balance node
            end
            else begin
              Tvar.set b.r (go (Tvar.get b.r));
              balance node
            end
      in
      Tvar.set t.root (go (Tvar.get t.root));
      if !added then Tvar.set t.size (Tvar.get t.size + 1))

(* Detach the minimum node of a non-empty subtree, returning its body and
   the rebalanced remainder. *)
let rec extract_min node =
  match node with
  | Nil -> assert false
  | N b -> (
      match Tvar.get b.l with
      | Nil -> (b, Tvar.get b.r)
      | l ->
          let m, l' = extract_min l in
          Tvar.set b.l l';
          (m, balance node))

let remove t key =
  in_atomic (fun () ->
      let removed = ref false in
      let rec go = function
        | Nil -> Nil
        | N b as node ->
            let c = t.compare key b.key in
            if c < 0 then begin
              Tvar.set b.l (go (Tvar.get b.l));
              balance node
            end
            else if c > 0 then begin
              Tvar.set b.r (go (Tvar.get b.r));
              balance node
            end
            else begin
              removed := true;
              match (Tvar.get b.l, Tvar.get b.r) with
              | Nil, r -> r
              | l, Nil -> l
              | l, r ->
                  let succ, r' = extract_min r in
                  Tvar.set succ.l l;
                  Tvar.set succ.r r';
                  balance (N succ)
            end
      in
      Tvar.set t.root (go (Tvar.get t.root));
      if !removed then Tvar.set t.size (Tvar.get t.size - 1))

let min_binding t =
  in_atomic (fun () ->
      let rec go acc = function
        | Nil -> acc
        | N b -> go (Some (b.key, Tvar.get b.value)) (Tvar.get b.l)
      in
      go None (Tvar.get t.root))

let max_binding t =
  in_atomic (fun () ->
      let rec go acc = function
        | Nil -> acc
        | N b -> go (Some (b.key, Tvar.get b.value)) (Tvar.get b.r)
      in
      go None (Tvar.get t.root))

let iter f t =
  in_atomic (fun () ->
      let rec go = function
        | Nil -> ()
        | N b ->
            go (Tvar.get b.l);
            f b.key (Tvar.get b.value);
            go (Tvar.get b.r)
      in
      go (Tvar.get t.root))

let iter_range f t ~lo ~hi =
  in_atomic (fun () ->
      let above_lo k = match lo with None -> true | Some b -> t.compare k b >= 0 in
      let below_hi k = match hi with None -> true | Some b -> t.compare k b < 0 in
      let rec go = function
        | Nil -> ()
        | N b ->
            if above_lo b.key then go (Tvar.get b.l);
            if above_lo b.key && below_hi b.key then f b.key (Tvar.get b.value);
            if below_hi b.key then go (Tvar.get b.r)
      in
      go (Tvar.get t.root))

let fold f t init =
  let acc = ref init in
  iter (fun k v -> acc := f k v !acc) t;
  !acc

let to_list t = List.rev (fold (fun k v acc -> (k, v) :: acc) t [])

let check_balanced t =
  in_atomic (fun () ->
      let rec go = function
        | Nil -> 0
        | N b ->
            let hl = go (Tvar.get b.l) and hr = go (Tvar.get b.r) in
            assert (abs (hl - hr) <= 1);
            assert (Tvar.get b.h = 1 + max hl hr);
            1 + max hl hr
      in
      ignore (go (Tvar.get t.root)))
