(** A sorted map (AVL tree) whose links, values and heights are tvars — the
    "Atomos TreeMap" baseline.  Self-balancing rotations write shared nodes
    near the root, so transactions inserting disjoint keys still conflict at
    the memory level; the TransactionalSortedMap wrapper eliminates these
    conflicts by construction. *)

type ('k, 'v) t

val create : compare:('k -> 'k -> int) -> unit -> ('k, 'v) t
val compare_key : ('k, 'v) t -> 'k -> 'k -> int
val size : ('k, 'v) t -> int
val is_empty : ('k, 'v) t -> bool
val find : ('k, 'v) t -> 'k -> 'v option
val mem : ('k, 'v) t -> 'k -> bool
val add : ('k, 'v) t -> 'k -> 'v -> unit
val remove : ('k, 'v) t -> 'k -> unit
val min_binding : ('k, 'v) t -> ('k * 'v) option
val max_binding : ('k, 'v) t -> ('k * 'v) option
val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit

val iter_range :
  ('k -> 'v -> unit) -> ('k, 'v) t -> lo:'k option -> hi:'k option -> unit

val fold : ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) t -> 'acc -> 'acc
val to_list : ('k, 'v) t -> ('k * 'v) list
val check_balanced : ('k, 'v) t -> unit
