module Tvar = Tcc_stm.Tvar
module Stm = Tcc_stm.Stm
open Stm_ds_util

type t = int Tvar.t

let create ?(initial = 0) () = Tvar.make initial
let get t = Tvar.get t

let incr ?(by = 1) t = in_atomic (fun () -> Tvar.set t (Tvar.get t + by))

(* Open-nested increment: commits immediately, creating no dependency in the
   enclosing transaction; a compensating abort handler preserves the exact
   count if the parent aborts (paper §6.3, "Atomos Open" counters). *)
let incr_open ?(by = 1) t =
  Stm.open_nested (fun () ->
      Tvar.set t (Tvar.get t + by);
      Stm.on_abort (fun () ->
          Stm.atomic (fun () -> Tvar.set t (Tvar.get t - by))))

(* Open-nested read: the parent keeps no read dependency, trading
   serializability for concurrency exactly as the paper's reduced-isolation
   counters do. *)
let get_open t = Stm.open_nested (fun () -> Tvar.get t)
