lib/stm_ds/stm_counter.mli:
