lib/stm_ds/stm_avlmap.mli:
