lib/stm_ds/stm_uidgen.mli:
