lib/stm_ds/stm_queue.ml: List Stm_ds_util Tcc_stm
