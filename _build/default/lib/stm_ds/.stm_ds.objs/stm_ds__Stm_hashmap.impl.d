lib/stm_ds/stm_hashmap.ml: Array Hashtbl List Option Stm_ds_util Tcc_stm
