lib/stm_ds/stm_ds_util.ml: Tcc_stm
