lib/stm_ds/stm_counter.ml: Stm_ds_util Tcc_stm
