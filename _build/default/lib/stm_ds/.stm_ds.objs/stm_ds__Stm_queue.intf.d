lib/stm_ds/stm_queue.mli:
