lib/stm_ds/stm_avlmap.ml: List Option Stm_ds_util Tcc_stm
