lib/stm_ds/stm_uidgen.ml: Stm_ds_util Tcc_stm
