lib/stm_ds/stm_hashmap.mli:
