(** Unique-identifier generator.  [next] allocates open-nested: aborted
    parents leave gaps in the sequence but identifiers stay unique and the
    generator never causes conflicts between long transactions — the
    monotonically-increasing-identifier tradeoff between isolation and
    serializability from the database literature (paper §1, §6.3). *)

type t

val create : ?first:int -> unit -> t

val next_isolated : t -> int
(** Fully serializable allocation: gap-free, but serialises all users. *)

val next : t -> int
(** Open-nested allocation: unique, conflict-free, possibly gapped. *)

val peek : t -> int
