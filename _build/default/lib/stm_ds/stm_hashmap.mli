(** A hash map built directly from tvars — the "Atomos HashMap" baseline.
    Structurally faithful to [java.util.HashMap] used inside transactions:
    every insert or remove writes the shared [size] tvar, so two long
    transactions inserting {e different} keys still conflict at the memory
    level.  The TransactionalMap wrapper exists to eliminate exactly these
    conflicts. *)

type ('k, 'v) t

val create :
  ?initial_capacity:int ->
  ?hash:('k -> int) ->
  ?equal:('k -> 'k -> bool) ->
  unit ->
  ('k, 'v) t

val size : ('k, 'v) t -> int
val is_empty : ('k, 'v) t -> bool
val find : ('k, 'v) t -> 'k -> 'v option
val mem : ('k, 'v) t -> 'k -> bool
val add : ('k, 'v) t -> 'k -> 'v -> unit
val remove : ('k, 'v) t -> 'k -> unit
val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit
val fold : ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) t -> 'acc -> 'acc
val to_list : ('k, 'v) t -> ('k * 'v) list
