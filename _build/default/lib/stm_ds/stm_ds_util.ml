module Stm = Tcc_stm.Stm

(* Data-structure operations assume transactional context; when called
   outside one they become their own small transaction. *)
let in_atomic f = if Stm.in_txn () then f () else Stm.atomic f
