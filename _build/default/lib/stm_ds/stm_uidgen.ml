module Tvar = Tcc_stm.Tvar
module Stm = Tcc_stm.Stm
open Stm_ds_util

type t = int Tvar.t

let create ?(first = 1) () = Tvar.make first

let next_isolated t =
  in_atomic (fun () ->
      let id = Tvar.get t in
      Tvar.set t (id + 1);
      id)

(* Open-nested UID allocation: the identifier is consumed immediately and is
   NOT returned on parent abort — monotonically increasing identifiers may
   have gaps but are always unique, the database-community tradeoff the
   paper cites (Gray & Reuter).  No compensation is registered. *)
let next t =
  Stm.open_nested (fun () ->
      let id = Tvar.get t in
      Tvar.set t (id + 1);
      id)

let peek t = Tvar.get t
