(** A FIFO queue built from tvars: the fully isolated (conflict-heavy)
    baseline that the reduced-isolation TransactionalQueue improves on. *)

type 'v t

val create : unit -> 'v t
val length : 'v t -> int
val is_empty : 'v t -> bool
val enqueue : 'v t -> 'v -> unit
val peek : 'v t -> 'v option
val dequeue : 'v t -> 'v option
val to_list : 'v t -> 'v list
