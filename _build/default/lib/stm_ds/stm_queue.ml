module Tvar = Tcc_stm.Tvar
open Stm_ds_util

(* Two-list functional FIFO held in tvars: every enqueue writes [back], every
   dequeue writes [front] (and sometimes [back]), and both touch [len] — the
   conflict-heavy baseline a naive transactional queue exhibits. *)

type 'v t = {
  front : 'v list Tvar.t;
  back : 'v list Tvar.t;
  len : int Tvar.t;
}

let create () = { front = Tvar.make []; back = Tvar.make []; len = Tvar.make 0 }
let length t = in_atomic (fun () -> Tvar.get t.len)
let is_empty t = length t = 0

let enqueue t v =
  in_atomic (fun () ->
      Tvar.set t.back (v :: Tvar.get t.back);
      Tvar.set t.len (Tvar.get t.len + 1))

let normalize t =
  match Tvar.get t.front with
  | [] ->
      let back = Tvar.get t.back in
      if back <> [] then begin
        Tvar.set t.front (List.rev back);
        Tvar.set t.back []
      end
  | _ -> ()

let peek t =
  in_atomic (fun () ->
      normalize t;
      match Tvar.get t.front with [] -> None | v :: _ -> Some v)

let dequeue t =
  in_atomic (fun () ->
      normalize t;
      match Tvar.get t.front with
      | [] -> None
      | v :: rest ->
          Tvar.set t.front rest;
          Tvar.set t.len (Tvar.get t.len - 1);
          Some v)

let to_list t =
  in_atomic (fun () -> Tvar.get t.front @ List.rev (Tvar.get t.back))
