(* txcoll_lab: command-line laboratory for the transactional collection
   classes reproduction.  Unlike bench/main.exe (which regenerates the
   paper's experiments with fixed parameters), this tool exposes the
   workload and machine parameters for exploration:

     txcoll_lab fig 1 --cpus 1,2,4,8,16,32 --ops 2048 --think 4000
     txcoll_lab jbb --cpus 16 --tasks 1024 --variant txcoll
     txcoll_lab jbb-host --domains 2 --tasks 5000
     txcoll_lab queue --cpus 1,4,16 --items 512
     txcoll_lab tables
     txcoll_lab validate *)

open Cmdliner

let ppf = Fmt.stdout

let cpus_arg =
  let doc = "Comma-separated simulated CPU counts." in
  Arg.(value & opt (list int) [ 1; 2; 4; 8; 16; 32 ] & info [ "cpus" ] ~doc)

let ops_arg =
  let doc = "Total operations across all CPUs." in
  Arg.(value & opt int 1024 & info [ "ops" ] ~doc)

let think_arg =
  let doc = "Computation cycles surrounding each operation." in
  Arg.(value & opt int 6000 & info [ "think" ] ~doc)

let keyspace_arg =
  let doc = "Key space size of the shared map." in
  Arg.(value & opt int 512 & info [ "keys" ] ~doc)

(* ---------------- fig ---------------- *)

let run_fig n cpus ops think keys csv =
  let p =
    {
      Harness.Workloads.default_params with
      total_ops = ops;
      think;
      key_space = keys;
    }
  in
  let fig =
    match n with
    | 1 -> Harness.Figures.figure1 ~p ~cpus ()
    | 2 -> Harness.Figures.figure2 ~p ~cpus ()
    | 3 -> Harness.Figures.figure3 ~p ~cpus ()
    | 4 -> Jbb.Sim_jbb.figure4 ~cpus ()
    | _ -> Fmt.failwith "fig: expected 1..4"
  in
  if csv then Harness.Figures.render_csv ppf fig
  else Harness.Figures.render ppf fig

let fig_cmd =
  let n =
    Arg.(required & pos 0 (some int) None & info [] ~docv:"N" ~doc:"Figure 1-4.")
  in
  let csv =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of the table.")
  in
  Cmd.v
    (Cmd.info "fig" ~doc:"Regenerate one of the paper's figures")
    Term.(const run_fig $ n $ cpus_arg $ ops_arg $ think_arg $ keyspace_arg $ csv)

(* ---------------- jbb (simulated) ---------------- *)

let jbb_variant =
  let alts =
    [
      ("java", `Java);
      ("baseline", `Atomos_baseline);
      ("open", `Atomos_open);
      ("txcoll", `Atomos_txcoll);
    ]
  in
  let doc = "Parallelisation variant: java, baseline, open or txcoll." in
  Arg.(value & opt (enum alts) `Atomos_txcoll & info [ "variant" ] ~doc)

let run_jbb variant n_cpus tasks warehouses =
  let p = { Jbb.Model.default_params with Jbb.Model.total_tasks = tasks } in
  let stats = Jbb.Sim_jbb.run ~p ~warehouses ~variant ~n_cpus () in
  Fmt.pf ppf "variant: %s  cpus: %d  tasks: %d@."
    (Jbb.Sim_jbb.variant_name variant)
    n_cpus tasks;
  Fmt.pf ppf "cycles: %d  violations: %d  commits: %d@."
    stats.Sim.Machine.cycles stats.Sim.Machine.total_violations
    stats.Sim.Machine.total_commits;
  Fmt.pf ppf "bus wait: %d  token wait: %d@." stats.Sim.Machine.total_bus_wait
    stats.Sim.Machine.total_token_wait

let jbb_cmd =
  let n_cpus =
    Arg.(value & opt int 16 & info [ "cpus" ] ~doc:"Simulated CPU count.")
  in
  let tasks =
    Arg.(value & opt int 768 & info [ "tasks" ] ~doc:"Total TPC-C-style tasks.")
  in
  let warehouses =
    let alts = [ ("single", `Single); ("per-cpu", `Per_cpu) ] in
    Arg.(
      value
      & opt (enum alts) `Single
      & info [ "warehouses" ]
          ~doc:"single (the paper's high-contention config) or per-cpu \
                (standard SPECjbb2000).")
  in
  Cmd.v
    (Cmd.info "jbb" ~doc:"Run the SPECjbb2000 model (simulated)")
    Term.(const run_jbb $ jbb_variant $ n_cpus $ tasks $ warehouses)

(* ---------------- jbb-host ---------------- *)

let run_jbb_host n_domains tasks =
  let w = Jbb.Host_jbb.create () in
  let new_orders, payments, others, elapsed =
    Jbb.Host_jbb.run w ~n_domains ~tasks_per_domain:tasks
  in
  Fmt.pf ppf "domains: %d  tasks/domain: %d@." n_domains tasks;
  Fmt.pf ppf "new orders: %d  payments: %d  other: %d@." new_orders payments
    others;
  Fmt.pf ppf "throughput: %.0f ops/s@."
    (float_of_int (n_domains * tasks) /. elapsed);
  Fmt.pf ppf "audit: %b@."
    (Jbb.Host_jbb.audit w ~new_orders_done:new_orders ~payments_done:payments)

let jbb_host_cmd =
  let n_domains =
    Arg.(value & opt int 2 & info [ "domains" ] ~doc:"OCaml domains to spawn.")
  in
  let tasks =
    Arg.(value & opt int 2000 & info [ "tasks" ] ~doc:"Tasks per domain.")
  in
  Cmd.v
    (Cmd.info "jbb-host"
       ~doc:"Run the SPECjbb2000 model on real domains over the host STM")
    Term.(const run_jbb_host $ n_domains $ tasks)

(* ---------------- queue ---------------- *)

let run_queue cpus items =
  Harness.Queue_bench.(render ppf (sweep ~cpus ~items ()))

let queue_cmd =
  let items =
    Arg.(value & opt int 256 & info [ "items" ] ~doc:"Initial work items.")
  in
  let cpus =
    Arg.(value & opt (list int) [ 1; 4; 16 ] & info [ "cpus" ] ~doc:"CPU counts.")
  in
  Cmd.v
    (Cmd.info "queue" ~doc:"Delaunay-style work-queue benchmark (simulated)")
    Term.(const run_queue $ cpus $ items)

(* ---------------- tables / validate ---------------- *)

let run_tables () =
  Harness.Commute_spec.render_map_table ppf ();
  Harness.Locktables.render_table2 ppf ();
  Harness.Locktables.render_table5 ppf ();
  Harness.Locktables.render_table8 ppf ()

let tables_cmd =
  Cmd.v
    (Cmd.info "tables"
       ~doc:"Verify and print the semantic analysis and lock tables (1/2/4/5/7/8)")
    Term.(const run_tables $ const ())

let run_validate () = Harness.Host_validation.(render ppf (run ()))

let validate_cmd =
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Host-STM validation: retry counts of naive vs wrapped maps")
    Term.(const run_validate $ const ())

(* ---------------- main ---------------- *)

let () =
  let info =
    Cmd.info "txcoll_lab" ~version:"1.0"
      ~doc:
        "Laboratory for the OCaml reproduction of Transactional Collection \
         Classes (PPoPP 2007)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ fig_cmd; jbb_cmd; jbb_host_cmd; queue_cmd; tables_cmd; validate_cmd ]))
