(* Quickstart: transactional collection classes on the host STM.

   Two domains transfer "inventory" between a TransactionalMap and a
   TransactionalSortedMap inside long transactions; semantic concurrency
   control lets logically independent transactions commit in parallel while
   composed multi-collection updates stay atomic.

   Run with: dune exec examples/quickstart.exe *)

module Stm = Tcc_stm.Stm
module Inventory = Txcoll.Host.Map (Txcoll.Host.String_hashed)
module Ledger = Txcoll.Host.Sorted_map (Txcoll.Host.Int_ordered)

let () =
  let inventory = Inventory.create () in
  let ledger = Ledger.create () in

  (* Single operations outside a transaction auto-commit. *)
  ignore (Inventory.put inventory "widgets" 100);
  ignore (Inventory.put inventory "gadgets" 40);

  (* Compose several operations — across two collections — atomically. *)
  Stm.atomic (fun () ->
      let widgets = Option.value ~default:0 (Inventory.find inventory "widgets") in
      ignore (Inventory.put inventory "widgets" (widgets - 10));
      ignore (Ledger.put ledger 1 10) (* shipment #1: 10 widgets *));

  (* Transactions that abort leave no trace in any collection. *)
  (try
     Stm.atomic (fun () ->
         ignore (Inventory.put inventory "widgets" 0);
         ignore (Ledger.put ledger 999 0);
         Stm.self_abort ())
   with Stm.Aborted -> ());

  (* Parallel clients shipping distinct products do not conflict, even
     though every insert changes internal state a plain map would share. *)
  let client name product () =
    for i = 1 to 50 do
      Stm.atomic (fun () ->
          let stock = Option.value ~default:0 (Inventory.find inventory product) in
          if stock > 0 then begin
            ignore (Inventory.put inventory product (stock - 1));
            ignore (Ledger.put ledger ((Hashtbl.hash name * 1000) + i) 1)
          end)
    done
  in
  let d1 = Domain.spawn (client "east" "widgets") in
  let d2 = Domain.spawn (client "west" "gadgets") in
  Domain.join d1;
  Domain.join d2;

  Printf.printf "widgets left: %d\n"
    (Option.value ~default:0 (Inventory.find inventory "widgets"));
  Printf.printf "gadgets left: %d\n"
    (Option.value ~default:0 (Inventory.find inventory "gadgets"));
  Printf.printf "ledger entries: %d\n" (Ledger.size ledger);
  Printf.printf "ledger shipment range 1000..2000: %d\n"
    (Ledger.fold_range (fun _ _ n -> n + 1) ledger 0 ~lo:(Some 1000) ~hi:(Some 2000));
  assert (Option.value ~default:0 (Inventory.find inventory "widgets") = 40);
  assert (Option.value ~default:0 (Inventory.find inventory "gadgets") = 0);
  print_endline "quickstart: OK"
