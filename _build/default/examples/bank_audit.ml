(* Long-running auditor transactions over a TransactionalSortedMap.

   Tellers transfer money between accounts (short transactions touching two
   keys); an auditor repeatedly enumerates the whole map inside one long
   transaction and checks that the total balance is invariant.  Semantic
   concurrency control guarantees the auditor sees a serializable snapshot:
   any transfer committing into the audited range aborts and retries the
   auditor, and the observed total is always exact.

   Run with: dune exec examples/bank_audit.exe *)

module Stm = Tcc_stm.Stm
module Bank = Txcoll.Host.Sorted_map (Txcoll.Host.Int_ordered)

let n_accounts = 64
let initial = 1000

let () =
  let bank = Bank.create () in
  for acc = 0 to n_accounts - 1 do
    ignore (Bank.put bank acc initial)
  done;
  let stop = Atomic.make false in
  let teller seed () =
    let rng = Random.State.make [| seed |] in
    for _ = 1 to 2000 do
      let a = Random.State.int rng n_accounts in
      let b = Random.State.int rng n_accounts in
      let amt = 1 + Random.State.int rng 20 in
      if a <> b then
        Stm.atomic (fun () ->
            let va = Option.value ~default:0 (Bank.find bank a) in
            let vb = Option.value ~default:0 (Bank.find bank b) in
            ignore (Bank.put bank a (va - amt));
            ignore (Bank.put bank b (vb + amt)))
    done;
    Atomic.set stop true
  in
  let audits = ref 0 in
  let bad = ref 0 in
  let auditor () =
    while not (Atomic.get stop) do
      let total =
        Stm.atomic (fun () -> Bank.fold (fun _ v acc -> acc + v) bank 0)
      in
      incr audits;
      if total <> n_accounts * initial then incr bad
    done
  in
  let ds = [ Domain.spawn (teller 11); Domain.spawn auditor ] in
  List.iter Domain.join ds;
  Printf.printf "audits completed: %d, inconsistent snapshots: %d\n" !audits !bad;
  (* A range view of the low accounts also audits consistently. *)
  let low =
    Stm.atomic (fun () ->
        Bank.View.fold (fun _ v acc -> acc + v) (Bank.head_map bank ~hi:(n_accounts / 2)) 0)
  in
  Printf.printf "low-half balance: %d\n" low;
  assert (!bad = 0);
  assert (!audits > 0);
  print_endline "bank_audit: OK"
