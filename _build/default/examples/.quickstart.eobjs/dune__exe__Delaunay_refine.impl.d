examples/delaunay_refine.ml: Atomic Domain List Printf Random Tcc_stm Txcoll
