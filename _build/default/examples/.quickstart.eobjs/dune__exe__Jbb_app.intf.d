examples/jbb_app.mli:
