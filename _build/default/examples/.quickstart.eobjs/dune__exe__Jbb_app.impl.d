examples/jbb_app.ml: Array Jbb Printf Sys
