examples/delaunay_refine.mli:
