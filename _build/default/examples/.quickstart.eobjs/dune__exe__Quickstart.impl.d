examples/quickstart.ml: Domain Hashtbl Option Printf Tcc_stm Txcoll
