examples/bank_audit.ml: Atomic Domain List Option Printf Random Tcc_stm Txcoll
