examples/quickstart.mli:
