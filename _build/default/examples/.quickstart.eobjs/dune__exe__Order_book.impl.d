examples/order_book.ml: Atomic Domain List Printf Random String Tcc_stm Txcoll
