examples/order_book.mli:
