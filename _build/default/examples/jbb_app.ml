(* The high-contention SPECjbb2000 variant on real OCaml domains: every
   TPC-C-style operation is one long transaction over shared transactional
   collections, with open-nested counters and order-ID generation — the
   paper's "Atomos Transactional" configuration as a host application.

   Run with: dune exec examples/jbb_app.exe [n_domains] [tasks_per_domain] *)

let () =
  let n_domains =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 2
  in
  let tasks = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 2000 in
  let w = Jbb.Host_jbb.create () in
  let new_orders, payments, others, elapsed =
    Jbb.Host_jbb.run w ~n_domains ~tasks_per_domain:tasks
  in
  Printf.printf "domains: %d, tasks/domain: %d\n" n_domains tasks;
  Printf.printf "new orders: %d  payments: %d  other ops: %d\n" new_orders
    payments others;
  Printf.printf "throughput: %.0f ops/s\n"
    (float_of_int (n_domains * tasks) /. elapsed);
  let consistent =
    Jbb.Host_jbb.audit w ~new_orders_done:new_orders ~payments_done:payments
  in
  Printf.printf "audit (tables agree with counters): %b\n" consistent;
  assert consistent;
  print_endline "jbb_app: OK"
