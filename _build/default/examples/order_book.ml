(* A price-ordered order book on TransactionalSortedMap: makers insert and
   cancel orders while a matcher repeatedly pairs the best bid with the best
   ask — a compound operation over both endpoints that must be atomic.

   Shows: endpoint operations (first/last), range views, the ordered cursor,
   and blind puts for a last-trade ticker that all transactions stamp
   without ordering (the paper's "LastModified" pattern).

   Run with: dune exec examples/order_book.exe *)

module Stm = Tcc_stm.Stm
module Book = Txcoll.Host.Sorted_map (Txcoll.Host.Int_ordered)
module Ticker = Txcoll.Host.Map (Txcoll.Host.String_hashed)

(* Bids are keyed by negative price so the best bid is [first_key] of the
   bid book and the best ask is [first_key] of the ask book. *)

let () =
  let bids = Book.create () in
  let asks = Book.create () in
  let ticker = Ticker.create () in
  let matched = Atomic.make 0 in
  let stop = Atomic.make false in

  let maker seed () =
    let rng = Random.State.make [| seed |] in
    for i = 1 to 2000 do
      let price = 100 + Random.State.int rng 50 in
      let qty = 1 + Random.State.int rng 10 in
      Stm.atomic (fun () ->
          if Random.State.bool rng then
            ignore (Book.put bids (-price) ((i * 100) + qty))
          else ignore (Book.put asks price ((i * 100) + qty));
          (* Every maker stamps the ticker blindly: no ordering needed. *)
          Ticker.put_blind ticker "last-activity" i)
    done;
    Atomic.set stop true
  in

  let matcher () =
    while not (Atomic.get stop) do
      let traded =
        Stm.atomic (fun () ->
            match (Book.first_key bids, Book.first_key asks) with
            | Some nbid, Some ask when -nbid >= ask ->
                (* Crossed: execute atomically against both books. *)
                ignore (Book.remove bids nbid);
                ignore (Book.remove asks ask);
                Ticker.put_blind ticker "last-trade" ask;
                true
            | _ -> false)
      in
      if traded then Atomic.incr matched
    done
  in

  let ds = [ Domain.spawn (maker 7); Domain.spawn matcher ] in
  List.iter Domain.join ds;

  (* Reporting: a consistent snapshot of the top of each book via the
     ordered cursor, plus range statistics through views. *)
  Stm.atomic (fun () ->
      let top_asks =
        let c = Book.cursor asks in
        let rec take n acc =
          if n = 0 then List.rev acc
          else
            match Book.cursor_next c with
            | Some (p, _) -> take (n - 1) (p :: acc)
            | None -> List.rev acc
        in
        take 3 []
      in
      let cheap_asks =
        Book.View.size (Book.head_map asks ~hi:120)
      in
      Printf.printf "matched trades: %d\n" (Atomic.get matched);
      Printf.printf "best asks: %s\n"
        (String.concat ", " (List.map string_of_int top_asks));
      Printf.printf "asks under 120: %d\n" cheap_asks;
      Printf.printf "resting bids: %d, resting asks: %d\n" (Book.size bids)
        (Book.size asks));

  (* Invariant: the books never cross after the matcher drains. *)
  let crossed =
    Stm.atomic (fun () ->
        match (Book.first_key bids, Book.first_key asks) with
        | Some nbid, Some ask -> -nbid >= ask
        | _ -> false)
  in
  (* The matcher may have stopped while a final crossing remained; drain it. *)
  let rec drain () =
    let traded =
      Stm.atomic (fun () ->
          match (Book.first_key bids, Book.first_key asks) with
          | Some nbid, Some ask when -nbid >= ask ->
              ignore (Book.remove bids nbid);
              ignore (Book.remove asks ask);
              true
          | _ -> false)
    in
    if traded then begin
      Atomic.incr matched;
      drain ()
    end
  in
  if crossed then drain ();
  let final_crossed =
    Stm.atomic (fun () ->
        match (Book.first_key bids, Book.first_key asks) with
        | Some nbid, Some ask -> -nbid >= ask
        | _ -> false)
  in
  assert (not final_crossed);
  Printf.printf "final matched: %d, books uncrossed: %b\n" (Atomic.get matched)
    (not final_crossed);
  print_endline "order_book: OK"
