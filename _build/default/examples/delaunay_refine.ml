(* Work-queue refinement in the style of Delaunay mesh generation (the
   paper's §3.3 motivation for TransactionalQueue).

   Workers take an interval from the queue inside a transaction; "bad"
   intervals are refined by splitting and the halves are put back.  Puts are
   deferred to commit, so work created by a transaction that later aborts is
   never exposed; takes are immediate but compensated, so aborted work
   returns to the queue.  Random aborts are injected to demonstrate both.

   Run with: dune exec examples/delaunay_refine.exe *)

module Stm = Tcc_stm.Stm
module Q = Txcoll.Host.Queue

let needs_refinement (lo, hi) = hi - lo > 1

let () =
  let queue = Q.create () in
  Q.put queue (0, 256);
  let refined = Atomic.make 0 in
  let injected_aborts = Atomic.make 0 in
  let worker seed () =
    let rng = Random.State.make [| seed |] in
    let idle = ref 0 in
    while !idle < 1000 do
      let progressed =
        try
          Stm.atomic (fun () ->
              match Q.take queue with
              | None -> false
              | Some ((lo, hi) as piece) ->
                  if needs_refinement piece then begin
                    let mid = (lo + hi) / 2 in
                    Q.put queue (lo, mid);
                    Q.put queue (mid, hi);
                    (* Inject aborts: the two halves must not leak, and the
                       taken piece must return to the queue. *)
                    if Random.State.int rng 10 = 0 then begin
                      Atomic.incr injected_aborts;
                      Stm.self_abort ()
                    end
                  end
                  else Atomic.incr refined;
                  true)
        with Stm.Aborted -> true
      in
      if progressed then idle := 0 else incr idle
    done
  in
  let ds = [ Domain.spawn (worker 1); Domain.spawn (worker 2) ] in
  List.iter Domain.join ds;
  Printf.printf "unit intervals refined: %d (expected 256)\n" (Atomic.get refined);
  Printf.printf "injected aborts: %d\n" (Atomic.get injected_aborts);
  Printf.printf "queue drained: %b\n" (Q.poll queue = None);
  assert (Atomic.get refined = 256);
  print_endline "delaunay_refine: OK"
