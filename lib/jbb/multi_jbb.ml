(* Multi-warehouse SPECjbb2000: the paper's Figure 4 setup generalised
   from one warehouse to W.

   One global order table and one global new-order table hold every
   warehouse's records, keyed [w * span + uid] and interval-partitioned
   with a splitter at each warehouse boundary — so each warehouse's keys
   live in their own semantic-lock stripe and warehouse-local
   transactions only serialise against their own interval, while
   cross-warehouse transactions pick up exactly the two intervals they
   touch.  Per-warehouse scalars (order-ID generator, ytd, order count,
   stock, customer balances) are separate structures.

   Cross-warehouse traffic (the contention gradient knob): with
   probability [remote_fraction] a new-order sources its items from a
   remote warehouse's stock, and a payment becomes a pure transfer from
   the home customer to a remote customer.  Every balance-moving
   operation conserves value:

   - local payment:   customer -amount, home ytd +amount
   - remote payment:  home customer -amount, remote customer +amount
   - delivery:        home ytd -1, delivered order's customer +1

   so [Sum over warehouses (ytd + Sum customer balances) = 0] is an
   invariant under any interleaving — the conservation property the
   QCheck test drives over W in {1,4,8} and a range of remote
   fractions. *)

module Stm = Tcc_stm.Stm
module Tvar = Tcc_stm.Tvar
module Counter = Stm_ds.Stm_counter
module Uidgen = Stm_ds.Stm_uidgen
module OrderMap = Txcoll.Host.Sorted_map (Txcoll.Host.Int_ordered)
module HistMap = Txcoll.Host.Map (Txcoll.Host.Int_hashed)
open Model

(* Key span reserved per warehouse; uids stay far below it. *)
let span = 1 lsl 20

let key ~warehouse uid = (warehouse * span) + uid

type warehouse = {
  next_order : Uidgen.t;
  next_history : Uidgen.t;
  ytd : Counter.t;
  order_count : Counter.t;
  stock : int Tvar.t array;
  customers : int Tvar.t array;
}

type t = {
  p : params;
  remote_fraction : float;
  warehouses : warehouse array;
  order : int OrderMap.t;
  neworder : int OrderMap.t;
  history : int HistMap.t;
}

let n_warehouses t = Array.length t.warehouses

let create ?(p = default_params) ?(remote_fraction = 0.1) ~warehouses ()
    =
  if warehouses < 1 then invalid_arg "Multi_jbb.create: warehouses >= 1";
  if remote_fraction < 0. || remote_fraction > 1. then
    invalid_arg "Multi_jbb.create: remote_fraction in [0,1]";
  let splitters =
    List.init (warehouses - 1) (fun i -> (i + 1) * span)
  in
  let order = OrderMap.create ~splitters () in
  let neworder = OrderMap.create ~splitters () in
  let history = HistMap.create () in
  let mk w =
    for uid = 1 to 64 do
      ignore
        (OrderMap.put order
           (key ~warehouse:w uid)
           (encode_order ~customer:(uid mod p.n_customers) ~lines:6));
      if uid mod 2 = 0 then
        ignore
          (OrderMap.put neworder (key ~warehouse:w uid)
             (uid mod p.n_customers))
    done;
    {
      next_order = Uidgen.create ~first:65 ();
      next_history = Uidgen.create ~first:1 ();
      ytd = Counter.create ();
      order_count = Counter.create ();
      stock = Array.init p.n_items (fun _ -> Tvar.make 1000);
      customers = Array.init p.n_customers (fun _ -> Tvar.make 0);
    }
  in
  {
    p;
    remote_fraction;
    warehouses = Array.init warehouses mk;
    order;
    neworder;
    history;
  }

(* A random warehouse, and (maybe) a distinct remote one.  All random
   draws happen before the transaction body so retries replay the same
   operation. *)
let pick_home t rng = Random.State.int rng (n_warehouses t)

let pick_remote t rng ~home =
  let n = n_warehouses t in
  if n > 1 && Random.State.float rng 1.0 < t.remote_fraction then
    Some ((home + 1 + Random.State.int rng (n - 1)) mod n)
  else None

(* ---------------- the five operations ----------------

   Each takes [run], the top-level transaction runner — [Stm.atomic] by
   default, [Stm.Admission.run] when the bench turns the admission gate
   on (so [Stm.Overloaded] propagates to the open-loop generator). *)

let new_order ?(run = fun f -> Stm.atomic f) t rng =
  let home = pick_home t rng in
  let remote = pick_remote t rng ~home in
  let lines = 5 + Random.State.int rng 6 in
  let customer = Random.State.int rng t.p.n_customers in
  let items =
    Array.init lines (fun _ -> Random.State.int rng t.p.n_items)
  in
  let w = t.warehouses.(home) in
  let supply =
    match remote with Some r -> t.warehouses.(r) | None -> w
  in
  run (fun () ->
      Host_jbb.busy t.p.base_work;
      let uid = Uidgen.next w.next_order in
      Array.iter
        (fun i -> Tvar.set supply.stock.(i) (Tvar.get supply.stock.(i) - 1))
        items;
      ignore
        (OrderMap.put t.order
           (key ~warehouse:home uid)
           (encode_order ~customer ~lines));
      ignore (OrderMap.put t.neworder (key ~warehouse:home uid) customer);
      Counter.incr_open w.order_count)

let payment ?(run = fun f -> Stm.atomic f) t rng =
  let home = pick_home t rng in
  let remote = pick_remote t rng ~home in
  let customer = Random.State.int rng t.p.n_customers in
  let remote_customer = Random.State.int rng t.p.n_customers in
  let amount = 1 + Random.State.int rng 50 in
  let w = t.warehouses.(home) in
  run (fun () ->
      Host_jbb.busy t.p.base_work;
      Tvar.set w.customers.(customer)
        (Tvar.get w.customers.(customer) - amount);
      (match remote with
      | None -> Counter.incr_open ~by:amount w.ytd
      | Some r ->
          let rw = t.warehouses.(r) in
          Tvar.set rw.customers.(remote_customer)
            (Tvar.get rw.customers.(remote_customer) + amount));
      let hid = Uidgen.next w.next_history in
      ignore (HistMap.put t.history (key ~warehouse:home hid) amount))

let order_status ?(run = fun f -> Stm.atomic f) t rng =
  let home = pick_home t rng in
  let customer = Random.State.int rng t.p.n_customers in
  let w = t.warehouses.(home) in
  let view =
    OrderMap.sub_map t.order
      ~lo:(key ~warehouse:home 0)
      ~hi:(key ~warehouse:(home + 1) 0)
  in
  run (fun () ->
      Host_jbb.busy (t.p.base_work / 2);
      ignore (Tvar.get w.customers.(customer));
      match OrderMap.View.last_key view with
      | None -> ()
      | Some k -> ignore (OrderMap.find t.order k))

let delivery ?(run = fun f -> Stm.atomic f) t rng =
  let home = pick_home t rng in
  let w = t.warehouses.(home) in
  let view =
    OrderMap.sub_map t.neworder
      ~lo:(key ~warehouse:home 0)
      ~hi:(key ~warehouse:(home + 1) 0)
  in
  run (fun () ->
      Host_jbb.busy t.p.base_work;
      match OrderMap.View.first_key view with
      | None -> ()
      | Some k -> (
          ignore (OrderMap.remove t.neworder k);
          match OrderMap.find t.order k with
          | None -> ()
          | Some o ->
              (* Delivery credit is funded from the home district's ytd,
                 keeping total value conserved. *)
              Counter.incr_open ~by:(-1) w.ytd;
              let c = w.customers.(order_customer o mod t.p.n_customers) in
              Tvar.set c (Tvar.get c + 1)))

let stock_level ?(run = fun f -> Stm.atomic f) t rng =
  let home = pick_home t rng in
  let w = t.warehouses.(home) in
  run (fun () ->
      Host_jbb.busy (t.p.base_work / 2);
      let hi = Uidgen.peek w.next_order in
      let lo = max 1 (hi - 20) in
      ignore
        (OrderMap.fold_range
           (fun _ _ n -> n + 1)
           t.order 0
           ~lo:(Some (key ~warehouse:home lo))
           ~hi:(Some (key ~warehouse:home hi))))

let run_op ?run t rng = function
  | New_order -> new_order ?run t rng
  | Payment -> payment ?run t rng
  | Order_status -> order_status ?run t rng
  | Delivery -> delivery ?run t rng
  | Stock_level -> stock_level ?run t rng

(* One weighted-mix task: draw an op kind and run it. *)
let task ?run t rng = run_op ?run t rng (pick_op rng)

(* ---------------- invariants ---------------- *)

(* Total value across every customer balance and every district ytd;
   conserved at 0 by construction (see header).  Read outside any
   transaction, at quiescence. *)
let total_value t =
  Array.fold_left
    (fun acc w ->
      let acc = acc + Counter.get w.ytd in
      Array.fold_left (fun acc c -> acc + Tvar.get c) acc w.customers)
    0 t.warehouses

let conserved t = total_value t = 0

let audit t ~new_orders ~payments =
  let wn = n_warehouses t in
  let counted =
    Array.fold_left
      (fun acc w -> acc + Counter.get w.order_count)
      0 t.warehouses
  in
  OrderMap.size t.order = (wn * 64) + new_orders
  && HistMap.size t.history = payments
  && counted = new_orders
  && conserved t

(* ---------------- closed-loop driver (tests) ---------------- *)

type result = {
  new_orders : int;
  payments : int;
  others : int;
  elapsed : float;
  consistent : bool;
}

let run_closed ?(seed = 0x3bb) t ~n_domains ~tasks_per_domain =
  let new_orders = Atomic.make 0 in
  let payments = Atomic.make 0 in
  let others = Atomic.make 0 in
  let t0 = Unix.gettimeofday () in
  let worker d () =
    let rng = Random.State.make [| seed; d |] in
    for _ = 1 to tasks_per_domain do
      let kind = pick_op rng in
      run_op t rng kind;
      match kind with
      | New_order -> Atomic.incr new_orders
      | Payment -> Atomic.incr payments
      | Order_status | Delivery | Stock_level -> Atomic.incr others
    done
  in
  let ds = List.init n_domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join ds;
  let elapsed = Unix.gettimeofday () -. t0 in
  let no = Atomic.get new_orders and pa = Atomic.get payments in
  {
    new_orders = no;
    payments = pa;
    others = Atomic.get others;
    elapsed;
    consistent = audit t ~new_orders:no ~payments:pa;
  }
