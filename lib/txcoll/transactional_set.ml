(* TransactionalSet (paper §5.1): a thin wrapper over TransactionalMap with
   unit values, as ConcurrentHashSet wraps ConcurrentHashMap. *)

module Make (TM : Tm_intf.TM_OPS) (M : Tm_intf.MAP_OPS) = struct
  module Map = Transactional_map.Make (TM) (M)

  type t = unit Map.t

  let create ?stripes ?hash ?isempty_policy ?tm_policy () : t =
    Map.create ?stripes ?hash ?isempty_policy ?tm_policy ()

  let pinned_policy (t : t) = Map.pinned_policy t
  let mem (t : t) k = Map.mem t k

  let add (t : t) k =
    (* Returns [true] when the element was newly added. *)
    Map.put t k () = None

  let add_blind (t : t) k = Map.put_blind t k ()

  let remove (t : t) k =
    (* Returns [true] when the element was present. *)
    Map.remove t k <> None

  let remove_blind (t : t) k = Map.remove_blind t k
  let size (t : t) = Map.size t
  let is_empty (t : t) = Map.is_empty t
  let fold f (t : t) init = Map.fold (fun k () acc -> f k acc) t init
  let iter f (t : t) = Map.iter (fun k () -> f k) t
  let to_list (t : t) = Map.fold (fun k () acc -> k :: acc) t []
end
