(* TransactionalSet, derived through {!Derive} from its commutativity
   spec (paper §5.1 presented sets as thin wrappers over the maps; here
   the spec below *is* the implementation — the hand-written delegation
   wrapper is gone).

   The spec: presence-valued keyed state.  A write is the presence it
   installs ([true] = add, [false] = remove), last-write-wins in the
   buffer and absorbing (reading back one's own add/remove needs no
   committed read).  Weight is presence, so the functor derives exactly
   the paper's Table 1/2 conflicts: key facets for add/remove/mem, the
   size facet when presence flips, the isEmpty facet when emptiness
   flips. *)

module Make (TM : Tm_intf.TM_OPS) (M : Tm_intf.MAP_OPS) = struct
  module Spec = struct
    type state = unit M.t
    type key = M.key
    type value = unit
    type wop = bool (* presence after the write: true = add, false = remove *)

    let name = "TransactionalSet"
    let create () = M.create ()
    let find s k = M.find s k

    let apply s k = function
      | true -> M.add s k ()
      | false -> M.remove s k

    let fold f s acc =
      let a = ref acc in
      M.iter (fun k v -> a := f k v !a) s;
      !a

    let min_key _ ~excluded:_ = None
    let combine ~earlier:_ ~later = later
    let view _ present = if present then Some () else None
    let absorbing _ = true
    let weight = function Some () -> 1 | None -> 0
    let uses_size = true
    let uses_isempty = true
    let uses_first = false
    let compare_key = None
  end

  module D = Derive.Make (TM) (Spec)

  type t = D.t

  let policy_support = D.policy_support
  let create ?stripes ?hash ?tm_policy () = D.create ?stripes ?hash ?tm_policy ()
  let add t k = Option.is_none (D.write t k true ~blind:false)
  let remove t k = Option.is_some (D.write t k false ~blind:false)
  let add_blind t k = D.write_blind t k true
  let remove_blind t k = D.write_blind t k false
  let mem t k = Option.is_some (D.find t k)
  let size = D.size
  let is_empty = D.is_empty
  let fold f t init = D.fold (fun k () acc -> f k acc) t init
  let iter f t = D.iter (fun k () -> f k) t
  let to_list t = fold (fun k acc -> k :: acc) t []
  let pinned_policy = D.pinned_policy
  let outstanding_locks = D.outstanding_locks
  let stripe_count = D.stripe_count
end
