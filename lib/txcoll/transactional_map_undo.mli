(** Undo-logging TransactionalMap — the alternative implementation strategy
    of paper §5.1 ("Redo versus undo logging"): writes update the wrapped
    map in place under exclusive semantic write locks (pessimistic early
    conflict detection, as undo logging requires) and an undo log
    compensates on abort.  The redo-based {!Transactional_map} is the
    default; this module makes the design-space comparison executable. *)

module Make (TM : Tm_intf.TM_OPS) (M : Tm_intf.MAP_OPS) : sig
  type 'v t

  val create : ?tm_policy:string -> unit -> 'v t
  (** [tm_policy] pins the map to one TM policy by name (see [Stm.Policy]
      and {!Transactional_map.Make.create}): validated here, enforced
      against the committing transaction's policy in every mutating
      commit's prepare phase.  This collection is itself the
      encounter-time/undo point of the design space, so [eager_rl_ul] is
      the natural pin, but any policy is sound. *)

  val wrap : ?tm_policy:string -> 'v M.t -> 'v t

  val pinned_policy : 'v t -> string option
  (** The [tm_policy] the map was created with, if any. *)

  val find : 'v t -> M.key -> 'v option
  (** Retries transparently while another transaction write-locks the key. *)

  val mem : 'v t -> M.key -> bool

  val put : 'v t -> M.key -> 'v -> 'v option
  (** In-place update under an exclusive write lock; aborts foreign readers
      of the key immediately and waits (by retrying) on foreign writers. *)

  val remove : 'v t -> M.key -> 'v option
  val size : 'v t -> int
  val is_empty : 'v t -> bool
  val fold : (M.key -> 'v -> 'acc -> 'acc) -> 'v t -> 'acc -> 'acc
  val iter : (M.key -> 'v -> unit) -> 'v t -> unit
  val to_list : 'v t -> (M.key * 'v) list
  val outstanding_locks : 'v t -> int
end
