(** TransactionalCounter: a shared counter whose increments commute and
    therefore never conflict with each other, derived through {!Derive}.

    Deltas are blind buffered writes committing under per-domain shard
    regions (identity hash, one stripe per shard), so concurrent
    incrementing domains see zero aborts and zero region waits.  Only
    {!val:get} — a keyed read of every shard — conflicts with concurrent
    deltas. *)

module Make (TM : Tm_intf.TM_OPS) : sig
  type t

  val policy_support : Tm_intf.policy_support

  val create : ?shards:int -> ?tm_policy:string -> unit -> t
  (** [shards] (default 16, clamped to the lock table's stripe maximum)
      is the number of independent sub-counters increments spread over. *)

  val add : t -> int -> unit
  (** Blind delta; [add t 0] is a no-op (touches nothing). *)

  val incr : t -> unit
  val decr : t -> unit

  val get : t -> int
  (** Sum of all shards.  In a transaction this reads every shard key
      under its semantic lock (serialisable, but conflicts with every
      concurrent delta); outside it reads committed state consistently. *)

  val pinned_policy : t -> string option
  val outstanding_locks : t -> int
  val shard_count : t -> int
end
