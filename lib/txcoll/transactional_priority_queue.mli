(** TransactionalPriorityQueue: an ordered multiset of priorities
    derived through {!Derive} (leaderboards).  [insert]s are blind
    commutative deltas; {!val:peek_min}/{!val:poll_min} read the first
    facet and conflict with any commit that could move the minimum
    (conservatively, per the functor's first-invalidation rule).

    The first facet is whole-collection state, so the lock table has a
    single stripe. *)

module Make (TM : Tm_intf.TM_OPS) (P : Underlying.ORDERED) : sig
  type t

  val policy_support : Tm_intf.policy_support
  val create : ?tm_policy:string -> unit -> t

  val insert : t -> P.t -> unit
  (** Blind +1 multiplicity delta; inserts never conflict each other. *)

  val count : t -> P.t -> int
  (** Multiplicity of priority [p] (takes its key lock). *)

  val peek_min : t -> P.t option
  (** Least present priority; holds the first-facet lock. *)

  val poll_min : t -> P.t option
  (** Remove and return the least priority.  In a transaction the
      first-facet lock held by the peek keeps the pair atomic; outside,
      the pair runs under the structure region. *)

  val size : t -> int
  (** Total number of queued elements counting duplicate priorities. *)

  val is_empty : t -> bool

  val fold : (P.t -> int -> 'acc -> 'acc) -> t -> 'acc -> 'acc
  (** Enumeration order is unspecified once buffered inserts overlay the
      committed order. *)

  val iter : (P.t -> int -> unit) -> t -> unit
  val to_list : t -> (P.t * int) list
  val pinned_policy : t -> string option
  val outstanding_locks : t -> int
end
