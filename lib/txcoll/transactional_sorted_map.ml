(* TransactionalSortedMap (paper §3.2): extends the TransactionalMap design
   with the SortedMap abstract state — ordered iteration, range views and
   the first/last endpoints.

   Per Table 5:
   - ordered iteration takes a range lock over the iterated values, plus a
     first lock when iteration starts at the map's minimum and a last lock
     when it runs off the maximum;
   - [first_key]/[last_key] take the first/last locks;
   - writes detect, at commit time, key conflicts, range conflicts on the
     written key, first/last conflicts on endpoint changes and size/isEmpty
     conflicts as in the plain map.

   Per Table 6, the local state adds a sorted store buffer (ordered
   enumeration must merge local changes in key order) and the list of range
   locks held.

   Interval partitioning.  The key space is cut into B ordered intervals by
   [~splitters] (B = 1 by default: one interval, exactly the historical
   single-structure behaviour).  Each interval owns its own committed
   sub-map (shard) and its own commit region, and the semantic lock table
   uses the same partition ([Semlock.create_intervals]), so key locks,
   pending-writer tables *and range locks* are all interval-local: a range
   lock registers in exactly the stripes its span overlaps, and the
   commit-time [conflict_range k] consults only [k]'s interval.  A writer's
   commit plan therefore names only the intervals its buffered keys and
   locked ranges touch — plus the structure region when a presence change
   moves size/isEmpty/first/last — instead of all B+1 regions, so writers
   in disjoint intervals commit in parallel.  The exceptions that still
   plan every region are removals (the new first/last may live in any
   interval, so the endpoint rescan needs them all).

   Boundary linearizability: ordered operations acquire the regions of
   every interval their span overlaps, nested in ascending index (= region
   id) order, so the merged view across interval boundaries is a stable
   snapshot; committed size and the first/last endpoints are maintained
   counters/keys guarded by the structure region, which every
   presence-changing commit enters, so size/isEmpty/first/last reads stay
   linearizable without touching the interval shards.  Region nesting is
   always ascending (structure region first, then intervals by index), and
   commit plans are rid-sorted by the TM, so acquisition stays
   deadlock-free.

   Multi-version snapshots.  Each interval shard carries a bounded chain
   of immutable ordered shadows ([Coll.Vchain] of [Coll.Pmap]), and a
   structure chain versions (size, min, max) as one tuple.  Mutating
   commits publish the shards they changed — and the structure tuple when
   size or an endpoint moved — at their commit stamp while still holding
   the corresponding regions, so each chain's publications are serialized
   and stamp-monotone; non-transactional writes draw a stamp through
   [TM.begin_publish] under [critical_all].  A snapshot reader resolves
   point reads, size/isEmpty, first/last, range folds and cursors —
   including cross-interval spans — against the shadows at its single
   pinned stamp: a prefix-consistent cut of the whole map with no regions,
   no semantic locks and no aborts. *)

module Make (TM : Tm_intf.TM_OPS) (M : Tm_intf.SORTED_MAP_OPS) = struct
  module L = Semlock.Make (TM)

  type isempty_policy = Dedicated | Via_size

  type write_policy = Optimistic | Pessimistic_aggressive | Pessimistic_timid

  type 'v write = { pending : 'v option; prior : bool option }

  type 'v local = {
    txn : TM.txn;
    buffer : (M.key, 'v write) Coll.Ordmap.t; (* sortedStoreBuffer *)
    mutable key_locks : M.key list;
    mutable stripes_mask : int; (* intervals of held key locks + blind keys *)
    mutable ranges_mask : int; (* intervals of held range locks *)
    mutable struct_locked : bool; (* holds size/isEmpty/first/last *)
  }

  (* Locals are domain-local (a transaction runs, commits and compensates
     on one domain), so point reads on different stripes share no mutable
     lookup state. *)
  type 'v domain_locals = { tbl : (int, 'v local) Hashtbl.t }

  type 'v t = {
    shards : 'v M.t array; (* shard i = interval i's committed bindings *)
    locks : M.key L.t;
    mutable csize : int; (* committed size; structure region *)
    mutable cmin : M.key option; (* committed endpoints; structure region *)
    mutable cmax : M.key option;
    snap : (M.key, 'v) Coll.Pmap.t Coll.Vchain.t array;
        (* ordered shadow chain per interval shard; published only while
           that interval's region is held *)
    snap_struct : (int * M.key option * M.key option) Coll.Vchain.t;
        (* (size, min, max) chain; published only under the structure
           region *)
    dls : 'v domain_locals Domain.DLS.key;
    isempty_policy : isempty_policy;
    write_policy : write_policy;
    copy_key : M.key -> M.key;
    pinned_policy : string option;
        (* TM policy the collection was wrapped with, if any; enforced
           against the committing transaction's policy in [prepare]. *)
  }

  type 'v view = { parent : 'v t; lo : M.key option; hi : M.key option }

  (* TM policy matrix: all transactional state is semantic (ordered store
     buffers, interval lock tables, handlers), so every tvar-level
     protocol axis is safe for this collection. *)
  let policy_support =
    {
      Tm_intf.ps_eager_acquire = true;
      ps_read_locking = true;
      ps_undo_logging = true;
    }

  (* Prepare-phase enforcement of a wrap-time policy pin; the raise
     escapes [atomic] un-retried (misconfiguration, not contention). *)
  let check_pinned_policy = function
    | None -> ()
    | Some name ->
        let cur = TM.txn_policy_name () in
        if not (String.equal cur name) then
          invalid_arg
            (Printf.sprintf
               "transaction ran under TM policy %s but the collection is \
                pinned to %s"
               cur name)

  let wrap ?(splitters = []) ?(isempty_policy = Dedicated)
      ?(write_policy = Optimistic) ?(copy_key = Fun.id) ?tm_policy map =
    Option.iter (TM.validate_policy ~support:policy_support) tm_policy;
    let locks =
      L.create_intervals ~splitters:(Array.of_list splitters)
        ~compare:M.compare_key ()
    in
    let b = L.stripe_count locks in
    let shards =
      if b = 1 then [| map |]
      else begin
        let shards = Array.init b (fun _ -> M.create ()) in
        M.iter (fun k v -> M.add shards.(L.stripe_index locks k) k v) map;
        shards
      end
    in
    let csize = M.size map in
    let cmin = Option.map fst (M.min_binding map) in
    let cmax = Option.map fst (M.max_binding map) in
    let shadow_of shard =
      let pm = ref (Coll.Pmap.empty ~compare:M.compare_key) in
      M.iter (fun k v -> pm := Coll.Pmap.add !pm k v) shard;
      !pm
    in
    {
      shards;
      locks;
      csize;
      cmin;
      cmax;
      snap =
        Array.map (fun shard -> Coll.Vchain.make 0 (shadow_of shard)) shards;
      snap_struct = Coll.Vchain.make 0 (csize, cmin, cmax);
      dls = Domain.DLS.new_key (fun () -> { tbl = Hashtbl.create 8 });
      isempty_policy;
      write_policy;
      copy_key;
      pinned_policy = tm_policy;
    }

  let create ?splitters ?isempty_policy ?write_policy ?copy_key ?tm_policy () =
    wrap ?splitters ?isempty_policy ?write_policy ?copy_key ?tm_policy
      (M.create ())

  let pinned_policy t = t.pinned_policy

  let compare_key = M.compare_key
  let sregion t = L.struct_region t.locks
  let key_region t k = L.region_of_key t.locks k
  let stripe_count t = L.stripe_count t.locks
  let shard_of t k = t.shards.(L.stripe_index t.locks k)

  let all_regions t =
    let acc = ref [] in
    for i = stripe_count t - 1 downto 0 do
      acc := L.stripe_region t.locks i :: !acc
    done;
    sregion t :: !acc

  let all_region_count t = List.length (all_regions t)

  (* Nested criticals over the interval regions [i..j], ascending index
     (= ascending rid). *)
  let rec critical_stripes t i j f =
    if i > j then f ()
    else
      TM.critical (L.stripe_region t.locks i) (fun () ->
          critical_stripes t (i + 1) j f)

  (* Ordered iteration of the committed bindings in [lo, hi): shards hold
     disjoint ascending intervals, so visiting them in index order yields
     global key order.  Caller holds the regions of the overlapped span;
     [f] may raise (early exit). *)
  let iter_committed t f ~lo ~hi =
    let ilo, ihi = L.interval_span t.locks ~lo ~hi in
    for i = ilo to ihi do
      M.iter_range f t.shards.(i) ~lo ~hi
    done

  (* ---------------- snapshot publication ---------------- *)

  (* Caller holds interval [i]'s region: publications to one shadow chain
     are serialized there and every publisher drew its stamp while already
     holding the region, so stamps are monotone per chain. *)
  let publish_shard t i ~min_epoch stamp shadow =
    TM.note_reclaimed
      (Coll.Vchain.publish t.snap.(i) ~keep:TM.version_chain_bound ~min_epoch
         stamp shadow)

  (* Caller holds the structure region; snapshots the maintained
     (size, min, max) triple as of now. *)
  let publish_struct t ~min_epoch stamp =
    TM.note_reclaimed
      (Coll.Vchain.publish t.snap_struct ~keep:TM.version_chain_bound
         ~min_epoch stamp
         (t.csize, t.cmin, t.cmax))

  (* ---------------- handlers ---------------- *)

  (* Sequential (never nested) criticals per touched region: reentrant when
     the commit plan holds them, standalone on the abort/read-only paths. *)
  let cleanup t l =
    List.iter
      (fun k ->
        TM.critical (key_region t k) (fun () -> L.release_key t.locks l.txn k))
      l.key_locks;
    if l.ranges_mask <> 0 then
      for i = 0 to stripe_count t - 1 do
        if l.ranges_mask land (1 lsl i) <> 0 then
          TM.critical (L.stripe_region t.locks i) (fun () ->
              L.release_ranges_in_stripe t.locks l.txn i)
      done;
    if l.struct_locked then
      TM.critical (sregion t) (fun () -> L.release_structure t.locks l.txn);
    Hashtbl.remove (Domain.DLS.get t.dls).tbl (TM.txn_id l.txn)

  (* Commit region plan.  The apply mutates only the shards of the buffered
     keys' intervals, so the plan names those intervals (all buffered keys
     are in [stripes_mask]: non-blind writes lock the key, blind writes
     record the interval at buffering time) plus the intervals of held
     range locks, plus the structure region when a presence change can move
     size/isEmpty/first/last (or structure locks are held and cleanup will
     re-enter).  Removals still plan every region: deleting the committed
     minimum/maximum forces an endpoint rescan across all shards. *)
  let regions_plan t l () =
    let removal = ref false in
    let struct_needed = ref l.struct_locked in
    Coll.Ordmap.iter
      (fun _ w ->
        (match w.prior with
        | None -> struct_needed := true
        | Some p -> if p <> Option.is_some w.pending then struct_needed := true);
        if w.pending = None && w.prior <> Some false then removal := true)
      l.buffer;
    if !removal then all_regions t
    else begin
      let mask = l.stripes_mask lor l.ranges_mask in
      let acc = ref [] in
      for i = stripe_count t - 1 downto 0 do
        if mask land (1 lsl i) <> 0 then
          acc := L.stripe_region t.locks i :: !acc
      done;
      if !struct_needed then sregion t :: !acc else !acc
    end

  (* Presence delta of the buffer against the committed shards.  Non-blind
     priors are trusted (the key lock was held since the read, so a
     conflicting committer would have aborted us); blind priors probe the
     key's shard under its own interval region. *)
  let presence_changes t l =
    Coll.Ordmap.fold
      (fun k w acc ->
        let prior =
          match w.prior with
          | Some p -> p
          | None ->
              TM.critical (key_region t k) (fun () -> M.mem (shard_of t k) k)
        in
        let after = Option.is_some w.pending in
        if after && not prior then acc + 1
        else if (not after) && prior then acc - 1
        else acc)
      l.buffer 0

  (* Prepare phase (before the TM's commit point, read-only, may raise):
     per-entry key and range conflicts under the key's interval region,
     then size/isEmpty conflicts under the structure region when the
     presence delta is non-zero (which implies the plan holds the
     structure region).  Endpoint (first/last) conflicts are detected in
     the apply phase below, where each write is compared against the
     committed endpoints as they evolve — the same point the seed detected
     them at, so a loser of an endpoint race is aborted by the committer
     rather than deferring it (committer wins, as in the seed semantics).
     All criticals below only re-enter regions the plan holds. *)
  let prepare_handler t l () =
    check_pinned_policy t.pinned_policy;
    if not (Coll.Ordmap.is_empty l.buffer) then begin
      let self = l.txn in
      Coll.Ordmap.iter
        (fun k _ ->
          TM.critical (key_region t k) (fun () ->
              L.conflict_key t.locks ~self k;
              L.conflict_range t.locks ~self ~compare:M.compare_key k))
        l.buffer;
      let delta = presence_changes t l in
      if delta <> 0 then
        TM.critical (sregion t) (fun () ->
            L.conflict_size t.locks ~self;
            let was_size = t.csize in
            if (was_size = 0) <> (was_size + delta = 0) then
              L.conflict_isempty t.locks ~self)
    end

  (* Recompute the committed endpoints after a removal may have deleted
     one.  Shards are interval-ordered, so the first non-empty shard holds
     the minimum and the last non-empty shard the maximum.  Caller holds
     every region (removals plan [all_regions]). *)
  let recompute_endpoints t =
    let n = Array.length t.shards in
    let mn = ref None in
    let i = ref 0 in
    while !mn = None && !i < n do
      (match M.min_binding t.shards.(!i) with
      | Some (k, _) -> mn := Some k
      | None -> ());
      incr i
    done;
    let mx = ref None in
    let j = ref (n - 1) in
    while !mx = None && !j >= 0 do
      (match M.max_binding t.shards.(!j) with
      | Some (k, _) -> mx := Some k
      | None -> ());
      decr j
    done;
    t.cmin <- !mn;
    t.cmax <- !mx

  (* Apply phase: mutate each buffered key's shard under its interval
     region; presence-changing entries additionally enter the structure
     region (held by the plan) to fire first/last conflicts against the
     maintained endpoints and update them, and the committed size is
     adjusted at the end.  Removing a committed endpoint triggers a
     cross-shard rescan — legal because removals plan every region.
     Shadows accumulate across the buffer and each touched interval's
     chain is published exactly once at the commit stamp; the structure
     chain is published whenever the (size, min, max) triple moved. *)
  let apply_handler t l stamp =
    if not (Coll.Ordmap.is_empty l.buffer) then begin
      let self = l.txn in
      let delta = ref 0 in
      let removed_endpoint = ref false in
      let endpoints_changed = ref false in
      let shadows = Array.make (stripe_count t) None in
      Coll.Ordmap.iter
        (fun k w ->
          let before =
            TM.critical (key_region t k) (fun () ->
                let si = L.stripe_index t.locks k in
                let shadow =
                  match shadows.(si) with
                  | Some pm -> pm
                  | None -> Coll.Vchain.latest t.snap.(si)
                in
                let shard = shard_of t k in
                let b =
                  match w.prior with Some p -> p | None -> M.mem shard k
                in
                (match w.pending with
                | Some v ->
                    M.add shard k v;
                    shadows.(si) <- Some (Coll.Pmap.add shadow k v)
                | None ->
                    if b then begin
                      M.remove shard k;
                      shadows.(si) <- Some (Coll.Pmap.remove shadow k)
                    end);
                b)
          in
          let after = Option.is_some w.pending in
          if after && not before then begin
            incr delta;
            TM.critical (sregion t) (fun () ->
                (match t.cmin with
                | None ->
                    (* empty -> non-empty: both endpoints change *)
                    L.conflict_first t.locks ~self;
                    L.conflict_last t.locks ~self;
                    t.cmin <- Some k;
                    t.cmax <- Some k;
                    endpoints_changed := true
                | Some mn ->
                    if M.compare_key k mn < 0 then begin
                      L.conflict_first t.locks ~self;
                      t.cmin <- Some k;
                      endpoints_changed := true
                    end;
                    (match t.cmax with
                    | Some mx when M.compare_key k mx > 0 ->
                        L.conflict_last t.locks ~self;
                        t.cmax <- Some k;
                        endpoints_changed := true
                    | _ -> ())))
          end
          else if (not after) && before then begin
            decr delta;
            TM.critical (sregion t) (fun () ->
                (match t.cmin with
                | Some mn when M.compare_key k mn = 0 ->
                    L.conflict_first t.locks ~self;
                    removed_endpoint := true
                | _ -> ());
                match t.cmax with
                | Some mx when M.compare_key k mx = 0 ->
                    L.conflict_last t.locks ~self;
                    removed_endpoint := true
                | _ -> ())
          end)
        l.buffer;
      let min_epoch = TM.reclaim_epoch () in
      for si = 0 to stripe_count t - 1 do
        match shadows.(si) with
        | None -> ()
        | Some shadow ->
            TM.critical (L.stripe_region t.locks si) (fun () ->
                publish_shard t si ~min_epoch stamp shadow)
      done;
      if !delta <> 0 || !removed_endpoint || !endpoints_changed then
        TM.critical (sregion t) (fun () ->
            t.csize <- t.csize + !delta;
            if !removed_endpoint then recompute_endpoints t;
            publish_struct t ~min_epoch stamp)
    end;
    cleanup t l

  let abort_handler t l () = cleanup t l

  let local_of t =
    let txn = TM.current () in
    let id = TM.txn_id txn in
    let d = Domain.DLS.get t.dls in
    match Hashtbl.find_opt d.tbl id with
    | Some l -> l
    | None ->
        let l =
          {
            txn;
            buffer = Coll.Ordmap.create ~compare:M.compare_key ();
            key_locks = [];
            stripes_mask = 0;
            ranges_mask = 0;
            struct_locked = false;
          }
        in
        Hashtbl.add d.tbl id l;
        (* Empty write buffer: prepare has no conflicts to detect and
           apply only releases key/range/endpoint read locks, so
           getter-only transactions (get/first/last/range scans) commit on
           the TM's read-only fast path. *)
        TM.on_commit_prepared
          ~read_only:(fun () -> Coll.Ordmap.is_empty l.buffer)
          ~regions:(regions_plan t l) (sregion t)
          ~prepare:(prepare_handler t l)
          ~apply:(apply_handler t l);
        TM.on_abort (abort_handler t l);
        l

  (* Takes the key's stripe critical itself: callers hold either that same
     stripe (point operations — reentrant) or lower-rid regions (ordered
     operations — ascending-rid nesting). *)
  let lock_key t l k =
    TM.critical (key_region t k) (fun () ->
        if not (L.key_locked_by t.locks l.txn k) then begin
          let committed_copy = t.copy_key k in
          L.lock_key t.locks l.txn committed_copy;
          l.key_locks <- committed_copy :: l.key_locks;
          l.stripes_mask <-
            l.stripes_mask lor (1 lsl L.stripe_index t.locks committed_copy)
        end)

  (* Pessimistic early conflict detection (§5.1); the [`Retry] verdict is
     acted on outside the critical regions.  Caller holds the key's
     interval region — range locks are interval-local, so even the
     range-examining aggressive policy needs no structure region. *)
  let pessimistic_status t l k =
    match t.write_policy with
    | Optimistic -> `Ok
    | Pessimistic_aggressive ->
        L.conflict_key t.locks ~self:l.txn k;
        L.conflict_range t.locks ~self:l.txn ~compare:M.compare_key k;
        `Ok
    | Pessimistic_timid ->
        if L.key_has_other_reader t.locks ~self:l.txn k then `Retry else `Ok

  (* ---------------- point operations (as TransactionalMap) ------------- *)

  (* Snapshot reads resolve against the shadow chains at the pinned stamp:
     no region, no semantic lock, no conflict, no abort.  [stripe_index]
     and [interval_span] are pure (binary search over the splitters). *)
  let snap_shadow t i =
    Coll.Vchain.read_at t.snap.(i) (TM.snapshot_stamp ())

  let snap_struct_at t =
    Coll.Vchain.read_at t.snap_struct (TM.snapshot_stamp ())

  (* Point reads hold only the key's interval region: the underlying
     ordered [find] is a pure traversal, and any committing writer of that
     interval holds its region, so the traversal never races a mutation. *)
  let find t k =
    if TM.in_snapshot () then
      Coll.Pmap.find (snap_shadow t (L.stripe_index t.locks k)) k
    else if not (TM.in_txn ()) then
      TM.critical (key_region t k) (fun () -> M.find (shard_of t k) k)
    else begin
      let l = local_of t in
      TM.critical (key_region t k) (fun () ->
          match Coll.Ordmap.find l.buffer k with
          | Some w -> w.pending
          | None ->
              lock_key t l k;
              M.find (shard_of t k) k)
    end

  let mem t k = Option.is_some (find t k)

  let size t =
    if TM.in_snapshot () then
      let n, _, _ = snap_struct_at t in
      n
    else if not (TM.in_txn ()) then
      TM.critical (sregion t) (fun () -> t.csize)
    else begin
      let l = local_of t in
      TM.critical (sregion t) (fun () ->
          L.lock_size t.locks l.txn;
          l.struct_locked <- true;
          t.csize + presence_changes t l)
    end

  let is_empty t =
    if TM.in_snapshot () then
      let n, _, _ = snap_struct_at t in
      n = 0
    else if not (TM.in_txn ()) then
      TM.critical (sregion t) (fun () -> t.csize = 0)
    else begin
      let l = local_of t in
      TM.critical (sregion t) (fun () ->
          (match t.isempty_policy with
          | Dedicated -> L.lock_isempty t.locks l.txn
          | Via_size -> L.lock_size t.locks l.txn);
          l.struct_locked <- true;
          t.csize + presence_changes t l = 0)
    end

  let buffer_write t l k pending ~blind =
    match Coll.Ordmap.find l.buffer k with
    | Some w ->
        let old = w.pending in
        Coll.Ordmap.add l.buffer k { pending; prior = w.prior };
        old
    | None ->
        if blind then begin
          Coll.Ordmap.add l.buffer k { pending; prior = None };
          (* No key lock, but the commit plan must still cover the key's
             interval. *)
          l.stripes_mask <-
            l.stripes_mask lor (1 lsl L.stripe_index t.locks k);
          None
        end
        else begin
          lock_key t l k;
          let old = M.find (shard_of t k) k in
          Coll.Ordmap.add l.buffer k { pending; prior = Some (Option.is_some old) };
          old
        end

  (* Transactional writes hold only the key's interval region: range locks
     are interval-local (so even the pessimistic policies find them there),
     and the structure region is not needed until commit decides a
     presence change happened. *)
  let rec write_op t k pending ~blind =
    let l = local_of t in
    let verdict =
      TM.critical (key_region t k) (fun () ->
          match pessimistic_status t l k with
          | `Retry -> `Retry
          | `Ok -> `Done (buffer_write t l k pending ~blind))
    in
    match verdict with
    | `Done old -> old
    | `Retry ->
        TM.retry () |> ignore;
        write_op t k pending ~blind

  (* Non-transactional writes mutate the shared committed state including
     size/endpoints: hold everything.  The shadow publication draws its
     stamp through [TM.begin_publish] with every region held, so it
     serializes with committing transactions on each chain it touches. *)
  let nontxn_write t k pending =
    if TM.in_snapshot () then
      invalid_arg
        "Transactional_sorted_map: write inside a snapshot read section";
    L.critical_all t.locks (fun () ->
        let shard = shard_of t k in
        let old = M.find shard k in
        (match pending with
        | Some v -> M.add shard k v
        | None -> M.remove shard k);
        (match (old, pending) with
        | None, Some _ ->
            t.csize <- t.csize + 1;
            (match t.cmin with
            | None -> t.cmin <- Some k
            | Some mn -> if M.compare_key k mn < 0 then t.cmin <- Some k);
            (match t.cmax with
            | None -> t.cmax <- Some k
            | Some mx -> if M.compare_key k mx > 0 then t.cmax <- Some k)
        | Some _, None ->
            t.csize <- t.csize - 1;
            let was_endpoint ep =
              match ep with Some e -> M.compare_key k e = 0 | None -> false
            in
            if was_endpoint t.cmin || was_endpoint t.cmax then
              recompute_endpoints t
        | _ -> ());
        let stamp = TM.begin_publish () in
        Fun.protect ~finally:TM.end_publish (fun () ->
            let min_epoch = TM.reclaim_epoch () in
            let si = L.stripe_index t.locks k in
            let shadow = Coll.Vchain.latest t.snap.(si) in
            let shadow =
              match pending with
              | Some v -> Coll.Pmap.add shadow k v
              | None -> Coll.Pmap.remove shadow k
            in
            publish_shard t si ~min_epoch stamp shadow;
            if Option.is_some old <> Option.is_some pending then
              publish_struct t ~min_epoch stamp);
        old)

  let put t k v =
    if not (TM.in_txn ()) then nontxn_write t k (Some v)
    else write_op t k (Some v) ~blind:false

  let remove t k =
    if not (TM.in_txn ()) then nontxn_write t k None
    else write_op t k None ~blind:false

  let put_blind t k v =
    if not (TM.in_txn ()) then ignore (nontxn_write t k (Some v))
    else ignore (write_op t k (Some v) ~blind:true)

  let remove_blind t k =
    if not (TM.in_txn ()) then ignore (nontxn_write t k None)
    else ignore (write_op t k None ~blind:true)

  (* ---------------- ordered views and iteration ---------------- *)

  (* Merge the committed shards and the sorted store buffer over [lo, hi),
     in key order; buffered entries override committed ones.  Caller holds
     the span's interval regions. *)
  let merged_range t l ~lo ~hi =
    let under = ref [] in
    iter_committed t
      (fun k v ->
        match Coll.Ordmap.find l.buffer k with
        | Some _ -> () (* overridden by the buffer *)
        | None -> under := (k, v) :: !under)
      ~lo ~hi;
    let buf = ref [] in
    Coll.Ordmap.iter_range
      (fun k w ->
        match w.pending with Some v -> buf := (k, v) :: !buf | None -> ())
      l.buffer ~lo ~hi;
    List.merge
      (fun (a, _) (b, _) -> M.compare_key a b)
      (List.rev !under) (List.rev !buf)

  (* Registers the range in the lock table (caller holds the span's
     interval regions) and records the overlapped intervals so the commit
     plan covers them and cleanup releases them. *)
  let take_range_lock t l range =
    let ilo, ihi =
      L.interval_span t.locks ~lo:range.L.lo ~hi:range.L.hi
    in
    L.lock_range t.locks l.txn ~compare:M.compare_key range;
    for i = ilo to ihi do
      l.ranges_mask <- l.ranges_mask lor (1 lsl i)
    done

  (* Ordered fold over [lo, hi) with Table 5 locking: range lock over the
     iterated span, first lock when the span starts at the map's minimum,
     last lock when it runs past the maximum.  Runs under the span's
     interval regions, nested ascending (committing writers of those
     intervals hold them, so the merged view is stable); the structure
     region is entered first — it has the lowest rid — only when an
     unbounded end needs a first/last lock.  The user callback runs after
     the regions are released: the registered locks, not the regions, are
     what guarantee serializability of the observed snapshot. *)
  (* Snapshot ordered iteration over [lo, hi): every overlapped shard's
     shadow is read at the same pinned stamp, so the cross-interval
     concatenation (shards hold disjoint ascending intervals) is one
     prefix-consistent ordered cut — no regions, no range/first/last
     locks, no aborts. *)
  let snap_iter_range t f ~lo ~hi =
    let ts = TM.snapshot_stamp () in
    let ilo, ihi = L.interval_span t.locks ~lo ~hi in
    for i = ilo to ihi do
      Coll.Pmap.iter_range f (Coll.Vchain.read_at t.snap.(i) ts) ~lo ~hi
    done

  let fold_range f t init ~lo ~hi =
    if TM.in_snapshot () then begin
      let acc = ref init in
      snap_iter_range t (fun k v -> acc := f k v !acc) ~lo ~hi;
      !acc
    end
    else
    let ilo, ihi = L.interval_span t.locks ~lo ~hi in
    if not (TM.in_txn ()) then begin
      let items =
        critical_stripes t ilo ihi (fun () ->
            let acc = ref [] in
            iter_committed t (fun k v -> acc := (k, v) :: !acc) ~lo ~hi;
            List.rev !acc)
      in
      List.fold_left (fun acc (k, v) -> f k v acc) init items
    end
    else begin
      let l = local_of t in
      let run () =
        critical_stripes t ilo ihi (fun () ->
            take_range_lock t l { lo; hi };
            merged_range t l ~lo ~hi)
      in
      let items =
        if lo = None || hi = None then
          TM.critical (sregion t) (fun () ->
              if lo = None then L.lock_first t.locks l.txn;
              if hi = None then L.lock_last t.locks l.txn;
              l.struct_locked <- true;
              run ())
        else run ()
      in
      List.fold_left (fun acc (k, v) -> f k v acc) init items
    end

  let fold f t init = fold_range f t init ~lo:None ~hi:None
  let iter f t = fold (fun k v () -> f k v) t ()
  let to_list t = List.rev (fold (fun k v acc -> (k, v) :: acc) t [])

  (* First/last bindings of the merged view of [lo, hi).  Caller holds the
     span's interval regions. *)
  let merged_first t l ~lo ~hi =
    let under = ref None in
    (try
       iter_committed t
         (fun k v ->
           match Coll.Ordmap.find l.buffer k with
           | Some _ -> ()
           | None ->
               under := Some (k, v);
               raise Exit)
         ~lo ~hi
     with Exit -> ());
    let buf = ref None in
    (try
       Coll.Ordmap.iter_range
         (fun k w ->
           match w.pending with
           | Some v ->
               buf := Some (k, v);
               raise Exit
           | None -> ())
         l.buffer ~lo ~hi
     with Exit -> ());
    match (!under, !buf) with
    | None, x | x, None -> x
    | Some (ku, _), Some (kb, vb) when M.compare_key kb ku < 0 -> Some (kb, vb)
    | u, _ -> u

  (* First merged binding strictly above [above] (or from [lo] when [above]
     is [None]), below [hi]. *)
  let merged_first_above t l ~above ~lo ~hi =
    let scan_lo = match above with Some _ as a -> a | None -> lo in
    let strictly k =
      match above with None -> true | Some a -> M.compare_key k a > 0
    in
    let under = ref None in
    (try
       iter_committed t
         (fun k v ->
           if strictly k && Coll.Ordmap.find l.buffer k = None then begin
             under := Some (k, v);
             raise Exit
           end)
         ~lo:scan_lo ~hi
     with Exit -> ());
    let buf = ref None in
    (try
       Coll.Ordmap.iter_range
         (fun k w ->
           match w.pending with
           | Some v when strictly k ->
               buf := Some (k, v);
               raise Exit
           | _ -> ())
         l.buffer ~lo:scan_lo ~hi
     with Exit -> ());
    match (!under, !buf) with
    | None, x | x, None -> x
    | Some (ku, _), Some (kb, vb) when M.compare_key kb ku < 0 -> Some (kb, vb)
    | u, _ -> u

  let merged_last t l ~lo ~hi =
    match List.rev (merged_range t l ~lo ~hi) with [] -> None | x :: _ -> Some x

  (* firstKey/lastKey read the maintained committed endpoints under the
     structure region; only a transaction with local buffered writes needs
     the full merged view (and then holds every interval region, nested
     ascending from the structure region). *)
  (* Endpoint of a snapshot: the (size, min, max) tuple and the endpoint's
     shard shadow were published at the same commit stamp, so the lookup
     always lands. *)
  let snap_binding_at t k =
    Option.map
      (fun v -> (k, v))
      (Coll.Pmap.find (snap_shadow t (L.stripe_index t.locks k)) k)

  let first_binding t =
    let committed_at k =
      TM.critical (key_region t k) (fun () ->
          match M.find (shard_of t k) k with
          | Some v -> Some (k, v)
          | None -> None)
    in
    if TM.in_snapshot () then
      let _, mn, _ = snap_struct_at t in
      Option.bind mn (snap_binding_at t)
    else if not (TM.in_txn ()) then
      TM.critical (sregion t) (fun () ->
          match t.cmin with None -> None | Some k -> committed_at k)
    else begin
      let l = local_of t in
      TM.critical (sregion t) (fun () ->
          L.lock_first t.locks l.txn;
          l.struct_locked <- true;
          if Coll.Ordmap.is_empty l.buffer then
            match t.cmin with None -> None | Some k -> committed_at k
          else
            critical_stripes t 0
              (stripe_count t - 1)
              (fun () -> merged_first t l ~lo:None ~hi:None))
    end

  let last_binding t =
    let committed_at k =
      TM.critical (key_region t k) (fun () ->
          match M.find (shard_of t k) k with
          | Some v -> Some (k, v)
          | None -> None)
    in
    if TM.in_snapshot () then
      let _, _, mx = snap_struct_at t in
      Option.bind mx (snap_binding_at t)
    else if not (TM.in_txn ()) then
      TM.critical (sregion t) (fun () ->
          match t.cmax with None -> None | Some k -> committed_at k)
    else begin
      let l = local_of t in
      TM.critical (sregion t) (fun () ->
          L.lock_last t.locks l.txn;
          l.struct_locked <- true;
          if Coll.Ordmap.is_empty l.buffer then
            match t.cmax with None -> None | Some k -> committed_at k
          else
            critical_stripes t 0
              (stripe_count t - 1)
              (fun () -> merged_last t l ~lo:None ~hi:None))
    end

  let first_key t = Option.map fst (first_binding t)
  let last_key t = Option.map fst (last_binding t)

  (* ---------------- SortedMap views (subMap/headMap/tailMap) ----------- *)

  let in_bounds v k =
    (match v.lo with None -> true | Some b -> M.compare_key k b >= 0)
    && match v.hi with None -> true | Some b -> M.compare_key k b < 0

  let sub_map t ~lo ~hi = { parent = t; lo = Some lo; hi = Some hi }
  let head_map t ~hi = { parent = t; lo = None; hi = Some hi }
  let tail_map t ~lo = { parent = t; lo = Some lo; hi = None }

  module View = struct
    let find v k = if in_bounds v k then find v.parent k else None
    let mem v k = Option.is_some (find v k)

    let put v k value =
      if not (in_bounds v k) then invalid_arg "TransactionalSortedMap.View.put";
      put v.parent k value

    let remove v k =
      if not (in_bounds v k) then
        invalid_arg "TransactionalSortedMap.View.remove";
      remove v.parent k

    let fold f v init = fold_range f v.parent init ~lo:v.lo ~hi:v.hi
    let iter f v = fold (fun k value () -> f k value) v ()
    let to_list v = List.rev (fold (fun k value acc -> (k, value) :: acc) v [])
    let size v = fold (fun _ _ n -> n + 1) v 0
    let is_empty v = to_list v = []

    (* firstKey of a view reveals the absence of any key in [lo, found):
       a range lock over that prefix plus a key lock on the found key. *)
    let first_binding v =
      let t = v.parent in
      if TM.in_snapshot () then begin
        let r = ref None in
        (try
           snap_iter_range t
             (fun k value ->
               r := Some (k, value);
               raise Exit)
             ~lo:v.lo ~hi:v.hi
         with Exit -> ());
        !r
      end
      else
      let ilo, ihi = L.interval_span t.locks ~lo:v.lo ~hi:v.hi in
      if not (TM.in_txn ()) then
        critical_stripes t ilo ihi (fun () ->
            let r = ref None in
            (try
               iter_committed t
                 (fun k value ->
                   r := Some (k, value);
                   raise Exit)
                 ~lo:v.lo ~hi:v.hi
             with Exit -> ());
            !r)
      else begin
        let l = local_of t in
        critical_stripes t ilo ihi (fun () ->
            match merged_first t l ~lo:v.lo ~hi:v.hi with
            | None ->
                take_range_lock t l { lo = v.lo; hi = v.hi };
                None
            | Some (k, value) ->
                take_range_lock t l { lo = v.lo; hi = Some k };
                lock_key t l k;
                Some (k, value))
      end

    let last_binding v =
      let t = v.parent in
      if TM.in_snapshot () then begin
        let r = ref None in
        snap_iter_range t (fun k value -> r := Some (k, value)) ~lo:v.lo
          ~hi:v.hi;
        !r
      end
      else
      let ilo, ihi = L.interval_span t.locks ~lo:v.lo ~hi:v.hi in
      if not (TM.in_txn ()) then
        critical_stripes t ilo ihi (fun () ->
            let r = ref None in
            iter_committed t (fun k value -> r := Some (k, value)) ~lo:v.lo
              ~hi:v.hi;
            !r)
      else begin
        let l = local_of t in
        critical_stripes t ilo ihi (fun () ->
            match merged_last t l ~lo:v.lo ~hi:v.hi with
            | None ->
                take_range_lock t l { lo = v.lo; hi = v.hi };
                None
            | Some (k, value) ->
                (* Conservative: [k, hi) covers the suffix whose emptiness
                   above [k] the answer reveals, plus [k] itself. *)
                take_range_lock t l { lo = Some k; hi = v.hi };
                lock_key t l k;
                Some (k, value))
      end

    let first_key v = Option.map fst (first_binding v)
    let last_key v = Option.map fst (last_binding v)
  end

  (* ---------------- ordered cursor (Table 5 iterator) ---------------- *)

  (* An incremental ordered iterator with the exact locking of Table 5:
     each [next] extends the transaction's range lock over the span it has
     observed ([previous key, returned key)), takes a key lock on the
     returned key, and — when the iteration starts at the map's minimum —
     a first lock; exhaustion locks the remaining span up to [hi], plus the
     last lock when [hi] is unbounded.  Unlike [fold_range], the span ahead
     of the cursor stays unlocked, so inserts ahead of the cursor commute
     (and are observed live) while inserts behind it abort the iterator.
     Range insertions coalesce in the lock table, so the incremental span
     extension holds a bounded number of range entries.  Each [next] holds
     the interval regions of the remaining span (advancing the cursor
     shrinks that span), plus the structure region when the upper bound is
     unbounded (exhaustion must take the last lock there). *)
  type 'v cursor = {
    cparent : 'v t;
    clo : M.key option;
    chi : M.key option;
    mutable cpos : M.key option; (* last returned key *)
    mutable cexhausted : bool;
  }

  let cursor ?lo ?hi t =
    if TM.in_txn () then begin
      let l = local_of t in
      TM.critical (sregion t) (fun () ->
          if lo = None then begin
            L.lock_first t.locks l.txn;
            l.struct_locked <- true
          end)
    end;
    { cparent = t; clo = lo; chi = hi; cpos = None; cexhausted = false }

  let cursor_next c =
    let t = c.cparent in
    let span_lo = match c.cpos with Some _ as p -> p | None -> c.clo in
    if TM.in_snapshot () then begin
      (* Each step re-resolves against the section's pinned stamp, so the
         whole walk — across interval boundaries included — observes one
         consistent cut without locking anything. *)
      let r = ref None in
      (try
         snap_iter_range t
           (fun k v ->
             let ok =
               match c.cpos with
               | None -> true
               | Some p -> M.compare_key k p > 0
             in
             if ok then begin
               r := Some (k, v);
               raise Exit
             end)
           ~lo:span_lo ~hi:c.chi
       with Exit -> ());
      (match !r with
      | Some (k, _) -> c.cpos <- Some k
      | None -> c.cexhausted <- true);
      !r
    end
    else
    let ilo, ihi = L.interval_span t.locks ~lo:span_lo ~hi:c.chi in
    if not (TM.in_txn ()) then
      critical_stripes t ilo ihi (fun () ->
          (* Outside a transaction: plain ordered walk of the committed
             shards. *)
          let r = ref None in
          (try
             iter_committed t
               (fun k v ->
                 let ok =
                   match c.cpos with
                   | None -> true
                   | Some p -> M.compare_key k p > 0
                 in
                 if ok then begin
                   r := Some (k, v);
                   raise Exit
                 end)
               ~lo:span_lo ~hi:c.chi
           with Exit -> ());
          (match !r with Some (k, _) -> c.cpos <- Some k | None -> ());
          !r)
    else begin
      let l = local_of t in
      let run () =
        critical_stripes t ilo ihi (fun () ->
            match merged_first_above t l ~above:c.cpos ~lo:c.clo ~hi:c.chi with
            | Some (k, v) ->
                take_range_lock t l { lo = span_lo; hi = Some k };
                lock_key t l k;
                c.cpos <- Some k;
                Some (k, v)
            | None ->
                if not c.cexhausted then begin
                  c.cexhausted <- true;
                  take_range_lock t l { lo = span_lo; hi = c.chi };
                  if c.chi = None then begin
                    L.lock_last t.locks l.txn;
                    l.struct_locked <- true
                  end
                end;
                None)
      in
      if c.chi = None then TM.critical (sregion t) run else run ()
    end

  (* ---------------- introspection ---------------- *)

  (* Longest shadow chain (intervals and structure) — reclamation probe
     for leak tests. *)
  let snapshot_history_length t =
    Array.fold_left
      (fun acc chain -> max acc (Coll.Vchain.length chain))
      (Coll.Vchain.length t.snap_struct)
      t.snap

  let holds_key_lock t k =
    TM.critical (key_region t k) (fun () ->
        L.key_locked_by t.locks (TM.current ()) k)

  let holds_size_lock t =
    TM.critical (sregion t) (fun () ->
        L.size_locked_by t.locks (TM.current ()))

  let holds_range_lock t =
    L.critical_all t.locks (fun () ->
        L.range_locked_by t.locks (TM.current ()))

  let holds_first_lock t =
    TM.critical (sregion t) (fun () ->
        L.first_locked_by t.locks (TM.current ()))

  let holds_last_lock t =
    TM.critical (sregion t) (fun () ->
        L.last_locked_by t.locks (TM.current ()))

  let outstanding_locks t =
    L.critical_all t.locks (fun () -> L.total_lockers t.locks)

  let outstanding_range_locks t =
    L.critical_all t.locks (fun () -> L.range_locker_count t.locks)

  (* Number of regions the calling transaction's commit would plan right
     now (meaningful only inside a transaction).  Lets tests assert that a
     single-interval writer plans strictly fewer regions than
     [all_region_count]. *)
  let commit_plan_size t = List.length (regions_plan t (local_of t) ())

  (* Live rendering of Table 6's state inventory (local state is the
     calling domain's). *)
  let dump_state ppf t =
    L.critical_all t.locks (fun () ->
        Format.fprintf ppf "Committed state:@.";
        Format.fprintf ppf "  sortedMap           %d bindings (%d intervals)@."
          t.csize (stripe_count t);
        Format.fprintf ppf "  comparator          (read-only)@.";
        Format.fprintf ppf "Shared transactional state (open-nested):@.";
        Format.fprintf ppf "  key2lockers         %d entries@."
          (L.key_entry_count t.locks);
        Format.fprintf ppf "  sizeLockers         %d@."
          (L.size_locker_count t.locks);
        Format.fprintf ppf "  firstLockers        %d@."
          (L.first_locker_count t.locks);
        Format.fprintf ppf "  lastLockers         %d@."
          (L.last_locker_count t.locks);
        Format.fprintf ppf "  rangeLockers        %d@."
          (L.range_locker_count t.locks);
        let d = Domain.DLS.get t.dls in
        Format.fprintf ppf "Local transactional state (%d active txns):@."
          (Hashtbl.length d.tbl);
        Hashtbl.iter
          (fun id l ->
            Format.fprintf ppf
              "  txn %-6d sortedStoreBuffer=%d entries, keyLocks=%d@." id
              (Coll.Ordmap.size l.buffer)
              (List.length l.key_locks))
          d.tbl)
end
