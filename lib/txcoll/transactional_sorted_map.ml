(* TransactionalSortedMap (paper §3.2): extends the TransactionalMap design
   with the SortedMap abstract state — ordered iteration, range views and
   the first/last endpoints.

   Per Table 5:
   - ordered iteration takes a range lock over the iterated values, plus a
     first lock when iteration starts at the map's minimum and a last lock
     when it runs off the maximum;
   - [first_key]/[last_key] take the first/last locks;
   - writes detect, at commit time, key conflicts, range conflicts on the
     written key, first/last conflicts on endpoint changes and size/isEmpty
     conflicts as in the plain map.

   Per Table 6, the local state adds a sorted store buffer (ordered
   enumeration must merge local changes in key order) and the list of range
   locks held.

   Striping.  Key locks are sharded into stripes as in the plain map, but
   the committed state stays one ordered structure and every ordered /
   range / endpoint lock lives behind the structure region: an interval
   does not map onto hash stripes, so range-heavy semantics serialise
   there.  What striping buys here is read-side scaling: point reads hold
   only their key's stripe region, so disjoint-key readers of the same
   sorted map proceed in parallel with each other and with structure
   readers.  Writers (non-empty store buffer) plan {e all} regions at
   commit — the apply mutates the shared ordered structure that point
   readers traverse under their stripe alone, so the writer must exclude
   every stripe.  Region nesting is always ascending (structure region
   first, then stripes by index), and commit plans are rid-sorted by the
   TM, so acquisition stays deadlock-free.  Mapping range locks onto
   interval-partitioned stripe sets (so disjoint-range writers also scale)
   is left open in ROADMAP.md. *)

module Make (TM : Tm_intf.TM_OPS) (M : Tm_intf.SORTED_MAP_OPS) = struct
  module L = Semlock.Make (TM)

  type isempty_policy = Dedicated | Via_size

  type write_policy = Optimistic | Pessimistic_aggressive | Pessimistic_timid

  type 'v write = { pending : 'v option; prior : bool option }

  type 'v local = {
    txn : TM.txn;
    buffer : (M.key, 'v write) Coll.Ordmap.t; (* sortedStoreBuffer *)
    mutable key_locks : M.key list;
    mutable stripes_mask : int; (* stripes of held key locks *)
    mutable struct_locked : bool; (* holds size/isEmpty/first/last/range *)
  }

  (* Locals are domain-local (a transaction runs, commits and compensates
     on one domain), so point reads on different stripes share no mutable
     lookup state. *)
  type 'v domain_locals = { tbl : (int, 'v local) Hashtbl.t }

  type 'v t = {
    map : 'v M.t;
    locks : M.key L.t;
    dls : 'v domain_locals Domain.DLS.key;
    isempty_policy : isempty_policy;
    write_policy : write_policy;
    copy_key : M.key -> M.key;
  }

  type 'v view = { parent : 'v t; lo : M.key option; hi : M.key option }

  let default_stripes = 8

  let wrap ?(stripes = default_stripes) ?hash ?(isempty_policy = Dedicated)
      ?(write_policy = Optimistic) ?(copy_key = Fun.id) map =
    {
      map;
      locks = L.create ~stripes ?hash ();
      dls = Domain.DLS.new_key (fun () -> { tbl = Hashtbl.create 8 });
      isempty_policy;
      write_policy;
      copy_key;
    }

  let create ?stripes ?hash ?isempty_policy ?write_policy ?copy_key () =
    wrap ?stripes ?hash ?isempty_policy ?write_policy ?copy_key (M.create ())

  let compare_key = M.compare_key
  let sregion t = L.struct_region t.locks
  let key_region t k = L.region_of_key t.locks k
  let stripe_count t = L.stripe_count t.locks

  let all_regions t =
    let acc = ref [] in
    for i = stripe_count t - 1 downto 0 do
      acc := L.stripe_region t.locks i :: !acc
    done;
    sregion t :: !acc

  (* ---------------- handlers ---------------- *)

  (* Sequential (never nested) criticals per touched region: reentrant when
     the commit plan holds them, standalone on the abort/read-only paths. *)
  let cleanup t l =
    List.iter
      (fun k ->
        TM.critical (key_region t k) (fun () -> L.release_key t.locks l.txn k))
      l.key_locks;
    if l.struct_locked then
      TM.critical (sregion t) (fun () -> L.release_structure t.locks l.txn);
    Hashtbl.remove (Domain.DLS.get t.dls).tbl (TM.txn_id l.txn)

  (* Commit region plan.  A writer's apply mutates the shared ordered map,
     which point readers traverse under their stripe region alone, so a
     non-empty buffer plans every region.  A read-only handler (in a mixed
     commit with some other written collection) plans the stripes of its
     key locks plus the structure region when it holds structure locks —
     exactly what [cleanup] will re-enter. *)
  let regions_plan t l () =
    if not (Coll.Ordmap.is_empty l.buffer) then all_regions t
    else begin
      let acc = ref [] in
      for i = stripe_count t - 1 downto 0 do
        if l.stripes_mask land (1 lsl i) <> 0 then
          acc := L.stripe_region t.locks i :: !acc
      done;
      if l.struct_locked then sregion t :: !acc else !acc
    end

  let presence_changes t l =
    Coll.Ordmap.fold
      (fun k w acc ->
        let prior = match w.prior with Some p -> p | None -> M.mem t.map k in
        let after = Option.is_some w.pending in
        if after && not prior then acc + 1
        else if (not after) && prior then acc - 1
        else acc)
      l.buffer 0

  (* Prepare phase (before the TM's commit point, read-only, may raise):
     size/isEmpty conflicts plus per-entry key and range conflicts.
     Endpoint (first/last) conflicts are detected in the apply phase
     below, where each write is compared against the committed state as
     it evolves — the same point the seed detected them at, so a loser of
     an endpoint race is aborted by the committer rather than deferring
     it (committer wins, as in the seed semantics).  A non-empty buffer
     implies the plan holds every region, so the criticals below only
     re-enter. *)
  let prepare_handler t l () =
    if not (Coll.Ordmap.is_empty l.buffer) then
      L.critical_all t.locks (fun () ->
          let self = l.txn in
          let was_size = M.size t.map in
          let delta = presence_changes t l in
          if delta <> 0 then L.conflict_size t.locks ~self;
          if (was_size = 0) <> (was_size + delta = 0) then
            L.conflict_isempty t.locks ~self;
          Coll.Ordmap.iter
            (fun k _ ->
              L.conflict_key t.locks ~self k;
              L.conflict_range t.locks ~self ~compare:M.compare_key k)
            l.buffer)

  let apply_handler t l () =
    if not (Coll.Ordmap.is_empty l.buffer) then
      L.critical_all t.locks (fun () ->
          let self = l.txn in
          (* Check and apply entry by entry: endpoint-change detection
             compares each write against the committed state as it
             evolves. *)
          Coll.Ordmap.iter
            (fun k w ->
              let min_k = Option.map fst (M.min_binding t.map) in
              let max_k = Option.map fst (M.max_binding t.map) in
              let present = M.mem t.map k in
              match w.pending with
              | Some v ->
                  if not present then begin
                    (match min_k with
                    | None ->
                        (* empty -> non-empty: both endpoints change *)
                        L.conflict_first t.locks ~self;
                        L.conflict_last t.locks ~self
                    | Some mn ->
                        if M.compare_key k mn < 0 then
                          L.conflict_first t.locks ~self);
                    match max_k with
                    | None -> ()
                    | Some mx ->
                        if M.compare_key k mx > 0 then
                          L.conflict_last t.locks ~self
                  end;
                  M.add t.map k v
              | None ->
                  if present then begin
                    (match min_k with
                    | Some mn when M.compare_key k mn = 0 ->
                        L.conflict_first t.locks ~self
                    | _ -> ());
                    (match max_k with
                    | Some mx when M.compare_key k mx = 0 ->
                        L.conflict_last t.locks ~self
                    | _ -> ());
                    M.remove t.map k
                  end)
            l.buffer);
    cleanup t l

  let abort_handler t l () = cleanup t l

  let local_of t =
    let txn = TM.current () in
    let id = TM.txn_id txn in
    let d = Domain.DLS.get t.dls in
    match Hashtbl.find_opt d.tbl id with
    | Some l -> l
    | None ->
        let l =
          {
            txn;
            buffer = Coll.Ordmap.create ~compare:M.compare_key ();
            key_locks = [];
            stripes_mask = 0;
            struct_locked = false;
          }
        in
        Hashtbl.add d.tbl id l;
        (* Empty write buffer: prepare has no conflicts to detect and
           apply only releases key/range/endpoint read locks, so
           getter-only transactions (get/first/last/range scans) commit on
           the TM's read-only fast path. *)
        TM.on_commit_prepared
          ~read_only:(fun () -> Coll.Ordmap.is_empty l.buffer)
          ~regions:(regions_plan t l) (sregion t)
          ~prepare:(prepare_handler t l)
          ~apply:(apply_handler t l);
        TM.on_abort (abort_handler t l);
        l

  (* Takes the key's stripe critical itself: callers hold either that same
     stripe (point operations — reentrant) or the structure region (ordered
     operations — ascending-rid nesting). *)
  let lock_key t l k =
    TM.critical (key_region t k) (fun () ->
        if not (L.key_locked_by t.locks l.txn k) then begin
          let committed_copy = t.copy_key k in
          L.lock_key t.locks l.txn committed_copy;
          l.key_locks <- committed_copy :: l.key_locks;
          l.stripes_mask <-
            l.stripes_mask lor (1 lsl L.stripe_index t.locks committed_copy)
        end)

  (* Pessimistic early conflict detection (§5.1); the [`Retry] verdict is
     acted on outside the critical regions.  Caller holds the structure
     region and the key's stripe (write path nesting). *)
  let pessimistic_status t l k =
    match t.write_policy with
    | Optimistic -> `Ok
    | Pessimistic_aggressive ->
        L.conflict_key t.locks ~self:l.txn k;
        L.conflict_range t.locks ~self:l.txn ~compare:M.compare_key k;
        `Ok
    | Pessimistic_timid ->
        if L.key_has_other_reader t.locks ~self:l.txn k then `Retry else `Ok

  (* ---------------- point operations (as TransactionalMap) ------------- *)

  (* Point reads hold only the key's stripe region: the underlying ordered
     [find] is a pure traversal, and any committing writer holds every
     stripe, so the traversal never races a mutation. *)
  let find t k =
    if not (TM.in_txn ()) then
      TM.critical (key_region t k) (fun () -> M.find t.map k)
    else begin
      let l = local_of t in
      TM.critical (key_region t k) (fun () ->
          match Coll.Ordmap.find l.buffer k with
          | Some w -> w.pending
          | None ->
              lock_key t l k;
              M.find t.map k)
    end

  let mem t k = Option.is_some (find t k)

  let size t =
    if not (TM.in_txn ()) then TM.critical (sregion t) (fun () -> M.size t.map)
    else begin
      let l = local_of t in
      TM.critical (sregion t) (fun () ->
          L.lock_size t.locks l.txn;
          l.struct_locked <- true;
          M.size t.map + presence_changes t l)
    end

  let is_empty t =
    if not (TM.in_txn ()) then
      TM.critical (sregion t) (fun () -> M.size t.map = 0)
    else begin
      let l = local_of t in
      TM.critical (sregion t) (fun () ->
          (match t.isempty_policy with
          | Dedicated -> L.lock_isempty t.locks l.txn
          | Via_size -> L.lock_size t.locks l.txn);
          l.struct_locked <- true;
          M.size t.map + presence_changes t l = 0)
    end

  let buffer_write t l k pending ~blind =
    match Coll.Ordmap.find l.buffer k with
    | Some w ->
        let old = w.pending in
        Coll.Ordmap.add l.buffer k { pending; prior = w.prior };
        old
    | None ->
        if blind then begin
          Coll.Ordmap.add l.buffer k { pending; prior = None };
          None
        end
        else begin
          lock_key t l k;
          let old = M.find t.map k in
          Coll.Ordmap.add l.buffer k { pending; prior = Some (Option.is_some old) };
          old
        end

  (* Transactional writes nest structure-then-stripe (ascending rid): the
     pessimistic policies examine range locks (structure) as well as the
     key's stripe. *)
  let rec write_op t k pending ~blind =
    let l = local_of t in
    let verdict =
      TM.critical (sregion t) (fun () ->
          TM.critical (key_region t k) (fun () ->
              match pessimistic_status t l k with
              | `Retry -> `Retry
              | `Ok -> `Done (buffer_write t l k pending ~blind)))
    in
    match verdict with
    | `Done old -> old
    | `Retry ->
        TM.retry () |> ignore;
        write_op t k pending ~blind

  (* Non-transactional writes mutate the shared ordered structure that
     point readers traverse under their stripe alone: hold everything. *)
  let nontxn_write t k pending =
    L.critical_all t.locks (fun () ->
        let old = M.find t.map k in
        (match pending with
        | Some v -> M.add t.map k v
        | None -> M.remove t.map k);
        old)

  let put t k v =
    if not (TM.in_txn ()) then nontxn_write t k (Some v)
    else write_op t k (Some v) ~blind:false

  let remove t k =
    if not (TM.in_txn ()) then nontxn_write t k None
    else write_op t k None ~blind:false

  let put_blind t k v =
    if not (TM.in_txn ()) then ignore (nontxn_write t k (Some v))
    else ignore (write_op t k (Some v) ~blind:true)

  let remove_blind t k =
    if not (TM.in_txn ()) then ignore (nontxn_write t k None)
    else ignore (write_op t k None ~blind:true)

  (* ---------------- ordered views and iteration ---------------- *)

  (* Merge the underlying map and the sorted store buffer over [lo, hi),
     in key order; buffered entries override underlying ones. *)
  let merged_range t l ~lo ~hi =
    let under = ref [] in
    M.iter_range
      (fun k v ->
        match Coll.Ordmap.find l.buffer k with
        | Some _ -> () (* overridden by the buffer *)
        | None -> under := (k, v) :: !under)
      t.map ~lo ~hi;
    let buf = ref [] in
    Coll.Ordmap.iter_range
      (fun k w ->
        match w.pending with Some v -> buf := (k, v) :: !buf | None -> ())
      l.buffer ~lo ~hi;
    List.merge
      (fun (a, _) (b, _) -> M.compare_key a b)
      (List.rev !under) (List.rev !buf)

  let take_range_lock t l range =
    L.lock_range t.locks l.txn ~compare:M.compare_key range;
    l.struct_locked <- true

  (* Ordered fold over [lo, hi) with Table 5 locking: range lock over the
     iterated span, first lock when the span starts at the map's minimum,
     last lock when it runs past the maximum.  Runs under the structure
     region (committing writers hold it, so the merged view is stable);
     per-key locks nest into each key's stripe. *)
  let fold_range f t init ~lo ~hi =
    if not (TM.in_txn ()) then
      TM.critical (sregion t) (fun () ->
          let acc = ref init in
          M.iter_range (fun k v -> acc := f k v !acc) t.map ~lo ~hi;
          !acc)
    else begin
      let l = local_of t in
      TM.critical (sregion t) (fun () ->
          take_range_lock t l { lo; hi };
          if lo = None then L.lock_first t.locks l.txn;
          if hi = None then L.lock_last t.locks l.txn;
          List.fold_left (fun acc (k, v) -> f k v acc) init (merged_range t l ~lo ~hi))
    end

  let fold f t init = fold_range f t init ~lo:None ~hi:None
  let iter f t = fold (fun k v () -> f k v) t ()
  let to_list t = List.rev (fold (fun k v acc -> (k, v) :: acc) t [])

  (* First/last bindings of the merged view of [lo, hi). *)
  let merged_first t l ~lo ~hi =
    let under = ref None in
    (try
       M.iter_range
         (fun k v ->
           match Coll.Ordmap.find l.buffer k with
           | Some _ -> ()
           | None ->
               under := Some (k, v);
               raise Exit)
         t.map ~lo ~hi
     with Exit -> ());
    let buf = ref None in
    (try
       Coll.Ordmap.iter_range
         (fun k w ->
           match w.pending with
           | Some v ->
               buf := Some (k, v);
               raise Exit
           | None -> ())
         l.buffer ~lo ~hi
     with Exit -> ());
    match (!under, !buf) with
    | None, x | x, None -> x
    | Some (ku, _), Some (kb, vb) when M.compare_key kb ku < 0 -> Some (kb, vb)
    | u, _ -> u

  (* First merged binding strictly above [above] (or from [lo] when [above]
     is [None]), below [hi]. *)
  let merged_first_above t l ~above ~lo ~hi =
    let scan_lo = match above with Some _ as a -> a | None -> lo in
    let strictly k =
      match above with None -> true | Some a -> M.compare_key k a > 0
    in
    let under = ref None in
    (try
       M.iter_range
         (fun k v ->
           if strictly k && Coll.Ordmap.find l.buffer k = None then begin
             under := Some (k, v);
             raise Exit
           end)
         t.map ~lo:scan_lo ~hi
     with Exit -> ());
    let buf = ref None in
    (try
       Coll.Ordmap.iter_range
         (fun k w ->
           match w.pending with
           | Some v when strictly k ->
               buf := Some (k, v);
               raise Exit
           | _ -> ())
         l.buffer ~lo:scan_lo ~hi
     with Exit -> ());
    match (!under, !buf) with
    | None, x | x, None -> x
    | Some (ku, _), Some (kb, vb) when M.compare_key kb ku < 0 -> Some (kb, vb)
    | u, _ -> u

  let merged_last t l ~lo ~hi =
    match List.rev (merged_range t l ~lo ~hi) with [] -> None | x :: _ -> Some x

  let first_binding t =
    if not (TM.in_txn ()) then
      TM.critical (sregion t) (fun () -> M.min_binding t.map)
    else begin
      let l = local_of t in
      TM.critical (sregion t) (fun () ->
          L.lock_first t.locks l.txn;
          l.struct_locked <- true;
          merged_first t l ~lo:None ~hi:None)
    end

  let last_binding t =
    if not (TM.in_txn ()) then
      TM.critical (sregion t) (fun () -> M.max_binding t.map)
    else begin
      let l = local_of t in
      TM.critical (sregion t) (fun () ->
          L.lock_last t.locks l.txn;
          l.struct_locked <- true;
          merged_last t l ~lo:None ~hi:None)
    end

  let first_key t = Option.map fst (first_binding t)
  let last_key t = Option.map fst (last_binding t)

  (* ---------------- SortedMap views (subMap/headMap/tailMap) ----------- *)

  let in_bounds v k =
    (match v.lo with None -> true | Some b -> M.compare_key k b >= 0)
    && match v.hi with None -> true | Some b -> M.compare_key k b < 0

  let sub_map t ~lo ~hi = { parent = t; lo = Some lo; hi = Some hi }
  let head_map t ~hi = { parent = t; lo = None; hi = Some hi }
  let tail_map t ~lo = { parent = t; lo = Some lo; hi = None }

  module View = struct
    let find v k = if in_bounds v k then find v.parent k else None
    let mem v k = Option.is_some (find v k)

    let put v k value =
      if not (in_bounds v k) then invalid_arg "TransactionalSortedMap.View.put";
      put v.parent k value

    let remove v k =
      if not (in_bounds v k) then
        invalid_arg "TransactionalSortedMap.View.remove";
      remove v.parent k

    let fold f v init = fold_range f v.parent init ~lo:v.lo ~hi:v.hi
    let iter f v = fold (fun k value () -> f k value) v ()
    let to_list v = List.rev (fold (fun k value acc -> (k, value) :: acc) v [])
    let size v = fold (fun _ _ n -> n + 1) v 0
    let is_empty v = to_list v = []

    (* firstKey of a view reveals the absence of any key in [lo, found):
       a range lock over that prefix plus a key lock on the found key. *)
    let first_binding v =
      let t = v.parent in
      if not (TM.in_txn ()) then
        TM.critical (sregion t) (fun () ->
            let r = ref None in
            (try
               M.iter_range
                 (fun k value ->
                   r := Some (k, value);
                   raise Exit)
                 t.map ~lo:v.lo ~hi:v.hi
             with Exit -> ());
            !r)
      else begin
        let l = local_of t in
        TM.critical (sregion t) (fun () ->
            match merged_first t l ~lo:v.lo ~hi:v.hi with
            | None ->
                take_range_lock t l { lo = v.lo; hi = v.hi };
                None
            | Some (k, value) ->
                take_range_lock t l { lo = v.lo; hi = Some k };
                lock_key t l k;
                Some (k, value))
      end

    let last_binding v =
      let t = v.parent in
      if not (TM.in_txn ()) then
        TM.critical (sregion t) (fun () ->
            let r = ref None in
            M.iter_range (fun k value -> r := Some (k, value)) t.map ~lo:v.lo
              ~hi:v.hi;
            !r)
      else begin
        let l = local_of t in
        TM.critical (sregion t) (fun () ->
            match merged_last t l ~lo:v.lo ~hi:v.hi with
            | None ->
                take_range_lock t l { lo = v.lo; hi = v.hi };
                None
            | Some (k, value) ->
                (* Conservative: [k, hi) covers the suffix whose emptiness
                   above [k] the answer reveals, plus [k] itself. *)
                take_range_lock t l { lo = Some k; hi = v.hi };
                lock_key t l k;
                Some (k, value))
      end

    let first_key v = Option.map fst (first_binding v)
    let last_key v = Option.map fst (last_binding v)
  end

  (* ---------------- ordered cursor (Table 5 iterator) ---------------- *)

  (* An incremental ordered iterator with the exact locking of Table 5:
     each [next] extends the transaction's range lock over the span it has
     observed ([previous key, returned key)), takes a key lock on the
     returned key, and — when the iteration starts at the map's minimum —
     a first lock; exhaustion locks the remaining span up to [hi], plus the
     last lock when [hi] is unbounded.  Unlike [fold_range], the span ahead
     of the cursor stays unlocked, so inserts ahead of the cursor commute
     (and are observed live) while inserts behind it abort the iterator.
     Range insertions coalesce in the lock table, so the incremental span
     extension holds a bounded number of range entries. *)
  type 'v cursor = {
    cparent : 'v t;
    clo : M.key option;
    chi : M.key option;
    mutable cpos : M.key option; (* last returned key *)
    mutable cexhausted : bool;
  }

  let cursor ?lo ?hi t =
    if TM.in_txn () then begin
      let l = local_of t in
      TM.critical (sregion t) (fun () ->
          if lo = None then begin
            L.lock_first t.locks l.txn;
            l.struct_locked <- true
          end)
    end;
    { cparent = t; clo = lo; chi = hi; cpos = None; cexhausted = false }

  let cursor_next c =
    let t = c.cparent in
    if not (TM.in_txn ()) then
      TM.critical (sregion t) (fun () ->
          (* Outside a transaction: plain ordered walk of the committed map. *)
          let r = ref None in
          (try
             M.iter_range
               (fun k v ->
                 let ok =
                   match c.cpos with
                   | None -> true
                   | Some p -> M.compare_key k p > 0
                 in
                 if ok then begin
                   r := Some (k, v);
                   raise Exit
                 end)
               t.map ~lo:c.clo ~hi:c.chi
           with Exit -> ());
          (match !r with Some (k, _) -> c.cpos <- Some k | None -> ());
          !r)
    else begin
      let l = local_of t in
      TM.critical (sregion t) (fun () ->
          let span_lo = match c.cpos with Some _ as p -> p | None -> c.clo in
          match merged_first_above t l ~above:c.cpos ~lo:c.clo ~hi:c.chi with
          | Some (k, v) ->
              take_range_lock t l { lo = span_lo; hi = Some k };
              lock_key t l k;
              c.cpos <- Some k;
              Some (k, v)
          | None ->
              if not c.cexhausted then begin
                c.cexhausted <- true;
                take_range_lock t l { lo = span_lo; hi = c.chi };
                if c.chi = None then L.lock_last t.locks l.txn
              end;
              None)
    end

  (* ---------------- introspection ---------------- *)

  let holds_key_lock t k =
    TM.critical (key_region t k) (fun () ->
        L.key_locked_by t.locks (TM.current ()) k)

  let holds_size_lock t =
    TM.critical (sregion t) (fun () ->
        L.size_locked_by t.locks (TM.current ()))

  let holds_range_lock t =
    TM.critical (sregion t) (fun () ->
        L.range_locked_by t.locks (TM.current ()))

  let holds_first_lock t =
    TM.critical (sregion t) (fun () ->
        L.first_locked_by t.locks (TM.current ()))

  let holds_last_lock t =
    TM.critical (sregion t) (fun () ->
        L.last_locked_by t.locks (TM.current ()))

  let outstanding_locks t =
    L.critical_all t.locks (fun () -> L.total_lockers t.locks)

  let outstanding_range_locks t =
    TM.critical (sregion t) (fun () -> L.range_locker_count t.locks)

  (* Live rendering of Table 6's state inventory (local state is the
     calling domain's). *)
  let dump_state ppf t =
    L.critical_all t.locks (fun () ->
        Format.fprintf ppf "Committed state:@.";
        Format.fprintf ppf "  sortedMap           %d bindings@." (M.size t.map);
        Format.fprintf ppf "  comparator          (read-only)@.";
        Format.fprintf ppf "Shared transactional state (open-nested):@.";
        Format.fprintf ppf "  key2lockers         %d entries@."
          (L.key_entry_count t.locks);
        Format.fprintf ppf "  sizeLockers         %d@."
          (L.size_locker_count t.locks);
        Format.fprintf ppf "  firstLockers        %d@."
          (L.first_locker_count t.locks);
        Format.fprintf ppf "  lastLockers         %d@."
          (L.last_locker_count t.locks);
        Format.fprintf ppf "  rangeLockers        %d@."
          (L.range_locker_count t.locks);
        let d = Domain.DLS.get t.dls in
        Format.fprintf ppf "Local transactional state (%d active txns):@."
          (Hashtbl.length d.tbl);
        Hashtbl.iter
          (fun id l ->
            Format.fprintf ppf
              "  txn %-6d sortedStoreBuffer=%d entries, keyLocks=%d@." id
              (Coll.Ordmap.size l.buffer)
              (List.length l.key_locks))
          d.tbl)
end
