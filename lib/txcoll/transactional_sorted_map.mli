(** TransactionalSortedMap (paper §3.2): extends the TransactionalMap design
    to the [SortedMap] abstract data type — ordered iteration, range views
    ([subMap]/[headMap]/[tailMap]) and first/last endpoints — with the
    semantic locks of Table 5: range locks over iterated spans and
    first/last locks on the endpoints, so that a put or remove conflicts
    exactly with the transactions whose ordered observations it
    invalidates.

    Inside a snapshot read section ([TM.in_snapshot], e.g. [Stm.snapshot]),
    every read operation — point lookups, size/is_empty, first/last,
    range folds, views and cursors, across interval boundaries included —
    resolves against bounded multi-version shadow chains at the pinned
    snapshot stamp: no semantic locks, no critical regions, no conflicts,
    no aborts.  Write operations raise [Invalid_argument] there. *)

module Make (TM : Tm_intf.TM_OPS) (M : Tm_intf.SORTED_MAP_OPS) : sig
  type 'v t

  type isempty_policy = Dedicated | Via_size

  (** As in {!Transactional_map.Make}: when write conflicts are detected. *)
  type write_policy = Optimistic | Pessimistic_aggressive | Pessimistic_timid

  val create :
    ?splitters:M.key list ->
    ?isempty_policy:isempty_policy ->
    ?write_policy:write_policy ->
    ?copy_key:(M.key -> M.key) ->
    ?tm_policy:string ->
    unit ->
    'v t
  (** [splitters] cuts the key space into B = [length splitters + 1]
      ordered intervals (sorted and deduplicated internally, clamped to 61
      cut points), each owning its own committed sub-map, commit region and
      key/range/writer lock tables: point operations and range scans of
      disjoint intervals proceed in parallel, and a writer's commit plan
      names only the intervals its buffered keys and locked ranges touch
      (plus the structure region on presence changes; removals still plan
      every region for the endpoint rescan).  The default (no splitters) is
      a single interval — exactly the historical unsharded behaviour.

      [tm_policy] pins the collection to one TM policy by name (see
      [Stm.Policy] and {!Transactional_map.Make.create}): validated here,
      enforced against the committing transaction's policy in every
      mutating commit's prepare phase. *)

  val wrap :
    ?splitters:M.key list ->
    ?isempty_policy:isempty_policy ->
    ?write_policy:write_policy ->
    ?copy_key:(M.key -> M.key) ->
    ?tm_policy:string ->
    'v M.t ->
    'v t

  val compare_key : M.key -> M.key -> int

  val stripe_count : 'v t -> int
  (** Number of intervals B. *)

  val pinned_policy : 'v t -> string option
  (** The [tm_policy] the map was created with, if any. *)

  (** {1 Point operations} (as TransactionalMap) *)

  val find : 'v t -> M.key -> 'v option
  val mem : 'v t -> M.key -> bool
  val put : 'v t -> M.key -> 'v -> 'v option
  val remove : 'v t -> M.key -> 'v option
  val put_blind : 'v t -> M.key -> 'v -> unit
  val remove_blind : 'v t -> M.key -> unit
  val size : 'v t -> int
  val is_empty : 'v t -> bool

  (** {1 Ordered access} *)

  val first_binding : 'v t -> (M.key * 'v) option
  (** Takes the first lock; conflicts with commits that change the
      minimum. *)

  val last_binding : 'v t -> (M.key * 'v) option
  val first_key : 'v t -> M.key option
  val last_key : 'v t -> M.key option

  val fold_range :
    (M.key -> 'v -> 'acc -> 'acc) ->
    'v t ->
    'acc ->
    lo:M.key option ->
    hi:M.key option ->
    'acc
  (** In-order fold over [lo <= k < hi] (half-open, Java [subMap] style),
      merging the transaction's sorted store buffer.  Takes a range lock
      over the span, plus the first lock when [lo = None] and the last lock
      when [hi = None]. *)

  val fold : (M.key -> 'v -> 'acc -> 'acc) -> 'v t -> 'acc -> 'acc
  val iter : (M.key -> 'v -> unit) -> 'v t -> unit
  val to_list : 'v t -> (M.key * 'v) list

  (** {1 Views} — mutable [SortedMap] views as in Java *)

  type 'v view

  val sub_map : 'v t -> lo:M.key -> hi:M.key -> 'v view
  val head_map : 'v t -> hi:M.key -> 'v view
  val tail_map : 'v t -> lo:M.key -> 'v view

  module View : sig
    val find : 'v view -> M.key -> 'v option
    val mem : 'v view -> M.key -> bool

    val put : 'v view -> M.key -> 'v -> 'v option
    (** @raise Invalid_argument outside the view's bounds. *)

    val remove : 'v view -> M.key -> 'v option
    val fold : (M.key -> 'v -> 'acc -> 'acc) -> 'v view -> 'acc -> 'acc
    val iter : (M.key -> 'v -> unit) -> 'v view -> unit
    val to_list : 'v view -> (M.key * 'v) list
    val size : 'v view -> int
    val is_empty : 'v view -> bool

    val first_binding : 'v view -> (M.key * 'v) option
    (** Reveals the absence of keys in [lo, found): takes a range lock over
        that prefix and a key lock on the found key. *)

    val last_binding : 'v view -> (M.key * 'v) option
    val first_key : 'v view -> M.key option
    val last_key : 'v view -> M.key option
  end

  (** {1 Ordered cursor} — the incremental iterator of Table 5: each [next]
      extends the range lock over the observed span and key-locks the
      returned binding, so inserts behind the cursor conflict while inserts
      ahead of it commute (and are observed live); exhaustion locks the
      remaining span, plus the last lock when unbounded. *)

  type 'v cursor

  val cursor : ?lo:M.key -> ?hi:M.key -> 'v t -> 'v cursor
  val cursor_next : 'v cursor -> (M.key * 'v) option

  (** {1 Introspection} *)

  val holds_key_lock : 'v t -> M.key -> bool
  val holds_size_lock : 'v t -> bool
  val holds_range_lock : 'v t -> bool
  val holds_first_lock : 'v t -> bool
  val holds_last_lock : 'v t -> bool
  val outstanding_locks : 'v t -> int

  val outstanding_range_locks : 'v t -> int
  (** Number of (range, owner) pairs currently registered across all
      interval stripes.  Ranges coalesce on insertion, so a cursor sweeping
      an interval incrementally holds a bounded count (the regression test
      for unbounded range-lock growth); a range overlapping several
      intervals counts once per overlapped stripe. *)

  val commit_plan_size : 'v t -> int
  (** Number of commit regions the calling transaction's commit would plan
      right now.  Meaningful only inside a transaction; compare against
      [all_region_count] to check that interval-local writers do not plan
      the whole map. *)

  val all_region_count : 'v t -> int
  (** Size of the full region plan (structure region + every interval). *)

  val snapshot_history_length : 'v t -> int
  (** Longest multi-version shadow chain (over all interval shards and the
      structure chain) — reclamation probe: at most
      [TM.version_chain_bound] once the oldest snapshot-reader epoch has
      advanced past the excess versions. *)

  val dump_state : Format.formatter -> 'v t -> unit
  (** Live rendering of Table 6's state inventory. *)
end
