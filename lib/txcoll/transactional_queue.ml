(* TransactionalQueue (paper §3.3): a transactional work queue with
   selectively reduced isolation, wrapping a Queue implementation behind the
   util.concurrent Channel interface (put/take/poll/peek/offer only).

   Per Table 9 the state is:
   - committed: the underlying queue;
   - shared: the set of transactions that observed emptiness (emptyLockers);
   - local: addBuffer (elements to enqueue at commit) and removeBuffer
     (elements already taken, to be returned to the queue on abort).

   Isolation is deliberately reduced (§5 "if we want reduced isolation, we
   ... allow writes to the underlying state from within open-nested
   transactions"): [poll]/[take] remove from the underlying queue
   immediately, so other transactions cannot steal work that would become
   invalid if this transaction aborts — the Delaunay-mesh motivation.
   [put] defers to commit so speculative new work never leaks.  Per Tables 7
   and 8, the only semantic conflict is observing emptiness that a
   committing [put] invalidates.

   Multi-version snapshots: a bounded chain of immutable queue images
   ([Coll.Pdeque] in a [Coll.Vchain]) mirrors the underlying queue.  Every
   mutation of the underlying queue — commit-time flushes, op-time takes
   (reduced isolation makes those visible immediately by design), abort
   compensation, non-transactional operations — publishes the new image
   while holding the structure region, so publications are serialized and
   stamp-monotone.  Snapshot readers serve [peek]/[committed_length] from
   the image at their pinned stamp; mutating operations raise. *)

module Make (TM : Tm_intf.TM_OPS) (Q : Tm_intf.QUEUE_OPS) = struct
  module L = Semlock.Make (TM)

  type 'v local = {
    txn : TM.txn;
    add_buffer : 'v Coll.Fifo_deque.t;
    remove_buffer : 'v Coll.Fifo_deque.t; (* in removal order *)
  }

  type 'v t = {
    queue : 'v Q.t;
    locks : unit L.t; (* only the empty lock is used *)
    locals : (int, 'v local) Hashtbl.t;
    snap : 'v Coll.Pdeque.t Coll.Vchain.t;
        (* immutable images of [queue]; published only while the structure
           region is held, so [Vchain.latest] is the current image there *)
    pinned_policy : string option;
        (* TM policy the queue was wrapped with, if any; enforced against
           the committing transaction's policy in [prepare]. *)
  }

  (* TM policy matrix: the queue's transactional state is semantic
     (buffers, the emptiness lock set) and its reduced-isolation takes go
     through [critical] regions, not tvars — every protocol axis is
     safe. *)
  let policy_support =
    {
      Tm_intf.ps_eager_acquire = true;
      ps_read_locking = true;
      ps_undo_logging = true;
    }

  (* Prepare-phase enforcement of a wrap-time policy pin; the raise
     escapes [atomic] un-retried (misconfiguration, not contention). *)
  let check_pinned_policy = function
    | None -> ()
    | Some name ->
        let cur = TM.txn_policy_name () in
        if not (String.equal cur name) then
          invalid_arg
            (Printf.sprintf
               "transaction ran under TM policy %s but the collection is \
                pinned to %s"
               cur name)

  (* A single stripe (K = 1): the queue's isolation is already reduced —
     takes hit the underlying queue at operation time — so every operation
     serialises on the lock manager's structure region, which doubles as
     the commit region. *)
  let wrap ?tm_policy queue =
    Option.iter (TM.validate_policy ~support:policy_support) tm_policy;
    (* QUEUE_OPS has no iteration, so the initial image drains and refills
       the wrapped queue (wrap-time is quiescent: the caller hands the
       queue over and must not touch it afterwards). *)
    let items = ref [] in
    let rec drain () =
      match Q.dequeue queue with
      | Some v ->
          items := v :: !items;
          drain ()
      | None -> ()
    in
    drain ();
    let items = List.rev !items in
    List.iter (Q.enqueue queue) items;
    {
      queue;
      locks = L.create ~stripes:1 ();
      locals = Hashtbl.create 32;
      snap = Coll.Vchain.make 0 (Coll.Pdeque.of_list items);
      pinned_policy = tm_policy;
    }

  let create ?tm_policy () = wrap ?tm_policy (Q.create ())
  let pinned_policy t = t.pinned_policy
  let critical t f = TM.critical (L.struct_region t.locks) f

  (* Publish the next queue image at [stamp].  Caller holds the structure
     region (commit plan or an explicit critical). *)
  let publish_at t stamp image =
    TM.note_reclaimed
      (Coll.Vchain.publish t.snap ~keep:TM.version_chain_bound
         ~min_epoch:(TM.reclaim_epoch ()) stamp image)

  (* Same, for mutations outside a commit's apply phase (op-time takes,
     abort compensation, non-transactional operations): draw a fresh stamp
     inside the held region through the TM's publication window. *)
  let publish_now t image =
    let stamp = TM.begin_publish () in
    Fun.protect ~finally:TM.end_publish (fun () -> publish_at t stamp image)

  let image t = Coll.Vchain.latest t.snap

  let cleanup t l =
    L.release_all t.locks l.txn ~keys:[];
    Hashtbl.remove t.locals (TM.txn_id l.txn)

  (* Prepare phase (before the TM's commit point, read-only, may raise):
     additions becoming visible invalidate transactions that observed an
     empty queue (Table 8: put conflicts "if now non-empty"). *)
  let prepare_handler t l () =
    check_pinned_policy t.pinned_policy;
    critical t (fun () ->
        if not (Coll.Fifo_deque.is_empty l.add_buffer) then
          L.conflict_isempty t.locks ~self:l.txn)

  let apply_handler t l stamp =
    critical t (fun () ->
        if not (Coll.Fifo_deque.is_empty l.add_buffer) then begin
          let img = ref (image t) in
          Coll.Fifo_deque.iter
            (fun v ->
              Q.enqueue t.queue v;
              img := Coll.Pdeque.enqueue !img v)
            l.add_buffer;
          publish_at t stamp !img
        end;
        (* Taken elements are consumed for good; drop the removeBuffer. *)
        cleanup t l)

  let abort_handler t l () =
    critical t (fun () ->
        (* Compensation: return taken-but-unprocessed elements to the front
           of the queue in their original order.  [remove_buffer] lists them
           oldest-removal-first, so pushing front in reverse restores the
           original sequence. *)
        let items = List.rev (Coll.Fifo_deque.to_list l.remove_buffer) in
        if items <> [] then begin
          let img = ref (image t) in
          List.iter
            (fun v ->
              Q.push_front t.queue v;
              img := Coll.Pdeque.push_front !img v)
            items;
          publish_now t !img
        end;
        cleanup t l)

  let local_of t =
    let txn = TM.current () in
    let id = TM.txn_id txn in
    match Hashtbl.find_opt t.locals id with
    | Some l -> l
    | None ->
        let l =
          {
            txn;
            add_buffer = Coll.Fifo_deque.create ();
            remove_buffer = Coll.Fifo_deque.create ();
          }
        in
        Hashtbl.add t.locals id l;
        (* An empty add buffer means prepare would check nothing (the
           isempty conflict only fires for pending enqueues) and apply
           only drops buffers and releases locks: peek-only transactions
           take the TM's read-only commit fast path.  Takes are applied to
           the underlying queue at operation time, so a taking transaction
           still qualifies — its commit publishes nothing. *)
        TM.on_commit_prepared
          ~read_only:(fun () -> Coll.Fifo_deque.is_empty l.add_buffer)
          (L.struct_region t.locks)
          ~prepare:(prepare_handler t l)
          ~apply:(apply_handler t l);
        TM.on_abort (abort_handler t l);
        l

  let lock_empty t l = L.lock_isempty t.locks l.txn

  (* ---------------- Channel operations ---------------- *)

  let no_snapshot_write () =
    if TM.in_snapshot () then
      invalid_arg "Transactional_queue: write inside a snapshot read section"

  let put t v =
    no_snapshot_write ();
    if not (TM.in_txn ()) then
      critical t (fun () ->
          Q.enqueue t.queue v;
          publish_now t (Coll.Pdeque.enqueue (image t) v))
    else critical t (fun () -> Coll.Fifo_deque.enqueue (local_of t).add_buffer v)

  let offer = put

  (* An op-time take mutates the underlying queue immediately (reduced
     isolation), so it publishes a new image right away — snapshot readers
     pinned before the take's stamp still see the element. *)
  let take_underlying t =
    match Q.dequeue t.queue with
    | Some v ->
        publish_now t (snd (Coll.Pdeque.dequeue (image t)));
        Some v
    | None -> None

  let poll t =
    no_snapshot_write ();
    if not (TM.in_txn ()) then critical t (fun () -> take_underlying t)
    else
      critical t (fun () ->
          let l = local_of t in
          match take_underlying t with
          | Some v ->
              Coll.Fifo_deque.enqueue l.remove_buffer v;
              Some v
          | None -> (
              (* Fall back to our own deferred additions. *)
              match Coll.Fifo_deque.dequeue l.add_buffer with
              | Some v -> Some v
              | None ->
                  lock_empty t l;
                  None))

  let take = poll

  let peek t =
    if TM.in_snapshot () then
      Coll.Pdeque.peek (Coll.Vchain.read_at t.snap (TM.snapshot_stamp ()))
    else if not (TM.in_txn ()) then critical t (fun () -> Q.peek t.queue)
    else
      critical t (fun () ->
          let l = local_of t in
          match Q.peek t.queue with
          | Some v -> Some v
          | None -> (
              match Coll.Fifo_deque.peek l.add_buffer with
              | Some v -> Some v
              | None ->
                  lock_empty t l;
                  None))

  (* Committed length: a debugging/statistics view, NOT part of the Channel
     interface (the paper removes size-revealing operations from the work
     queue on purpose); takes no locks. *)
  let committed_length t =
    if TM.in_snapshot () then
      Coll.Pdeque.length (Coll.Vchain.read_at t.snap (TM.snapshot_stamp ()))
    else critical t (fun () -> Q.length t.queue)

  (* Reclamation probe for leak tests. *)
  let snapshot_history_length t = Coll.Vchain.length t.snap

  let holds_empty_lock t =
    critical t (fun () -> L.isempty_locked_by t.locks (TM.current ()))

  let outstanding_locks t = critical t (fun () -> L.total_lockers t.locks)

  (* Live rendering of Table 9's state inventory. *)
  let dump_state ppf t =
    critical t (fun () ->
        Format.fprintf ppf "Committed state:@.";
        Format.fprintf ppf "  queue               %d elements@." (Q.length t.queue);
        Format.fprintf ppf "Shared transactional state (open-nested):@.";
        Format.fprintf ppf "  emptyLockers        %d@."
          (L.isempty_locker_count t.locks);
        Format.fprintf ppf "Local transactional state (%d active txns):@."
          (Hashtbl.length t.locals);
        Hashtbl.iter
          (fun id l ->
            Format.fprintf ppf "  txn %-6d addBuffer=%d, removeBuffer=%d@." id
              (Coll.Fifo_deque.length l.add_buffer)
              (Coll.Fifo_deque.length l.remove_buffer))
          t.locals)
end
