(** TransactionalSet: thin wrapper over {!Transactional_map} with unit
    values, as ConcurrentHashSet wraps ConcurrentHashMap (paper §5.1). *)

module Make (TM : Tm_intf.TM_OPS) (M : Tm_intf.MAP_OPS) : sig
  module Map : module type of Transactional_map.Make (TM) (M)

  type t = unit Map.t

  (** [stripes]/[hash]/[tm_policy] as in
      {!Transactional_map.Make.create}. *)
  val create :
    ?stripes:int ->
    ?hash:(M.key -> int) ->
    ?isempty_policy:Map.isempty_policy ->
    ?tm_policy:string ->
    unit ->
    t

  val pinned_policy : t -> string option
  val mem : t -> M.key -> bool

  val add : t -> M.key -> bool
  (** [true] when newly added (reads the element: takes its lock). *)

  val add_blind : t -> M.key -> unit

  val remove : t -> M.key -> bool
  (** [true] when the element was present. *)

  val remove_blind : t -> M.key -> unit
  val size : t -> int
  val is_empty : t -> bool
  val fold : (M.key -> 'acc -> 'acc) -> t -> 'acc -> 'acc
  val iter : (M.key -> unit) -> t -> unit
  val to_list : t -> M.key list
end
