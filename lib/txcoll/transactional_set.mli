(** TransactionalSet, derived through {!Derive} from a presence-valued
    commutativity spec (paper §5.1).  The former hand-written delegation
    wrapper over {!Transactional_map} is gone: the functor generates the
    semantic locks, store buffer and commit/abort handlers from the spec.

    Unlike the map, derived wrappers do not publish snapshot version
    chains: reads inside [Stm.snapshot] raise [Invalid_argument]. *)

module Make (TM : Tm_intf.TM_OPS) (M : Tm_intf.MAP_OPS) : sig
  type t

  val policy_support : Tm_intf.policy_support

  val create :
    ?stripes:int -> ?hash:(M.key -> int) -> ?tm_policy:string -> unit -> t

  val add : t -> M.key -> bool
  (** [true] when newly added (reads the element: takes its key lock). *)

  val remove : t -> M.key -> bool
  (** [true] when the element was present. *)

  val add_blind : t -> M.key -> unit
  val remove_blind : t -> M.key -> unit
  val mem : t -> M.key -> bool
  val size : t -> int
  val is_empty : t -> bool
  val fold : (M.key -> 'acc -> 'acc) -> t -> 'acc -> 'acc
  val iter : (M.key -> unit) -> t -> unit
  val to_list : t -> M.key list
  val pinned_policy : t -> string option

  val outstanding_locks : t -> int
  (** Total semantic-lock registrations in the set's lock table — 0 when
      quiescent; for leak probes. *)

  val stripe_count : t -> int
end
