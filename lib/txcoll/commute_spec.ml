(* The operation-commutativity / lock spec language of the transactional
   collection classes, promoted out of the harness so it is the *input* of
   {!Derive} (the Proust-style semantic functor) rather than only a test
   oracle.

   Two layers live here:

   1. The generic facet language ['k facet]: the abstract-state atoms a
      collection operation reads (operation-time locks) or invalidates
      (commit-time conflict sets).  {!Derive.Make} consumes a spec phrased
      in these facets and generates the full transactional wrapper.

   2. The paper's concrete int-keyed map/queue model (Tables 1/2, 4/5,
      7/8), brute-force-checked for exactness and lock soundness.  Its
      [lock] type is the facet language specialised to [int] keys plus the
      sorted-map range atom.

   Executable reproduction of the paper's semantic operational analysis:

   - Tables 1 and 4: under which conditions do Map / SortedMap operations
     conflict (fail to commute)?
   - Tables 2 and 5: which semantic locks do read operations take, and which
     lock conflicts do writes check at commit?
   - Tables 7 and 8: the same for the Channel (queue) interface.

   For every ordered pair (read-ish op, write op) and every small map state
   we check commutativity by brute force — equal final states and equal
   return values in both execution orders — and verify that
   (a) our transcription of the paper's conflict condition matches exactly,
   (b) the lock discipline is sound: whenever two operations fail to
       commute, the reader's lock set intersects the writer's commit-time
       conflict set, so optimistic semantic concurrency control aborts the
       reader.

   Where brute force refines Table 1 (the paper's [get]-vs-[put] condition
   omits overwriting an existing key with a different value), we encode the
   refined condition; the locks of Table 2 cover it, so the implementation
   is unaffected.  EXPERIMENTS.md records the discrepancy. *)

(* ------------------------------------------------------------------ *)
(* Generic facet language                                              *)

(* One atom of a collection's abstract state (Tables 2 and 5 as a
   datatype): the presence/value at a key, the cardinality, emptiness,
   and the least/greatest key of an ordered collection.  A read operation
   *locks* the facets it observed; a write's commit-time *conflict set*
   is the facets it invalidates.  Optimistic semantic concurrency control
   is sound iff every non-commuting pair overlaps on a facet — which is
   exactly what {!check_all} brute-forces for the paper's map model and
   what [test/test_derive.ml] re-checks through the real STM for the
   derived classes. *)
type 'k facet = FKey of 'k | FSize | FIsEmpty | FFirst | FLast

let facet_overlap equal a b =
  match (a, b) with
  | FKey x, FKey y -> equal x y
  | FSize, FSize | FIsEmpty, FIsEmpty | FFirst, FFirst | FLast, FLast -> true
  | _ -> false

module IntMap = Map.Make (Int)

type state = int IntMap.t

(* ------------------------------------------------------------------ *)
(* Map operations                                                      *)

type op =
  | Get of int
  | ContainsKey of int
  | Size
  | IsEmpty
  | Iterate (* full entrySet enumeration *)
  | FirstKey
  | LastKey
  | SubMapIter of int * int (* lo <= k < hi *)
  | Put of int * int
  | Remove of int

type result =
  | RInt of int
  | RBool of bool
  | ROpt of int option
  | RList of (int * int) list

let is_write = function Put _ | Remove _ -> true | _ -> false

let name = function
  | Get k -> Printf.sprintf "get(%d)" k
  | ContainsKey k -> Printf.sprintf "containsKey(%d)" k
  | Size -> "size"
  | IsEmpty -> "isEmpty"
  | Iterate -> "entrySet.iterator"
  | FirstKey -> "firstKey"
  | LastKey -> "lastKey"
  | SubMapIter (lo, hi) -> Printf.sprintf "subMap(%d,%d).iterator" lo hi
  | Put (k, v) -> Printf.sprintf "put(%d,%d)" k v
  | Remove k -> Printf.sprintf "remove(%d)" k

let apply (s : state) (o : op) : state * result =
  match o with
  | Get k -> (s, ROpt (IntMap.find_opt k s))
  | ContainsKey k -> (s, RBool (IntMap.mem k s))
  | Size -> (s, RInt (IntMap.cardinal s))
  | IsEmpty -> (s, RBool (IntMap.is_empty s))
  | Iterate -> (s, RList (IntMap.bindings s))
  | FirstKey -> (s, ROpt (Option.map fst (IntMap.min_binding_opt s)))
  | LastKey -> (s, ROpt (Option.map fst (IntMap.max_binding_opt s)))
  | SubMapIter (lo, hi) ->
      (s, RList (IntMap.bindings (IntMap.filter (fun k _ -> k >= lo && k < hi) s)))
  | Put (k, v) -> (IntMap.add k v s, ROpt (IntMap.find_opt k s))
  | Remove k -> (IntMap.remove k s, ROpt (IntMap.find_opt k s))

(* Two operations commute on [s] iff both execution orders produce the same
   final state and the same per-operation results. *)
let commutes s a b =
  let s1, ra1 = apply s a in
  let s1, rb1 = apply s1 b in
  let s2, rb2 = apply s b in
  let s2, ra2 = apply s2 a in
  IntMap.equal Int.equal s1 s2 && ra1 = ra2 && rb1 = rb2

(* ------------------------------------------------------------------ *)
(* The paper's conflict conditions (Tables 1 and 4), with the refinements
   brute force demands.                                                *)

let endpoint_changes s = function
  | Put (k, v) ->
      let adds = not (IntMap.mem k s) in
      let overwrites_diff =
        match IntMap.find_opt k s with Some v' -> v' <> v | None -> false
      in
      let first =
        adds
        && (match IntMap.min_binding_opt s with
           | None -> true
           | Some (mn, _) -> k < mn)
      in
      let last =
        adds
        && (match IntMap.max_binding_opt s with
           | None -> true
           | Some (mx, _) -> k > mx)
      in
      (first, last, adds, overwrites_diff)
  | Remove k ->
      let removes = IntMap.mem k s in
      let first =
        removes
        && match IntMap.min_binding_opt s with Some (mn, _) -> k = mn | None -> false
      in
      let last =
        removes
        && match IntMap.max_binding_opt s with Some (mx, _) -> k = mx | None -> false
      in
      (first, last, false, false)
  | _ -> (false, false, false, false)

let size_changes s = function
  | Put (k, _) -> not (IntMap.mem k s)
  | Remove k -> IntMap.mem k s
  | _ -> false

let key_of_write = function Put (k, _) -> Some k | Remove k -> Some k | _ -> None

(* [expected_conflict s r w]: the transcribed Table 1/4 condition for row
   operation [r] against write operation [w] on state [s].  Write rows have
   their own conditions (Table 1's lower half), since value-returning writes
   read their key and physically update the state. *)
let expected_conflict s r w =
  let wk = Option.get (key_of_write w) in
  let sizes = size_changes s w in
  let first_chg, last_chg, _, _ = endpoint_changes s w in
  let observable_change () =
    (* The write observably changes the map. *)
    match w with
    | Put (k, v) -> IntMap.find_opt k s <> Some v
    | Remove k -> IntMap.mem k s
    | _ -> false
  in
  match r with
  | ContainsKey k -> wk = k && sizes (* presence flips iff size changes *)
  | Get k -> wk = k && observable_change ()
  | Size -> sizes
  | IsEmpty ->
      let s', _ = apply s w in
      IntMap.is_empty s <> IntMap.is_empty s'
  | Iterate -> observable_change ()
  | FirstKey -> first_chg
  | LastKey -> last_chg
  | SubMapIter (lo, hi) -> wk >= lo && wk < hi && observable_change ()
  | Put (k, v1) -> (
      k = wk
      &&
      match w with
      | Put (_, v2) -> not (v1 = v2 && IntMap.find_opt k s = Some v1)
      | Remove _ -> true
      | _ -> false)
  | Remove k -> (
      k = wk
      &&
      match w with
      | Put _ -> true
      | Remove _ -> IntMap.mem k s
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* The lock discipline (Tables 2 and 5)                                *)

type lock =
  | LKey of int
  | LSize
  | LIsEmpty
  | LFirst
  | LLast
  | LRange of int * int (* lo <= k < hi; min_int/max_int = unbounded *)

(* Read locks taken when an operation executes (Tables 2 and 5). *)
let locks_taken (_s : state) = function
  | Get k | ContainsKey k -> [ LKey k ]
  | Size -> [ LSize ]
  | IsEmpty -> [ LIsEmpty ]
  | Iterate -> [ LSize; LRange (min_int, max_int); LFirst; LLast ]
  | FirstKey -> [ LFirst ]
  | LastKey -> [ LLast ]
  | SubMapIter (lo, hi) -> [ LRange (lo, hi) ]
  | Put (k, _) | Remove k -> [ LKey k ]

(* Commit-time conflict set of a write (Tables 2 and 5): the abstract state
   it invalidates. *)
let conflict_set (s : state) w =
  match key_of_write w with
  | None -> []
  | Some k ->
      let base = [ LKey k; LRange (k, k + 1) ] in
      let base = if size_changes s w then LSize :: base else base in
      let base =
        let s', _ = apply s w in
        if IntMap.is_empty s <> IntMap.is_empty s' then LIsEmpty :: base else base
      in
      let first_chg, last_chg, _, _ = endpoint_changes s w in
      let base = if first_chg then LFirst :: base else base in
      if last_chg then LLast :: base else base

let locks_overlap a b =
  match (a, b) with
  | LKey x, LKey y -> x = y
  | LRange (lo, hi), LRange (lo', hi') -> max lo lo' < min hi hi'
  | LRange (lo, hi), LKey k | LKey k, LRange (lo, hi) -> k >= lo && k < hi
  | LSize, LSize | LIsEmpty, LIsEmpty | LFirst, LFirst | LLast, LLast -> true
  | _ -> false

let locks_detect s r w =
  let rl = locks_taken s r in
  let ws = conflict_set s w in
  List.exists (fun l -> List.exists (locks_overlap l) ws) rl

(* ------------------------------------------------------------------ *)
(* Enumeration                                                         *)

let keys = [ 0; 1; 2 ]
let values = [ 10; 20 ]

let all_states =
  let choices = None :: List.map Option.some values in
  List.concat_map
    (fun v0 ->
      List.concat_map
        (fun v1 ->
          List.map
            (fun v2 ->
              List.fold_left2
                (fun m k v ->
                  match v with None -> m | Some v -> IntMap.add k v m)
                IntMap.empty keys [ v0; v1; v2 ])
            choices)
        choices)
    choices

let read_ops =
  List.concat
    [
      List.map (fun k -> Get k) keys;
      List.map (fun k -> ContainsKey k) keys;
      [ Size; IsEmpty; Iterate; FirstKey; LastKey ];
      [ SubMapIter (0, 2); SubMapIter (1, 3); SubMapIter (0, 3) ];
    ]

(* Rows of Table 1's lower half: writes also appear as rows, since
   value-returning writes read their key. *)
let row_ops =
  read_ops
  @ List.concat
      [
        List.concat_map (fun k -> List.map (fun v -> Put (k, v)) values) keys;
        List.map (fun k -> Remove k) keys;
      ]

let write_ops =
  List.concat
    [
      List.concat_map (fun k -> List.map (fun v -> Put (k, v)) values) keys;
      List.map (fun k -> Remove k) keys;
    ]

type verdict = {
  pair : string;
  cases : int;
  conflicts : int;
  condition_exact : bool; (* expected_conflict == not commutes, everywhere *)
  locks_sound : bool; (* conflict ==> lock overlap, everywhere *)
  locks_precise : int; (* lock overlaps without semantic conflict *)
}

let check_pair r w =
  let cases = ref 0 and conflicts = ref 0 and exact = ref true in
  let sound = ref true and imprecise = ref 0 in
  List.iter
    (fun s ->
      incr cases;
      let c = not (commutes s r w) in
      if c then incr conflicts;
      if expected_conflict s r w <> c then exact := false;
      let detected = locks_detect s r w in
      if c && not detected then sound := false;
      if detected && not c then incr imprecise)
    all_states;
  {
    pair = Printf.sprintf "%s vs %s" (name r) (name w);
    cases = !cases;
    conflicts = !conflicts;
    condition_exact = !exact;
    locks_sound = !sound;
    locks_precise = !imprecise;
  }

let check_all () =
  List.concat_map (fun r -> List.map (fun w -> check_pair r w) write_ops) row_ops

(* Read-only operations always commute (paper: read ops are omitted from the
   columns of Table 1). *)
let reads_commute () =
  List.for_all
    (fun a ->
      List.for_all
        (fun b -> List.for_all (fun s -> commutes s a b) all_states)
        read_ops)
    (List.filter (fun o -> not (is_write o)) read_ops)

(* ------------------------------------------------------------------ *)
(* Channel (queue) operations: Tables 7 and 8                          *)

type qop = QPut of int | QPoll | QPeek

let qname = function
  | QPut v -> Printf.sprintf "put(%d)" v
  | QPoll -> "poll"
  | QPeek -> "peek"

(* The paper's queue drops strict FIFO ordering from the abstract semantics
   (§3.3), so the state is a multiset and element identity is not
   observable: we compare outcomes by final multiset and by the null-ness
   pattern of results.  Takes establish their ordering physically (reduced
   isolation removes the element immediately), so take-vs-take needs no
   semantic conflict; the one remaining conflict is observed emptiness
   invalidated by a committing put (Tables 7/8). *)
let qapply q = function
  | QPut v -> (List.sort Int.compare (v :: q), `NonNull)
  | QPoll -> (
      match q with [] -> ([], `Null) | _ :: rest -> (rest, `NonNull))
  | QPeek -> (q, if q = [] then `Null else `NonNull)

let qcommutes q a b =
  let q1, ra1 = qapply q a in
  let q1, rb1 = qapply q1 b in
  let q2, rb2 = qapply q b in
  let q2, ra2 = qapply q2 a in
  List.length q1 = List.length q2 && ra1 = ra2 && rb1 = rb2

(* Table 7: peek/poll conflict with put iff they observed emptiness; put
   never conflicts with put. *)
let q_expected q a b =
  match (a, b) with QPeek, QPut _ | QPoll, QPut _ -> q = [] | _ -> false

let qstates = [ []; [ 1 ]; [ 1; 2 ] ]

let qcheck_all () =
  List.concat_map
    (fun a ->
      List.map
        (fun b ->
          let ok =
            List.for_all
              (fun q -> qcommutes q a b = not (q_expected q a b))
              qstates
          in
          (Printf.sprintf "%s vs %s" (qname a) (qname b), ok))
        [ QPut 3 ])
    [ QPeek; QPoll; QPut 9 ]

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let render_map_table ppf () =
  let rows = check_all () in
  Fmt.pf ppf "Tables 1/2 and 4/5 — conflict conditions and lock coverage@.";
  Fmt.pf ppf "(%d states x %d read ops x %d write ops)@." (List.length all_states)
    (List.length read_ops) (List.length write_ops);
  Fmt.pf ppf "%-44s %8s %10s %6s %6s@." "pair" "cases" "conflicts" "exact"
    "sound";
  List.iter
    (fun v ->
      Fmt.pf ppf "%-44s %8d %10d %6s %6s@." v.pair v.cases v.conflicts
        (if v.condition_exact then "yes" else "NO")
        (if v.locks_sound then "yes" else "NO"))
    rows;
  let all_exact = List.for_all (fun v -> v.condition_exact) rows in
  let all_sound = List.for_all (fun v -> v.locks_sound) rows in
  Fmt.pf ppf
    "summary: conditions exact everywhere: %b; lock discipline sound: %b@."
    all_exact all_sound
