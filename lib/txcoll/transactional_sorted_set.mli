(** TransactionalSortedSet: thin wrapper over {!Transactional_sorted_map}
    with unit values (paper §5.1). *)

module Make (TM : Tm_intf.TM_OPS) (M : Tm_intf.SORTED_MAP_OPS) : sig
  module Map : module type of Transactional_sorted_map.Make (TM) (M)

  type t = unit Map.t

  (** [splitters]/[tm_policy] as in
      {!Transactional_sorted_map.Make.create}. *)
  val create :
    ?splitters:M.key list ->
    ?isempty_policy:Map.isempty_policy ->
    ?tm_policy:string ->
    unit ->
    t

  val pinned_policy : t -> string option
  val mem : t -> M.key -> bool
  val add : t -> M.key -> bool
  val add_blind : t -> M.key -> unit
  val remove : t -> M.key -> bool
  val remove_blind : t -> M.key -> unit
  val size : t -> int
  val is_empty : t -> bool
  val min_elt : t -> M.key option
  val max_elt : t -> M.key option
  val fold : (M.key -> 'acc -> 'acc) -> t -> 'acc -> 'acc
  val iter : (M.key -> unit) -> t -> unit
  val to_list : t -> M.key list

  val fold_range :
    (M.key -> 'acc -> 'acc) ->
    t ->
    'acc ->
    lo:M.key option ->
    hi:M.key option ->
    'acc
end
