(** TransactionalQueue (paper §3.3): a transactional work queue with
    selectively reduced isolation, behind the [util.concurrent] Channel
    interface (put/take/poll/peek only — no size or random access).

    Isolation is reduced exactly where the paper reduces it: [take]/[poll]
    remove from the underlying queue immediately (so no other transaction
    can steal work that would be invalid if this transaction aborts) and an
    abort handler returns taken-but-unprocessed elements to the front;
    [put] defers to commit so speculative new work never leaks.  The only
    semantic conflict is observed emptiness invalidated by a committing put
    (Tables 7 and 8).

    Inside a snapshot read section ([TM.in_snapshot]), [peek] and
    [committed_length] resolve against a bounded multi-version chain of
    immutable queue images at the pinned stamp — lock-free and abort-free;
    [put]/[poll]/[take] raise [Invalid_argument] there.  Op-time takes are
    published to the chain when they happen, consistent with the queue's
    deliberately reduced isolation. *)

module Make (TM : Tm_intf.TM_OPS) (Q : Tm_intf.QUEUE_OPS) : sig
  type 'v t

  val create : ?tm_policy:string -> unit -> 'v t
  (** [tm_policy] pins the queue to one TM policy by name (see
      [Stm.Policy] and {!Transactional_map.Make.create}): validated here,
      enforced against the committing transaction's policy in every
      enqueueing commit's prepare phase. *)

  val wrap : ?tm_policy:string -> 'v Q.t -> 'v t

  val pinned_policy : 'v t -> string option
  (** The [tm_policy] the queue was created with, if any. *)

  val put : 'v t -> 'v -> unit
  (** Enqueue at commit time; discarded if the transaction aborts. *)

  val offer : 'v t -> 'v -> unit
  (** Alias of {!put} (the queue is unbounded, so offer always succeeds). *)

  val poll : 'v t -> 'v option
  (** Dequeue immediately (reduced isolation).  Falls back to the
      transaction's own deferred additions; a [None] result takes the empty
      lock, conflicting with any committing [put]. *)

  val take : 'v t -> 'v option
  (** Alias of {!poll} (non-blocking). *)

  val peek : 'v t -> 'v option
  (** Observe the head without consuming; only a [None] result conflicts. *)

  val committed_length : 'v t -> int
  (** Committed queue length — a debugging/statistics view, deliberately not
      part of the Channel interface; takes no locks. *)

  val snapshot_history_length : 'v t -> int
  (** Length of the multi-version image chain — reclamation probe: at most
      [TM.version_chain_bound] once the oldest snapshot-reader epoch has
      advanced past the excess versions. *)

  val holds_empty_lock : 'v t -> bool

  val outstanding_locks : 'v t -> int
  (** Total semantic lock registrations (empty lockers) currently held —
      must be 0 when no transaction is active (the chaos soak's leak
      probe). *)

  val dump_state : Format.formatter -> 'v t -> unit
  (** Live rendering of Table 9's state inventory (committed queue, shared
      emptyLockers, per-transaction addBuffer/removeBuffer). *)
end
