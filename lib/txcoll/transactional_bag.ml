(* TransactionalBag (multiset), derived through {!Derive}.

   State maps elements to multiplicities; a write is a multiplicity
   delta ([combine] sums).  [add] is blind — two transactions adding the
   same element commute and never conflict.  [remove_one] must observe
   the current count (can't go below zero), so it reads the key facet
   first: the read is the source of its conflicts, exactly the paper's
   commutativity table.  Multiplicity is the weight, so the functor
   derives size/isEmpty conflicts from net batch deltas. *)

module Make (TM : Tm_intf.TM_OPS) (K : Underlying.HASHED) = struct
  module Spec = struct
    type state = (K.t, int) Coll.Chain_hashmap.t
    type key = K.t
    type value = int (* multiplicity, always >= 1 in committed state *)
    type wop = int (* multiplicity delta *)

    let name = "TransactionalBag"
    let create () = Coll.Chain_hashmap.create ~hash:K.hash ~equal:K.equal ()
    let find s k = Coll.Chain_hashmap.find s k

    let apply s k d =
      let m = Option.value (Coll.Chain_hashmap.find s k) ~default:0 + d in
      if m <= 0 then Coll.Chain_hashmap.remove s k
      else Coll.Chain_hashmap.add s k m

    let fold f s acc = Coll.Chain_hashmap.fold f s acc
    let min_key _ ~excluded:_ = None
    let combine ~earlier ~later = earlier + later

    let view prior d =
      let m = Option.value prior ~default:0 + d in
      if m <= 0 then None else Some m

    let absorbing _ = false
    let weight = function Some m -> m | None -> 0
    let uses_size = true
    let uses_isempty = true
    let uses_first = false
    let compare_key = None
  end

  module D = Derive.Make (TM) (Spec)

  type t = D.t

  let policy_support = D.policy_support

  let create ?stripes ?tm_policy () =
    D.create ?stripes ~hash:K.hash ?tm_policy ()

  let add t x = D.write_blind t x 1
  let add_n t x n = if n > 0 then D.write_blind t x n
  let count t x = Option.value (D.find t x) ~default:0
  let mem t x = count t x > 0

  let remove_one t x =
    (* The [count] read takes the key lock, so the decision "was it
       present?" stays valid through commit.  Outside a transaction the
       read-then-write pair runs under the structure region for the same
       atomicity. *)
    let dec () = if count t x > 0 then (D.write_blind t x (-1); true) else false in
    if TM.in_txn () then dec () else TM.critical (D.sregion t) dec

  let size = D.size
  (* Total multiplicity (the committed weight sum), counting duplicates. *)

  let is_empty = D.is_empty
  let fold = D.fold
  let iter = D.iter
  let to_list t = fold (fun k m acc -> (k, m) :: acc) t []
  let pinned_policy = D.pinned_policy
  let outstanding_locks = D.outstanding_locks
  let stripe_count = D.stripe_count
end
