(** TransactionalBag: a multiset derived through {!Derive}.  [add]s of
    the same element commute (blind multiplicity deltas) and never
    conflict; {!val:remove_one} reads the element's count first and so
    conflicts exactly where the paper's commutativity table says it
    must. *)

module Make (TM : Tm_intf.TM_OPS) (K : Underlying.HASHED) : sig
  type t

  val policy_support : Tm_intf.policy_support
  val create : ?stripes:int -> ?tm_policy:string -> unit -> t

  val add : t -> K.t -> unit
  (** Blind: buffers a +1 multiplicity delta, takes no lock. *)

  val add_n : t -> K.t -> int -> unit
  (** [add_n t x n] adds [n] copies ([n <= 0] is a no-op). *)

  val count : t -> K.t -> int
  (** Multiplicity of [x] (takes its key lock in a transaction). *)

  val mem : t -> K.t -> bool

  val remove_one : t -> K.t -> bool
  (** Remove one copy if present; [true] on success.  Reads the count
      (key lock), so it conflicts with concurrent writers of [x]. *)

  val size : t -> int
  (** Total number of elements counting duplicates (sum of
      multiplicities). *)

  val is_empty : t -> bool
  val fold : (K.t -> int -> 'acc -> 'acc) -> t -> 'acc -> 'acc
  val iter : (K.t -> int -> unit) -> t -> unit
  val to_list : t -> (K.t * int) list
  val pinned_policy : t -> string option
  val outstanding_locks : t -> int
  val stripe_count : t -> int
end
