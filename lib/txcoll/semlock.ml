(* Semantic lock tables for one collection instance.

   Lock owners are top-level transactions (paper §3.1: "The owner of a lock
   is the top-level transaction at the time of the read operation").  All
   functions must be called inside the collection's [TM.critical] region,
   which provides the open-nested atomicity; the tables themselves therefore
   need no internal synchronisation.

   Membership structures are keyed by [TM.txn_id] — which coincides with
   [TM.same_txn] equality on both TM implementations — so acquiring,
   releasing and re-checking a lock are O(1) instead of list scans, and
   [any_other_writer] is O(1) via a maintained per-transaction write-lock
   count instead of a full-table fold.

   Conflict detection is optimistic (paper §5.1): writers examine these
   tables at commit time and abort conflicting readers through
   program-directed abort.  [remote_abort] returning [false] means the
   reader already passed its commit point and thereby serialised before the
   committing writer, which is not a conflict. *)

module Make (TM : Tm_intf.TM_OPS) = struct
  type 'k range = { lo : 'k option; hi : 'k option }
  (* Half-open interval [lo, hi); [None] = unbounded on that side. *)

  type lockers = (int, TM.txn) Hashtbl.t
  (* txn_id -> owner; Hashtbl.replace makes acquisition idempotent. *)

  type key_entry = {
    readers : lockers;
    mutable writer : TM.txn option;
        (* Exclusive writer, used only by the pessimistic/undo-logging
           variants (§5.1); the optimistic wrapper never sets it. *)
  }

  type 'k t = {
    key_lockers : ('k, key_entry) Coll.Chain_hashmap.t;
    writers : (int, int) Hashtbl.t;
        (* txn_id -> number of key write-locks held: [any_other_writer]
           in O(1) *)
    size_lockers : lockers;
    isempty_lockers : lockers;
    first_lockers : lockers;
    last_lockers : lockers;
    range_lockers : (int, 'k range list * TM.txn) Hashtbl.t;
        (* txn_id -> ranges read (newest first, duplicates kept) *)
    mutable range_count : int; (* total (range, owner) pairs *)
  }

  let create () =
    {
      key_lockers = Coll.Chain_hashmap.create ();
      writers = Hashtbl.create 8;
      size_lockers = Hashtbl.create 8;
      isempty_lockers = Hashtbl.create 8;
      first_lockers = Hashtbl.create 8;
      last_lockers = Hashtbl.create 8;
      range_lockers = Hashtbl.create 8;
      range_count = 0;
    }

  let add_locker tbl txn = Hashtbl.replace tbl (TM.txn_id txn) txn
  let drop_locker tbl txn = Hashtbl.remove tbl (TM.txn_id txn)
  let locker_mem tbl txn = Hashtbl.mem tbl (TM.txn_id txn)
  let lockers_list tbl = Hashtbl.fold (fun _ txn acc -> txn :: acc) tbl []

  let writer_incr t txn =
    let id = TM.txn_id txn in
    Hashtbl.replace t.writers id
      (1 + Option.value (Hashtbl.find_opt t.writers id) ~default:0)

  let writer_decr t txn =
    let id = TM.txn_id txn in
    match Hashtbl.find_opt t.writers id with
    | None -> ()
    | Some 1 -> Hashtbl.remove t.writers id
    | Some n -> Hashtbl.replace t.writers id (n - 1)

  (* -------------------- acquisition (read operations) ------------------ *)

  let entry_for t k =
    match Coll.Chain_hashmap.find t.key_lockers k with
    | Some e -> e
    | None ->
        let e = { readers = Hashtbl.create 4; writer = None } in
        Coll.Chain_hashmap.add t.key_lockers k e;
        e

  let lock_key t txn k =
    let e = entry_for t k in
    add_locker e.readers txn

  let lock_key_write t txn k =
    let e = entry_for t k in
    (match e.writer with
    | Some w when TM.same_txn w txn -> ()
    | Some w ->
        writer_decr t w;
        writer_incr t txn
    | None -> writer_incr t txn);
    e.writer <- Some txn

  let key_readers t k =
    match Coll.Chain_hashmap.find t.key_lockers k with
    | None -> []
    | Some e -> lockers_list e.readers

  let key_writer t k =
    match Coll.Chain_hashmap.find t.key_lockers k with
    | None -> None
    | Some e -> e.writer

  let any_other_writer t ~self =
    let n = Hashtbl.length t.writers in
    n > 1 || (n = 1 && not (Hashtbl.mem t.writers (TM.txn_id self)))

  let lock_size t txn = add_locker t.size_lockers txn
  let lock_isempty t txn = add_locker t.isempty_lockers txn
  let lock_first t txn = add_locker t.first_lockers txn
  let lock_last t txn = add_locker t.last_lockers txn

  let lock_range t txn range =
    let id = TM.txn_id txn in
    let ranges =
      match Hashtbl.find_opt t.range_lockers id with
      | None -> []
      | Some (rs, _) -> rs
    in
    Hashtbl.replace t.range_lockers id (range :: ranges, txn);
    t.range_count <- t.range_count + 1

  (* -------------------- release (commit/abort handlers) ---------------- *)

  let release_key t txn k =
    match Coll.Chain_hashmap.find t.key_lockers k with
    | None -> ()
    | Some e ->
        drop_locker e.readers txn;
        (match e.writer with
        | Some w when TM.same_txn w txn ->
            writer_decr t w;
            e.writer <- None
        | _ -> ());
        if Hashtbl.length e.readers = 0 && e.writer = None then
          Coll.Chain_hashmap.remove t.key_lockers k

  let release_all t txn ~keys =
    List.iter (release_key t txn) keys;
    drop_locker t.size_lockers txn;
    drop_locker t.isempty_lockers txn;
    drop_locker t.first_lockers txn;
    drop_locker t.last_lockers txn;
    let id = TM.txn_id txn in
    (match Hashtbl.find_opt t.range_lockers id with
    | None -> ()
    | Some (rs, _) ->
        t.range_count <- t.range_count - List.length rs;
        Hashtbl.remove t.range_lockers id)

  (* -------------------- conflict detection (write commit) -------------- *)

  let abort_other ~self owner =
    if not (TM.same_txn self owner) then ignore (TM.remote_abort owner)

  let abort_others ~self tbl = Hashtbl.iter (fun _ owner -> abort_other ~self owner) tbl

  let conflict_key t ~self k =
    match Coll.Chain_hashmap.find t.key_lockers k with
    | None -> ()
    | Some e ->
        abort_others ~self e.readers;
        (match e.writer with Some w -> abort_other ~self w | None -> ())

  let conflict_size t ~self = abort_others ~self t.size_lockers
  let conflict_isempty t ~self = abort_others ~self t.isempty_lockers
  let conflict_first t ~self = abort_others ~self t.first_lockers
  let conflict_last t ~self = abort_others ~self t.last_lockers

  let range_contains compare { lo; hi } k =
    (match lo with None -> true | Some b -> compare k b >= 0)
    && match hi with None -> true | Some b -> compare k b < 0

  let conflict_range t ~self ~compare k =
    Hashtbl.iter
      (fun _ (ranges, owner) ->
        if
          (not (TM.same_txn self owner))
          && List.exists (fun r -> range_contains compare r k) ranges
        then ignore (TM.remote_abort owner))
      t.range_lockers

  (* -------------------- introspection (tests, Table 2/5 traces) -------- *)

  let key_locked_by t txn k =
    match Coll.Chain_hashmap.find t.key_lockers k with
    | None -> false
    | Some e -> (
        locker_mem e.readers txn
        || match e.writer with Some w -> TM.same_txn w txn | None -> false)

  let size_locked_by t txn = locker_mem t.size_lockers txn
  let isempty_locked_by t txn = locker_mem t.isempty_lockers txn
  let first_locked_by t txn = locker_mem t.first_lockers txn
  let last_locked_by t txn = locker_mem t.last_lockers txn
  let range_locked_by t txn = Hashtbl.mem t.range_lockers (TM.txn_id txn)

  (* Entry counts for state dumps (the tables themselves are abstract). *)
  let key_entry_count t = Coll.Chain_hashmap.size t.key_lockers
  let size_locker_count t = Hashtbl.length t.size_lockers
  let isempty_locker_count t = Hashtbl.length t.isempty_lockers
  let first_locker_count t = Hashtbl.length t.first_lockers
  let last_locker_count t = Hashtbl.length t.last_lockers
  let range_locker_count t = t.range_count

  let total_lockers t =
    Coll.Chain_hashmap.fold
      (fun _ e acc ->
        acc + Hashtbl.length e.readers
        + match e.writer with Some _ -> 1 | None -> 0)
      t.key_lockers 0
    + Hashtbl.length t.size_lockers
    + Hashtbl.length t.isempty_lockers
    + Hashtbl.length t.first_lockers
    + Hashtbl.length t.last_lockers
    + t.range_count
end
