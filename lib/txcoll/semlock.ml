(* Semantic lock tables for one collection instance, sharded into K
   cache-padded stripes.

   Lock owners are top-level transactions (paper §3.1: "The owner of a lock
   is the top-level transaction at the time of the read operation").

   Partitioning (scalability of the semantic layer itself): per-key state —
   reader/writer entries keyed by the collection key — lives in a stripe
   chosen by the table's partition function, each stripe behind its own
   [TM.critical] region, so operations and commits touching disjoint keys
   of the same collection never contend.  Two partition modes exist:

   - [Hashed]: stripe [hash key mod K].  Used by the unordered map; range
     locks make no sense per-stripe under a hash (a range overlaps every
     stripe), so they live in the structure stripe as before.
   - [Intervals]: B ordered intervals cut by a sorted splitter array
     (interval i = [s_{i-1}, s_i), unbounded at the edges); the stripe of
     [k] is found by binary search.  Because intervals respect key order,
     a range lock is registered in exactly the stripes its span overlaps
     ([interval_span]), and [conflict_range k] needs to consult only the
     stripe owning [k] — any range containing [k] necessarily overlaps
     [k]'s interval and is registered there.  Per-stripe registration
     stores the *uncut* range in each overlapped stripe; coalescing is
     per-stripe, and merging only touching half-open ranges is exact
     (the merge is the union), so stripe-local verdicts equal the verdict
     of the raw fragment list.

   Whole-structure state — size/isEmpty/first/last lockers, and range
   locks in hashed mode — lives in a dedicated structure stripe behind
   [struct_region].  Deadlock freedom: the structure region is created
   first, so its rid is the lowest of the collection's regions and stripe
   rids ascend with stripe index; operations nest structure-then-stripe
   criticals in ascending order and commits pre-acquire their rid-sorted
   region plan, so every acquisition order is ascending.

   Synchronisation discipline: per-key functions ([lock_key],
   [conflict_key], [release_key], ...) require the caller to hold
   [region_of_key t k]; [lock_range]/[release_ranges_in_stripe] require
   the overlapped stripe regions (interval mode) or [struct_region]
   (hashed mode); [conflict_range t k] requires [region_of_key t k] in
   interval mode and [struct_region] in hashed mode; structure functions
   ([lock_size], [release_structure], ...) require [struct_region t].
   [release_all] and the whole-table introspection helpers synchronise
   internally (regions are reentrant, so calling them with regions held is
   fine).

   Membership structures are keyed by [TM.txn_id] — which coincides with
   [TM.same_txn] equality on both TM implementations — so acquiring,
   releasing and re-checking a lock are O(1) instead of list scans, and
   [any_other_writer] is O(1) per stripe via a maintained per-transaction
   write-lock count.  Key write locks track *every* pending writer (a
   lockers table, not a single slot): a second writer registering on the
   same key must not displace the first, or the first's write-write
   conflict would be lost at commit time.  The commit-time conflict checks
   iterate the tables directly and allocate nothing.

   Conflict detection is optimistic (paper §5.1): writers examine these
   tables at commit time and abort conflicting readers (and conflicting
   pending writers) through program-directed abort.  [remote_abort]
   returning [false] means the victim already passed its commit point and
   thereby serialised before the committing writer, which is not a
   conflict. *)

module Make (TM : Tm_intf.TM_OPS) = struct
  type 'k range = { lo : 'k option; hi : 'k option }
  (* Half-open interval [lo, hi); [None] = unbounded on that side. *)

  type lockers = (int, TM.txn) Hashtbl.t
  (* txn_id -> owner; Hashtbl.replace makes acquisition idempotent. *)

  type key_entry = {
    readers : lockers;
    writers : lockers;
        (* Pending writers, used only by the pessimistic/undo-logging
           variants (§5.1); the optimistic wrapper never writes here.
           Plural: concurrent writers of the same key must all stay
           registered so each one's commit conflicts with the others. *)
  }

  type 'k stripe = {
    st_region : TM.region;
    key_lockers : ('k, key_entry) Coll.Chain_hashmap.t;
    st_writers : (int, int) Hashtbl.t;
        (* txn_id -> number of key write-locks held in this stripe *)
    st_ranges : (int, 'k range list * TM.txn) Hashtbl.t;
        (* Interval mode only: txn_id -> coalesced ranges overlapping this
           stripe's interval (hashed mode keeps ranges in the structure
           stripe). *)
    mutable st_range_count : int; (* total (range, owner) pairs here *)
    (* Pad the hot fields apart: stripes sit in one array and are locked
       from different domains, so without padding two stripes share a
       cache line and "disjoint" critical sections still ping-pong. *)
    mutable st_pad0 : int;
    mutable st_pad1 : int;
    mutable st_pad2 : int;
    mutable st_pad3 : int;
    mutable st_pad4 : int;
  }

  type 'k partition =
    | Hashed of ('k -> int)
    | Intervals of { splitters : 'k array; cmp : 'k -> 'k -> int }
        (* [splitters] sorted ascending, no duplicates; B = len + 1
           intervals: interval 0 = (-inf, s0), interval i = [s_{i-1}, s_i),
           interval B-1 = [s_{B-2}, +inf). *)

  type 'k t = {
    stripes : 'k stripe array;
    partition : 'k partition;
    sregion : TM.region;
        (* structure stripe: size/isEmpty/first/last (+ hashed-mode range)
           locks *)
    size_lockers : lockers;
    isempty_lockers : lockers;
    first_lockers : lockers;
    last_lockers : lockers;
    range_lockers : (int, 'k range list * TM.txn) Hashtbl.t;
        (* hashed mode: txn_id -> pairwise non-touching ranges, coalesced
           on insertion *)
    mutable range_count : int; (* total (range, owner) pairs, hashed mode *)
  }

  let max_stripes = 62
  (* Collection wrappers plan commit regions with an int bitmask. *)

  let make_stripe region =
    {
      st_region = region;
      key_lockers = Coll.Chain_hashmap.create ();
      st_writers = Hashtbl.create 8;
      st_ranges = Hashtbl.create 8;
      st_range_count = 0;
      st_pad0 = 0;
      st_pad1 = 0;
      st_pad2 = 0;
      st_pad3 = 0;
      st_pad4 = 0;
    }

  (* The structure region is created first so its rid is the lowest of
     the collection; when there is a single stripe it shares the structure
     region, making the unsharded instance behave exactly like the
     historical one-region table. *)
  let build partition n =
    let sregion = TM.new_region () in
    let stripes =
      if n = 1 then [| make_stripe sregion |]
      else Array.init n (fun _ -> make_stripe (TM.new_region ()))
    in
    {
      stripes;
      partition;
      sregion;
      size_lockers = Hashtbl.create 8;
      isempty_lockers = Hashtbl.create 8;
      first_lockers = Hashtbl.create 8;
      last_lockers = Hashtbl.create 8;
      range_lockers = Hashtbl.create 8;
      range_count = 0;
    }

  let create ?(stripes = 1) ?(hash = Hashtbl.hash) () =
    let k = max 1 (min stripes max_stripes) in
    build (Hashed hash) k

  (* Interval-partitioned table: [splitters] (any order, duplicates fine)
     is sorted, deduplicated and clamped to [max_stripes - 1] cut points. *)
  let create_intervals ~splitters ~compare () =
    let sorted = Array.copy splitters in
    Array.sort compare sorted;
    let dedup =
      Array.of_list
        (Array.fold_right
           (fun s acc ->
             match acc with
             | s' :: _ when compare s s' = 0 -> acc
             | _ -> s :: acc)
           sorted [])
    in
    let dedup =
      if Array.length dedup > max_stripes - 1 then Array.sub dedup 0 (max_stripes - 1)
      else dedup
    in
    build (Intervals { splitters = dedup; cmp = compare }) (Array.length dedup + 1)

  (* -------------------- stripe geometry -------------------------------- *)

  let stripe_count t = Array.length t.stripes
  let struct_region t = t.sregion

  (* Number of splitters [pred]-related to the probe: binary search over the
     sorted splitter array. *)
  let count_splitters pred splitters =
    let rec go lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if pred splitters.(mid) then go (mid + 1) hi else go lo mid
    in
    go 0 (Array.length splitters)

  let stripe_index t k =
    match t.partition with
    | Hashed hash -> hash k land max_int mod Array.length t.stripes
    | Intervals { splitters; cmp } ->
        (* interval index = #{ s | s <= k } *)
        count_splitters (fun s -> cmp s k <= 0) splitters

  let stripe_region t i = t.stripes.(i).st_region
  let region_of_key t k = (t.stripes.(stripe_index t k)).st_region

  (* Inclusive stripe span overlapped by the half-open range [lo, hi).
     Hashed mode destroys order, so every stripe is overlapped.  Interval
     mode: the upper index counts splitters *strictly below* [hi], so a
     range ending exactly on a splitter stays inside the interval below
     it.  Degenerate (empty) ranges clamp to a single stripe. *)
  let interval_span t ~lo ~hi =
    match t.partition with
    | Hashed _ -> (0, Array.length t.stripes - 1)
    | Intervals { splitters; cmp } ->
        let ilo =
          match lo with
          | None -> 0
          | Some l -> count_splitters (fun s -> cmp s l <= 0) splitters
        in
        let ihi =
          match hi with
          | None -> Array.length t.stripes - 1
          | Some h -> count_splitters (fun s -> cmp s h < 0) splitters
        in
        (ilo, max ilo ihi)

  (* Nested criticals over the structure region then every stripe region in
     ascending index (= ascending rid) order: whole-table operations
     (enumeration, introspection) exclude all concurrent stripe activity. *)
  let critical_all t f =
    let n = Array.length t.stripes in
    let rec go i =
      if i = n then f () else TM.critical t.stripes.(i).st_region (fun () -> go (i + 1))
    in
    TM.critical t.sregion (fun () -> go 0)

  let add_locker tbl txn = Hashtbl.replace tbl (TM.txn_id txn) txn
  let drop_locker tbl txn = Hashtbl.remove tbl (TM.txn_id txn)
  let locker_mem tbl txn = Hashtbl.mem tbl (TM.txn_id txn)

  let writer_incr st txn =
    let id = TM.txn_id txn in
    Hashtbl.replace st.st_writers id
      (1 + Option.value (Hashtbl.find_opt st.st_writers id) ~default:0)

  let writer_decr st txn =
    let id = TM.txn_id txn in
    match Hashtbl.find_opt st.st_writers id with
    | None -> ()
    | Some 1 -> Hashtbl.remove st.st_writers id
    | Some n -> Hashtbl.replace st.st_writers id (n - 1)

  (* -------------------- acquisition (read operations) ------------------ *)
  (* Per-key: caller holds [region_of_key t k].  Structure: caller holds
     [struct_region t]. *)

  let entry_for st k =
    match Coll.Chain_hashmap.find st.key_lockers k with
    | Some e -> e
    | None ->
        let e = { readers = Hashtbl.create 4; writers = Hashtbl.create 2 } in
        Coll.Chain_hashmap.add st.key_lockers k e;
        e

  let lock_key t txn k =
    let e = entry_for t.stripes.(stripe_index t k) k in
    add_locker e.readers txn

  (* Register [txn] as a pending writer of [k].  Idempotent per
     transaction; every distinct writer stays registered, so a later
     writer's commit still conflicts with an earlier one. *)
  let lock_key_write t txn k =
    let st = t.stripes.(stripe_index t k) in
    let e = entry_for st k in
    if not (locker_mem e.writers txn) then begin
      add_locker e.writers txn;
      writer_incr st txn
    end

  (* Allocation-free reader probe for the pessimistic write policies: does
     any transaction other than [self] hold a read lock on [k]? *)
  let key_has_other_reader t ~self k =
    match Coll.Chain_hashmap.find t.stripes.(stripe_index t k).key_lockers k with
    | None -> false
    | Some e -> (
        try
          Hashtbl.iter
            (fun _ owner -> if not (TM.same_txn self owner) then raise Exit)
            e.readers;
          false
        with Exit -> true)

  (* Some registered writer of [k], if any (introspection; when several
     writers are pending the choice is arbitrary — callers that need
     "a writer other than me" must use [key_has_foreign_writer]). *)
  let key_writer t k =
    match Coll.Chain_hashmap.find t.stripes.(stripe_index t k).key_lockers k with
    | None -> None
    | Some e -> Hashtbl.fold (fun _ w _ -> Some w) e.writers None

  let key_has_foreign_writer t ~self k =
    match Coll.Chain_hashmap.find t.stripes.(stripe_index t k).key_lockers k with
    | None -> false
    | Some e -> (
        try
          Hashtbl.iter
            (fun _ owner -> if not (TM.same_txn self owner) then raise Exit)
            e.writers;
          false
        with Exit -> true)

  let any_other_writer t ~self =
    let id = TM.txn_id self in
    let other st =
      let n = Hashtbl.length st.st_writers in
      n > 1 || (n = 1 && not (Hashtbl.mem st.st_writers id))
    in
    let rec go i = i < Array.length t.stripes && (other t.stripes.(i) || go (i + 1)) in
    go 0

  let lock_size t txn = add_locker t.size_lockers txn
  let lock_isempty t txn = add_locker t.isempty_lockers txn
  let lock_first t txn = add_locker t.first_lockers txn
  let lock_last t txn = add_locker t.last_lockers txn

  (* Range insertion coalesces: the per-transaction range list is kept
     pairwise non-touching, so a cursor sweeping an interval in small
     increments holds one growing range instead of an unbounded pile of
     overlapping fragments.  One filter pass is complete: existing ranges
     are mutually separated by gaps, so the merged range can only absorb
     ranges the *new* range already touches.  Merging touching half-open
     ranges is exact (the merge equals the union), so coalescing never
     changes which keys a transaction's ranges cover. *)
  let touches compare a b =
    (* half-open ranges union into one interval iff max lo <= min hi *)
    let lo_le_hi lo hi =
      match (lo, hi) with
      | None, _ | _, None -> true
      | Some l, Some h -> compare l h <= 0
    in
    lo_le_hi a.lo b.hi && lo_le_hi b.lo a.hi

  let merge_ranges compare a b =
    let lo =
      match (a.lo, b.lo) with
      | None, _ | _, None -> None
      | Some x, Some y -> Some (if compare x y <= 0 then x else y)
    in
    let hi =
      match (a.hi, b.hi) with
      | None, _ | _, None -> None
      | Some x, Some y -> Some (if compare x y >= 0 then x else y)
    in
    { lo; hi }

  (* Coalescing insert into one txn_id-keyed range table; returns the
     entry-count delta. *)
  let insert_range_coalesced ~compare tbl id txn range =
    let existing =
      match Hashtbl.find_opt tbl id with None -> [] | Some (rs, _) -> rs
    in
    let merged = ref range in
    let kept =
      List.filter
        (fun r ->
          if touches compare r !merged then begin
            merged := merge_ranges compare r !merged;
            false
          end
          else true)
        existing
    in
    let rs = !merged :: kept in
    Hashtbl.replace tbl id (rs, txn);
    List.length rs - List.length existing

  (* Hashed mode: caller holds [struct_region].  Interval mode: caller
     holds the stripe regions of [interval_span t ~lo:range.lo
     ~hi:range.hi]; the uncut range is registered in each overlapped
     stripe. *)
  let lock_range t txn ~compare range =
    let id = TM.txn_id txn in
    match t.partition with
    | Hashed _ ->
        t.range_count <-
          t.range_count + insert_range_coalesced ~compare t.range_lockers id txn range
    | Intervals _ ->
        let ilo, ihi = interval_span t ~lo:range.lo ~hi:range.hi in
        for i = ilo to ihi do
          let st = t.stripes.(i) in
          st.st_range_count <-
            st.st_range_count + insert_range_coalesced ~compare st.st_ranges id txn range
        done

  (* -------------------- release (commit/abort handlers) ---------------- *)

  let release_key t txn k =
    let st = t.stripes.(stripe_index t k) in
    match Coll.Chain_hashmap.find st.key_lockers k with
    | None -> ()
    | Some e ->
        drop_locker e.readers txn;
        if locker_mem e.writers txn then begin
          drop_locker e.writers txn;
          writer_decr st txn
        end;
        if Hashtbl.length e.readers = 0 && Hashtbl.length e.writers = 0 then
          Coll.Chain_hashmap.remove st.key_lockers k

  (* Caller holds [stripe_region t i]. *)
  let release_ranges_in_stripe t txn i =
    let st = t.stripes.(i) in
    let id = TM.txn_id txn in
    match Hashtbl.find_opt st.st_ranges id with
    | None -> ()
    | Some (rs, _) ->
        st.st_range_count <- st.st_range_count - List.length rs;
        Hashtbl.remove st.st_ranges id

  (* Caller holds [struct_region]. *)
  let release_structure t txn =
    drop_locker t.size_lockers txn;
    drop_locker t.isempty_lockers txn;
    drop_locker t.first_lockers txn;
    drop_locker t.last_lockers txn;
    let id = TM.txn_id txn in
    match Hashtbl.find_opt t.range_lockers id with
    | None -> ()
    | Some (rs, _) ->
        t.range_count <- t.range_count - List.length rs;
        Hashtbl.remove t.range_lockers id

  (* Internally synchronised: sequential (non-nested) criticals per touched
     stripe, then the structure region — each reentrant if already held. *)
  let release_all t txn ~keys =
    List.iter
      (fun k -> TM.critical (region_of_key t k) (fun () -> release_key t txn k))
      keys;
    Array.iteri
      (fun i st ->
        if st.st_range_count > 0 then
          TM.critical st.st_region (fun () -> release_ranges_in_stripe t txn i))
      t.stripes;
    TM.critical t.sregion (fun () -> release_structure t txn)

  (* -------------------- conflict detection (write commit) -------------- *)

  let abort_other ~self owner =
    if not (TM.same_txn self owner) then ignore (TM.remote_abort owner)

  let abort_others ~self tbl = Hashtbl.iter (fun _ owner -> abort_other ~self owner) tbl

  let conflict_key t ~self k =
    match Coll.Chain_hashmap.find t.stripes.(stripe_index t k).key_lockers k with
    | None -> ()
    | Some e ->
        abort_others ~self e.readers;
        abort_others ~self e.writers

  let conflict_size t ~self = abort_others ~self t.size_lockers
  let conflict_isempty t ~self = abort_others ~self t.isempty_lockers
  let conflict_first t ~self = abort_others ~self t.first_lockers
  let conflict_last t ~self = abort_others ~self t.last_lockers

  let range_contains compare { lo; hi } k =
    (match lo with None -> true | Some b -> compare k b >= 0)
    && match hi with None -> true | Some b -> compare k b < 0

  (* Hashed mode scans the structure table (caller holds [struct_region]).
     Interval mode consults only [k]'s stripe (caller holds
     [region_of_key t k]): any range containing [k] overlaps [k]'s
     interval and is registered there. *)
  let conflict_range t ~self ~compare k =
    let scan tbl =
      Hashtbl.iter
        (fun _ (ranges, owner) ->
          if
            (not (TM.same_txn self owner))
            && List.exists (fun r -> range_contains compare r k) ranges
          then ignore (TM.remote_abort owner))
        tbl
    in
    match t.partition with
    | Hashed _ -> scan t.range_lockers
    | Intervals _ -> scan t.stripes.(stripe_index t k).st_ranges

  (* -------------------- introspection (tests, Table 2/5 traces) -------- *)

  let key_locked_by t txn k =
    match Coll.Chain_hashmap.find t.stripes.(stripe_index t k).key_lockers k with
    | None -> false
    | Some e -> locker_mem e.readers txn || locker_mem e.writers txn

  let size_locked_by t txn = locker_mem t.size_lockers txn
  let isempty_locked_by t txn = locker_mem t.isempty_lockers txn
  let first_locked_by t txn = locker_mem t.first_lockers txn
  let last_locked_by t txn = locker_mem t.last_lockers txn

  let range_locked_by t txn =
    let id = TM.txn_id txn in
    Hashtbl.mem t.range_lockers id
    || Array.exists (fun st -> Hashtbl.mem st.st_ranges id) t.stripes

  (* Does some range lock held by [txn] cover [k]?  Exact under
     coalescing: merged ranges equal the union of the inserted ones. *)
  let range_covered_by t txn ~compare k =
    let id = TM.txn_id txn in
    let covered tbl =
      match Hashtbl.find_opt tbl id with
      | None -> false
      | Some (rs, _) -> List.exists (fun r -> range_contains compare r k) rs
    in
    covered t.range_lockers
    ||
    match t.partition with
    | Hashed _ -> false
    | Intervals _ -> covered t.stripes.(stripe_index t k).st_ranges

  (* Entry counts for state dumps (the tables themselves are abstract). *)
  let key_entry_count t =
    Array.fold_left
      (fun acc st -> acc + Coll.Chain_hashmap.size st.key_lockers)
      0 t.stripes

  let size_locker_count t = Hashtbl.length t.size_lockers
  let isempty_locker_count t = Hashtbl.length t.isempty_lockers
  let first_locker_count t = Hashtbl.length t.first_lockers
  let last_locker_count t = Hashtbl.length t.last_lockers

  let range_locker_count t =
    Array.fold_left (fun acc st -> acc + st.st_range_count) t.range_count t.stripes

  let total_lockers t =
    Array.fold_left
      (fun acc st ->
        Coll.Chain_hashmap.fold
          (fun _ e acc -> acc + Hashtbl.length e.readers + Hashtbl.length e.writers)
          st.key_lockers acc
        + st.st_range_count)
      0 t.stripes
    + Hashtbl.length t.size_lockers
    + Hashtbl.length t.isempty_lockers
    + Hashtbl.length t.first_lockers
    + Hashtbl.length t.last_lockers
    + t.range_count
end
