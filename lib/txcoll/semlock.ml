(* Semantic lock tables for one collection instance, sharded into K
   cache-padded key stripes.

   Lock owners are top-level transactions (paper §3.1: "The owner of a lock
   is the top-level transaction at the time of the read operation").

   Striping (scalability of the semantic layer itself): per-key state —
   reader/writer entries keyed by the collection key — lives in stripe
   [hash key mod K], each stripe behind its own [TM.critical] region, so
   operations and commits touching disjoint keys of the same collection
   never contend.  Whole-structure state — size/isEmpty/first/last and
   range locks, which any key mutation may conflict with — lives in a
   dedicated structure stripe behind [struct_region].  Deadlock freedom:
   the structure region is created first, so its rid is the lowest of the
   collection's regions and stripe rids ascend with stripe index;
   operations nest structure-then-stripe criticals and commits pre-acquire
   their rid-sorted region plan, so every acquisition order is ascending.

   Synchronisation discipline: per-key functions ([lock_key],
   [conflict_key], [release_key], ...) require the caller to hold
   [region_of_key t k]; structure functions ([lock_size], [conflict_range],
   [release_structure], ...) require [struct_region t].  [release_all] and
   the whole-table introspection helpers synchronise internally (regions
   are reentrant, so calling them with regions held is fine).

   Membership structures are keyed by [TM.txn_id] — which coincides with
   [TM.same_txn] equality on both TM implementations — so acquiring,
   releasing and re-checking a lock are O(1) instead of list scans, and
   [any_other_writer] is O(1) per stripe via a maintained per-transaction
   write-lock count.  The commit-time conflict checks iterate the tables
   directly and allocate nothing.

   Conflict detection is optimistic (paper §5.1): writers examine these
   tables at commit time and abort conflicting readers through
   program-directed abort.  [remote_abort] returning [false] means the
   reader already passed its commit point and thereby serialised before the
   committing writer, which is not a conflict. *)

module Make (TM : Tm_intf.TM_OPS) = struct
  type 'k range = { lo : 'k option; hi : 'k option }
  (* Half-open interval [lo, hi); [None] = unbounded on that side. *)

  type lockers = (int, TM.txn) Hashtbl.t
  (* txn_id -> owner; Hashtbl.replace makes acquisition idempotent. *)

  type key_entry = {
    readers : lockers;
    mutable writer : TM.txn option;
        (* Exclusive writer, used only by the pessimistic/undo-logging
           variants (§5.1); the optimistic wrapper never sets it. *)
  }

  type 'k stripe = {
    st_region : TM.region;
    key_lockers : ('k, key_entry) Coll.Chain_hashmap.t;
    st_writers : (int, int) Hashtbl.t;
        (* txn_id -> number of key write-locks held in this stripe *)
    (* Pad the hot fields apart: stripes sit in one array and are locked
       from different domains, so without padding two stripes share a
       cache line and "disjoint" critical sections still ping-pong. *)
    mutable st_pad0 : int;
    mutable st_pad1 : int;
    mutable st_pad2 : int;
    mutable st_pad3 : int;
    mutable st_pad4 : int;
  }

  type 'k t = {
    stripes : 'k stripe array;
    hash : 'k -> int;
    sregion : TM.region;
        (* structure stripe: size/isEmpty/first/last/range locks *)
    size_lockers : lockers;
    isempty_lockers : lockers;
    first_lockers : lockers;
    last_lockers : lockers;
    range_lockers : (int, 'k range list * TM.txn) Hashtbl.t;
        (* txn_id -> pairwise non-touching ranges, coalesced on insertion *)
    mutable range_count : int; (* total (range, owner) pairs *)
  }

  let max_stripes = 62
  (* Collection wrappers plan commit regions with an int bitmask. *)

  let make_stripe region =
    {
      st_region = region;
      key_lockers = Coll.Chain_hashmap.create ();
      st_writers = Hashtbl.create 8;
      st_pad0 = 0;
      st_pad1 = 0;
      st_pad2 = 0;
      st_pad3 = 0;
      st_pad4 = 0;
    }

  let create ?(stripes = 1) ?(hash = Hashtbl.hash) () =
    let k = max 1 (min stripes max_stripes) in
    (* The structure region is created first so its rid is the lowest of
       the collection; when K = 1 the single key stripe shares it, making
       the unsharded instance behave exactly like the historical
       one-region table. *)
    let sregion = TM.new_region () in
    let stripes =
      if k = 1 then [| make_stripe sregion |]
      else Array.init k (fun _ -> make_stripe (TM.new_region ()))
    in
    {
      stripes;
      hash;
      sregion;
      size_lockers = Hashtbl.create 8;
      isempty_lockers = Hashtbl.create 8;
      first_lockers = Hashtbl.create 8;
      last_lockers = Hashtbl.create 8;
      range_lockers = Hashtbl.create 8;
      range_count = 0;
    }

  (* -------------------- stripe geometry -------------------------------- *)

  let stripe_count t = Array.length t.stripes
  let struct_region t = t.sregion
  let stripe_index t k = t.hash k land max_int mod Array.length t.stripes
  let stripe_region t i = t.stripes.(i).st_region
  let region_of_key t k = (t.stripes.(stripe_index t k)).st_region

  (* Nested criticals over the structure region then every stripe region in
     ascending index (= ascending rid) order: whole-table operations
     (enumeration, introspection) exclude all concurrent stripe activity. *)
  let critical_all t f =
    let n = Array.length t.stripes in
    let rec go i =
      if i = n then f () else TM.critical t.stripes.(i).st_region (fun () -> go (i + 1))
    in
    TM.critical t.sregion (fun () -> go 0)

  let add_locker tbl txn = Hashtbl.replace tbl (TM.txn_id txn) txn
  let drop_locker tbl txn = Hashtbl.remove tbl (TM.txn_id txn)
  let locker_mem tbl txn = Hashtbl.mem tbl (TM.txn_id txn)

  let writer_incr st txn =
    let id = TM.txn_id txn in
    Hashtbl.replace st.st_writers id
      (1 + Option.value (Hashtbl.find_opt st.st_writers id) ~default:0)

  let writer_decr st txn =
    let id = TM.txn_id txn in
    match Hashtbl.find_opt st.st_writers id with
    | None -> ()
    | Some 1 -> Hashtbl.remove st.st_writers id
    | Some n -> Hashtbl.replace st.st_writers id (n - 1)

  (* -------------------- acquisition (read operations) ------------------ *)
  (* Per-key: caller holds [region_of_key t k].  Structure: caller holds
     [struct_region t]. *)

  let entry_for st k =
    match Coll.Chain_hashmap.find st.key_lockers k with
    | Some e -> e
    | None ->
        let e = { readers = Hashtbl.create 4; writer = None } in
        Coll.Chain_hashmap.add st.key_lockers k e;
        e

  let lock_key t txn k =
    let e = entry_for t.stripes.(stripe_index t k) k in
    add_locker e.readers txn

  let lock_key_write t txn k =
    let st = t.stripes.(stripe_index t k) in
    let e = entry_for st k in
    (match e.writer with
    | Some w when TM.same_txn w txn -> ()
    | Some w ->
        writer_decr st w;
        writer_incr st txn
    | None -> writer_incr st txn);
    e.writer <- Some txn

  (* Allocation-free reader probe for the pessimistic write policies: does
     any transaction other than [self] hold a read lock on [k]? *)
  let key_has_other_reader t ~self k =
    match Coll.Chain_hashmap.find t.stripes.(stripe_index t k).key_lockers k with
    | None -> false
    | Some e -> (
        try
          Hashtbl.iter
            (fun _ owner -> if not (TM.same_txn self owner) then raise Exit)
            e.readers;
          false
        with Exit -> true)

  let key_writer t k =
    match Coll.Chain_hashmap.find t.stripes.(stripe_index t k).key_lockers k with
    | None -> None
    | Some e -> e.writer

  let any_other_writer t ~self =
    let id = TM.txn_id self in
    let other st =
      let n = Hashtbl.length st.st_writers in
      n > 1 || (n = 1 && not (Hashtbl.mem st.st_writers id))
    in
    let rec go i = i < Array.length t.stripes && (other t.stripes.(i) || go (i + 1)) in
    go 0

  let lock_size t txn = add_locker t.size_lockers txn
  let lock_isempty t txn = add_locker t.isempty_lockers txn
  let lock_first t txn = add_locker t.first_lockers txn
  let lock_last t txn = add_locker t.last_lockers txn

  (* Range insertion coalesces: the per-transaction range list is kept
     pairwise non-touching, so a cursor sweeping an interval in small
     increments holds one growing range instead of an unbounded pile of
     overlapping fragments.  One filter pass is complete: existing ranges
     are mutually separated by gaps, so the merged range can only absorb
     ranges the *new* range already touches. *)
  let touches compare a b =
    (* half-open ranges union into one interval iff max lo <= min hi *)
    let lo_le_hi lo hi =
      match (lo, hi) with
      | None, _ | _, None -> true
      | Some l, Some h -> compare l h <= 0
    in
    lo_le_hi a.lo b.hi && lo_le_hi b.lo a.hi

  let merge_ranges compare a b =
    let lo =
      match (a.lo, b.lo) with
      | None, _ | _, None -> None
      | Some x, Some y -> Some (if compare x y <= 0 then x else y)
    in
    let hi =
      match (a.hi, b.hi) with
      | None, _ | _, None -> None
      | Some x, Some y -> Some (if compare x y >= 0 then x else y)
    in
    { lo; hi }

  let lock_range t txn ~compare range =
    let id = TM.txn_id txn in
    let existing =
      match Hashtbl.find_opt t.range_lockers id with
      | None -> []
      | Some (rs, _) -> rs
    in
    let merged = ref range in
    let kept =
      List.filter
        (fun r ->
          if touches compare r !merged then begin
            merged := merge_ranges compare r !merged;
            false
          end
          else true)
        existing
    in
    let rs = !merged :: kept in
    t.range_count <- t.range_count + List.length rs - List.length existing;
    Hashtbl.replace t.range_lockers id (rs, txn)

  (* -------------------- release (commit/abort handlers) ---------------- *)

  let release_key t txn k =
    let st = t.stripes.(stripe_index t k) in
    match Coll.Chain_hashmap.find st.key_lockers k with
    | None -> ()
    | Some e ->
        drop_locker e.readers txn;
        (match e.writer with
        | Some w when TM.same_txn w txn ->
            writer_decr st w;
            e.writer <- None
        | _ -> ());
        if Hashtbl.length e.readers = 0 && e.writer = None then
          Coll.Chain_hashmap.remove st.key_lockers k

  (* Caller holds [struct_region]. *)
  let release_structure t txn =
    drop_locker t.size_lockers txn;
    drop_locker t.isempty_lockers txn;
    drop_locker t.first_lockers txn;
    drop_locker t.last_lockers txn;
    let id = TM.txn_id txn in
    match Hashtbl.find_opt t.range_lockers id with
    | None -> ()
    | Some (rs, _) ->
        t.range_count <- t.range_count - List.length rs;
        Hashtbl.remove t.range_lockers id

  (* Internally synchronised: sequential (non-nested) criticals per touched
     stripe, then the structure region — each reentrant if already held. *)
  let release_all t txn ~keys =
    List.iter
      (fun k -> TM.critical (region_of_key t k) (fun () -> release_key t txn k))
      keys;
    TM.critical t.sregion (fun () -> release_structure t txn)

  (* -------------------- conflict detection (write commit) -------------- *)

  let abort_other ~self owner =
    if not (TM.same_txn self owner) then ignore (TM.remote_abort owner)

  let abort_others ~self tbl = Hashtbl.iter (fun _ owner -> abort_other ~self owner) tbl

  let conflict_key t ~self k =
    match Coll.Chain_hashmap.find t.stripes.(stripe_index t k).key_lockers k with
    | None -> ()
    | Some e ->
        abort_others ~self e.readers;
        (match e.writer with Some w -> abort_other ~self w | None -> ())

  let conflict_size t ~self = abort_others ~self t.size_lockers
  let conflict_isempty t ~self = abort_others ~self t.isempty_lockers
  let conflict_first t ~self = abort_others ~self t.first_lockers
  let conflict_last t ~self = abort_others ~self t.last_lockers

  let range_contains compare { lo; hi } k =
    (match lo with None -> true | Some b -> compare k b >= 0)
    && match hi with None -> true | Some b -> compare k b < 0

  let conflict_range t ~self ~compare k =
    Hashtbl.iter
      (fun _ (ranges, owner) ->
        if
          (not (TM.same_txn self owner))
          && List.exists (fun r -> range_contains compare r k) ranges
        then ignore (TM.remote_abort owner))
      t.range_lockers

  (* -------------------- introspection (tests, Table 2/5 traces) -------- *)

  let key_locked_by t txn k =
    match Coll.Chain_hashmap.find t.stripes.(stripe_index t k).key_lockers k with
    | None -> false
    | Some e -> (
        locker_mem e.readers txn
        || match e.writer with Some w -> TM.same_txn w txn | None -> false)

  let size_locked_by t txn = locker_mem t.size_lockers txn
  let isempty_locked_by t txn = locker_mem t.isempty_lockers txn
  let first_locked_by t txn = locker_mem t.first_lockers txn
  let last_locked_by t txn = locker_mem t.last_lockers txn
  let range_locked_by t txn = Hashtbl.mem t.range_lockers (TM.txn_id txn)

  (* Entry counts for state dumps (the tables themselves are abstract). *)
  let key_entry_count t =
    Array.fold_left
      (fun acc st -> acc + Coll.Chain_hashmap.size st.key_lockers)
      0 t.stripes

  let size_locker_count t = Hashtbl.length t.size_lockers
  let isempty_locker_count t = Hashtbl.length t.isempty_lockers
  let first_locker_count t = Hashtbl.length t.first_lockers
  let last_locker_count t = Hashtbl.length t.last_lockers
  let range_locker_count t = t.range_count

  let total_lockers t =
    Array.fold_left
      (fun acc st ->
        Coll.Chain_hashmap.fold
          (fun _ e acc ->
            acc + Hashtbl.length e.readers
            + match e.writer with Some _ -> 1 | None -> 0)
          st.key_lockers acc)
      0 t.stripes
    + Hashtbl.length t.size_lockers
    + Hashtbl.length t.isempty_lockers
    + Hashtbl.length t.first_lockers
    + Hashtbl.length t.last_lockers
    + t.range_count
end
