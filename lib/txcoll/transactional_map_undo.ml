(* Undo-logging TransactionalMap — the alternative implementation strategy
   of paper §5.1 ("Redo versus undo logging"): writes update the wrapped map
   in place and keep an undo log for compensation, instead of buffering a
   redo log applied at commit.

   As the paper notes, "undo logging requires early conflict detection
   since only one writer can be allowed to update a piece of semantic state
   in place at a time", so this variant is necessarily pessimistic:

   - a write takes an exclusive semantic write lock on its key, aborting
     any other holder immediately (aggressive contention management);
   - a read of a key write-locked by another transaction retries
     transparently until the writer finishes (wait-by-retry);
   - full enumeration retries while any foreign writer exists;
   - size is read live from the underlying map, so it can observe another
     transaction's uncommitted in-place insertions; to preserve
     serializability the abort handler re-checks size/isEmpty conflicts
     after undoing, aborting any size readers that saw the dirty value.

   The redo-based {!Transactional_map} is the paper's (and our) default:
   this module exists to make the design-space comparison executable (see
   the redo-vs-undo ablation).

   Excluded from multi-version snapshots: in-place undo logging publishes
   uncommitted state to the underlying map, so no committed-only version
   chain can be maintained at apply time (the committed image exists only
   between commits).  Operations raise [Invalid_argument] inside a
   snapshot read section rather than serve a possibly-dirty live read. *)

module Make (TM : Tm_intf.TM_OPS) (M : Tm_intf.MAP_OPS) = struct
  module L = Semlock.Make (TM)

  type 'v local = {
    txn : TM.txn;
    mutable undo : (M.key * 'v option) list; (* newest first; first write only *)
    written : (M.key, unit) Coll.Chain_hashmap.t;
    mutable key_locks : M.key list;
    mutable delta : int; (* net size change of in-place updates *)
  }

  type 'v t = {
    map : 'v M.t;
    locks : M.key L.t;
    locals : (int, 'v local) Hashtbl.t;
    pinned_policy : string option;
        (* TM policy the map was wrapped with, if any; enforced against
           the committing transaction's policy in [prepare]. *)
  }

  (* TM policy matrix: although this collection mutates the wrapped map
     in place at operation time, that mutation happens inside [critical]
     regions with its own semantic undo log — it never goes through
     tvars, so every tvar-level protocol axis (including the TM's own
     undo logging) remains safe.  The collection is itself the
     encounter-time point of the design space; a matching pin is
     [eager_rl_ul], but any policy is sound. *)
  let policy_support =
    {
      Tm_intf.ps_eager_acquire = true;
      ps_read_locking = true;
      ps_undo_logging = true;
    }

  (* Prepare-phase enforcement of a wrap-time policy pin; the raise
     escapes [atomic] un-retried (misconfiguration, not contention). *)
  let check_pinned_policy = function
    | None -> ()
    | Some name ->
        let cur = TM.txn_policy_name () in
        if not (String.equal cur name) then
          invalid_arg
            (Printf.sprintf
               "transaction ran under TM policy %s but the collection is \
                pinned to %s"
               cur name)

  (* A single stripe (K = 1): in-place updates plus an undo log need one
     atomic view of the whole map (size is read live, compensation replays
     against it), so the lock manager's structure region — which K = 1
     shares with its only key stripe — serialises everything, exactly the
     historical single-region behaviour. *)
  let wrap ?tm_policy map =
    Option.iter (TM.validate_policy ~support:policy_support) tm_policy;
    {
      map;
      locks = L.create ~stripes:1 ();
      locals = Hashtbl.create 32;
      pinned_policy = tm_policy;
    }

  let create ?tm_policy () = wrap ?tm_policy (M.create ())
  let pinned_policy t = t.pinned_policy
  let critical t f = TM.critical (L.struct_region t.locks) f

  let cleanup t l =
    L.release_all t.locks l.txn ~keys:l.key_locks;
    Hashtbl.remove t.locals (TM.txn_id l.txn)

  (* In-place changes are already applied; the prepare phase (read-only,
     before the TM's commit point) detects the remaining abstract-state
     conflicts, the apply phase only releases. *)
  let prepare_handler t l () =
    check_pinned_policy t.pinned_policy;
    critical t (fun () ->
        if l.delta <> 0 then begin
          L.conflict_size t.locks ~self:l.txn;
          let now = M.size t.map in
          let before = now - l.delta in
          if (before = 0) <> (now = 0) then L.conflict_isempty t.locks ~self:l.txn
        end)

  let apply_handler t l _stamp = critical t (fun () -> cleanup t l)

  (* No snapshot support (see header): fail fast instead of leaking a
     non-snapshot-consistent read into a snapshot section. *)
  let no_snapshot () =
    if TM.in_snapshot () then
      invalid_arg
        "Transactional_map_undo: unsupported inside a snapshot read section"

  let abort_handler t l () =
    critical t (fun () ->
        (* Compensate newest-first, then abort any transaction that read the
           dirty size/emptiness. *)
        List.iter
          (fun (k, prior) ->
            match prior with
            | Some v -> M.add t.map k v
            | None -> M.remove t.map k)
          l.undo;
        if l.delta <> 0 then begin
          L.conflict_size t.locks ~self:l.txn;
          L.conflict_isempty t.locks ~self:l.txn
        end;
        cleanup t l)

  let local_of t =
    let txn = TM.current () in
    let id = TM.txn_id txn in
    match Hashtbl.find_opt t.locals id with
    | Some l -> l
    | None ->
        let l =
          {
            txn;
            undo = [];
            written = Coll.Chain_hashmap.create ();
            key_locks = [];
            delta = 0;
          }
        in
        Hashtbl.add t.locals id l;
        (* The undo variant mutates in place at operation time, so "read
           only" means no undo log, no size delta and no recorded writes:
           then prepare detects nothing, apply only releases read locks,
           and the commit can take the TM's read-only fast path. *)
        TM.on_commit_prepared
          ~read_only:(fun () ->
            l.undo = [] && l.delta = 0
            && Coll.Chain_hashmap.is_empty l.written)
          (L.struct_region t.locks)
          ~prepare:(prepare_handler t l)
          ~apply:(apply_handler t l);
        TM.on_abort (abort_handler t l);
        l

  let lock_read t l k =
    if not (L.key_locked_by t.locks l.txn k) then begin
      L.lock_key t.locks l.txn k;
      l.key_locks <- k :: l.key_locks
    end

  (* Precise even when several writers are pending on [k]: [key_writer]
     could return [l.txn] itself while a different writer is also
     registered, so the blocked-check must ask the table directly. *)
  let foreign_writer t l k =
    L.key_has_foreign_writer t.locks ~self:l.txn k

  (* Run [f] in the critical region, retrying the whole transaction while
     [blocked] holds (wait-by-retry: the paper's "have the conflicting
     operation wait for the other transaction to complete", without the
     deadlock risk of in-place blocking). *)
  let rec guarded t ~blocked f =
    let verdict =
      critical t (fun () ->
          let l = local_of t in
          if blocked l then `Retry else `Done (f l))
    in
    match verdict with
    | `Done r -> r
    | `Retry ->
        TM.retry () |> ignore;
        guarded t ~blocked f

  (* ---------------- operations ---------------- *)

  let find t k =
    no_snapshot ();
    if not (TM.in_txn ()) then critical t (fun () -> M.find t.map k)
    else
      guarded t
        ~blocked:(fun l -> foreign_writer t l k)
        (fun l ->
          lock_read t l k;
          M.find t.map k)

  let mem t k = Option.is_some (find t k)

  let write t k pending =
    (* A foreign writer cannot be aborted: its pending compensation would
       clobber our in-place update.  Wait for it by retrying.  Foreign
       readers are safe to abort aggressively (they have no in-place
       effects). *)
    guarded t
      ~blocked:(fun l -> foreign_writer t l k)
      (fun l ->
        L.conflict_key t.locks ~self:l.txn k;
        if not (L.key_locked_by t.locks l.txn k) then
          l.key_locks <- k :: l.key_locks;
        L.lock_key_write t.locks l.txn k;
        let prior = M.find t.map k in
        if not (Coll.Chain_hashmap.mem l.written k) then begin
          Coll.Chain_hashmap.add l.written k ();
          l.undo <- (k, prior) :: l.undo
        end;
        (match (prior, pending) with
        | None, Some _ -> l.delta <- l.delta + 1
        | Some _, None -> l.delta <- l.delta - 1
        | _ -> ());
        (match pending with
        | Some v -> M.add t.map k v
        | None -> M.remove t.map k);
        prior)

  let put t k v =
    no_snapshot ();
    if not (TM.in_txn ()) then
      critical t (fun () ->
          let old = M.find t.map k in
          M.add t.map k v;
          old)
    else write t k (Some v)

  let remove t k =
    no_snapshot ();
    if not (TM.in_txn ()) then
      critical t (fun () ->
          let old = M.find t.map k in
          M.remove t.map k;
          old)
    else write t k None

  let size t =
    no_snapshot ();
    if not (TM.in_txn ()) then critical t (fun () -> M.size t.map)
    else
      guarded t
        ~blocked:(fun l -> L.any_other_writer t.locks ~self:l.txn)
        (fun l ->
          L.lock_size t.locks l.txn;
          M.size t.map)

  let is_empty t = size t = 0

  let fold f t init =
    no_snapshot ();
    if not (TM.in_txn ()) then
      critical t (fun () ->
          let acc = ref init in
          M.iter (fun k v -> acc := f k v !acc) t.map;
          !acc)
    else
      guarded t
        ~blocked:(fun l -> L.any_other_writer t.locks ~self:l.txn)
        (fun l ->
          L.lock_size t.locks l.txn;
          let acc = ref init in
          M.iter
            (fun k v ->
              lock_read t l k;
              acc := f k v !acc)
            t.map;
          !acc)

  let iter f t = fold (fun k v () -> f k v) t ()
  let to_list t = fold (fun k v acc -> (k, v) :: acc) t []

  let outstanding_locks t = critical t (fun () -> L.total_lockers t.locks)
end
