(** TransactionalMap (paper §3.1): wraps an existing [Map] implementation so
    that long-running transactions can operate on it concurrently without
    the unnecessary memory-level conflicts of the implementation (size
    fields, bucket collisions).  Conflicts are detected on the abstract data
    type instead: read operations take semantic locks (Table 2), writes are
    buffered per transaction and applied by a commit handler that aborts
    transactions holding locks on the abstract state being overwritten.

    All operations may be called inside or outside transactions; outside,
    each operation is its own atomic (auto-commit) transaction.

    Inside a snapshot read section ([TM.in_snapshot], e.g. [Stm.snapshot]),
    every read operation — point lookups, size/is_empty, folds and cursors
    — resolves against bounded multi-version shadow chains at the pinned
    snapshot stamp: no semantic locks, no critical regions, no conflicts,
    no aborts.  Write operations raise [Invalid_argument] there. *)

module Make (TM : Tm_intf.TM_OPS) (M : Tm_intf.MAP_OPS) : sig
  type 'v t

  (** Encoding of [isEmpty] (§5.1 "Alternative semantic locks"). *)
  type isempty_policy =
    | Dedicated
        (** [is_empty] is a primitive operation with its own lock that
            conflicts only when emptiness changes — two
            ["if not (is_empty m) then put"] transactions commute. *)
    | Via_size
        (** [is_empty] derives from [size] and takes the size lock,
            conflicting with every size change (kept for the ablation). *)

  (** When write conflicts are detected (§5.1 "Alternatives to optimistic
      concurrency control"). *)
  type write_policy =
    | Optimistic  (** At commit: the committer aborts semantic-lock holders. *)
    | Pessimistic_aggressive
        (** At operation time: the writer immediately aborts other holders
            of the written key's lock. *)
    | Pessimistic_timid
        (** At operation time: the writer retries itself transparently
            while another transaction holds the written key. *)

  val create :
    ?stripes:int ->
    ?hash:(M.key -> int) ->
    ?isempty_policy:isempty_policy ->
    ?write_policy:write_policy ->
    ?copy_key:(M.key -> M.key) ->
    ?tm_policy:string ->
    unit ->
    'v t
  (** Create a map with a fresh underlying [M.t].

      [stripes] (default 16, clamped to [1, 62]) shards the semantic lock
      tables and the committed state into that many key stripes, each
      behind its own critical region: transactions committing disjoint-key
      writes into this one map commit in parallel, while size/isEmpty reads
      and enumerations serialise through a dedicated structure region.
      [stripes = 1] restores a fully serial collection.  [hash] picks the
      stripe of a key (default [Hashtbl.hash]); it must agree with [M]'s
      key equality.

      [copy_key] stores independent copies of keys in the shared lock
      table, preventing the §5.1 "leaking uncommitted data" hazard for
      mutable or not-yet-committed key objects (default: identity, correct
      for immutable keys).

      [tm_policy] pins the collection to one TM policy (by name, e.g.
      ["lazy_rv_wb"]; see [Stm.Policy]).  The name and this collection's
      axis support are validated here — an unknown or unsupported policy
      raises [Invalid_argument] at creation.  Thereafter every mutating
      commit's prepare phase checks the committing transaction's policy
      against the pin and raises [Invalid_argument] on mismatch (escaping
      [atomic] un-retried: misconfiguration, not contention).  Read-only
      commits take the fast path without a prepare phase and are not
      checked. *)

  val wrap :
    ?stripes:int ->
    ?hash:(M.key -> int) ->
    ?isempty_policy:isempty_policy ->
    ?write_policy:write_policy ->
    ?copy_key:(M.key -> M.key) ->
    ?tm_policy:string ->
    'v M.t ->
    'v t
  (** Wrap an existing underlying map (its bindings are migrated into the
      stripe shards unless [stripes = 1]).  The caller must not touch the
      wrapped map directly afterwards. *)

  val stripe_count : 'v t -> int
  (** Number of key stripes this map was created with. *)

  val pinned_policy : 'v t -> string option
  (** The [tm_policy] the map was created with, if any. *)

  (** {1 Point operations} *)

  val find : 'v t -> M.key -> 'v option
  (** Takes a key lock (unless served from the transaction's own buffer). *)

  val mem : 'v t -> M.key -> bool

  val put : 'v t -> M.key -> 'v -> 'v option
  (** Buffers the write and returns the previous value — thereby reading the
      key and taking its lock (Table 2). *)

  val remove : 'v t -> M.key -> 'v option

  val put_blind : 'v t -> M.key -> 'v -> unit
  (** §5.1 extension: does not read the previous value, takes no key lock —
      two transactions blind-writing the same key need no ordering. *)

  val remove_blind : 'v t -> M.key -> unit

  val put_if_absent : 'v t -> M.key -> 'v -> 'v
  (** Insert [v] unless the key is bound; returns the residing value. *)

  val update : 'v t -> M.key -> ('v option -> 'v option) -> unit
  (** Read-modify-write under the key lock; [None] removes. *)

  (** {1 Aggregate operations} *)

  val size : 'v t -> int
  (** Takes the size lock: conflicts with any committing size change. *)

  val is_empty : 'v t -> bool
  (** Lock per [isempty_policy]. *)

  val fold : (M.key -> 'v -> 'acc -> 'acc) -> 'v t -> 'acc -> 'acc
  (** Full enumeration in one atomic step, merging the transaction's buffer:
      takes a key lock on every binding returned plus the size lock. *)

  val iter : (M.key -> 'v -> unit) -> 'v t -> unit
  val to_list : 'v t -> (M.key * 'v) list
  val keys : 'v t -> M.key list
  val values : 'v t -> 'v list

  (** {1 Cursor iteration}

      The incremental iterator of Table 2: [next] takes a key lock on each
      returned binding; the size lock is taken eagerly at cursor creation
      (default, strictly serializable) or, paper-faithfully, only when
      [next] first returns [None] ([`At_exhaustion] — a key committed into
      an already-passed position can then be missed without conflict). *)

  type 'v cursor

  val cursor : ?size_lock:[ `Eager | `At_exhaustion ] -> 'v t -> 'v cursor
  val next : 'v cursor -> (M.key * 'v) option

  (** {1 Introspection} (tests, lock-table traces) *)

  val holds_key_lock : 'v t -> M.key -> bool
  val holds_size_lock : 'v t -> bool
  val holds_isempty_lock : 'v t -> bool

  val outstanding_locks : 'v t -> int
  (** Total semantic locks currently registered; [0] when no transaction is
      mid-flight (lock-leak detector). *)

  val buffered_writes : 'v t -> int
  (** Size of the calling transaction's store buffer. *)

  val snapshot_history_length : 'v t -> int
  (** Longest multi-version shadow chain (over all stripes and the
      structure chain) — reclamation probe: at most
      [TM.version_chain_bound] once the oldest snapshot-reader epoch has
      advanced past the excess versions. *)

  val dump_state : Format.formatter -> 'v t -> unit
  (** Live rendering of Table 3's state inventory (committed / shared
      transactional / local transactional state). *)
end
