(* TransactionalPriorityQueue (leaderboards), derived through {!Derive}.

   State is an ordered multiset: priority -> multiplicity over an
   ordered map, so [min_key] is the committed minimum in key order.
   [insert] is a blind +1 delta — inserts of distinct priorities
   commute.  [peek_min]/[poll_min] read the first facet; the functor's
   conservative first-invalidation rule (any shrink, or an insert at or
   below the committed minimum) generates exactly the paper's Table 7
   conflicts, plus sound spurious ones.

   [uses_first] pins the lock table to a single stripe: the "first"
   facet is whole-collection state, so per-stripe regions can't carve
   it up. *)

module Make (TM : Tm_intf.TM_OPS) (P : Underlying.ORDERED) = struct
  module Spec = struct
    type state = (P.t, int) Coll.Ordmap.t
    type key = P.t
    type value = int (* multiplicity, always >= 1 in committed state *)
    type wop = int (* multiplicity delta *)

    let name = "TransactionalPriorityQueue"
    let create () = Coll.Ordmap.create ~compare:P.compare ()
    let find s k = Coll.Ordmap.find s k

    let apply s k d =
      let m = Option.value (Coll.Ordmap.find s k) ~default:0 + d in
      if m <= 0 then Coll.Ordmap.remove s k else Coll.Ordmap.add s k m

    let fold f s acc = Coll.Ordmap.fold f s acc

    exception Found of P.t

    let min_key s ~excluded =
      (* Ordmap.iter is in-order: the first non-excluded key is the
         committed minimum once buffered removals are masked out. *)
      match
        Coll.Ordmap.iter (fun k _ -> if not (excluded k) then raise (Found k)) s
      with
      | () -> None
      | exception Found k -> Some k

    let combine ~earlier ~later = earlier + later

    let view prior d =
      let m = Option.value prior ~default:0 + d in
      if m <= 0 then None else Some m

    let absorbing _ = false
    let weight = function Some m -> m | None -> 0
    let uses_size = true
    let uses_isempty = true
    let uses_first = true
    let compare_key = Some P.compare
  end

  module D = Derive.Make (TM) (Spec)

  type t = D.t

  let policy_support = D.policy_support
  let create ?tm_policy () = D.create ?tm_policy ()
  let insert t p = D.write_blind t p 1
  let count t p = Option.value (D.find t p) ~default:0
  let peek_min t = D.min_view t

  let poll_min t =
    (* [min_view] holds the first-facet lock, so the minimum can't be
       invalidated between the peek and the buffered removal.  Outside a
       transaction the pair runs under the structure region. *)
    let poll () =
      match D.min_view t with
      | None -> None
      | Some p ->
          D.write_blind t p (-1);
          Some p
    in
    if TM.in_txn () then poll () else TM.critical (D.sregion t) poll

  let size = D.size
  (* Total number of queued elements (the committed weight sum). *)

  let is_empty = D.is_empty
  let fold = D.fold
  let iter = D.iter
  let to_list t = List.rev (fold (fun p m acc -> (p, m) :: acc) t [])
  let pinned_policy = D.pinned_policy
  let outstanding_locks = D.outstanding_locks
end
