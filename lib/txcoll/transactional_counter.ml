(* TransactionalCounter: commutative increments that never conflict with
   each other, derived through {!Derive}.

   Increments commute, so the spec declares deltas as blind writes: a
   delta buffers locally ([combine] sums), takes no lock at operation
   time, and commits under its own stripe region only ([weight] is
   constant 0 and no size/isEmpty/first facets, so the functor derives
   an empty commit-time conflict set — blind writers never register in
   the lock tables, so increments abort nobody and wait for nobody).
   Only [get] — a read of the key facets — conflicts with concurrent
   increments, exactly the paper's Table 4 row for [add].

   To also make the *region* plan disjoint across domains, the veneer
   shards the single logical counter across [shards] keys with the
   identity hash and [stripes = shards]: domain [d] always writes key
   [d mod shards], which maps to stripe [d mod shards], so concurrent
   incrementing domains commit under disjoint regions — zero aborts and
   zero region waits by construction. *)

module Make (TM : Tm_intf.TM_OPS) = struct
  module Spec = struct
    type state = (int, int) Hashtbl.t
    type key = int
    type value = int
    type wop = int (* delta *)

    let name = "TransactionalCounter"
    let create () = Hashtbl.create 16
    let find s k = Hashtbl.find_opt s k

    let apply s k d =
      let v = Option.value (Hashtbl.find_opt s k) ~default:0 + d in
      Hashtbl.replace s k v

    let fold f s acc = Hashtbl.fold f s acc
    let min_key _ ~excluded:_ = None
    let combine ~earlier ~later = earlier + later
    let view prior d = Some (Option.value prior ~default:0 + d)
    let absorbing _ = false
    let weight _ = 0
    let uses_size = false
    let uses_isempty = false
    let uses_first = false
    let compare_key = None
  end

  module D = Derive.Make (TM) (Spec)

  type t = { d : D.t; shards : int }

  let policy_support = D.policy_support

  let create ?(shards = 16) ?tm_policy () =
    let d = D.create ~stripes:shards ~hash:(fun k -> k) ?tm_policy () in
    { d; shards = D.stripe_count d }

  let shard_key t = (Domain.self () :> int) mod t.shards
  let add t n = if n <> 0 then D.write_blind t.d (shard_key t) n
  let incr t = add t 1
  let decr t = add t (-1)

  let get t =
    if TM.in_txn () then (
      (* Read every shard key under its key lock: sound (the whole sum
         is a keyed read set; any committing delta conflicts with it). *)
      let sum = ref 0 in
      for i = 0 to t.shards - 1 do
        sum := !sum + Option.value (D.find t.d i) ~default:0
      done;
      !sum)
    else D.fold (fun _ v acc -> acc + v) t.d 0

  let pinned_policy t = D.pinned_policy t.d
  let outstanding_locks t = D.outstanding_locks t.d
  let shard_count t = t.shards
end
