(* Ready-made instantiations of the transactional collection classes over
   the host software TM ({!Tcc_stm}).  This is the public face most
   applications use:

   {[
     module M = Txcoll.Host.Map (Txcoll.Host.String_hashed)
     let m = M.create ()
     let () = Tcc_stm.Stm.atomic (fun () -> ignore (M.put m "k" 1))
   ]} *)

module Tm = Tcc_stm.Stm.Tm_ops

module Map (K : Underlying.HASHED) =
  Transactional_map.Make (Tm) (Underlying.Hashed_map_ops (K))

module Sorted_map (K : Underlying.ORDERED) =
  Transactional_sorted_map.Make (Tm) (Underlying.Ordered_map_ops (K))

module Set (K : Underlying.HASHED) =
  Transactional_set.Make (Tm) (Underlying.Hashed_map_ops (K))

module Sorted_set (K : Underlying.ORDERED) =
  Transactional_sorted_set.Make (Tm) (Underlying.Ordered_map_ops (K))

module Queue = Transactional_queue.Make (Tm) (Underlying.Deque_ops)

(* Collections minted directly from their commutativity specs through
   {!Derive}. *)

module Counter = Transactional_counter.Make (Tm)

module Priority_queue (P : Underlying.ORDERED) =
  Transactional_priority_queue.Make (Tm) (P)

module Bag (K : Underlying.HASHED) = Transactional_bag.Make (Tm) (K)

(* Alternative underlying implementations: the wrapper code is identical;
   only the wrapped structure changes (paper: "they can serve as drop-in
   replacements", with no knowledge of data structure internals). *)

module Map_over_open_addressing (K : Underlying.HASHED) =
  Transactional_map.Make (Tm) (Underlying.Oa_map_ops (K))

module Sorted_map_over_skiplist (K : Underlying.ORDERED) =
  Transactional_sorted_map.Make (Tm) (Underlying.Skiplist_map_ops (K))

(* The undo-logging alternative (paper §5.1): in-place updates, exclusive
   write locks, compensation on abort. *)
module Map_undo (K : Underlying.HASHED) =
  Transactional_map_undo.Make (Tm) (Underlying.Hashed_map_ops (K))

(* Common key modules. *)

module Int_hashed = struct
  type t = int

  let hash = Hashtbl.hash
  let equal = Int.equal
end

module String_hashed = struct
  type t = string

  let hash = Hashtbl.hash
  let equal = String.equal
end

module Int_ordered = Int
module String_ordered = String
