(* TransactionalMap (paper §3.1): wraps an existing Map implementation and
   replaces memory-level conflicts (size field, bucket collisions) with
   semantic conflict detection on the Map abstract data type.

   Structure mirrors Table 3:
   - committed state: the wrapped map, sharded into one sub-map per lock
     stripe and read/written only inside [critical] regions (the
     open-nesting discipline of §5);
   - shared transactional state: the striped semantic lock tables
     ([Semlock]);
   - local transactional state: a store buffer of deferred writes plus the
     list of key locks held, one record per active top-level transaction.

   Locking follows Table 2: read operations take key/size/isEmpty locks when
   executed; writes are buffered and detect conflicts at commit time by
   aborting other transactions that hold locks on the abstract state being
   written (optimistic semantic concurrency control, §5.1).

   Striping.  Key [k] lives — lock entry and committed binding both — in
   stripe [hash k mod K], behind that stripe's critical region; the
   size/isEmpty locks and the committed size counter live behind the
   dedicated structure region.  A commit names the regions it needs through
   its region plan ([regions_plan]): the stripes of every buffered or
   locked key, plus the structure region when the transaction holds
   structure locks or its writes may change the map's size.  Two
   transactions committing disjoint-key writes therefore pre-acquire
   disjoint stripe sets and commit in parallel; a size reader serialises
   against exactly the committers that change size.  All nested region
   acquisition is in ascending rid order — structure first (lowest rid),
   then stripes by index — so the combination of op-time nesting and
   rid-sorted commit plans is deadlock-free.

   The buffered [prior] presence bit stays trustworthy until commit: a
   non-blind writer holds the key's semantic lock from operation time, so
   any other transaction committing a presence change on that key either
   aborts this one through [conflict_key] (it is still Active) or finds it
   already past its commit point — by commit time, [prior] is the committed
   presence.

   Multi-version snapshots.  Alongside each mutable shard the map keeps a
   bounded chain of immutable shadow copies ([Coll.Vchain] of persistent
   hash-bucketed [Coll.Pmap]s), one chain per stripe plus one structure
   chain carrying the committed size.  Every mutating commit publishes the
   stripes it changed at its commit stamp while still holding those
   stripes' regions — publications to one chain are therefore serialized
   and stamp-monotone — and non-transactional writes draw a stamp through
   [TM.begin_publish] under the same regions.  A snapshot reader
   ([TM.in_snapshot]) resolves every operation against the newest shadow
   at or below its pinned stamp, touching no region, taking no semantic
   lock, and never aborting. *)

module Make (TM : Tm_intf.TM_OPS) (M : Tm_intf.MAP_OPS) = struct
  module L = Semlock.Make (TM)

  type isempty_policy =
    | Dedicated  (** isEmpty is a primitive operation with its own lock,
                     conflicting only when emptiness changes (§5.1). *)
    | Via_size  (** isEmpty derives from size and takes the size lock — the
                    concurrency-limiting variant, kept for the ablation. *)

  (** When are write-write/write-read semantic conflicts detected (§5.1
      "Alternatives to optimistic concurrency control")? *)
  type write_policy =
    | Optimistic  (** at commit time: the committer aborts lock holders. *)
    | Pessimistic_aggressive
        (** at operation time: the writer immediately aborts every other
            holder of the key's lock. *)
    | Pessimistic_timid
        (** at operation time: the writer aborts itself (transparent retry
            with backoff) while any other transaction holds the key. *)

  type 'v write = {
    pending : 'v option; (* None = removal *)
    prior : bool option; (* presence read at operation time; None = blind *)
  }

  (* Local records are pooled per domain (see [cleanup]): [txn] is rebound
     on reuse and the handler closures are built once, closing over the
     record itself, so steady-state transactions allocate neither a fresh
     store buffer nor fresh handlers.  [stripes_mask] accumulates the
     stripe indices of every locked or buffered key; [struct_locked] is set
     by the structure reads (size/isEmpty/enumeration) — together they are
     the transaction's commit region plan. *)
  type 'v local = {
    mutable txn : TM.txn;
    buffer : (M.key, 'v write) Coll.Chain_hashmap.t;
    mutable key_locks : M.key list;
    mutable stripes_mask : int;
    mutable struct_locked : bool;
    mutable h_read_only : unit -> bool;
    mutable h_regions : unit -> TM.region list;
    mutable h_prepare : unit -> unit;
    mutable h_apply : int -> unit;
    mutable h_abort : unit -> unit;
  }

  (* Locals are domain-local: a top-level transaction runs, commits and
     compensates on one domain, so keying the records (and the recycling
     pool) by domain removes the last piece of shared mutable state that
     would otherwise need a cross-stripe lock on every operation. *)
  type 'v domain_locals = {
    tbl : (int, 'v local) Hashtbl.t;
    mutable pool : 'v local list;
  }

  (* Immutable shadow of one shard: persistent map from key hash to the
     bucket of bindings sharing that hash (same hash/equality discipline as
     the store buffer: [Hashtbl.hash] and structural equality). *)
  type 'v shadow = (int, (M.key * 'v) list) Coll.Pmap.t

  type 'v t = {
    locks : M.key L.t;
    shards : 'v M.t array; (* shard [i] holds the keys of stripe [i] *)
    mutable csize : int;
        (* committed bindings across all shards; read/written only under
           the structure region *)
    snap : 'v shadow Coll.Vchain.t array;
        (* shadow chain [i] versions shard [i]; published only while
           stripe [i]'s region is held *)
    snap_struct : int Coll.Vchain.t;
        (* committed-size chain; published only under the structure region *)
    dls : 'v domain_locals Domain.DLS.key;
    isempty_policy : isempty_policy;
    write_policy : write_policy;
    copy_key : M.key -> M.key;
        (* §5.1 "Leaking uncommitted data": keys recorded in the shared lock
           table may be objects whose construction has not committed, and
           they remain visible to other transactions through equals/hash.
           Supplying a copier stores an independent committed copy instead.
           The default is identity — correct for immutable keys. *)
    pinned_policy : string option;
        (* TM policy the collection was wrapped with, if any; enforced
           against the committing transaction's policy in [prepare]. *)
  }

  let default_stripes = 16

  (* TM policy matrix: this collection's transactional state is purely
     semantic (store buffers, lock tables, commit/abort handlers), so
     every tvar-level protocol axis is safe — the TM's acquire/read/
     versioning choices never reach the wrapped structure. *)
  let policy_support =
    {
      Tm_intf.ps_eager_acquire = true;
      ps_read_locking = true;
      ps_undo_logging = true;
    }

  (* Pinned-policy enforcement point: runs in the prepare phase (before
     the TM's commit point), so a transaction mutating the collection
     under the wrong policy fails fast with nothing applied.  The raise
     escapes [atomic] un-retried — misconfiguration, not contention.
     Read-only commits skip prepare and are not checked. *)
  let check_pinned_policy = function
    | None -> ()
    | Some name ->
        let cur = TM.txn_policy_name () in
        if not (String.equal cur name) then
          invalid_arg
            (Printf.sprintf
               "transaction ran under TM policy %s but the collection is \
                pinned to %s"
               cur name)

  (* ---------------- snapshot shadows ---------------- *)

  let snap_hash k = Hashtbl.hash k land max_int
  let shadow_empty () : 'v shadow = Coll.Pmap.empty ~compare:Int.compare

  let shadow_add (pm : 'v shadow) k v =
    let h = snap_hash k in
    let bucket =
      match Coll.Pmap.find pm h with
      | None -> []
      | Some b -> List.filter (fun (k', _) -> k' <> k) b
    in
    Coll.Pmap.add pm h ((k, v) :: bucket)

  let shadow_remove (pm : 'v shadow) k =
    let h = snap_hash k in
    match Coll.Pmap.find pm h with
    | None -> pm
    | Some b -> (
        match List.filter (fun (k', _) -> k' <> k) b with
        | [] -> Coll.Pmap.remove pm h
        | b' -> Coll.Pmap.add pm h b')

  let shadow_find (pm : 'v shadow) k =
    match Coll.Pmap.find pm (snap_hash k) with
    | None -> None
    | Some b ->
        List.find_map (fun (k', v) -> if k' = k then Some v else None) b

  let shadow_of_shard shard =
    let pm = ref (shadow_empty ()) in
    M.iter (fun k v -> pm := shadow_add !pm k v) shard;
    !pm

  let wrap ?(stripes = default_stripes) ?hash ?(isempty_policy = Dedicated)
      ?(write_policy = Optimistic) ?(copy_key = Fun.id) ?tm_policy map =
    Option.iter (TM.validate_policy ~support:policy_support) tm_policy;
    let locks = L.create ~stripes ?hash () in
    let k = L.stripe_count locks in
    let shards, csize =
      if k = 1 then ([| map |], M.size map)
      else begin
        let shards = Array.init k (fun _ -> M.create ()) in
        let n = ref 0 in
        M.iter
          (fun key v ->
            M.add shards.(L.stripe_index locks key) key v;
            incr n)
          map;
        (shards, !n)
      end
    in
    {
      locks;
      shards;
      csize;
      snap =
        Array.map (fun shard -> Coll.Vchain.make 0 (shadow_of_shard shard))
          shards;
      snap_struct = Coll.Vchain.make 0 csize;
      dls =
        Domain.DLS.new_key (fun () ->
            { tbl = Hashtbl.create 8; pool = [] });
      isempty_policy;
      write_policy;
      copy_key;
      pinned_policy = tm_policy;
    }

  let create ?stripes ?hash ?isempty_policy ?write_policy ?copy_key ?tm_policy
      () =
    wrap ?stripes ?hash ?isempty_policy ?write_policy ?copy_key ?tm_policy
      (M.create ())

  let pinned_policy t = t.pinned_policy

  let sregion t = L.struct_region t.locks
  let shard_of t k = t.shards.(L.stripe_index t.locks k)
  let key_region t k = L.region_of_key t.locks k
  let stripe_count t = L.stripe_count t.locks

  (* ---------------- commit/abort handlers ---------------- *)

  (* Runs exactly once per transaction (the apply and abort handlers are
     mutually exclusive), so the record can be scrubbed and recycled: the
     buffer keeps its capacity across reuses.  The releases run as
     sequential (never nested) criticals, one per touched region: with the
     commit's region plan held they are reentrant; on the abort and
     read-only paths nothing is held, so each stands alone and no ordering
     constraint arises. *)
  let cleanup t l =
    List.iter
      (fun k ->
        TM.critical (key_region t k) (fun () -> L.release_key t.locks l.txn k))
      l.key_locks;
    if l.struct_locked then
      TM.critical (sregion t) (fun () -> L.release_structure t.locks l.txn);
    let d = Domain.DLS.get t.dls in
    Hashtbl.remove d.tbl (TM.txn_id l.txn);
    Coll.Chain_hashmap.clear l.buffer;
    l.key_locks <- [];
    l.stripes_mask <- 0;
    l.struct_locked <- false;
    d.pool <- l :: d.pool

  (* Net size change of the store buffer.  Blind writes read their prior
     presence from the shard under a nested stripe critical (ascending rid
     when called under the structure region; reentrant when called from
     prepare with the plan held). *)
  let presence_changes t l =
    Coll.Chain_hashmap.fold
      (fun k w acc ->
        let prior =
          match w.prior with
          | Some p -> p
          | None ->
              TM.critical (key_region t k) (fun () -> M.mem (shard_of t k) k)
        in
        let after = Option.is_some w.pending in
        if after && not prior then acc + 1
        else if (not after) && prior then acc - 1
        else acc)
      l.buffer 0

  (* Commit region plan, evaluated once at commit time: the stripes of
     every locked/buffered key, plus the structure region when the
     transaction read structure state or its writes may change the size
     (a blind write's effect is unknown until applied, so it is planned
     conservatively).  [delta <> 0] at prepare/apply therefore implies the
     structure region is in the plan. *)
  let regions_plan t l () =
    let struct_needed =
      l.struct_locked
      || Coll.Chain_hashmap.fold
           (fun _ w acc ->
             acc
             ||
             match w.prior with
             | None -> true
             | Some p -> p <> Option.is_some w.pending)
           l.buffer false
    in
    let acc = ref [] in
    for i = stripe_count t - 1 downto 0 do
      if l.stripes_mask land (1 lsl i) <> 0 then
        acc := L.stripe_region t.locks i :: !acc
    done;
    if struct_needed then sregion t :: !acc else !acc

  (* Prepare phase: conflict detection per Table 2 — aborting holders of
     key locks on written keys, size lockers when the size changes, and
     isEmpty lockers when emptiness flips.  Read-only on the map and may
     raise (remote-abort deferral, injected fault): it runs before the
     TM's commit point so an exception here aborts with nothing applied.
     Every critical below re-enters a region the plan already holds. *)
  let prepare_handler t l () =
    check_pinned_policy t.pinned_policy;
    let self = l.txn in
    Coll.Chain_hashmap.iter
      (fun k _ ->
        TM.critical (key_region t k) (fun () ->
            L.conflict_key t.locks ~self k))
      l.buffer;
    let delta = presence_changes t l in
    if delta <> 0 then
      TM.critical (sregion t) (fun () ->
          L.conflict_size t.locks ~self;
          let was_size = t.csize in
          if (was_size = 0) <> (was_size + delta = 0) then
            L.conflict_isempty t.locks ~self)

  (* Publish one stripe's updated shadow at [stamp].  Caller holds the
     stripe's region (commit plan or an explicit critical), which
     serializes publications to the chain and makes stamps monotone:
     every publisher draws its stamp while already holding the region. *)
  let publish_stripe t si ~min_epoch stamp shadow =
    TM.note_reclaimed
      (Coll.Vchain.publish t.snap.(si) ~keep:TM.version_chain_bound
         ~min_epoch stamp shadow)

  let publish_struct t ~min_epoch stamp =
    TM.note_reclaimed
      (Coll.Vchain.publish t.snap_struct ~keep:TM.version_chain_bound
         ~min_epoch stamp t.csize)

  (* Apply phase, after the commit point: flush the store buffer (redo
     log) to the shards, fold the net presence change into the committed
     size, publish the changed stripes' shadows at the commit stamp, and
     release semantic locks.  Shadows accumulate across the buffer so each
     touched chain is published exactly once per commit. *)
  let apply_handler t l stamp =
    let delta = ref 0 in
    let n = stripe_count t in
    let shadows = Array.make n None in
    Coll.Chain_hashmap.iter
      (fun k w ->
        TM.critical (key_region t k) (fun () ->
            let si = L.stripe_index t.locks k in
            let shadow =
              match shadows.(si) with
              | Some pm -> pm
              | None -> Coll.Vchain.latest t.snap.(si)
            in
            let shard = shard_of t k in
            let before =
              match w.prior with Some p -> p | None -> M.mem shard k
            in
            (match w.pending with
            | Some v ->
                M.add shard k v;
                shadows.(si) <- Some (shadow_add shadow k v)
            | None ->
                M.remove shard k;
                shadows.(si) <- Some (shadow_remove shadow k));
            let after = Option.is_some w.pending in
            if after && not before then incr delta
            else if before && not after then decr delta))
      l.buffer;
    let min_epoch = TM.reclaim_epoch () in
    for si = 0 to n - 1 do
      match shadows.(si) with
      | None -> ()
      | Some shadow ->
          TM.critical (L.stripe_region t.locks si) (fun () ->
              publish_stripe t si ~min_epoch stamp shadow)
    done;
    if !delta <> 0 then
      TM.critical (sregion t) (fun () ->
          t.csize <- t.csize + !delta;
          publish_struct t ~min_epoch stamp);
    cleanup t l

  let abort_handler t l () = cleanup t l

  let fresh_local t txn =
    let l =
      {
        txn;
        buffer = Coll.Chain_hashmap.create ();
        key_locks = [];
        stripes_mask = 0;
        struct_locked = false;
        h_read_only = (fun () -> false);
        h_regions = (fun () -> []);
        h_prepare = ignore;
        h_apply = (fun _ -> ());
        h_abort = ignore;
      }
    in
    (* Read-only certificate: an empty store buffer means prepare would
       detect nothing and apply only releases read locks, so a getter-only
       transaction (find/mem/size/is_empty) can take the TM's read-only
       commit fast path. *)
    l.h_read_only <- (fun () -> Coll.Chain_hashmap.is_empty l.buffer);
    l.h_regions <- regions_plan t l;
    l.h_prepare <- prepare_handler t l;
    l.h_apply <- apply_handler t l;
    l.h_abort <- abort_handler t l;
    l

  (* One local record per top-level transaction; its creation registers the
     single commit handler and single abort handler of §5's guidelines. *)
  let local_of t =
    let txn = TM.current () in
    let id = TM.txn_id txn in
    let d = Domain.DLS.get t.dls in
    match Hashtbl.find_opt d.tbl id with
    | Some l -> l
    | None ->
        let l =
          match d.pool with
          | l :: rest ->
              d.pool <- rest;
              l.txn <- txn;
              l
          | [] -> fresh_local t txn
        in
        Hashtbl.add d.tbl id l;
        TM.on_commit_prepared ~read_only:l.h_read_only ~regions:l.h_regions
          (sregion t) ~prepare:l.h_prepare ~apply:l.h_apply;
        TM.on_abort l.h_abort;
        l

  (* Caller holds [key_region t k]. *)
  let lock_key t l k =
    if not (L.key_locked_by t.locks l.txn k) then begin
      let committed_copy = t.copy_key k in
      L.lock_key t.locks l.txn committed_copy;
      l.key_locks <- committed_copy :: l.key_locks;
      l.stripes_mask <-
        l.stripes_mask lor (1 lsl L.stripe_index t.locks committed_copy)
    end

  (* ---------------- read operations ---------------- *)

  (* Snapshot reads resolve against the shadow chains at the pinned stamp:
     no region, no semantic lock, no conflict, no abort. *)
  let snap_shadow t k =
    Coll.Vchain.read_at t.snap.(L.stripe_index t.locks k) (TM.snapshot_stamp ())

  let find t k =
    if TM.in_snapshot () then shadow_find (snap_shadow t k) k
    else if not (TM.in_txn ()) then
      TM.critical (key_region t k) (fun () -> M.find (shard_of t k) k)
    else begin
      let l = local_of t in
      TM.critical (key_region t k) (fun () ->
          match Coll.Chain_hashmap.find l.buffer k with
          | Some w -> w.pending (* own write: no global read involved *)
          | None ->
              lock_key t l k;
              M.find (shard_of t k) k)
    end

  let mem t k = Option.is_some (find t k)

  let size t =
    if TM.in_snapshot () then
      Coll.Vchain.read_at t.snap_struct (TM.snapshot_stamp ())
    else if not (TM.in_txn ()) then
      TM.critical (sregion t) (fun () -> t.csize)
    else begin
      let l = local_of t in
      TM.critical (sregion t) (fun () ->
          L.lock_size t.locks l.txn;
          l.struct_locked <- true;
          t.csize + presence_changes t l)
    end

  let is_empty t =
    if TM.in_snapshot () then
      Coll.Vchain.read_at t.snap_struct (TM.snapshot_stamp ()) = 0
    else if not (TM.in_txn ()) then
      TM.critical (sregion t) (fun () -> t.csize = 0)
    else begin
      let l = local_of t in
      TM.critical (sregion t) (fun () ->
          (match t.isempty_policy with
          | Dedicated -> L.lock_isempty t.locks l.txn
          | Via_size -> L.lock_size t.locks l.txn);
          l.struct_locked <- true;
          t.csize + presence_changes t l = 0)
    end

  (* ---------------- write operations ---------------- *)

  (* Pessimistic early conflict detection on the written key (§5.1).  Runs
     inside the stripe's critical region; a [`Retry] verdict is acted on
     outside it (TM.retry must be raised from transaction context, not from
     inside the open-nested atomic section). *)
  let pessimistic_status t l k =
    match t.write_policy with
    | Optimistic -> `Ok
    | Pessimistic_aggressive ->
        L.conflict_key t.locks ~self:l.txn k;
        `Ok
    | Pessimistic_timid ->
        let others =
          L.key_has_other_reader t.locks ~self:l.txn k
          || L.key_has_foreign_writer t.locks ~self:l.txn k
        in
        if others then `Retry else `Ok

  let buffer_write t l k pending ~blind =
    match Coll.Chain_hashmap.find l.buffer k with
    | Some w ->
        let old = w.pending in
        Coll.Chain_hashmap.add l.buffer k { pending; prior = w.prior };
        old
    | None ->
        if blind then begin
          Coll.Chain_hashmap.add l.buffer k { pending; prior = None };
          l.stripes_mask <-
            l.stripes_mask lor (1 lsl L.stripe_index t.locks k);
          None
        end
        else begin
          (* Returning the previous value reads the key (Table 2: put and
             remove take a key lock on their argument). *)
          lock_key t l k;
          let old = M.find (shard_of t k) k in
          Coll.Chain_hashmap.add l.buffer k
            { pending; prior = Some (Option.is_some old) };
          old
        end

  (* Transactional write entry point: pessimistic policies may demand a
     transparent retry, raised outside the critical region. *)
  let rec write_op t k pending ~blind =
    let l = local_of t in
    let verdict =
      TM.critical (key_region t k) (fun () ->
          match pessimistic_status t l k with
          | `Retry -> `Retry
          | `Ok -> `Done (buffer_write t l k pending ~blind))
    in
    match verdict with
    | `Done old -> old
    | `Retry ->
        TM.retry () |> ignore;
        write_op t k pending ~blind

  (* Non-transactional writes nest structure-then-stripe (ascending rid):
     the shard mutation and the committed-size update must be atomic for
     size readers.  The shadow publication draws its stamp through
     [TM.begin_publish] while both regions are held, so it serializes with
     committing transactions that touch the same stripe or the size. *)
  let nontxn_write t k pending =
    if TM.in_snapshot () then
      invalid_arg "Transactional_map: write inside a snapshot read section";
    TM.critical (sregion t) (fun () ->
        TM.critical (key_region t k) (fun () ->
            let shard = shard_of t k in
            let old = M.find shard k in
            (match pending with
            | Some v -> M.add shard k v
            | None -> M.remove shard k);
            (match (old, pending) with
            | None, Some _ -> t.csize <- t.csize + 1
            | Some _, None -> t.csize <- t.csize - 1
            | _ -> ());
            let stamp = TM.begin_publish () in
            Fun.protect ~finally:TM.end_publish (fun () ->
                let min_epoch = TM.reclaim_epoch () in
                let si = L.stripe_index t.locks k in
                let shadow = Coll.Vchain.latest t.snap.(si) in
                let shadow =
                  match pending with
                  | Some v -> shadow_add shadow k v
                  | None -> shadow_remove shadow k
                in
                publish_stripe t si ~min_epoch stamp shadow;
                if Option.is_some old <> Option.is_some pending then
                  publish_struct t ~min_epoch stamp);
            old))

  let put t k v =
    if not (TM.in_txn ()) then nontxn_write t k (Some v)
    else write_op t k (Some v) ~blind:false

  let remove t k =
    if not (TM.in_txn ()) then nontxn_write t k None
    else write_op t k None ~blind:false

  (* Blind variants (§5.1 "Extensions to java.util.Map"): no previous-value
     read, hence no key lock and no ordering between two transactions that
     only write the same key. *)
  let put_blind t k v =
    if not (TM.in_txn ()) then ignore (nontxn_write t k (Some v))
    else ignore (write_op t k (Some v) ~blind:true)

  let remove_blind t k =
    if not (TM.in_txn ()) then ignore (nontxn_write t k None)
    else ignore (write_op t k None ~blind:true)

  (* ---------------- iteration ---------------- *)

  (* Full enumeration under all regions (structure then stripes, ascending):
     merges the shards with the store buffer, takes a key lock on every key
     returned and — as the enumeration observes the complete contents — the
     size lock. *)
  (* Snapshot enumeration: every stripe's shadow is read at the same
     pinned stamp, so the result is a prefix-consistent cut across the
     whole map (commits are published stripe-by-stripe under their
     regions, but all at a single stamp the pin has already waited out). *)
  let snap_fold f t init =
    let ts = TM.snapshot_stamp () in
    let acc = ref init in
    Array.iter
      (fun chain ->
        Coll.Pmap.iter
          (fun _ bucket -> List.iter (fun (k, v) -> acc := f k v !acc) bucket)
          (Coll.Vchain.read_at chain ts))
      t.snap;
    !acc

  let fold f t init =
    if TM.in_snapshot () then snap_fold f t init
    else if not (TM.in_txn ()) then
      L.critical_all t.locks (fun () ->
          let acc = ref init in
          Array.iter
            (fun shard -> M.iter (fun k v -> acc := f k v !acc) shard)
            t.shards;
          !acc)
    else begin
      let l = local_of t in
      L.critical_all t.locks (fun () ->
          L.lock_size t.locks l.txn;
          l.struct_locked <- true;
          let acc = ref init in
          Array.iter
            (fun shard ->
              M.iter
                (fun k v ->
                  match Coll.Chain_hashmap.find l.buffer k with
                  | Some { pending = None; _ } -> () (* removed by us *)
                  | Some { pending = Some v'; _ } ->
                      lock_key t l k;
                      acc := f k v' !acc
                  | None ->
                      lock_key t l k;
                      acc := f k v !acc)
                shard)
            t.shards;
          (* Keys added only in the buffer. *)
          Coll.Chain_hashmap.iter
            (fun k w ->
              match w.pending with
              | Some v when not (M.mem (shard_of t k) k) -> acc := f k v !acc
              | _ -> ())
            l.buffer;
          !acc)
    end

  let iter f t = fold (fun k v () -> f k v) t ()
  let to_list t = fold (fun k v acc -> (k, v) :: acc) t []
  let keys t = fold (fun k _ acc -> k :: acc) t []
  let values t = fold (fun _ v acc -> v :: acc) t []

  (* Compound convenience operations built from the primitives, so their
     conflict behaviour follows from the primitive locks (the paper's
     primitive/derivative categorisation). *)

  let put_if_absent t k v =
    (* Reads the key (lock), writes only when absent; returns the residing
       value. *)
    match find t k with
    | Some existing -> existing
    | None ->
        ignore (put t k v);
        v

  let update t k f =
    (* Read-modify-write under the key lock. *)
    match f (find t k) with
    | Some v -> ignore (put t k v)
    | None -> ignore (remove t k)

  (* ---------------- cursor-style iteration ---------------- *)

  (* The paper's iterator takes a key lock on each key as [next] returns it
     and reveals the size when the enumeration completes.  Two policies for
     the size lock:
     - [`Eager] (default): taken at cursor creation, so a concurrent
       size-changing commit always aborts the iterating transaction — the
       enumeration is strictly serializable;
     - [`At_exhaustion]: taken only when [next] first returns [None],
       matching Table 2's "size lock on false return value of hasNext"
       exactly; a key committed mid-iteration into an already-passed
       position can then be missed without a conflict (the anomaly is
       discussed in EXPERIMENTS.md). *)
  type 'v cursor = {
    cparent : 'v t;
    mutable candidates : M.key list;
    mutable exhausted : bool;
    cpolicy : [ `Eager | `At_exhaustion ];
  }

  let cursor ?(size_lock = `Eager) t =
    let candidates =
      if TM.in_snapshot () then
        (* Candidate keys from the pinned shadows; [next] re-resolves each
           against the same stamp, so the cursor never sees a torn state
           and takes no locks.  Must be drained inside the same snapshot
           section it was created in. *)
        snap_fold (fun k _ acc -> k :: acc) t []
      else if TM.in_txn () then begin
        let l = local_of t in
        L.critical_all t.locks (fun () ->
            if size_lock = `Eager then begin
              L.lock_size t.locks l.txn;
              l.struct_locked <- true
            end;
            let keys = ref [] in
            Array.iter
              (fun shard -> M.iter (fun k _ -> keys := k :: !keys) shard)
              t.shards;
            Coll.Chain_hashmap.iter
              (fun k w ->
                if Option.is_some w.pending && not (M.mem (shard_of t k) k)
                then keys := k :: !keys)
              l.buffer;
            !keys)
      end
      else
        L.critical_all t.locks (fun () ->
            let keys = ref [] in
            Array.iter
              (fun shard -> M.iter (fun k _ -> keys := k :: !keys) shard)
              t.shards;
            !keys)
    in
    { cparent = t; candidates; exhausted = false; cpolicy = size_lock }

  let rec next c =
    let t = c.cparent in
    match c.candidates with
    | [] ->
        if not c.exhausted then begin
          c.exhausted <- true;
          if c.cpolicy = `At_exhaustion && TM.in_txn () then begin
            let l = local_of t in
            TM.critical (sregion t) (fun () ->
                L.lock_size t.locks l.txn;
                l.struct_locked <- true)
          end
        end;
        None
    | k :: rest -> (
        c.candidates <- rest;
        let hit =
          if TM.in_snapshot () then
            Option.map (fun v -> (k, v)) (shadow_find (snap_shadow t k) k)
          else if not (TM.in_txn ()) then
            TM.critical (key_region t k) (fun () ->
                Option.map (fun v -> (k, v)) (M.find (shard_of t k) k))
          else begin
            let l = local_of t in
            TM.critical (key_region t k) (fun () ->
                match Coll.Chain_hashmap.find l.buffer k with
                | Some { pending = Some v; _ } -> Some (k, v)
                | Some { pending = None; _ } -> None (* removed by us *)
                | None -> (
                    match M.find (shard_of t k) k with
                    | Some v ->
                        lock_key t l k;
                        Some (k, v)
                    | None -> None (* removed by an earlier-serialized txn *)))
          end
        in
        match hit with Some kv -> Some kv | None -> next c)

  (* ---------------- introspection for tests/traces ---------------- *)

  (* Longest shadow chain (stripes and structure) — reclamation probe for
     leak tests: bounded by [TM.version_chain_bound] once the oldest
     snapshot-reader epoch has advanced. *)
  let snapshot_history_length t =
    Array.fold_left
      (fun acc chain -> max acc (Coll.Vchain.length chain))
      (Coll.Vchain.length t.snap_struct)
      t.snap

  let holds_key_lock t k =
    TM.critical (key_region t k) (fun () ->
        L.key_locked_by t.locks (TM.current ()) k)

  let holds_size_lock t =
    TM.critical (sregion t) (fun () ->
        L.size_locked_by t.locks (TM.current ()))

  let holds_isempty_lock t =
    TM.critical (sregion t) (fun () ->
        L.isempty_locked_by t.locks (TM.current ()))

  let outstanding_locks t =
    L.critical_all t.locks (fun () -> L.total_lockers t.locks)

  (* Live rendering of Table 3's state inventory: committed state (the
     sharded wrapped map), shared transactional state (lock tables), and
     the local transactional state of the calling domain's active
     transactions (locals are domain-local). *)
  let dump_state ppf t =
    L.critical_all t.locks (fun () ->
        Format.fprintf ppf "Committed state:@.";
        Format.fprintf ppf "  map                 %d bindings in %d stripes@."
          t.csize (stripe_count t);
        Format.fprintf ppf "Shared transactional state (open-nested):@.";
        Format.fprintf ppf "  key2lockers         %d entries@."
          (L.key_entry_count t.locks);
        Format.fprintf ppf "  sizeLockers         %d@."
          (L.size_locker_count t.locks);
        Format.fprintf ppf "  isEmptyLockers      %d@."
          (L.isempty_locker_count t.locks);
        let d = Domain.DLS.get t.dls in
        Format.fprintf ppf "Local transactional state (%d active txns):@."
          (Hashtbl.length d.tbl);
        Hashtbl.iter
          (fun id l ->
            Format.fprintf ppf
              "  txn %-6d storeBuffer=%d entries, keyLocks=%d@." id
              (Coll.Chain_hashmap.size l.buffer)
              (List.length l.key_locks))
          d.tbl)

  let buffered_writes t =
    let d = Domain.DLS.get t.dls in
    match Hashtbl.find_opt d.tbl (TM.txn_id (TM.current ())) with
    | None -> 0
    | Some l -> Coll.Chain_hashmap.size l.buffer
end
