(* TransactionalMap (paper §3.1): wraps an existing Map implementation and
   replaces memory-level conflicts (size field, bucket collisions) with
   semantic conflict detection on the Map abstract data type.

   Structure mirrors Table 3:
   - committed state: the wrapped map, read/written only inside [critical]
     regions (the open-nesting discipline of §5);
   - shared transactional state: the semantic lock tables ([Semlock]);
   - local transactional state: a store buffer of deferred writes plus the
     list of key locks held, one record per active top-level transaction.

   Locking follows Table 2: read operations take key/size/isEmpty locks when
   executed; writes are buffered and detect conflicts at commit time by
   aborting other transactions that hold locks on the abstract state being
   written (optimistic semantic concurrency control, §5.1). *)

module Make (TM : Tm_intf.TM_OPS) (M : Tm_intf.MAP_OPS) = struct
  module L = Semlock.Make (TM)

  type isempty_policy =
    | Dedicated  (** isEmpty is a primitive operation with its own lock,
                     conflicting only when emptiness changes (§5.1). *)
    | Via_size  (** isEmpty derives from size and takes the size lock — the
                    concurrency-limiting variant, kept for the ablation. *)

  (** When are write-write/write-read semantic conflicts detected (§5.1
      "Alternatives to optimistic concurrency control")? *)
  type write_policy =
    | Optimistic  (** at commit time: the committer aborts lock holders. *)
    | Pessimistic_aggressive
        (** at operation time: the writer immediately aborts every other
            holder of the key's lock. *)
    | Pessimistic_timid
        (** at operation time: the writer aborts itself (transparent retry
            with backoff) while any other transaction holds the key. *)

  type 'v write = {
    pending : 'v option; (* None = removal *)
    prior : bool option; (* presence read at operation time; None = blind *)
  }

  (* Local records are pooled per collection (see [cleanup]): [txn] is
     rebound on reuse and the four handler closures are built once, closing
     over the record itself, so steady-state transactions allocate neither
     a fresh store buffer nor fresh handlers. *)
  type 'v local = {
    mutable txn : TM.txn;
    buffer : (M.key, 'v write) Coll.Chain_hashmap.t;
    mutable key_locks : M.key list;
    mutable h_read_only : unit -> bool;
    mutable h_prepare : unit -> unit;
    mutable h_apply : unit -> unit;
    mutable h_abort : unit -> unit;
  }

  type 'v t = {
    region : TM.region;
    map : 'v M.t;
    locks : M.key L.t;
    locals : (int, 'v local) Hashtbl.t;
    mutable pool : 'v local list;
        (* Recycled local records; pushed/popped only inside [critical]. *)
    isempty_policy : isempty_policy;
    write_policy : write_policy;
    copy_key : M.key -> M.key;
        (* §5.1 "Leaking uncommitted data": keys recorded in the shared lock
           table may be objects whose construction has not committed, and
           they remain visible to other transactions through equals/hash.
           Supplying a copier stores an independent committed copy instead.
           The default is identity — correct for immutable keys. *)
  }

  let wrap ?(isempty_policy = Dedicated) ?(write_policy = Optimistic)
      ?(copy_key = Fun.id) map =
    {
      region = TM.new_region ();
      map;
      locks = L.create ();
      locals = Hashtbl.create 32;
      pool = [];
      isempty_policy;
      write_policy;
      copy_key;
    }

  let create ?isempty_policy ?write_policy ?copy_key () =
    wrap ?isempty_policy ?write_policy ?copy_key (M.create ())
  let critical t f = TM.critical t.region f

  (* ---------------- commit/abort handlers ---------------- *)

  (* Runs inside [critical], exactly once per transaction (the apply and
     abort handlers are mutually exclusive), so the record can be scrubbed
     and recycled: the buffer keeps its capacity across reuses. *)
  let cleanup t l =
    L.release_all t.locks l.txn ~keys:l.key_locks;
    Hashtbl.remove t.locals (TM.txn_id l.txn);
    Coll.Chain_hashmap.clear l.buffer;
    l.key_locks <- [];
    t.pool <- l :: t.pool

  let presence_changes t l =
    Coll.Chain_hashmap.fold
      (fun k w acc ->
        let prior =
          match w.prior with Some p -> p | None -> M.mem t.map k
        in
        let after = Option.is_some w.pending in
        if after && not prior then acc + 1
        else if (not after) && prior then acc - 1
        else acc)
      l.buffer 0

  (* Prepare phase: conflict detection per Table 2 — aborting holders of
     key locks on written keys, size lockers when the size changes, and
     isEmpty lockers when emptiness flips.  Read-only on the map and may
     raise (remote-abort deferral, injected fault): it runs before the
     TM's commit point so an exception here aborts with nothing applied. *)
  let prepare_handler t l () =
    critical t (fun () ->
        let self = l.txn in
        let was_size = M.size t.map in
        let delta = presence_changes t l in
        Coll.Chain_hashmap.iter
          (fun k _ -> L.conflict_key t.locks ~self k)
          l.buffer;
        if delta <> 0 then L.conflict_size t.locks ~self;
        let now_size = was_size + delta in
        if (was_size = 0) <> (now_size = 0) then L.conflict_isempty t.locks ~self)

  (* Apply phase, after the commit point: flush the store buffer (redo
     log) to the underlying map and release semantic locks. *)
  let apply_handler t l () =
    critical t (fun () ->
        Coll.Chain_hashmap.iter
          (fun k w ->
            match w.pending with
            | Some v -> M.add t.map k v
            | None -> M.remove t.map k)
          l.buffer;
        cleanup t l)

  let abort_handler t l () = critical t (fun () -> cleanup t l)

  let fresh_local t txn =
    let l =
      {
        txn;
        buffer = Coll.Chain_hashmap.create ();
        key_locks = [];
        h_read_only = (fun () -> false);
        h_prepare = ignore;
        h_apply = ignore;
        h_abort = ignore;
      }
    in
    (* Read-only certificate: an empty store buffer means prepare would
       detect nothing and apply only releases read locks, so a getter-only
       transaction (find/mem/size/is_empty) can take the TM's read-only
       commit fast path. *)
    l.h_read_only <- (fun () -> Coll.Chain_hashmap.is_empty l.buffer);
    l.h_prepare <- prepare_handler t l;
    l.h_apply <- apply_handler t l;
    l.h_abort <- abort_handler t l;
    l

  (* One local record per top-level transaction; its creation registers the
     single commit handler and single abort handler of §5's guidelines. *)
  let local_of t =
    let txn = TM.current () in
    let id = TM.txn_id txn in
    match Hashtbl.find_opt t.locals id with
    | Some l -> l
    | None ->
        let l =
          match t.pool with
          | l :: rest ->
              t.pool <- rest;
              l.txn <- txn;
              l
          | [] -> fresh_local t txn
        in
        Hashtbl.add t.locals id l;
        TM.on_commit_prepared ~read_only:l.h_read_only t.region
          ~prepare:l.h_prepare ~apply:l.h_apply;
        TM.on_abort l.h_abort;
        l

  let lock_key t l k =
    if not (L.key_locked_by t.locks l.txn k) then begin
      let committed_copy = t.copy_key k in
      L.lock_key t.locks l.txn committed_copy;
      l.key_locks <- committed_copy :: l.key_locks
    end

  (* ---------------- read operations ---------------- *)

  let find t k =
    if not (TM.in_txn ()) then critical t (fun () -> M.find t.map k)
    else
      critical t (fun () ->
          let l = local_of t in
          match Coll.Chain_hashmap.find l.buffer k with
          | Some w -> w.pending (* own write: no global read involved *)
          | None ->
              lock_key t l k;
              M.find t.map k)

  let mem t k = Option.is_some (find t k)

  let size t =
    if not (TM.in_txn ()) then critical t (fun () -> M.size t.map)
    else
      critical t (fun () ->
          let l = local_of t in
          L.lock_size t.locks l.txn;
          M.size t.map + presence_changes t l)

  let is_empty t =
    if not (TM.in_txn ()) then critical t (fun () -> M.size t.map = 0)
    else
      critical t (fun () ->
          let l = local_of t in
          (match t.isempty_policy with
          | Dedicated -> L.lock_isempty t.locks l.txn
          | Via_size -> L.lock_size t.locks l.txn);
          M.size t.map + presence_changes t l = 0)

  (* ---------------- write operations ---------------- *)

  (* Pessimistic early conflict detection on the written key (§5.1).  Runs
     inside the critical region; a [`Retry] verdict is acted on outside it
     (TM.retry must be raised from transaction context, not from inside the
     open-nested atomic section). *)
  let pessimistic_status t l k =
    match t.write_policy with
    | Optimistic -> `Ok
    | Pessimistic_aggressive ->
        L.conflict_key t.locks ~self:l.txn k;
        `Ok
    | Pessimistic_timid ->
        let others =
          List.exists
            (fun o -> not (TM.same_txn o l.txn))
            (L.key_readers t.locks k)
          ||
          match L.key_writer t.locks k with
          | Some w -> not (TM.same_txn w l.txn)
          | None -> false
        in
        if others then `Retry else `Ok

  let buffer_write t l k pending ~blind =
    match Coll.Chain_hashmap.find l.buffer k with
    | Some w ->
        let old = w.pending in
        Coll.Chain_hashmap.add l.buffer k { pending; prior = w.prior };
        old
    | None ->
        if blind then begin
          Coll.Chain_hashmap.add l.buffer k { pending; prior = None };
          None
        end
        else begin
          (* Returning the previous value reads the key (Table 2: put and
             remove take a key lock on their argument). *)
          lock_key t l k;
          let old = M.find t.map k in
          Coll.Chain_hashmap.add l.buffer k
            { pending; prior = Some (Option.is_some old) };
          old
        end

  (* Transactional write entry point: pessimistic policies may demand a
     transparent retry, raised outside the critical region. *)
  let rec write_op t k pending ~blind =
    let verdict =
      critical t (fun () ->
          let l = local_of t in
          match pessimistic_status t l k with
          | `Retry -> `Retry
          | `Ok -> `Done (buffer_write t l k pending ~blind))
    in
    match verdict with
    | `Done old -> old
    | `Retry ->
        TM.retry () |> ignore;
        write_op t k pending ~blind

  let put t k v =
    if not (TM.in_txn ()) then
      critical t (fun () ->
          let old = M.find t.map k in
          M.add t.map k v;
          old)
    else write_op t k (Some v) ~blind:false

  let remove t k =
    if not (TM.in_txn ()) then
      critical t (fun () ->
          let old = M.find t.map k in
          M.remove t.map k;
          old)
    else write_op t k None ~blind:false

  (* Blind variants (§5.1 "Extensions to java.util.Map"): no previous-value
     read, hence no key lock and no ordering between two transactions that
     only write the same key. *)
  let put_blind t k v =
    if not (TM.in_txn ()) then critical t (fun () -> M.add t.map k v)
    else ignore (write_op t k (Some v) ~blind:true)

  let remove_blind t k =
    if not (TM.in_txn ()) then critical t (fun () -> M.remove t.map k)
    else ignore (write_op t k None ~blind:true)

  (* ---------------- iteration ---------------- *)

  (* Full enumeration inside one critical section: merges the underlying map
     with the store buffer, takes a key lock on every key returned and — as
     the enumeration observes the complete contents — the size lock. *)
  let fold f t init =
    if not (TM.in_txn ()) then
      critical t (fun () ->
          let acc = ref init in
          M.iter (fun k v -> acc := f k v !acc) t.map;
          !acc)
    else
      critical t (fun () ->
          let l = local_of t in
          L.lock_size t.locks l.txn;
          let acc = ref init in
          M.iter
            (fun k v ->
              match Coll.Chain_hashmap.find l.buffer k with
              | Some { pending = None; _ } -> () (* removed by us *)
              | Some { pending = Some v'; _ } ->
                  lock_key t l k;
                  acc := f k v' !acc
              | None ->
                  lock_key t l k;
                  acc := f k v !acc)
            t.map;
          (* Keys added only in the buffer. *)
          Coll.Chain_hashmap.iter
            (fun k w ->
              match w.pending with
              | Some v when not (M.mem t.map k) -> acc := f k v !acc
              | _ -> ())
            l.buffer;
          !acc)

  let iter f t = fold (fun k v () -> f k v) t ()
  let to_list t = fold (fun k v acc -> (k, v) :: acc) t []
  let keys t = fold (fun k _ acc -> k :: acc) t []
  let values t = fold (fun _ v acc -> v :: acc) t []

  (* Compound convenience operations built from the primitives, so their
     conflict behaviour follows from the primitive locks (the paper's
     primitive/derivative categorisation). *)

  let put_if_absent t k v =
    (* Reads the key (lock), writes only when absent; returns the residing
       value. *)
    match find t k with
    | Some existing -> existing
    | None ->
        ignore (put t k v);
        v

  let update t k f =
    (* Read-modify-write under the key lock. *)
    match f (find t k) with
    | Some v -> ignore (put t k v)
    | None -> ignore (remove t k)

  (* ---------------- cursor-style iteration ---------------- *)

  (* The paper's iterator takes a key lock on each key as [next] returns it
     and reveals the size when the enumeration completes.  Two policies for
     the size lock:
     - [`Eager] (default): taken at cursor creation, so a concurrent
       size-changing commit always aborts the iterating transaction — the
       enumeration is strictly serializable;
     - [`At_exhaustion]: taken only when [next] first returns [None],
       matching Table 2's "size lock on false return value of hasNext"
       exactly; a key committed mid-iteration into an already-passed
       position can then be missed without a conflict (the anomaly is
       discussed in EXPERIMENTS.md). *)
  type 'v cursor = {
    cparent : 'v t;
    mutable candidates : M.key list;
    mutable exhausted : bool;
    cpolicy : [ `Eager | `At_exhaustion ];
  }

  let cursor ?(size_lock = `Eager) t =
    let candidates =
      critical t (fun () ->
          if TM.in_txn () then begin
            let l = local_of t in
            if size_lock = `Eager then L.lock_size t.locks l.txn;
            let keys = ref [] in
            M.iter (fun k _ -> keys := k :: !keys) t.map;
            Coll.Chain_hashmap.iter
              (fun k w ->
                if Option.is_some w.pending && not (M.mem t.map k) then
                  keys := k :: !keys)
              l.buffer;
            !keys
          end
          else begin
            let keys = ref [] in
            M.iter (fun k _ -> keys := k :: !keys) t.map;
            !keys
          end)
    in
    { cparent = t; candidates; exhausted = false; cpolicy = size_lock }

  let rec next c =
    let t = c.cparent in
    match c.candidates with
    | [] ->
        if not c.exhausted then begin
          c.exhausted <- true;
          if c.cpolicy = `At_exhaustion then
            critical t (fun () ->
                if TM.in_txn () then L.lock_size t.locks (local_of t).txn)
        end;
        None
    | k :: rest -> (
        c.candidates <- rest;
        let hit =
          critical t (fun () ->
              if not (TM.in_txn ()) then
                Option.map (fun v -> (k, v)) (M.find t.map k)
              else
                let l = local_of t in
                match Coll.Chain_hashmap.find l.buffer k with
                | Some { pending = Some v; _ } -> Some (k, v)
                | Some { pending = None; _ } -> None (* removed by us *)
                | None -> (
                    match M.find t.map k with
                    | Some v ->
                        lock_key t l k;
                        Some (k, v)
                    | None -> None (* removed by an earlier-serialized txn *)))
        in
        match hit with Some kv -> Some kv | None -> next c)

  (* ---------------- introspection for tests/traces ---------------- *)

  let holds_key_lock t k =
    critical t (fun () -> L.key_locked_by t.locks (TM.current ()) k)

  let holds_size_lock t =
    critical t (fun () -> L.size_locked_by t.locks (TM.current ()))

  let holds_isempty_lock t =
    critical t (fun () -> L.isempty_locked_by t.locks (TM.current ()))

  let outstanding_locks t = critical t (fun () -> L.total_lockers t.locks)

  (* Live rendering of Table 3's state inventory: committed state (the
     wrapped map), shared transactional state (lock tables), and the local
     transactional state of every active transaction. *)
  let dump_state ppf t =
    critical t (fun () ->
        Format.fprintf ppf "Committed state:@.";
        Format.fprintf ppf "  map                 %d bindings@." (M.size t.map);
        Format.fprintf ppf "Shared transactional state (open-nested):@.";
        Format.fprintf ppf "  key2lockers         %d entries@."
          (L.key_entry_count t.locks);
        Format.fprintf ppf "  sizeLockers         %d@."
          (L.size_locker_count t.locks);
        Format.fprintf ppf "  isEmptyLockers      %d@."
          (L.isempty_locker_count t.locks);
        Format.fprintf ppf "Local transactional state (%d active txns):@."
          (Hashtbl.length t.locals);
        Hashtbl.iter
          (fun id l ->
            Format.fprintf ppf
              "  txn %-6d storeBuffer=%d entries, keyLocks=%d@." id
              (Coll.Chain_hashmap.size l.buffer)
              (List.length l.key_locks))
          t.locals)

  let buffered_writes t =
    critical t (fun () ->
        match Hashtbl.find_opt t.locals (TM.txn_id (TM.current ())) with
        | None -> 0
        | Some l -> Coll.Chain_hashmap.size l.buffer)
end
