(* The Proust-style semantic functor: derive a transactional collection
   class from a sequential implementation plus a commutativity/lock spec.

   Every hand-written wrapper in this library repeats the same concurrent
   plumbing — semantic lock acquisition under the right stripe regions,
   a keyed store buffer (redo log), a commit region plan, two-phase
   prepare/apply handlers, abort teardown — and PR 5's lost write-write
   conflict showed that this plumbing is exactly where the bugs live.
   {!Make} generates all of it from a {!SPEC}: the spec contributes only
   the *sequential* semantics (apply one buffered write to a shard,
   overlay a buffered write on an observation, the weight an observation
   contributes to the collection's size) and declares which structural
   facets ({!Commute_spec.facet}) its read operations can observe.  The
   conflict relation is then derived, conservatively, from that facet
   algebra instead of being hand-transcribed per class:

   - a read of key [k] locks [FKey k]; size/isEmpty/first reads lock
     their structural facet;
   - a committing batch invalidates [FKey k] for every buffered key, the
     size facet when its net weight delta is non-zero, the isEmpty facet
     when emptiness flips, and the first facet when it shrinks anywhere
     or touches a key at or below the committed minimum;
   - the committer remote-aborts every holder of an invalidated facet in
     its prepare phase (before the TM's commit point), which is the
     paper's optimistic semantic concurrency control.

   Soundness argument (checked end-to-end by test/test_derive.ml): a
   transaction that observed facet [F] holds [F]'s lock from the
   operation until its commit completes, and a committing writer holds
   every region of its plan from before prepare until after apply.  A
   reader that registered before the writer's prepare is remote-aborted
   (before anything applied); a reader arriving later blocks on the
   writer's regions and observes either none or all of the batch — so no
   transaction ever observes a torn batch, and two operations declared
   commutative by the spec never conflict (their facets are disjoint),
   while every non-commuting pair overlaps on a facet and is forced to
   conflict.

   Conservatism costs only spurious aborts (the victim retries and
   converges), never missed conflicts; the QCheck gate exercises both
   directions.

   Derived wrappers do not publish snapshot version chains: reads inside
   [Stm.snapshot] raise (the undo-map sets the precedent).  Pessimistic
   write policies are likewise out of scope — the derivation is the
   paper's optimistic protocol. *)

module type SPEC = sig
  type state
  (** One committed shard: mutable, not thread-safe — the generated
      wrapper serialises all access under its stripe's commit region. *)

  type key
  type value
  (** What a read of one key observes (set: [unit] presence, bag and
      priority queue: multiplicity, counter: the shard's sum). *)

  type wop
  (** One buffered write to one key — the store-buffer (redo log)
      alphabet. *)

  val name : string
  val create : unit -> state

  (* ---- sequential semantics of one shard ---- *)

  val find : state -> key -> value option
  val apply : state -> key -> wop -> unit
  (** Flush one buffered write into the committed shard.  Called only
      with the key's region held (commit apply phase, or a
      non-transactional write). *)

  val fold : (key -> value -> 'a -> 'a) -> state -> 'a -> 'a

  val min_key : state -> excluded:(key -> bool) -> key option
  (** Least committed key not in [excluded] ([excluded] is the
      transaction's own buffered-key set, whose views are overlaid
      separately).  Only consulted when [uses_first]; unordered specs
      return [None]. *)

  (* ---- store-buffer algebra ---- *)

  val combine : earlier:wop -> later:wop -> wop
  (** Two buffered writes to the same key collapse into one (last-write
      wins for map-style ops, sum for commutative deltas), keeping the
      buffer O(distinct keys) and the apply phase one-op-per-key. *)

  val view : value option -> wop -> value option
  (** Overlay a buffered write on a prior observation: what a read of
      the key returns inside the transaction that buffered it. *)

  val absorbing : wop -> bool
  (** [true] when [view prior w] is independent of [prior] (set-style
      last-write-wins): reading back one's own buffered write then needs
      no committed read and takes no key lock.  Delta-style writes
      (counter, bag) are not absorbing. *)

  val weight : value option -> int
  (** The observation's contribution to the collection's size (set: 0/1
      presence, bag/priority queue: multiplicity).  The functor maintains
      the committed size as the running sum of weights and derives the
      size/isEmpty conflict conditions from weight deltas. *)

  (* ---- structural facets the class's reads can observe ---- *)

  val uses_size : bool
  val uses_isempty : bool

  val uses_first : bool
  (** Ordered minimum observation (priority queues).  Forces a single
      stripe — the first facet is whole-collection state — and requires
      [compare_key]. *)

  val compare_key : (key -> key -> int) option
end

module Make (TM : Tm_intf.TM_OPS) (S : SPEC) = struct
  module L = Semlock.Make (TM)

  (* One store-buffer entry.  [prior] is the committed observation at the
     time the transaction first read the key ([None] = never read: the
     writes so far are blind); it stays valid for the transaction's
     lifetime because reading it also takes the key's lock, so any commit
     changing it aborts us first. *)
  type bw = { mutable w : S.wop; mutable prior : S.value option option }

  type local = {
    mutable txn : TM.txn;
    buffer : (S.key, bw) Coll.Chain_hashmap.t;
    mutable key_locks : S.key list;
    mutable stripes_mask : int;
    mutable struct_locked : bool;
    mutable h_read_only : unit -> bool;
    mutable h_regions : unit -> TM.region list;
    mutable h_prepare : unit -> unit;
    mutable h_apply : int -> unit;
    mutable h_abort : unit -> unit;
  }

  type domain_locals = {
    tbl : (int, local) Hashtbl.t;
    mutable pool : local list;
  }

  type t = {
    locks : S.key L.t;
    shards : S.state array; (* shard [i] holds the keys of stripe [i] *)
    mutable csize : int;
        (* sum of committed weights; read/written only under the
           structure region, and only maintained when a structural facet
           is in use *)
    dls : domain_locals Domain.DLS.key;
    pinned_policy : string option;
  }

  let default_stripes = 16

  (* All transactional state the functor generates is semantic (store
     buffers, lock tables, commit/abort handlers) — no tvar-level
     protocol axis can reach the wrapped structure, so every TM policy is
     safe.  Same capability record and rationale as the hand-written
     wrappers. *)
  let policy_support =
    {
      Tm_intf.ps_eager_acquire = true;
      ps_read_locking = true;
      ps_undo_logging = true;
    }

  let track_struct = S.uses_size || S.uses_isempty || S.uses_first

  let check_pinned_policy = function
    | None -> ()
    | Some name ->
        let cur = TM.txn_policy_name () in
        if not (String.equal cur name) then
          invalid_arg
            (Printf.sprintf
               "transaction ran under TM policy %s but the collection is \
                pinned to %s"
               cur name)

  let create ?(stripes = default_stripes) ?hash ?tm_policy () =
    Option.iter (TM.validate_policy ~support:policy_support) tm_policy;
    if S.uses_first && Option.is_none S.compare_key then
      invalid_arg (S.name ^ ": uses_first requires compare_key");
    (* The first facet is whole-collection state: observing the minimum
       must exclude every concurrent apply, so the ordered classes run
       unsharded (one stripe = the structure region). *)
    let stripes = if S.uses_first then 1 else stripes in
    let locks = L.create ~stripes ?hash () in
    let k = L.stripe_count locks in
    {
      locks;
      shards = Array.init k (fun _ -> S.create ());
      csize = 0;
      dls = Domain.DLS.new_key (fun () -> { tbl = Hashtbl.create 8; pool = [] });
      pinned_policy = tm_policy;
    }

  let pinned_policy t = t.pinned_policy
  let sregion t = L.struct_region t.locks
  let shard_of t k = t.shards.(L.stripe_index t.locks k)
  let key_region t k = L.region_of_key t.locks k
  let stripe_count t = L.stripe_count t.locks
  let outstanding_locks t = L.total_lockers t.locks

  let no_snapshot () =
    if TM.in_snapshot () then
      invalid_arg
        (S.name
       ^ ": snapshot reads are not supported by derived wrappers (no \
          shadow version chains)")

  (* ---------------- commit/abort handlers ---------------- *)

  let cleanup t l =
    List.iter
      (fun k ->
        TM.critical (key_region t k) (fun () -> L.release_key t.locks l.txn k))
      l.key_locks;
    if l.struct_locked then
      TM.critical (sregion t) (fun () -> L.release_structure t.locks l.txn);
    let d = Domain.DLS.get t.dls in
    Hashtbl.remove d.tbl (TM.txn_id l.txn);
    Coll.Chain_hashmap.clear l.buffer;
    l.key_locks <- [];
    l.stripes_mask <- 0;
    l.struct_locked <- false;
    d.pool <- l :: d.pool

  (* Committed observation backing a buffer entry; blind entries read it
     from the shard under a nested stripe critical (ascending rid from
     the structure region; reentrant from prepare with the plan held). *)
  let prior_of t k (e : bw) =
    match e.prior with
    | Some p -> p
    | None -> TM.critical (key_region t k) (fun () -> S.find (shard_of t k) k)

  (* Net weight change of the store buffer against current committed
     state — the derived size-facet conflict condition. *)
  let batch_delta t l =
    Coll.Chain_hashmap.fold
      (fun k e acc ->
        let prior = prior_of t k e in
        acc + S.weight (S.view prior e.w) - S.weight prior)
      l.buffer 0

  (* Commit region plan: the stripes of every locked/buffered key, plus
     the structure region when the transaction read structural state or
     its writes may move a structural facet (a blind write's effect is
     unknown until applied, so it is planned conservatively). *)
  let regions_plan t l () =
    let struct_needed =
      l.struct_locked
      || (track_struct
         && (not (Coll.Chain_hashmap.is_empty l.buffer))
         && (S.uses_first
            || Coll.Chain_hashmap.fold
                 (fun _ e acc ->
                   acc
                   ||
                   match e.prior with
                   | None -> true
                   | Some p -> S.weight (S.view p e.w) <> S.weight p)
                 l.buffer false))
    in
    let acc = ref [] in
    for i = stripe_count t - 1 downto 0 do
      if l.stripes_mask land (1 lsl i) <> 0 then
        acc := L.stripe_region t.locks i :: !acc
    done;
    if struct_needed then sregion t :: !acc else !acc

  (* Derived first-facet conflict condition, conservative: the batch can
     only move the minimum if it shrinks some key's weight or touches a
     key at or below the committed minimum (insertions above the current
     minimum with no shrink leave it in place).  Over-approximation costs
     a spurious abort of a min-observer, never a missed conflict. *)
  let first_invalidated t l =
    let cmp = Option.get S.compare_key in
    let committed_min = S.min_key t.shards.(0) ~excluded:(fun _ -> false) in
    Coll.Chain_hashmap.fold
      (fun k e acc ->
        acc
        ||
        let prior = prior_of t k e in
        S.weight (S.view prior e.w) < S.weight prior
        || (match committed_min with None -> true | Some m -> cmp k m <= 0))
      l.buffer false

  (* Prepare phase: abort the holders of every facet this batch
     invalidates.  Read-only on the shards and may raise; it runs before
     the TM's commit point so an exception aborts with nothing applied.
     Every critical below re-enters a region the plan already holds. *)
  let prepare_handler t l () =
    check_pinned_policy t.pinned_policy;
    let self = l.txn in
    Coll.Chain_hashmap.iter
      (fun k _ ->
        TM.critical (key_region t k) (fun () ->
            L.conflict_key t.locks ~self k))
      l.buffer;
    if S.uses_size || S.uses_isempty then begin
      let delta = batch_delta t l in
      if delta <> 0 then
        TM.critical (sregion t) (fun () ->
            if S.uses_size then L.conflict_size t.locks ~self;
            if
              S.uses_isempty
              && (t.csize = 0) <> (t.csize + delta = 0)
            then L.conflict_isempty t.locks ~self)
    end;
    if S.uses_first && not (Coll.Chain_hashmap.is_empty l.buffer) then
      TM.critical (sregion t) (fun () ->
          if first_invalidated t l then L.conflict_first t.locks ~self)

  (* Apply phase, after the commit point: flush the buffer to the shards
     (one combined op per key), fold the weight delta into the committed
     size, release semantic locks. *)
  let apply_handler t l _stamp =
    let delta = ref 0 in
    Coll.Chain_hashmap.iter
      (fun k e ->
        TM.critical (key_region t k) (fun () ->
            let shard = shard_of t k in
            let before = S.find shard k in
            S.apply shard k e.w;
            if track_struct then
              delta := !delta + S.weight (S.find shard k) - S.weight before))
      l.buffer;
    if track_struct && !delta <> 0 then
      TM.critical (sregion t) (fun () -> t.csize <- t.csize + !delta);
    cleanup t l

  let abort_handler t l () = cleanup t l

  let fresh_local t txn =
    let l =
      {
        txn;
        buffer = Coll.Chain_hashmap.create ();
        key_locks = [];
        stripes_mask = 0;
        struct_locked = false;
        h_read_only = (fun () -> false);
        h_regions = (fun () -> []);
        h_prepare = ignore;
        h_apply = (fun _ -> ());
        h_abort = ignore;
      }
    in
    (* Read-only certificate: an empty store buffer means prepare would
       detect nothing and apply only releases read locks, so a
       getter-only transaction takes the TM's read-only fast path. *)
    l.h_read_only <- (fun () -> Coll.Chain_hashmap.is_empty l.buffer);
    l.h_regions <- regions_plan t l;
    l.h_prepare <- prepare_handler t l;
    l.h_apply <- apply_handler t l;
    l.h_abort <- abort_handler t l;
    l

  let local_of t =
    let txn = TM.current () in
    let id = TM.txn_id txn in
    let d = Domain.DLS.get t.dls in
    match Hashtbl.find_opt d.tbl id with
    | Some l -> l
    | None ->
        let l =
          match d.pool with
          | l :: rest ->
              d.pool <- rest;
              l.txn <- txn;
              l
          | [] -> fresh_local t txn
        in
        Hashtbl.add d.tbl id l;
        TM.on_commit_prepared ~read_only:l.h_read_only ~regions:l.h_regions
          (sregion t) ~prepare:l.h_prepare ~apply:l.h_apply;
        TM.on_abort l.h_abort;
        l

  (* Caller holds [key_region t k]. *)
  let lock_key t l k =
    if not (L.key_locked_by t.locks l.txn k) then begin
      L.lock_key t.locks l.txn k;
      l.key_locks <- k :: l.key_locks;
      l.stripes_mask <- l.stripes_mask lor (1 lsl L.stripe_index t.locks k)
    end

  (* ---------------- reads ---------------- *)

  let find t k =
    no_snapshot ();
    if not (TM.in_txn ()) then
      TM.critical (key_region t k) (fun () -> S.find (shard_of t k) k)
    else begin
      let l = local_of t in
      TM.critical (key_region t k) (fun () ->
          match Coll.Chain_hashmap.find l.buffer k with
          | Some e ->
              if S.absorbing e.w then S.view None e.w
              else
                let prior =
                  match e.prior with
                  | Some p -> p
                  | None ->
                      (* Delta-style write-then-read: the observation
                         depends on committed state, which makes this a
                         key read — lock it. *)
                      lock_key t l k;
                      let p = S.find (shard_of t k) k in
                      e.prior <- Some p;
                      p
                in
                S.view prior e.w
          | None ->
              lock_key t l k;
              S.find (shard_of t k) k)
    end

  let size t =
    no_snapshot ();
    if not S.uses_size then invalid_arg (S.name ^ ": size facet not in spec");
    if not (TM.in_txn ()) then TM.critical (sregion t) (fun () -> t.csize)
    else begin
      let l = local_of t in
      TM.critical (sregion t) (fun () ->
          L.lock_size t.locks l.txn;
          l.struct_locked <- true;
          t.csize + batch_delta t l)
    end

  let is_empty t =
    no_snapshot ();
    if not S.uses_isempty then
      invalid_arg (S.name ^ ": isEmpty facet not in spec");
    if not (TM.in_txn ()) then TM.critical (sregion t) (fun () -> t.csize = 0)
    else begin
      let l = local_of t in
      TM.critical (sregion t) (fun () ->
          L.lock_isempty t.locks l.txn;
          l.struct_locked <- true;
          t.csize + batch_delta t l = 0)
    end

  (* Least key whose (buffer-overlaid) observation is present.  Takes the
     first-facet lock; committers that may move the minimum conflict it
     in prepare. *)
  let min_view t =
    no_snapshot ();
    if not S.uses_first then
      invalid_arg (S.name ^ ": first facet not in spec");
    let cmp = Option.get S.compare_key in
    if not (TM.in_txn ()) then
      TM.critical (sregion t) (fun () ->
          S.min_key t.shards.(0) ~excluded:(fun _ -> false))
    else begin
      let l = local_of t in
      TM.critical (sregion t) (fun () ->
          L.lock_first t.locks l.txn;
          l.struct_locked <- true;
          let excluded k = Option.is_some (Coll.Chain_hashmap.find l.buffer k) in
          let committed = S.min_key t.shards.(0) ~excluded in
          Coll.Chain_hashmap.fold
            (fun k e best ->
              match S.view (prior_of t k e) e.w with
              | None -> best
              | Some _ -> (
                  match best with
                  | None -> Some k
                  | Some b -> if cmp k b < 0 then Some k else best))
            l.buffer committed)
    end

  (* Full enumeration under all regions (structure then stripes,
     ascending rid), merging the shards with the store buffer.  Inside a
     transaction it locks the size facet (the enumeration observes the
     complete contents, so any weight-changing commit must conflict it)
     plus a key lock on every committed key returned; specs without the
     size facet cannot enumerate transactionally. *)
  let fold f t init =
    no_snapshot ();
    if not (TM.in_txn ()) then
      L.critical_all t.locks (fun () ->
          let acc = ref init in
          Array.iter (fun shard -> acc := S.fold f shard !acc) t.shards;
          !acc)
    else begin
      if not S.uses_size then
        invalid_arg
          (S.name ^ ": transactional enumeration requires the size facet");
      let l = local_of t in
      L.critical_all t.locks (fun () ->
          L.lock_size t.locks l.txn;
          l.struct_locked <- true;
          let acc = ref init in
          Array.iter
            (fun shard ->
              acc :=
                S.fold
                  (fun k v a ->
                    match Coll.Chain_hashmap.find l.buffer k with
                    | Some e -> (
                        match S.view (prior_of t k e) e.w with
                        | Some v' -> f k v' a
                        | None -> a)
                    | None ->
                        lock_key t l k;
                        f k v a)
                  shard !acc)
            t.shards;
          (* Buffered keys with no committed binding. *)
          Coll.Chain_hashmap.iter
            (fun k e ->
              if Option.is_none (S.find (shard_of t k) k) then
                match S.view (prior_of t k e) e.w with
                | Some v -> acc := f k v !acc
                | None -> ())
            l.buffer;
          !acc)
    end

  let iter f t = fold (fun k v () -> f k v) t ()

  (* ---------------- writes ---------------- *)

  (* Non-transactional write: structure-then-stripe (ascending rid) so
     the shard mutation and the committed-size update are atomic for
     structural readers. *)
  let nontxn_write t k w =
    if TM.in_snapshot () then
      invalid_arg (S.name ^ ": write inside a snapshot read section");
    let doit () =
      TM.critical (key_region t k) (fun () ->
          let shard = shard_of t k in
          let prior = S.find shard k in
          S.apply shard k w;
          (prior, S.find shard k))
    in
    if track_struct then
      TM.critical (sregion t) (fun () ->
          let prior, after = doit () in
          let d = S.weight after - S.weight prior in
          if d <> 0 then t.csize <- t.csize + d;
          prior)
    else fst (doit ())

  (* Transactional write: buffer the op (combining with an earlier write
     to the same key) and return the prior observation.  Blind writes
     read nothing and lock nothing — two blind writers of the same key
     never conflict with each other, only with the key's readers (this
     is what makes counter increments commute). *)
  let write t k w ~blind =
    if not (TM.in_txn ()) then nontxn_write t k w
    else begin
      let l = local_of t in
      TM.critical (key_region t k) (fun () ->
          match Coll.Chain_hashmap.find l.buffer k with
          | Some e ->
              let old =
                if blind then None
                else if S.absorbing e.w then S.view None e.w
                else
                  let prior =
                    match e.prior with
                    | Some p -> p
                    | None ->
                        lock_key t l k;
                        let p = S.find (shard_of t k) k in
                        e.prior <- Some p;
                        p
                  in
                  S.view prior e.w
              in
              e.w <- S.combine ~earlier:e.w ~later:w;
              old
          | None ->
              if blind then begin
                Coll.Chain_hashmap.add l.buffer k { w; prior = None };
                l.stripes_mask <-
                  l.stripes_mask lor (1 lsl L.stripe_index t.locks k);
                None
              end
              else begin
                (* Returning the prior observation reads the key
                   (Table 2: value-returning writes take a key lock). *)
                lock_key t l k;
                let p = S.find (shard_of t k) k in
                Coll.Chain_hashmap.add l.buffer k { w; prior = Some p };
                p
              end)
    end

  let write_blind t k w = ignore (write t k w ~blind:true)

  (* ---------------- introspection ---------------- *)

  let holds_key_lock t k =
    TM.in_txn () && L.key_locked_by t.locks (TM.current ()) k

  let buffered_writes t =
    if not (TM.in_txn ()) then 0
    else
      let d = Domain.DLS.get t.dls in
      match Hashtbl.find_opt d.tbl (TM.txn_id (TM.current ())) with
      | None -> 0
      | Some l -> Coll.Chain_hashmap.size l.buffer
end
