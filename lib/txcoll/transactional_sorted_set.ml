(* TransactionalSortedSet: wrapper over TransactionalSortedMap with unit
   values (paper §5.1). *)

module Make (TM : Tm_intf.TM_OPS) (M : Tm_intf.SORTED_MAP_OPS) = struct
  module Map = Transactional_sorted_map.Make (TM) (M)

  type t = unit Map.t

  let create ?splitters ?isempty_policy ?tm_policy () : t =
    Map.create ?splitters ?isempty_policy ?tm_policy ()

  let pinned_policy (t : t) = Map.pinned_policy t
  let mem (t : t) k = Map.mem t k
  let add (t : t) k = Map.put t k () = None
  let add_blind (t : t) k = Map.put_blind t k ()
  let remove (t : t) k = Map.remove t k <> None
  let remove_blind (t : t) k = Map.remove_blind t k
  let size (t : t) = Map.size t
  let is_empty (t : t) = Map.is_empty t
  let min_elt (t : t) = Map.first_key t
  let max_elt (t : t) = Map.last_key t
  let fold f (t : t) init = Map.fold (fun k () acc -> f k acc) t init
  let iter f (t : t) = Map.iter (fun k () -> f k) t
  let to_list (t : t) = List.rev (fold (fun k acc -> k :: acc) t [])

  let fold_range f (t : t) init ~lo ~hi =
    Map.fold_range (fun k () acc -> f k acc) t init ~lo ~hi
end
