(** Persistent FIFO deque: each committed state of the transactional work
    queue is one immutable value, published into its version chain. *)

type 'v t

val empty : 'v t
val length : 'v t -> int
val is_empty : 'v t -> bool
val enqueue : 'v t -> 'v -> 'v t
val push_front : 'v t -> 'v -> 'v t
val peek : 'v t -> 'v option
val dequeue : 'v t -> 'v option * 'v t
val to_list : 'v t -> 'v list
val of_list : 'v list -> 'v t
