(* Bounded multi-version chain: the last K committed versions of one cell,
   newest first, each stamped with the commit-clock value that published
   it.  The chain is one immutable list behind an [Atomic.t]:

   - readers [Atomic.get] the list once and walk it without any lock —
     a torn view is impossible (the list cells are immutable) and a
     concurrent publication simply isn't part of the snapshot;
   - publishers are expected to be externally serialised per chain (the
     STM publishes tvar chains while holding the tvar's versioned lock,
     and semantic shadow chains while holding the shard's commit region),
     so publication is a plain read-modify-write, no CAS loop.

   Reclamation is lazy and keyed off the oldest active reader epoch
   ([min_epoch], supplied by the publisher): a version may be dropped only
   when it is (a) beyond the [keep] bound and (b) *shadowed* for every
   epoch still reachable — some newer entry has a stamp <= the oldest
   active epoch, so no pinned reader can resolve to it.  While an old
   reader stays pinned the chain grows beyond [keep] (grow-only, never
   blocking the writer); once the oldest reader epoch advances the next
   publication trims it back to the bound. *)

type 'a t = (int * 'a) list Atomic.t

let make stamp v = Atomic.make [ (stamp, v) ]

let length t = List.length (Atomic.get t)

let latest t =
  match Atomic.get t with
  | (_, v) :: _ -> v
  | [] -> assert false (* chains are never empty *)

let latest_stamp t =
  match Atomic.get t with (s, _) :: _ -> s | [] -> assert false

(* Newest committed version with stamp <= [ts].  Under the snapshot pin
   protocol such an entry always exists (the pin caps every later trim at
   the pinned epoch); the [None] case means the caller read an unpinned
   timestamp. *)
let read_at_opt t ts =
  let rec go = function
    | (s, v) :: _ when s <= ts -> Some v
    | _ :: rest -> go rest
    | [] -> None
  in
  go (Atomic.get t)

(* Total variant: falls back to the oldest surviving version when nothing
   is stamped <= [ts] — reachable only outside the pin protocol. *)
let read_at t ts =
  let rec go last = function
    | (s, v) :: _ when s <= ts -> v
    | (_, v) :: rest -> go v rest
    | [] -> last
  in
  match Atomic.get t with
  | [] -> assert false
  | (_, newest) :: _ as l -> go newest l

(* Keep the newest-first prefix through max(first entry stamped <=
   min_epoch, keep); everything older is shadowed for every reachable
   epoch and reclaimed.  When no entry is stamped <= min_epoch a reader
   pinned at the oldest epoch still needs the whole tail: keep it all
   (grow-only under a long-pinned reader). *)
let trim ~keep ~min_epoch l =
  let rec first_shadow i = function
    | [] -> max_int
    | (s, _) :: _ when s <= min_epoch -> i
    | _ :: rest -> first_shadow (i + 1) rest
  in
  let fs = first_shadow 0 l in
  if fs = max_int then (l, 0)
  else
    let cutoff = max fs (keep - 1) in
    let rec take i = function
      | [] -> ([], 0)
      | e :: rest ->
          if i < cutoff then
            let rest', d = take (i + 1) rest in
            (e :: rest', d)
          else ([ e ], List.length rest)
    in
    take 0 l

(* Publish a new version stamped [stamp] and lazily reclaim shadowed
   entries beyond the bound.  Publishers are serialised per chain and
   stamps grow monotonically (each publisher advances the commit clock
   while holding the serialising lock), so the plain insert-at-head is
   order-correct; the sorted insert below is a defensive fallback for a
   stamp race that the locking discipline should make impossible.
   Returns the number of versions reclaimed. *)
let publish t ~keep ~min_epoch stamp v =
  let l = Atomic.get t in
  let l' =
    match l with
    | (s, _) :: _ when s >= stamp ->
        (* Out-of-order stamp (defensive): sorted insert, newest first. *)
        let rec ins = function
          | ((s', _) :: _) as rest when s' < stamp -> (stamp, v) :: rest
          | e :: rest -> e :: ins rest
          | [] -> [ (stamp, v) ]
        in
        ins l
    | _ -> (stamp, v) :: l
  in
  let trimmed, dropped = trim ~keep ~min_epoch l' in
  Atomic.set t trimmed;
  dropped
