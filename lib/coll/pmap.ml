(* Persistent (immutable) balanced map with a runtime comparator — the
   value type of a semantic shard's version chain.  Every committed state
   of a shard is one immutable tree; publishing a new version shares all
   untouched subtrees with its predecessor, so keeping K versions costs
   O(K * log n) extra nodes per commit, not K copies of the shard.

   Plain AVL (height-balanced) with the size cached at the root.  The
   comparator travels inside the map so polymorphic instantiations (the
   collections are functors over a runtime key module) need no functor
   application here. *)

type ('k, 'v) tree =
  | Empty
  | Node of { l : ('k, 'v) tree; k : 'k; v : 'v; r : ('k, 'v) tree; h : int }

type ('k, 'v) t = {
  cmp : 'k -> 'k -> int;
  root : ('k, 'v) tree;
  card : int;
}

let height = function Empty -> 0 | Node { h; _ } -> h

let node l k v r =
  Node { l; k; v; r; h = 1 + max (height l) (height r) }

let balance l k v r =
  let hl = height l and hr = height r in
  if hl > hr + 2 then
    match l with
    | Node { l = ll; k = lk; v = lv; r = lr; _ } ->
        if height ll >= height lr then node ll lk lv (node lr k v r)
        else begin
          match lr with
          | Node { l = lrl; k = lrk; v = lrv; r = lrr; _ } ->
              node (node ll lk lv lrl) lrk lrv (node lrr k v r)
          | Empty -> assert false
        end
    | Empty -> assert false
  else if hr > hl + 2 then
    match r with
    | Node { l = rl; k = rk; v = rv; r = rr; _ } ->
        if height rr >= height rl then node (node l k v rl) rk rv rr
        else begin
          match rl with
          | Node { l = rll; k = rlk; v = rlv; r = rlr; _ } ->
              node (node l k v rll) rlk rlv (node rlr rk rv rr)
          | Empty -> assert false
        end
    | Empty -> assert false
  else node l k v r

let empty ~compare = { cmp = compare; root = Empty; card = 0 }

let size m = m.card
let is_empty m = m.card = 0

let find m key =
  let cmp = m.cmp in
  let rec go = function
    | Empty -> None
    | Node { l; k; v; r; _ } ->
        let c = cmp key k in
        if c = 0 then Some v else if c < 0 then go l else go r
  in
  go m.root

let mem m key = Option.is_some (find m key)

let add m key value =
  let cmp = m.cmp in
  let grew = ref true in
  let rec go = function
    | Empty -> node Empty key value Empty
    | Node { l; k; v; r; _ } ->
        let c = cmp key k in
        if c = 0 then begin
          grew := false;
          node l key value r
        end
        else if c < 0 then balance (go l) k v r
        else balance l k v (go r)
  in
  let root = go m.root in
  { m with root; card = (if !grew then m.card + 1 else m.card) }

(* Leftmost binding of a non-empty tree (for deletion by successor). *)
let rec tree_min = function
  | Empty -> None
  | Node { l = Empty; k; v; _ } -> Some (k, v)
  | Node { l; _ } -> tree_min l

let rec tree_max = function
  | Empty -> None
  | Node { r = Empty; k; v; _ } -> Some (k, v)
  | Node { r; _ } -> tree_max r

let remove m key =
  let cmp = m.cmp in
  let removed = ref false in
  let rec go = function
    | Empty -> Empty
    | Node { l; k; v; r; _ } ->
        let c = cmp key k in
        if c = 0 then begin
          removed := true;
          match (l, r) with
          | Empty, t | t, Empty -> t
          | _ ->
              let sk, sv = Option.get (tree_min r) in
              let rec del_min = function
                | Empty -> assert false
                | Node { l = Empty; r; _ } -> r
                | Node { l; k; v; r; _ } -> balance (del_min l) k v r
              in
              balance l sk sv (del_min r)
        end
        else if c < 0 then balance (go l) k v r
        else balance l k v (go r)
  in
  let root = go m.root in
  if !removed then { m with root; card = m.card - 1 } else m

let min_binding m = tree_min m.root
let max_binding m = tree_max m.root

let fold f m init =
  let rec go acc = function
    | Empty -> acc
    | Node { l; k; v; r; _ } -> go (f k v (go acc l)) r
  in
  go init m.root

let iter f m = fold (fun k v () -> f k v) m ()

(* In-order iteration over keys [k] with [lo <= k < hi] (missing bound =
   unbounded), matching the collections' half-open range views.  [f] may
   raise for early exit. *)
let iter_range f m ~lo ~hi =
  let cmp = m.cmp in
  let above k = match lo with None -> true | Some b -> cmp k b >= 0 in
  let below k = match hi with None -> true | Some b -> cmp k b < 0 in
  let rec go = function
    | Empty -> ()
    | Node { l; k; v; r; _ } ->
        if above k then go l;
        if above k && below k then f k v;
        if below k then go r
  in
  go m.root

let of_seq ~compare seq =
  Seq.fold_left (fun m (k, v) -> add m k v) (empty ~compare) seq

let to_list m = List.rev (fold (fun k v acc -> (k, v) :: acc) m [])
