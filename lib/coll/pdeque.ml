(* Persistent FIFO deque (two-list Okasaki queue with front restore): the
   value type of the transactional queue's version chain.  Every committed
   queue state is one immutable value, so snapshot readers observe a whole
   queue at a point in time without touching the live structure. *)

type 'v t = { front : 'v list; rear : 'v list; len : int }
(* Invariant: elements leave from [front] head; [rear] is reversed. *)

let empty = { front = []; rear = []; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let enqueue t v = { t with rear = v :: t.rear; len = t.len + 1 }

let push_front t v = { t with front = v :: t.front; len = t.len + 1 }

let norm t =
  match t.front with
  | [] when t.rear <> [] -> { t with front = List.rev t.rear; rear = [] }
  | _ -> t

let peek t =
  let t = norm t in
  match t.front with v :: _ -> Some v | [] -> None

let dequeue t =
  let t = norm t in
  match t.front with
  | v :: front -> (Some v, { t with front; len = t.len - 1 })
  | [] -> (None, t)

let to_list t = t.front @ List.rev t.rear

let of_list l = { front = l; rear = []; len = List.length l }
