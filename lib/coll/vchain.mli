(** Bounded multi-version chain: the last K committed versions of one
    cell, stamped with the commit clock, read lock-free by snapshot
    readers and trimmed lazily against the oldest active reader epoch.
    Publishers must be externally serialised per chain (a versioned lock
    or commit region); readers need no synchronisation at all. *)

type 'a t

val make : int -> 'a -> 'a t
(** [make stamp v] is a chain holding the single version [v] at [stamp]. *)

val length : 'a t -> int
(** Number of versions currently retained (introspection / leak probes). *)

val latest : 'a t -> 'a
(** Newest committed version. *)

val latest_stamp : 'a t -> int
(** Stamp of the newest committed version. *)

val read_at : 'a t -> int -> 'a
(** [read_at t ts] is the newest version stamped [<= ts].  Total: falls
    back to the oldest surviving version when nothing qualifies, which is
    unreachable for timestamps pinned under the snapshot protocol. *)

val read_at_opt : 'a t -> int -> 'a option
(** As {!read_at} but [None] instead of the fallback — lets tests detect
    a reclaimed-version observation. *)

val publish : 'a t -> keep:int -> min_epoch:int -> int -> 'a -> int
(** [publish t ~keep ~min_epoch stamp v] prepends version [v] at [stamp]
    and reclaims every version that is beyond the [keep] bound and
    shadowed for all epochs [>= min_epoch] (some newer entry has a stamp
    [<= min_epoch]).  Returns the number of versions reclaimed.  Callers
    must be serialised per chain. *)
