(** Persistent balanced map with a runtime comparator: the value type of a
    semantic shard's version chain.  Each committed shard state is one
    immutable tree; successive versions share untouched subtrees. *)

type ('k, 'v) t

val empty : compare:('k -> 'k -> int) -> ('k, 'v) t
val size : ('k, 'v) t -> int
val is_empty : ('k, 'v) t -> bool
val find : ('k, 'v) t -> 'k -> 'v option
val mem : ('k, 'v) t -> 'k -> bool

val add : ('k, 'v) t -> 'k -> 'v -> ('k, 'v) t
(** Insert or replace; O(log n), shares untouched subtrees. *)

val remove : ('k, 'v) t -> 'k -> ('k, 'v) t
val min_binding : ('k, 'v) t -> ('k * 'v) option
val max_binding : ('k, 'v) t -> ('k * 'v) option
val fold : ('k -> 'v -> 'a -> 'a) -> ('k, 'v) t -> 'a -> 'a
val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit

val iter_range :
  ('k -> 'v -> unit) -> ('k, 'v) t -> lo:'k option -> hi:'k option -> unit
(** In-order over [lo <= k < hi] (missing bound = unbounded); [f] may
    raise for early exit. *)

val of_seq : compare:('k -> 'k -> int) -> ('k * 'v) Seq.t -> ('k, 'v) t
val to_list : ('k, 'v) t -> ('k * 'v) list
