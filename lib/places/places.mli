(** Resilient places: a replicated, recoverable sharded store.

    The transactional key space [0, key_space) is partitioned into P
    contiguous intervals, each owned by a {e place} — the x10
    [LocalStore]/[MasterStore]/[SlaveStore] blueprint, domain-hosted first
    but process-ready by design (replication batches are pure stamped
    data).  A place hosts one master {!Txcoll} hash map and one master
    sorted map over its interval; every committed mutation is emitted from
    the collections' exception-safe [on_commit_prepared] apply phase as a
    stamped replication-log batch into the paired slave's inbox, and
    applied to the slave replica either {e eagerly} (synchronously, inside
    the commit's place region) or {e lazily} (bounded lag, drained by a
    background domain with committer-side backpressure at the bound).

    Failure domain: {!kill} marks a place down — every transactional
    operation (and any in-flight transaction that already touched the
    place) fails with {!Tcc_stm.Stm.Place_down}, raised from the
    replication handler's prepare phase, i.e. strictly before the commit
    point, so nothing is applied and nothing is shipped.  {!recover}
    rebuilds the place from its slave: drain the shipped tail into the
    replica (replay), promote the replica into fresh master collections
    (re-registering their semantic lock shards), and install the new
    master generation under the place's region with a fresh epoch stamp.
    Committed writes are never lost: a transaction reports commit only
    after its batch is in the slave-owned inbox, which survives the
    master.

    Snapshot readers ({!Tcc_stm.Stm.snapshot}) keep running through
    failover: a killed place's master is frozen — its chains still
    resolve any pin taken before or during the outage — and a pin taken
    after recovery reads the promoted generation.  Only a reader whose
    pin predates the promoted generation's epoch is refused (the history
    it needs died with the old master): it observes {!Tcc_stm.Stm.Place_down}
    and re-pins. *)

type mode =
  | Eager  (** replicate inside the commit, before the committer returns *)
  | Lazy of { max_lag : int }
      (** replicate in the background; a committer finding more than
          [max_lag] pending batches drains synchronously (backpressure),
          so the lag bound holds even if the drainer stalls *)

type 'v t
(** A sharded store with ['v] values under [int] keys. *)

val create :
  ?place_count:int ->
  ?key_space:int ->
  ?mode:mode ->
  ?background:bool ->
  ?stripes:int ->
  unit ->
  'v t
(** [create ()] builds a store of [place_count] (default 4, clamped to
    [1, 64]) places over keys [0, key_space) (default 1024), replicating
    per [mode] (default [Eager]).  [stripes] (default 8) is forwarded to
    each place's master hash map.  With [Lazy] mode and [background]
    (default [true]), a drainer domain is spawned; {!close} must be called
    to join it. *)

val close : 'v t -> unit
(** Stop and join the background drainer (if any) and drain every inbox.
    The store remains usable afterwards (replication falls back to
    committer-side draining). *)

val place_count : 'v t -> int
val key_space : 'v t -> int
val mode : 'v t -> mode

val place_of_key : 'v t -> int -> int
(** The place owning a key.  Raises [Invalid_argument] outside
    [0, key_space). *)

(** {1 Hash-map operations}

    Callable inside a transaction (joining it: cross-place writes commit
    atomically), inside {!Tcc_stm.Stm.snapshot} (reads only), or outside
    (auto-commit: the operation runs in its own transaction).  All raise
    {!Tcc_stm.Stm.Place_down} per the failure-domain rules above. *)

val find : 'v t -> int -> 'v option
val mem : 'v t -> int -> bool
val put : 'v t -> int -> 'v -> 'v option
val remove : 'v t -> int -> 'v option
val size : 'v t -> int
val fold : (int -> 'v -> 'acc -> 'acc) -> 'v t -> 'acc -> 'acc
val to_list : 'v t -> (int * 'v) list

(** {1 Sorted-map operations}

    Same calling modes.  Because places own contiguous key intervals,
    ascending per-place enumeration concatenates into a globally ascending
    enumeration. *)

val sorted_find : 'v t -> int -> 'v option
val sorted_put : 'v t -> int -> 'v -> 'v option
val sorted_remove : 'v t -> int -> 'v option
val sorted_size : 'v t -> int
val sorted_fold : (int -> 'v -> 'acc -> 'acc) -> 'v t -> 'acc -> 'acc
val sorted_to_list : 'v t -> (int * 'v) list

(** {1 Failure domain} *)

val kill : 'v t -> int -> unit
(** Mark a place down, as a crash would.  Serialises with in-flight
    commits on the place's region: a commit that already passed its
    prepare check finishes shipping first; everything later aborts with
    {!Tcc_stm.Stm.Place_down} before its commit point.  Idempotent.  Must
    be called outside transactions and snapshots. *)

val recover : 'v t -> int -> unit
(** Rebuild a down place from its slave replica: replay the shipped tail,
    promote the replica into fresh master collections, install them as a
    new generation with a fresh epoch stamp, and mark the place up.
    No-op when the place is up.  Must be called outside transactions and
    snapshots. *)

val is_up : 'v t -> int -> bool

val generation : 'v t -> int -> int
(** Number of times the place has been promoted (0 initially). *)

(** {1 Replication introspection} *)

val drain : 'v t -> unit
(** Synchronously apply every pending replication batch of every place to
    its replica. *)

val replication_lag : 'v t -> int
(** Maximum number of pending (shipped, not yet replica-applied) batches
    over all places right now.  0 after {!drain} at quiescence. *)

val place_lag : 'v t -> int -> int

val max_lag_observed : 'v t -> int
(** High-water mark of the post-ship pending-batch count over the store's
    lifetime.  Bounded by [max_lag] in [Lazy] mode (backpressure) and 0 in
    [Eager] mode — the CI-gated bound. *)

val lag_bound : 'v t -> int option
(** [Some max_lag] in [Lazy] mode, [None] ([= 0]) in [Eager] mode. *)

val batches_shipped : 'v t -> int
val batches_applied : 'v t -> int

val replica_stamp : 'v t -> int -> int
(** Commit stamp of the last batch applied to the place's replica. *)

val replica_size : 'v t -> int -> int
(** Hash-map bindings in the place's replica (test probe). *)

val replica_agrees : 'v t -> bool
(** Drains, then structurally compares every up place's master map and
    sorted map against its replica — the replication-correctness probe
    used by tests and the failover soak.  [false] if any place is down.
    Uses polymorphic equality on values; call at quiescence. *)

(** {1 Leak probes} *)

val outstanding_locks : 'v t -> int
(** Semantic locks registered across all current master collections; 0
    when no transaction is mid-flight. *)

val snapshot_history_length : 'v t -> int
(** Longest multi-version shadow chain over all current master
    collections — the reclamation probe: converges back to at most
    [Stm.version_chain_bound] after recovery once no pinned reader holds
    an old epoch (dead generations are unreachable and simply collected).
    *)
