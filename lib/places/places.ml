(* Resilient places: replicated, recoverable sharded store (x10
   LocalStore/MasterStore/SlaveStore blueprint, domain-hosted).

   Key decisions, in correctness order:

   - The replication log is emitted from the collections' exception-safe
     [on_commit_prepared] apply phase, with the place's region held and
     the commit stamp in hand: per-place batch order therefore equals
     stamp order, and a batch exists iff the transaction committed.

   - The inbox the batches land in is owned by the *slave* side: a
     committer appends synchronously (both modes) and the lazy drainer
     only moves batches inbox -> replica.  Killing the master therefore
     never loses a committed-but-unreplicated tail — recovery replays the
     inbox before promoting.

   - A place's master collections live in one immutable [masters] record
     behind a single [Atomic.t]: transactions capture the record on first
     touch and the replication handler's prepare phase re-checks physical
     identity (plus up-ness) under the region, so a transaction spanning a
     kill or a recovery aborts with [Stm.Place_down] strictly before its
     commit point.  Recovery installs a fresh record (promote) — it never
     mutates the old one, which frozen snapshot readers may still hold.

   - The promoted generation carries an epoch stamp drawn *after* the
     replica was poured into the new masters: a snapshot pin below the
     epoch must not read the new generation (its chains do not reach that
     far back) and raises [Place_down]; a pin at or above it sees exactly
     the promoted state.  Pins below the epoch that captured the *old*
     masters keep reading the frozen pre-kill state, which is the correct
     committed state at their stamp because a down place commits nothing.

   - Lock order is per-place and cycle-free: committers take region ->
     inbox mutex -> replica mutex; the drainer takes replica -> inbox and
     no regions; recovery takes replica, then region, but only while the
     place is down, when no committer can be past prepare.  Cross-place
     commits acquire regions rid-sorted (the STM's commit plan). *)

module Stm = Tcc_stm.Stm
module Tm = Tcc_stm.Stm.Tm_ops
module Map = Txcoll.Host.Map (Txcoll.Host.Int_hashed)
module Sorted = Txcoll.Host.Sorted_map (Txcoll.Host.Int_ordered)

type mode = Eager | Lazy of { max_lag : int }

(* One replicated operation: a put (Some v) or a remove (None) against the
   hash map or the sorted map.  Pure data — a process boundary would
   serialise exactly this. *)
type 'v rop = { ro_sorted : bool; ro_key : int; ro_val : 'v option }

type 'v batch = { b_stamp : int; b_ops : 'v rop list (* application order *) }

type 'v replica = {
  r_mx : Mutex.t;
  r_map : (int, 'v) Hashtbl.t;
  r_sorted : (int, 'v) Hashtbl.t;
  mutable r_stamp : int; (* stamp of the last applied batch *)
}

type 'v inbox = {
  i_mx : Mutex.t;
  i_q : 'v batch Queue.t; (* stamp order = append order (region-held) *)
  mutable i_len : int;
}

type state = Up | Down

type 'v masters = {
  g_map : 'v Map.t;
  g_sorted : 'v Sorted.t;
  g_epoch : int; (* stamp the generation was promoted at; 0 for gen 0 *)
  g_gen : int;
}

type 'v place = {
  p_id : int;
  p_region : Tm.region;
  p_masters : 'v masters Atomic.t;
  p_state : state Atomic.t;
  p_inbox : 'v inbox;
  p_replica : 'v replica;
  p_shipped : int Atomic.t;
  p_applied : int Atomic.t;
  p_max_lag : int Atomic.t; (* high-water post-ship pending count *)
}

(* Per-transaction, per-place local state: the captured master generation
   and the replication buffer (newest first). *)
type 'v plocal = { pl_g : 'v masters; mutable pl_ops : 'v rop list }

type 'v t = {
  t_places : 'v place array;
  t_width : int;
  t_key_space : int;
  t_mode : mode;
  t_stripes : int;
  t_locals : (int, 'v plocal) Hashtbl.t Domain.DLS.key;
      (* keyed by txn_id * 64 + place id; entries removed by the commit
         apply / abort handlers of the registering transaction *)
  t_stop : bool Atomic.t;
  mutable t_drainer : unit Domain.t option;
}

let place_down pl = Stm.Place_down { place = pl.p_id }

let place_of_key t k =
  if k < 0 || k >= t.t_key_space then
    invalid_arg "Places: key outside [0, key_space)";
  k / t.t_width

let place_ix t p =
  if p < 0 || p >= Array.length t.t_places then
    invalid_arg "Places: no such place";
  t.t_places.(p)

(* ------------------------------------------------------------------ *)
(* Slave side: ship, drain, backpressure                               *)

let apply_batch pl b =
  List.iter
    (fun op ->
      let tbl = if op.ro_sorted then pl.p_replica.r_sorted else pl.p_replica.r_map in
      match op.ro_val with
      | Some v -> Hashtbl.replace tbl op.ro_key v
      | None -> Hashtbl.remove tbl op.ro_key)
    b.b_ops;
  pl.p_replica.r_stamp <- b.b_stamp;
  Atomic.incr pl.p_applied

(* Batches are popped and applied under the replica mutex for the whole
   loop, so concurrent drainers (committer backpressure, background
   domain, recovery) can never reorder two batches of one place. *)
let drain_place pl =
  Mutex.protect pl.p_replica.r_mx (fun () ->
      let go = ref true in
      while !go do
        let b =
          Mutex.protect pl.p_inbox.i_mx (fun () ->
              match Queue.take_opt pl.p_inbox.i_q with
              | Some b ->
                  pl.p_inbox.i_len <- pl.p_inbox.i_len - 1;
                  Some b
              | None -> None)
        in
        match b with Some b -> apply_batch pl b | None -> go := false
      done)

let rec amax a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then amax a v

(* Called from the replication handler's apply phase: the place's region
   is held and the transaction is past its commit point.  Appending to
   the inbox is what makes the commit durable against a master kill. *)
let ship mode pl stamp ops =
  let post =
    Mutex.protect pl.p_inbox.i_mx (fun () ->
        Queue.add { b_stamp = stamp; b_ops = ops } pl.p_inbox.i_q;
        pl.p_inbox.i_len <- pl.p_inbox.i_len + 1;
        pl.p_inbox.i_len)
  in
  Atomic.incr pl.p_shipped;
  (match mode with
  | Eager -> drain_place pl
  | Lazy { max_lag } -> if post > max_lag then drain_place pl);
  (* Post-ship pending count: 0 in eager mode, <= max_lag in lazy mode
     (this ship is the only one in flight for the place — region held). *)
  amax pl.p_max_lag pl.p_inbox.i_len

(* ------------------------------------------------------------------ *)
(* Transactional routing                                               *)

let up_and_current pl (l : 'v plocal) =
  Atomic.get pl.p_state = Up && Atomic.get pl.p_masters == l.pl_g

(* The transaction's local state for a place, created on first touch
   (reads included: a read of a later-killed place must not serialise
   after the failover, so even read-only transactions get the prepare
   check via the read_only certificate turning false). *)
let local_of t pl =
  let tbl = Domain.DLS.get t.t_locals in
  let key = (Tm.txn_id (Tm.current ()) * 64) + pl.p_id in
  match Hashtbl.find_opt tbl key with
  | Some l ->
      if not (up_and_current pl l) then raise (place_down pl);
      l
  | None ->
      if Atomic.get pl.p_state <> Up then raise (place_down pl);
      let l = { pl_g = Atomic.get pl.p_masters; pl_ops = [] } in
      Hashtbl.add tbl key l;
      let cleanup () = Hashtbl.remove tbl key in
      Tm.on_commit_prepared pl.p_region
        ~read_only:(fun () -> l.pl_ops = [] && up_and_current pl l)
        ~prepare:(fun () ->
          (* Region held, before the commit point: the authoritative
             failure-domain gate.  Raising here vetoes the whole commit —
             nothing applied, nothing shipped. *)
          if not (up_and_current pl l) then raise (place_down pl))
        ~apply:(fun wv ->
          if l.pl_ops <> [] then ship t.t_mode pl wv (List.rev l.pl_ops);
          cleanup ());
      Tm.on_abort cleanup;
      l

(* Snapshot access: resolve against whatever generation is current.  A
   frozen (killed) generation is still the correct committed state at any
   pin taken before its replacement was promoted; a promoted generation
   serves only pins at or above its epoch. *)
let snapshot_masters pl =
  let g = Atomic.get pl.p_masters in
  if Stm.snapshot_stamp () < g.g_epoch then raise (place_down pl);
  g

let nontxn_masters pl =
  if Atomic.get pl.p_state <> Up then raise (place_down pl);
  Atomic.get pl.p_masters

let read_op t k ~snap ~txn ~auto =
  let pl = t.t_places.(place_of_key t k) in
  if Stm.in_snapshot () then snap (snapshot_masters pl) k
  else if Stm.in_txn () then txn (local_of t pl).pl_g k
  else auto (nontxn_masters pl) k

(* Writes always run inside a transaction: outside one, the operation is
   wrapped in its own [Stm.atomic], so the replication handler and its
   prepare-phase generation check cover auto-commit writes too. *)
let write_op t k body =
  if Stm.in_snapshot () then
    invalid_arg "Places: mutating operation inside a snapshot read";
  let go () =
    let pl = t.t_places.(place_of_key t k) in
    body pl (local_of t pl)
  in
  if Stm.in_txn () then go () else Stm.atomic go

(* ------------------------------------------------------------------ *)
(* Hash-map operations                                                 *)

let find t k =
  read_op t k
    ~snap:(fun g k -> Map.find g.g_map k)
    ~txn:(fun g k -> Map.find g.g_map k)
    ~auto:(fun g k -> Map.find g.g_map k)

let mem t k = Option.is_some (find t k)

let put t k v =
  write_op t k (fun _pl l ->
      let prev = Map.put l.pl_g.g_map k v in
      l.pl_ops <- { ro_sorted = false; ro_key = k; ro_val = Some v } :: l.pl_ops;
      prev)

let remove t k =
  write_op t k (fun _pl l ->
      let prev = Map.remove l.pl_g.g_map k in
      l.pl_ops <- { ro_sorted = false; ro_key = k; ro_val = None } :: l.pl_ops;
      prev)

(* Cross-place aggregates: per-place access under the usual rules; outside
   a transaction the whole aggregate is wrapped in one, so the result is a
   consistent cut across places. *)
let fold f t init =
  if Stm.in_snapshot () then
    Array.fold_left
      (fun acc pl -> Map.fold f (snapshot_masters pl).g_map acc)
      init t.t_places
  else
    let go () =
      Array.fold_left
        (fun acc pl -> Map.fold f (local_of t pl).pl_g.g_map acc)
        init t.t_places
    in
    if Stm.in_txn () then go () else Stm.atomic go

let size t =
  if Stm.in_snapshot () then
    Array.fold_left
      (fun acc pl -> acc + Map.size (snapshot_masters pl).g_map)
      0 t.t_places
  else
    let go () =
      Array.fold_left
        (fun acc pl -> acc + Map.size (local_of t pl).pl_g.g_map)
        0 t.t_places
    in
    if Stm.in_txn () then go () else Stm.atomic go

let to_list t = List.rev (fold (fun k v acc -> (k, v) :: acc) t [])

(* ------------------------------------------------------------------ *)
(* Sorted-map operations                                               *)

let sorted_find t k =
  read_op t k
    ~snap:(fun g k -> Sorted.find g.g_sorted k)
    ~txn:(fun g k -> Sorted.find g.g_sorted k)
    ~auto:(fun g k -> Sorted.find g.g_sorted k)

let sorted_put t k v =
  write_op t k (fun _pl l ->
      let prev = Sorted.put l.pl_g.g_sorted k v in
      l.pl_ops <- { ro_sorted = true; ro_key = k; ro_val = Some v } :: l.pl_ops;
      prev)

let sorted_remove t k =
  write_op t k (fun _pl l ->
      let prev = Sorted.remove l.pl_g.g_sorted k in
      l.pl_ops <- { ro_sorted = true; ro_key = k; ro_val = None } :: l.pl_ops;
      prev)

(* Places own contiguous ascending key intervals, so ascending place order
   concatenates per-place ascending folds into a global ascending fold. *)
let sorted_fold f t init =
  if Stm.in_snapshot () then
    Array.fold_left
      (fun acc pl -> Sorted.fold f (snapshot_masters pl).g_sorted acc)
      init t.t_places
  else
    let go () =
      Array.fold_left
        (fun acc pl -> Sorted.fold f (local_of t pl).pl_g.g_sorted acc)
        init t.t_places
    in
    if Stm.in_txn () then go () else Stm.atomic go

let sorted_size t =
  if Stm.in_snapshot () then
    Array.fold_left
      (fun acc pl -> acc + Sorted.size (snapshot_masters pl).g_sorted)
      0 t.t_places
  else
    let go () =
      Array.fold_left
        (fun acc pl -> acc + Sorted.size (local_of t pl).pl_g.g_sorted)
        0 t.t_places
    in
    if Stm.in_txn () then go () else Stm.atomic go

let sorted_to_list t = List.rev (sorted_fold (fun k v acc -> (k, v) :: acc) t [])

(* ------------------------------------------------------------------ *)
(* Failure domain: kill and recover                                    *)

let outside_only name =
  if Stm.in_txn () || Stm.in_snapshot () then
    invalid_arg (name ^ ": must be called outside transactions and snapshots")

let kill t p =
  outside_only "Places.kill";
  let pl = place_ix t p in
  (* Taking the region serialises the kill against in-flight commits on
     this place: a commit past its prepare check finishes applying and
     shipping before the state flips; everything later sees Down in
     prepare and aborts before its commit point. *)
  Tm.critical pl.p_region (fun () ->
      if Atomic.get pl.p_state = Up then Atomic.set pl.p_state Down)

let recover t p =
  outside_only "Places.recover";
  let pl = place_ix t p in
  if Atomic.get pl.p_state = Down then begin
    (* 1. Replay the shipped tail: after the kill no commit can ship to
       this place (prepare gates on Up), so the inbox is stable and the
       drained replica is exactly the committed state at kill time. *)
    drain_place pl;
    (* 2. Promote: pour the replica into fresh master collections.  This
       re-registers the semantic lock shards (fresh stripe regions, fresh
       lock tables) and publishes fresh shadow chains via the collections'
       non-transactional write path. *)
    let g_old = Atomic.get pl.p_masters in
    let m = Map.create ~stripes:t.t_stripes () in
    let s = Sorted.create () in
    Mutex.protect pl.p_replica.r_mx (fun () ->
        Hashtbl.iter (fun k v -> Map.put_blind m k v) pl.p_replica.r_map;
        Hashtbl.iter (fun k v -> Sorted.put_blind s k v) pl.p_replica.r_sorted);
    (* 3. Install the new generation under the region with a fresh epoch
       stamp.  The stamp is drawn after the pour, so every chain entry the
       pour published is below it: a snapshot pin at or above the epoch
       resolves the full promoted state, and a pin below it is refused
       (raises Place_down) rather than fed the generation's empty
       pre-pour chains.  Stale transactions (captured the old record)
       abort in prepare on physical identity. *)
    Tm.critical pl.p_region (fun () ->
        let e = Tm.begin_publish () in
        Tm.end_publish ();
        Atomic.set pl.p_masters
          { g_map = m; g_sorted = s; g_epoch = e; g_gen = g_old.g_gen + 1 };
        Atomic.set pl.p_state Up)
  end

let is_up t p = Atomic.get (place_ix t p).p_state = Up
let generation t p = (Atomic.get (place_ix t p).p_masters).g_gen

(* ------------------------------------------------------------------ *)
(* Construction, drainer lifecycle                                     *)

let drain t = Array.iter drain_place t.t_places

let spawn_drainer t =
  Domain.spawn (fun () ->
      while not (Atomic.get t.t_stop) do
        let idle = ref true in
        Array.iter
          (fun pl ->
            if pl.p_inbox.i_len > 0 then begin
              idle := false;
              drain_place pl
            end)
          t.t_places;
        if !idle then Unix.sleepf 0.0002
      done)

let create ?(place_count = 4) ?(key_space = 1024) ?(mode = Eager)
    ?(background = true) ?(stripes = 8) () =
  if place_count < 1 || place_count > 64 then
    invalid_arg "Places.create: place_count must be in [1, 64]";
  if key_space < place_count then
    invalid_arg "Places.create: key_space must be >= place_count";
  (match mode with
  | Lazy { max_lag } when max_lag < 0 ->
      invalid_arg "Places.create: max_lag must be >= 0"
  | _ -> ());
  let width = (key_space + place_count - 1) / place_count in
  let mk_place i =
    {
      p_id = i;
      p_region = Tm.new_region ();
      p_masters =
        Atomic.make
          {
            g_map = Map.create ~stripes ();
            g_sorted = Sorted.create ();
            g_epoch = 0;
            g_gen = 0;
          };
      p_state = Atomic.make Up;
      p_inbox = { i_mx = Mutex.create (); i_q = Queue.create (); i_len = 0 };
      p_replica =
        {
          r_mx = Mutex.create ();
          r_map = Hashtbl.create 64;
          r_sorted = Hashtbl.create 64;
          r_stamp = 0;
        };
      p_shipped = Atomic.make 0;
      p_applied = Atomic.make 0;
      p_max_lag = Atomic.make 0;
    }
  in
  let t =
    {
      t_places = Array.init place_count mk_place;
      t_width = width;
      t_key_space = key_space;
      t_mode = mode;
      t_stripes = stripes;
      t_locals = Domain.DLS.new_key (fun () -> Hashtbl.create 16);
      t_stop = Atomic.make false;
      t_drainer = None;
    }
  in
  (match mode with
  | Lazy _ when background -> t.t_drainer <- Some (spawn_drainer t)
  | _ -> ());
  t

let close t =
  Atomic.set t.t_stop true;
  (match t.t_drainer with Some d -> Domain.join d | None -> ());
  t.t_drainer <- None;
  drain t

let place_count t = Array.length t.t_places
let key_space t = t.t_key_space
let mode t = t.t_mode

(* ------------------------------------------------------------------ *)
(* Replication introspection and leak probes                           *)

let place_lag t p = (place_ix t p).p_inbox.i_len

let replication_lag t =
  Array.fold_left (fun acc pl -> max acc pl.p_inbox.i_len) 0 t.t_places

let max_lag_observed t =
  Array.fold_left (fun acc pl -> max acc (Atomic.get pl.p_max_lag)) 0 t.t_places

let lag_bound t = match t.t_mode with Eager -> None | Lazy { max_lag } -> Some max_lag

let batches_shipped t =
  Array.fold_left (fun acc pl -> acc + Atomic.get pl.p_shipped) 0 t.t_places

let batches_applied t =
  Array.fold_left (fun acc pl -> acc + Atomic.get pl.p_applied) 0 t.t_places

let replica_stamp t p = (place_ix t p).p_replica.r_stamp

let replica_size t p =
  let pl = place_ix t p in
  Mutex.protect pl.p_replica.r_mx (fun () -> Hashtbl.length pl.p_replica.r_map)

let tbl_agrees tbl l =
  Hashtbl.length tbl = List.length l
  && List.for_all (fun (k, v) -> Hashtbl.find_opt tbl k = Some v) l

let replica_agrees t =
  drain t;
  Array.for_all
    (fun pl ->
      Atomic.get pl.p_state = Up
      &&
      let g = Atomic.get pl.p_masters in
      let ml = Map.to_list g.g_map in
      let sl = Sorted.to_list g.g_sorted in
      Mutex.protect pl.p_replica.r_mx (fun () ->
          tbl_agrees pl.p_replica.r_map ml && tbl_agrees pl.p_replica.r_sorted sl))
    t.t_places

let outstanding_locks t =
  Array.fold_left
    (fun acc pl ->
      let g = Atomic.get pl.p_masters in
      acc + Map.outstanding_locks g.g_map + Sorted.outstanding_locks g.g_sorted)
    0 t.t_places

let snapshot_history_length t =
  Array.fold_left
    (fun acc pl ->
      let g = Atomic.get pl.p_masters in
      max acc
        (max
           (Map.snapshot_history_length g.g_map)
           (Sorted.snapshot_history_length g.g_sorted)))
    0 t.t_places
