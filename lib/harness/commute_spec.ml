(* The commutativity/lock spec moved to {!Txcoll.Commute_spec} so the
   {!Txcoll.Derive} functor can consume it as its input language (the spec
   is now the implementation, not just a test oracle).  This shim keeps
   the harness-facing path (`Harness.Commute_spec`) stable for the bench
   tables (table1/table7) and existing tests. *)

include Txcoll.Commute_spec
