(* Seeded fault-injection (chaos) harness for the host STM and the
   transactional collection classes.

   A deterministic splitmix64 stream per worker domain drives injection
   through the {!Stm.Chaos} hook points:

   - [Chaos_attempt] (start of every top-level attempt): with probability
     [p_handler_fail], register a commit handler that raises; with the
     same probability, an abort handler that raises.  These exercise the
     protected handler execution: real collection handlers must still run
     and release their locks, and the failure must surface as
     [Stm.Handler_failure] with the right [committed] flag.
   - [Chaos_before_commit] (after the transaction body): with probability
     [p_delay], spin — widening the window for real conflicts; with
     probability [p_conflict], force a transparent retry.
   - [Chaos_in_commit] (inside the commit, after read validation, before
     the commit point): with probability [p_remote_abort], deliver a
     remote abort to the committing transaction itself — the
     Active/Committing status race of §4's program-directed abort; with
     probability [p_conflict], force a validation-style conflict.

   The soak runs workers over a TransactionalMap, a TransactionalSortedMap
   and a TransactionalQueue (plus one shared tvar counter) under
   injection, then checks linearizability against per-worker oracle models
   and asserts zero leaked semantic locks and zero held commit regions.
   On a single domain the whole schedule is deterministic: same seed,
   same injection counts, same final contents ({!fingerprint}). *)

module Stm = Tcc_stm.Stm
module Tvar = Tcc_stm.Tvar
module Map = Txcoll.Host.Map (Txcoll.Host.Int_hashed)
module Sorted = Txcoll.Host.Sorted_map (Txcoll.Host.Int_ordered)
module Queue = Txcoll.Host.Queue

exception Chaos_fault of string
(* The only exception the injected handlers raise; anything else escaping
   a soak transaction is a real bug and fails the run. *)

type config = {
  seed : int;
  p_conflict : float;
  p_remote_abort : float;
  p_handler_fail : float;
  p_delay : float;
  delay_spins : int;
}

let uniform ?(delay_spins = 200) ~seed p =
  {
    seed;
    p_conflict = p;
    p_remote_abort = p;
    p_handler_fail = p;
    p_delay = p;
    delay_spins;
  }

(* ---------------- deterministic RNG (splitmix64) ---------------- *)

let sm_next st =
  st := Int64.add !st 0x9E3779B97F4A7C15L;
  let z = !st in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let rand_float st =
  Int64.to_float (Int64.shift_right_logical (sm_next st) 11) /. 9007199254740992.

let rand_int st n =
  Int64.to_int (Int64.rem (Int64.shift_right_logical (sm_next st) 1) (Int64.of_int n))

let stream_of_seed seed index =
  ref (Int64.logxor (Int64.of_int ((seed * 0x9E3779B1) + index)) 0x5DEECE66DL)

(* Per-domain injection stream, set by [register_worker]; a domain that
   never registered (e.g. the checking main domain while the hook is still
   installed) gets a fixed seed-independent-of-identity stream, keeping
   single-domain runs fully deterministic. *)
let stream_key : int64 ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0L)

(* ---------------- failure context ---------------- *)

(* Every failure message a soak emits carries the seed, the soak section
   that produced it, and the most recent injection the reporting domain's
   own stream fired — plus, once per failing report, the one command that
   replays the exact schedule.  The injection site is tracked per-domain
   so a worker's failure names its own last fault, not another domain's. *)

let last_injection_key : string ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref "none")

let note_injection site = Domain.DLS.get last_injection_key := site
let last_injection () = !(Domain.DLS.get last_injection_key)

let fail_context cfg ~section =
  Printf.sprintf "[seed=%d section=%s policy=%s last_injection=%s] " cfg.seed
    section
    (Stm.Policy.name (Stm.Policy.global ()))
    (last_injection ())

let repro_hint ~target cfg =
  Printf.sprintf
    "reproduce: CHAOS_SEEDS=%d CHAOS_TM_POLICY=%s dune exec bench/main.exe \
     -- %s"
    cfg.seed
    (Stm.Policy.name (Stm.Policy.global ()))
    target

(* ---------------- injection counters ---------------- *)

let injected_conflicts = Atomic.make 0
let injected_remote_aborts = Atomic.make 0
let injected_handler_faults = Atomic.make 0
let injected_delays = Atomic.make 0

let reset_counters () =
  Atomic.set injected_conflicts 0;
  Atomic.set injected_remote_aborts 0;
  Atomic.set injected_handler_faults 0;
  Atomic.set injected_delays 0

let register_worker cfg ~index =
  Domain.DLS.get stream_key := !(stream_of_seed cfg.seed (index + 1));
  Domain.DLS.get last_injection_key := "none"

let hook cfg ev =
  let st = Domain.DLS.get stream_key in
  if Int64.equal !st 0L then st := !(stream_of_seed cfg.seed 0);
  match (ev : Stm.Chaos.event) with
  | Chaos_attempt ->
      if rand_float st < cfg.p_handler_fail then begin
        Atomic.incr injected_handler_faults;
        note_injection "commit-handler-fault@attempt";
        Stm.on_commit (fun () -> raise (Chaos_fault "commit-handler"))
      end;
      if rand_float st < cfg.p_handler_fail then begin
        Atomic.incr injected_handler_faults;
        note_injection "abort-handler-fault@attempt";
        Stm.on_abort (fun () -> raise (Chaos_fault "abort-handler"))
      end
  | Chaos_before_commit ->
      if rand_float st < cfg.p_delay then begin
        Atomic.incr injected_delays;
        note_injection "delay@before-commit";
        for _ = 1 to cfg.delay_spins do
          Domain.cpu_relax ()
        done
      end;
      if rand_float st < cfg.p_conflict then begin
        Atomic.incr injected_conflicts;
        note_injection "conflict@before-commit";
        ignore (Stm.retry_now ())
      end
  | Chaos_in_commit ->
      if rand_float st < cfg.p_remote_abort then begin
        Atomic.incr injected_remote_aborts;
        note_injection "remote-abort@in-commit";
        (* Self-directed remote abort: lands exactly in the
           Active/Committing window the status-race fix covers. *)
        ignore (Stm.remote_abort (Stm.current ()))
      end
      else if rand_float st < cfg.p_conflict then begin
        Atomic.incr injected_conflicts;
        note_injection "conflict@in-commit";
        ignore (Stm.retry_now ())
      end

let install cfg =
  reset_counters ();
  Domain.DLS.get stream_key := !(stream_of_seed cfg.seed 0);
  Domain.DLS.get last_injection_key := "none";
  Stm.Chaos.set_hook (Some (hook cfg))

let uninstall () = Stm.Chaos.set_hook None

(* ---------------- linearizability-checked soak ---------------- *)

type soak_config = {
  chaos : config;
  policy : Stm.Contention.policy;
  tm_policy : string option;
      (* TM policy the whole soak runs under: a fixed policy name,
         "adaptive" for the runtime controller, or [None] to leave the
         process policy untouched.  An ablation axis: the same seeded
         schedule must produce a linearizable outcome under every point
         of the policy matrix. *)
  domains : int;
  ops_per_domain : int;
  key_space : int;  (* per-worker partition width *)
}

let default_soak ?(policy = Stm.Contention.default) ?tm_policy ?(domains = 2)
    ?(ops_per_domain = 1500) ?(key_space = 64) ~seed p =
  {
    chaos = uniform ~seed p;
    policy;
    tm_policy;
    domains;
    ops_per_domain;
    key_space;
  }

(* Install the soak's TM policy for the duration of [f], restoring the
   previous global policy (and the adaptive controller, if it was on)
   afterwards so soaks compose with surrounding tests. *)
let with_tm_policy sc f =
  match sc.tm_policy with
  | None -> f ()
  | Some name ->
      let prev = Stm.Policy.global () in
      let prev_adaptive = Stm.Policy.adaptive () in
      (if String.equal name "adaptive" then Stm.Policy.enable_adaptive ()
       else
         match Stm.Policy.of_name name with
         | Some p -> Stm.Policy.set_global p
         | None -> invalid_arg (Printf.sprintf "unknown TM policy %S" name));
      Fun.protect
        ~finally:(fun () ->
          Stm.Policy.disable_adaptive ();
          Stm.Policy.set_global prev;
          if prev_adaptive then Stm.Policy.enable_adaptive ())
        f

type soak_report = {
  ok : bool;
  errors : string list;
  committed : int;
  injections : int * int * int * int;
      (* conflicts, remote aborts, handler faults, delays *)
  map_size : int;
  sorted_size : int;
  queue_remaining : int;
  fingerprint : string;
}

(* Per-worker oracle: the effects of every transaction this worker saw
   commit.  Workers write disjoint key partitions, so the union of the
   models is the linearizable outcome for the maps; queue tokens are
   globally unique, so conservation is checked as a multiset equation. *)
type model = {
  m_map : (int, int) Hashtbl.t;
  m_sorted : (int, int) Hashtbl.t;
  mutable m_enq : int list;
  mutable m_deq : int list;
  mutable m_committed : int;
  mutable m_errors : string list;
}

let worker_loop sc ~index ~map ~sorted ~queue ~counter =
  register_worker sc.chaos ~index;
  let rng = stream_of_seed (sc.chaos.seed lxor 0x5afe) (index + 1) in
  let md =
    {
      m_map = Hashtbl.create 64;
      m_sorted = Hashtbl.create 64;
      m_enq = [];
      m_deq = [];
      m_committed = 0;
      m_errors = [];
    }
  in
  let base = index * sc.key_space in
  let seq = ref 0 in
  (* Run one op transactionally; [apply_model] records its effects iff the
     transaction committed — including commits surfaced through
     [Handler_failure { committed = true }] from an injected fault. *)
  let ctx () = fail_context sc.chaos ~section:"soak.worker" in
  let run_txn body apply_model =
    match Stm.atomic ~policy:sc.policy body with
    | () ->
        md.m_committed <- md.m_committed + 1;
        apply_model ()
    | exception Stm.Handler_failure { committed; failures } ->
        List.iter
          (fun e ->
            match e with
            | Chaos_fault _ -> ()
            | e ->
                md.m_errors <-
                  (ctx () ^ "unexpected handler failure: "
                  ^ Printexc.to_string e)
                  :: md.m_errors)
          failures;
        if committed then begin
          md.m_committed <- md.m_committed + 1;
          apply_model ()
        end
    | exception e ->
        md.m_errors <-
          (ctx () ^ "transaction raised: " ^ Printexc.to_string e)
          :: md.m_errors
  in
  let bump () = Tvar.modify counter succ in
  for i = 1 to sc.ops_per_domain do
    let dice = rand_int rng 100 in
    if dice < 30 then begin
      (* Point ops on the hash map, own partition; a cross-partition read
         creates inter-worker key-lock traffic. *)
      let k = base + rand_int rng sc.key_space in
      let probe = rand_int rng (sc.domains * sc.key_space) in
      if rand_int rng 3 < 2 then
        run_txn
          (fun () ->
            ignore (Map.put map k i);
            ignore (Map.find map probe);
            bump ())
          (fun () -> Hashtbl.replace md.m_map k i)
      else
        run_txn
          (fun () ->
            ignore (Map.remove map k);
            bump ())
          (fun () -> Hashtbl.remove md.m_map k)
    end
    else if dice < 55 then begin
      (* Sorted map: point writes plus occasional endpoint reads. *)
      let k = base + rand_int rng sc.key_space in
      if rand_int rng 3 < 2 then
        run_txn
          (fun () ->
            ignore (Sorted.put sorted k i);
            if rand_int rng 4 = 0 then ignore (Sorted.first_key sorted);
            bump ())
          (fun () -> Hashtbl.replace md.m_sorted k i)
      else
        run_txn
          (fun () ->
            ignore (Sorted.remove sorted k);
            if rand_int rng 4 = 0 then ignore (Sorted.last_key sorted);
            bump ())
          (fun () -> Hashtbl.remove md.m_sorted k)
    end
    else if dice < 80 then begin
      (* Work queue: globally unique tokens, conservation-checked. *)
      if rand_int rng 2 = 0 then begin
        let token = (index * 1_000_000) + !seq in
        incr seq;
        run_txn
          (fun () ->
            Queue.put queue token;
            bump ())
          (fun () -> md.m_enq <- token :: md.m_enq)
      end
      else begin
        (* The dequeued token is captured in a cell set during the body:
           when the commit is reported via [Handler_failure
           { committed = true }] the return value is lost, but the cell
           holds the committed (last) attempt's token. *)
        let got = ref None in
        run_txn
          (fun () ->
            got := Queue.poll queue;
            bump ())
          (fun () ->
            match !got with
            | Some tok -> md.m_deq <- tok :: md.m_deq
            | None -> ())
      end
    end
    else if dice < 90 then begin
      (* Cross-collection transaction: two regions at commit. *)
      let k = base + rand_int rng sc.key_space in
      run_txn
        (fun () ->
          ignore (Map.put map k (-i));
          ignore (Sorted.put sorted k (-i));
          bump ())
        (fun () ->
          Hashtbl.replace md.m_map k (-i);
          Hashtbl.replace md.m_sorted k (-i))
    end
    else begin
      (* Abstract-state reads: size/isEmpty/endpoint/empty locks make this
         worker a remote-abort victim. *)
      let body () =
        (match rand_int rng 4 with
        | 0 -> ignore (Map.size map)
        | 1 -> ignore (Map.is_empty map)
        | 2 -> ignore (Sorted.first_key sorted)
        | _ -> ignore (Queue.peek queue));
        bump ()
      in
      run_txn body (fun () -> ())
    end
  done;
  md

let check name cond errors = if not cond then errors := name :: !errors

let run_soak sc =
  with_tm_policy sc @@ fun () ->
  install sc.chaos;
  let map = Map.create () in
  (* Interval splitters at the per-worker partition boundaries: multi-domain
     soaks exercise interval-partitioned commit plans (cross-partition
     probes and endpoint reads still cross intervals); a single domain gets
     B = 1, the historical unsharded behaviour. *)
  let sorted =
    Sorted.create
      ~splitters:(List.init (max 0 (sc.domains - 1)) (fun i -> (i + 1) * sc.key_space))
      ()
  in
  let queue = Queue.create () in
  let counter = Tvar.make 0 in
  let doms =
    List.init sc.domains (fun index ->
        Domain.spawn (fun () ->
            worker_loop sc ~index ~map ~sorted ~queue ~counter))
  in
  let models = List.map Domain.join doms in
  uninstall ();
  let errors = ref [] in
  let check name cond errors =
    check (fail_context sc.chaos ~section:"soak.final" ^ name) cond errors
  in
  List.iter
    (fun md -> List.iter (fun e -> errors := e :: !errors) md.m_errors)
    models;
  (* Map and sorted map: contents must equal the union of the per-worker
     models (partitions are disjoint). *)
  let union of_model =
    let u = Hashtbl.create 256 in
    List.iter
      (fun md -> Hashtbl.iter (fun k v -> Hashtbl.replace u k v) (of_model md))
      models;
    u
  in
  let expect_map = union (fun md -> md.m_map) in
  let actual_map = Map.to_list map in
  check "map size vs model"
    (List.length actual_map = Hashtbl.length expect_map)
    errors;
  List.iter
    (fun (k, v) ->
      check
        (Printf.sprintf "map binding %d agrees with model" k)
        (Hashtbl.find_opt expect_map k = Some v)
        errors)
    actual_map;
  let expect_sorted = union (fun md -> md.m_sorted) in
  let actual_sorted = Sorted.to_list sorted in
  check "sorted size vs model"
    (List.length actual_sorted = Hashtbl.length expect_sorted)
    errors;
  List.iter
    (fun (k, v) ->
      check
        (Printf.sprintf "sorted binding %d agrees with model" k)
        (Hashtbl.find_opt expect_sorted k = Some v)
        errors)
    actual_sorted;
  check "sorted iteration ordered"
    (let rec ordered = function
       | (a, _) :: ((b, _) :: _ as rest) -> a < b && ordered rest
       | _ -> true
     in
     ordered actual_sorted)
    errors;
  (* Queue conservation: every token enqueued-and-committed is either in a
     committed dequeue or still in the queue, exactly once. *)
  let remaining = ref [] in
  let rec drain () =
    match Queue.poll queue with
    | Some tok ->
        remaining := tok :: !remaining;
        drain ()
    | None -> ()
  in
  drain ();
  let enq = List.concat_map (fun md -> md.m_enq) models in
  let deq = List.concat_map (fun md -> md.m_deq) models in
  let out = deq @ !remaining in
  check "queue token conservation (count)"
    (List.length enq = List.length out)
    errors;
  let module IS = Set.Make (Int) in
  let enq_set = IS.of_list enq in
  check "queue tokens unique" (IS.cardinal enq_set = List.length enq) errors;
  check "queue no duplicated delivery"
    (IS.cardinal (IS.of_list out) = List.length out)
    errors;
  check "queue no invented tokens"
    (List.for_all (fun t -> IS.mem t enq_set) out)
    errors;
  (* Counter: one increment per committed worker transaction. *)
  let committed = List.fold_left (fun a md -> a + md.m_committed) 0 models in
  check "counter equals committed transactions"
    (Tvar.get counter = committed)
    errors;
  (* Leak probes: no semantic lock survives its transaction, no commit
     region is held once all domains are quiescent. *)
  check "no leaked map locks" (Map.outstanding_locks map = 0) errors;
  check "no leaked sorted-map locks" (Sorted.outstanding_locks sorted = 0) errors;
  check "no leaked queue locks" (Queue.outstanding_locks queue = 0) errors;
  check "no held commit regions" (Stm.regions_held () = 0) errors;
  let injections =
    ( Atomic.get injected_conflicts,
      Atomic.get injected_remote_aborts,
      Atomic.get injected_handler_faults,
      Atomic.get injected_delays )
  in
  let fingerprint =
    let buf = Buffer.create 1024 in
    List.iter
      (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "m%d=%d;" k v))
      (List.sort compare actual_map);
    List.iter
      (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "s%d=%d;" k v))
      actual_sorted;
    List.iter
      (fun t -> Buffer.add_string buf (Printf.sprintf "q%d;" t))
      (List.rev !remaining);
    let c, r, h, d = injections in
    Buffer.add_string buf
      (Printf.sprintf "counter=%d;inj=%d,%d,%d,%d" (Tvar.get counter) c r h d);
    Digest.to_hex (Digest.string (Buffer.contents buf))
  in
  if !errors <> [] then errors := repro_hint ~target:"chaos" sc.chaos :: !errors;
  {
    ok = !errors = [];
    errors = List.rev !errors;
    committed;
    injections;
    map_size = List.length actual_map;
    sorted_size = List.length actual_sorted;
    queue_remaining = List.length !remaining;
    fingerprint;
  }

(* ---------------- striped same-collection soak ---------------- *)

(* The same-collection scaling shape under injection: every worker hammers
   its own disjoint key partition of ONE shared striped map, with
   occasional cross-partition reads (inter-stripe key-lock traffic) and
   abstract-state reads (structure-stripe traffic).  Disjoint partitions
   make the union of per-worker models the linearizable outcome, exactly
   as in {!run_soak}; the point here is that commits into *different
   stripes of the same collection* — taking different commit-region
   subsets — still compose soundly with commits into the same stripe and
   with size/isEmpty readers serialised on the structure stripe. *)
let run_striped_soak ?(stripes = 16) sc =
  with_tm_policy sc @@ fun () ->
  install sc.chaos;
  let map = Map.create ~stripes () in
  let counter = Tvar.make 0 in
  let worker index =
    register_worker sc.chaos ~index;
    let rng = stream_of_seed (sc.chaos.seed lxor 0x57f1) (index + 1) in
    let md =
      {
        m_map = Hashtbl.create 64;
        m_sorted = Hashtbl.create 1;
        m_enq = [];
        m_deq = [];
        m_committed = 0;
        m_errors = [];
      }
    in
    let ctx () = fail_context sc.chaos ~section:"striped.worker" in
    let run_txn body apply_model =
      match Stm.atomic ~policy:sc.policy body with
      | () ->
          md.m_committed <- md.m_committed + 1;
          apply_model ()
      | exception Stm.Handler_failure { committed; failures } ->
          List.iter
            (fun e ->
              match e with
              | Chaos_fault _ -> ()
              | e ->
                  md.m_errors <-
                    (ctx () ^ "unexpected handler failure: "
                    ^ Printexc.to_string e)
                    :: md.m_errors)
            failures;
          if committed then begin
            md.m_committed <- md.m_committed + 1;
            apply_model ()
          end
      | exception e ->
          md.m_errors <-
            (ctx () ^ "transaction raised: " ^ Printexc.to_string e)
            :: md.m_errors
    in
    let base = index * sc.key_space in
    let bump () = Tvar.modify counter succ in
    for i = 1 to sc.ops_per_domain do
      let k = base + rand_int rng sc.key_space in
      let dice = rand_int rng 100 in
      if dice < 45 then
        run_txn
          (fun () ->
            ignore (Map.put map k i);
            bump ())
          (fun () -> Hashtbl.replace md.m_map k i)
      else if dice < 60 then
        run_txn
          (fun () ->
            ignore (Map.remove map k);
            bump ())
          (fun () -> Hashtbl.remove md.m_map k)
      else if dice < 75 then begin
        (* Multi-key transaction: keys in different stripes, so the commit
           plan is a multi-region subset in rid order. *)
        let k2 = base + rand_int rng sc.key_space in
        run_txn
          (fun () ->
            ignore (Map.put map k (-i));
            ignore (Map.put map k2 i);
            bump ())
          (fun () ->
            Hashtbl.replace md.m_map k (-i);
            Hashtbl.replace md.m_map k2 i)
      end
      else if dice < 90 then
        (* Cross-partition read: key-lock traffic into foreign stripes. *)
        run_txn
          (fun () ->
            ignore (Map.find map (rand_int rng (sc.domains * sc.key_space)));
            bump ())
          (fun () -> ())
      else
        (* Abstract-state read: serialises on the structure stripe. *)
        run_txn
          (fun () ->
            if rand_int rng 2 = 0 then ignore (Map.size map)
            else ignore (Map.is_empty map);
            bump ())
          (fun () -> ())
    done;
    md
  in
  let doms =
    List.init sc.domains (fun index -> Domain.spawn (fun () -> worker index))
  in
  let models = List.map Domain.join doms in
  uninstall ();
  let errors = ref [] in
  let check name cond errors =
    check (fail_context sc.chaos ~section:"striped.final" ^ name) cond errors
  in
  List.iter
    (fun md -> List.iter (fun e -> errors := e :: !errors) md.m_errors)
    models;
  let expect = Hashtbl.create 256 in
  List.iter
    (fun md -> Hashtbl.iter (fun k v -> Hashtbl.replace expect k v) md.m_map)
    models;
  let actual = Map.to_list map in
  check "striped map size vs model"
    (List.length actual = Hashtbl.length expect)
    errors;
  List.iter
    (fun (k, v) ->
      check
        (Printf.sprintf "striped map binding %d agrees with model" k)
        (Hashtbl.find_opt expect k = Some v)
        errors)
    actual;
  let committed = List.fold_left (fun a md -> a + md.m_committed) 0 models in
  check "counter equals committed transactions"
    (Tvar.get counter = committed)
    errors;
  check "no leaked striped-map locks" (Map.outstanding_locks map = 0) errors;
  check "no held commit regions" (Stm.regions_held () = 0) errors;
  let injections =
    ( Atomic.get injected_conflicts,
      Atomic.get injected_remote_aborts,
      Atomic.get injected_handler_faults,
      Atomic.get injected_delays )
  in
  let fingerprint =
    let buf = Buffer.create 1024 in
    List.iter
      (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "m%d=%d;" k v))
      (List.sort compare actual);
    let c, r, h, d = injections in
    Buffer.add_string buf
      (Printf.sprintf "counter=%d;inj=%d,%d,%d,%d" (Tvar.get counter) c r h d);
    Digest.to_hex (Digest.string (Buffer.contents buf))
  in
  if !errors <> [] then errors := repro_hint ~target:"chaos" sc.chaos :: !errors;
  {
    ok = !errors = [];
    errors = List.rev !errors;
    committed;
    injections;
    map_size = List.length actual;
    sorted_size = 0;
    queue_remaining = 0;
    fingerprint;
  }

(* ---------------- derived-collection soak ---------------- *)

module Dset = Txcoll.Host.Set (Txcoll.Host.Int_hashed)
module Dbag = Txcoll.Host.Bag (Txcoll.Host.Int_hashed)
module Dpq = Txcoll.Host.Priority_queue (Txcoll.Host.Int_ordered)
module Dcounter = Txcoll.Host.Counter

(* Per-worker oracle for the spec-derived classes.  Set and bag keys are
   partitioned per worker (union of models = linearizable outcome);
   priority-queue tokens are globally unique, so the drain is checked as
   a multiset equation; the counter is order-insensitive, so the sum of
   per-worker committed deltas is exact. *)
type derived_model = {
  dm_set : (int, unit) Hashtbl.t;
  dm_bag : (int, int) Hashtbl.t;
  mutable dm_pq : int list;
  mutable dm_count : int;
  mutable dm_committed : int;
  mutable dm_errors : string list;
}

(* Soak the {!Txcoll.Derive}-generated classes (Set, Bag, PriorityQueue,
   Counter) under the same fault injection and oracle discipline as
   [run_soak]: every worker records the effects of each transaction iff
   it committed, and the final committed state must equal the union of
   the models. *)
let run_derived_soak sc =
  with_tm_policy sc @@ fun () ->
  install sc.chaos;
  let set = Dset.create () in
  let bag = Dbag.create () in
  let pq = Dpq.create () in
  let counter = Dcounter.create () in
  let worker index =
    register_worker sc.chaos ~index;
    let rng = stream_of_seed (sc.chaos.seed lxor 0xde51) (index + 1) in
    let md =
      {
        dm_set = Hashtbl.create 64;
        dm_bag = Hashtbl.create 64;
        dm_pq = [];
        dm_count = 0;
        dm_committed = 0;
        dm_errors = [];
      }
    in
    let ctx () = fail_context sc.chaos ~section:"derived.worker" in
    let run_txn body apply_model =
      match Stm.atomic ~policy:sc.policy body with
      | () ->
          md.dm_committed <- md.dm_committed + 1;
          apply_model ()
      | exception Stm.Handler_failure { committed; failures } ->
          List.iter
            (fun e ->
              match e with
              | Chaos_fault _ -> ()
              | e ->
                  md.dm_errors <-
                    (ctx () ^ "unexpected handler failure: "
                    ^ Printexc.to_string e)
                    :: md.dm_errors)
            failures;
          if committed then begin
            md.dm_committed <- md.dm_committed + 1;
            apply_model ()
          end
      | exception e ->
          md.dm_errors <-
            (ctx () ^ "transaction raised: " ^ Printexc.to_string e)
            :: md.dm_errors
    in
    let base = index * sc.key_space in
    let seq = ref 0 in
    for _i = 1 to sc.ops_per_domain do
      let k = base + rand_int rng sc.key_space in
      let dice = rand_int rng 100 in
      if dice < 20 then
        run_txn
          (fun () -> ignore (Dset.add set k))
          (fun () -> Hashtbl.replace md.dm_set k ())
      else if dice < 32 then
        run_txn
          (fun () -> ignore (Dset.remove set k))
          (fun () -> Hashtbl.remove md.dm_set k)
      else if dice < 47 then
        run_txn
          (fun () -> Dbag.add bag k)
          (fun () ->
            Hashtbl.replace md.dm_bag k
              (Option.value (Hashtbl.find_opt md.dm_bag k) ~default:0 + 1))
      else if dice < 57 then begin
        (* [remove_one]'s outcome is decided inside the transaction (the
           count read holds the key lock), so capture the committed
           attempt's answer through a ref the retry loop overwrites. *)
        let removed = ref false in
        run_txn
          (fun () -> removed := Dbag.remove_one bag k)
          (fun () ->
            if !removed then
              match Hashtbl.find_opt md.dm_bag k with
              | Some 1 | None -> Hashtbl.remove md.dm_bag k
              | Some m -> Hashtbl.replace md.dm_bag k (m - 1))
      end
      else if dice < 65 then begin
        incr seq;
        let token = (index * 1_000_000) + !seq in
        run_txn
          (fun () -> Dpq.insert pq token)
          (fun () -> md.dm_pq <- token :: md.dm_pq)
      end
      else if dice < 80 then
        (* Cross-partition reads: key-lock traffic into foreign stripes
           of both keyed tables. *)
        run_txn
          (fun () ->
            let probe = rand_int rng (sc.domains * sc.key_space) in
            ignore (Dset.mem set probe);
            ignore (Dbag.count bag probe))
          (fun () -> ())
      else if dice < 90 then begin
        let d = 1 + rand_int rng 3 in
        run_txn
          (fun () -> Dcounter.add counter d)
          (fun () -> md.dm_count <- md.dm_count + d)
      end
      else
        (* Abstract-state reads: serialise on the structure regions. *)
        run_txn
          (fun () ->
            if rand_int rng 2 = 0 then ignore (Dset.size set)
            else begin
              ignore (Dset.is_empty set);
              ignore (Dbag.size bag)
            end)
          (fun () -> ())
    done;
    md
  in
  let doms =
    List.init sc.domains (fun index -> Domain.spawn (fun () -> worker index))
  in
  let models = List.map Domain.join doms in
  uninstall ();
  let errors = ref [] in
  let check name cond errors =
    check (fail_context sc.chaos ~section:"derived.final" ^ name) cond errors
  in
  List.iter
    (fun md -> List.iter (fun e -> errors := e :: !errors) md.dm_errors)
    models;
  (* Set: union of the disjoint per-worker presence models. *)
  let expect_set = Hashtbl.create 256 in
  List.iter
    (fun md -> Hashtbl.iter (fun k () -> Hashtbl.replace expect_set k ()) md.dm_set)
    models;
  let actual_set = List.sort compare (Dset.to_list set) in
  check "derived set size vs model"
    (List.length actual_set = Hashtbl.length expect_set)
    errors;
  List.iter
    (fun k ->
      check
        (Printf.sprintf "derived set member %d agrees with model" k)
        (Hashtbl.mem expect_set k) errors)
    actual_set;
  (* Bag: union of the disjoint per-worker multiplicity models. *)
  let expect_bag = Hashtbl.create 256 in
  List.iter
    (fun md -> Hashtbl.iter (fun k m -> Hashtbl.replace expect_bag k m) md.dm_bag)
    models;
  let actual_bag = List.sort compare (Dbag.to_list bag) in
  check "derived bag distinct size vs model"
    (List.length actual_bag = Hashtbl.length expect_bag)
    errors;
  List.iter
    (fun (k, m) ->
      check
        (Printf.sprintf "derived bag multiplicity of %d agrees with model" k)
        (Hashtbl.find_opt expect_bag k = Some m)
        errors)
    actual_bag;
  (* Counter: order-insensitive sum of committed deltas. *)
  let expect_count = List.fold_left (fun a md -> a + md.dm_count) 0 models in
  check "derived counter equals committed deltas"
    (Dcounter.get counter = expect_count)
    errors;
  (* Priority queue: draining yields every committed token in ascending
     order (tokens are globally unique, so sorted lists compare as
     multisets). *)
  let drained = ref [] in
  let rec drain () =
    match Dpq.poll_min pq with
    | None -> ()
    | Some p ->
        drained := p :: !drained;
        drain ()
  in
  drain ();
  let drained = List.rev !drained in
  let expect_pq =
    List.sort compare (List.concat_map (fun md -> md.dm_pq) models)
  in
  check "derived pq drains every committed insert in order"
    (drained = expect_pq) errors;
  check "derived pq empty after drain" (Dpq.is_empty pq) errors;
  (* Leak probes. *)
  check "no leaked derived-set locks" (Dset.outstanding_locks set = 0) errors;
  check "no leaked derived-bag locks" (Dbag.outstanding_locks bag = 0) errors;
  check "no leaked derived-pq locks" (Dpq.outstanding_locks pq = 0) errors;
  check "no leaked derived-counter locks"
    (Dcounter.outstanding_locks counter = 0)
    errors;
  check "no held commit regions" (Stm.regions_held () = 0) errors;
  let committed = List.fold_left (fun a md -> a + md.dm_committed) 0 models in
  let injections =
    ( Atomic.get injected_conflicts,
      Atomic.get injected_remote_aborts,
      Atomic.get injected_handler_faults,
      Atomic.get injected_delays )
  in
  let fingerprint =
    let buf = Buffer.create 1024 in
    List.iter (fun k -> Buffer.add_string buf (Printf.sprintf "s%d;" k)) actual_set;
    List.iter
      (fun (k, m) -> Buffer.add_string buf (Printf.sprintf "b%d=%d;" k m))
      actual_bag;
    List.iter (fun p -> Buffer.add_string buf (Printf.sprintf "q%d;" p)) drained;
    let c, r, h, d = injections in
    Buffer.add_string buf
      (Printf.sprintf "counter=%d;inj=%d,%d,%d,%d" expect_count c r h d);
    Digest.to_hex (Digest.string (Buffer.contents buf))
  in
  if !errors <> [] then errors := repro_hint ~target:"chaos" sc.chaos :: !errors;
  {
    ok = !errors = [];
    errors = List.rev !errors;
    committed;
    injections;
    map_size = List.length actual_set;
    sorted_size = List.length actual_bag;
    queue_remaining = 0;
    fingerprint;
  }

(* ---------------- snapshot-reader soak ---------------- *)

(* Prefix-consistency soak for the multi-version snapshot mode: writer
   domains run under injection and only ever commit *mirror* transactions
   — the same (key, value) written to the hash map AND the sorted map in
   one atomic block (or removed from both), plus a tvar pair kept equal —
   while a dedicated reader domain loops [Stm.snapshot] sections
   concurrently and checks, inside every single snapshot:

   - the mirror invariant: [Map.find k = Sorted.find k] for every key of
     the shared space (a torn multi-collection read breaks it, because no
     committed prefix ever has the two collections disagreeing);
   - structural consistency of each collection: the number of bindings
     seen by a full fold equals [size] (the struct chain and the shard
     chains must come from the same committed cut, across every stripe
     and interval boundary);
   - ordered iteration: the sorted map's snapshot fold is strictly
     ascending across interval boundaries;
   - the tvar pair is equal and re-reads are pinned (repeatable).

   Chaos events fire only inside [Stm.atomic] attempts, so injection
   stresses the writers (including their commit-time version
   publication) while the reader stays abort-free by construction. *)

type snapshot_soak_report = {
  sn_ok : bool;
  sn_errors : string list;
  sn_snapshots : int;  (* snapshot sections the reader completed *)
  sn_writer_commits : int;
  sn_injections : int * int * int * int;
}

let run_snapshot_soak sc =
  with_tm_policy sc @@ fun () ->
  install sc.chaos;
  let map = Map.create ~stripes:8 () in
  let sorted =
    Sorted.create
      ~splitters:
        (List.init (max 0 (sc.domains - 1)) (fun i -> (i + 1) * sc.key_space))
      ()
  in
  let pair_a = Tvar.make 0 and pair_b = Tvar.make 0 in
  let stop = Atomic.make false in
  let key_count = sc.domains * sc.key_space in
  let reader () =
    let errors = ref [] in
    let fail fmt =
      Printf.ksprintf
        (fun s ->
          errors :=
            (fail_context sc.chaos ~section:"snapshot.reader" ^ s) :: !errors)
        fmt
    in
    let snapshots = ref 0 in
    while not (Atomic.get stop) do
      Stm.snapshot (fun () ->
          incr snapshots;
          (* Tvar pair: equal in every committed prefix, and pinned. *)
          let a = Tvar.get pair_a and b = Tvar.get pair_b in
          if a <> b then fail "torn tvar pair: a=%d b=%d" a b;
          if Tvar.get pair_a <> a then fail "snapshot tvar read not pinned";
          (* Mirror invariant across the two collections. *)
          for k = 0 to key_count - 1 do
            let mv = Map.find map k and sv = Sorted.find sorted k in
            if mv <> sv then
              fail "torn mirror at key %d: map=%s sorted=%s" k
                (match mv with Some v -> string_of_int v | None -> "-")
                (match sv with Some v -> string_of_int v | None -> "-")
          done;
          (* Struct/shard cut consistency: fold count = size, per
             collection, across all stripes / intervals. *)
          let mc = Map.fold (fun _ _ n -> n + 1) map 0 in
          let ms = Map.size map in
          if mc <> ms then fail "map fold=%d disagrees with size=%d" mc ms;
          let sc' = Sorted.fold (fun _ _ n -> n + 1) sorted 0 in
          let ss = Sorted.size sorted in
          if sc' <> ss then fail "sorted fold=%d disagrees with size=%d" sc' ss;
          (* Ordered iteration across interval boundaries. *)
          let prev = ref min_int in
          Sorted.iter
            (fun k _ ->
              if k <= !prev then fail "sorted fold not ascending at %d" k;
              prev := k)
            sorted)
    done;
    (!snapshots, List.rev !errors)
  in
  let writer index =
    register_worker sc.chaos ~index;
    let rng = stream_of_seed (sc.chaos.seed lxor 0x5a9) (index + 1) in
    let committed = ref 0 in
    let errs = ref [] in
    let base = index * sc.key_space in
    let ctx () = fail_context sc.chaos ~section:"snapshot.writer" in
    let run body =
      match Stm.atomic ~policy:sc.policy body with
      | () -> incr committed
      | exception Stm.Handler_failure { committed = c; failures } ->
          List.iter
            (fun e ->
              match e with
              | Chaos_fault _ -> ()
              | e ->
                  errs :=
                    (ctx () ^ "unexpected handler failure: "
                    ^ Printexc.to_string e)
                    :: !errs)
            failures;
          if c then incr committed
      | exception e ->
          errs := (ctx () ^ "writer raised: " ^ Printexc.to_string e) :: !errs
    in
    for i = 1 to sc.ops_per_domain do
      let k = base + rand_int rng sc.key_space in
      let dice = rand_int rng 100 in
      if dice < 60 then
        (* Mirror write: both collections get the same binding, atomically. *)
        run (fun () ->
            ignore (Map.put map k i);
            ignore (Sorted.put sorted k i))
      else if dice < 85 then
        run (fun () ->
            ignore (Map.remove map k);
            ignore (Sorted.remove sorted k))
      else
        (* Tvar pair: both cells move together. *)
        run (fun () ->
            let v = Tvar.get pair_a + 1 in
            Tvar.set pair_a v;
            Tvar.set pair_b v)
    done;
    (!committed, List.rev !errs)
  in
  let reader_dom = Domain.spawn reader in
  let writer_doms =
    List.init sc.domains (fun index -> Domain.spawn (fun () -> writer index))
  in
  let writer_results = List.map Domain.join writer_doms in
  Atomic.set stop true;
  let snapshots, reader_errors = Domain.join reader_dom in
  uninstall ();
  let errors = ref (List.rev reader_errors) in
  let check name cond errors =
    check (fail_context sc.chaos ~section:"snapshot.final" ^ name) cond errors
  in
  List.iter
    (fun (_, es) -> List.iter (fun e -> errors := e :: !errors) es)
    writer_results;
  (* Quiescent cross-check: the final committed states mirror exactly. *)
  let final_map = List.sort compare (Map.to_list map) in
  let final_sorted = Sorted.to_list sorted in
  check "final map and sorted-map contents agree" (final_map = final_sorted)
    errors;
  check "final tvar pair agrees" (Tvar.get pair_a = Tvar.get pair_b) errors;
  check "no leaked map locks" (Map.outstanding_locks map = 0) errors;
  check "no leaked sorted-map locks" (Sorted.outstanding_locks sorted = 0)
    errors;
  check "no held commit regions" (Stm.regions_held () = 0) errors;
  check "reader completed at least one snapshot" (snapshots > 0) errors;
  if !errors <> [] then errors := repro_hint ~target:"chaos" sc.chaos :: !errors;
  {
    sn_ok = !errors = [];
    sn_errors = List.rev !errors;
    sn_snapshots = snapshots;
    sn_writer_commits = List.fold_left (fun a (c, _) -> a + c) 0 writer_results;
    sn_injections =
      ( Atomic.get injected_conflicts,
        Atomic.get injected_remote_aborts,
        Atomic.get injected_handler_faults,
        Atomic.get injected_delays );
  }

let pp_snapshot_report ppf (r : snapshot_soak_report) =
  let c, ra, hf, d = r.sn_injections in
  Format.fprintf ppf
    "ok=%b snapshots=%d writer_commits=%d injected(conflict=%d remote=%d \
     handler=%d delay=%d)"
    r.sn_ok r.sn_snapshots r.sn_writer_commits c ra hf d;
  List.iter (fun e -> Format.fprintf ppf "@.  FAILED: %s" e) r.sn_errors

let pp_report ppf r =
  let c, ra, hf, d = r.injections in
  Format.fprintf ppf
    "ok=%b committed=%d injected(conflict=%d remote=%d handler=%d delay=%d) \
     map=%d sorted=%d queue=%d fp=%s"
    r.ok r.committed c ra hf d r.map_size r.sorted_size r.queue_remaining
    r.fingerprint;
  List.iter (fun e -> Format.fprintf ppf "@.  FAILED: %s" e) r.errors

(* ---------------- failover (kill/recover) soak ---------------- *)

(* Zero-lost-writes soak for the resilient places store: writer domains
   run mirror transactions — the same key and value written to the
   place-sharded hash map AND sorted map in one atomic block, including
   cross-place pairs — under chaos injection, while the controller kills
   a random master place mid-traffic and recovers it from its slave
   replica, several times, and a dedicated snapshot reader pins
   timestamps across the failovers.  A writer whose transaction touches a
   down place observes [Stm.Place_down] raised from the replication
   handler's prepare phase: the transaction had no effect, the oracle
   model is untouched, and the writer moves on (recovery is concurrent).
   A reader whose pin predates a promotion observes the same error and
   re-pins.  The final linearizability check is the union of the
   per-worker models against both collections — any committed write lost
   in a kill/recover cycle breaks it — plus replica/master agreement and
   the mode's replication-lag bound. *)

type failover_config = {
  fo_chaos : config;
  fo_policy : Stm.Contention.policy;
  fo_domains : int;
  fo_ops_per_domain : int;
  fo_places : int;
  fo_key_space : int;  (* TOTAL key space, interval-partitioned over places *)
  fo_mode : Places.mode;
  fo_kills : int;
}

let default_failover ?(policy = Stm.Contention.default) ?(domains = 2)
    ?(ops_per_domain = 1200) ?(places = 4) ?(key_space = 192) ?(kills = 3)
    ?(mode = Places.Eager) ~seed p =
  {
    fo_chaos = uniform ~seed p;
    fo_policy = policy;
    fo_domains = domains;
    fo_ops_per_domain = ops_per_domain;
    fo_places = places;
    fo_key_space = key_space;
    fo_mode = mode;
    fo_kills = kills;
  }

type failover_report = {
  fv_ok : bool;
  fv_errors : string list;
  fv_committed : int;
  fv_committed_after_failover : int;  (* commits after the last recovery *)
  fv_kills : int;
  fv_place_down : int;  (* writer transactions refused by a down place *)
  fv_snapshots : int;
  fv_snapshot_denials : int;  (* reader pins older than a promotion *)
  fv_max_lag : int;  (* lifetime replication-lag high-water mark *)
  fv_injections : int * int * int * int;
}

let mode_name = function
  | Places.Eager -> "eager"
  | Places.Lazy _ -> "lazy"

let run_failover_soak fc =
  install fc.fo_chaos;
  let store =
    Places.create ~place_count:fc.fo_places ~key_space:fc.fo_key_space
      ~mode:fc.fo_mode ()
  in
  let section suffix =
    Printf.sprintf "failover-%s.%s" (mode_name fc.fo_mode) suffix
  in
  let stop = Atomic.make false in
  let ops_done = Atomic.make 0 in
  let after_failover = Atomic.make false in
  let committed_late = Atomic.make 0 in
  let place_down = Atomic.make 0 in
  let writer index =
    register_worker fc.fo_chaos ~index;
    let rng = stream_of_seed (fc.fo_chaos.seed lxor 0xfa11) (index + 1) in
    let model = Hashtbl.create 64 in
    let committed = ref 0 in
    let errs = ref [] in
    let ctx () = fail_context fc.fo_chaos ~section:(section "writer") in
    (* Worker [index] owns the keys congruent to [index] modulo the worker
       count: disjoint ownership keeps the union of models linearizable,
       and every worker's keys span every place, so traffic keeps flowing
       into live places while one is down. *)
    let own () =
      (rand_int rng (fc.fo_key_space / fc.fo_domains) * fc.fo_domains) + index
    in
    let run_txn body apply_model =
      match Stm.atomic ~policy:fc.fo_policy body with
      | () ->
          incr committed;
          if Atomic.get after_failover then Atomic.incr committed_late;
          apply_model ()
      | exception Stm.Place_down _ ->
          (* Refused strictly before the commit point: no effect, no model
             change.  Back off briefly; recovery is concurrent. *)
          Atomic.incr place_down;
          Unix.sleepf 0.0002
      | exception Stm.Handler_failure { committed = c; failures } ->
          List.iter
            (fun e ->
              match e with
              | Chaos_fault _ -> ()
              | e ->
                  errs :=
                    (ctx () ^ "unexpected handler failure: "
                    ^ Printexc.to_string e)
                    :: !errs)
            failures;
          if c then begin
            incr committed;
            if Atomic.get after_failover then Atomic.incr committed_late;
            apply_model ()
          end
      | exception e ->
          errs :=
            (ctx () ^ "transaction raised: " ^ Printexc.to_string e) :: !errs
    in
    for i = 1 to fc.fo_ops_per_domain do
      let k = own () in
      let dice = rand_int rng 100 in
      if dice < 45 then
        run_txn
          (fun () ->
            ignore (Places.put store k i);
            ignore (Places.sorted_put store k i))
          (fun () -> Hashtbl.replace model k i)
      else if dice < 65 then
        run_txn
          (fun () ->
            ignore (Places.remove store k);
            ignore (Places.sorted_remove store k))
          (fun () -> Hashtbl.remove model k)
      else if dice < 85 then begin
        (* Cross-place pair: all four mirrors move in one commit, whose
           region plan spans both places — a kill landing between them
           must veto the whole transaction, never half of it. *)
        let k2 = own () in
        run_txn
          (fun () ->
            ignore (Places.put store k (-i));
            ignore (Places.sorted_put store k (-i));
            ignore (Places.put store k2 i);
            ignore (Places.sorted_put store k2 i))
          (fun () ->
            Hashtbl.replace model k (-i);
            Hashtbl.replace model k2 i)
      end
      else begin
        (* Committed read of an own key: must agree with the model and
           with its sorted mirror (captured in a cell so the check runs
           only on the committed attempt). *)
        let got = ref (None, None) in
        run_txn
          (fun () ->
            got := (Places.find store k, Places.sorted_find store k))
          (fun () ->
            let a, b = !got in
            if a <> b then
              errs :=
                (ctx () ^ Printf.sprintf "mirror torn at key %d" k) :: !errs;
            if a <> Hashtbl.find_opt model k then
              errs :=
                (ctx () ^ Printf.sprintf "read of own key %d disagrees" k)
                :: !errs)
      end;
      Atomic.incr ops_done
    done;
    (model, !committed, List.rev !errs)
  in
  let reader () =
    let errs = ref [] in
    let ctx () = fail_context fc.fo_chaos ~section:(section "reader") in
    let fail fmt =
      Printf.ksprintf (fun s -> errs := (ctx () ^ s) :: !errs) fmt
    in
    let snapshots = ref 0 and denials = ref 0 in
    while not (Atomic.get stop) do
      match
        Stm.snapshot (fun () ->
            (* One pinned timestamp across both collections and all
               places: the mirror invariant and the fold/size cut must
               hold even while a place is down (its frozen master still
               serves the pin) or freshly promoted. *)
            for k = 0 to fc.fo_key_space - 1 do
              let a = Places.find store k and b = Places.sorted_find store k in
              if a <> b then fail "snapshot mirror torn at key %d" k
            done;
            let n = Places.fold (fun _ _ n -> n + 1) store 0 in
            let s = Places.size store in
            if n <> s then fail "snapshot fold=%d disagrees with size=%d" n s;
            let prev = ref min_int in
            List.iter
              (fun (k, _) ->
                if k <= !prev then fail "snapshot sorted not ascending at %d" k;
                prev := k)
              (Places.sorted_to_list store))
      with
      | () -> incr snapshots
      | exception Stm.Place_down _ ->
          (* Pin predates a promotion: the history it needs died with the
             old master.  Re-pin and continue. *)
          incr denials;
          Unix.sleepf 0.0002
    done;
    (!snapshots, !denials, List.rev !errs)
  in
  let doms =
    List.init fc.fo_domains (fun index -> Domain.spawn (fun () -> writer index))
  in
  let reader_dom = Domain.spawn reader in
  (* Controller: kill a seeded-random place at evenly spaced progress
     thresholds, hold it down while traffic runs, then recover it from
     its slave.  The last threshold is below the total op count, so every
     kill lands mid-traffic. *)
  let total = fc.fo_domains * fc.fo_ops_per_domain in
  let ctl_rng = stream_of_seed (fc.fo_chaos.seed lxor 0xdeadf) 0 in
  let kills = ref 0 in
  for c = 1 to fc.fo_kills do
    let threshold = c * total / (fc.fo_kills + 1) in
    while Atomic.get ops_done < threshold do
      Unix.sleepf 0.0005
    done;
    let p = rand_int ctl_rng fc.fo_places in
    Places.kill store p;
    incr kills;
    Unix.sleepf 0.002;
    Places.recover store p;
    if c = fc.fo_kills then Atomic.set after_failover true
  done;
  let results = List.map Domain.join doms in
  Atomic.set stop true;
  let snapshots, denials, reader_errs = Domain.join reader_dom in
  uninstall ();
  let errors = ref [] in
  let check name cond errors =
    check (fail_context fc.fo_chaos ~section:(section "final") ^ name) cond errors
  in
  List.iter
    (fun (_, _, es) -> List.iter (fun e -> errors := e :: !errors) es)
    results;
  List.iter (fun e -> errors := e :: !errors) reader_errs;
  check "all places recovered"
    (List.for_all (Places.is_up store) (List.init fc.fo_places Fun.id))
    errors;
  (* Zero lost committed writes: through every kill/recover cycle, both
     collections hold exactly the union of the per-worker models. *)
  let expect = Hashtbl.create 256 in
  List.iter
    (fun (m, _, _) -> Hashtbl.iter (fun k v -> Hashtbl.replace expect k v) m)
    results;
  let actual = Places.to_list store in
  check "map size vs model (no lost committed writes)"
    (List.length actual = Hashtbl.length expect)
    errors;
  List.iter
    (fun (k, v) ->
      check
        (Printf.sprintf "map binding %d agrees with model" k)
        (Hashtbl.find_opt expect k = Some v)
        errors)
    actual;
  let actual_sorted = Places.sorted_to_list store in
  check "sorted size vs model (no lost committed writes)"
    (List.length actual_sorted = Hashtbl.length expect)
    errors;
  List.iter
    (fun (k, v) ->
      check
        (Printf.sprintf "sorted binding %d agrees with model" k)
        (Hashtbl.find_opt expect k = Some v)
        errors)
    actual_sorted;
  check "sorted globally ascending"
    (let rec ordered = function
       | (a, _) :: ((b, _) :: _ as rest) -> a < b && ordered rest
       | _ -> true
     in
     ordered actual_sorted)
    errors;
  (* Replication: replicas structurally agree with the promoted masters,
     the lag drains to zero, and the lifetime high-water respected the
     mode's bound. *)
  check "replicas agree with masters" (Places.replica_agrees store) errors;
  check "replication lag drained" (Places.replication_lag store = 0) errors;
  let bound = match Places.lag_bound store with None -> 0 | Some b -> b in
  let max_lag = Places.max_lag_observed store in
  check
    (Printf.sprintf "replication lag bounded (observed %d, bound %d)" max_lag
       bound)
    (max_lag <= bound)
    errors;
  (* Leak probes and liveness through failover. *)
  check "no leaked place locks" (Places.outstanding_locks store = 0) errors;
  check "no held commit regions" (Stm.regions_held () = 0) errors;
  check "kill/recover cycles executed" (!kills = fc.fo_kills) errors;
  let committed = List.fold_left (fun a (_, c, _) -> a + c) 0 results in
  check "writers committed transactions" (committed > 0) errors;
  (* With [fo_kills = 0] the soak degrades to a kill-free baseline run
     (used for the before/after comparison); there is no "after". *)
  check "commits after the last failover"
    (fc.fo_kills = 0 || Atomic.get committed_late > 0)
    errors;
  check "reader completed snapshots" (snapshots > 0) errors;
  Places.close store;
  if !errors <> [] then
    errors := repro_hint ~target:"failover" fc.fo_chaos :: !errors;
  {
    fv_ok = !errors = [];
    fv_errors = List.rev !errors;
    fv_committed = committed;
    fv_committed_after_failover = Atomic.get committed_late;
    fv_kills = !kills;
    fv_place_down = Atomic.get place_down;
    fv_snapshots = snapshots;
    fv_snapshot_denials = denials;
    fv_max_lag = max_lag;
    fv_injections =
      ( Atomic.get injected_conflicts,
        Atomic.get injected_remote_aborts,
        Atomic.get injected_handler_faults,
        Atomic.get injected_delays );
  }

let pp_failover_report ppf (r : failover_report) =
  let c, ra, hf, d = r.fv_injections in
  Format.fprintf ppf
    "ok=%b committed=%d after_failover=%d kills=%d place_down=%d snapshots=%d \
     denials=%d max_lag=%d injected(conflict=%d remote=%d handler=%d delay=%d)"
    r.fv_ok r.fv_committed r.fv_committed_after_failover r.fv_kills
    r.fv_place_down r.fv_snapshots r.fv_snapshot_denials r.fv_max_lag c ra hf d;
  List.iter (fun e -> Format.fprintf ppf "@.  FAILED: %s" e) r.fv_errors
