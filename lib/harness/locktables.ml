(* Regenerate the semantic-lock tables (Tables 2, 5 and 8) by tracing the
   actual host implementation: run each operation inside a transaction,
   inspect which locks the transaction holds, then abort so nothing leaks.
   The write-conflict column comes from {!Commute_spec}'s verified conflict
   sets. *)

module Stm = Tcc_stm.Stm
module IM = Txcoll.Host.Map (Txcoll.Host.Int_hashed)
module SM = Txcoll.Host.Sorted_map (Txcoll.Host.Int_ordered)
module Q = Txcoll.Host.Queue

(* [stripes] exercises the striped lock manager: the traced lock rows must
   be identical for every K (striping changes contention, never which
   semantic locks an operation takes) — the K ∈ {1, 4, 16} soundness
   re-check drives these probes. *)
let probe_map ?stripes op =
  let m = IM.create ?stripes () in
  List.iter (fun k -> ignore (IM.put m k k)) [ 10; 20; 30 ];
  let held = ref [] in
  (try
     Stm.atomic (fun () ->
         op m;
         if IM.holds_key_lock m 10 then held := "key(10)" :: !held;
         if IM.holds_key_lock m 77 then held := "key(77)" :: !held;
         if IM.holds_size_lock m then held := "size" :: !held;
         if IM.holds_isempty_lock m then held := "isEmpty" :: !held;
         Stm.self_abort ())
   with Stm.Aborted -> ());
  List.rev !held

(* [splitters] exercises the interval-partitioned lock manager the same
   way: lock rows must be invariant in the partition. *)
let probe_sorted ?splitters op =
  let m = SM.create ?splitters () in
  List.iter (fun k -> ignore (SM.put m k k)) [ 10; 20; 30 ];
  let held = ref [] in
  (try
     Stm.atomic (fun () ->
         op m;
         if SM.holds_key_lock m 10 then held := "key(10)" :: !held;
         if SM.holds_key_lock m 77 then held := "key(77)" :: !held;
         if SM.holds_size_lock m then held := "size" :: !held;
         if SM.holds_range_lock m then held := "range" :: !held;
         if SM.holds_first_lock m then held := "first" :: !held;
         if SM.holds_last_lock m then held := "last" :: !held;
         Stm.self_abort ())
   with Stm.Aborted -> ());
  List.rev !held

let probe_queue ~empty op =
  let q = Q.create () in
  if not empty then Q.put q 1;
  let held = ref [] in
  (try
     Stm.atomic (fun () ->
         op q;
         if Q.holds_empty_lock q then held := "empty" :: !held;
         Stm.self_abort ())
   with Stm.Aborted -> ());
  List.rev !held

let show locks = if locks = [] then "(none)" else String.concat ", " locks

let render_table2 ppf () =
  Fmt.pf ppf "@.Table 2 — semantic locks taken by Map operations (traced)@.";
  let rows =
    [
      ("containsKey(10) [present]", probe_map (fun m -> ignore (IM.mem m 10)));
      ("containsKey(77) [absent]", probe_map (fun m -> ignore (IM.mem m 77)));
      ("get(10)", probe_map (fun m -> ignore (IM.find m 10)));
      ("size", probe_map (fun m -> ignore (IM.size m)));
      ("isEmpty [dedicated lock]", probe_map (fun m -> ignore (IM.is_empty m)));
      ("entrySet iteration", probe_map (fun m -> ignore (IM.to_list m)));
      ("put(10, v)", probe_map (fun m -> ignore (IM.put m 10 0)));
      ("put(77, v) [new key]", probe_map (fun m -> ignore (IM.put m 77 0)));
      ("putBlind(10, v)", probe_map (fun m -> IM.put_blind m 10 0));
      ("remove(10)", probe_map (fun m -> ignore (IM.remove m 10)));
      ("removeBlind(10)", probe_map (fun m -> IM.remove_blind m 10));
    ]
  in
  List.iter (fun (n, locks) -> Fmt.pf ppf "  %-28s read locks: %s@." n (show locks)) rows;
  Fmt.pf ppf
    "  write conflicts at commit: key lock on every written key; size lock@.";
  Fmt.pf ppf
    "  when the size changes; isEmpty lock when emptiness flips (verified@.";
  Fmt.pf ppf "  sound against brute-force commutativity, see table1).@."

let render_table5 ppf () =
  Fmt.pf ppf
    "@.Table 5 — semantic locks taken by SortedMap operations (traced)@.";
  let rows =
    [
      ("firstKey", probe_sorted (fun m -> ignore (SM.first_key m)));
      ("lastKey", probe_sorted (fun m -> ignore (SM.last_key m)));
      ("entrySet iteration", probe_sorted (fun m -> ignore (SM.to_list m)));
      ( "subMap(15,25) iteration",
        probe_sorted (fun m ->
            ignore (SM.fold_range (fun _ _ a -> a) m () ~lo:(Some 15) ~hi:(Some 25)))
      );
      ( "headMap(25) iteration",
        probe_sorted (fun m ->
            ignore (SM.View.to_list (SM.head_map m ~hi:25))) );
      ( "tailMap(15).firstKey",
        probe_sorted (fun m ->
            ignore (SM.View.first_key (SM.tail_map m ~lo:15))) );
      ("get(10)", probe_sorted (fun m -> ignore (SM.find m 10)));
      ("put(77, v) [new key]", probe_sorted (fun m -> ignore (SM.put m 77 0)));
      ("remove(10)", probe_sorted (fun m -> ignore (SM.remove m 10)));
    ]
  in
  List.iter (fun (n, locks) -> Fmt.pf ppf "  %-28s read locks: %s@." n (show locks)) rows;
  Fmt.pf ppf
    "  write conflicts at commit: key & range conflicts on the written key;@.";
  Fmt.pf ppf
    "  first/last conflicts on endpoint changes; size/isEmpty as for Map.@."

let render_table8 ppf () =
  Fmt.pf ppf
    "@.Table 8 — semantic locks taken by Channel operations (traced)@.";
  let rows =
    [
      ("peek [non-empty]", probe_queue ~empty:false (fun q -> ignore (Q.peek q)));
      ("peek [empty]", probe_queue ~empty:true (fun q -> ignore (Q.peek q)));
      ("poll [non-empty]", probe_queue ~empty:false (fun q -> ignore (Q.poll q)));
      ("poll [empty]", probe_queue ~empty:true (fun q -> ignore (Q.poll q)));
      ("put", probe_queue ~empty:true (fun q -> Q.put q 9));
      ("take", probe_queue ~empty:false (fun q -> ignore (Q.take q)));
    ]
  in
  List.iter (fun (n, locks) -> Fmt.pf ppf "  %-28s read locks: %s@." n (show locks)) rows;
  Fmt.pf ppf
    "  write conflicts at commit: a put aborts the transactions that@.";
  Fmt.pf ppf "  observed emptiness (\"if now non-empty\"); takes never conflict.@."
