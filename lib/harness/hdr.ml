(* HDR-style log-bucketed latency histogram.

   The open-loop harness records one latency per request at rates that can
   reach millions per second, so the recorder must be O(1), allocation-free
   and mergeable across domains.  The classic HdrHistogram layout does
   exactly that: values (here: nanoseconds) are binned into a linear range
   of [sub_count] slots followed by one 32-slot half-range per power of
   two, giving a worst-case relative error of 1/64 (~1.6%) over the whole
   range 1 ns .. ~146 hours with a counts array of under 2k words.

   Layout.  [msb] is the 0-based position of the value's highest set bit.

     bucket 0  : values [0, 64)            -> slots 0..63 (exact)
     bucket b>0: values [32*2^b, 64*2^b)   -> 32 slots, width 2^b each
                 slot index = (b + 1) * 32 + (v >> b) - 32

   [percentile] walks the cumulative counts and returns the recorded
   bucket's midpoint, so a reported p99 is within the bucket error of the
   true order statistic.  The true maximum is tracked exactly on the side.

   The module also owns the exact sort-based percentile used by the
   closed-loop benches ([p99_us] over per-domain latency arrays), which
   was previously copy-pasted at every bench site. *)

type t = {
  counts : int array;
  mutable total : int;
  mutable max_ns : int;
  mutable sum_ns : float;
}

let sub_bits = 6
let sub_count = 1 lsl sub_bits (* 64 linear slots, then 32 per octave *)
let half = sub_count / 2

(* Enough buckets for any int64-nanosecond latency on a 63-bit int. *)
let n_buckets = 58
let array_len = sub_count + (n_buckets * half)

let create () = { counts = Array.make array_len 0; total = 0; max_ns = 0; sum_ns = 0. }

let reset t =
  Array.fill t.counts 0 array_len 0;
  t.total <- 0;
  t.max_ns <- 0;
  t.sum_ns <- 0.

let msb_pos v =
  (* 0-based position of the highest set bit of [v] > 0. *)
  let rec go v p = if v = 1 then p else go (v lsr 1) (p + 1) in
  go v 0

let index_of_ns v =
  if v < sub_count then v
  else
    let b = msb_pos v - sub_bits + 1 in
    let b = if b >= n_buckets then n_buckets - 1 else b in
    ((b + 1) * half) + ((v lsr b) - half)

(* Midpoint of the slot at [i]: the value reported back by [percentile]. *)
let value_at_index i =
  if i < sub_count then i
  else
    let b = (i / half) - 1 in
    let sub = (i mod half) + half in
    (sub lsl b) + (1 lsl (b - 1))

let record_ns t ns =
  let ns = if ns < 0 then 0 else ns in
  let i = index_of_ns ns in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1;
  t.sum_ns <- t.sum_ns +. float_of_int ns;
  if ns > t.max_ns then t.max_ns <- ns

let record_s t seconds = record_ns t (int_of_float (seconds *. 1e9))

let count t = t.total

let merge ~into src =
  for i = 0 to array_len - 1 do
    into.counts.(i) <- into.counts.(i) + src.counts.(i)
  done;
  into.total <- into.total + src.total;
  into.sum_ns <- into.sum_ns +. src.sum_ns;
  if src.max_ns > into.max_ns then into.max_ns <- src.max_ns

(* The latency at quantile [q] (0 < q <= 1) in nanoseconds; 0 on an empty
   histogram.  For q high enough to land in the last occupied slot the
   exact tracked maximum is returned instead of the slot midpoint, so
   p100 (and a p999 of a small sample) never over-reports. *)
let percentile_ns t q =
  if t.total = 0 then 0
  else begin
    let rank =
      let r = int_of_float (ceil (q *. float_of_int t.total)) in
      if r < 1 then 1 else if r > t.total then t.total else r
    in
    let acc = ref 0 and i = ref 0 and found = ref (-1) in
    while !found < 0 && !i < array_len do
      acc := !acc + t.counts.(!i);
      if !acc >= rank then found := !i;
      incr i
    done;
    let slot = if !found < 0 then array_len - 1 else !found in
    let v = value_at_index slot in
    if v > t.max_ns then t.max_ns else v
  end

let percentile_us t q = float_of_int (percentile_ns t q) /. 1e3
let max_us t = float_of_int t.max_ns /. 1e3
let mean_us t =
  if t.total = 0 then 0. else t.sum_ns /. float_of_int t.total /. 1e3

(* ------------------------------------------------------------------ *)
(* Exact percentile over per-domain closed-loop latency arrays (seconds),
   reported in microseconds.  Shared by the stmscale / semscale /
   sortedscale benches, which each used to inline the same
   concat-sort-index block.  The index formula is kept bit-for-bit
   ([n * 99 / 100] for p99) so recorded BENCH trajectories stay
   comparable across the refactor. *)

let percentile_us_exact ~num ~den lats =
  let all = Array.concat lats in
  let n = Array.length all in
  if n = 0 then 0.
  else begin
    Array.sort Float.compare all;
    all.(min (n - 1) (n * num / den)) *. 1e6
  end

let p99_us lats = percentile_us_exact ~num:99 ~den:100 lats
