(* Open-loop load generation with Poisson arrivals.

   Every other bench in the repo is closed-loop: each domain issues its
   next transaction the moment the previous one finishes, so a slow
   system slows its own offered load and queueing collapse is invisible.
   This harness is open-loop: arrivals are scheduled ahead of time from a
   Poisson process at a target offered rate, independently of how fast
   the system services them, which is the only way to see the saturation
   knee and what happens past it.

   Latency accounting is coordinated-omission-free: a request's latency
   is measured from its *scheduled arrival time* to its completion, not
   from when the worker got around to starting it.  A worker running
   behind schedule therefore reports the queueing delay its backlog
   causes, exactly as a real arrival stream would experience it.

   Each domain runs an independent arrival stream at rate/D (the
   superposition of independent Poisson processes is Poisson at the
   summed rate), paces itself with sleep-then-spin, and records into a
   private {!Hdr} histogram merged after join.  A domain that falls more
   than [lag_bail] seconds behind its schedule has hit queueing
   collapse; it stops executing and accounts the rest of its schedule as
   [dropped], so overloaded probes terminate in bounded time while still
   reporting the collapse (dropped requests count against goodput).

   Requests that raise {!Stm.Overloaded} (the [Shed] admission policy)
   are counted as [shed], not completed — shedding trades goodput
   accounting at the generator for bounded latency at the service.

   [rate_search] walks offered load to the knee: a geometric ramp
   (doubling) while the SLO holds, then a geometric-mean bisection
   refine between the last sustainable and first unsustainable rates.
   "Sustainable" means: nothing dropped or shed, ≥95% of the schedule
   completed, and p99 within the SLO. *)

module Stm = Tcc_stm.Stm

type result = {
  offered_rate : float;  (* requests/s the schedule targeted *)
  duration : float;  (* nominal run length, seconds *)
  scheduled : int;  (* arrivals generated across all domains *)
  completed : int;  (* requests that ran to completion *)
  within_slo : int;  (* completions with latency <= slo *)
  shed : int;  (* requests rejected with Stm.Overloaded *)
  dropped : int;  (* schedule abandoned after queueing collapse *)
  throughput : float;  (* completed / duration *)
  goodput : float;  (* within_slo / duration *)
  p50_us : float;
  p99_us : float;
  p999_us : float;
  max_us : float;
  mean_us : float;
}

(* [worker ~domain] is called once per domain before its stream starts
   and returns the request thunk — per-domain RNG and scratch live in
   the closure.  The thunk is one request; it may raise
   [Stm.Overloaded] (counted as shed), any other exception kills the
   run. *)
type worker = domain:int -> unit -> unit

let run_at ?(domains = 2) ?(seed = 1) ?(slo_us = 1000.) ?(lag_bail = 1.0)
    ~rate ~duration (worker : worker) =
  if rate <= 0. then invalid_arg "Openloop.run_at: rate must be > 0";
  if domains < 1 then invalid_arg "Openloop.run_at: domains must be >= 1";
  let rate_d = rate /. float_of_int domains in
  let slo_s = slo_us *. 1e-6 in
  let body index =
    let req = worker ~domain:index in
    let rng = Chaos.stream_of_seed (seed lxor 0x09e7) (index + 1) in
    let h = Hdr.create () in
    let scheduled = ref 0
    and completed = ref 0
    and within = ref 0
    and shed = ref 0
    and dropped = ref 0 in
    let t0 = Stm.Monoclock.now () in
    let t_end = t0 +. duration in
    let next = ref t0 in
    let bailed = ref false in
    let step () =
      (* Exponential inter-arrival: -ln(1-U)/lambda, U in [0,1). *)
      next := !next +. (-.log1p (-.Chaos.rand_float rng) /. rate_d)
    in
    step ();
    while !next < t_end do
      incr scheduled;
      if !bailed then incr dropped
      else begin
        let now = Stm.Monoclock.now () in
        let delay = !next -. now in
        if delay > 0. then begin
          (* Sleep to just short of the arrival, spin the remainder —
             sleepf alone overshoots by a scheduler quantum, and a long
             spin would starve sibling domains on small hosts. *)
          if delay > 1.5e-4 then Unix.sleepf (delay -. 1e-4);
          while Stm.Monoclock.now () < !next do
            Domain.cpu_relax ()
          done
        end
        else if -.delay > lag_bail then bailed := true;
        if !bailed then incr dropped
        else begin
          match req () with
          | () ->
              let lat = Stm.Monoclock.now () -. !next in
              Hdr.record_s h lat;
              incr completed;
              if lat <= slo_s then incr within
          | exception Stm.Overloaded -> incr shed
        end
      end;
      step ()
    done;
    (h, !scheduled, !completed, !within, !shed, !dropped)
  in
  let parts =
    if domains = 1 then [| body 0 |]
    else
      Array.init domains (fun i -> Domain.spawn (fun () -> body i))
      |> Array.map Domain.join
  in
  let hist = Hdr.create () in
  let scheduled = ref 0
  and completed = ref 0
  and within = ref 0
  and shed = ref 0
  and dropped = ref 0 in
  Array.iter
    (fun (h, s, c, w, sh, d) ->
      Hdr.merge ~into:hist h;
      scheduled := !scheduled + s;
      completed := !completed + c;
      within := !within + w;
      shed := !shed + sh;
      dropped := !dropped + d)
    parts;
  {
    offered_rate = rate;
    duration;
    scheduled = !scheduled;
    completed = !completed;
    within_slo = !within;
    shed = !shed;
    dropped = !dropped;
    throughput = float_of_int !completed /. duration;
    goodput = float_of_int !within /. duration;
    p50_us = Hdr.percentile_us hist 0.50;
    p99_us = Hdr.percentile_us hist 0.99;
    p999_us = Hdr.percentile_us hist 0.999;
    max_us = Hdr.max_us hist;
    mean_us = Hdr.mean_us hist;
  }

(* ---------------- rate search ---------------- *)

type probe = { p_rate : float; p_result : result }

type search = {
  sustainable_rate : float;  (* 0. when even the lowest probe failed *)
  knee : result option;  (* the result at [sustainable_rate] *)
  probes : probe list;  (* every probe run, in execution order *)
}

let sustainable ~slo_us r =
  r.completed > 0 && r.dropped = 0 && r.shed = 0
  && float_of_int r.completed >= 0.95 *. float_of_int r.scheduled
  && r.p99_us <= slo_us

let rate_search ?(domains = 2) ?(seed = 1) ?(slo_us = 1000.)
    ?(start_rate = 500.) ?(max_rate = 2e6) ?(refine = 3) ~duration
    (worker : worker) =
  let probes = ref [] in
  let run rate =
    let r = run_at ~domains ~seed ~slo_us ~rate ~duration worker in
    probes := { p_rate = rate; p_result = r } :: !probes;
    r
  in
  (* If the starting rate is already past the knee, walk down a few
     octaves before giving up — keeps the search robust to slow hosts. *)
  let rec descend rate tries =
    let r = run rate in
    if sustainable ~slo_us r then Some (rate, r)
    else if tries = 0 then None
    else descend (rate /. 4.) (tries - 1)
  in
  match descend start_rate 4 with
  | None -> { sustainable_rate = 0.; knee = None; probes = List.rev !probes }
  | Some (rate0, r0) ->
      (* Geometric ramp until the SLO breaks (or the cap). *)
      let lo = ref rate0 and lo_r = ref r0 in
      let hi = ref None in
      let rate = ref (rate0 *. 2.) in
      while !hi = None && !rate <= max_rate do
        let r = run !rate in
        if sustainable ~slo_us r then begin
          lo := !rate;
          lo_r := r;
          rate := !rate *. 2.
        end
        else hi := Some !rate
      done;
      (* Geometric-mean bisection between last good and first bad. *)
      (match !hi with
      | None -> ()
      | Some h ->
          let h = ref h in
          for _ = 1 to refine do
            let mid = sqrt (!lo *. !h) in
            let r = run mid in
            if sustainable ~slo_us r then begin
              lo := mid;
              lo_r := r
            end
            else h := mid
          done);
      { sustainable_rate = !lo; knee = Some !lo_r; probes = List.rev !probes }
