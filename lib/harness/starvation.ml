(* Forced-starvation scenario for the contention-manager comparison: one
   long writer repeatedly updates a whole block of keys in a single
   transaction while several short writers hammer the same keys with
   one-key transactions.

   Under optimistic semantic concurrency control the short writers'
   commits remote-abort the long writer (key-lock conflicts, Table 2), so
   with plain backoff the long transaction can retry indefinitely — the
   classic starvation schedule.  Under the Greedy policy every short
   committer defers to the older long transaction instead of aborting it
   (the long writer keeps its start ticket across retries, while each
   short call draws a fresh, younger one), so each round completes after
   bounded interference: [completed = rounds] and no starvation.  With a
   retry/deadline budget instead, exhaustion surfaces as [Stm.Starved]
   and is counted here. *)

module Stm = Tcc_stm.Stm
module Map = Txcoll.Host.Map (Txcoll.Host.Int_hashed)

type report = {
  policy : string;
  rounds : int;
  completed : int;  (* long-writer rounds that committed *)
  starved : int;  (* long-writer rounds that exhausted their budget *)
  long_retries : int;  (* total aborted attempts of the long writer *)
  elapsed_s : float;
}

let think spins =
  for _ = 1 to spins do
    Domain.cpu_relax ()
  done

let run ?(policy = Stm.Contention.default) ?budget ?(rounds = 40) ?(keys = 48)
    ?(short_domains = 3) ?(long_spin = 300) ?(long_sleep = 2e-4) () =
  let map = Map.create () in
  let stop = Atomic.make false in
  let started = Atomic.make 0 in
  (* The short writers run under the same policy: deferral is decided by
     the committer about to deliver a remote abort, so the policy must be
     system-wide for its progress guarantee to hold (a Greedy short
     committer defers to the older long transaction instead of aborting
     it). *)
  let shorts =
    List.init short_domains (fun d ->
        Domain.spawn (fun () ->
            let i = ref 0 in
            while not (Atomic.get stop) do
              incr i;
              let k = (d + !i) mod keys in
              Stm.atomic ~policy (fun () -> ignore (Map.put map k !i));
              if !i = 1 then Atomic.incr started
            done))
  in
  (* Without this barrier the long writer can finish every round before a
     single short writer is scheduled, and the "starvation" schedule never
     materialises. *)
  while Atomic.get started < short_domains do
    Domain.cpu_relax ()
  done;
  let completed = ref 0 and starved = ref 0 and long_retries = ref 0 in
  let t0 = Unix.gettimeofday () in
  for round = 1 to rounds do
    match
      Stm.atomic ~policy ?budget (fun () ->
          for k = 0 to keys - 1 do
            ignore (Map.put map k round);
            think long_spin;
            (* Periodic real yield: on a single core the long transaction
               is otherwise never preempted mid-body and the starvation
               schedule silently degenerates to lock-step execution. *)
            if long_sleep > 0. && k mod 8 = 0 then Unix.sleepf long_sleep
          done;
          Stm.retries ())
    with
    | r ->
        long_retries := !long_retries + r;
        incr completed
    | exception Stm.Starved { attempts; _ } ->
        long_retries := !long_retries + attempts;
        incr starved
  done;
  let elapsed_s = Unix.gettimeofday () -. t0 in
  Atomic.set stop true;
  List.iter Domain.join shorts;
  {
    policy = Stm.Contention.name policy;
    rounds;
    completed = !completed;
    starved = !starved;
    long_retries = !long_retries;
    elapsed_s;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "policy=%-7s rounds=%d completed=%d starved=%d long_retries=%d elapsed=%.2fs"
    r.policy r.rounds r.completed r.starved r.long_retries r.elapsed_s
