(** Module types shared between the host software transactional memory
    ({!module:Tcc_stm}) and the simulated TCC hardware transactional memory
    ({!module:Tcc}).  The transactional collection classes are functorised
    over {!module-type:TM_OPS} so that the same semantic-concurrency-control
    code runs on either system, mirroring the paper's claim that the classes
    apply to both hardware and software TM. *)

type policy_support = {
  ps_eager_acquire : bool;
      (** The collection tolerates encounter-time write-lock acquisition
          on the tvars its operations touch. *)
  ps_read_locking : bool;
      (** The collection tolerates visible (blocking) read locks on its
          tvars. *)
  ps_undo_logging : bool;
      (** The collection tolerates in-place tvar writes with undo-log
          rollback (uncommitted values transiently live in the tvar,
          hidden behind its write lock). *)
}
(** A collection's certification of which TM-policy axes it supports,
    passed to {!TM_OPS.validate_policy} when the collection is created or
    wraps an existing structure with a pinned policy.  Collections whose
    transactional state is purely semantic (store buffers, lock tables,
    commit handlers) support every axis; a collection that bypasses part
    of the protocol — e.g. one that performs its own in-place mutation
    with compensating undo — declares the axes its machinery assumes. *)

(** The transactional semantics required by transactional collection classes
    (paper §4): nested transactions (open and closed), commit and abort
    handlers, and program-directed transaction abort. *)
module type TM_OPS = sig
  type txn
  (** Handle on a top-level transaction.  Semantic locks record the top-level
      transaction as owner — not the open-nested transaction that takes the
      lock — because it is the top-level outcome that must release them. *)

  val current : unit -> txn
  (** Top-level transaction of the calling thread.  Outside any transaction,
      returns a fresh handle denoting an auto-commit (single-operation)
      transaction. *)

  val in_txn : unit -> bool
  (** [true] iff the calling thread is executing inside a transaction. *)

  val same_txn : txn -> txn -> bool

  val txn_id : txn -> int
  (** Unique identifier of a top-level transaction; keys per-transaction
      local state (store buffers, held-lock lists) inside collections. *)

  type region
  (** An isolation region protecting one collection's shared transactional
      state (lock tables and the underlying structure).  On the host STM this
      is a mutex standing in for the atomicity that open-nested transactions
      provide; on the simulated TCC machine it is a lock line accessed inside
      a real open-nested hardware transaction. *)

  val new_region : unit -> region

  val critical : region -> (unit -> 'a) -> 'a
  (** [critical r f] runs [f] as an open-nested atomic section on region [r]:
      its effects are immediately visible to all transactions and are {e not}
      rolled back if the enclosing transaction later aborts (compensation is
      the job of abort handlers). *)

  val on_commit : region -> (unit -> unit) -> unit
  (** [on_commit r h] registers commit handler [h], operating on region [r],
      on the current top-level transaction.  Commit handlers run during the
      commit phase, after validation; they apply buffered changes, perform
      semantic conflict detection and release semantic locks.  The commit
      phase holds the (deduplicated, deadlock-free ordered) set of regions
      of all registered handlers, so commits whose handlers touch disjoint
      collections proceed in parallel while commits into the same collection
      serialise on its region. *)

  val on_commit_prepared :
    ?read_only:(unit -> bool) ->
    ?regions:(unit -> region list) ->
    region ->
    prepare:(unit -> unit) ->
    apply:(int -> unit) ->
    unit
  (** Two-phase commit handler on region [r], registered on the current
      top-level transaction.  [prepare] runs {e before} the commit point:
      it performs semantic conflict detection only (no mutation) and may
      raise — e.g. {!retry} after losing a semantic race, or defer to a
      higher-priority victim — in which case the transaction aborts cleanly
      with nothing applied.  [apply] runs after the commit point, receiving
      the transaction's {e commit stamp} (the write version the TM's clock
      assigned to this commit; [0] on read-only fast paths, which publish
      nothing): it applies buffered changes, publishes the new committed
      versions of the touched shards into their version chains at that
      stamp, and releases semantic locks.  It is executed under a
      protective wrapper so that a raising handler can never skip another
      handler's application or leak locks.  On TMs without a prepare phase
      the two halves run back-to-back as a single commit handler.

      [read_only], evaluated at commit time by the registering transaction,
      certifies that the handler buffered no mutation: [prepare] would
      detect nothing and [apply] only releases semantic read locks and
      transaction-local state.  A TM may then commit on a read-only fast
      path — no region pre-acquisition, no prepare phase, no version-clock
      advance — running [apply] under the handler's own {!critical}
      sections.  Defaults to "never", which is always safe.

      [apply] is also the replication interception point: because it runs
      exception-safely after the commit point, with the handler's region
      held, and receives the globally unique commit stamp, a handler can
      emit the transaction's buffered effects as a stamped replication-log
      batch (see [Places]) — per-region emission order equals stamp order,
      and a batch exists if and only if the transaction committed, which is
      exactly the durability contract a replica needs.  [prepare] is the
      matching failure-domain gate: raising there (e.g. [Stm.Place_down])
      vetoes the commit before any effect, buffer application or log
      emission included.

      [regions], evaluated once at commit time, is the handler's region
      plan for striped collections: the stripe regions its buffered
      operations and held locks cover.  The commit pre-acquires the
      rid-sorted deduplicated union of all handlers' plans, so commits
      whose plans name disjoint stripes of the {e same} collection proceed
      in parallel.  The plan must cover every region [prepare] and [apply]
      will enter beyond their own nested {!critical} sections in ascending
      rid order.  Defaults to [fun () -> [r]].  A TM without multi-region
      commit (the simulated TCC machine) may ignore it and serialise on
      [r]. *)

  val on_abort : (unit -> unit) -> unit
  (** Register an abort handler: a compensating action that releases semantic
      locks and clears local buffers when the top-level transaction aborts. *)

  val remote_abort : txn -> bool
  (** [remote_abort t] requests the abort of another transaction that holds a
      conflicting semantic lock.  Returns [false] when [t] has already passed
      its commit point (it then serialises before the caller, which is not a
      conflict), [true] when the abort was delivered or [t] was already
      aborted/finished aborting. *)

  val self_abort : unit -> 'a
  (** Abort the current transaction explicitly (program-directed abort). *)

  val retry : unit -> 'a
  (** Abort the current transaction and retry it transparently (with the
      TM's contention backoff) — the contention-management hook for the
      pessimistic variants of §5.1. *)

  (** {2 Multi-version snapshot reads}

      A TM may offer an abort-free snapshot-read mode: a read-only
      section pins a timestamp once and resolves every read against the
      version chains the collections publish at commit.  The collections
      consult {!in_snapshot} first on every read path and, when inside a
      snapshot, answer from the chain entry newest-[<=] {!snapshot_stamp}
      — no locks, no regions, no store-buffer state.  A TM without
      multi-versioning (the simulated TCC machine) reports
      [in_snapshot () = false] always, and the snapshot paths are never
      taken. *)

  val in_snapshot : unit -> bool
  (** [true] iff the calling thread is inside a snapshot-read section.
      Mutating collection operations must reject this state. *)

  val snapshot_stamp : unit -> int
  (** The pinned snapshot timestamp; meaningful only when
      {!in_snapshot}. *)

  val begin_publish : unit -> int
  (** Open a publication window and draw a fresh commit stamp for a
      mutation committed outside the TM's own commit path (operation-time
      queue takes, abort compensations, non-transactional stores).  The
      window makes the mutation's chain publications atomic with respect
      to snapshot pinning: a reader pinning concurrently either waits the
      window out or pins above the stamp.  Must be called while holding
      the shard's serialising region; pair with {!end_publish}.
      Reentrant (nested windows keep the outermost sample). *)

  val end_publish : unit -> unit
  (** Close the publication window opened by {!begin_publish} — every
      chain entry stamped by it must be published before this. *)

  val reclaim_epoch : unit -> int
  (** Oldest epoch any active or future snapshot reader can still
      resolve; versions shadowed at it are reclaimable (the [min_epoch]
      for [Vchain.publish]).  [max_int] on TMs without snapshots. *)

  val note_reclaimed : int -> unit
  (** Report [n] reclaimed chain entries to the TM's statistics. *)

  val version_chain_bound : int
  (** Maximum committed versions a collection should retain per chain (the
      [keep] argument for [Vchain.publish]); matches the TM's bound for
      tvar chains. *)

  (** {2 TM policy matrix}

      A TM may let callers select the per-tvar read/write/commit protocol
      — the acquire/read/versioning policy matrix.  Collections interact
      with it in two ways: they certify which axes their machinery
      supports ({!policy_support}, checked by {!validate_policy} when a
      policy is pinned at wrap time), and they may consult
      {!txn_policy_name} to enforce a pinned policy during their prepare
      phase.  A TM with a single fixed protocol (the simulated TCC
      machine) validates names against its fixed point in the matrix. *)

  val validate_policy : support:policy_support -> string -> unit
  (** [validate_policy ~support name] checks that the TM knows policy
      [name] and that every axis the policy exercises is supported per
      [support].  Raises [Invalid_argument] otherwise.  Called at
      collection wrap/create time, so misconfiguration fails fast rather
      than mid-workload. *)

  val txn_policy_name : unit -> string
  (** Name of the TM policy governing the current transaction (the
      process-wide policy when called outside one). *)
end

(** Operations a wrapped (underlying) map implementation must provide.  All
    calls are made inside {!TM_OPS.critical} sections, so the implementation
    needs no internal synchronisation — exactly the paper's "wrap existing
    data structures" property. *)
module type MAP_OPS = sig
  type key
  type 'v t

  val create : unit -> 'v t
  val find : 'v t -> key -> 'v option
  val mem : 'v t -> key -> bool
  val add : 'v t -> key -> 'v -> unit
  (** Insert or replace. *)

  val remove : 'v t -> key -> unit
  val size : 'v t -> int
  val iter : (key -> 'v -> unit) -> 'v t -> unit
end

(** Operations of an underlying ordered map, extending {!MAP_OPS} with the
    ordered traversals the [SortedMap] wrapper needs. *)
module type SORTED_MAP_OPS = sig
  include MAP_OPS

  val compare_key : key -> key -> int

  val min_binding : 'v t -> (key * 'v) option
  val max_binding : 'v t -> (key * 'v) option

  val iter_range : (key -> 'v -> unit) -> 'v t -> lo:key option -> hi:key option -> unit
  (** In-order iteration over keys [k] with [lo <= k < hi] (missing bound =
      unbounded), matching Java's half-open [subMap] views. *)
end

(** Operations of an underlying FIFO queue wrapped by the transactional work
    queue. *)
module type QUEUE_OPS = sig
  type 'v t

  val create : unit -> 'v t
  val enqueue : 'v t -> 'v -> unit
  val dequeue : 'v t -> 'v option
  val peek : 'v t -> 'v option
  val is_empty : 'v t -> bool
  val length : 'v t -> int

  val push_front : 'v t -> 'v -> unit
  (** Return an element to the head: the abort compensation uses this to
      restore taken-but-unprocessed work in its original order. *)
end
