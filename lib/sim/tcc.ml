(* Coroutine-side API of the simulated TCC hardware transactional memory:
   the transactional semantics of paper §4 — closed- and open-nested
   transactions, commit/abort handlers and program-directed abort — on top
   of the machine's lazy-versioning transactional execution.

   Commit sequence of a top-level transaction (two-phase, paper §4):
   acquire the commit token (global commit arbitration; once held the
   transaction cannot be violated), run commit handlers, broadcast the write
   set (applying it to memory and violating conflicting readers), release
   the token. *)

open Ops

exception Aborted
(* Program-directed self-abort, re-raised to the caller of [atomic]. *)

exception Explicit_exn

let cpu_state () =
  let m = Machine.the_machine () in
  m.Machine.cpus.(m.Machine.running)

let state () =
  let c = cpu_state () in
  c.Machine.txn

(* Collections may be created, pre-populated and inspected while no
   simulation is running; TM operations degrade to host-side immediacy. *)
let machine_running () = !Machine.current <> None

let in_txn () = machine_running () && (state ()).Machine.frames <> []

let backoff_cycles (cfg : Config.t) retries =
  cfg.backoff_base * (1 lsl min retries cfg.backoff_cap)

let push_frame kind =
  let st = state () in
  let depth = List.length st.Machine.frames in
  let f = Machine.fresh_frame depth kind in
  st.Machine.frames <- f :: st.Machine.frames;
  f

let pop_frame () =
  let st = state () in
  match st.Machine.frames with
  | f :: rest ->
      st.Machine.frames <- rest;
      f
  | [] -> assert false

let run_handlers hs = List.iter (fun h -> h ()) hs

(* ------------------------------------------------------------------ *)

let rec top_level body =
  let m = Machine.the_machine () in
  let st = state () in
  st.Machine.epoch <- m.Machine.next_epoch;
  m.Machine.next_epoch <- m.Machine.next_epoch + 1;
  let top = push_frame `Top in
  match
    let r = body () in
    Effect.perform Token_acquire;
    (* Commit handlers run inside the commit, after the point of no return
       (token held), serialised against all other commits. *)
    run_handlers (List.rev top.Machine.commit_handlers);
    Effect.perform Commit_broadcast;
    ignore (pop_frame ());
    st.Machine.retries <- 0;
    Effect.perform Token_release;
    r
  with
  | r -> r
  | exception Rollback 0 ->
      (* Violated: discard all frames, compensate, back off, retry. *)
      let handlers = top.Machine.abort_handlers in
      st.Machine.frames <- [];
      st.Machine.violated <- None;
      run_handlers handlers;
      st.Machine.retries <- st.Machine.retries + 1;
      work (backoff_cycles m.Machine.cfg st.Machine.retries);
      top_level body
  | exception Explicit_exn ->
      let handlers = top.Machine.abort_handlers in
      st.Machine.frames <- [];
      st.Machine.violated <- None;
      run_handlers handlers;
      raise Aborted
  | exception e ->
      (* Any other exception aborts the transaction and propagates. *)
      let handlers = top.Machine.abort_handlers in
      st.Machine.frames <- [];
      st.Machine.violated <- None;
      run_handlers handlers;
      raise e

and closed_nested body =
  let st = state () in
  match st.Machine.frames with
  | [] -> top_level body
  | parent :: _ ->
      let rec attempt retries =
        let child = push_frame `Closed in
        match body () with
        | r ->
            (* Merge child into parent (flat merge of reads/writes; handlers
               migrate to the parent, paper §4). *)
            ignore (pop_frame ());
            Hashtbl.iter (fun l () -> Hashtbl.replace parent.Machine.reads l ()) child.Machine.reads;
            Hashtbl.iter (fun a v -> Hashtbl.replace parent.Machine.writes a v) child.Machine.writes;
            parent.Machine.commit_handlers <-
              child.Machine.commit_handlers @ parent.Machine.commit_handlers;
            parent.Machine.abort_handlers <-
              child.Machine.abort_handlers @ parent.Machine.abort_handlers;
            r
        | exception Rollback d when d = child.Machine.depth ->
            (* Partial rollback: retry just this child. *)
            ignore (pop_frame ());
            let m = Machine.the_machine () in
            work (backoff_cycles m.Machine.cfg retries);
            attempt (retries + 1)
        | exception e ->
            ignore (pop_frame ());
            raise e
      in
      attempt 0

and atomic body = closed_nested body

and open_nested body =
  let st = state () in
  match st.Machine.frames with
  | [] -> top_level body
  | parent :: _ ->
      let rec attempt retries =
        let child = push_frame `Open in
        match
          (* The broadcast belongs to the attempt: a violation delivered at
             this effect must retry the open transaction. *)
          let r = body () in
          Effect.perform Open_broadcast;
          r
        with
        | r ->
            (* Open commit done: read dependencies are discarded; handlers
               migrate to the parent. *)
            ignore (pop_frame ());
            parent.Machine.commit_handlers <-
              child.Machine.commit_handlers @ parent.Machine.commit_handlers;
            parent.Machine.abort_handlers <-
              child.Machine.abort_handlers @ parent.Machine.abort_handlers;
            r
        | exception Rollback d when d = child.Machine.depth ->
            ignore (pop_frame ());
            let m = Machine.the_machine () in
            work (backoff_cycles m.Machine.cfg retries);
            attempt (retries + 1)
        | exception e ->
            ignore (pop_frame ());
            raise e
      in
      attempt 0

let on_commit h =
  if not (machine_running ()) then h ()
  else
    let st = state () in
    match List.rev st.Machine.frames with
    | [] -> h ()
    | top :: _ -> top.Machine.commit_handlers <- h :: top.Machine.commit_handlers

let on_abort h =
  if not (machine_running ()) then ()
  else
    let st = state () in
    match List.rev st.Machine.frames with
    | [] -> ()
    | top :: _ -> top.Machine.abort_handlers <- h :: top.Machine.abort_handlers

let self_abort () = if in_txn () then raise Explicit_exn else invalid_arg "Tcc.self_abort"

let retry_now () =
  if in_txn () then raise (Rollback 0) else invalid_arg "Tcc.retry_now"

(* ------------------------------------------------------------------ *)
(* TM_OPS instance for the transactional collection classes            *)

type txn = { cpu : int; epoch : int }

let current () =
  if not (machine_running ()) then { cpu = -1; epoch = 0 }
  else
    let c = cpu_state () in
    if c.Machine.txn.Machine.frames = [] then { cpu = c.Machine.id; epoch = 0 }
    else { cpu = c.Machine.id; epoch = c.Machine.txn.Machine.epoch }

let remote_abort (t : txn) =
  if not (machine_running ()) then false
  else
  let m = Machine.the_machine () in
  if t.epoch = 0 then false
  else
    let victim = m.Machine.cpus.(t.cpu) in
    if
      victim.Machine.txn.Machine.epoch = t.epoch
      && victim.Machine.txn.Machine.frames <> []
      && m.Machine.token_owner <> Some t.cpu
    then begin
      Machine.mark_violation m victim 0;
      true
    end
    else false

module Tm_ops : Tm_intf.TM_OPS with type txn = txn = struct
  type nonrec txn = txn

  let current = current
  let in_txn = in_txn
  let same_txn a b = a.cpu = b.cpu && a.epoch = b.epoch
  let txn_id t = (t.epoch * 64) + t.cpu

  type region = int

  let next_region = Atomic.make 1
  let new_region () = Atomic.fetch_and_add next_region 1

  (* The machine executes a critical section's closure as one atomic step,
     outside the fiber's effect handler — so a nested [critical] (striped
     collections enter the structure region, then a key stripe) must not
     perform a second effect.  The whole nested group is already atomic;
     run inner sections inline.  The sim is single-threaded, so a plain
     depth counter suffices. *)
  let critical_depth = ref 0

  let critical r f =
    if (not (machine_running ())) || !critical_depth > 0 then f ()
    else
      Ops.critical r ~cost:0 (fun () ->
          incr critical_depth;
          Fun.protect ~finally:(fun () -> decr critical_depth) f)

  (* Commit handlers on the simulated machine already run inside the
     CPU's hardware commit (which holds the commit token), so the region
     only scopes conflict detection, not handler serialisation. *)
  let on_commit _region h = on_commit h

  (* Commit stamps: the simulated machine keeps no multi-version state,
     but the collections still publish into their shard chains through
     the shared interface, so stamps must be unique and monotone.  The
     sim is single-threaded (and host-side use is quiescent), so a plain
     counter suffices. *)
  let stamp_counter = ref 0

  let next_stamp () =
    incr stamp_counter;
    !stamp_counter

  (* No separate prepare phase on the simulated machine: the hardware
     commit is already atomic under the commit token, so the two halves
     run back-to-back inside it.  The read-only certificate is likewise
     unused — there is no fast path to take under the commit token — and
     the stripe region plan is ignored: the commit token already
     serialises hardware commits, so this is the K=1 degenerate instance
     of the striped interface. *)
  let on_commit_prepared ?read_only:_ ?regions:_ region ~prepare ~apply =
    on_commit region (fun () ->
        prepare ();
        apply (next_stamp ()))

  let on_abort = on_abort
  let remote_abort = remote_abort
  let self_abort () = self_abort ()
  let retry () = retry_now ()

  (* No multi-version snapshot mode on the simulated machine: reads are
     conflict-tracked by the hardware, so the snapshot paths are never
     taken and reclamation never applies. *)
  let in_snapshot () = false
  let snapshot_stamp () = 0
  let begin_publish () = next_stamp ()
  let end_publish () = ()
  let reclaim_epoch () = max_int
  let note_reclaimed _ = ()
  let version_chain_bound = 8

  (* The simulated TCC machine has one fixed protocol — hardware
     conflict detection with lazy commit-time arbitration — but the
     shared policy names are still validated so a collection pinned to a
     policy fails fast identically on both TMs.  The axes table mirrors
     the host STM's matrix. *)
  let policy_axes = function
    | "lazy_rv_wb" -> Some (false, false, false)
    | "eager_rv_wb" -> Some (true, false, false)
    | "lazy_rl_wb" -> Some (false, true, false)
    | "eager_rl_ul" -> Some (true, true, true)
    | _ -> None

  let validate_policy ~support name =
    match policy_axes name with
    | None -> invalid_arg (Printf.sprintf "unknown TM policy %S" name)
    | Some (eager, rl, ul) ->
        let reject axis =
          invalid_arg
            (Printf.sprintf
               "TM policy %s: this collection does not support %s" name axis)
        in
        if eager && not support.Tm_intf.ps_eager_acquire then
          reject "encounter-time acquisition";
        if rl && not support.Tm_intf.ps_read_locking then
          reject "read locking";
        if ul && not support.Tm_intf.ps_undo_logging then
          reject "undo logging"

  (* The hardware protocol is closest to the default point of the
     matrix: lazy acquisition, (hardware-)validated reads, buffered
     writes committed at once. *)
  let txn_policy_name () = "lazy_rv_wb"
end
