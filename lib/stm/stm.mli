(** Host software transactional memory with the semantics the paper's
    transactional collection classes require (§4): closed-nested
    transactions with partial rollback, open-nested transactions, commit and
    abort handlers, and program-directed (remote) transaction abort.

    The implementation is a TL2-style optimistic STM: a global version
    clock, versioned write-locks on {!Tvar.t}s, redo logging and commit-time
    read-set validation, with read-version extension so that long-running
    transactions survive unrelated concurrent commits.

    Hot-path representation: the read set is a deduplicating growable array
    (re-reading a tvar is an O(1) no-op), read-version extension validates
    incrementally from a per-level high-water mark using a global ring of
    recently committed write sets (falling back to a full rescan whenever
    the ring cannot prove the validated prefix untouched), and semantic
    commit phases are serialised per collection region rather than under
    one global token.

    The hot loop touches no shared mutable state per transaction:
    statistics are sharded per domain and aggregated lazily by
    {!global_stats}, transaction ids and priority tickets are leased to
    domains in blocks of 1024, top-level descriptors (with their grow-only
    read/write-set scratch) are pooled in domain-local storage so the retry
    loop is allocation-free, read-only commits skip the global clock and
    all locking entirely, and writer commits advance the clock with at most
    one extra atomic step under contention (GV5-style adoption).

    Robustness layer: pluggable contention management ({!Contention}),
    transaction budgets with a typed {!Starved} outcome and a serialised
    fallback ({!serialised}), exception-safe handler execution aggregating
    failures into {!Handler_failure}, and seeded fault-injection hooks
    ({!Chaos}) — see DESIGN.md "Robustness". *)

exception Aborted
(** Raised out of {!atomic} when the transaction aborted itself via
    {!self_abort} (program-directed self-abort). *)

exception Starved of { attempts : int; elapsed : float }
(** Raised out of {!atomic} when a transaction budget is exhausted before
    the transaction could commit: [attempts] executions were aborted and
    [elapsed] seconds passed (0. when no deadline was set).  Never raised
    unless a {!budget} was supplied. *)

exception Overloaded
(** Raised out of {!Admission.run} when the admission gate is closed (no
    token available, or the admitted transaction starved) and the overload
    policy is [Shed]: the request is rejected without running.  Counted in
    {!global_stats} as a [shed].  Never raised by plain {!atomic}. *)

module Monoclock : sig
  val now : unit -> float
  (** Wall-clock seconds clamped to be non-decreasing process-wide.  The
      runtime's elapsed-time computations (admission token-bucket refill,
      budget [max_seconds] timing, the open-loop harness's pacing and
      latency measurements) use this instead of [Unix.gettimeofday]
      directly: a backward NTP step freezes the clock until real time
      catches up, so intervals are never negative.  Exposed for the
      harness and for tests. *)
end

exception Handler_failure of { committed : bool; failures : exn list }
(** One or more commit/abort handlers raised.  Every handler still ran —
    a raising handler cannot skip the rest, so semantic locks and buffers
    of other collections are still applied/released — and the exceptions
    are aggregated here in registration order.  [committed] tells whether
    the transaction's effects are in place ([true]: commit handlers raised
    after the commit point) or rolled back ([false]: abort handlers raised
    during compensation). *)

exception Place_down of { place : int }
(** Failure-domain error of the sharded store ({!Places}): the transaction
    touched place [place] after it was killed — or a recovery replaced the
    place's master generation under the transaction's feet.  It is raised
    from the replication handler's {e prepare} phase, i.e. strictly before
    the commit point, so the transaction aborts cleanly: compensations run,
    no buffer is applied, no replication batch is shipped.

    Retry/redirect semantics: unlike a memory conflict, this is {e not}
    transparently retried by {!atomic} — a dead place stays dead until
    someone recovers it, so blind retry would spin.  The exception
    propagates to the caller, which should treat it like a routing error:
    wait for / trigger [Places.recover], then re-issue the transaction
    (whose effects are guaranteed absent).  Read-only transactions that
    touched the dead place get the same treatment — their reads may predate
    the failover and must not serialise after it. *)

exception Not_quiescent of { in_flight : int }
(** Raised by {!reset_stats} instead of corrupting the aggregated counters:
    [in_flight] top-level transactions were still running somewhere in the
    process when the reset was attempted. *)

type handle
(** Identity of a top-level transaction; the owner recorded in semantic lock
    tables. *)

(** {1 Contention management} *)

module Contention : sig
  type policy = Types.cm_policy =
    | Backoff of { base : int; max_exp : int; jitter : bool }
        (** Jittered (or plain) exponential backoff: wait
            [~ base * 2^min(retries, max_exp)] cpu-relax spins between
            attempts.  The default, matching the seed behaviour plus
            jitter. *)
    | Karma
        (** Priority accumulation: a committer defers (retries itself)
            rather than remote-aborting a transaction that has accumulated
            more retries than it — work done is karma.  Linear, bounded
            backoff between attempts. *)
    | Greedy
        (** Timestamp priority: every top-level [atomic] call draws one
            monotonic start ticket kept across its retries; a committer
            defers to any older transaction instead of remote-aborting it.
            The oldest transaction in the system is never deferred-to nor
            semantically aborted, so it eventually commits: starvation
            freedom for semantic conflicts. *)

  val default : policy
  (** [Backoff { base = 1; max_exp = 12; jitter = true }]. *)

  val set_global : policy -> unit
  (** Set the policy used by {!atomic} calls that do not pass [?policy].
      Affects transactions started after the call. *)

  val global : unit -> policy

  val name : policy -> string
  (** ["backoff"], ["karma"] or ["greedy"] — the keys of
      {!retry_histogram}. *)
end

(** {1 TM policy matrix}

    The per-tvar read/write/commit protocol is one point in a three-axis
    design space: {e acquire} (commit-time lazy vs encounter-time eager
    write locking), {e read strategy} (record-and-revalidate invisible
    reads vs visible blocking read locks), and {e versioning} (redo log
    applied at commit vs in-place writes with an undo log).  Four
    policies ship; [lazy_rv_wb] is the seed protocol, bit for bit, and
    the default.  A policy can be selected process-wide
    ({!Policy.set_global}), per {!atomic} call ([?tm_policy]), or pinned
    per collection at wrap time; the adaptive controller
    ({!Policy.enable_adaptive}) switches the global policy from live
    stats over epoch windows with hysteresis.

    Non-default policies run closed-nested transactions flattened into
    the top level (subsumption): visible read locks and in-place undo
    state are owned per top-level attempt, so partial rollback of a
    child is a [lazy_rv_wb]-only optimisation. *)

module Policy : sig
  type t = Types.tm_policy

  val lazy_rv_wb : t
  (** Lazy acquire, read validation, write buffer: the seed TL2-style
      protocol and the default.  Best for read-dominated traffic — its
      read-only fast path commits with no locks and no clock bump. *)

  val eager_rv_wb : t
  (** Encounter-time write locking, invisible validated reads, buffered
      writes: write-write conflicts surface at first touch instead of
      after a wasted body. *)

  val lazy_rl_wb : t
  (** Commit-time acquire with visible read locks: reads block writers
      and are abort-free once acquired (no commit-time validation). *)

  val eager_rl_ul : t
  (** Encounter-time locking, visible read locks, undo logging: writes
      go in place under the held lock (re-writes are allocation-free),
      commit publishes without re-locking, abort rolls back from the
      undo log.  The pessimistic end of the matrix, for write-heavy
      contended regimes. *)

  val all : t list
  val name : t -> string
  val of_name : string -> t option

  val set_global : t -> unit
  (** Set the policy used by {!atomic} calls that do not pass
      [?tm_policy].  Affects transactions started after the call; also
      disables the adaptive controller. *)

  val global : unit -> t

  val enable_adaptive : ?epoch:int -> unit -> unit
  (** Start the adaptive controller: every [epoch] completed transactions
      (default 512, counted across domains) it derives the read-only
      ratio and abort rate of the window just ended and, when two
      consecutive windows agree on a policy different from the current
      global one (hysteresis), switches the global policy and increments
      [policy_switches].  Transactions pinning [?tm_policy] are
      unaffected. *)

  val disable_adaptive : unit -> unit

  val adaptive : unit -> bool
  (** [true] while the adaptive controller is enabled. *)

  val switches : unit -> int
  (** Total adaptive policy switches since the last {!reset_stats} — the
      flapping observability counter (also in {!global_stats}). *)

  val min_window_commits : int
  (** Minimum commits an epoch window must have accumulated before the
      adaptive controller evaluates it.  Under-sampled windows (idle gaps
      between open-loop arrival bursts) are skipped without advancing the
      window baselines, so their commits roll into the next evaluation
      instead of feeding a near-zero-sample signal that flaps
      [policy_switches]. *)
end

type budget = { max_retries : int option; max_seconds : float option }
(** Progress budget for one {!atomic} call.  [max_retries = Some m] allows
    [m] retries ([m + 1] executions in total); [max_seconds] is a
    wall-clock deadline checked after each aborted attempt.  Exhaustion
    raises {!Starved} (or runs the [?on_starved] fallback). *)

val atomic :
  ?policy:Contention.policy ->
  ?tm_policy:Policy.t ->
  ?budget:budget ->
  ?on_starved:(unit -> 'a) ->
  (unit -> 'a) ->
  'a
(** [atomic f] runs [f] transactionally.  At top level it retries [f] on
    memory conflicts and remote aborts — waiting between attempts per the
    contention [?policy] (default: the global policy) — until it commits
    or the [?budget] is exhausted, which raises {!Starved} or, when
    [?on_starved] is given, returns [on_starved ()] instead (typically
    {!serialised}[ f]).  [?tm_policy] pins the TM policy for this call
    (default: the global policy, possibly adaptive).  Nested inside
    another transaction it is a closed-nested transaction and the options
    are ignored — under non-default policies the nested body runs
    flattened into the parent (subsumption).  Exceptions raised by [f]
    abort the transaction and propagate. *)

val closed_nested : (unit -> 'a) -> 'a
(** Alias of {!atomic}: nested transactions are closed by default.  A
    conflict confined to the child rolls back and retries only the child. *)

val open_nested : (unit -> 'a) -> 'a
(** [open_nested f] runs [f] as an open-nested transaction: it commits
    immediately and independently of the enclosing transaction, exposing its
    writes and discarding its read dependencies from the parent's point of
    view.  Commit/abort handlers registered inside migrate to the parent
    when the open transaction commits. *)

(** {1 Snapshot reads} — the abort-free multi-version read-only mode.

    Writer commits publish every new committed version (tvars and the
    collections' semantic shards) into bounded version chains stamped
    with the commit clock.  [snapshot f] pins a snapshot timestamp once
    and resolves every read inside [f] against the newest chain entry
    [<=] that stamp: no read-set, no validation, no write or region
    locks, no clock interaction on exit — and no possibility of abort,
    including multi-collection and cross-interval sorted-map reads,
    which observe one prefix-consistent committed state. *)

val snapshot : (unit -> 'a) -> 'a
(** [snapshot f] runs [f] as an abort-free snapshot read.  Raises
    [Invalid_argument] when called inside {!atomic} (a transaction's
    store buffer cannot be reconciled with a frozen timestamp); nested
    [snapshot] calls share the outer pin.  {!Tvar.set} and mutating
    collection operations inside raise [Invalid_argument].  Counted in
    {!global_stats} as a commit, a read-only commit and a
    [snapshot_reads]. *)

val in_snapshot : unit -> bool
(** [true] iff the calling thread is inside a {!snapshot} section. *)

val snapshot_stamp : unit -> int
(** The pinned snapshot timestamp (meaningful only {!in_snapshot}). *)

val version_chain_bound : int
(** K: committed versions retained per chain once no older snapshot
    reader is pinned.  Chains grow beyond K only while an old reader
    holds its epoch pinned, and are trimmed back lazily at the next
    publication. *)

val serialised : (unit -> 'a) -> 'a
(** Starvation fallback: run [f] as a top-level transaction while holding
    the process-wide fallback commit region for the whole attempt, so
    serialised fallbacks never contend with each other (they still conflict
    with — and win against or retry on — ordinary optimistic
    transactions).  Intended as [~on_starved:(fun () -> serialised f)].
    Inside a transaction it just runs [f] in the enclosing transaction. *)

(** {1 Admission control} — the open-loop overload valve.

    Closed-loop benches self-limit: a slow system slows its own load.  An
    open-loop generator does not — past the saturation knee the arrival
    rate exceeds the service rate, queues grow without bound and p99
    collapses.  The admission gate bounds the rate at which transactions
    are {e started}: a token bucket refilled at a configured rate admits
    requests up to its burst capacity, and requests arriving with the
    bucket empty hit the overload policy instead of queueing:

    - [Shed]: reject with the typed {!Overloaded} exception (counted as
      [shed] in {!global_stats}); the caller drops or retries later.
    - [Serialise]: route through {!serialised} — the request still runs,
      but on the process-wide fallback region, trading latency for
      completion (counted as [serialised_overflow]).

    An admitted transaction that exhausts its budget ({!Starved}) is also
    handed to the overload policy — starvation under load {e is}
    overload.  Ledger property: every {!Admission.run} call increments
    exactly one of [admitted], [shed] or [serialised_overflow]. *)
module Admission : sig
  type overload_policy =
    | Shed  (** reject: raise {!Overloaded} without running the body *)
    | Serialise  (** degrade: run the body via {!serialised} *)

  val policy_name : overload_policy -> string
  (** ["shed"] or ["serialise"]. *)

  val configure :
    ?burst:int -> ?budget:budget -> rate:float -> policy:overload_policy ->
    unit -> unit
  (** Install the process-wide admission gate: a token bucket refilled at
      [rate] tokens/second holding at most [burst] tokens (default 64).
      [?budget] is applied to admitted transactions that do not pass
      their own (so starvation feeds the overload policy).  Raises
      [Invalid_argument] unless [rate > 0]. *)

  val disable : unit -> unit
  (** Remove the gate: {!run} becomes plain {!atomic}. *)

  val enabled : unit -> bool
  val current_policy : unit -> overload_policy option

  val run :
    ?policy:Contention.policy -> ?tm_policy:Policy.t -> ?budget:budget ->
    (unit -> 'a) -> 'a
  (** [run f] is {!atomic}[ f] through the admission gate.  With no gate
      configured, or nested inside a transaction, it is exactly
      {!atomic}.  Otherwise it takes a token (admitting) or invokes the
      overload policy; an admitted run that raises {!Starved} is handed
      to the overload policy as well.  Any other exception escaping an
      admitted run still counts the admission before propagating, so the
      one-column-per-call ledger property holds on every path. *)

  val admitted : unit -> int
  val shed : unit -> int
  val serialised_overflow : unit -> int
  (** Live aggregated ledger counters (also in {!global_stats}). *)
end

val on_commit : (unit -> unit) -> unit
(** Register a commit handler on the current nesting level.  Handlers run
    during the top-level commit, after validation; they must not access
    {!Tvar.t}s.  Handlers registered through this region-less entry point
    serialise on a process-wide fallback region; collection classes
    register through {!Tm_ops.on_commit} with their own region instead, so
    their commits only serialise per collection.  Outside a transaction the
    handler runs immediately (auto-commit).  If handlers raise, all of them
    still run and {!Handler_failure}[ { committed = true; _ }] is raised
    after the commit completes. *)

val on_abort : (unit -> unit) -> unit
(** Register a compensating abort handler, run (newest first) if the
    top-level transaction aborts.  Discarded if the registering nested
    transaction aborts, per the paper's handler semantics.  If handlers
    raise, all of them still run and {!Handler_failure}
    [{ committed = false; _ }] is raised in place of the retry. *)

val on_top_commit : (unit -> unit) -> unit
(** Like {!on_commit}, but always registers on the top-level transaction
    regardless of nesting depth — the registration mode the collection
    classes use, since lock ownership belongs to the top-level outcome. *)

val on_top_abort : (unit -> unit) -> unit

val self_abort : unit -> 'a
(** Abort the current transaction; {!atomic} raises {!Aborted}. *)

val retry_now : unit -> 'a
(** Abort the current top-level transaction and retry it transparently
    (after contention backoff). *)

val current : unit -> handle
(** The calling thread's top-level transaction.  Outside any transaction,
    a per-domain cached already-committed handle (auto-commit context):
    remote aborts on it report "already committed" and it never owns
    semantic locks, so sharing it across auto-commit operations is safe
    and allocation-free. *)

val in_txn : unit -> bool
val same_txn : handle -> handle -> bool
val txn_id : handle -> int

type remote_abort_outcome =
  | Delivered  (** the abort won the status race; the target will observe it *)
  | Already_aborted  (** the target was already aborting *)
  | Too_late
      (** the target passed its commit point first and serialises before
          the caller *)

val remote_abort_outcome : handle -> remote_abort_outcome
(** Program-directed abort of another transaction, used when semantic
    conflict detection finds a conflicting lock holder.  The
    [Active]/[Committing] status race is resolved deterministically by a
    CAS loop and every outcome is counted in {!global_stats}.

    Contention-manager arbitration: when the caller is itself inside its
    commit's prepare phase, its policy may instead {e defer} — Greedy to an
    older target, Karma to a target with more accumulated retries — by
    raising an internal exception that retries the caller with nothing
    applied.  Callers that hold resources across this call must release
    them in an abort/[Fun.protect] path. *)

val remote_abort : handle -> bool
(** [remote_abort t] is [true] unless the outcome was [Too_late]. *)

val retries : unit -> int
(** Number of times the current top-level transaction has been retried. *)

val read_set_cardinal : unit -> int
(** Number of distinct read entries recorded across the current nesting
    stack (0 outside a transaction).  Deduplication makes this the number
    of distinct tvars read, not the number of {!Tvar.get} calls. *)

(** {1 Fault injection} *)

(** Seeded fault-injection hook points; see {!Tcc_harness.Chaos} for the
    deterministic injector built on them.  The hook is process-global and
    called from STM internals: [Chaos_attempt] at the start of every
    top-level attempt, [Chaos_before_commit] after the transaction body
    and before the commit, [Chaos_in_commit] inside the commit after
    read-set validation (before the commit point — an exception there
    aborts cleanly).  Hooks may raise (e.g. {!retry_now}), spin, register
    handlers or deliver {!remote_abort}s; they must not block. *)
module Chaos : sig
  type event = Types.chaos_event =
    | Chaos_attempt
    | Chaos_before_commit
    | Chaos_in_commit

  val set_hook : (event -> unit) option -> unit
end

(** {1 Global statistics} — process-wide monotonic counters, kept in
    per-domain cache-padded shards so the hot loop never writes a shared
    cache line; {!global_stats} aggregates them lazily.  Totals are exact
    once the domains that produced them have been joined; a concurrent
    read sees a live (slightly stale but never corrupt) snapshot. *)

type stats = {
  commits : int;  (** top-level transactions committed *)
  read_only_commits : int;
      (** commits that took the read-only fast path: no clock bump, no
          write locks, no commit-region pre-acquisition *)
  conflict_aborts : int;  (** retries from memory-level validation/locking *)
  remote_aborts : int;  (** retries from program-directed (semantic) abort *)
  explicit_aborts : int;  (** {!self_abort} occurrences *)
  starved : int;  (** budget exhaustions ({!Starved} raised or fallback run) *)
  deferrals : int;
      (** committer-side contention-manager deferrals (Greedy/Karma) *)
  remote_aborts_delivered : int;  (** {!remote_abort_outcome} = [Delivered] *)
  remote_aborts_late : int;  (** {!remote_abort_outcome} = [Too_late] *)
  handler_failures : int;  (** commit/abort handlers that raised *)
  clock_bumps : int;
      (** global version-clock advances (every mutating commit, including
          semantic-only handler commits: version-chain entries need a
          unique stamp) *)
  clock_cas_retries : int;
      (** clock CAS losses settled by adopting the winner's value with a
          single wait-free fetch-and-add — never more than one extra
          atomic step per conflicting bump *)
  snapshot_reads : int;
      (** completed {!snapshot} sections (each also counts as a commit
          and a read-only commit) *)
  versions_reclaimed : int;
      (** version-chain entries reclaimed by epoch-based lazy trimming —
          with {!snapshot_reads}, the observability handle on the
          multi-version memory story *)
  policy_switches : int;
      (** global-policy switches performed by the adaptive controller
          ({!Policy.enable_adaptive}); flapping shows up here *)
  admitted : int;
      (** {!Admission.run} calls that took a token and committed (or
          raised from the body) without starving *)
  shed : int;
      (** {!Admission.run} calls rejected with {!Overloaded} under the
          [Shed] overload policy *)
  serialised_overflow : int;
      (** {!Admission.run} calls routed through {!serialised} under the
          [Serialise] overload policy *)
}

val global_stats : unit -> stats

val reset_stats : unit -> unit
(** Zero all shards.  {b Precondition: quiescence} — no top-level
    transaction may be in flight on any domain (the normal situation
    between benchmark phases, after spawned domains have been joined).
    Resetting mid-transaction would tear the aggregate (a commit counted
    after the reset against aborts counted before it), so instead of
    silently corrupting the counters the call raises {!Not_quiescent}
    when any domain shard reports an in-flight transaction.  The probe is
    exact for transactions on joined domains and conservative otherwise;
    callers honouring the precondition never see the exception.  The
    in-flight count itself survives the reset — it is a liveness probe,
    not a statistic. *)

val in_flight_transactions : unit -> int
(** Number of top-level transactions currently between their first attempt
    and their final outcome, summed across all domain shards.  0 at
    quiescence; the probe behind {!reset_stats}'s guard. *)

val commit_region_waits : unit -> int
(** Number of semantic-commit region acquisitions that had to block on a
    contended region since the last {!reset_stats} — the contention probe
    for commit sharding: disjoint-collection workloads should keep it at
    zero while shared-collection workloads accumulate waits. *)

val regions_held : unit -> int
(** Number of commit regions currently held across all domains.  Must be 0
    whenever no commit/critical section is executing — the leak probe the
    chaos soak asserts after every run. *)

val retry_histogram : unit -> (string * int array) list
(** Per-policy histogram of retries-to-completion: entry [(name, h)] gives,
    for policy [name] ({!Contention.name}), [h.(b)] completions (commit or
    starvation) whose retry count fell in bucket [b] (bucket 0 = 0 retries,
    then power-of-two buckets).  Reset by {!reset_stats}. *)

(** {!Tm_intf.TM_OPS} instance: plugs this STM into the transactional
    collection classes. *)
module Tm_ops : Tm_intf.TM_OPS with type txn = handle
