(** Host software transactional memory with the semantics the paper's
    transactional collection classes require (§4): closed-nested
    transactions with partial rollback, open-nested transactions, commit and
    abort handlers, and program-directed (remote) transaction abort.

    The implementation is a TL2-style optimistic STM: a global version
    clock, versioned write-locks on {!Tvar.t}s, redo logging and commit-time
    read-set validation, with read-version extension so that long-running
    transactions survive unrelated concurrent commits.

    Hot-path representation: the read set is a deduplicating growable array
    (re-reading a tvar is an O(1) no-op), read-version extension validates
    incrementally from a per-level high-water mark using a global ring of
    recently committed write sets (falling back to a full rescan whenever
    the ring cannot prove the validated prefix untouched), and semantic
    commit phases are serialised per collection region rather than under
    one global token. *)

exception Aborted
(** Raised out of {!atomic} when the transaction aborted itself via
    {!self_abort} (program-directed self-abort). *)

type handle
(** Identity of a top-level transaction; the owner recorded in semantic lock
    tables. *)

val atomic : (unit -> 'a) -> 'a
(** [atomic f] runs [f] transactionally.  At top level it retries [f] on
    memory conflicts and remote aborts (with exponential backoff) until it
    commits; nested inside another transaction it is a closed-nested
    transaction.  Exceptions raised by [f] abort the transaction and
    propagate. *)

val closed_nested : (unit -> 'a) -> 'a
(** Alias of {!atomic}: nested transactions are closed by default.  A
    conflict confined to the child rolls back and retries only the child. *)

val open_nested : (unit -> 'a) -> 'a
(** [open_nested f] runs [f] as an open-nested transaction: it commits
    immediately and independently of the enclosing transaction, exposing its
    writes and discarding its read dependencies from the parent's point of
    view.  Commit/abort handlers registered inside migrate to the parent
    when the open transaction commits. *)

val on_commit : (unit -> unit) -> unit
(** Register a commit handler on the current nesting level.  Handlers run
    during the top-level commit, after validation; they must not access
    {!Tvar.t}s.  Handlers registered through this region-less entry point
    serialise on a process-wide fallback region; collection classes
    register through {!Tm_ops.on_commit} with their own region instead, so
    their commits only serialise per collection.  Outside a transaction the
    handler runs immediately (auto-commit). *)

val on_abort : (unit -> unit) -> unit
(** Register a compensating abort handler, run (newest first) if the
    top-level transaction aborts.  Discarded if the registering nested
    transaction aborts, per the paper's handler semantics. *)

val on_top_commit : (unit -> unit) -> unit
(** Like {!on_commit}, but always registers on the top-level transaction
    regardless of nesting depth — the registration mode the collection
    classes use, since lock ownership belongs to the top-level outcome. *)

val on_top_abort : (unit -> unit) -> unit

val self_abort : unit -> 'a
(** Abort the current transaction; {!atomic} raises {!Aborted}. *)

val retry_now : unit -> 'a
(** Abort the current top-level transaction and retry it transparently
    (after contention backoff). *)

val current : unit -> handle
(** The calling thread's top-level transaction.  Outside any transaction,
    a per-domain cached already-committed handle (auto-commit context):
    remote aborts on it report "already committed" and it never owns
    semantic locks, so sharing it across auto-commit operations is safe
    and allocation-free. *)

val in_txn : unit -> bool
val same_txn : handle -> handle -> bool
val txn_id : handle -> int

val remote_abort : handle -> bool
(** Program-directed abort of another transaction, used when semantic
    conflict detection finds a reader holding a conflicting lock.  Returns
    [false] if the target already passed its commit point, in which case it
    serialises before the caller. *)

val retries : unit -> int
(** Number of times the current top-level transaction has been retried. *)

val read_set_cardinal : unit -> int
(** Number of distinct read entries recorded across the current nesting
    stack (0 outside a transaction).  Deduplication makes this the number
    of distinct tvars read, not the number of {!Tvar.get} calls. *)

(** {1 Global statistics} — process-wide monotonic counters. *)

type stats = {
  commits : int;  (** top-level transactions committed *)
  conflict_aborts : int;  (** retries from memory-level validation/locking *)
  remote_aborts : int;  (** retries from program-directed (semantic) abort *)
  explicit_aborts : int;  (** {!self_abort} occurrences *)
}

val global_stats : unit -> stats
val reset_stats : unit -> unit

val commit_region_waits : unit -> int
(** Number of semantic-commit region acquisitions that had to block on a
    contended region since the last {!reset_stats} — the contention probe
    for commit sharding: disjoint-collection workloads should keep it at
    zero while shared-collection workloads accumulate waits. *)

(** {!Tm_intf.TM_OPS} instance: plugs this STM into the transactional
    collection classes. *)
module Tm_ops : Tm_intf.TM_OPS with type txn = handle
