(* Internal representation shared by Tvar and Stm.

   The design is a TL2-style software TM with a global version clock:
   - every tvar carries a versioned lock word [vlock] (even = version of the
     committed value, odd = write-locked by a committer);
   - transactions buffer writes (redo log) and validate their read set
     against the clock at commit;
   - a top-level transaction can be aborted remotely (program-directed
     abort) by CASing its status word, which is the mechanism semantic
     conflict detection uses to abort readers holding conflicting locks.

   Hot-path representation choices:
   - the read set is a deduplicating growable array plus a tv_id -> slot
     table, so re-reading a tvar is an O(1) no-op and nested-transaction
     merges are index-aware bulk appends;
   - read-version extension is incremental: a global ring of recently
     committed write sets lets a transaction prove that its
     already-validated prefix is untouched by the commits that advanced the
     clock, so only entries recorded since the last validation are
     re-checked per-tvar (with a conservative full rescan whenever the ring
     window is insufficient);
   - the write set keeps its tv_ids in a sorted grow-only array maintained
     at insertion, so commit-time lock acquisition needs no fold+sort and
     allocates nothing;
   - every per-transaction touch of shared mutable state is gone from the
     hot loop: statistics are sharded per domain (aggregated lazily),
     transaction ids and priority tickets are leased to domains in blocks,
     and top-level descriptors are pooled in domain-local storage and
     reused across attempts and transactions (grow-only scratch).

   Semantic commit phases (commits that run commit handlers) are serialised
   per [region]: each collection owns a region, handlers are registered
   against it, and a committing transaction acquires the (rid-sorted, hence
   deadlock-free) set of regions its handlers touch.  Commits into disjoint
   collections therefore proceed in parallel; handlers registered with no
   region fall back to a process-wide region, preserving the old global
   serialisation for them. *)

type status = Active | Committing | Committed | Aborted

exception Conflict_exn
(* The whole top-level transaction lost a memory-level race; retry it. *)

exception Child_conflict_exn
(* Only the innermost closed-nested child is invalid; partial rollback. *)

exception Remote_aborted_exn
(* The transaction was aborted by another transaction (semantic conflict). *)

exception Explicit_abort_exn
(* The program requested its own abort. *)

exception Deferred_exn
(* The committing transaction's contention manager chose to yield to an
   older (or higher-karma) lock holder instead of aborting it; retry. *)

(* ------------------------------------------------------------------ *)
(* Contention management.  The policy decides two things: how long an
   aborted transaction waits before retrying, and — during the semantic
   prepare phase — whether a committer aborts a conflicting lock holder or
   defers to it (see [Stm.remote_abort]).  [Backoff] is the seed behaviour
   (always abort the other, jittered exponential wait); [Karma] defers to
   transactions that have accumulated more retries; [Greedy] defers to
   transactions with an older start ticket, which totally orders
   transactions and therefore guarantees the oldest transaction in the
   system is never deferred-out or aborted semantically: starvation
   freedom for semantic conflicts. *)

type cm_policy =
  | Backoff of { base : int; max_exp : int; jitter : bool }
  | Karma
  | Greedy

let default_cm = Backoff { base = 1; max_exp = 12; jitter = true }
let global_cm : cm_policy Atomic.t = Atomic.make default_cm

(* Per-domain splitmix64 state for backoff jitter: avoids a shared Random
   state (contention) and keeps single-domain runs deterministic. *)
let jitter_key : int64 ref Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      ref (Int64.of_int ((7919 * ((Domain.self () :> int) + 1)) lxor 0x5bf03635)))

let rand_bits () =
  let r = Domain.DLS.get jitter_key in
  let open Int64 in
  r := add !r 0x9E3779B97F4A7C15L;
  let z = !r in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  to_int (shift_right_logical (logxor z (shift_right_logical z 31)) 1)

let rand_int bound = if bound <= 0 then 0 else rand_bits () mod bound

(* ------------------------------------------------------------------ *)
(* TM policy matrix.  The per-tvar read/write/commit protocol is one
   point in a three-axis design space (the x10 TxManager matrix, "On the
   Cost of Concurrency in TM"):

   - {e acquire}: when a writer takes a tvar's versioned write lock —
     at commit time after the body ran ([Acq_lazy], the seed behaviour)
     or at the first write ([Acq_eager], detecting write conflicts at
     encounter time, before more work is wasted);
   - {e read strategy}: how reads stay consistent — record the version
     and revalidate at commit ([Read_validate], invisible readers) or
     take a visible per-tvar read lock that blocks writers until the
     reader finishes ([Read_lock], abort-free reads, writer-side cost);
   - {e versioning}: where uncommitted writes live — a redo log applied
     at commit ([Ver_redo], cheap aborts) or in place with an undo log
     restored on abort ([Ver_undo], cheap commits and re-writes;
     requires [Acq_eager]).

   Four concrete policies ship; [pol_lazy_rv_wb] is bit-for-bit the
   pre-matrix protocol and remains the default.  The protocol behind a
   policy is a [strategy] record of explicitly-polymorphic closures
   (zero-allocation dispatch: one field load and an indirect call),
   installed on the top-level descriptor when the transaction starts.

   Non-default policies run closed-nested transactions flattened
   (subsumption into the top level): visible read locks and in-place
   undo state are owned per top-level attempt, so partial rollback is a
   [Acq_lazy]+[Read_validate]+[Ver_redo]-only optimisation. *)

type acquire_mode = Acq_lazy | Acq_eager
type read_mode = Read_validate | Read_lock
type version_mode = Ver_redo | Ver_undo

type tm_policy = {
  p_name : string;
  p_acquire : acquire_mode;
  p_read : read_mode;
  p_version : version_mode;
}

let pol_lazy_rv_wb =
  { p_name = "lazy_rv_wb"; p_acquire = Acq_lazy; p_read = Read_validate;
    p_version = Ver_redo }

let pol_eager_rv_wb =
  { p_name = "eager_rv_wb"; p_acquire = Acq_eager; p_read = Read_validate;
    p_version = Ver_redo }

let pol_lazy_rl_wb =
  { p_name = "lazy_rl_wb"; p_acquire = Acq_lazy; p_read = Read_lock;
    p_version = Ver_redo }

let pol_eager_rl_ul =
  { p_name = "eager_rl_ul"; p_acquire = Acq_eager; p_read = Read_lock;
    p_version = Ver_undo }

let all_tm_policies =
  [ pol_lazy_rv_wb; pol_eager_rv_wb; pol_lazy_rl_wb; pol_eager_rl_ul ]

let tm_policy_of_name name =
  List.find_opt (fun p -> String.equal p.p_name name) all_tm_policies

(* Policy used by transactions that do not pin one explicitly; the
   adaptive controller rewrites it on sustained regime changes. *)
let global_tm_policy : tm_policy Atomic.t = Atomic.make pol_lazy_rv_wb

(* ------------------------------------------------------------------ *)
(* Sharded statistics.  Every counter the hot loop touches lives in a
   per-domain record written only by its owning domain — no shared cache
   line is dirtied per transaction.  Records are registered in a global
   list on first use and aggregated lazily by [Stm.global_stats].

   Reading another domain's plain mutable int is a benign race: values are
   word-sized (no tearing) and exact once the writing domain has been
   joined, which is when the tests and benches read them.  [reset] likewise
   assumes quiescence (no concurrent transactions), matching how
   [Stm.reset_stats] has always been used between bench phases.

   The records end in explicit pad words so that two domains' records can
   never share more than a boundary cache line even if the major heap
   places them back to back. *)

let hist_buckets = 16

let policy_index = function Backoff _ -> 0 | Karma -> 1 | Greedy -> 2
let policy_name = function
  | Backoff _ -> "backoff"
  | Karma -> "karma"
  | Greedy -> "greedy"

type domain_stats = {
  mutable s_commits : int;
  mutable s_ro_commits : int; (* commits taking the read-only fast path *)
  mutable s_conflict_aborts : int;
  mutable s_remote_aborts : int;
  mutable s_explicit_aborts : int;
  mutable s_starved : int;
  mutable s_deferrals : int;
  mutable s_ra_delivered : int;
  mutable s_ra_late : int;
  mutable s_handler_failures : int;
  mutable s_region_waits : int;
  mutable s_regions_held : int;
  mutable s_clock_bumps : int;
  mutable s_clock_cas_retries : int;
  mutable s_snapshot_reads : int; (* completed snapshot-read transactions *)
  mutable s_versions_reclaimed : int; (* chain entries reclaimed by epoch *)
  mutable s_policy_switches : int; (* adaptive controller policy changes *)
  mutable s_tvar_writes : int;
      (* distinct tvars written by committed writing transactions (the
         write-set length at commit) — the adaptive controller's
         write-intensity signal for uncontended regimes *)
  mutable s_admitted : int;
      (* admission-gate grants that ran to completion on the normal path *)
  mutable s_shed : int;
      (* requests rejected by the admission gate's Shed overload policy
         (typed [Stm.Overloaded]), at the gate or after budget starvation *)
  mutable s_serialised_overflow : int;
      (* requests routed through [Stm.serialised] by the Serialise
         overload policy (gate overflow or budget starvation) *)
  mutable s_inflight : int;
      (* top-level transactions of this domain currently between their
         first attempt and their final outcome.  Not a statistic: a
         quiescence probe ([Stm.reset_stats] refuses to run while any
         shard's count is non-zero), so [stats_reset] must never zero it. *)
  s_hist : int array array; (* policy x retry bucket *)
  (* cache-line padding *)
  mutable s_pad0 : int;
  mutable s_pad1 : int;
  mutable s_pad2 : int;
  mutable s_pad3 : int;
  mutable s_pad4 : int;
  mutable s_pad5 : int;
  mutable s_pad6 : int;
  mutable s_pad7 : int;
}

let fresh_stats () =
  {
    s_commits = 0;
    s_ro_commits = 0;
    s_conflict_aborts = 0;
    s_remote_aborts = 0;
    s_explicit_aborts = 0;
    s_starved = 0;
    s_deferrals = 0;
    s_ra_delivered = 0;
    s_ra_late = 0;
    s_handler_failures = 0;
    s_region_waits = 0;
    s_regions_held = 0;
    s_clock_bumps = 0;
    s_clock_cas_retries = 0;
    s_snapshot_reads = 0;
    s_versions_reclaimed = 0;
    s_policy_switches = 0;
    s_tvar_writes = 0;
    s_admitted = 0;
    s_shed = 0;
    s_serialised_overflow = 0;
    s_inflight = 0;
    s_hist = Array.init 3 (fun _ -> Array.make hist_buckets 0);
    s_pad0 = 0;
    s_pad1 = 0;
    s_pad2 = 0;
    s_pad3 = 0;
    s_pad4 = 0;
    s_pad5 = 0;
    s_pad6 = 0;
    s_pad7 = 0;
  }

(* Registry of every domain's record, lock-free push on first use.  Records
   of finished domains stay registered (their counts must keep contributing
   to the aggregate); the list length is bounded by the number of domains
   ever spawned, which is small. *)
let stats_registry : domain_stats list Atomic.t = Atomic.make []

let rec registry_push s =
  let cur = Atomic.get stats_registry in
  if not (Atomic.compare_and_set stats_registry cur (s :: cur)) then
    registry_push s

let stats_key : domain_stats Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s = fresh_stats () in
      registry_push s;
      s)

let my_stats () = Domain.DLS.get stats_key
let all_stats () = Atomic.get stats_registry
let stats_sum f = List.fold_left (fun acc s -> acc + f s) 0 (all_stats ())

let stats_reset () =
  List.iter
    (fun s ->
      s.s_commits <- 0;
      s.s_ro_commits <- 0;
      s.s_conflict_aborts <- 0;
      s.s_remote_aborts <- 0;
      s.s_explicit_aborts <- 0;
      s.s_starved <- 0;
      s.s_deferrals <- 0;
      s.s_ra_delivered <- 0;
      s.s_ra_late <- 0;
      s.s_handler_failures <- 0;
      s.s_region_waits <- 0;
      s.s_regions_held <- 0;
      s.s_clock_bumps <- 0;
      s.s_clock_cas_retries <- 0;
      s.s_snapshot_reads <- 0;
      s.s_versions_reclaimed <- 0;
      s.s_policy_switches <- 0;
      s.s_tvar_writes <- 0;
      s.s_admitted <- 0;
      s.s_shed <- 0;
      s.s_serialised_overflow <- 0;
      (* [s_inflight] is deliberately left alone: it is a liveness probe,
         not a counter, and zeroing it would erase the evidence that a
         caller violated the quiescence precondition. *)
      Array.iter (fun row -> Array.fill row 0 hist_buckets 0) s.s_hist)
    (all_stats ())

let inflight_sum () = stats_sum (fun s -> s.s_inflight)

(* Per-policy retry histograms: bucket 0 = committed first try, bucket k
   = retry count with k significant bits (1, 2-3, 4-7, ...).  Recorded at
   commit and at starvation, per policy of the finishing transaction. *)
let record_retries cm n =
  let rec bits n = if n <= 0 then 0 else 1 + bits (n lsr 1) in
  let b = if n = 0 then 0 else min (hist_buckets - 1) (bits n) in
  let row = (my_stats ()).s_hist.(policy_index cm) in
  row.(b) <- row.(b) + 1

(* ------------------------------------------------------------------ *)
(* Id leases.  Transaction ids and priority tickets are process-unique but
   no longer drawn one fetch_and_add at a time: each domain leases a block
   of [lease_block] ids and hands them out from domain-local state, so the
   shared counters are touched once per thousand transactions instead of
   once per transaction (and per nested child).

   Priority tickets keep their total order — disjoint blocks never collide
   — but a block is only as old as its lease, so Greedy's "older start
   ticket wins" is exact within a domain and approximate across domains by
   up to one block.  The starvation guarantee survives: the transaction
   holding the globally smallest live ticket is still never deferred-out,
   and every other domain's tickets climb past any stalled ticket after at
   most [lease_block] local transactions, which bounds the transient. *)

let lease_block = 1024

type id_lease = { mutable l_next : int; mutable l_limit : int }

let next_txn_id : int Atomic.t = Atomic.make 1
let next_prio : int Atomic.t = Atomic.make 1
let next_tv_id : int Atomic.t = Atomic.make 1

let txn_id_lease_key : id_lease Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { l_next = 0; l_limit = 0 })

let prio_lease_key : id_lease Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { l_next = 0; l_limit = 0 })

let lease_from counter l =
  if l.l_next >= l.l_limit then begin
    let base = Atomic.fetch_and_add counter lease_block in
    l.l_next <- base;
    l.l_limit <- base + lease_block
  end;
  let id = l.l_next in
  l.l_next <- id + 1;
  id

let fresh_txn_id () = lease_from next_txn_id (Domain.DLS.get txn_id_lease_key)
let fresh_prio () = lease_from next_prio (Domain.DLS.get prio_lease_key)

(* ------------------------------------------------------------------ *)

(* Bound on retained committed versions per chain (tvars and semantic
   shards).  Chains grow past the bound only while a snapshot reader
   pinned at an older epoch is still active; the next publication trims
   them back (see [Coll.Vchain]). *)
let version_chain_bound = 8

type 'a tvar_repr = {
  tv_id : int;
  value : 'a Atomic.t;
  vlock : int Atomic.t;
  readers : int Atomic.t;
      (* visible-reader count for [Read_lock] policies.  A reader
         increments it and then revalidates [vlock]; every writer — any
         policy, and the non-transactional store — waits for it to drain
         (bounded) after locking [vlock] and before mutating [value].
         Always 0 when no read-locking transaction is live, so the
         default policy pays one relaxed load per write lock. *)
  hist : 'a Coll.Vchain.t;
      (* last K committed versions, stamped with the commit clock; written
         only while [vlock] is held (commit, non-transactional store), read
         lock-free by snapshot readers *)
}

type rentry = R : 'a tvar_repr * int -> rentry
type wentry = W : 'a tvar_repr * 'a -> wentry

(* ------------------------------------------------------------------ *)
(* Deduplicated read set: growable array + tv_id -> slot index.        *)

type read_set = {
  mutable r_arr : rentry array;
  mutable r_len : int;
  r_idx : (int, int) Hashtbl.t; (* tv_id -> index into [r_arr] *)
}

let dummy_rentry =
  R
    ( {
        tv_id = 0;
        value = Atomic.make 0;
        vlock = Atomic.make 0;
        readers = Atomic.make 0;
        hist = Coll.Vchain.make 0 0;
      },
      0 )

let rs_create () = { r_arr = [||]; r_len = 0; r_idx = Hashtbl.create 16 }
let rs_mem rs tv_id = Hashtbl.mem rs.r_idx tv_id

(* Version recorded for [tv_id], if this read set holds it. *)
let rs_find rs tv_id =
  match Hashtbl.find_opt rs.r_idx tv_id with
  | None -> None
  | Some i ->
      let (R (_, ver)) = rs.r_arr.(i) in
      Some ver

(* Reuse: drop the entries but keep the array and the index's bucket
   vector (Hashtbl.clear does not shrink), so a recycled descriptor's read
   set allocates nothing. *)
let rs_clear rs =
  rs.r_len <- 0;
  Hashtbl.clear rs.r_idx

let rs_push rs (R (tv, _) as e) =
  if not (Hashtbl.mem rs.r_idx tv.tv_id) then begin
    let cap = Array.length rs.r_arr in
    if rs.r_len = cap then begin
      let arr = Array.make (max 8 (2 * cap)) dummy_rentry in
      Array.blit rs.r_arr 0 arr 0 rs.r_len;
      rs.r_arr <- arr
    end;
    rs.r_arr.(rs.r_len) <- e;
    Hashtbl.add rs.r_idx tv.tv_id rs.r_len;
    rs.r_len <- rs.r_len + 1
  end

(* Index-aware bulk append (closed-nested merge): entries already present
   in [dst] are skipped in O(1) via the index. *)
let rs_append dst src =
  for i = 0 to src.r_len - 1 do
    rs_push dst src.r_arr.(i)
  done

(* ------------------------------------------------------------------ *)
(* Commit regions: reentrant mutexes with a total order, owned by the
   collection classes and acquired as a set during semantic commits.    *)

type region = {
  rid : int; (* acquisition order, preventing deadlock *)
  rmx : Mutex.t;
  rowner : int Atomic.t; (* Domain id of the holder; -1 = unowned *)
  mutable rdepth : int; (* reentrancy depth, owner-modified only *)
}

let next_region_id = Atomic.make 1

let make_region () =
  {
    rid = Atomic.fetch_and_add next_region_id 1;
    rmx = Mutex.create ();
    rowner = Atomic.make (-1);
    rdepth = 0;
  }

(* Reentrancy: [rowner] is only ever set to a domain's own id by that
   domain while it holds [rmx], so reading our own id proves we hold the
   lock; any other value (including a torn impossibility) sends us to the
   real Mutex.lock.  The wait/held counters are sharded: lock and unlock
   always happen on the same domain (the critical sections are scoped), so
   each domain's held-count nets to zero when it is quiescent. *)
let region_lock r =
  let me = (Domain.self () :> int) in
  if Atomic.get r.rowner = me then r.rdepth <- r.rdepth + 1
  else begin
    if not (Mutex.try_lock r.rmx) then begin
      let s = my_stats () in
      s.s_region_waits <- s.s_region_waits + 1;
      Mutex.lock r.rmx
    end;
    Atomic.set r.rowner me;
    r.rdepth <- 1;
    let s = my_stats () in
    s.s_regions_held <- s.s_regions_held + 1
  end

let region_unlock r =
  if r.rdepth > 1 then r.rdepth <- r.rdepth - 1
  else begin
    r.rdepth <- 0;
    Atomic.set r.rowner (-1);
    let s = my_stats () in
    s.s_regions_held <- s.s_regions_held - 1;
    Mutex.unlock r.rmx
  end

(* Hand-rolled instead of Fun.protect: critical sections run several
   times per transaction on every collection path, and the [~finally]
   closure allocation is measurable at that frequency. *)
let region_critical r f =
  region_lock r;
  match f () with
  | v ->
      region_unlock r;
      v
  | exception e ->
      region_unlock r;
      raise e

(* Fallback region for commit handlers registered without one. *)
let global_commit_region = make_region ()

(* ------------------------------------------------------------------ *)

(* A commit handler has up to two phases.  [ch_prepare] (semantic conflict
   detection) runs before the commit point, while the transaction is still
   Active and abortable, so it may raise — a contention-manager deferral
   or an injected conflict there simply retries the transaction, with
   nothing applied.  [ch_apply] (buffer application + semantic lock
   release) runs after the commit point; apply handlers are executed under
   a protective wrapper that never skips the remaining handlers and
   aggregates anything raised into [Stm.Handler_failure].

   [ch_read_only] is the read-only probe supplied by the collection
   classes: it returns [true] when the handler's transaction-local state
   holds no pending mutation (empty store buffer), i.e. when [ch_prepare]
   would detect nothing and [ch_apply] only releases semantic read locks.
   A commit whose handlers are all read-only (and that wrote no tvars)
   takes the read-only fast path: no commit regions are pre-acquired, no
   prepare phase runs, and the global clock is untouched. *)
type commit_handler = {
  ch_region : region option;
      (* the region the handler operates on; [None] = process-wide fallback *)
  ch_regions : (unit -> region list) option;
      (* commit-time region plan for striped collections: evaluated once at
         commit, the returned stripe regions replace [ch_region] in the
         pre-acquired set.  The commit acquires the rid-sorted deduplicated
         union across all handlers, so plans that share stripes compose
         deadlock-free.  [None] = the single [ch_region] (or fallback). *)
  ch_prepare : (unit -> unit) option;
  ch_read_only : unit -> bool;
  ch_apply : int -> unit;
      (* receives the commit stamp (write version) so collections can
         publish the new committed shard versions into their chains; 0 on
         read-only fast paths, which publish nothing *)
}

let never_read_only () = false

type txn = {
  mutable txn_id : int;
      (* fresh per attempt (leased); mutable because descriptors are pooled *)
  mutable top_status : status Atomic.t;
      (* physically shared with [top]; a fresh cell per pooled acquisition
         so that stale handles from earlier transactions CAS a dead cell *)
  mutable rv : int; (* read version; meaningful on the top level *)
  reads : read_set;
  mutable validated : int;
      (* entries [0, validated) of [reads] were valid at [top.validated_rv];
         read-version extension re-checks only [validated, r_len) per-tvar
         when the commit ring proves the prefix untouched *)
  writes : (int, wentry) Hashtbl.t;
  mutable wids : int array;
      (* tv_ids of [writes] in ascending order, maintained at insertion:
         the commit-time lock-acquisition order.  Grow-only scratch. *)
  mutable wlen : int;
  mutable acq_old : int array;
      (* commit-time scratch, parallel to [wids]: the pre-lock vlock values
         of acquired write locks, for release on conflict.  Grow-only. *)
  mutable commit_handlers : commit_handler list; (* newest first *)
  mutable abort_handlers : (unit -> unit) list; (* newest first *)
  parent : txn option;
  mutable top : txn;
  mutable retries : int;
  mutable validated_rv : int;
      (* top level only: the clock value against which every level's
         validated prefix was last known valid *)
  mutable cm : cm_policy; (* contention policy governing this top-level txn *)
  mutable prio : int;
      (* start ticket of the owning [atomic] call; constant across its
         retries, so age (and with it Greedy priority) accumulates *)
  mutable in_prepare : bool;
      (* top level only: inside the prepare phase of its own commit —
         the only point where remote_abort may decide to defer *)
  mutable self_opt : txn option;
      (* [Some self], built once: installing the context per attempt reuses
         it instead of allocating a fresh option *)
  mutable pol : tm_policy;
      (* the TM policy governing this top-level attempt; meaningful on the
         top level (children mirror their top's) *)
  mutable strategy : strategy;
      (* the per-tvar protocol behind [pol]: one of four static records,
         installed by [acquire_top] — dispatch is a field load *)
}

(* The per-policy read/write protocol.  Both fields are explicitly
   polymorphic so one static record serves tvars of every type; the four
   instances live at the bottom of this file (they need the commit
   machinery above). *)
and strategy = {
  st_read : 'a. txn -> 'a tvar_repr -> 'a;
  st_write : 'a. txn -> 'a tvar_repr -> 'a -> unit;
}

let clock : int Atomic.t = Atomic.make 0

(* Advance the global clock by one write version (2, LSB is the lock bit).
   GV5-style adoption: try one CAS against the sampled value; when another
   committer wins the race, adopt its published value as the new base and
   advance past it with a single wait-free fetch_and_add instead of
   looping the CAS.  A committer therefore performs at most one extra
   atomic step per conflicting bump ([s_clock_cas_retries] counts exactly
   those adoptions), and write versions stay unique — which the commit
   ring and the deduplicated read set rely on (a shared timestamp would
   let a same-version commit slip past a validated prefix). *)
let bump_clock () =
  let s = my_stats () in
  s.s_clock_bumps <- s.s_clock_bumps + 1;
  let v = Atomic.get clock in
  if Atomic.compare_and_set clock v (v + 2) then v + 2
  else begin
    s.s_clock_cas_retries <- s.s_clock_cas_retries + 1;
    Atomic.fetch_and_add clock 2 + 2
  end

(* ------------------------------------------------------------------ *)
(* Multi-version snapshot machinery.

   Two per-domain epoch-slot registries drive the snapshot pin protocol
   and lazy version reclamation:

   - the *reader* slot holds the snapshot timestamp this domain is
     pinned at ([max_int] when not in a snapshot);
   - the *publication* slot holds the pre-bump clock sample of a commit
     (or non-transactional store) that has passed its commit point but
     has not finished publishing its new versions ([max_int] otherwise).

   The reclamation epoch is min(clock, reader slots, publication slots):
   a version shadowed at that epoch (some newer version of the same
   chain is stamped <= it) can never again be resolved by any pinned
   reader, so it may be dropped.  Reading the clock FIRST is
   load-bearing: it caps the epoch at a value the pin revalidation below
   can order against.

   Pin protocol ([snap_pin]): publish the sampled clock into the reader
   slot, revalidate that the clock did not advance past the sample
   (otherwise a trim computed from the later clock may have raced ahead
   of the pin — retry), then wait out every publication slot below the
   pin.  After the wait, every commit whose write version is <= the pin
   has fully published all its chains (a commit sets its publication
   slot to its pre-bump clock sample *before* bumping, so a commit the
   wait did not see bumps after our revalidation and gets a write
   version above the pin).  Multi-chain reads at the pinned timestamp
   are therefore a prefix-consistent committed state: no validation, no
   locks, no aborts. *)

type epoch_slot = {
  e_val : int Atomic.t;
  mutable e_depth : int; (* owner-domain only: window reentrancy *)
  (* cache-line padding: slots are scanned cross-domain *)
  mutable e_pad0 : int;
  mutable e_pad1 : int;
  mutable e_pad2 : int;
  mutable e_pad3 : int;
  mutable e_pad4 : int;
  mutable e_pad5 : int;
  mutable e_pad6 : int;
}

let fresh_slot () =
  {
    e_val = Atomic.make max_int;
    e_depth = 0;
    e_pad0 = 0;
    e_pad1 = 0;
    e_pad2 = 0;
    e_pad3 = 0;
    e_pad4 = 0;
    e_pad5 = 0;
    e_pad6 = 0;
  }

let reader_slots : epoch_slot list Atomic.t = Atomic.make []
let publish_slots : epoch_slot list Atomic.t = Atomic.make []

let rec slots_push reg s =
  let cur = Atomic.get reg in
  if not (Atomic.compare_and_set reg cur (s :: cur)) then slots_push reg s

let reader_slot_key : epoch_slot Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s = fresh_slot () in
      slots_push reader_slots s;
      s)

let publish_slot_key : epoch_slot Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s = fresh_slot () in
      slots_push publish_slots s;
      s)

let slots_min reg =
  List.fold_left
    (fun acc s -> min acc (Atomic.get s.e_val))
    max_int (Atomic.get reg)

(* Oldest epoch any present or future snapshot reader can still resolve:
   versions shadowed at it are reclaimable.  The clock is read before the
   slot registries — see the protocol comment above. *)
let oldest_active_epoch () =
  let c = Atomic.get clock in
  min c (min (slots_min reader_slots) (slots_min publish_slots))

let note_reclaimed n =
  if n > 0 then begin
    let s = my_stats () in
    s.s_versions_reclaimed <- s.s_versions_reclaimed + n
  end

(* Publication window: brackets the span from just before the clock bump
   to the last chain publication of a committing mutation.  Reentrant
   (depth-counted): a nested window keeps the outer — smaller, hence
   conservative — sample. *)
let publish_window_enter () =
  let s = Domain.DLS.get publish_slot_key in
  if s.e_depth = 0 then Atomic.set s.e_val (Atomic.get clock);
  s.e_depth <- s.e_depth + 1

let publish_window_exit () =
  let s = Domain.DLS.get publish_slot_key in
  s.e_depth <- s.e_depth - 1;
  if s.e_depth = 0 then Atomic.set s.e_val max_int

(* Snapshot-read context of the calling domain. *)
type snap_state = { mutable snap_depth : int; mutable snap_ts : int }

let snap_key : snap_state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { snap_depth = 0; snap_ts = 0 })

let in_snapshot () = (Domain.DLS.get snap_key).snap_depth > 0
let snapshot_stamp () = (Domain.DLS.get snap_key).snap_ts

let snap_pin () =
  let slot = Domain.DLS.get reader_slot_key in
  let rec pin () =
    let c = Atomic.get clock in
    Atomic.set slot.e_val c;
    if Atomic.get clock <> c then pin () (* trim may have outrun us: retry *)
    else begin
      (* Wait out publications that may carry write versions <= [c]. *)
      while slots_min publish_slots < c do
        Domain.cpu_relax ()
      done;
      c
    end
  in
  pin ()

let snap_unpin () =
  Atomic.set (Domain.DLS.get reader_slot_key).e_val max_int

(* Publish a tvar's new committed version into its chain.  The caller
   holds the tvar's versioned lock (publications are serialised per
   chain) and supplies the reclamation epoch, computed once per commit. *)
let hist_publish tv ~min_epoch wv v =
  note_reclaimed
    (Coll.Vchain.publish tv.hist ~keep:version_chain_bound ~min_epoch wv v)

(* ------------------------------------------------------------------ *)

let ctx_key : txn option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let context () = Domain.DLS.get ctx_key

let check_not_aborted txn =
  if Atomic.get txn.top_status = Aborted then raise Remote_aborted_exn

(* Walk the nesting stack, innermost first, looking for a buffered write. *)
let rec find_write txn tv_id =
  match Hashtbl.find_opt txn.writes tv_id with
  | Some _ as w -> w
  | None -> ( match txn.parent with None -> None | Some p -> find_write p tv_id)

(* [true] iff some level of the nesting stack already recorded a read of
   [tv_id]; makes re-reads O(1) no-ops on the read-set. *)
let rec stack_has_read txn tv_id =
  rs_mem txn.reads tv_id
  ||
  match txn.parent with None -> false | Some p -> stack_has_read p tv_id

(* Grow [wids] (and the parallel [acq_old] scratch) to hold at least [n]
   entries; grow-only, reused across attempts and transactions. *)
let wids_ensure txn n =
  if Array.length txn.wids < n then begin
    let cap = max 8 (max n (2 * Array.length txn.wids)) in
    let w = Array.make cap 0 in
    Array.blit txn.wids 0 w 0 txn.wlen;
    txn.wids <- w;
    txn.acq_old <- Array.make cap 0
  end

(* Insert [tv_id] into the sorted id array (binary search + shift),
   returning the insertion slot.  [acq_old] is shifted in lockstep: under
   eager acquisition it already holds live pre-lock vlock values at the
   existing slots (under lazy acquisition it is commit-time scratch and
   the extra blit is harmless). *)
let wids_insert_idx txn tv_id =
  wids_ensure txn (txn.wlen + 1);
  let lo = ref 0 and hi = ref txn.wlen in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if txn.wids.(mid) < tv_id then lo := mid + 1 else hi := mid
  done;
  Array.blit txn.wids !lo txn.wids (!lo + 1) (txn.wlen - !lo);
  Array.blit txn.acq_old !lo txn.acq_old (!lo + 1) (txn.wlen - !lo);
  txn.wids.(!lo) <- tv_id;
  txn.wlen <- txn.wlen + 1;
  !lo

let wids_insert txn tv_id = ignore (wids_insert_idx txn tv_id : int)

(* Eager-acquisition variant: the caller just write-locked [tv_id] and
   records the pre-lock vlock for release/undo on abort. *)
let wids_insert_locked txn tv_id old =
  let slot = wids_insert_idx txn tv_id in
  txn.acq_old.(slot) <- old

(* Record a (first) write of [tv_id], keeping the sorted id array current. *)
let record_write txn tv_id w =
  if Hashtbl.mem txn.writes tv_id then Hashtbl.replace txn.writes tv_id w
  else begin
    Hashtbl.add txn.writes tv_id w;
    wids_insert txn tv_id
  end

let locked v = v land 1 = 1

(* Read a consistent (value, version) snapshot of a committed tvar. *)
let rec read_committed tv =
  let v1 = Atomic.get tv.vlock in
  if locked v1 then begin
    Domain.cpu_relax ();
    read_committed tv
  end
  else
    let v = Atomic.get tv.value in
    let v2 = Atomic.get tv.vlock in
    if v1 = v2 then (v, v1)
    else begin
      Domain.cpu_relax ();
      read_committed tv
    end

(* A read entry is still valid if its tvar is unlocked at the recorded
   version, or locked by [txn] itself (commit-time validation only). *)
let rentry_valid ?(self = None) (R (tv, ver)) =
  let cur = Atomic.get tv.vlock in
  if cur = ver then true
  else if locked cur && cur = ver + 1 then
    match self with
    | Some txn -> Hashtbl.mem txn.writes tv.tv_id
    | None -> false
  else false

(* Per-tvar check of one level's entries from index [from].  [self] names
   the top-level transaction whose own write locks must not invalidate
   its reads — eager acquisition holds them during the body, so read
   validation there must look through them. *)
let level_valid ?(from = 0) ?(self = None) txn =
  let rs = txn.reads in
  let ok = ref true in
  let i = ref from in
  while !ok && !i < rs.r_len do
    if not (rentry_valid ~self rs.r_arr.(!i)) then ok := false;
    incr i
  done;
  !ok

(* ------------------------------------------------------------------ *)
(* Commit ring: the write sets of recent commits, indexed by write
   version.  Read-version extension consults it to prove that commits in
   (validated_rv, new_rv] touched none of the transaction's reads, making
   prefix revalidation O(commits in window) instead of O(read set).  Any
   doubt (slot overwritten by wraparound, commit still in flight) falls
   back to the exact per-tvar scan, so the ring is purely an accelerator.
   Soundness depends on write versions being unique — see [bump_clock]. *)

let ring_size = 1024 (* power of two; commits covered before wraparound *)

type ring_slot = { slot_wv : int; slot_ids : int array }

let empty_slot = { slot_wv = 0; slot_ids = [||] }
let commit_ring = Array.init ring_size (fun _ -> Atomic.make empty_slot)

let ring_publish wv ids =
  Atomic.set commit_ring.((wv lsr 1) land (ring_size - 1)) { slot_wv = wv; slot_ids = ids }

(* [true] when every commit in (from_v, to_v] is present in the ring and
   wrote no tvar read by any level in [stack]. *)
let ring_window_clean stack ~from_v ~to_v =
  to_v <= from_v
  || to_v - from_v < 2 * ring_size
     &&
     let clean = ref true in
     let v = ref (from_v + 2) in
     while !clean && !v <= to_v do
       let slot = Atomic.get commit_ring.((!v lsr 1) land (ring_size - 1)) in
       if slot.slot_wv <> !v then clean := false
       else
         Array.iter
           (fun id ->
             if List.exists (fun lvl -> rs_mem lvl.reads id) stack then
               clean := false)
           slot.slot_ids;
       v := !v + 2
     done;
     !clean

(* Try to extend the top-level read version to the current clock, as TL2
   does, so long transactions survive concurrent unrelated commits.  The
   validated prefix of each level is cleared through the commit ring when
   possible; otherwise every entry is re-checked (the seed behaviour). *)
let extend_read_version ?(self = None) innermost =
  let top = innermost.top in
  let new_rv = Atomic.get clock in
  let rec stack_of t =
    t :: (match t.parent with None -> [] | Some p -> stack_of p)
  in
  let stack = stack_of innermost in
  let incremental =
    ring_window_clean stack ~from_v:top.validated_rv ~to_v:new_rv
  in
  let result = ref `Ok in
  List.iter
    (fun lvl ->
      let from = if incremental then lvl.validated else 0 in
      if not (level_valid ~from ~self lvl) then
        if lvl == innermost && lvl.parent <> None && !result = `Ok then
          result := `Child_only
        else result := `Top)
    stack;
  match !result with
  | `Ok ->
      top.rv <- new_rv;
      top.validated_rv <- new_rv;
      List.iter (fun lvl -> lvl.validated <- lvl.reads.r_len) stack;
      true
  | `Child_only -> raise Child_conflict_exn
  | `Top -> false

(* Policy-directed wait before the next attempt.  Backoff is the seed's
   exponential spin, now jittered per-domain; Karma grows only linearly
   (the retry count itself is the priority that will eventually win);
   Greedy relies on priority for progress and pauses briefly. *)
let cm_wait cm n =
  let spins =
    match cm with
    | Backoff { base; max_exp; jitter } ->
        let s = base lsl min n max_exp in
        if jitter then (s / 2) + 1 + rand_int (s + 1) else s
    | Karma ->
        let s = 16 * (min n 256 + 1) in
        (s / 2) + 1 + rand_int (s + 1)
    | Greedy -> 64 + rand_int 256
  in
  for _ = 1 to spins do
    Domain.cpu_relax ()
  done

(* ------------------------------------------------------------------ *)
(* Per-policy read/write protocols.  One static [strategy] record per
   policy, installed on the top-level descriptor by [acquire_top]; the
   hot path pays one field load and an indirect call, no allocation. *)

(* Bound on transactional waits introduced by the non-default policies
   (encounter-time lock holds, visible-reader drains).  Unlike the
   committed-read spin — whose holder is always mid-publication, hence
   finite — these waits can target a lock held across a whole transaction
   body, possibly itself blocked on state we hold; bounding them converts
   every such cycle into a conflict-retry. *)
let tx_spin_bound = 1024

(* The write set is keyed by [tv_id], which is unique per tvar, so an
   entry found under our id necessarily wraps this very tvar and its
   buffered value has type ['a].  The physical-equality assertion guards
   the coercion. *)
let pending_value : type a. a tvar_repr -> wentry -> a =
 fun tv (W (tv', v)) ->
  assert (Obj.repr tv' == Obj.repr tv);
  (Obj.magic v : a)

(* Bounded variant of [read_committed] for eager policies: the lock
   holder blocking us may be an encounter-time writer parked for its
   whole body (possibly on a lock we hold), not a finite publication. *)
let read_committed_bounded tv =
  let rec go spins =
    let v1 = Atomic.get tv.vlock in
    if locked v1 then
      if spins <= 0 then raise Conflict_exn
      else begin
        Domain.cpu_relax ();
        go (spins - 1)
      end
    else
      let v = Atomic.get tv.value in
      let v2 = Atomic.get tv.vlock in
      if v1 = v2 then (v, v1)
      else if spins <= 0 then raise Conflict_exn
      else begin
        Domain.cpu_relax ();
        go (spins - 1)
      end
  in
  go tx_spin_bound

(* Wait for [tv]'s visible-reader count to drain to [self] (1 when the
   caller itself holds a read lock on [tv], else 0).  Bounded: a reader
   we wait for may itself be waiting on a lock we hold. *)
let readers_drained ~self tv =
  let rec go spins =
    if Atomic.get tv.readers <= self then true
    else if spins <= 0 then false
    else begin
      Domain.cpu_relax ();
      go (spins - 1)
    end
  in
  go tx_spin_bound

(* --- lazy_rv_wb: the seed protocol, bit for bit ------------------- *)

let rec lazy_rv_read : type a. txn -> a tvar_repr -> a =
 fun txn tv ->
  check_not_aborted txn;
  match find_write txn tv.tv_id with
  | Some w -> pending_value tv w
  | None ->
      let v, ver = read_committed tv in
      if ver > txn.top.rv then
        if extend_read_version txn then lazy_rv_read txn tv
        else raise Conflict_exn
      else begin
        if not (stack_has_read txn tv.tv_id) then rs_push txn.reads (R (tv, ver));
        v
      end

let buffered_write : type a. txn -> a tvar_repr -> a -> unit =
 fun txn tv v ->
  check_not_aborted txn;
  record_write txn tv.tv_id (W (tv, v))

(* --- shared eager machinery --------------------------------------- *)

(* Encounter-time write-lock acquisition: CAS the vlock locked, wait out
   visible readers (to 1 when we hold a read lock on [tv] ourselves — the
   read entry keeps its count until the attempt ends), then check
   read-write consistency: a version recorded for [tv] by an earlier read
   must still be the committed one, else the read set is already stale.
   On any failure the vlock is restored and the attempt retries.  Returns
   the pre-lock vlock for [acq_old]. *)
let eager_acquire top tv =
  let rec lock spins =
    let cur = Atomic.get tv.vlock in
    if locked cur then
      if spins <= 0 then raise Conflict_exn
      else begin
        Domain.cpu_relax ();
        lock (spins - 1)
      end
    else if Atomic.compare_and_set tv.vlock cur (cur + 1) then cur
    else lock spins
  in
  let cur = lock tx_spin_bound in
  let self =
    if top.pol.p_read = Read_lock && rs_mem top.reads tv.tv_id then 1 else 0
  in
  if not (readers_drained ~self tv) then begin
    Atomic.set tv.vlock cur;
    raise Conflict_exn
  end;
  (match rs_find top.reads tv.tv_id with
  | Some ver when ver <> cur ->
      Atomic.set tv.vlock cur;
      raise Conflict_exn
  | _ -> ());
  cur

(* --- eager_rv_wb --------------------------------------------------- *)

(* Like the lazy read, but bounded on locked vlocks (the holder may be an
   encounter-time writer, not a finite publication) and validating
   through our own held write locks.  Non-default policies run flattened,
   so the top level is the only level. *)
let rec eager_rv_read : type a. txn -> a tvar_repr -> a =
 fun txn tv ->
  check_not_aborted txn;
  let top = txn.top in
  match Hashtbl.find_opt top.writes tv.tv_id with
  | Some w -> pending_value tv w
  | None ->
      let v, ver = read_committed_bounded tv in
      if ver > top.rv then
        if extend_read_version ~self:(Some top) txn then eager_rv_read txn tv
        else raise Conflict_exn
      else begin
        if not (rs_mem top.reads tv.tv_id) then rs_push top.reads (R (tv, ver));
        v
      end

let eager_wb_write : type a. txn -> a tvar_repr -> a -> unit =
 fun txn tv v ->
  check_not_aborted txn;
  let top = txn.top in
  if Hashtbl.mem top.writes tv.tv_id then
    Hashtbl.replace top.writes tv.tv_id (W (tv, v))
  else begin
    let old = eager_acquire top tv in
    Hashtbl.add top.writes tv.tv_id (W (tv, v));
    wids_insert_locked top tv.tv_id old
  end

(* --- read-locking (visible readers) -------------------------------- *)

(* Acquire a visible read lock: announce in [tv.readers], then revalidate
   the vlock.  A writer locks the vlock first and only then waits for
   readers to drain, so observing an unlocked vlock after our increment
   proves every current and future writer sees us and waits; the value
   read below cannot change until our count drops at attempt end.  Reads
   are therefore abort-free once acquired (strict two-phase locking);
   no commit-time validation is needed. *)
let rl_read : type a. txn -> a tvar_repr -> a =
 fun txn tv ->
  check_not_aborted txn;
  let top = txn.top in
  if Hashtbl.mem top.writes tv.tv_id then
    match top.pol.p_version with
    | Ver_undo -> Atomic.get tv.value (* in place; the table holds undo *)
    | Ver_redo -> pending_value tv (Hashtbl.find top.writes tv.tv_id)
  else if rs_mem top.reads tv.tv_id then Atomic.get tv.value
  else
    let rec acquire spins =
      Atomic.incr tv.readers;
      let ver = Atomic.get tv.vlock in
      if locked ver then begin
        Atomic.decr tv.readers;
        if spins <= 0 then raise Conflict_exn;
        Domain.cpu_relax ();
        acquire (spins - 1)
      end
      else begin
        rs_push top.reads (R (tv, ver));
        Atomic.get tv.value
      end
    in
    acquire tx_spin_bound

(* --- eager_rl_ul: in-place writes, the table holds the undo log ---- *)

let eager_ul_write : type a. txn -> a tvar_repr -> a -> unit =
 fun txn tv v ->
  check_not_aborted txn;
  let top = txn.top in
  if Hashtbl.mem top.writes tv.tv_id then Atomic.set tv.value v
  else begin
    let old = eager_acquire top tv in
    Hashtbl.add top.writes tv.tv_id (W (tv, Atomic.get tv.value));
    wids_insert_locked top tv.tv_id old;
    Atomic.set tv.value v
  end

let strategy_lazy_rv_wb = { st_read = lazy_rv_read; st_write = buffered_write }
let strategy_eager_rv_wb = { st_read = eager_rv_read; st_write = eager_wb_write }
let strategy_lazy_rl_wb = { st_read = rl_read; st_write = buffered_write }
let strategy_eager_rl_ul = { st_read = rl_read; st_write = eager_ul_write }

(* Nested matches, not a tuple match: this runs per [acquire_top] and a
   tuple scrutinee would allocate. *)
let strategy_of pol =
  match pol.p_acquire with
  | Acq_lazy -> (
      match pol.p_read with
      | Read_validate -> strategy_lazy_rv_wb
      | Read_lock -> strategy_lazy_rl_wb)
  | Acq_eager -> (
      match pol.p_version with
      | Ver_redo -> strategy_eager_rv_wb
      | Ver_undo -> strategy_eager_rl_ul)

(* Release the policy-owned per-attempt state; runs exactly once per
   attempt, after the commit published or the abort was decided.  On an
   aborted eager attempt the write locks are still held: under undo
   logging the in-place values are rolled back first, then the vlocks
   restored (in that order, so no committed reader can observe an
   uncommitted value through an unlocked vlock).  Read-locking policies
   drop every visible-reader count — including those kept through a
   write-lock upgrade.  A no-op for the default policy, which owns no
   visible state between the commit machinery's own acquire/release
   pairs. *)
let release_policy_state t ~committed =
  let pol = t.pol in
  if pol.p_acquire = Acq_eager && not committed then begin
    if pol.p_version = Ver_undo then
      for i = 0 to t.wlen - 1 do
        let (W (tv, old)) = Hashtbl.find t.writes t.wids.(i) in
        Atomic.set tv.value old
      done;
    for i = 0 to t.wlen - 1 do
      let (W (tv, _)) = Hashtbl.find t.writes t.wids.(i) in
      Atomic.set tv.vlock t.acq_old.(i)
    done
  end;
  if pol.p_read = Read_lock then begin
    let rs = t.reads in
    for i = 0 to rs.r_len - 1 do
      let (R (tv, _)) = rs.r_arr.(i) in
      Atomic.decr tv.readers
    done
  end

(* ------------------------------------------------------------------ *)

let make_top ?cm ?prio ?pol () =
  let rv = Atomic.get clock in
  let cm = match cm with Some c -> c | None -> Atomic.get global_cm in
  let prio = match prio with Some p -> p | None -> fresh_prio () in
  let pol = match pol with Some p -> p | None -> Atomic.get global_tm_policy in
  let rec t =
    {
      txn_id = fresh_txn_id ();
      top_status = Atomic.make Active;
      rv;
      reads = rs_create ();
      validated = 0;
      writes = Hashtbl.create 16;
      wids = [||];
      wlen = 0;
      acq_old = [||];
      commit_handlers = [];
      abort_handlers = [];
      parent = None;
      top = t;
      retries = 0;
      validated_rv = rv;
      cm;
      prio;
      in_prepare = false;
      self_opt = Some t;
      pol;
      strategy = strategy_of pol;
    }
  in
  t

let make_child parent =
  let rec t =
    {
      txn_id = fresh_txn_id ();
      top_status = parent.top_status;
      rv = parent.top.rv;
      reads = rs_create ();
      validated = 0;
      writes = Hashtbl.create 8;
      wids = [||];
      wlen = 0;
      acq_old = [||];
      commit_handlers = [];
      abort_handlers = [];
      parent = Some parent;
      top = parent.top;
      retries = 0;
      validated_rv = 0;
      cm = parent.top.cm;
      prio = parent.top.prio;
      in_prepare = false;
      self_opt = Some t;
      pol = parent.top.pol;
      strategy = parent.top.strategy;
    }
  in
  t

(* ------------------------------------------------------------------ *)
(* Descriptor pool.  Top-level descriptors are recycled through a
   domain-local free list, so the retry loop allocates nothing: the read
   set, write-set hashtable and scratch arrays are grow-only and cleared
   in place per attempt.  A fresh status cell and a fresh leased txn_id
   are installed per acquisition/attempt, so a handle captured by an
   earlier transaction (e.g. by a semantic lock table whose cleanup
   raced) can only CAS an orphaned cell, never abort the new incarnation.

   Reuse is safe against concurrent inspection because every consumer of
   foreign handles (semantic conflict detection) looks them up and uses
   them while holding the collection's commit region — the same region the
   owner's cleanup handlers need before the descriptor can be released. *)

let top_pool_key : txn list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let acquire_top ~cm ~prio ~pol =
  let pool = Domain.DLS.get top_pool_key in
  match !pool with
  | t :: rest ->
      pool := rest;
      t.cm <- cm;
      t.prio <- prio;
      t.retries <- 0;
      t.pol <- pol;
      t.strategy <- strategy_of pol;
      t.top_status <- Atomic.make Active;
      t
  | [] -> make_top ~cm ~prio ~pol ()

(* The released descriptor's fields stay intact until the next
   [acquire_top] on this domain: [open_nested] reads the migrated handler
   lists off the returned descriptor immediately after [run_top] returns
   it. *)
let release_top t =
  let pool = Domain.DLS.get top_pool_key in
  pool := t :: !pool

let reset_for_attempt t =
  t.txn_id <- fresh_txn_id ();
  Atomic.set t.top_status Active;
  let rv = Atomic.get clock in
  t.rv <- rv;
  t.validated_rv <- rv;
  t.validated <- 0;
  rs_clear t.reads;
  Hashtbl.clear t.writes;
  t.wlen <- 0;
  t.commit_handlers <- [];
  t.abort_handlers <- [];
  t.in_prepare <- false

(* ------------------------------------------------------------------ *)
(* Fault-injection (chaos) hook points.  When installed, the hook is
   called at deterministic points of every top-level transaction; it may
   raise a retryable exception (injected conflict), deliver a remote
   abort, register failing handlers, or spin (delay-before-commit).  One
   Atomic.get when disabled — negligible on the hot path. *)

type chaos_event =
  | Chaos_attempt (* start of each top-level attempt, context installed *)
  | Chaos_before_commit (* body done, before the commit sequence *)
  | Chaos_in_commit (* inside commit: write locks held, reads validated *)

let chaos_hook : (chaos_event -> unit) option Atomic.t = Atomic.make None

let chaos ev =
  match Atomic.get chaos_hook with None -> () | Some f -> f ev
