open Types

type 'a t = 'a tvar_repr

let make v =
  {
    tv_id = Atomic.fetch_and_add next_tv_id 1;
    value = Atomic.make v;
    vlock = Atomic.make 0;
  }

let id tv = tv.tv_id

(* The write set is keyed by [tv_id], which is unique per tvar, so an entry
   found under our id necessarily wraps this very tvar and its pending value
   has type ['a].  The physical-equality assertion guards the coercion. *)
let pending_value : type a. a t -> wentry -> a =
 fun tv (W (tv', v)) ->
  assert (Obj.repr tv' == Obj.repr tv);
  (Obj.magic v : a)

(* Re-reads are O(1) no-ops on the read set: if any level of the nesting
   stack already recorded this tvar, the committed value we observe now is
   necessarily at the recorded version (a later committed write would carry
   wv > top.rv and take the extension branch), so no new entry is needed. *)
let rec read_in_txn txn tv =
  check_not_aborted txn;
  match find_write txn tv.tv_id with
  | Some w -> pending_value tv w
  | None ->
      let v, ver = read_committed tv in
      if ver > txn.top.rv then
        if extend_read_version txn then read_in_txn txn tv
        else raise Conflict_exn
      else begin
        if not (stack_has_read txn tv.tv_id) then rs_push txn.reads (R (tv, ver));
        v
      end

let get tv =
  match !(context ()) with
  | None -> fst (read_committed tv)
  | Some txn -> read_in_txn txn tv

(* Non-transactional store: lock, advance the clock, publish. *)
let rec nontx_set tv v =
  let cur = Atomic.get tv.vlock in
  if locked cur || not (Atomic.compare_and_set tv.vlock cur (cur + 1)) then begin
    Domain.cpu_relax ();
    nontx_set tv v
  end
  else begin
    let wv = bump_clock () in
    Atomic.set tv.value v;
    Atomic.set tv.vlock wv;
    ring_publish wv [| tv.tv_id |]
  end

let set tv v =
  match !(context ()) with
  | None -> nontx_set tv v
  | Some txn ->
      check_not_aborted txn;
      record_write txn tv.tv_id (W (tv, v))

let modify tv f = set tv (f (get tv))
