open Types

type 'a t = 'a tvar_repr

let make v =
  {
    tv_id = Atomic.fetch_and_add next_tv_id 1;
    value = Atomic.make v;
    vlock = Atomic.make 0;
    hist = Coll.Vchain.make 0 v;
  }

let id tv = tv.tv_id

let history_length tv = Coll.Vchain.length tv.hist

(* The write set is keyed by [tv_id], which is unique per tvar, so an entry
   found under our id necessarily wraps this very tvar and its pending value
   has type ['a].  The physical-equality assertion guards the coercion. *)
let pending_value : type a. a t -> wentry -> a =
 fun tv (W (tv', v)) ->
  assert (Obj.repr tv' == Obj.repr tv);
  (Obj.magic v : a)

(* Re-reads are O(1) no-ops on the read set: if any level of the nesting
   stack already recorded this tvar, the committed value we observe now is
   necessarily at the recorded version (a later committed write would carry
   wv > top.rv and take the extension branch), so no new entry is needed. *)
let rec read_in_txn txn tv =
  check_not_aborted txn;
  match find_write txn tv.tv_id with
  | Some w -> pending_value tv w
  | None ->
      let v, ver = read_committed tv in
      if ver > txn.top.rv then
        if extend_read_version txn then read_in_txn txn tv
        else raise Conflict_exn
      else begin
        if not (stack_has_read txn tv.tv_id) then rs_push txn.reads (R (tv, ver));
        v
      end

let get tv =
  (* The snapshot branch comes first: inside a snapshot the context is
     empty, and the read must resolve against the version chain at the
     pinned stamp, not the live committed value. *)
  if in_snapshot () then Coll.Vchain.read_at tv.hist (snapshot_stamp ())
  else
    match !(context ()) with
    | None -> fst (read_committed tv)
    | Some txn -> read_in_txn txn tv

(* Non-transactional store: lock, open the publication window, advance
   the clock, publish (value, version chain, unlocking vlock). *)
let rec nontx_set tv v =
  let cur = Atomic.get tv.vlock in
  if locked cur || not (Atomic.compare_and_set tv.vlock cur (cur + 1)) then begin
    Domain.cpu_relax ();
    nontx_set tv v
  end
  else begin
    publish_window_enter ();
    let wv = bump_clock () in
    Atomic.set tv.value v;
    hist_publish tv ~min_epoch:(oldest_active_epoch ()) wv v;
    Atomic.set tv.vlock wv;
    ring_publish wv [| tv.tv_id |];
    publish_window_exit ()
  end

let set tv v =
  if in_snapshot () then
    invalid_arg "Tvar.set: inside a snapshot read section";
  match !(context ()) with
  | None -> nontx_set tv v
  | Some txn ->
      check_not_aborted txn;
      record_write txn tv.tv_id (W (tv, v))

let modify tv f = set tv (f (get tv))
