open Types

type 'a t = 'a tvar_repr

let make v =
  {
    tv_id = Atomic.fetch_and_add next_tv_id 1;
    value = Atomic.make v;
    vlock = Atomic.make 0;
    readers = Atomic.make 0;
    hist = Coll.Vchain.make 0 v;
  }

let id tv = tv.tv_id

let history_length tv = Coll.Vchain.length tv.hist

let get tv =
  (* The snapshot branch comes first: inside a snapshot the context is
     empty, and the read must resolve against the version chain at the
     pinned stamp, not the live committed value. *)
  if in_snapshot () then Coll.Vchain.read_at tv.hist (snapshot_stamp ())
  else
    match !(context ()) with
    | None -> fst (read_committed tv)
    | Some txn -> txn.top.strategy.st_read txn tv

(* Non-transactional store: lock, drain visible readers (read-locking
   transactions may hold the value pinned), open the publication window,
   advance the clock, publish (value, version chain, unlocking vlock).
   The drain is bounded; on timeout the lock is restored and the store
   retried, so a parked reader can never wedge a non-transactional
   writer behind a stale lock word. *)
let rec nontx_set tv v =
  let cur = Atomic.get tv.vlock in
  if locked cur || not (Atomic.compare_and_set tv.vlock cur (cur + 1)) then begin
    Domain.cpu_relax ();
    nontx_set tv v
  end
  else if not (readers_drained ~self:0 tv) then begin
    Atomic.set tv.vlock cur;
    Domain.cpu_relax ();
    nontx_set tv v
  end
  else begin
    publish_window_enter ();
    let wv = bump_clock () in
    Atomic.set tv.value v;
    hist_publish tv ~min_epoch:(oldest_active_epoch ()) wv v;
    Atomic.set tv.vlock wv;
    ring_publish wv [| tv.tv_id |];
    publish_window_exit ()
  end

let set tv v =
  if in_snapshot () then
    invalid_arg "Tvar.set: inside a snapshot read section";
  match !(context ()) with
  | None -> nontx_set tv v
  | Some txn -> txn.top.strategy.st_write txn tv v

let modify tv f = set tv (f (get tv))
