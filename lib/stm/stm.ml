open Types

exception Aborted
exception Starved of { attempts : int; elapsed : float }

exception Overloaded
(* Typed admission rejection: the admission gate (see {!Admission}) is
   configured with the [Shed] overload policy and either had no token for
   this request or the admitted transaction exhausted its budget.  The
   request ran no effects; the caller (load balancer, open-loop driver)
   decides whether to retry later, degrade, or count the shed. *)
exception Handler_failure of { committed : bool; failures : exn list }

exception Place_down of { place : int }
(* Failure-domain error raised by sharded-store layers (lib/places) from a
   commit handler's prepare phase — i.e. before the commit point — when the
   transaction touched a place that has been killed (or recovered under it)
   since.  The transaction aborts cleanly (compensations run, nothing
   applied) and the exception propagates out of [atomic] instead of being
   retried: the place will not come back by itself, so the caller must
   redirect (recover the place / wait for recovery) and re-issue. *)

exception Not_quiescent of { in_flight : int }
(* [reset_stats] called while [in_flight] top-level transactions were still
   running somewhere in the process. *)

type handle = txn

let context = context

(* ------------------------------------------------------------------ *)
(* Monotonic-ish wall clock *)

(* This OCaml's [Unix] has no [clock_gettime], so true CLOCK_MONOTONIC is
   out of reach without a new dependency.  Instead every elapsed-time
   computation in the runtime (token-bucket refill, budget timing,
   open-loop pacing/latency) goes through a process-wide clamp: [now]
   never goes backwards, so a backward NTP step freezes the clock until
   real time catches up instead of producing negative intervals — no
   negative bucket refills, no negative latencies, no budget starvation
   from a clock that jumped back under a running transaction.  (A forward
   step still dilates intervals; that is the best available without an OS
   monotonic source.)  The clamp is a single CAS loop on an atomic float:
   wait-free on the fast path and safe across domains. *)
module Monoclock = struct
  let last = Atomic.make 0.

  let rec now () =
    let t = Unix.gettimeofday () in
    let l = Atomic.get last in
    if t >= l then
      if Atomic.compare_and_set last l t then t else now ()
    else l
end

(* ------------------------------------------------------------------ *)
(* Contention management *)

module Contention = struct
  type policy = Types.cm_policy =
    | Backoff of { base : int; max_exp : int; jitter : bool }
    | Karma
    | Greedy

  let default = default_cm
  let set_global p = Atomic.set global_cm p
  let global () = Atomic.get global_cm
  let name = policy_name
end

(* ------------------------------------------------------------------ *)
(* TM policy matrix: selection and the adaptive controller.

   The controller samples the sharded stats over epoch windows (one
   window = [adapt_epoch] completed transactions across all domains,
   counted per-domain to stay off shared cache lines) and derives two
   regime signals from the deltas: the read-only commit ratio and the
   abort rate.  A regime maps to a target policy; the global policy only
   switches after [adapt_hysteresis] consecutive windows agree on the
   same target (and it differs from the current one), so a transient
   burst cannot flap the system.  Every switch increments the sharded
   [s_policy_switches] counter, making flapping observable. *)

let adaptive_on = Atomic.make false
let adapt_epoch = Atomic.make 512 (* completed txns per controller window *)
let adapt_hysteresis = 2 (* consecutive agreeing windows before a switch *)

let adapt_min_window = 64
(* Minimum commits a window must span before its signals count.  Open-loop
   traffic arrives in bursts with idle gaps; a window that happens to close
   during a gap carries a handful of commits, and an abort-rate or
   read-ratio computed over single digits is noise that can flap
   [policy_switches].  A window smaller than this is skipped *without*
   advancing the baselines, so the sample keeps accumulating until the
   next tick sees at least [adapt_min_window] commits. *)

(* Single-writer under the [adapt_ticking] CAS guard below. *)
type adapt_state = {
  mutable a_commits : int;
  mutable a_ro : int;
  mutable a_aborts : int;
  mutable a_writes : int;
  mutable a_target : tm_policy; (* target of the last window *)
  mutable a_stable : int; (* consecutive windows agreeing on [a_target] *)
}

let adapt_state =
  { a_commits = 0; a_ro = 0; a_aborts = 0; a_writes = 0;
    a_target = pol_lazy_rv_wb; a_stable = 0 }

let adapt_ticking = Atomic.make false

let adapt_local_key : int ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref 0)

(* Regime -> policy.  Read-dominated traffic wants the default: its
   read-only fast path commits without locks or clock bumps, which no
   visible-reader policy can match.  Contended write traffic wants
   encounter-time read-locking with undo logging: conflicts surface at
   first touch instead of after a wasted body, re-writes mutate in place
   without growing the redo log, and commits publish without re-locking.
   The mid abort band keeps invisible reads but acquires eagerly.  Even
   without aborts, write-dominated traffic (large write sets, almost no
   read-only commits) prefers undo logging: re-writes are
   allocation-free and the redo log's commit-time replay disappears. *)
let adapt_decide ~ro_ratio ~abort_rate ~writes_per_commit =
  if ro_ratio >= 0.60 then pol_lazy_rv_wb
  else if abort_rate >= 0.20 then pol_eager_rl_ul
  else if abort_rate >= 0.02 then pol_eager_rv_wb
  else if ro_ratio < 0.10 && writes_per_commit >= 6.0 then pol_eager_rl_ul
  else pol_lazy_rv_wb

let adapt_reset_window () =
  adapt_state.a_commits <- stats_sum (fun s -> s.s_commits);
  adapt_state.a_ro <- stats_sum (fun s -> s.s_ro_commits);
  adapt_state.a_aborts <-
    stats_sum (fun s -> s.s_conflict_aborts + s.s_remote_aborts);
  adapt_state.a_writes <- stats_sum (fun s -> s.s_tvar_writes);
  adapt_state.a_target <- Atomic.get global_tm_policy;
  adapt_state.a_stable <- 0

(* Called once per completed top-level transaction (and snapshot read).
   Off: one Atomic.get.  On: one domain-local increment until the local
   count crosses the window size, then at most one domain wins the CAS
   and evaluates the window. *)
let adaptive_tick () =
  if Atomic.get adaptive_on then begin
    let c = Domain.DLS.get adapt_local_key in
    incr c;
    if !c >= Atomic.get adapt_epoch then begin
      c := 0;
      if Atomic.compare_and_set adapt_ticking false true then begin
        let commits = stats_sum (fun s -> s.s_commits) in
        let ro = stats_sum (fun s -> s.s_ro_commits) in
        let aborts =
          stats_sum (fun s -> s.s_conflict_aborts + s.s_remote_aborts)
        in
        let writes = stats_sum (fun s -> s.s_tvar_writes) in
        let dc = commits - adapt_state.a_commits in
        let dro = ro - adapt_state.a_ro in
        let da = aborts - adapt_state.a_aborts in
        let dw = writes - adapt_state.a_writes in
        (* Under-sampled window (idle gap between arrival bursts): leave
           the baselines where they are and decide nothing — the commits
           roll into the next window until enough have accumulated. *)
        if dc >= adapt_min_window then begin
          adapt_state.a_commits <- commits;
          adapt_state.a_ro <- ro;
          adapt_state.a_aborts <- aborts;
          adapt_state.a_writes <- writes;
          let ro_ratio = float_of_int dro /. float_of_int dc in
          let abort_rate = float_of_int da /. float_of_int (dc + da) in
          let writes_per_commit = float_of_int dw /. float_of_int dc in
          let target = adapt_decide ~ro_ratio ~abort_rate ~writes_per_commit in
          if target == adapt_state.a_target then
            adapt_state.a_stable <- adapt_state.a_stable + 1
          else begin
            adapt_state.a_target <- target;
            adapt_state.a_stable <- 1
          end;
          if
            adapt_state.a_stable >= adapt_hysteresis
            && Atomic.get global_tm_policy != target
          then begin
            Atomic.set global_tm_policy target;
            let s = my_stats () in
            s.s_policy_switches <- s.s_policy_switches + 1
          end
        end;
        Atomic.set adapt_ticking false
      end
    end
  end

module Policy = struct
  type t = Types.tm_policy

  let lazy_rv_wb = pol_lazy_rv_wb
  let eager_rv_wb = pol_eager_rv_wb
  let lazy_rl_wb = pol_lazy_rl_wb
  let eager_rl_ul = pol_eager_rl_ul
  let all = all_tm_policies
  let name p = p.p_name
  let of_name = tm_policy_of_name

  let set_global p =
    Atomic.set adaptive_on false;
    Atomic.set global_tm_policy p

  let global () = Atomic.get global_tm_policy

  let enable_adaptive ?epoch () =
    (match epoch with Some e when e > 0 -> Atomic.set adapt_epoch e | _ -> ());
    adapt_reset_window ();
    Atomic.set adaptive_on true

  let disable_adaptive () = Atomic.set adaptive_on false
  let adaptive () = Atomic.get adaptive_on
  let switches () = stats_sum (fun s -> s.s_policy_switches)

  (* Windows spanning fewer commits than this are skipped by the
     controller (signals too noisy to act on); exposed for tests. *)
  let min_window_commits = adapt_min_window
end

type budget = { max_retries : int option; max_seconds : float option }

(* Auto-commit context: an already-committed handle so that semantic lock
   owners recorded outside transactions never block anyone (remote_abort
   on it reports "already committed").  One per domain, cached in DLS —
   handles are only compared by txn_id and status, so sharing is safe.
   Never pooled: its identity must outlive any transaction. *)
let autocommit_handle_key : handle Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let t = make_top () in
      Atomic.set t.top_status Committed;
      t)

let current () =
  match !(context ()) with
  | Some t -> t.top
  | None -> Domain.DLS.get autocommit_handle_key

let in_txn () = Option.is_some !(context ())
let same_txn (a : handle) (b : handle) = a.txn_id = b.txn_id
let txn_id (t : handle) = t.txn_id

(* Handlers carry the commit region they operate on; [None] means the
   process-wide fallback region (plain [on_commit] callers).  Handlers
   registered through these untyped entry points are never assumed
   read-only: only the two-phase registration can certify that. *)
let on_commit_in region h =
  match !(context ()) with
  | None -> h () (* auto-commit: the operation is its own transaction *)
  | Some t ->
      t.commit_handlers <-
        {
          ch_region = region;
          ch_regions = None;
          ch_prepare = None;
          ch_read_only = never_read_only;
          ch_apply = (fun _ -> h ());
        }
        :: t.commit_handlers

let on_commit h = on_commit_in None h

let on_abort h =
  match !(context ()) with
  | None -> () (* auto-commit transactions never abort *)
  | Some t -> t.abort_handlers <- h :: t.abort_handlers

(* Handler registration targeting the top-level transaction regardless of
   the current nesting depth: what the collection classes need, since lock
   ownership and compensation belong to the top-level outcome. *)
let on_top_commit_in region h =
  match !(context ()) with
  | None -> h ()
  | Some t ->
      let top = t.top in
      top.commit_handlers <-
        {
          ch_region = region;
          ch_regions = None;
          ch_prepare = None;
          ch_read_only = never_read_only;
          ch_apply = (fun _ -> h ());
        }
        :: top.commit_handlers

let on_top_commit h = on_top_commit_in None h

(* Two-phase registration used by the collection classes: [prepare] runs
   before the commit point (semantic conflict detection; may raise to
   retry or defer), [apply] after it (buffer application + lock release;
   protected, never skipped).  [read_only] is the collection's fast-path
   probe — [true] when the transaction buffered no mutation against this
   collection, so the commit needs neither the prepare phase nor the
   commit region pre-acquisition (see [commit_top]).  [regions], when
   given, is the handler's commit-time region plan: evaluated once during
   commit, its result replaces [region] in the pre-acquired set, letting a
   striped collection name exactly the stripe regions this transaction's
   buffered operations cover. *)
let on_top_commit_prepared ?(read_only = never_read_only) ?regions region
    ~prepare ~apply =
  match !(context ()) with
  | None ->
      (* Auto-commit: the operation is its own transaction; it still needs
         a commit stamp so any version it publishes lands in the chains,
         and the publication window so concurrent snapshot pins order
         against it. *)
      prepare ();
      publish_window_enter ();
      let wv = bump_clock () in
      Fun.protect ~finally:publish_window_exit (fun () -> apply wv)
  | Some t ->
      let top = t.top in
      top.commit_handlers <-
        {
          ch_region = Some region;
          ch_regions = regions;
          ch_prepare = Some prepare;
          ch_read_only = read_only;
          ch_apply = apply;
        }
        :: top.commit_handlers

let on_top_abort h =
  match !(context ()) with
  | None -> ()
  | Some t ->
      let top = t.top in
      top.abort_handlers <- h :: top.abort_handlers

let self_abort () =
  match !(context ()) with
  | None -> invalid_arg "Stm.self_abort: no enclosing transaction"
  | Some _ -> raise Explicit_abort_exn

(* Abort and retry the current top-level transaction transparently. *)
let retry_now () =
  match !(context ()) with
  | None -> invalid_arg "Stm.retry_now: no enclosing transaction"
  | Some _ -> raise Conflict_exn

type remote_abort_outcome = Delivered | Already_aborted | Too_late

(* Program-directed abort with contention-manager arbitration.  When the
   caller is a transaction inside its own prepare phase (semantic conflict
   detection at commit), the caller's policy may decide to *defer* to the
   target instead of aborting it: Greedy yields to older start tickets,
   Karma to higher accumulated retry counts.  Deferring raises
   [Deferred_exn], unwinding the caller's commit attempt (nothing has been
   applied yet — prepare runs before the commit point) so it retries while
   the elder proceeds.  The oldest transaction in the system is never
   deferred-out and never aborted by a Greedy committer: starvation
   freedom for semantic conflicts.

   The status race against a target that is concurrently entering its own
   commit is resolved deterministically by the CAS loop below, and every
   outcome is counted: [Delivered] (we won the race, the target will
   observe the abort), [Already_aborted], or [Too_late] (the target passed
   its commit point first and serialises before the caller). *)
let remote_abort_outcome (t : handle) =
  (match !(context ()) with
  | Some self when self.top.in_prepare && self.top.txn_id <> t.txn_id ->
      let defer =
        Atomic.get t.top_status = Active
        && (match self.top.cm with
           | Greedy -> t.prio < self.top.prio
           | Karma -> t.retries > self.top.retries
           | Backoff _ -> false)
      in
      if defer then begin
        let s = my_stats () in
        s.s_deferrals <- s.s_deferrals + 1;
        raise Deferred_exn
      end
  | _ -> ());
  let rec go () =
    match Atomic.get t.top_status with
    | Active ->
        if Atomic.compare_and_set t.top_status Active Aborted then begin
          let s = my_stats () in
          s.s_ra_delivered <- s.s_ra_delivered + 1;
          Delivered
        end
        else go ()
    | Aborted -> Already_aborted
    | Committing | Committed ->
        let s = my_stats () in
        s.s_ra_late <- s.s_ra_late + 1;
        Too_late
  in
  go ()

let remote_abort t =
  match remote_abort_outcome t with
  | Delivered | Already_aborted -> true
  | Too_late -> false

(* ------------------------------------------------------------------ *)
(* Commit machinery                                                    *)

(* Release the first [n] acquired write locks, restoring the vlock values
   saved in [acq_old] at acquisition. *)
let release_locks top n =
  for i = 0 to n - 1 do
    let (W (tv, _)) = Hashtbl.find top.writes top.wids.(i) in
    Atomic.set tv.vlock top.acq_old.(i)
  done

(* Acquire write locks in tv_id order (no deadlock), spinning a bounded
   number of times on each before declaring a conflict.  [wids] is sorted
   at insertion and the pre-lock vlock values go into the [acq_old]
   scratch, so acquisition allocates nothing.  After each lock the
   visible readers of the tvar are drained — any policy's writer must
   wait out read-locking transactions, and when this transaction itself
   holds a read lock on the tvar it drains to its own residual count of
   one (the entry is released at attempt end, not here).  Lazy only:
   eager policies acquired at encounter time. *)
let lock_writes top =
  let rl = top.pol.p_read = Read_lock in
  for i = 0 to top.wlen - 1 do
    let (W (tv, _)) = Hashtbl.find top.writes top.wids.(i) in
    let rec try_lock spins =
      let cur = Atomic.get tv.vlock in
      if locked cur then
        if spins = 0 then begin
          release_locks top i;
          raise Conflict_exn
        end
        else begin
          Domain.cpu_relax ();
          try_lock (spins - 1)
        end
      else if Atomic.compare_and_set tv.vlock cur (cur + 1) then begin
        let self = if rl && rs_mem top.reads tv.tv_id then 1 else 0 in
        if readers_drained ~self tv then top.acq_old.(i) <- cur
        else begin
          Atomic.set tv.vlock cur;
          release_locks top i;
          raise Conflict_exn
        end
      end
      else try_lock spins
    in
    try_lock 1024
  done

let validate_reads top =
  let rs = top.reads in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < rs.r_len do
    if not (rentry_valid ~self:(Some top) rs.r_arr.(!i)) then ok := false;
    incr i
  done;
  !ok

(* Read-locking policies need no commit-time validation: every read
   entry holds a visible lock, so its tvar cannot have been republished
   since the read (strict two-phase locking).  Version checks would in
   fact spuriously fail there — a writer parked on one of our read locks
   has already marked the vlock. *)
let commit_validate top =
  top.pol.p_read = Read_lock || validate_reads top

(* The rid-sorted, deduplicated set of commit regions the transaction's
   handlers touch.  A handler with a region plan ([ch_regions]) contributes
   exactly the stripe regions its thunk names — evaluated here, once, at
   commit time; other handlers contribute their single region, and handlers
   registered without one serialise on the process-wide fallback.  Sorting
   by rid makes multi-region acquisition deadlock-free regardless of how
   plans from different collections interleave. *)
let commit_regions handlers =
  let all =
    List.fold_left
      (fun acc h ->
        match h.ch_regions with
        | Some plan -> List.rev_append (plan ()) acc
        | None ->
            Option.value h.ch_region ~default:global_commit_region :: acc)
      [] handlers
  in
  (* Collect everything first, sort by rid once, drop adjacent duplicates:
     O(n log n) with O(n) allocation, where the old List.exists-per-insert
     plan construction was O(n^2) — measurable once striped collections
     contribute dozens of stripe regions per commit. *)
  let sorted = List.sort (fun a b -> compare a.rid b.rid) all in
  let rec dedup = function
    | a :: (b :: _ as rest) when a.rid = b.rid -> dedup rest
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  dedup sorted

(* Run every apply handler even if some raise; failures are aggregated
   (in registration order) and surfaced after the commit completes.  A
   raising handler can therefore never skip another collection's buffer
   application or semantic lock release.  [wv] is the commit stamp the
   handlers publish their shard versions at (0 on read-only paths). *)
let run_applies wv handlers =
  List.rev
    (List.fold_left
       (fun acc h ->
         try
           h.ch_apply wv;
           acc
         with e ->
           let s = my_stats () in
           s.s_handler_failures <- s.s_handler_failures + 1;
           e :: acc)
       [] handlers)

(* Publish the redo log at write version [wv]: per tvar — value, version
   chain (while the write lock is still held: chain publications are
   serialised by the vlock), then the unlocking vlock store.  The caller
   has opened the publication window ([publish_window_enter] before the
   bump that produced [wv]), so a concurrent snapshot pin either waits
   this publication out or pins above [wv]. *)
let publish_writes top wv =
  let min_epoch = oldest_active_epoch () in
  (match top.pol.p_version with
  | Ver_redo ->
      for i = 0 to top.wlen - 1 do
        let (W (tv, v)) = Hashtbl.find top.writes top.wids.(i) in
        Atomic.set tv.value v;
        hist_publish tv ~min_epoch wv v;
        Atomic.set tv.vlock wv
      done
  | Ver_undo ->
      (* In-place writes already happened at encounter time; the table
         holds the undo images.  Publish the live value into the chain
         and stamp the vlock — the commit is the unlock. *)
      for i = 0 to top.wlen - 1 do
        let (W (tv, _)) = Hashtbl.find top.writes top.wids.(i) in
        let v = Atomic.get tv.value in
        hist_publish tv ~min_epoch wv v;
        Atomic.set tv.vlock wv
      done);
  ring_publish wv (Array.sub top.wids 0 top.wlen)

let finish_commit top =
  Atomic.set top.top_status Committed;
  let s = my_stats () in
  s.s_commits <- s.s_commits + 1;
  s.s_tvar_writes <- s.s_tvar_writes + top.wlen

(* Publish the redo log and finish a handler-less writing commit.  Every
   mutating commit draws a write version: snapshot readers key visibility
   off unique commit stamps, so even commits that only mutate semantic
   state (handler path below) must advance the clock. *)
let publish_and_finish top =
  publish_window_enter ();
  let wv = bump_clock () in
  publish_writes top wv;
  publish_window_exit ();
  finish_commit top

let finish_read_only top =
  Atomic.set top.top_status Committed;
  let s = my_stats () in
  s.s_commits <- s.s_commits + 1;
  s.s_ro_commits <- s.s_ro_commits + 1

(* Commit a top-level transaction.  When the transaction registered
   handlers, the whole sequence

     acquire commit regions -> lock write set -> validate reads ->
     run prepare handlers (semantic conflict detection) ->
     flip to Committing -> run apply handlers -> publish memory writes ->
     Committed

   executes while holding the commit regions of every collection the
   handlers touch (acquired in rid order, hence deadlock-free), making the
   handlers' semantic conflict checks and buffer application atomic with
   the memory-level commit (multi-level transaction commit).  Commits whose
   handlers touch disjoint collections hold disjoint regions and proceed in
   parallel.

   Prepare handlers run *before* the commit point: an exception there
   (lost semantic race, contention-manager deferral, injected fault)
   releases the write locks and regions with nothing applied and retries
   the transaction.  Apply handlers run after the commit point under the
   aggregating wrapper.  Commit handlers must not access tvars: the
   collection classes operate on their wrapped structures inside
   [critical] regions instead (the region locks are reentrant, so a
   handler re-entering its own region's [critical] is fine).

   Read-only fast paths.  A transaction that wrote no tvars and whose
   handlers all certify [ch_read_only] commits without touching the global
   clock, taking write locks or pre-acquiring commit regions: validating
   the read set against the read version it started from proves the reads
   were mutually consistent at that point, and since the transaction
   publishes nothing, serialising it at that (past) point is correct even
   if later commits have since advanced the clock.  Apply handlers still
   run (they release semantic read locks and drop transaction-local
   state), each under its own collection's [critical] region.  The chaos
   hook and the Active->Committing settlement CAS stay on the fast path,
   so injected faults and remote aborts keep their full power there. *)
(* Policy interaction.  Eager policies acquired their write locks at
   encounter time, so [lock_writes] is skipped and — crucially — the
   failure paths below must NOT release the write set: an aborting eager
   attempt still owns in-place (undo-logged) values that
   [release_policy_state] has to roll back before unlocking, and it runs
   on every abort path of [run_top].  Read-locking policies skip read
   validation ([commit_validate]) and drop their visible-reader counts in
   the same [release_policy_state], after the commit published. *)
let commit_top ?(run_handlers = true) top =
  let eager = top.pol.p_acquire = Acq_eager in
  let handlers = if run_handlers then List.rev top.commit_handlers else [] in
  if handlers = [] then
    if top.wlen = 0 then begin
      (* Pure read-only fast path: no locks, no regions, no clock. *)
      if not (commit_validate top) then raise Conflict_exn;
      chaos Chaos_in_commit;
      if not (Atomic.compare_and_set top.top_status Active Committing) then
        raise Remote_aborted_exn;
      finish_read_only top;
      release_policy_state top ~committed:true
    end
    else begin
      if not eager then lock_writes top;
      (try
         if not (commit_validate top) then raise Conflict_exn;
         chaos Chaos_in_commit;
         if not (Atomic.compare_and_set top.top_status Active Committing) then
           raise Remote_aborted_exn
       with e ->
         if not eager then release_locks top top.wlen;
         raise e);
      publish_and_finish top;
      release_policy_state top ~committed:true
    end
  else if top.wlen = 0 && List.for_all (fun h -> h.ch_read_only ()) handlers
  then begin
    (* Semantic read-only fast path: the collections buffered no
       mutations, so prepare would detect nothing and apply only releases
       semantic read locks — no commit regions are pre-acquired and the
       clock stays untouched.  The applies take their own [critical]
       sections, which is all lock release needs. *)
    if not (commit_validate top) then raise Conflict_exn;
    chaos Chaos_in_commit;
    if not (Atomic.compare_and_set top.top_status Active Committing) then
      raise Remote_aborted_exn;
    (* Commit point passed. *)
    let failures = run_applies 0 handlers in
    finish_read_only top;
    release_policy_state top ~committed:true;
    if failures <> [] then raise (Handler_failure { committed = true; failures })
  end
  else begin
    let regions = commit_regions handlers in
    List.iter region_lock regions;
    Fun.protect
      ~finally:(fun () -> List.iter region_unlock (List.rev regions))
      (fun () ->
        if not eager then lock_writes top;
        (try
           if not (commit_validate top) then raise Conflict_exn;
           chaos Chaos_in_commit;
           top.in_prepare <- true;
           List.iter
             (fun h ->
               match h.ch_prepare with Some p -> p () | None -> ())
             handlers;
           top.in_prepare <- false;
           if not (Atomic.compare_and_set top.top_status Active Committing)
           then raise Remote_aborted_exn
         with e ->
           top.in_prepare <- false;
           if not eager then release_locks top top.wlen;
           raise e);
        (* Commit point passed.  The publication window opens before the
           bump: a snapshot pin concurrent with this commit either waits
           out the chain publications below (tvar chains and the semantic
           shard chains the applies publish at [wv]) or pins above [wv].
           Every mutating commit draws a write version here — semantic-
           only commits included — because snapshot visibility is keyed
           off unique commit stamps. *)
        publish_window_enter ();
        let wv = bump_clock () in
        let failures = run_applies wv handlers in
        publish_writes top wv;
        publish_window_exit ();
        finish_commit top;
        release_policy_state top ~committed:true;
        if failures <> [] then
          raise (Handler_failure { committed = true; failures }))
  end

(* Newest-first: compensations undo in reverse registration order.  Every
   handler runs even if one raises; failures are counted and returned for
   the caller to surface as [Handler_failure]. *)
let run_abort_handlers t =
  List.rev
    (List.fold_left
       (fun acc h ->
         try
           h ();
           acc
         with e ->
           let s = my_stats () in
           s.s_handler_failures <- s.s_handler_failures + 1;
           e :: acc)
       [] t.abort_handlers)

let mark_aborted t = ignore (Atomic.compare_and_set t.top_status Active Aborted)

(* Run [f] as a fresh top-level transaction, retrying on conflicts and
   remote aborts under the contention policy until it commits or the
   budget (max retries / wall-clock deadline) is exhausted, which raises
   [Starved].  With [defer_handlers], commit handlers are not executed at
   commit; the caller (open nesting) migrates them to the suspended parent
   instead.

   The descriptor comes from the domain-local pool and is reset in place
   per attempt (fresh leased txn_id, cleared grow-only read/write sets),
   so the retry loop allocates nothing.  It is released back to the pool
   on every exit path — after compensation handlers have run, and with
   its handler lists intact for [open_nested] to migrate. *)
let run_top ?(defer_handlers = false) ?cm ?pol ?budget f =
  let ctx = context () in
  let cm = match cm with Some c -> c | None -> Atomic.get global_cm in
  let pol = match pol with Some p -> p | None -> Atomic.get global_tm_policy in
  let prio = fresh_prio () in
  let t0 =
    match budget with
    | Some { max_seconds = Some _; _ } -> Monoclock.now ()
    | _ -> 0.
  in
  (* [n] is the index of the attempt that would run next; called after
     attempt [n - 1] failed. *)
  let check_budget n =
    match budget with
    | None -> ()
    | Some b ->
        let elapsed =
          match b.max_seconds with
          | Some _ -> Monoclock.now () -. t0
          | None -> 0.
        in
        let over_retries =
          match b.max_retries with Some m -> n > m | None -> false
        in
        let over_time =
          match b.max_seconds with Some s -> elapsed > s | None -> false
        in
        if over_retries || over_time then begin
          let s = my_stats () in
          s.s_starved <- s.s_starved + 1;
          record_retries cm n;
          raise (Starved { attempts = n; elapsed })
        end
  in
  let t = acquire_top ~cm ~prio ~pol in
  (* In-flight accounting: the quiescence probe behind [reset_stats].  The
     increment/decrement bracket every exit path below (commit, starvation,
     explicit abort, escaping exception), always on the same domain, so a
     quiescent domain's count nets to zero. *)
  (my_stats ()).s_inflight <- (my_stats ()).s_inflight + 1;
  let abort_and_compensate () =
    mark_aborted t;
    (* Roll back policy-owned state (eager write locks, undo images,
       visible read locks) before compensations run: a compensation may
       start its own transaction against the same tvars. *)
    release_policy_state t ~committed:false;
    if defer_handlers then []
      (* Handlers registered inside an aborting open-nested transaction
         are discarded without running (paper §4); only a transaction that
         owns its handlers compensates. *)
    else run_abort_handlers t
  in
  let rec attempt n =
    reset_for_attempt t;
    t.retries <- n;
    ctx := t.self_opt;
    match
      chaos Chaos_attempt;
      let r = f () in
      chaos Chaos_before_commit;
      commit_top ~run_handlers:(not defer_handlers) t;
      r
    with
    | r ->
        ctx := None;
        record_retries cm n;
        adaptive_tick ();
        r
    | exception
        ((Conflict_exn | Child_conflict_exn | Remote_aborted_exn | Deferred_exn)
         as e) ->
        (let s = my_stats () in
         match e with
         | Remote_aborted_exn -> s.s_remote_aborts <- s.s_remote_aborts + 1
         | Deferred_exn -> () (* counted at the deferral site *)
         | _ -> s.s_conflict_aborts <- s.s_conflict_aborts + 1);
        ctx := None;
        let failures = abort_and_compensate () in
        if failures <> [] then
          raise (Handler_failure { committed = false; failures });
        check_budget (n + 1);
        cm_wait cm n;
        attempt (n + 1)
    | exception (Handler_failure _ as e)
      when Atomic.get t.top_status = Committed ->
        (* Our own commit completed; apply-handler failures surface after
           the fact, with the transaction's effects in place. *)
        ctx := None;
        record_retries cm n;
        raise e
    | exception Explicit_abort_exn ->
        let s = my_stats () in
        s.s_explicit_aborts <- s.s_explicit_aborts + 1;
        ctx := None;
        let failures = abort_and_compensate () in
        if failures <> [] then
          raise (Handler_failure { committed = false; failures });
        raise Aborted
    | exception e ->
        (* Any other exception aborts the transaction and propagates; a
           failure raised by a compensation handler is counted but the
           original exception wins. *)
        ctx := None;
        ignore (abort_and_compensate ());
        raise e
  in
  match attempt 0 with
  | r ->
      (my_stats ()).s_inflight <- (my_stats ()).s_inflight - 1;
      release_top t;
      (r, t)
  | exception e ->
      (my_stats ()).s_inflight <- (my_stats ()).s_inflight - 1;
      release_top t;
      raise e

let closed_nested_in parent f =
  let ctx = context () in
  let rec attempt n =
    let child = make_child parent in
    ctx := child.self_opt;
    match f () with
    | r ->
        (* Index-aware bulk append: entries the parent already holds are
           skipped in O(1). *)
        rs_append parent.reads child.reads;
        for i = 0 to child.wlen - 1 do
          let id = child.wids.(i) in
          if not (Hashtbl.mem parent.writes id) then wids_insert parent id
        done;
        Hashtbl.iter (fun k w -> Hashtbl.replace parent.writes k w) child.writes;
        parent.commit_handlers <- child.commit_handlers @ parent.commit_handlers;
        parent.abort_handlers <- child.abort_handlers @ parent.abort_handlers;
        ctx := parent.self_opt;
        r
    | exception Child_conflict_exn ->
        (* Partial rollback: only the child's tentative state is dropped. *)
        ctx := parent.self_opt;
        cm_wait parent.top.cm n;
        attempt (n + 1)
    | exception e ->
        ctx := parent.self_opt;
        raise e
  in
  attempt 0

let atomic ?policy ?tm_policy ?budget ?on_starved f =
  if Types.in_snapshot () then
    invalid_arg "Stm.atomic: inside a snapshot read section";
  match !(context ()) with
  | None -> (
      match on_starved with
      | None -> fst (run_top ?cm:policy ?pol:tm_policy ?budget f)
      | Some fallback -> (
          try fst (run_top ?cm:policy ?pol:tm_policy ?budget f)
          with Starved _ -> fallback ()))
  | Some parent ->
      (* Closed nesting with partial rollback is a default-policy
         optimisation: visible read locks and in-place undo state are
         owned per top-level attempt, so the other policies run nested
         bodies flattened (subsumption) — a child conflict retries the
         whole top level, which [run_top] already does. *)
      if parent.top.strategy == strategy_lazy_rv_wb then
        closed_nested_in parent f
      else f ()

let closed_nested f = atomic f

(* Starvation fallback: run [f] as a transaction while holding the
   process-wide fallback commit region for the whole attempt, so
   serialised fallbacks never contend with each other.  The fallback
   region has the smallest rid, so holding it while the commit acquires
   collection regions preserves the global acquisition order. *)
let serialised f =
  if in_txn () then f ()
  else begin
    region_lock global_commit_region;
    Fun.protect
      ~finally:(fun () -> region_unlock global_commit_region)
      (fun () -> fst (run_top f))
  end

(* ------------------------------------------------------------------ *)
(* Admission control: a process-wide token-bucket gate in front of
   [atomic], plus an overload policy deciding what happens to traffic the
   gate (or a transaction budget) rejects.

   Open-loop traffic does not slow down when the system saturates — the
   arrival rate is set by the outside world.  Without a gate, offered load
   past the knee of the throughput/latency curve makes every queue grow
   without bound: p99 explodes and goodput (requests completing within
   their deadline) collapses even though raw commit throughput looks
   fine.  The gate holds admitted load at a configured sustainable rate:

   - [Shed]: overflow is rejected immediately with the typed
     [Overloaded] exception and counted in [s_shed].  Admitted requests
     run at the configured rate and keep pre-knee latency.
   - [Serialise]: overflow is routed through [serialised] — the
     process-wide fallback commit region — so excess transactions trickle
     through one at a time instead of amplifying contention.  Nothing is
     rejected, at the price of overflow latency.

   The same overload policy is wired through PR 2's transaction budgets:
   an *admitted* transaction that exhausts its retry/time budget
   ([Starved]) is handed to the overload path instead of surfacing the
   starvation — under contention storms Shed converts starvation into
   typed rejections and Serialise into guaranteed (serial) completion.

   Exactly one of [s_admitted] / [s_shed] / [s_serialised_overflow] is
   incremented per [Admission.run] call, so the three counters ledger
   against offered load. *)

module Admission = struct
  type overload_policy = Shed | Serialise

  let policy_name = function Shed -> "shed" | Serialise -> "serialise"

  type gate = {
    g_rate : float; (* tokens per second *)
    g_burst : float; (* bucket capacity *)
    g_policy : overload_policy;
    g_budget : budget option; (* default budget for admitted transactions *)
    g_lock : Mutex.t;
    mutable g_tokens : float;
    mutable g_last : float;
  }

  let gate : gate option Atomic.t = Atomic.make None

  let configure ?(burst = 64) ?budget ~rate ~policy () =
    if rate <= 0. then
      invalid_arg "Stm.Admission.configure: rate must be positive";
    Atomic.set gate
      (Some
         {
           g_rate = rate;
           g_burst = float_of_int (max 1 burst);
           g_policy = policy;
           g_budget = budget;
           g_lock = Mutex.create ();
           g_tokens = float_of_int (max 1 burst);
           g_last = Monoclock.now ();
         })

  let disable () = Atomic.set gate None
  let enabled () = Option.is_some (Atomic.get gate)

  let current_policy () =
    Option.map (fun g -> g.g_policy) (Atomic.get gate)

  (* Lazy refill under the gate mutex: the bucket is a contended shared
     resource by design (it *is* the throttle), and the critical section
     is a handful of float operations. *)
  let try_admit g =
    Mutex.protect g.g_lock (fun () ->
        let now = Monoclock.now () in
        (* The clock is clamped monotone, but the refill keeps its own
           guard: a gate configured on one domain and refilled on another
           orders [g_last] through the gate mutex, not the clock CAS, so
           never let a stale reading drain the bucket. *)
        let tokens =
          Float.min g.g_burst
            (g.g_tokens +. (Float.max 0. (now -. g.g_last) *. g.g_rate))
        in
        g.g_last <- now;
        if tokens >= 1.0 then begin
          g.g_tokens <- tokens -. 1.0;
          true
        end
        else begin
          g.g_tokens <- tokens;
          false
        end)

  let overflow g f =
    let s = my_stats () in
    match g.g_policy with
    | Shed ->
        s.s_shed <- s.s_shed + 1;
        raise Overloaded
    | Serialise ->
        s.s_serialised_overflow <- s.s_serialised_overflow + 1;
        serialised f

  (* Gated [atomic].  No gate configured -> plain [atomic].  Calls from
     inside a transaction are never gated (the enclosing top level was
     already admitted): they run as ordinary nested transactions. *)
  let run ?policy ?tm_policy ?budget f =
    match Atomic.get gate with
    | None -> atomic ?policy ?tm_policy ?budget f
    | Some _ when in_txn () -> atomic ?policy ?tm_policy ?budget f
    | Some g ->
        if try_admit g then begin
          let budget =
            match budget with Some _ -> budget | None -> g.g_budget
          in
          match atomic ?policy ?tm_policy ?budget f with
          | r ->
              let s = my_stats () in
              s.s_admitted <- s.s_admitted + 1;
              r
          | exception Starved _ -> overflow g f
          | exception e ->
              (* A user exception escaping an admitted transaction still
                 consumed the admission: count it before re-raising, so
                 exactly one ledger column is incremented per call even on
                 the failure path. *)
              let s = my_stats () in
              s.s_admitted <- s.s_admitted + 1;
              raise e
        end
        else overflow g f

  let admitted () = stats_sum (fun s -> s.s_admitted)
  let shed () = stats_sum (fun s -> s.s_shed)
  let serialised_overflow () = stats_sum (fun s -> s.s_serialised_overflow)
end

let open_nested f =
  let ctx = context () in
  match !ctx with
  | None -> fst (run_top f)
  | Some parent ->
      ctx := None;
      (* [run_top] returns the (pooled) descriptor with its handler lists
         intact; they are migrated here, on the same domain, before any
         other transaction can re-acquire the descriptor. *)
      (match run_top ~defer_handlers:true f with
      | r, open_txn ->
          ctx := parent.self_opt;
          (* Handlers registered inside the open-nested transaction become
             the parent's responsibility once the open transaction commits
             (paper §4, "Commit and abort handlers"). *)
          parent.commit_handlers <-
            open_txn.commit_handlers @ parent.commit_handlers;
          parent.abort_handlers <- open_txn.abort_handlers @ parent.abort_handlers;
          r
      | exception e ->
          ctx := parent.self_opt;
          raise e)

(* ------------------------------------------------------------------ *)
(* Snapshot reads: the abort-free read-only mode.  [snapshot f] pins a
   snapshot timestamp once (see [Types.snap_pin] for the protocol and its
   correctness argument) and runs [f] with the pin recorded in
   domain-local state: every [Tvar.get] and every collection read inside
   resolves against the version chains at the pinned stamp — no read-set,
   no validation, no commit regions, no clock interaction on exit, and no
   possible abort.  Multi-collection and cross-interval reads inside one
   snapshot observe a single prefix-consistent committed state.

   Writes are rejected ([Tvar.set] and the collections' mutating
   operations raise [Invalid_argument]), as is entering from inside a
   transaction — a transaction's store buffer could not be reconciled
   with a frozen timestamp.  Nested snapshots share the outer pin. *)

let in_snapshot = Types.in_snapshot
let snapshot_stamp = Types.snapshot_stamp
let version_chain_bound = Types.version_chain_bound

let snapshot f =
  if in_txn () then invalid_arg "Stm.snapshot: inside a transaction";
  let st = Domain.DLS.get snap_key in
  if st.snap_depth > 0 then begin
    st.snap_depth <- st.snap_depth + 1;
    Fun.protect ~finally:(fun () -> st.snap_depth <- st.snap_depth - 1) f
  end
  else begin
    let ts = snap_pin () in
    st.snap_ts <- ts;
    st.snap_depth <- 1;
    Fun.protect
      ~finally:(fun () ->
        st.snap_depth <- 0;
        snap_unpin ();
        let s = my_stats () in
        s.s_commits <- s.s_commits + 1;
        s.s_ro_commits <- s.s_ro_commits + 1;
        s.s_snapshot_reads <- s.s_snapshot_reads + 1;
        adaptive_tick ())
      f
  end

let retries () = match !(context ()) with None -> 0 | Some t -> t.top.retries

(* Total number of distinct read entries across the current nesting stack
   (0 outside a transaction).  Deduplication makes this the number of
   distinct tvars read, not the number of [Tvar.get] calls. *)
let read_set_cardinal () =
  match !(context ()) with
  | None -> 0
  | Some t ->
      let rec go acc t =
        let acc = acc + t.reads.r_len in
        match t.parent with None -> acc | Some p -> go acc p
      in
      go 0 t

(* ------------------------------------------------------------------ *)
(* Fault injection *)

module Chaos = struct
  type event = Types.chaos_event =
    | Chaos_attempt
    | Chaos_before_commit
    | Chaos_in_commit

  let set_hook h = Atomic.set chaos_hook h
end

(* ------------------------------------------------------------------ *)
(* Global statistics: lazy aggregation over the per-domain shards.  The
   totals are exact once the domains that produced them have been joined
   (the join is the happens-before edge); concurrent reads see a
   consistent-enough live snapshot. *)

type stats = {
  commits : int;
  read_only_commits : int;
  conflict_aborts : int;
  remote_aborts : int;
  explicit_aborts : int;
  starved : int;
  deferrals : int;
  remote_aborts_delivered : int;
  remote_aborts_late : int;
  handler_failures : int;
  clock_bumps : int;
  clock_cas_retries : int;
  snapshot_reads : int;
  versions_reclaimed : int;
  policy_switches : int;
  admitted : int;
  shed : int;
  serialised_overflow : int;
}

let global_stats () =
  {
    commits = stats_sum (fun s -> s.s_commits);
    read_only_commits = stats_sum (fun s -> s.s_ro_commits);
    conflict_aborts = stats_sum (fun s -> s.s_conflict_aborts);
    remote_aborts = stats_sum (fun s -> s.s_remote_aborts);
    explicit_aborts = stats_sum (fun s -> s.s_explicit_aborts);
    starved = stats_sum (fun s -> s.s_starved);
    deferrals = stats_sum (fun s -> s.s_deferrals);
    remote_aborts_delivered = stats_sum (fun s -> s.s_ra_delivered);
    remote_aborts_late = stats_sum (fun s -> s.s_ra_late);
    handler_failures = stats_sum (fun s -> s.s_handler_failures);
    clock_bumps = stats_sum (fun s -> s.s_clock_bumps);
    clock_cas_retries = stats_sum (fun s -> s.s_clock_cas_retries);
    snapshot_reads = stats_sum (fun s -> s.s_snapshot_reads);
    versions_reclaimed = stats_sum (fun s -> s.s_versions_reclaimed);
    policy_switches = stats_sum (fun s -> s.s_policy_switches);
    admitted = stats_sum (fun s -> s.s_admitted);
    shed = stats_sum (fun s -> s.s_shed);
    serialised_overflow = stats_sum (fun s -> s.s_serialised_overflow);
  }

let commit_region_waits () = stats_sum (fun s -> s.s_region_waits)
let regions_held () = stats_sum (fun s -> s.s_regions_held)

let retry_histogram () =
  [ Contention.default; Karma; Greedy ]
  |> List.map (fun p ->
         let i = policy_index p in
         let row = Array.make hist_buckets 0 in
         List.iter
           (fun s -> Array.iteri (fun b c -> row.(b) <- row.(b) + c) s.s_hist.(i))
           (all_stats ());
         (policy_name p, row))

(* Guarded reset: zeroing shards while another domain is mid-transaction
   would silently corrupt every aggregated counter (a commit recorded after
   the reset against aborts recorded before it), so refuse with a typed
   error instead.  The scan is exact when the in-flight transactions run on
   joined domains and conservative otherwise — a racing domain's increment
   may be missed, but callers holding the documented precondition (no
   concurrent transactions at all) never race. *)
let in_flight_transactions () = inflight_sum ()

let reset_stats () =
  let n = inflight_sum () in
  if n > 0 then raise (Not_quiescent { in_flight = n });
  stats_reset ()

(* ------------------------------------------------------------------ *)
(* TM_OPS instance for the transactional collection classes            *)

module Tm_ops : Tm_intf.TM_OPS with type txn = handle = struct
  type txn = handle

  let current = current
  let in_txn = in_txn
  let same_txn = same_txn
  let txn_id = txn_id

  type region = Types.region

  let new_region () = make_region ()
  let critical r f = region_critical r f
  let on_commit r h = on_top_commit_in (Some r) h
  let on_commit_prepared ?read_only ?regions r ~prepare ~apply =
    on_top_commit_prepared ?read_only ?regions r ~prepare ~apply
  let on_abort = on_top_abort
  let remote_abort = remote_abort
  let self_abort () = self_abort ()
  let retry () = retry_now ()
  let in_snapshot = Types.in_snapshot
  let snapshot_stamp = Types.snapshot_stamp

  let begin_publish () =
    publish_window_enter ();
    bump_clock ()

  let end_publish () = publish_window_exit ()
  let reclaim_epoch () = oldest_active_epoch ()
  let note_reclaimed = Types.note_reclaimed
  let version_chain_bound = Types.version_chain_bound

  let validate_policy ~support name =
    match tm_policy_of_name name with
    | None -> invalid_arg (Printf.sprintf "unknown TM policy %S" name)
    | Some p ->
        let reject axis =
          invalid_arg
            (Printf.sprintf
               "TM policy %s: this collection does not support %s" name axis)
        in
        if p.p_acquire = Acq_eager && not support.Tm_intf.ps_eager_acquire
        then reject "encounter-time acquisition";
        if p.p_read = Read_lock && not support.Tm_intf.ps_read_locking then
          reject "read locking";
        if p.p_version = Ver_undo && not support.Tm_intf.ps_undo_logging then
          reject "undo logging"

  let txn_policy_name () =
    match !(context ()) with
    | None -> (Atomic.get global_tm_policy).p_name
    | Some t -> t.top.pol.p_name
end
