open Types

exception Aborted

type handle = txn

let context = context

(* Auto-commit context: an already-committed handle so that semantic lock
   owners recorded outside transactions never block anyone (remote_abort
   on it reports "already committed").  One per domain, cached in DLS —
   handles are only compared by txn_id and status, so sharing is safe. *)
let autocommit_handle_key : handle Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let t = make_top () in
      Atomic.set t.top_status Committed;
      t)

let current () =
  match !(context ()) with
  | Some t -> t.top
  | None -> Domain.DLS.get autocommit_handle_key

let in_txn () = Option.is_some !(context ())
let same_txn (a : handle) (b : handle) = a.txn_id = b.txn_id
let txn_id (t : handle) = t.txn_id

(* Handlers carry the commit region they operate on; [None] means the
   process-wide fallback region (plain [on_commit] callers). *)
let on_commit_in region h =
  match !(context ()) with
  | None -> h () (* auto-commit: the operation is its own transaction *)
  | Some t -> t.commit_handlers <- (region, h) :: t.commit_handlers

let on_commit h = on_commit_in None h

let on_abort h =
  match !(context ()) with
  | None -> () (* auto-commit transactions never abort *)
  | Some t -> t.abort_handlers <- h :: t.abort_handlers

(* Handler registration targeting the top-level transaction regardless of
   the current nesting depth: what the collection classes need, since lock
   ownership and compensation belong to the top-level outcome. *)
let on_top_commit_in region h =
  match !(context ()) with
  | None -> h ()
  | Some t ->
      let top = t.top in
      top.commit_handlers <- (region, h) :: top.commit_handlers

let on_top_commit h = on_top_commit_in None h

let on_top_abort h =
  match !(context ()) with
  | None -> ()
  | Some t ->
      let top = t.top in
      top.abort_handlers <- h :: top.abort_handlers

let self_abort () =
  match !(context ()) with
  | None -> invalid_arg "Stm.self_abort: no enclosing transaction"
  | Some _ -> raise Explicit_abort_exn

(* Abort and retry the current top-level transaction transparently. *)
let retry_now () =
  match !(context ()) with
  | None -> invalid_arg "Stm.retry_now: no enclosing transaction"
  | Some _ -> raise Conflict_exn

let remote_abort (t : handle) =
  let rec go () =
    match Atomic.get t.top_status with
    | Active ->
        if Atomic.compare_and_set t.top_status Active Aborted then true
        else go ()
    | Aborted -> true
    | Committing | Committed -> false
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Commit machinery                                                    *)

let release_locks acquired = List.iter (fun (vl, old) -> Atomic.set vl old) acquired

(* Acquire write locks in tv_id order (no deadlock), spinning a bounded
   number of times on each before declaring a conflict.  [wids_sorted] is
   maintained at insertion, so no per-attempt fold+sort is needed. *)
let lock_writes top =
  let rec acquire acc = function
    | [] -> acc
    | id :: rest ->
        let (W (tv, _)) = Hashtbl.find top.writes id in
        let rec try_lock spins =
          let cur = Atomic.get tv.vlock in
          if locked cur then
            if spins = 0 then None
            else begin
              Domain.cpu_relax ();
              try_lock (spins - 1)
            end
          else if Atomic.compare_and_set tv.vlock cur (cur + 1) then Some cur
          else try_lock spins
        in
        (match try_lock 1024 with
        | None ->
            release_locks acc;
            raise Conflict_exn
        | Some old -> acquire ((tv.vlock, old) :: acc) rest)
  in
  acquire [] top.wids_sorted

let validate_reads top =
  let rs = top.reads in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < rs.r_len do
    if not (rentry_valid ~self:(Some top) rs.r_arr.(!i)) then ok := false;
    incr i
  done;
  !ok

(* The rid-sorted, deduplicated set of commit regions the transaction's
   handlers touch.  Handlers registered without a region serialise on the
   process-wide fallback. *)
let commit_regions handlers =
  let add acc r = if List.exists (fun r' -> r'.rid = r.rid) acc then acc else r :: acc in
  List.fold_left
    (fun acc (r, _) -> add acc (Option.value r ~default:global_commit_region))
    [] handlers
  |> List.sort (fun a b -> compare a.rid b.rid)

(* Commit a top-level transaction.  When [run_handlers] is set and the
   transaction registered handlers, the whole sequence

     lock write set -> validate reads -> flip to Committing ->
     run commit handlers -> publish memory writes -> Committed

   executes while holding the commit regions of every collection the
   handlers touch (acquired in rid order, hence deadlock-free), making the
   handlers' semantic conflict checks and buffer application atomic with
   the memory-level commit (multi-level transaction commit).  Commits whose
   handlers touch disjoint collections hold disjoint regions and proceed in
   parallel.  Commit handlers must not access tvars: the collection classes
   operate on their wrapped structures inside [critical] regions instead
   (the region locks are reentrant, so a handler re-entering its own
   region's [critical] is fine). *)
let commit_top ?(run_handlers = true) top =
  let attempt () =
    let acquired = lock_writes top in
    if not (validate_reads top) then begin
      release_locks acquired;
      raise Conflict_exn
    end;
    if not (Atomic.compare_and_set top.top_status Active Committing) then begin
      release_locks acquired;
      raise Remote_aborted_exn
    end;
    if run_handlers then
      List.iter (fun (_, h) -> h ()) (List.rev top.commit_handlers);
    (* Transactions with no memory writes need no write version: skipping
       the clock bump keeps pure-semantic commits off the shared clock
       cache line entirely. *)
    if top.wids_sorted <> [] then begin
      let wv = Atomic.fetch_and_add clock 2 + 2 in
      Hashtbl.iter (fun _ (W (tv, v)) -> Atomic.set tv.value v) top.writes;
      List.iter (fun (vl, _) -> Atomic.set vl wv) acquired;
      ring_publish wv (Array.of_list top.wids_sorted)
    end;
    Atomic.set top.top_status Committed;
    Atomic.incr stat_commits
  in
  if run_handlers && top.commit_handlers <> [] then begin
    let regions = commit_regions top.commit_handlers in
    List.iter region_lock regions;
    Fun.protect
      ~finally:(fun () -> List.iter region_unlock (List.rev regions))
      attempt
  end
  else attempt ()

let run_abort_handlers t =
  (* Newest-first: compensations undo in reverse registration order. *)
  List.iter (fun h -> h ()) t.abort_handlers

let mark_aborted t = ignore (Atomic.compare_and_set t.top_status Active Aborted)

(* Run [f] as a fresh top-level transaction, retrying on conflicts and
   remote aborts with exponential backoff.  With [defer_handlers], commit
   handlers are not executed at commit; the caller (open nesting) migrates
   them to the suspended parent instead. *)
let run_top ?(defer_handlers = false) f =
  let ctx = context () in
  let rec attempt n =
    let t = make_top () in
    t.retries <- n;
    ctx := Some t;
    match
      let r = f () in
      commit_top ~run_handlers:(not defer_handlers) t;
      r
    with
    | r ->
        ctx := None;
        (r, t)
    | exception ((Conflict_exn | Child_conflict_exn | Remote_aborted_exn) as e)
      ->
        (match e with
        | Remote_aborted_exn -> Atomic.incr stat_remote_aborts
        | _ -> Atomic.incr stat_conflict_aborts);
        ctx := None;
        mark_aborted t;
        (* Handlers registered inside an aborting open-nested transaction
           are discarded without running (paper §4); only a transaction that
           owns its handlers compensates. *)
        if not defer_handlers then run_abort_handlers t;
        backoff n;
        attempt (n + 1)
    | exception Explicit_abort_exn ->
        Atomic.incr stat_explicit_aborts;
        ctx := None;
        mark_aborted t;
        if not defer_handlers then run_abort_handlers t;
        raise Aborted
    | exception e ->
        (* Any other exception aborts the transaction and propagates. *)
        ctx := None;
        mark_aborted t;
        if not defer_handlers then run_abort_handlers t;
        raise e
  in
  attempt 0

let closed_nested_in parent f =
  let ctx = context () in
  let rec attempt n =
    let child = make_child parent in
    ctx := Some child;
    match f () with
    | r ->
        (* Index-aware bulk append: entries the parent already holds are
           skipped in O(1). *)
        rs_append parent.reads child.reads;
        let new_ids =
          List.filter (fun id -> not (Hashtbl.mem parent.writes id)) child.wids_sorted
        in
        Hashtbl.iter (fun k w -> Hashtbl.replace parent.writes k w) child.writes;
        if new_ids <> [] then
          parent.wids_sorted <- List.merge compare parent.wids_sorted new_ids;
        parent.commit_handlers <- child.commit_handlers @ parent.commit_handlers;
        parent.abort_handlers <- child.abort_handlers @ parent.abort_handlers;
        ctx := Some parent;
        r
    | exception Child_conflict_exn ->
        (* Partial rollback: only the child's tentative state is dropped. *)
        ctx := Some parent;
        backoff n;
        attempt (n + 1)
    | exception e ->
        ctx := Some parent;
        raise e
  in
  attempt 0

let atomic f =
  match !(context ()) with
  | None -> fst (run_top f)
  | Some parent -> closed_nested_in parent f

let closed_nested = atomic

let open_nested f =
  let ctx = context () in
  match !ctx with
  | None -> fst (run_top f)
  | Some parent ->
      ctx := None;
      (match run_top ~defer_handlers:true f with
      | r, open_txn ->
          ctx := Some parent;
          (* Handlers registered inside the open-nested transaction become
             the parent's responsibility once the open transaction commits
             (paper §4, "Commit and abort handlers"). *)
          parent.commit_handlers <-
            open_txn.commit_handlers @ parent.commit_handlers;
          parent.abort_handlers <- open_txn.abort_handlers @ parent.abort_handlers;
          r
      | exception e ->
          ctx := Some parent;
          raise e)

let retries () = match !(context ()) with None -> 0 | Some t -> t.top.retries

(* Total number of distinct read entries across the current nesting stack
   (0 outside a transaction).  Deduplication makes this the number of
   distinct tvars read, not the number of [Tvar.get] calls. *)
let read_set_cardinal () =
  match !(context ()) with
  | None -> 0
  | Some t ->
      let rec go acc t =
        let acc = acc + t.reads.r_len in
        match t.parent with None -> acc | Some p -> go acc p
      in
      go 0 t

(* ------------------------------------------------------------------ *)
(* Global statistics                                                    *)

type stats = {
  commits : int;
  conflict_aborts : int;
  remote_aborts : int;
  explicit_aborts : int;
}

let global_stats () =
  {
    commits = Atomic.get stat_commits;
    conflict_aborts = Atomic.get stat_conflict_aborts;
    remote_aborts = Atomic.get stat_remote_aborts;
    explicit_aborts = Atomic.get stat_explicit_aborts;
  }

let commit_region_waits () = Atomic.get stat_region_waits

let reset_stats () =
  Atomic.set stat_commits 0;
  Atomic.set stat_conflict_aborts 0;
  Atomic.set stat_remote_aborts 0;
  Atomic.set stat_explicit_aborts 0;
  Atomic.set stat_region_waits 0

(* ------------------------------------------------------------------ *)
(* TM_OPS instance for the transactional collection classes            *)

module Tm_ops : Tm_intf.TM_OPS with type txn = handle = struct
  type txn = handle

  let current = current
  let in_txn = in_txn
  let same_txn = same_txn
  let txn_id = txn_id

  type region = Types.region

  let new_region () = make_region ()
  let critical r f = region_critical r f
  let on_commit r h = on_top_commit_in (Some r) h
  let on_abort = on_top_abort
  let remote_abort = remote_abort
  let self_abort () = self_abort ()
  let retry () = retry_now ()
end
