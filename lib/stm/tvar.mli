(** Transactional variables: the unit of memory-level conflict detection in
    the host software TM.  Inside a transaction, [get] records a read
    dependency validated at commit and [set] buffers the write in a redo log;
    outside any transaction both act as linearisable single-word operations. *)

type 'a t

val make : 'a -> 'a t
val id : 'a t -> int

val get : 'a t -> 'a
(** May raise internal conflict exceptions that are handled by
    {!Stm.atomic}'s retry loop; user code never observes them.  Inside a
    {!Stm.snapshot} section, resolves against the tvar's version chain at
    the pinned snapshot timestamp — lock-free and abort-free. *)

val set : 'a t -> 'a -> unit
(** Raises [Invalid_argument] inside a {!Stm.snapshot} section: snapshot
    reads are strictly read-only. *)

val modify : 'a t -> ('a -> 'a) -> unit

val history_length : 'a t -> int
(** Number of committed versions currently retained in this tvar's version
    chain (introspection for reclamation tests and leak probes).  At most
    {!Stm.version_chain_bound} once the oldest snapshot-reader epoch has
    advanced past the excess versions. *)
