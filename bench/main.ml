(* Benchmark and experiment driver: regenerates every table and figure of
   the paper's evaluation plus the ablations, and runs Bechamel
   micro-benchmarks of the host implementation.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- fig1    -- one experiment
     targets: table1 table2 table3 table4 table5 table6 table7 table8 table9
              fig1 fig2 fig3 fig4 ablation hostmap jbbhost queue micro
              stmscale openloop chaos failover starve

   Figures print simulated-cycle speedups normalised to the 1-CPU
   lock-based run, with violation counts underneath (see EXPERIMENTS.md for
   the paper-vs-measured comparison). *)

let ppf = Fmt.stdout

module Stm = Tcc_stm.Stm

let table1 () =
  Harness.Commute_spec.render_map_table ppf ();
  Fmt.pf ppf "read-only operations always commute: %b@."
    (Harness.Commute_spec.reads_commute ())

let table2 () = Harness.Locktables.render_table2 ppf ()

let table3 () =
  (* Dump a TransactionalMap's state inventory while a transaction holds
     locks and buffered writes — the live version of Table 3. *)
  let module M = Txcoll.Host.Map (Txcoll.Host.Int_hashed) in
  let m = M.create () in
  ignore (M.put m 1 10);
  ignore (M.put m 2 20);
  Fmt.pf ppf "@.Table 3 — TransactionalMap state (live, mid-transaction)@.";
  (try
     Stm.atomic (fun () ->
         ignore (M.find m 1);
         ignore (M.size m);
         ignore (M.put m 3 30);
         ignore (M.remove m 2);
         M.dump_state Fmt.stdout m;
         Stm.self_abort ())
   with Stm.Aborted -> ());
  Fmt.pf ppf "after abort:@.";
  M.dump_state Fmt.stdout m

let table4 () =
  Fmt.pf ppf
    "@.Table 4 — the SortedMap-specific rows (firstKey/lastKey/subMap) are@.";
  Fmt.pf ppf "checked in the same brute-force sweep as Table 1 (see table1).@."

let table6 () =
  let module SM = Txcoll.Host.Sorted_map (Txcoll.Host.Int_ordered) in
  let m = SM.create () in
  List.iter (fun k -> ignore (SM.put m k k)) [ 10; 20; 30 ];
  Fmt.pf ppf "@.Table 6 — TransactionalSortedMap state (live, mid-transaction)@.";
  (try
     Stm.atomic (fun () ->
         ignore (SM.first_key m);
         ignore
           (SM.fold_range (fun _ _ a -> a) m () ~lo:(Some 15) ~hi:(Some 25));
         ignore (SM.put m 25 25);
         SM.dump_state Fmt.stdout m;
         Stm.self_abort ())
   with Stm.Aborted -> ());
  Fmt.pf ppf "after abort:@.";
  SM.dump_state Fmt.stdout m

let table9 () =
  let module Q = Txcoll.Host.Queue in
  let q = Q.create () in
  Q.put q 1;
  Q.put q 2;
  Fmt.pf ppf "@.Table 9 — TransactionalQueue state (live, mid-transaction)@.";
  (try
     Stm.atomic (fun () ->
         ignore (Q.take q);
         Q.put q 3;
         Q.put q 4;
         Q.dump_state Fmt.stdout q;
         Stm.self_abort ())
   with Stm.Aborted -> ());
  Fmt.pf ppf "after abort (taken element restored, additions dropped):@.";
  Q.dump_state Fmt.stdout q

let table5 () = Harness.Locktables.render_table5 ppf ()

let table7 () =
  Fmt.pf ppf "@.Table 7 — Channel conflict conditions (brute force)@.";
  List.iter
    (fun (pair, ok) ->
      Fmt.pf ppf "  %-24s condition %s@." pair
        (if ok then "verified" else "MISMATCH"))
    (Harness.Commute_spec.qcheck_all ())

let table8 () = Harness.Locktables.render_table8 ppf ()

let fig1 () = Harness.Figures.render ppf (Harness.Figures.figure1 ())
let fig2 () = Harness.Figures.render ppf (Harness.Figures.figure2 ())
let fig3 () = Harness.Figures.render ppf (Harness.Figures.figure3 ())
let fig4 () =
  Harness.Figures.render ppf (Jbb.Sim_jbb.figure4 ());
  (* Sanity check of the premise (§6.3): with standard SPECjbb2000 (one
     warehouse per thread) even the naive Baseline is embarrassingly
     parallel — the single warehouse, not transactions, is the stress. *)
  let cycles warehouses n =
    (Jbb.Sim_jbb.run ~warehouses ~variant:`Atomos_baseline ~n_cpus:n ())
      .Sim.Machine.cycles
  in
  let speedup w = float_of_int (cycles w 1) /. float_of_int (cycles w 8) in
  Fmt.pf ppf
    "@.premise check — Atomos Baseline speedup at 8 CPUs: single warehouse      %.2f, one warehouse per CPU %.2f@."
    (speedup `Single) (speedup `Per_cpu)

(* Defined below with the policy-matrix machinery (it needs the tvar
   workloads and the stmscale plumbing). *)
let ablation_extra : (unit -> unit) ref = ref (fun () -> ())

let ablation () =
  Harness.Ablations.(render ppf "isEmpty lock encoding (§5.1)" (isempty ()));
  Harness.Ablations.(render ppf "blind put (§5.1 Extensions)" (blind_put ()));
  Harness.Ablations.(render ppf "contention backoff" (backoff ()));
  Harness.Ablations.(
    render ppf "redo vs undo logging, host STM (cycles = elapsed µs; violations = retried attempts)"
      (redo_vs_undo ()));
  !ablation_extra ()

let hostmap () = Harness.Host_validation.(render ppf (run ()))
let queue () = Harness.Queue_bench.(render ppf (sweep ()))
let jbbhost () = Jbb.Host_jbb.(render ppf (compare_variants ()))

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the host implementation: per-operation
   costs of the STM and the wrappers.                                  *)

module Tvar = Tcc_stm.Tvar
module IM = Txcoll.Host.Map (Txcoll.Host.Int_hashed)

let micro () =
  let open Bechamel in
  let tv = Tvar.make 0 in
  let plain = Hashtbl.create 64 in
  let mutex = Mutex.create () in
  let tmap = IM.create () in
  for i = 0 to 63 do
    Hashtbl.replace plain i i;
    ignore (IM.put tmap i i)
  done;
  let tests =
    [
      Test.make ~name:"atomic-empty" (Staged.stage (fun () -> Stm.atomic ignore));
      Test.make ~name:"tvar-incr-in-atomic"
        (Staged.stage (fun () ->
             Stm.atomic (fun () -> Tvar.set tv (Tvar.get tv + 1))));
      Test.make ~name:"open-nested-incr"
        (Staged.stage (fun () ->
             Stm.atomic (fun () ->
                 Stm.open_nested (fun () -> Tvar.set tv (Tvar.get tv + 1)))));
      Test.make ~name:"mutex-hashtbl-find"
        (Staged.stage (fun () ->
             Mutex.protect mutex (fun () -> ignore (Hashtbl.find_opt plain 7))));
      Test.make ~name:"txmap-find-auto-commit"
        (Staged.stage (fun () -> ignore (IM.find tmap 7)));
      Test.make ~name:"txmap-find-in-txn"
        (Staged.stage (fun () ->
             Stm.atomic (fun () -> ignore (IM.find tmap 7))));
      Test.make ~name:"txmap-put-get-txn"
        (Staged.stage (fun () ->
             Stm.atomic (fun () ->
                 ignore (IM.put tmap 7 1);
                 ignore (IM.find tmap 7))));
    ]
  in
  let test = Test.make_grouped ~name:"micro" ~fmt:"%s %s" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances test in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let results = Analyze.merge ols instances results in
  Fmt.pf ppf "@.Micro-benchmarks (host STM, ns/op via OLS on monotonic clock)@.";
  Hashtbl.iter
    (fun _witness tbl ->
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> Fmt.pf ppf "  %-32s %10.1f ns/op@." name t
          | _ -> Fmt.pf ppf "  %-32s (no estimate)@." name)
        tbl)
    results

(* ------------------------------------------------------------------ *)
(* Robustness: chaos soak matrix and forced-starvation comparison.  Both
   print a table, feed the robustness sections of BENCH_stm.json, and are
   run standalone by the CI chaos-soak job (non-zero exit on failure).  *)

let chaos_probs = [ 0.01; 0.05; 0.2 ]

(* CI runs the soak over an explicit seed matrix (CHAOS_SEEDS="1 2 3") so a
   red cell names the exact seed to replay locally. *)
let chaos_seeds =
  match Sys.getenv_opt "CHAOS_SEEDS" with
  | None | Some "" -> [ 1; 2; 3 ]
  | Some s ->
      String.split_on_char ' ' s
      |> List.filter (fun tok -> tok <> "")
      |> List.map int_of_string

(* CHAOS_TM_POLICY pins the whole soak matrix to one TM policy (a fixed
   name or "adaptive") — the replay knob printed in every failing soak's
   repro line, and the CI axis that re-runs the soak under non-default
   points of the policy matrix. *)
let chaos_tm_policy = Sys.getenv_opt "CHAOS_TM_POLICY"

let chaos_matrix ~ops_per_domain =
  List.concat_map
    (fun p ->
      List.concat_map
        (fun seed ->
          List.map
            (fun policy ->
              let r =
                Harness.Chaos.run_soak
                  (Harness.Chaos.default_soak ~policy
                     ?tm_policy:chaos_tm_policy ~domains:2 ~ops_per_domain
                     ~seed p)
              in
              (p, seed, policy, r))
            [ Stm.Contention.default; Stm.Contention.Greedy ])
        chaos_seeds)
    chaos_probs

(* Snapshot-reader prefix-consistency soak: one seeded run per CI seed,
   writers under injection committing mirror map/sorted pairs while a
   snapshot reader checks every section for torn reads. *)
let snapshot_soak_matrix ~ops_per_domain =
  List.map
    (fun seed ->
      ( seed,
        Harness.Chaos.run_snapshot_soak
          (Harness.Chaos.default_soak ?tm_policy:chaos_tm_policy ~domains:2
             ~ops_per_domain ~key_space:48 ~seed 0.05) ))
    chaos_seeds

let chaos () =
  let rows = chaos_matrix ~ops_per_domain:800 in
  Fmt.pf ppf "@.Chaos soak (2 domains, map+sorted+queue, seeded injection)@.";
  Fmt.pf ppf "  %5s %5s %-8s %6s %-10s %s@." "p" "seed" "policy" "ok"
    "committed" "injections (conflict/remote/handler/delay)";
  let failed = ref false in
  List.iter
    (fun (p, seed, policy, (r : Harness.Chaos.soak_report)) ->
      if not r.ok then failed := true;
      let c, ra, hf, d = r.injections in
      Fmt.pf ppf "  %5.2f %5d %-8s %6b %10d %d/%d/%d/%d@." p seed
        (Stm.Contention.name policy)
        r.ok r.committed c ra hf d;
      List.iter (fun e -> Fmt.pf ppf "        FAILED: %s@." e) r.errors)
    rows;
  Fmt.pf ppf
    "@.Snapshot-reader soak (2 writer domains + 1 snapshot reader, mirror \
     writes)@.";
  List.iter
    (fun (seed, (r : Harness.Chaos.snapshot_soak_report)) ->
      if not r.sn_ok then failed := true;
      Fmt.pf ppf "  seed %d: %a@." seed Harness.Chaos.pp_snapshot_report r)
    (snapshot_soak_matrix ~ops_per_domain:800);
  Fmt.pf ppf
    "@.Derived-collection soak (spec-derived set+bag+pq+counter, seeded \
     injection)@.";
  List.iter
    (fun seed ->
      let r =
        Harness.Chaos.run_derived_soak
          (Harness.Chaos.default_soak ?tm_policy:chaos_tm_policy ~domains:2
             ~ops_per_domain:800 ~seed 0.05)
      in
      if not r.ok then failed := true;
      let c, ra, hf, d = r.injections in
      Fmt.pf ppf "  seed %d: ok %b committed %d injections %d/%d/%d/%d@." seed
        r.ok r.committed c ra hf d;
      List.iter (fun e -> Fmt.pf ppf "        FAILED: %s@." e) r.errors)
    chaos_seeds;
  if !failed then begin
    Fmt.pf ppf "  CHAOS SOAK FAILED@.";
    exit 1
  end
  else Fmt.pf ppf "  all runs converged; no leaked locks or regions@."

(* Failover soak: kill/recover a master place mid-traffic, per seed and
   replication mode.  The same rows feed the "failover" and
   "replication_lag" sections of BENCH_stm.json and the standalone CI
   failover job (non-zero exit on failure). *)
let failover_modes = [ Places.Eager; Places.Lazy { max_lag = 8 } ]

let failover_lag_bound = function
  | Places.Eager -> 0
  | Places.Lazy { max_lag } -> max_lag

let failover_matrix ~ops_per_domain =
  List.concat_map
    (fun mode ->
      List.map
        (fun seed ->
          ( mode,
            seed,
            Harness.Chaos.run_failover_soak
              (Harness.Chaos.default_failover ~domains:2 ~ops_per_domain
                 ~places:4 ~key_space:192 ~kills:3 ~mode ~seed 0.05) ))
        chaos_seeds)
    failover_modes

let failover () =
  Fmt.pf ppf
    "@.Failover soak (kill/recover a master place mid-traffic, 2 writer \
     domains + snapshot reader)@.";
  let failed = ref false in
  List.iter
    (fun (mode, seed, (r : Harness.Chaos.failover_report)) ->
      if not r.fv_ok then failed := true;
      Fmt.pf ppf "  mode=%-5s seed=%d: %a@."
        (Harness.Chaos.mode_name mode)
        seed Harness.Chaos.pp_failover_report r)
    (failover_matrix ~ops_per_domain:1200);
  if !failed then begin
    Fmt.pf ppf "  FAILOVER SOAK FAILED@.";
    exit 1
  end
  else
    Fmt.pf ppf
      "  all runs converged: zero lost committed writes, lag within bound@."

let starve_rows () =
  let budget = { Stm.max_retries = Some 12; max_seconds = None } in
  [
    Harness.Starvation.run ~policy:Stm.Contention.default ~budget ~rounds:20 ();
    Harness.Starvation.run ~policy:Stm.Contention.Karma ~budget ~rounds:20 ();
    Harness.Starvation.run ~policy:Stm.Contention.Greedy ~rounds:20 ();
  ]

let starve () =
  Fmt.pf ppf
    "@.Forced starvation (1 long writer vs 3 short writers, same keys)@.";
  let rows = starve_rows () in
  List.iter (fun r -> Fmt.pf ppf "  %a@." Harness.Starvation.pp_report r) rows;
  match List.rev rows with
  | greedy :: _ ->
      if greedy.Harness.Starvation.completed <> greedy.Harness.Starvation.rounds
         || greedy.Harness.Starvation.starved <> 0
      then begin
        Fmt.pf ppf "  GREEDY POLICY FAILED TO PREVENT STARVATION@.";
        exit 1
      end
      else Fmt.pf ppf "  greedy: starvation-free as required@."
  | [] -> ()

(* ------------------------------------------------------------------ *)
(* STM commit-throughput scaling: transactions committing into per-domain
   collections (disjoint: each commit holds only its own collection's
   region) versus one shared collection (commits serialise on its region).
   Results go to BENCH_stm.json so every later perf PR has a recorded
   trajectory. *)

type stmscale_row = {
  workload : string;
  domains : int;
  total_txns : int;
  elapsed_s : float;
  commits_per_s : float;
  p99_us : float;
  region_waits : int;
  aborts : int;
  minor_words_per_commit : float;
  clock_bumps : int;
  read_only_commits : int;
  snapshot_reads : int;
}

(* Key range of the read workloads: every read finds one key of a shared
   prepopulated map.  "read_only" runs each find in [Stm.snapshot] — the
   abort-free multi-version mode: no validation, no commit region, no
   clock interaction, so its rows must report region_waits = 0 and
   aborts = 0 at every domain count (CI-gated).  "read_mostly" is the
   95/5 mix: 19 snapshot finds per one small write transaction. *)
let ro_keys = 1024

let stat_aborts (s : Stm.stats) =
  s.conflict_aborts + s.remote_aborts + s.explicit_aborts

let stmscale_run ~workload ~domains ~txns_per_domain =
  (* [~stripes:1] keeps these workloads' historical meaning now that maps
     stripe by default: "shared" measures commits serialising on ONE
     region (the un-striped semantic layer), the baseline the semscale
     workload below is compared against.  The read workloads stay
     un-striped too: snapshot reads never touch regions, so striping
     could only mask a fast-path regression. *)
  let shared =
    match workload with
    | "shared" | "read_only" | "read_mostly" -> Some (IM.create ~stripes:1 ())
    | _ -> None
  in
  (match (workload, shared) with
  | ("read_only" | "read_mostly"), Some m ->
      for k = 0 to ro_keys - 1 do
        ignore (IM.put m k k)
      done
  | _ -> ());
  let op d (m : int IM.t) =
    match workload with
    | "read_only" ->
        fun i ->
          Stm.snapshot (fun () ->
              ignore (IM.find m (((d * 37) + i) land (ro_keys - 1))))
    | "read_mostly" ->
        fun i ->
          let k = ((d * 37) + i) land (ro_keys - 1) in
          if i mod 20 = 0 then Stm.atomic (fun () -> ignore (IM.put m k i))
          else Stm.snapshot (fun () -> ignore (IM.find m k))
    | _ ->
        fun i ->
          Stm.atomic (fun () ->
              let k = (d * txns_per_domain) + i in
              ignore (IM.put m k i);
              if i > 1 then ignore (IM.find m (k - 1)))
  in
  Stm.reset_stats ();
  let waits_before = Stm.commit_region_waits () in
  let stats_before = Stm.global_stats () in
  let t0 = Unix.gettimeofday () in
  (* [Gc.minor_words] is domain-local: each worker measures its own
     allocation delta around the workload and returns it through join,
     along with its per-transaction latencies (preallocated float array;
     the constant timing overhead is identical across workloads). *)
  let ds =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            let m = match shared with Some m -> m | None -> IM.create () in
            let f = op d m in
            let lat = Array.make txns_per_domain 0. in
            let w0 = Gc.minor_words () in
            for i = 1 to txns_per_domain do
              let s = Unix.gettimeofday () in
              f i;
              lat.(i - 1) <- Unix.gettimeofday () -. s
            done;
            (Gc.minor_words () -. w0, lat)))
  in
  let results = List.map Domain.join ds in
  let elapsed = Unix.gettimeofday () -. t0 in
  let words = List.fold_left (fun acc (w, _) -> acc +. w) 0. results in
  let p99_us = Harness.Hdr.p99_us (List.map snd results) in
  let stats_after = Stm.global_stats () in
  let total = domains * txns_per_domain in
  {
    workload;
    domains;
    total_txns = total;
    elapsed_s = elapsed;
    commits_per_s = float_of_int total /. elapsed;
    p99_us;
    region_waits = Stm.commit_region_waits () - waits_before;
    aborts = stat_aborts stats_after - stat_aborts stats_before;
    minor_words_per_commit = words /. float_of_int total;
    clock_bumps = stats_after.clock_bumps - stats_before.clock_bumps;
    read_only_commits =
      stats_after.read_only_commits - stats_before.read_only_commits;
    snapshot_reads =
      stats_after.snapshot_reads - stats_before.snapshot_reads;
  }

(* Same-collection scaling: every domain hammers its own disjoint key
   partition of ONE shared striped map.  The partitions are pre-populated,
   so the steady-state transaction is an update of a present key — its
   commit plan is the key's stripe region alone, and commits into
   different stripes proceed in parallel.  This is the workload the
   semantic-layer striping exists for; before striping it serialised on
   the collection's single region exactly like "shared". *)

type semscale_row = {
  ss_stripes : int;
  ss_domains : int;
  ss_total_txns : int;
  ss_elapsed_s : float;
  ss_commits_per_s : float;
  ss_p99_us : float;
  ss_region_waits : int;
}

let semscale_stripes = 32
let semscale_keys_per_domain = 1024

let semscale_run ~stripes ~domains ~txns_per_domain =
  let m = IM.create ~stripes () in
  for d = 0 to domains - 1 do
    for i = 0 to semscale_keys_per_domain - 1 do
      ignore (IM.put m ((d * semscale_keys_per_domain) + i) 0)
    done
  done;
  let waits_before = Stm.commit_region_waits () in
  let t0 = Unix.gettimeofday () in
  let ds =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            (* Preallocated latency buffer: the measurement loop allocates
               nothing of its own beyond the transactions it times. *)
            let lat = Array.make txns_per_domain 0. in
            let base = d * semscale_keys_per_domain in
            for i = 0 to txns_per_domain - 1 do
              let k = base + (i land (semscale_keys_per_domain - 1)) in
              let s = Unix.gettimeofday () in
              Stm.atomic (fun () -> ignore (IM.put m k i));
              lat.(i) <- Unix.gettimeofday () -. s
            done;
            lat))
  in
  let lats = List.map Domain.join ds in
  let elapsed = Unix.gettimeofday () -. t0 in
  let p99_us = Harness.Hdr.p99_us lats in
  let total = domains * txns_per_domain in
  {
    ss_stripes = stripes;
    ss_domains = domains;
    ss_total_txns = total;
    ss_elapsed_s = elapsed;
    ss_commits_per_s = float_of_int total /. elapsed;
    ss_p99_us = p99_us;
    ss_region_waits = Stm.commit_region_waits () - waits_before;
  }

(* Same experiment over the sorted map: one shared
   TransactionalSortedMap, each domain overwriting its own disjoint key
   interval.  With B = 1 every commit serialises on the collection's
   single region; with interval splitters at the per-domain boundaries
   each writer's commit plan names only its own interval region, so
   disjoint-range writers commit in parallel. *)

module SOM = Txcoll.Host.Sorted_map (Txcoll.Host.Int_ordered)

type sortedscale_row = {
  so_workload : string;  (* "write" | "snapshot_read" *)
  so_intervals : int;
  so_domains : int;
  so_total_txns : int;
  so_elapsed_s : float;
  so_commits_per_s : float;
  so_p99_us : float;
  so_region_waits : int;
}

let sortedscale_intervals = 8
let sortedscale_keys_per_domain = 1024

let sortedscale_run ~intervals ~domains ~txns_per_domain =
  (* Splitters at the per-domain key-range boundaries: domain d's keys
     [d*K, (d+1)*K) land in interval d (for d < B). *)
  let splitters =
    List.init (intervals - 1) (fun i ->
        (i + 1) * sortedscale_keys_per_domain)
  in
  let m = SOM.create ~splitters () in
  for d = 0 to domains - 1 do
    for i = 0 to sortedscale_keys_per_domain - 1 do
      ignore (SOM.put m ((d * sortedscale_keys_per_domain) + i) 0)
    done
  done;
  let waits_before = Stm.commit_region_waits () in
  let t0 = Unix.gettimeofday () in
  let ds =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            let lat = Array.make txns_per_domain 0. in
            let base = d * sortedscale_keys_per_domain in
            for i = 0 to txns_per_domain - 1 do
              let k = base + (i land (sortedscale_keys_per_domain - 1)) in
              let s = Unix.gettimeofday () in
              (* Presence-preserving overwrite: the commit plan stays the
                 key's interval region alone. *)
              Stm.atomic (fun () -> ignore (SOM.put m k i));
              lat.(i) <- Unix.gettimeofday () -. s
            done;
            lat))
  in
  let lats = List.map Domain.join ds in
  let elapsed = Unix.gettimeofday () -. t0 in
  let p99_us = Harness.Hdr.p99_us lats in
  let total = domains * txns_per_domain in
  {
    so_workload = "write";
    so_intervals = intervals;
    so_domains = domains;
    so_total_txns = total;
    so_elapsed_s = elapsed;
    so_commits_per_s = float_of_int total /. elapsed;
    so_p99_us = p99_us;
    so_region_waits = Stm.commit_region_waits () - waits_before;
  }

(* Snapshot-read row: the same interval-partitioned sorted map, but each
   domain runs [Stm.snapshot] sections doing a point find plus a range
   fold over a window straddling its interval boundary — the
   cross-interval read that used to take range locks across two commit
   regions.  In snapshot mode it touches neither: region_waits must stay
   0 at every domain count. *)
let sortedscale_snapshot_run ~intervals ~domains ~txns_per_domain =
  let splitters =
    List.init (intervals - 1) (fun i -> (i + 1) * sortedscale_keys_per_domain)
  in
  let m = SOM.create ~splitters () in
  for d = 0 to max 1 domains - 1 do
    for i = 0 to sortedscale_keys_per_domain - 1 do
      ignore (SOM.put m ((d * sortedscale_keys_per_domain) + i) 0)
    done
  done;
  let waits_before = Stm.commit_region_waits () in
  let t0 = Unix.gettimeofday () in
  let ds =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            let lat = Array.make txns_per_domain 0. in
            let base = d * sortedscale_keys_per_domain in
            (* Window straddling the upper interval boundary of this
               domain's key range (clamped inside the populated space). *)
            let edge =
              min
                (base + sortedscale_keys_per_domain)
                ((max 1 domains * sortedscale_keys_per_domain) - 16)
            in
            for i = 0 to txns_per_domain - 1 do
              let k = base + (i land (sortedscale_keys_per_domain - 1)) in
              let s = Unix.gettimeofday () in
              Stm.snapshot (fun () ->
                  ignore (SOM.find m k);
                  ignore
                    (SOM.fold_range
                       (fun _ _ n -> n + 1)
                       m 0
                       ~lo:(Some (edge - 16))
                       ~hi:(Some (edge + 16))));
              lat.(i) <- Unix.gettimeofday () -. s
            done;
            lat))
  in
  let lats = List.map Domain.join ds in
  let elapsed = Unix.gettimeofday () -. t0 in
  let p99_us = Harness.Hdr.p99_us lats in
  let total = domains * txns_per_domain in
  {
    so_workload = "snapshot_read";
    so_intervals = intervals;
    so_domains = domains;
    so_total_txns = total;
    so_elapsed_s = elapsed;
    so_commits_per_s = float_of_int total /. elapsed;
    so_p99_us = p99_us;
    so_region_waits = Stm.commit_region_waits () - waits_before;
  }

(* ------------------------------------------------------------------ *)
(* TM policy matrix ablation: the same tvar-level workloads under every
   fixed policy of the acquire/read/versioning matrix plus the adaptive
   controller.  The semantic-collection workloads above barely touch
   tvars (their transactional state is store buffers and lock tables),
   so the matrix is measured where the policies actually differ: raw
   tvar read/write/commit protocol cost.  Single-domain discriminators,
   stable on small CI runners:
     - read_mostly: the lazy read-only fast path (no locks, no clock)
       is unbeatable for read-dominated traffic;
     - shared/jbb: write-heavy transactions re-writing their write set
       favour undo logging (re-writes mutate in place, allocation-free,
       and the redo log's commit-time replay disappears);
     - disjoint: small read-write transactions, the near-tie baseline.
   Each cell is best-of-[pm_reps] commits/s (max, not mean: the repeat
   discards scheduler noise, which only ever slows a run down). *)

type policy_cell = {
  pm_workload : string;
  pm_policy : string; (* fixed policy name, or "adaptive" *)
  pm_commits_per_s : float;
  pm_aborts : int;
  pm_switches : int; (* adaptive controller switches during the cell *)
  pm_final_policy : string; (* global policy when the cell ended *)
}

let policy_workload_names = [ "disjoint"; "shared"; "read_mostly"; "jbb" ]
let pm_reps = 3
let pm_warmup = 2_000
let pm_adapt_epoch = 256

(* Deterministic allocation-free key mixer. *)
let pm_mix i = (i * 48271) land 0x3FFFFFFF

let pm_ntvars = function
  | "read_mostly" -> 1024
  | "jbb" -> 256
  | _ -> 64

let pm_txn ~workload ~tvs ?tm_policy i =
  match workload with
  | "disjoint" ->
      (* 4-tvar read-modify-write over a private slice: per-transaction
         protocol overhead with no contention and no re-writes. *)
      Stm.atomic ?tm_policy (fun () ->
          let base = pm_mix i in
          for j = 0 to 3 do
            let tv = tvs.((base + (j * 17)) land 63) in
            Tvar.set tv (Tvar.get tv + 1)
          done)
  | "shared" ->
      (* Write-heavy: 8 distinct tvars, 4 blind writes each.  The redo
         log pays an entry allocation per write and replays at commit;
         undo logging pays one acquisition per tvar and the re-writes
         go in place. *)
      Stm.atomic ?tm_policy (fun () ->
          let base = pm_mix i in
          for j = 0 to 7 do
            let tv = tvs.((base + (j * 7)) land 63) in
            for r = 0 to 3 do
              Tvar.set tv (i + r)
            done
          done)
  | "read_mostly" ->
      (* 95% read-only transactions of 16 reads (through [atomic], not
         [snapshot] — the point is the policy's read path), 5% single
         writes. *)
      if i mod 20 = 0 then
        Stm.atomic ?tm_policy (fun () ->
            Tvar.set tvs.(pm_mix i land 1023) i)
      else
        Stm.atomic ?tm_policy (fun () ->
            let base = pm_mix i in
            let acc = ref 0 in
            for j = 0 to 15 do
              acc := !acc + Tvar.get tvs.((base + (j * 61)) land 1023)
            done;
            ignore !acc)
  | _ ->
      (* "jbb": the order-mix shape — half heavy order transactions
         (read 4 hot tvars, write 12 with re-writes), half light
         payment/status transactions (read 12, write 2). *)
      if i land 1 = 0 then
        Stm.atomic ?tm_policy (fun () ->
            let base = pm_mix i in
            let acc = ref 0 in
            for j = 0 to 3 do
              acc := !acc + Tvar.get tvs.((base + j) land 255)
            done;
            for j = 0 to 11 do
              let tv = tvs.((base + 16 + (j * 5)) land 255) in
              for r = 0 to 2 do
                Tvar.set tv (!acc + r)
              done
            done)
      else
        Stm.atomic ?tm_policy (fun () ->
            let base = pm_mix i in
            let acc = ref 0 in
            for j = 0 to 11 do
              acc := !acc + Tvar.get tvs.((base + (j * 61)) land 255)
            done;
            Tvar.set tvs.(base land 255) !acc;
            Tvar.set tvs.((base + 7) land 255) (!acc + 1))

(* One measured repetition.  Fixed cells select the policy per-[atomic]
   through [?tm_policy] (the global stays untouched); the adaptive cell
   leaves [?tm_policy] unset and lets the controller steer the global
   policy, warmed up over several controller windows before timing. *)
let pm_rep ~workload ~policy ~txns =
  let tvs = Array.init (pm_ntvars workload) (fun _ -> Tvar.make 0) in
  let tm_policy = match policy with `Fixed p -> Some p | `Adaptive -> None in
  let saved = Stm.Policy.global () in
  (match policy with
  | `Adaptive -> Stm.Policy.enable_adaptive ~epoch:pm_adapt_epoch ()
  | `Fixed _ -> ());
  for i = 1 to pm_warmup do
    pm_txn ~workload ~tvs ?tm_policy i
  done;
  let stats0 = Stm.global_stats () in
  let sw0 = Stm.Policy.switches () in
  let t0 = Unix.gettimeofday () in
  for i = 1 to txns do
    pm_txn ~workload ~tvs ?tm_policy i
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  let stats1 = Stm.global_stats () in
  let final = Stm.Policy.name (Stm.Policy.global ()) in
  (match policy with
  | `Adaptive ->
      Stm.Policy.disable_adaptive ();
      Stm.Policy.set_global saved
  | `Fixed _ -> ());
  {
    pm_workload = workload;
    pm_policy =
      (match policy with
      | `Fixed p -> Stm.Policy.name p
      | `Adaptive -> "adaptive");
    pm_commits_per_s = float_of_int txns /. elapsed;
    pm_aborts = stat_aborts stats1 - stat_aborts stats0;
    pm_switches = Stm.Policy.switches () - sw0;
    pm_final_policy = final;
  }

let pm_cell ~workload ~policy ~txns =
  let reps = List.init pm_reps (fun _ -> pm_rep ~workload ~policy ~txns) in
  List.fold_left
    (fun best r ->
      if r.pm_commits_per_s > best.pm_commits_per_s then r else best)
    (List.hd reps) (List.tl reps)

let policy_matrix_rows ~txns =
  List.concat_map
    (fun workload ->
      List.map
        (fun p -> pm_cell ~workload ~policy:(`Fixed p) ~txns)
        Stm.Policy.all
      @ [ pm_cell ~workload ~policy:`Adaptive ~txns ])
    policy_workload_names

let pm_render rows =
  Fmt.pf ppf
    "@.TM policy matrix (tvar-level workloads, best of %d reps)@." pm_reps;
  Fmt.pf ppf "  %-12s %-12s %14s %8s %9s %-12s@." "workload" "policy"
    "commits/s" "aborts" "switches" "final";
  List.iter
    (fun c ->
      Fmt.pf ppf "  %-12s %-12s %14.0f %8d %9d %-12s@." c.pm_workload
        c.pm_policy c.pm_commits_per_s c.pm_aborts c.pm_switches
        (if c.pm_policy = "adaptive" then c.pm_final_policy else "-"))
    rows

(* The acceptance gate, evaluated per workload over the matrix rows:
   the adaptive controller must land within [pm_gate_slack] of the best
   fixed policy everywhere, and must strictly beat the worst fixed
   policy on at least one workload.  Returned as messages so the CI
   gate (python, on the JSON) and the local run agree on the rule. *)
let pm_gate_slack = 0.90

let policy_matrix_gate rows =
  let failures = ref [] in
  let beats_worst = ref false in
  List.iter
    (fun w ->
      let cells = List.filter (fun c -> c.pm_workload = w) rows in
      let fixed = List.filter (fun c -> c.pm_policy <> "adaptive") cells in
      match List.find_opt (fun c -> c.pm_policy = "adaptive") cells with
      | None -> failures := Printf.sprintf "%s: no adaptive cell" w :: !failures
      | Some ad ->
          let by f a b = if f a b then a else b in
          let best =
            List.fold_left
              (by (fun a b -> a.pm_commits_per_s >= b.pm_commits_per_s))
              (List.hd fixed) (List.tl fixed)
          in
          let worst =
            List.fold_left
              (by (fun a b -> a.pm_commits_per_s <= b.pm_commits_per_s))
              (List.hd fixed) (List.tl fixed)
          in
          if ad.pm_commits_per_s > worst.pm_commits_per_s then
            beats_worst := true;
          if ad.pm_commits_per_s < pm_gate_slack *. best.pm_commits_per_s then
            failures :=
              Printf.sprintf
                "%s: adaptive %.0f/s under %.0f%% of best fixed %s %.0f/s" w
                ad.pm_commits_per_s
                (100. *. pm_gate_slack)
                best.pm_policy best.pm_commits_per_s
              :: !failures)
    policy_workload_names;
  if not !beats_worst then
    failures :=
      "adaptive never strictly beats the worst fixed policy" :: !failures;
  List.rev !failures

(* Commit-region plan construction must stay O(regions) per commit: one
   transaction writing one present key in each of [n] single-stripe maps
   registers [n] handlers whose merged region plan has [n] regions.
   Minor-heap words per commit growing ~linearly in [n] (ratio bounded
   well under the quadratic blowup) is the micro-assert backing the
   rid-sorted-merge dedup in [commit_regions]. *)
let plan_alloc_probe () =
  let mk n =
    Array.init n (fun _ ->
        let m = IM.create ~stripes:1 () in
        ignore (IM.put m 0 0);
        m)
  in
  let words_per_commit maps =
    let body () = Array.iter (fun m -> ignore (IM.put m 0 1)) maps in
    for _ = 1 to 50 do
      Stm.atomic body
    done;
    let reps = 200 in
    let w0 = Gc.minor_words () in
    for _ = 1 to reps do
      Stm.atomic body
    done;
    (Gc.minor_words () -. w0) /. float_of_int reps
  in
  let small_n = 16 and large_n = 64 in
  let small = words_per_commit (mk small_n) in
  let large = words_per_commit (mk large_n) in
  (small_n, small, large_n, large, large /. small)

let plan_alloc_ratio_bound = 6.0

(* Float fields for the hand-rolled JSON emitters: NaN and the
   infinities are not JSON, and one degenerate run (zero elapsed, zero
   commits, an empty latency set) must not corrupt the BENCH artifacts
   the CI gates parse — emit [null] instead. *)
let jf ?(dp = 3) v =
  if Float.is_finite v then Printf.sprintf "%.*f" dp v else "null"

let policy_matrix_json ~rows
    ~plan_alloc:(small_n, small, large_n, large, ratio) =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"note\": \"TM policy matrix ablation: commits/s per (workload, \
        policy) cell, best of %d reps; 'adaptive' rows ran under the \
        runtime controller (epoch %d, final = policy it converged to). \
        Gate: adaptive >= %.0f%% of the best fixed policy on every \
        workload and strictly above the worst on at least one. \
        plan_alloc: minor words/commit of an n-region commit plan; the \
        ratio bounds plan construction to O(regions).\",\n"
       pm_reps pm_adapt_epoch (100. *. pm_gate_slack));
  Buffer.add_string b
    (Printf.sprintf
       "  \"gate\": {\"adaptive_min_fraction_of_best\": %.2f, \
        \"plan_alloc_max_ratio\": %.1f},\n"
       pm_gate_slack plan_alloc_ratio_bound);
  Buffer.add_string b
    (Printf.sprintf
       "  \"plan_alloc\": {\"small_regions\": %d, \"small_words\": %s, \
        \"large_regions\": %d, \"large_words\": %s, \"ratio\": %s},\n"
       small_n (jf ~dp:1 small) large_n (jf ~dp:1 large) (jf ~dp:2 ratio));
  Buffer.add_string b "  \"policy_matrix\": [\n";
  List.iteri
    (fun i c ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"workload\": \"%s\", \"policy\": \"%s\", \
            \"commits_per_s\": %s, \"aborts\": %d, \"switches\": %d, \
            \"final_policy\": \"%s\"}%s\n"
           c.pm_workload c.pm_policy
           (jf ~dp:1 c.pm_commits_per_s)
           c.pm_aborts c.pm_switches c.pm_final_policy
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

(* Full-size policy sweep + plan-allocation micro-assert: the CI
   ablation job runs this, uploads BENCH_policy_matrix.json and re-checks
   the same gate on the JSON. *)
let policy_ablation () =
  let rows = policy_matrix_rows ~txns:20_000 in
  pm_render rows;
  let ((sn, sw, ln, lw, ratio) as plan_alloc) = plan_alloc_probe () in
  Fmt.pf ppf
    "@.Commit-plan allocation: %d regions -> %.1f words/commit, %d regions \
     -> %.1f words/commit (ratio %.2f, bound %.1f)@."
    sn sw ln lw ratio plan_alloc_ratio_bound;
  let json = policy_matrix_json ~rows ~plan_alloc in
  let oc = open_out "BENCH_policy_matrix.json" in
  output_string oc json;
  close_out oc;
  Fmt.pf ppf "  wrote BENCH_policy_matrix.json@.";
  let failures = policy_matrix_gate rows in
  let failures =
    if ratio > plan_alloc_ratio_bound then
      Printf.sprintf "plan alloc ratio %.2f above bound %.1f" ratio
        plan_alloc_ratio_bound
      :: failures
    else failures
  in
  if failures <> [] then begin
    List.iter (fun m -> Fmt.pf ppf "  POLICY GATE FAILED: %s@." m) failures;
    exit 1
  end
  else Fmt.pf ppf "  policy gates passed@."

let () = ablation_extra := policy_ablation

let stmscale_json ~cores ~chaos_rows ~snapshot_soak_rows ~failover_rows
    ~starvation_rows ~semscale_rows ~sortedscale_rows ~policy_rows rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"cores\": %d,\n" cores);
  Buffer.add_string b
    "  \"note\": \"region_waits = commit-region acquisitions that blocked; \
     0 on the disjoint workload at any domain count means sharded commits \
     never serialise. minor_words_per_commit = minor-heap words allocated \
     per committed transaction (domain-local Gc.minor_words deltas summed \
     over workers). clock_bumps = global version-clock advances; the \
     read_only workload (multi-version snapshot reads) must report 0 \
     clock_bumps, 0 region_waits and 0 aborts at every domain count. \
     read_mostly = 95% snapshot finds / 5% write transactions on the same \
     shared map. Wall-clock scaling requires cores >= domains; cores = \
     Domain.recommended_domain_count of the generating host.\",\n";
  let ratio w d1 d2 =
    let find d =
      List.find_opt (fun r -> r.workload = w && r.domains = d) rows
    in
    match (find d1, find d2) with
    | Some a, Some bx -> bx.commits_per_s /. a.commits_per_s
    | _ -> 0.
  in
  Buffer.add_string b
    (Printf.sprintf "  \"disjoint_scaling_1_to_4\": %s,\n"
       (jf (ratio "disjoint" 1 4)));
  Buffer.add_string b
    (Printf.sprintf "  \"shared_scaling_1_to_4\": %s,\n"
       (jf (ratio "shared" 1 4)));
  Buffer.add_string b
    (Printf.sprintf "  \"read_only_scaling_1_to_4\": %s,\n"
       (jf (ratio "read_only" 1 4)));
  Buffer.add_string b
    (Printf.sprintf "  \"read_mostly_scaling_1_to_4\": %s,\n"
       (jf (ratio "read_mostly" 1 4)));
  let ss_ratio d1 d2 =
    let find d =
      List.find_opt
        (fun r -> r.ss_domains = d && r.ss_stripes = semscale_stripes)
        semscale_rows
    in
    match (find d1, find d2) with
    | Some a, Some bx -> bx.ss_commits_per_s /. a.ss_commits_per_s
    | _ -> 0.
  in
  Buffer.add_string b
    (Printf.sprintf "  \"semscale_scaling_1_to_4\": %s,\n" (jf (ss_ratio 1 4)));
  let so_ratio intervals d1 d2 =
    let find d =
      List.find_opt
        (fun r ->
          r.so_workload = "write" && r.so_domains = d
          && r.so_intervals = intervals)
        sortedscale_rows
    in
    match (find d1, find d2) with
    | Some a, Some bx -> bx.so_commits_per_s /. a.so_commits_per_s
    | _ -> 0.
  in
  Buffer.add_string b
    (Printf.sprintf "  \"sortedscale_scaling_1_to_4\": %s,\n"
       (jf (so_ratio sortedscale_intervals 1 4)));
  Buffer.add_string b
    (Printf.sprintf "  \"sortedscale_b1_scaling_1_to_4\": %s,\n"
       (jf (so_ratio 1 1 4)));
  Buffer.add_string b "  \"sortedscale\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"workload\": \"%s\", \"intervals\": %d, \"domains\": %d, \
            \"txns\": %d, \"elapsed_s\": %s, \"commits_per_s\": %s, \
            \"p99_us\": %s, \"region_waits\": %d}%s\n"
           r.so_workload r.so_intervals r.so_domains r.so_total_txns
           (jf ~dp:4 r.so_elapsed_s)
           (jf ~dp:1 r.so_commits_per_s)
           (jf ~dp:1 r.so_p99_us) r.so_region_waits
           (if i = List.length sortedscale_rows - 1 then "" else ",")))
    sortedscale_rows;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"semscale\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"stripes\": %d, \"domains\": %d, \"txns\": %d, \
            \"elapsed_s\": %s, \"commits_per_s\": %s, \"p99_us\": %s, \
            \"region_waits\": %d}%s\n"
           r.ss_stripes r.ss_domains r.ss_total_txns
           (jf ~dp:4 r.ss_elapsed_s)
           (jf ~dp:1 r.ss_commits_per_s)
           (jf ~dp:1 r.ss_p99_us) r.ss_region_waits
           (if i = List.length semscale_rows - 1 then "" else ",")))
    semscale_rows;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"policy_matrix\": [\n";
  List.iteri
    (fun i c ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"workload\": \"%s\", \"policy\": \"%s\", \
            \"commits_per_s\": %s, \"aborts\": %d, \"switches\": %d, \
            \"final_policy\": \"%s\"}%s\n"
           c.pm_workload c.pm_policy
           (jf ~dp:1 c.pm_commits_per_s)
           c.pm_aborts c.pm_switches c.pm_final_policy
           (if i = List.length policy_rows - 1 then "" else ",")))
    policy_rows;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"configs\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"workload\": \"%s\", \"domains\": %d, \"txns\": %d, \
            \"elapsed_s\": %s, \"commits_per_s\": %s, \"p99_us\": %s, \
            \"region_waits\": %d, \"aborts\": %d, \
            \"minor_words_per_commit\": %s, \"clock_bumps\": %d, \
            \"read_only_commits\": %d, \"snapshot_reads\": %d}%s\n"
           r.workload r.domains r.total_txns
           (jf ~dp:4 r.elapsed_s)
           (jf ~dp:1 r.commits_per_s)
           (jf ~dp:1 r.p99_us) r.region_waits r.aborts
           (jf ~dp:1 r.minor_words_per_commit)
           r.clock_bumps r.read_only_commits r.snapshot_reads
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"snapshot_soak\": [\n";
  List.iteri
    (fun i (seed, (r : Harness.Chaos.snapshot_soak_report)) ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"seed\": %d, \"ok\": %b, \"snapshots\": %d, \
            \"writer_commits\": %d}%s\n"
           seed r.sn_ok r.sn_snapshots r.sn_writer_commits
           (if i = List.length snapshot_soak_rows - 1 then "" else ",")))
    snapshot_soak_rows;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"chaos\": [\n";
  List.iteri
    (fun i (p, seed, policy, (r : Harness.Chaos.soak_report)) ->
      let c, ra, hf, d = r.injections in
      Buffer.add_string b
        (Printf.sprintf
           "    {\"p\": %s, \"seed\": %d, \"policy\": \"%s\", \"ok\": %b, \
            \"committed\": %d, \"injected_conflicts\": %d, \
            \"injected_remote_aborts\": %d, \"injected_handler_faults\": %d, \
            \"injected_delays\": %d}%s\n"
           (jf ~dp:2 p) seed
           (Tcc_stm.Stm.Contention.name policy)
           r.ok r.committed c ra hf d
           (if i = List.length chaos_rows - 1 then "" else ",")))
    chaos_rows;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"failover\": [\n";
  List.iteri
    (fun i (mode, seed, (r : Harness.Chaos.failover_report)) ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"mode\": \"%s\", \"seed\": %d, \"ok\": %b, \"committed\": \
            %d, \"committed_after_failover\": %d, \"kills\": %d, \
            \"place_down\": %d, \"snapshots\": %d, \"snapshot_denials\": \
            %d}%s\n"
           (Harness.Chaos.mode_name mode)
           seed r.fv_ok r.fv_committed r.fv_committed_after_failover r.fv_kills
           r.fv_place_down r.fv_snapshots r.fv_snapshot_denials
           (if i = List.length failover_rows - 1 then "" else ",")))
    failover_rows;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"replication_lag\": [\n";
  List.iteri
    (fun i (mode, seed, (r : Harness.Chaos.failover_report)) ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"mode\": \"%s\", \"seed\": %d, \"max_lag_observed\": %d, \
            \"lag_bound\": %d}%s\n"
           (Harness.Chaos.mode_name mode)
           seed r.fv_max_lag (failover_lag_bound mode)
           (if i = List.length failover_rows - 1 then "" else ",")))
    failover_rows;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"starvation\": [\n";
  List.iteri
    (fun i (r : Harness.Starvation.report) ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"policy\": \"%s\", \"rounds\": %d, \"completed\": %d, \
            \"starved\": %d, \"long_retries\": %d, \"elapsed_s\": %s}%s\n"
           r.policy r.rounds r.completed r.starved r.long_retries
           (jf r.elapsed_s)
           (if i = List.length starvation_rows - 1 then "" else ",")))
    starvation_rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let stmscale () =
  let txns_per_domain = 20_000 in
  let cores = Domain.recommended_domain_count () in
  (* Warm-up pass so the first timed configuration is not paying one-time
     initialisation costs. *)
  ignore (stmscale_run ~workload:"disjoint" ~domains:1 ~txns_per_domain:1_000);
  let rows =
    List.concat_map
      (fun workload ->
        List.map
          (fun domains -> stmscale_run ~workload ~domains ~txns_per_domain)
          [ 1; 2; 4; 8 ])
      [ "disjoint"; "shared"; "read_only"; "read_mostly" ]
  in
  Fmt.pf ppf "@.STM commit scaling (host STM, %d core%s available)@." cores
    (if cores = 1 then "" else "s");
  Fmt.pf ppf "  %-11s %7s %10s %14s %10s %13s %7s %10s %12s@." "workload"
    "domains" "txns" "commits/s" "p99 (us)" "region_waits" "aborts"
    "mw/commit" "clock_bumps";
  List.iter
    (fun r ->
      Fmt.pf ppf "  %-11s %7d %10d %14.0f %10.1f %13d %7d %10.1f %12d@."
        r.workload r.domains r.total_txns r.commits_per_s r.p99_us
        r.region_waits r.aborts r.minor_words_per_commit r.clock_bumps)
    rows;
  (* Same-collection scaling over the striped map (domains up to at least
     4 so the recorded 1→4 ratio is meaningful, further if the host has
     the cores). *)
  let semscale_domains =
    List.filter (fun d -> d <= max 4 cores) [ 1; 2; 4; 8 ]
  in
  (* K = 1 rows regenerate the un-striped baseline on the same workload;
     the gated ratio comes from the striped rows. *)
  let semscale_rows =
    List.concat_map
      (fun stripes ->
        List.map
          (fun domains -> semscale_run ~stripes ~domains ~txns_per_domain)
          semscale_domains)
      [ 1; semscale_stripes ]
  in
  Fmt.pf ppf "@.Same-collection scaling (one shared map, disjoint keys)@.";
  Fmt.pf ppf "  %7s %7s %10s %14s %10s %13s@." "stripes" "domains" "txns"
    "commits/s" "p99 (us)" "region_waits";
  List.iter
    (fun r ->
      Fmt.pf ppf "  %7d %7d %10d %14.0f %10.1f %13d@." r.ss_stripes
        r.ss_domains r.ss_total_txns r.ss_commits_per_s r.ss_p99_us
        r.ss_region_waits)
    semscale_rows;
  (* Same-collection scaling for the sorted map: B = 1 regenerates the
     single-region baseline, B = 8 puts each writer's key range in its
     own interval.  The gated ratio compares the two. *)
  let sortedscale_rows =
    List.concat_map
      (fun intervals ->
        List.map
          (fun domains -> sortedscale_run ~intervals ~domains ~txns_per_domain)
          semscale_domains)
      [ 1; sortedscale_intervals ]
    (* Snapshot-read rows: cross-interval range reads in [Stm.snapshot];
       region_waits must stay 0 at every domain count. *)
    @ List.map
        (fun domains ->
          sortedscale_snapshot_run ~intervals:sortedscale_intervals ~domains
            ~txns_per_domain)
        semscale_domains
  in
  Fmt.pf ppf
    "@.Sorted-map same-collection scaling (disjoint per-domain intervals)@.";
  Fmt.pf ppf "  %-13s %9s %7s %10s %14s %10s %13s@." "workload" "intervals"
    "domains" "txns" "commits/s" "p99 (us)" "region_waits";
  List.iter
    (fun r ->
      Fmt.pf ppf "  %-13s %9d %7d %10d %14.0f %10.1f %13d@." r.so_workload
        r.so_intervals r.so_domains r.so_total_txns r.so_commits_per_s
        r.so_p99_us r.so_region_waits)
    sortedscale_rows;
  (* Robustness columns: a lighter chaos matrix, the snapshot-reader
     prefix-consistency soak and the three-policy starvation comparison
     ride along into the same JSON record. *)
  let chaos_rows = chaos_matrix ~ops_per_domain:400 in
  let snapshot_soak_rows = snapshot_soak_matrix ~ops_per_domain:400 in
  let failover_rows = failover_matrix ~ops_per_domain:600 in
  let starvation_rows = starve_rows () in
  (* The policy-matrix ablation rides along at reduced size so every
     BENCH_stm.json carries the full trajectory; the [ablation] target
     runs the full-size sweep and applies the gate. *)
  let policy_rows = policy_matrix_rows ~txns:8_000 in
  pm_render policy_rows;
  let json =
    stmscale_json ~cores ~chaos_rows ~snapshot_soak_rows ~failover_rows
      ~starvation_rows ~semscale_rows ~sortedscale_rows ~policy_rows rows
  in
  let oc = open_out "BENCH_stm.json" in
  output_string oc json;
  close_out oc;
  Fmt.pf ppf "  wrote BENCH_stm.json@."

(* ------------------------------------------------------------------ *)
(* Open-loop rate search and admission control (BENCH_openloop.json).

   Poisson arrivals at a target offered rate across [ol_domains]
   domains, latency measured from the scheduled arrival
   (coordinated-omission-free), offered load walked to the saturation
   knee per workload.  Then the overload experiment: offered load fixed
   at 2x the measured knee with the admission gate off (documented
   collapse), shedding, and serialising.  Reduced-budget knobs for CI:
   OPENLOOP_DURATION (seconds per probe), OPENLOOP_MAX_RATE. *)

module OL = Harness.Openloop
module Admission = Stm.Admission

let ol_domains = max 1 (min 2 (Domain.recommended_domain_count ()))
let ol_keys = 1024
let ol_slo_us = 1000.

let ol_env name default =
  match Sys.getenv_opt name with
  | Some s -> ( try float_of_string s with _ -> default)
  | None -> default

(* Request factories.  Each call builds fresh collections, so a probe is
   not biased by residue from the previous one, and the bounded key
   spaces make the steady-state write an overwrite of a present key.
   [run] is the transaction runner for write requests — [Stm.atomic], or
   [Admission.run] when the overload experiment turns the gate on. *)
let ol_worker ?(run = fun f -> Stm.atomic f) workload : OL.worker =
  match workload with
  | "disjoint" ->
      (* Private map per domain: the no-contention baseline. *)
      let maps = Array.init ol_domains (fun _ -> IM.create ()) in
      fun ~domain ->
        let m = maps.(domain) in
        let i = ref 0 in
        fun () ->
          incr i;
          let k = !i land (ol_keys - 1) in
          run (fun () -> ignore (IM.put m k !i))
  | "shared" ->
      (* One un-striped map: every commit serialises on its region. *)
      let m = IM.create ~stripes:1 () in
      for k = 0 to (ol_domains * ol_keys) - 1 do
        ignore (IM.put m k 0)
      done;
      fun ~domain ->
        let i = ref 0 in
        fun () ->
          incr i;
          let k = (domain * ol_keys) + (!i land (ol_keys - 1)) in
          run (fun () -> ignore (IM.put m k !i))
  | "read_only" ->
      let m = IM.create ~stripes:1 () in
      for k = 0 to ol_keys - 1 do
        ignore (IM.put m k k)
      done;
      fun ~domain ->
        let i = ref 0 in
        fun () ->
          incr i;
          Stm.snapshot (fun () ->
              ignore (IM.find m (((domain * 37) + !i) land (ol_keys - 1))))
  | "read_mostly" ->
      let m = IM.create ~stripes:1 () in
      for k = 0 to ol_keys - 1 do
        ignore (IM.put m k k)
      done;
      fun ~domain ->
        let i = ref 0 in
        fun () ->
          incr i;
          let k = ((domain * 37) + !i) land (ol_keys - 1) in
          if !i mod 20 = 0 then run (fun () -> ignore (IM.put m k !i))
          else Stm.snapshot (fun () -> ignore (IM.find m k))
  | w -> invalid_arg ("ol_worker: " ^ w)

let ol_jbb_worker ?run ~warehouses () : OL.worker =
  let t = Jbb.Multi_jbb.create ~warehouses () in
  fun ~domain ->
    let rng = Random.State.make [| 0x0501; warehouses; domain |] in
    fun () -> Jbb.Multi_jbb.task ?run t rng

type ol_overload_row = {
  ov_workload : string;
  ov_mode : string; (* "none" | "shed" | "serialise" *)
  ov_knee_rate : float;
  ov_knee : OL.result; (* the pre-knee reference probe *)
  ov_result : OL.result;
  ov_admitted : int;
  ov_adm_shed : int;
  ov_serialised : int;
}

let ol_gate_goodput_fraction = 0.8
let ol_gate_p99_ratio = 5.0

let openloop_json ~cores ~duration ~knees ~overload =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"cores\": %d,\n" cores);
  Buffer.add_string b
    (Printf.sprintf "  \"domains\": %d,\n" ol_domains);
  Buffer.add_string b (Printf.sprintf "  \"slo_us\": %s,\n" (jf ol_slo_us));
  Buffer.add_string b
    (Printf.sprintf "  \"probe_duration_s\": %s,\n" (jf duration));
  Buffer.add_string b
    "  \"note\": \"Open-loop Poisson arrivals; latency is measured from \
     the scheduled arrival time (coordinated-omission-free), so a \
     backlogged service reports its queueing delay. \
     sustainable_rate_p99_1ms = highest offered rate with nothing \
     dropped/shed, >=95% of the schedule completed and p99 <= slo. \
     goodput = completions within the SLO per second. The overload rows \
     offer 2x the knee: mode none documents queueing collapse (goodput \
     falls, the schedule is eventually dropped), shed bounds p99 by \
     rejecting above the token-bucket rate (Stm.Overloaded), serialise \
     routes overflow through the serialised fallback.\",\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"gate\": {\"min_goodput_fraction_at_2x_shed\": %s, \
        \"max_p99_ratio_shed\": %s},\n"
       (jf ~dp:2 ol_gate_goodput_fraction)
       (jf ~dp:1 ol_gate_p99_ratio));
  Buffer.add_string b "  \"knees\": [\n";
  List.iteri
    (fun i (name, (s : OL.search)) ->
      let probes = List.length s.OL.probes in
      (match s.OL.knee with
      | Some r ->
          Buffer.add_string b
            (Printf.sprintf
               "    {\"workload\": \"%s\", \"sustainable_rate_p99_1ms\": \
                %s, \"probes\": %d, \"throughput\": %s, \"goodput\": %s, \
                \"p50_us\": %s, \"p99_us\": %s, \"p999_us\": %s, \
                \"scheduled\": %d, \"completed\": %d}%s\n"
               name
               (jf ~dp:1 s.OL.sustainable_rate)
               probes (jf ~dp:1 r.OL.throughput) (jf ~dp:1 r.OL.goodput)
               (jf ~dp:1 r.OL.p50_us) (jf ~dp:1 r.OL.p99_us)
               (jf ~dp:1 r.OL.p999_us) r.OL.scheduled r.OL.completed
               (if i = List.length knees - 1 then "" else ","))
      | None ->
          Buffer.add_string b
            (Printf.sprintf
               "    {\"workload\": \"%s\", \"sustainable_rate_p99_1ms\": \
                0.0, \"probes\": %d}%s\n"
               name probes
               (if i = List.length knees - 1 then "" else ","))))
    knees;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"overload\": [\n";
  List.iteri
    (fun i row ->
      let r = row.ov_result and k = row.ov_knee in
      Buffer.add_string b
        (Printf.sprintf
           "    {\"workload\": \"%s\", \"mode\": \"%s\", \"knee_rate\": \
            %s, \"offered_rate\": %s, \"throughput\": %s, \"goodput\": \
            %s, \"goodput_vs_knee\": %s, \"p99_us\": %s, \
            \"p99_vs_knee_ratio\": %s, \"scheduled\": %d, \"completed\": \
            %d, \"shed_requests\": %d, \"dropped\": %d, \"admitted\": %d, \
            \"admission_shed\": %d, \"serialised_overflow\": %d}%s\n"
           row.ov_workload row.ov_mode
           (jf ~dp:1 row.ov_knee_rate)
           (jf ~dp:1 r.OL.offered_rate)
           (jf ~dp:1 r.OL.throughput) (jf ~dp:1 r.OL.goodput)
           (jf (r.OL.goodput /. k.OL.goodput))
           (jf ~dp:1 r.OL.p99_us)
           (jf (r.OL.p99_us /. k.OL.p99_us))
           r.OL.scheduled r.OL.completed r.OL.shed r.OL.dropped
           row.ov_admitted row.ov_adm_shed row.ov_serialised
           (if i = List.length overload - 1 then "" else ",")))
    overload;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let openloop () =
  let duration = ol_env "OPENLOOP_DURATION" 1.0 in
  let max_rate = ol_env "OPENLOOP_MAX_RATE" 400_000. in
  let cores = Domain.recommended_domain_count () in
  Fmt.pf ppf
    "@.Open-loop rate search (%d domain%s, SLO p99 <= %.0f us, %.1f \
     s/probe)@."
    ol_domains
    (if ol_domains = 1 then "" else "s")
    ol_slo_us duration;
  let search name mk_worker =
    let s =
      OL.rate_search ~domains:ol_domains ~slo_us:ol_slo_us ~start_rate:200.
        ~max_rate ~duration (mk_worker ())
    in
    (match s.OL.knee with
    | Some r ->
        Fmt.pf ppf
          "  %-12s knee %9.0f req/s   p50 %7.1f us  p99 %7.1f us  \
           goodput %9.0f/s  (%d probes)@."
          name s.OL.sustainable_rate r.OL.p50_us r.OL.p99_us r.OL.goodput
          (List.length s.OL.probes)
    | None ->
        Fmt.pf ppf "  %-12s NO sustainable rate found (%d probes)@." name
          (List.length s.OL.probes));
    (name, s)
  in
  let knees =
    List.map
      (fun w -> search w (fun () -> ol_worker w))
      [ "disjoint"; "shared"; "read_only"; "read_mostly" ]
    @ List.map
        (fun w ->
          search
            (Printf.sprintf "jbb_w%d" w)
            (fun () -> ol_jbb_worker ~warehouses:w ()))
        [ 1; 4; 8 ]
  in
  (* Overload experiment at 2x the knee: the admission gate refills at
     0.9x the knee, so admitted requests run pre-knee while the excess
     hits the overload policy instead of queueing. *)
  let overload_rows = ref [] in
  let overload name (s : OL.search) mk_worker =
    match s.OL.knee with
    | None -> ()
    | Some knee_r ->
        let knee_rate = s.OL.sustainable_rate in
        let rate2 = 2. *. knee_rate in
        List.iter
          (fun mode ->
            let run =
              match mode with
              | "none" -> None
              | _ ->
                  Admission.configure ~rate:(0.9 *. knee_rate)
                    ~burst:(max 16 (int_of_float (knee_rate /. 50.)))
                    ~budget:
                      {
                        Stm.max_retries = Some 128;
                        max_seconds = Some 0.02;
                      }
                    ~policy:
                      (if mode = "shed" then Admission.Shed
                       else Admission.Serialise)
                    ();
                  Some (fun f -> Admission.run f)
            in
            let a0 = Admission.admitted ()
            and s0 = Admission.shed ()
            and o0 = Admission.serialised_overflow () in
            let r =
              OL.run_at ~domains:ol_domains ~slo_us:ol_slo_us ~rate:rate2
                ~duration
                (mk_worker ?run ())
            in
            Admission.disable ();
            let row =
              {
                ov_workload = name;
                ov_mode = mode;
                ov_knee_rate = knee_rate;
                ov_knee = knee_r;
                ov_result = r;
                ov_admitted = Admission.admitted () - a0;
                ov_adm_shed = Admission.shed () - s0;
                ov_serialised = Admission.serialised_overflow () - o0;
              }
            in
            overload_rows := row :: !overload_rows;
            Fmt.pf ppf
              "  %-12s 2x-knee %-9s goodput %9.0f/s (%5.2fx knee)  p99 \
               %9.1f us  shed %d  dropped %d@."
              name mode r.OL.goodput
              (r.OL.goodput /. knee_r.OL.goodput)
              r.OL.p99_us r.OL.shed r.OL.dropped)
          [ "none"; "shed"; "serialise" ]
  in
  Fmt.pf ppf "@.Overload at 2x knee (admission gate at 0.9x knee)@.";
  (match List.assoc_opt "shared" knees with
  | Some s -> overload "shared" s (fun ?run () -> ol_worker ?run "shared")
  | None -> ());
  (match List.assoc_opt "jbb_w4" knees with
  | Some s ->
      overload "jbb_w4" s (fun ?run () -> ol_jbb_worker ?run ~warehouses:4 ())
  | None -> ());
  let json =
    openloop_json ~cores ~duration ~knees ~overload:(List.rev !overload_rows)
  in
  let oc = open_out "BENCH_openloop.json" in
  output_string oc json;
  close_out oc;
  Fmt.pf ppf "  wrote BENCH_openloop.json@."

(* ------------------------------------------------------------------ *)
(* Derived-collection section (BENCH_derived.json).  Two CI gates:
   (a) the spec-derived TransactionalSet stays within 15% of the
       hand-written map wrapper it replaced, on the disjoint stmscale
       workload (private instance per domain, write + read-previous per
       transaction);
   (b) the TransactionalCounter's commutative increments commit with
       zero aborts of any kind and zero commit-region waits across 4
       domains — the "never conflicting with each other" guarantee as a
       recorded number, not just a unit test. *)

module DSet = Txcoll.Host.Set (Txcoll.Host.Int_hashed)
module DCounter = Txcoll.Host.Counter

let derived_set_gate = 0.85
let derived_reps = 3

let derived_set_run ~impl ~domains ~txns_per_domain =
  let t0 = Stm.Monoclock.now () in
  let ds =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            match impl with
            | `Handwritten ->
                let m : unit IM.t = IM.create () in
                for i = 1 to txns_per_domain do
                  Stm.atomic (fun () ->
                      ignore (IM.put m i ());
                      if i > 1 then ignore (IM.find m (i - 1)))
                done
            | `Derived ->
                let s = DSet.create () in
                for i = 1 to txns_per_domain do
                  Stm.atomic (fun () ->
                      ignore (DSet.add s i);
                      if i > 1 then ignore (DSet.mem s (i - 1)))
                done))
  in
  List.iter Domain.join ds;
  let elapsed = Stm.Monoclock.now () -. t0 in
  float_of_int (domains * txns_per_domain) /. elapsed

let derived_set_best ~impl ~domains ~txns_per_domain =
  let best = ref 0. in
  for _ = 1 to derived_reps do
    let c = derived_set_run ~impl ~domains ~txns_per_domain in
    if c > !best then best := c
  done;
  !best

let derived_counter_run ~domains ~incrs_per_domain =
  let c = DCounter.create () in
  let stats0 = Stm.global_stats () in
  let waits0 = Stm.commit_region_waits () in
  let t0 = Stm.Monoclock.now () in
  let ds =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to incrs_per_domain do
              Stm.atomic (fun () -> DCounter.incr c)
            done))
  in
  List.iter Domain.join ds;
  let elapsed = Stm.Monoclock.now () -. t0 in
  let stats1 = Stm.global_stats () in
  ( float_of_int (domains * incrs_per_domain) /. elapsed,
    stat_aborts stats1 - stat_aborts stats0,
    Stm.commit_region_waits () - waits0,
    DCounter.get c )

let derived_json ~set_rows ~ratio
    ~counter:(cd, ci, cps, aborts, waits, sum_exact) =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"note\": \"Collections derived from commutativity specs \
        (Txcoll.Derive). set_disjoint: commits/s on the disjoint stmscale \
        workload, best of %d reps; ratio = derived TransactionalSet / \
        hand-written map wrapper at 4 domains, gated >= %.2f. counter: 4 \
        domains of commutative increments must record zero aborts and \
        zero commit-region waits.\",\n"
       derived_reps derived_set_gate);
  Buffer.add_string b
    (Printf.sprintf
       "  \"gate\": {\"set_min_fraction_of_handwritten\": %.2f, \
        \"counter_max_aborts\": 0, \"counter_max_region_waits\": 0},\n"
       derived_set_gate);
  Buffer.add_string b "  \"set_disjoint\": [\n";
  List.iteri
    (fun i (impl, domains, cps) ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"impl\": \"%s\", \"domains\": %d, \"commits_per_s\": %s}%s\n"
           impl domains (jf ~dp:1 cps)
           (if i = List.length set_rows - 1 then "" else ",")))
    set_rows;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b
    (Printf.sprintf "  \"set_ratio_4dom\": %s,\n" (jf ~dp:3 ratio));
  Buffer.add_string b
    (Printf.sprintf
       "  \"counter\": {\"domains\": %d, \"increments_per_domain\": %d, \
        \"commits_per_s\": %s, \"aborts\": %d, \"region_waits\": %d, \
        \"sum_exact\": %b}\n"
       cd ci (jf ~dp:1 cps) aborts waits sum_exact);
  Buffer.add_string b "}\n";
  Buffer.contents b

let derived () =
  let txns = 20_000 in
  Fmt.pf ppf "@.Derived collections (minted from commutativity specs)@.";
  Fmt.pf ppf "  %-18s %7s %12s@." "impl" "domains" "commits/s";
  let set_rows =
    List.concat_map
      (fun domains ->
        List.map
          (fun (impl, name) ->
            let cps =
              derived_set_best ~impl ~domains ~txns_per_domain:txns
            in
            Fmt.pf ppf "  %-18s %7d %12.0f@." name domains cps;
            (name, domains, cps))
          [ (`Handwritten, "handwritten_map"); (`Derived, "derived_set") ])
      [ 1; 4 ]
  in
  let find name domains =
    let _, _, cps =
      List.find (fun (n, d, _) -> n = name && d = domains) set_rows
    in
    cps
  in
  let ratio = find "derived_set" 4 /. find "handwritten_map" 4 in
  Fmt.pf ppf "  derived/hand-written ratio at 4 domains: %.2f (gate >= %.2f)@."
    ratio derived_set_gate;
  let domains = 4 and incrs = 25_000 in
  let cps, aborts, waits, total =
    derived_counter_run ~domains ~incrs_per_domain:incrs
  in
  let sum_exact = total = domains * incrs in
  Fmt.pf ppf
    "  counter: %d domains x %d incrs -> %.0f/s, aborts %d, region waits \
     %d, sum %s@."
    domains incrs cps aborts waits
    (if sum_exact then "exact" else "WRONG");
  let json =
    derived_json ~set_rows ~ratio
      ~counter:(domains, incrs, cps, aborts, waits, sum_exact)
  in
  let oc = open_out "BENCH_derived.json" in
  output_string oc json;
  close_out oc;
  Fmt.pf ppf "  wrote BENCH_derived.json@.";
  let failures = ref [] in
  if ratio < derived_set_gate then
    failures :=
      Printf.sprintf "derived set at %.2f of hand-written (gate %.2f)" ratio
        derived_set_gate
      :: !failures;
  if aborts <> 0 then
    failures :=
      Printf.sprintf "counter recorded %d aborts (gate 0)" aborts :: !failures;
  if waits <> 0 then
    failures :=
      Printf.sprintf "counter recorded %d region waits (gate 0)" waits
      :: !failures;
  if not sum_exact then
    failures :=
      Printf.sprintf "counter sum %d, expected %d" total (domains * incrs)
      :: !failures;
  if !failures <> [] then begin
    List.iter (fun m -> Fmt.pf ppf "  DERIVED GATE FAILED: %s@." m) !failures;
    exit 1
  end
  else Fmt.pf ppf "  derived gates passed@."

let targets : (string * (unit -> unit)) list =
  [
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("table4", table4);
    ("table5", table5);
    ("table6", table6);
    ("table7", table7);
    ("table8", table8);
    ("table9", table9);
    ("fig1", fig1);
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("ablation", ablation);
    ("hostmap", hostmap);
    ("jbbhost", jbbhost);
    ("queue", queue);
    ("micro", micro);
    ("stmscale", stmscale);
    ("derived", derived);
    ("openloop", openloop);
    ("chaos", chaos);
    ("failover", failover);
    ("starve", starve);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [] ->
      List.iter
        (fun (name, f) ->
          Fmt.pf ppf "@.===== %s =====@." name;
          f ())
        targets
  | names ->
      List.iter
        (fun n ->
          match List.assoc_opt n targets with
          | Some f -> f ()
          | None ->
              Fmt.pf ppf "unknown target %s; available: %s@." n
                (String.concat " " (List.map fst targets));
              exit 1)
        names
