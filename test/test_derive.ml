(* Tests for the spec-derived collection classes ({!Txcoll.Derive}):
   unit coverage for Counter/Bag/PriorityQueue, the counter's
   zero-conflict guarantee, and QCheck spec-soundness properties run
   against the *real* STM:

   - every pair of operations the sequential model declares commutative
     is order-equivalent through concurrent two-transaction programs
     (same results, same final state, regardless of scheduling);
   - every non-commutative pair is forced to conflict (the observer is
     remote-aborted or waits: its transaction needs >= 2 attempts when a
     conflicting write commits mid-flight). *)

module Stm = Tcc_stm.Stm
module DSet = Txcoll.Host.Set (Txcoll.Host.Int_hashed)
module Bag = Txcoll.Host.Bag (Txcoll.Host.Int_hashed)
module Pq = Txcoll.Host.Priority_queue (Txcoll.Host.Int_ordered)
module Counter = Txcoll.Host.Counter

(* ---------------- unit: counter ---------------- *)

let test_counter_basics () =
  let c = Counter.create ~shards:4 () in
  Alcotest.(check int) "fresh" 0 (Counter.get c);
  Counter.incr c;
  Counter.add c 5;
  Counter.decr c;
  Alcotest.(check int) "nontxn sum" 5 (Counter.get c);
  Stm.atomic (fun () ->
      Counter.add c 10;
      Alcotest.(check int) "own delta visible in txn" 15 (Counter.get c));
  Alcotest.(check int) "committed" 15 (Counter.get c);
  (try
     Stm.atomic (fun () ->
         Counter.add c 100;
         Stm.self_abort ())
   with Stm.Aborted -> ());
  Alcotest.(check int) "abort discards delta" 15 (Counter.get c);
  Alcotest.(check int) "no leaked locks" 0 (Counter.outstanding_locks c)

let test_counter_zero_conflicts () =
  (* The headline guarantee: commutative increments never conflict with
     each other.  4 domains hammering the same counter must finish with
     zero aborts of any kind and zero commit-region waits. *)
  Stm.reset_stats ();
  let c = Counter.create () in
  let n = 2_000 in
  let before = Stm.global_stats () in
  let waits0 = Stm.commit_region_waits () in
  let doms =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to n do
              Stm.atomic (fun () -> Counter.incr c)
            done))
  in
  List.iter Domain.join doms;
  let after = Stm.global_stats () in
  Alcotest.(check int) "sum exact" (4 * n) (Counter.get c);
  Alcotest.(check int) "zero conflict aborts" 0
    (after.conflict_aborts - before.conflict_aborts);
  Alcotest.(check int) "zero remote aborts" 0
    (after.remote_aborts - before.remote_aborts);
  Alcotest.(check int) "zero region waits" 0
    (Stm.commit_region_waits () - waits0);
  Alcotest.(check int) "no leaked locks" 0 (Counter.outstanding_locks c)

(* ---------------- unit: bag ---------------- *)

let test_bag_basics () =
  let b = Bag.create () in
  Bag.add b 1;
  Bag.add b 1;
  Bag.add_n b 2 3;
  Alcotest.(check int) "count 1" 2 (Bag.count b 1);
  Alcotest.(check int) "count 2" 3 (Bag.count b 2);
  Alcotest.(check int) "total size" 5 (Bag.size b);
  Alcotest.(check bool) "remove present" true (Bag.remove_one b 1);
  Alcotest.(check int) "count after remove" 1 (Bag.count b 1);
  Alcotest.(check bool) "remove to zero" true (Bag.remove_one b 1);
  Alcotest.(check bool) "remove absent" false (Bag.remove_one b 1);
  Alcotest.(check int) "total size after" 3 (Bag.size b);
  Stm.atomic (fun () ->
      Bag.add b 9;
      Alcotest.(check int) "own add visible" 1 (Bag.count b 9);
      Alcotest.(check bool) "txn remove_one" true (Bag.remove_one b 9);
      Alcotest.(check int) "back to zero" 0 (Bag.count b 9));
  Alcotest.(check bool) "9 never committed" false (Bag.mem b 9);
  (try
     Stm.atomic (fun () ->
         Bag.add_n b 5 7;
         Stm.self_abort ())
   with Stm.Aborted -> ());
  Alcotest.(check int) "abort discards" 0 (Bag.count b 5);
  Alcotest.(check int) "no leaked locks" 0 (Bag.outstanding_locks b)

(* ---------------- unit: priority queue ---------------- *)

let test_pq_basics () =
  let q = Pq.create () in
  Alcotest.(check (option int)) "empty peek" None (Pq.peek_min q);
  List.iter (Pq.insert q) [ 5; 1; 9; 1 ];
  Alcotest.(check (option int)) "min" (Some 1) (Pq.peek_min q);
  Alcotest.(check int) "multiplicity" 2 (Pq.count q 1);
  Alcotest.(check (option int)) "poll" (Some 1) (Pq.poll_min q);
  Alcotest.(check (option int)) "second copy" (Some 1) (Pq.poll_min q);
  Alcotest.(check (option int)) "next prio" (Some 5) (Pq.poll_min q);
  Stm.atomic (fun () ->
      Pq.insert q 0;
      Alcotest.(check (option int)) "buffered min wins" (Some 0) (Pq.peek_min q);
      Alcotest.(check (option int)) "txn poll" (Some 0) (Pq.poll_min q);
      Alcotest.(check (option int)) "committed min behind it" (Some 9)
        (Pq.peek_min q));
  Alcotest.(check (option int)) "after commit" (Some 9) (Pq.poll_min q);
  Alcotest.(check bool) "drained" true (Pq.is_empty q);
  (try
     Stm.atomic (fun () ->
         Pq.insert q 3;
         Stm.self_abort ())
   with Stm.Aborted -> ());
  Alcotest.(check bool) "abort discards insert" true (Pq.is_empty q);
  Alcotest.(check int) "no leaked locks" 0 (Pq.outstanding_locks q)

let test_no_snapshot_reads () =
  (* Derived wrappers publish no version chains; a snapshot read must
     fail loudly instead of returning an unversioned value. *)
  let c = Counter.create () in
  let raised = ref false in
  Stm.snapshot (fun () ->
      match Counter.get c with
      | exception Invalid_argument _ -> raised := true
      | _ -> ());
  Alcotest.(check bool) "snapshot read rejected" true !raised

(* ---------------- QCheck spec soundness ---------------- *)

(* A collection case packages the derived implementation with its
   sequential model.  Results are encoded as strings so the driver can
   compare them generically; [dump] is the canonical committed state. *)
module type CASE = sig
  val name : string

  type op

  val show_op : op -> string
  val gen_op : op QCheck.Gen.t
  val gen_setup : op list QCheck.Gen.t

  type model

  val model_create : unit -> model
  val model_apply : model -> op -> string
  val model_dump : model -> string

  type t

  val create : unit -> t
  val apply : t -> op -> string
  val dump : t -> string
  val observes : op -> bool
end

module Soundness (C : CASE) = struct
  (* Run [a; b] and [b; a] through the model from the same setup. *)
  let model_orders setup a b =
    let run first second =
      let m = C.model_create () in
      List.iter (fun o -> ignore (C.model_apply m o)) setup;
      let r1 = C.model_apply m first in
      let r2 = C.model_apply m second in
      (r1, r2, C.model_dump m)
    in
    let ra1, rb1, s1 = run a b in
    let rb2, ra2, s2 = run b a in
    ((ra1, rb1, s1), (ra2, rb2, s2))

  let commutative setup a b =
    let (ra1, rb1, s1), (ra2, rb2, s2) = model_orders setup a b in
    ra1 = ra2 && rb1 = rb2 && s1 = s2

  let build setup =
    let t = C.create () in
    List.iter (fun o -> ignore (C.apply t o)) setup;
    t

  (* Commutative pair: run the two ops as concurrent single-op
     transactions; results and final state must equal the (unique)
     sequential outcome. *)
  let check_commutative setup a b =
    let (ra, rb, s), _ = model_orders setup a b in
    let t = build setup in
    let got_a = ref "" and got_b = ref "" in
    let d1 =
      Domain.spawn (fun () -> Stm.atomic (fun () -> got_a := C.apply t a))
    in
    let d2 =
      Domain.spawn (fun () -> Stm.atomic (fun () -> got_b := C.apply t b))
    in
    Domain.join d1;
    Domain.join d2;
    if !got_a <> ra then
      QCheck.Test.fail_reportf "%s: %s returned %s, model says %s" C.name
        (C.show_op a) !got_a ra;
    if !got_b <> rb then
      QCheck.Test.fail_reportf "%s: %s returned %s, model says %s" C.name
        (C.show_op b) !got_b rb;
    let dumped = C.dump t in
    if dumped <> s then
      QCheck.Test.fail_reportf "%s: state %s, model says %s" C.name dumped s;
    true

  (* Non-commutative pair: the observer transaction performs its op,
     parks mid-flight while the other op commits, then tries to commit.
     The derived conflict sets must force it to a second attempt. *)
  let check_conflicting setup a b =
    (* Pick the op whose observation the other changes as the in-flight
       observer; the other (necessarily a writer) commits against it. *)
    let observer, writer =
      let (ra1, rb1, _), (ra2, rb2, _) = model_orders setup a b in
      if ra1 <> ra2 then (a, b)
      else if rb1 <> rb2 then (b, a)
      else if C.observes a then (a, b)
      else (b, a)
    in
    let t = build setup in
    let phase = Atomic.make 0 in
    let signal n = if Atomic.get phase < n then Atomic.set phase n in
    let await n =
      while Atomic.get phase < n do
        Domain.cpu_relax ()
      done
    in
    let attempts = ref 0 in
    let d1 =
      Domain.spawn (fun () ->
          Stm.atomic (fun () ->
              incr attempts;
              ignore (C.apply t observer);
              signal 1;
              if !attempts = 1 then await 2))
    in
    let d2 =
      Domain.spawn (fun () ->
          await 1;
          Stm.atomic (fun () -> ignore (C.apply t writer));
          signal 2)
    in
    Domain.join d1;
    Domain.join d2;
    if !attempts < 2 then
      QCheck.Test.fail_reportf
        "%s: non-commutative pair (%s observer, %s writer) committed without \
         conflict"
        C.name (C.show_op observer) (C.show_op writer);
    true

  let print_case (setup, (a, b)) =
    Printf.sprintf "%s setup=[%s] a=%s b=%s" C.name
      (String.concat "; " (List.map C.show_op setup))
      (C.show_op a) (C.show_op b)

  let arb =
    QCheck.make ~print:print_case
      QCheck.Gen.(triple C.gen_setup C.gen_op C.gen_op |> map (fun (s, a, b) -> (s, (a, b))))

  let tests =
    [
      QCheck.Test.make
        ~name:(C.name ^ ": commutative pairs are order-equivalent")
        ~count:40 arb
        (fun (setup, (a, b)) ->
          QCheck.assume (commutative setup a b);
          check_commutative setup a b);
      QCheck.Test.make
        ~name:(C.name ^ ": non-commutative pairs forced to conflict")
        ~count:40 arb
        (fun (setup, (a, b)) ->
          QCheck.assume (not (commutative setup a b));
          check_conflicting setup a b);
    ]
end

(* ---- set case ---- *)

module Set_case = struct
  let name = "derived set"

  type op = Add of int | Remove of int | Mem of int | Size | Is_empty

  let show_op = function
    | Add k -> Printf.sprintf "add %d" k
    | Remove k -> Printf.sprintf "remove %d" k
    | Mem k -> Printf.sprintf "mem %d" k
    | Size -> "size"
    | Is_empty -> "is_empty"

  let gen_op =
    QCheck.Gen.(
      frequency
        [
          (3, map (fun k -> Add k) (int_bound 3));
          (3, map (fun k -> Remove k) (int_bound 3));
          (2, map (fun k -> Mem k) (int_bound 3));
          (1, return Size);
          (1, return Is_empty);
        ])

  let gen_setup =
    QCheck.Gen.(
      list_size (int_bound 4)
        (map2 (fun k b -> if b then Add k else Remove k) (int_bound 3) bool))

  type model = (int, unit) Hashtbl.t

  let model_create () = Hashtbl.create 8

  let model_apply m = function
    | Add k ->
        let fresh = not (Hashtbl.mem m k) in
        Hashtbl.replace m k ();
        string_of_bool fresh
    | Remove k ->
        let present = Hashtbl.mem m k in
        Hashtbl.remove m k;
        string_of_bool present
    | Mem k -> string_of_bool (Hashtbl.mem m k)
    | Size -> string_of_int (Hashtbl.length m)
    | Is_empty -> string_of_bool (Hashtbl.length m = 0)

  let model_dump m =
    Hashtbl.fold (fun k () acc -> k :: acc) m []
    |> List.sort compare |> List.map string_of_int |> String.concat ","

  type t = DSet.t

  let create () = DSet.create ()

  let apply t = function
    | Add k -> string_of_bool (DSet.add t k)
    | Remove k -> string_of_bool (DSet.remove t k)
    | Mem k -> string_of_bool (DSet.mem t k)
    | Size -> string_of_int (DSet.size t)
    | Is_empty -> string_of_bool (DSet.is_empty t)

  let dump t =
    DSet.to_list t |> List.sort compare |> List.map string_of_int
    |> String.concat ","

  let observes _ = true
end

(* ---- bag case ---- *)

module Bag_case = struct
  let name = "derived bag"

  type op = Badd of int | Badd_n of int * int | Bremove of int | Bcount of int | Bsize

  let show_op = function
    | Badd k -> Printf.sprintf "add %d" k
    | Badd_n (k, n) -> Printf.sprintf "add_n %d %d" k n
    | Bremove k -> Printf.sprintf "remove_one %d" k
    | Bcount k -> Printf.sprintf "count %d" k
    | Bsize -> "size"

  let gen_op =
    QCheck.Gen.(
      frequency
        [
          (3, map (fun k -> Badd k) (int_bound 3));
          (2, map2 (fun k n -> Badd_n (k, n + 1)) (int_bound 3) (int_bound 2));
          (3, map (fun k -> Bremove k) (int_bound 3));
          (2, map (fun k -> Bcount k) (int_bound 3));
          (1, return Bsize);
        ])

  let gen_setup =
    QCheck.Gen.(
      list_size (int_bound 4)
        (map2 (fun k n -> Badd_n (k, n + 1)) (int_bound 3) (int_bound 2)))

  type model = (int, int) Hashtbl.t

  let model_create () = Hashtbl.create 8
  let mcount m k = Option.value (Hashtbl.find_opt m k) ~default:0

  let model_apply m = function
    | Badd k ->
        Hashtbl.replace m k (mcount m k + 1);
        "()"
    | Badd_n (k, n) ->
        if n > 0 then Hashtbl.replace m k (mcount m k + n);
        "()"
    | Bremove k ->
        let c = mcount m k in
        if c > 1 then Hashtbl.replace m k (c - 1)
        else if c = 1 then Hashtbl.remove m k;
        string_of_bool (c > 0)
    | Bcount k -> string_of_int (mcount m k)
    | Bsize -> string_of_int (Hashtbl.fold (fun _ c acc -> acc + c) m 0)

  let model_dump m =
    Hashtbl.fold (fun k c acc -> (k, c) :: acc) m []
    |> List.sort compare
    |> List.map (fun (k, c) -> Printf.sprintf "%d:%d" k c)
    |> String.concat ","

  type t = Bag.t

  let create () = Bag.create ()

  let apply t = function
    | Badd k ->
        Bag.add t k;
        "()"
    | Badd_n (k, n) ->
        Bag.add_n t k n;
        "()"
    | Bremove k -> string_of_bool (Bag.remove_one t k)
    | Bcount k -> string_of_int (Bag.count t k)
    | Bsize -> string_of_int (Bag.size t)

  let dump t =
    Bag.to_list t |> List.sort compare
    |> List.map (fun (k, c) -> Printf.sprintf "%d:%d" k c)
    |> String.concat ","

  let observes = function
    | Badd _ | Badd_n _ -> false
    | Bremove _ | Bcount _ | Bsize -> true
end

(* ---- priority-queue case ---- *)

module Pq_case = struct
  let name = "derived pq"

  type op = Insert of int | Peek | Poll | Pcount of int

  let show_op = function
    | Insert p -> Printf.sprintf "insert %d" p
    | Peek -> "peek_min"
    | Poll -> "poll_min"
    | Pcount p -> Printf.sprintf "count %d" p

  let gen_op =
    QCheck.Gen.(
      frequency
        [
          (3, map (fun p -> Insert p) (int_bound 4));
          (2, return Peek);
          (3, return Poll);
          (1, map (fun p -> Pcount p) (int_bound 4));
        ])

  let gen_setup =
    QCheck.Gen.(list_size (int_bound 4) (map (fun p -> Insert p) (int_bound 4)))

  type model = (int, int) Hashtbl.t

  let model_create () = Hashtbl.create 8
  let mcount m k = Option.value (Hashtbl.find_opt m k) ~default:0

  let mmin m =
    Hashtbl.fold
      (fun k _ best ->
        match best with Some b when b <= k -> best | _ -> Some k)
      m None

  let model_apply m = function
    | Insert p ->
        Hashtbl.replace m p (mcount m p + 1);
        "()"
    | Peek -> (
        match mmin m with None -> "none" | Some p -> string_of_int p)
    | Poll -> (
        match mmin m with
        | None -> "none"
        | Some p ->
            let c = mcount m p in
            if c > 1 then Hashtbl.replace m p (c - 1) else Hashtbl.remove m p;
            string_of_int p)
    | Pcount p -> string_of_int (mcount m p)

  let model_dump m =
    Hashtbl.fold (fun k c acc -> (k, c) :: acc) m []
    |> List.sort compare
    |> List.map (fun (k, c) -> Printf.sprintf "%d:%d" k c)
    |> String.concat ","

  type t = Pq.t

  let create () = Pq.create ()

  let apply t = function
    | Insert p ->
        Pq.insert t p;
        "()"
    | Peek -> (
        match Pq.peek_min t with None -> "none" | Some p -> string_of_int p)
    | Poll -> (
        match Pq.poll_min t with None -> "none" | Some p -> string_of_int p)
    | Pcount p -> string_of_int (Pq.count t p)

  let dump t =
    Pq.to_list t |> List.sort compare
    |> List.map (fun (k, c) -> Printf.sprintf "%d:%d" k c)
    |> String.concat ","

  let observes = function
    | Insert _ -> false
    | Peek | Poll | Pcount _ -> true
end

(* ---- counter case ---- *)

module Counter_case = struct
  let name = "derived counter"

  type op = Cadd of int | Cget

  let show_op = function
    | Cadd d -> Printf.sprintf "add %d" d
    | Cget -> "get"

  let gen_op =
    QCheck.Gen.(
      frequency
        [ (3, map (fun d -> Cadd (d + 1)) (int_bound 3)); (2, return Cget) ])

  let gen_setup =
    QCheck.Gen.(list_size (int_bound 3) (map (fun d -> Cadd (d + 1)) (int_bound 3)))

  type model = int ref

  let model_create () = ref 0

  let model_apply m = function
    | Cadd d ->
        m := !m + d;
        "()"
    | Cget -> string_of_int !m

  let model_dump m = string_of_int !m

  type t = Counter.t

  let create () = Counter.create ~shards:4 ()

  let apply t = function
    | Cadd d ->
        Counter.add t d;
        "()"
    | Cget -> string_of_int (Counter.get t)

  let dump t = string_of_int (Counter.get t)
  let observes = function Cadd _ -> false | Cget -> true
end

module Set_sound = Soundness (Set_case)
module Bag_sound = Soundness (Bag_case)
module Pq_sound = Soundness (Pq_case)
module Counter_sound = Soundness (Counter_case)

(* ---------------- derived chaos soak ---------------- *)

let test_derived_soak () =
  List.iter
    (fun seed ->
      let r =
        Harness.Chaos.run_derived_soak
          (Harness.Chaos.default_soak ~domains:2 ~ops_per_domain:400
             ~key_space:32 ~seed 0.05)
      in
      if not r.Harness.Chaos.ok then
        Alcotest.failf "derived soak seed=%d: %s" seed
          (String.concat "; " r.Harness.Chaos.errors);
      Alcotest.(check bool)
        (Printf.sprintf "work committed (seed=%d)" seed)
        true
        (r.Harness.Chaos.committed > 0))
    [ 1; 2; 3 ]

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let suites =
  [
    ( "derive.units",
      [
        Alcotest.test_case "counter basics" `Quick test_counter_basics;
        Alcotest.test_case "counter zero conflicts" `Quick
          test_counter_zero_conflicts;
        Alcotest.test_case "bag basics" `Quick test_bag_basics;
        Alcotest.test_case "pq basics" `Quick test_pq_basics;
        Alcotest.test_case "no snapshot reads" `Quick test_no_snapshot_reads;
      ] );
    ("derive.spec.set", qsuite Set_sound.tests);
    ("derive.spec.bag", qsuite Bag_sound.tests);
    ("derive.spec.pq", qsuite Pq_sound.tests);
    ("derive.spec.counter", qsuite Counter_sound.tests);
    ( "derive.chaos",
      [ Alcotest.test_case "derived soak" `Quick test_derived_soak ] );
  ]
