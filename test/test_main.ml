let () =
  Alcotest.run "txcoll"
    (Test_stm.suites @ Test_coll.suites @ Test_stm_ds.suites
   @ Test_txcoll_map.suites @ Test_txcoll_sorted.suites
   @ Test_txcoll_queue.suites @ Test_cursors.suites @ Test_sim.suites
   @ Test_sim_ds.suites @ Test_harness.suites @ Test_jbb.suites @ Test_alt_underlying.suites @ Test_alternatives.suites @ Test_serializability.suites @ Test_key_leak.suites @ Test_stm_advanced.suites @ Test_stm_readset.suites @ Test_sim_deeper.suites @ Test_equivalence.suites @ Test_soak.suites @ Test_semlock.suites @ Test_sets.suites
   @ Test_contention.suites @ Test_chaos.suites @ Test_stm_scaling.suites
   @ Test_striping.suites @ Test_snapshot.suites @ Test_places.suites
   @ Test_policy.suites @ Test_openloop.suites @ Test_derive.suites)
