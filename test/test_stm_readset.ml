(* Read-set representation and sharded-commit tests: deduplication keeps
   one entry per tvar, validation still catches conflicting writes to
   deduplicated entries, incremental read-version extension stays opaque,
   and commits into disjoint collections never contend on a commit
   region. *)

module Stm = Tcc_stm.Stm
module Tvar = Tcc_stm.Tvar
module IM = Txcoll.Host.Map (Txcoll.Host.Int_hashed)

let test_reread_dedup () =
  let tv = Tvar.make 7 in
  let other = Tvar.make 1 in
  Stm.atomic (fun () ->
      for _ = 1 to 100 do
        ignore (Tvar.get tv)
      done;
      Alcotest.(check int) "one entry after 100 re-reads" 1
        (Stm.read_set_cardinal ());
      ignore (Tvar.get other);
      Alcotest.(check int) "distinct tvars still recorded" 2
        (Stm.read_set_cardinal ()))

let test_nested_reread_dedup () =
  let tv = Tvar.make 7 in
  Stm.atomic (fun () ->
      ignore (Tvar.get tv);
      Stm.closed_nested (fun () ->
          (* The parent already recorded [tv]; the child must not. *)
          ignore (Tvar.get tv);
          Alcotest.(check int) "child adds no duplicate" 1
            (Stm.read_set_cardinal ()));
      Alcotest.(check int) "merge keeps one entry" 1
        (Stm.read_set_cardinal ()))

let test_dedup_entry_still_validated () =
  let a = Tvar.make 0 in
  let b = Tvar.make 0 in
  let injected = ref false in
  let attempts = ref 0 in
  Stm.atomic (fun () ->
      incr attempts;
      let v = Tvar.get a in
      (* Deduplicated re-reads: still exactly one entry guarding [a]. *)
      ignore (Tvar.get a);
      ignore (Tvar.get a);
      if not !injected then begin
        injected := true;
        Domain.join (Domain.spawn (fun () -> Tvar.set a 42))
      end;
      Tvar.set b (v + 1));
  Alcotest.(check int) "conflict on the deduplicated entry forced a retry" 2
    !attempts;
  Alcotest.(check int) "second attempt saw the committed write" 43
    (Tvar.get b)

let test_incremental_extension_consistent () =
  (* Unrelated commits advance the clock; reading a tvar they wrote forces
     read-version extension.  The first extension validates the whole read
     set and records the high-water mark; the second only the suffix (the
     commit ring proves the prefix untouched).  The transaction must still
     commit on its first attempt. *)
  let prefix = Array.init 8 (fun i -> Tvar.make i) in
  let x = Tvar.make 0 and y = Tvar.make 0 and z = Tvar.make 0 in
  let attempts = ref 0 in
  let total =
    Stm.atomic (fun () ->
        incr attempts;
        let s = Array.fold_left (fun acc tv -> acc + Tvar.get tv) 0 prefix in
        if !attempts = 1 then
          Domain.join
            (Domain.spawn (fun () ->
                 Tvar.set x 100;
                 Tvar.set y 200));
        let s = s + Tvar.get y in
        if !attempts = 1 then Domain.join (Domain.spawn (fun () -> Tvar.set z 300));
        s + Tvar.get z)
  in
  Alcotest.(check int) "single attempt" 1 !attempts;
  Alcotest.(check int) "sum consistent" (28 + 200 + 300) total

let test_disjoint_commits_never_wait () =
  (* Each domain commits into its own collection: every commit acquires
     only that collection's region, so no region acquisition ever blocks.
     Run enough transactions to make silent serialisation visible. *)
  let n_domains = 4 and txns = 200 in
  Stm.reset_stats ();
  let before = Stm.commit_region_waits () in
  let domains =
    List.init n_domains (fun d ->
        Domain.spawn (fun () ->
            let m : int IM.t = IM.create () in
            for i = 1 to txns do
              Stm.atomic (fun () ->
                  ignore (IM.put m i (i * d));
                  if i > 1 then ignore (IM.find m (i - 1)))
            done;
            IM.size m))
  in
  let sizes = List.map Domain.join domains in
  List.iter (fun s -> Alcotest.(check int) "all txns applied" txns s) sizes;
  Alcotest.(check int) "disjoint commits never blocked on a region" before
    (Stm.commit_region_waits ())

let test_shared_commits_correct () =
  (* All domains hammer one collection: commits serialise on its region
     (waits may accumulate) but every operation must still apply exactly
     once. *)
  let n_domains = 4 and txns = 100 in
  let m : int IM.t = IM.create () in
  let domains =
    List.init n_domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to txns do
              Stm.atomic (fun () -> ignore (IM.put m ((d * txns) + i) i))
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "every put applied" (n_domains * txns) (IM.size m)

let suites =
  [
    ( "stm.readset",
      [
        Alcotest.test_case "re-read dedup" `Quick test_reread_dedup;
        Alcotest.test_case "nested re-read dedup" `Quick
          test_nested_reread_dedup;
        Alcotest.test_case "dedup entry still validated" `Quick
          test_dedup_entry_still_validated;
        Alcotest.test_case "incremental extension consistent" `Quick
          test_incremental_extension_consistent;
        Alcotest.test_case "disjoint commits never wait" `Quick
          test_disjoint_commits_never_wait;
        Alcotest.test_case "shared commits correct" `Quick
          test_shared_commits_correct;
      ] );
  ]
